//! `ztbe` — command-line tool for TCA-TBE model files.
//!
//! ```text
//! ztbe compress   <in.bf16> <rows> <cols> <out.ztbe>   # raw LE BF16 input
//! ztbe decompress <in.ztbe> <out.bf16>
//! ztbe inspect    <in.ztbe>
//! ztbe demo       <rows> <cols> <out.ztbe>             # synthetic weights
//! ```
//!
//! `.bf16` files are raw little-endian 16-bit payloads, row-major.

use std::fs;
use std::process::ExitCode;
use zipserv::bf16::gen::WeightGen;
use zipserv::bf16::{Bf16, Matrix};
use zipserv::tbe::format::serialize;
use zipserv::tbe::TbeCompressor;

fn usage() -> ExitCode {
    eprintln!(
        "usage:\n  ztbe compress   <in.bf16> <rows> <cols> <out.ztbe>\n  \
         ztbe decompress <in.ztbe> <out.bf16>\n  \
         ztbe inspect    <in.ztbe>\n  \
         ztbe demo       <rows> <cols> <out.ztbe>"
    );
    ExitCode::from(2)
}

fn run() -> Result<(), String> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("compress") if args.len() == 5 => {
            let raw = fs::read(&args[1]).map_err(|e| format!("read {}: {e}", args[1]))?;
            let rows: usize = args[2]
                .parse()
                .map_err(|_| "rows must be an integer".to_string())?;
            let cols: usize = args[3]
                .parse()
                .map_err(|_| "cols must be an integer".to_string())?;
            if raw.len() != rows * cols * 2 {
                return Err(format!(
                    "{} holds {} bytes but {rows}x{cols} BF16 needs {}",
                    args[1],
                    raw.len(),
                    rows * cols * 2
                ));
            }
            let data: Vec<Bf16> = raw
                .chunks_exact(2)
                .map(|c| Bf16::from_bits(u16::from_le_bytes([c[0], c[1]])))
                .collect();
            let m = Matrix::from_vec(rows, cols, data);
            let tbe = TbeCompressor::new()
                .compress(&m)
                .map_err(|e| e.to_string())?;
            let blob = serialize::to_bytes(&tbe);
            fs::write(&args[4], &blob).map_err(|e| format!("write {}: {e}", args[4]))?;
            println!(
                "{} -> {} ({} -> {} bytes, {:.1}% of raw)",
                args[1],
                args[4],
                raw.len(),
                blob.len(),
                100.0 * blob.len() as f64 / raw.len() as f64
            );
            Ok(())
        }
        Some("decompress") if args.len() == 3 => {
            let blob = fs::read(&args[1]).map_err(|e| format!("read {}: {e}", args[1]))?;
            let tbe = serialize::from_bytes(&blob).map_err(|e| e.to_string())?;
            let m = tbe.decompress();
            let mut out = Vec::with_capacity(m.len() * 2);
            for &v in m.as_slice() {
                out.extend_from_slice(&v.to_bits().to_le_bytes());
            }
            fs::write(&args[2], &out).map_err(|e| format!("write {}: {e}", args[2]))?;
            println!(
                "{} -> {} ({}x{} BF16)",
                args[1],
                args[2],
                m.rows(),
                m.cols()
            );
            Ok(())
        }
        Some("inspect") if args.len() == 2 => {
            let blob = fs::read(&args[1]).map_err(|e| format!("read {}: {e}", args[1]))?;
            let tbe = serialize::from_bytes(&blob).map_err(|e| e.to_string())?;
            let s = tbe.stats();
            println!("shape            : {}x{}", tbe.rows(), tbe.cols());
            println!("base exponent    : {}", tbe.base_exp());
            println!(
                "FragTiles        : {} in {} BlockTiles",
                tbe.tile_count(),
                tbe.block_count()
            );
            println!("raw bytes        : {}", s.raw_bytes);
            println!(
                "compressed bytes : {} ({:.1}% of raw)",
                s.compressed_bytes(),
                s.size_percent()
            );
            println!("bits / element   : {:.2}", s.bits_per_element());
            println!("high-freq cover  : {:.2}%", 100.0 * s.coverage());
            println!(
                "sections         : bitmaps {} | sign/mantissa {} | fallback {} | offsets {}",
                s.bitmap_bytes, s.high_freq_bytes, s.fallback_bytes, s.offset_bytes
            );
            Ok(())
        }
        Some("demo") if args.len() == 4 => {
            let rows: usize = args[1]
                .parse()
                .map_err(|_| "rows must be an integer".to_string())?;
            let cols: usize = args[2]
                .parse()
                .map_err(|_| "cols must be an integer".to_string())?;
            let m = WeightGen::new(0.018).seed(1).matrix(rows, cols);
            let tbe = TbeCompressor::new()
                .compress(&m)
                .map_err(|e| e.to_string())?;
            fs::write(&args[3], serialize::to_bytes(&tbe))
                .map_err(|e| format!("write {}: {e}", args[3]))?;
            println!("wrote synthetic {rows}x{cols} model to {}", args[3]);
            Ok(())
        }
        _ => Err(String::new()),
    }
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) if msg.is_empty() => usage(),
        Err(msg) => {
            eprintln!("error: {msg}");
            ExitCode::FAILURE
        }
    }
}

//! ZipServ: fast and memory-efficient LLM inference with hardware-aware
//! lossless compression — a full Rust reproduction of the ASPLOS'26 paper.
//!
//! This facade crate re-exports the whole workspace behind one dependency:
//!
//! * [`bf16`] — BFloat16 numerics, synthetic weights, exponent statistics;
//! * [`entropy`] — baseline lossless codecs (canonical Huffman, rANS);
//! * [`gpu`] — the analytic GPU execution model (devices, memory, Tensor
//!   Cores, roofline);
//! * [`tbe`] — the TCA-TBE format, compressor, decompressor and fused
//!   ZipGEMM (the paper's contribution);
//! * [`kernels`] — the kernel zoo: cuBLAS-like baseline, fused ZipGEMM and
//!   the decoupled DietGPU/nvCOMP/DFloat11 pipelines;
//! * [`serve`] — the serving substrate: model zoo, paged KV cache,
//!   continuous batching, end-to-end engines.
//!
//! # Quickstart
//!
//! ```
//! use zipserv::prelude::*;
//!
//! // Generate a synthetic Gaussian weight matrix and compress it.
//! let weights = WeightGen::new(0.02).seed(7).matrix(64, 64);
//! let compressed = TbeCompressor::new().compress(&weights)?;
//! assert!(compressed.compression_ratio() > 1.2);
//!
//! // Lossless: decompression is bit-exact.
//! let restored = compressed.decompress();
//! assert_eq!(weights, restored);
//! # Ok::<(), zipserv::tbe::TbeError>(())
//! ```

pub use zipserv_bf16 as bf16;
pub use zipserv_core as tbe;
pub use zipserv_entropy as entropy;
pub use zipserv_gpu_sim as gpu;
pub use zipserv_kernels as kernels;
pub use zipserv_serve as serve;

/// The most common imports, for `use zipserv::prelude::*`.
pub mod prelude {
    pub use crate::bf16::gen::{ModelFamily, WeightGen};
    pub use crate::bf16::stats::{ExponentHistogram, ExponentSummary};
    pub use crate::bf16::{Bf16, Matrix};
    pub use crate::gpu::device::{DeviceSpec, Gpu};
    pub use crate::kernels::shapes::{LayerKind, LlmModel};
    pub use crate::serve::engine::{EngineBuilder, EngineError, EngineKind, ServingEngine};
    pub use crate::serve::fault::{
        FaultEvent, FaultKind, FaultPlan, RejectReason, Rejection, RetryPolicy,
    };
    pub use crate::serve::fleet::{
        Autoscale, AutoscaleEvent, FleetReport, FleetRouter, LeastKvPressure, PowerOfTwoChoices,
        RoundRobin, RoutePolicy, SessionAffinity,
    };
    pub use crate::serve::metrics::RobustnessStats;
    pub use crate::serve::policy::{
        Fcfs, PreemptionMode, PreemptiveSjf, Priority, PriorityClass, SchedulePolicy, Slo, SloEdf,
    };
    pub use crate::serve::scheduler::{poisson_arrivals, Request, ScheduleReport};
    pub use crate::serve::workload::{ArrivalMix, Trace, TraceError, TrafficClass, Workload};
    pub use crate::serve::{
        GpuCluster, KvShards, PagedKvCache, PipelineKind, PipelineSchedule, PrefixRegistry,
        PrefixStats, PrefixVictim,
    };
    pub use crate::tbe::{TbeCompressor, TbeMatrix};
}

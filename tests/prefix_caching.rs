//! Prefix-caching pins: with caching disabled (or enabled but fed a
//! prefix-less stream) the scheduler and fleet outputs are bit-identical
//! to the legacy path — FNV digests across policies and deployments —
//! and with caching enabled on the multi-tenant mix the registry
//! actually saves work. Trace record/replay round-trips by property.

use proptest::prelude::*;
use zipserv::prelude::*;
use zipserv::serve::scheduler::{run_policy, ScheduleReport};

fn fnv(h: &mut u64, bytes: &[u8]) {
    for &b in bytes {
        *h ^= b as u64;
        *h = h.wrapping_mul(0x100000001b3);
    }
}

fn digest(r: &ScheduleReport) -> u64 {
    let mut h = 0xcbf29ce484222325u64;
    fnv(&mut h, &r.duration_s.to_bits().to_le_bytes());
    fnv(&mut h, &r.throughput_tps.to_bits().to_le_bytes());
    fnv(&mut h, &r.comm_s.to_bits().to_le_bytes());
    fnv(&mut h, &(r.peak_batch as u64).to_le_bytes());
    fnv(&mut h, &r.preemptions.to_le_bytes());
    for c in &r.completions {
        fnv(&mut h, &c.id.to_le_bytes());
        fnv(&mut h, &c.queue_s.to_bits().to_le_bytes());
        fnv(&mut h, &c.latency_s.to_bits().to_le_bytes());
        fnv(&mut h, &c.ttft_s.to_bits().to_le_bytes());
        fnv(&mut h, &(c.preemptions as u64).to_le_bytes());
    }
    h
}

fn all_policies() -> Vec<Box<dyn SchedulePolicy>> {
    vec![
        Box::new(Fcfs),
        Box::new(Priority::default()),
        Box::new(SloEdf::default()),
        Box::new(PreemptiveSjf::default()),
        Box::new(PreemptiveSjf {
            mode: PreemptionMode::PageOut,
        }),
    ]
}

fn deployments() -> Vec<(&'static str, GpuCluster)> {
    vec![
        ("tp1_rtx4090", GpuCluster::single(Gpu::Rtx4090)),
        ("pp2_l40s", GpuCluster::pipeline_parallel(Gpu::L40s, 1, 2)),
    ]
}

fn engine(cluster: GpuCluster, caching: bool) -> ServingEngine {
    ServingEngine::builder()
        .kind(EngineKind::ZipServ)
        .model(LlmModel::Llama31_8b)
        .cluster(cluster)
        .policy(Priority::default())
        .max_batch(16)
        .prefix_caching(caching)
        .build()
}

/// `prefix_caching(false)` — and the builder default, which never calls
/// the knob at all — produce bit-identical reports for every policy on
/// both a single-GPU and a pipelined deployment.
#[test]
fn caching_off_is_bit_identical_for_every_policy_and_deployment() {
    let arrivals = ArrivalMix::paper_mix().generate(12.0, 80, 37);
    for (name, cluster) in deployments() {
        let default_build = ServingEngine::builder()
            .kind(EngineKind::ZipServ)
            .model(LlmModel::Llama31_8b)
            .cluster(cluster)
            .policy(Priority::default())
            .max_batch(16)
            .build();
        let explicit_off = engine(cluster, false);
        for p in all_policies() {
            let base = run_policy(&default_build, p.as_ref(), 16, arrivals.clone());
            let off = run_policy(&explicit_off, p.as_ref(), 16, arrivals.clone());
            assert_eq!(
                digest(&base),
                digest(&off),
                "caching off perturbed {} under {}",
                name,
                p.name()
            );
            assert_eq!(base, off);
            assert_eq!(off.prefix, PrefixStats::default());
        }
    }
}

/// An engine with caching *enabled* but fed the legacy prefix-less
/// paper mix is still bit-identical: the registry exists but every
/// lookup short-circuits on `prefix_len == 0`, so the admission charge
/// and report digest match the caching-off run exactly.
#[test]
fn caching_on_is_inert_for_prefix_less_streams() {
    let arrivals = ArrivalMix::paper_mix().generate(12.0, 80, 37);
    for (name, cluster) in deployments() {
        let off = engine(cluster, false);
        let on = engine(cluster, true);
        for p in all_policies() {
            let base = run_policy(&off, p.as_ref(), 16, arrivals.clone());
            let cached = run_policy(&on, p.as_ref(), 16, arrivals.clone());
            assert_eq!(
                digest(&base),
                digest(&cached),
                "inert registry perturbed {} under {}",
                name,
                p.name()
            );
            assert_eq!(base, cached);
            assert_eq!(cached.prefix, PrefixStats::default());
        }
    }
}

/// The fleet layer inherits the pin: a session-affinity fleet over
/// caching-off replicas matches one over default-built replicas field
/// for field, and aggregates zero prefix stats.
#[test]
fn fleet_report_is_bit_identical_with_caching_off() {
    let arrivals = ArrivalMix::multi_tenant_mix().generate(7.0, 160, 53);
    let run = |caching: bool| {
        FleetRouter::new(SessionAffinity::default())
            .with_replicas(&engine(GpuCluster::single(Gpu::Rtx4090), caching), 3)
            .run(arrivals.clone())
    };
    let off = run(false);
    let default_build = FleetRouter::new(SessionAffinity::default())
        .with_replicas(
            &ServingEngine::builder()
                .kind(EngineKind::ZipServ)
                .model(LlmModel::Llama31_8b)
                .cluster(GpuCluster::single(Gpu::Rtx4090))
                .policy(Priority::default())
                .max_batch(16)
                .build(),
            3,
        )
        .run(arrivals.clone());
    assert_eq!(off, default_build);
    assert_eq!(off.prefix(), PrefixStats::default());
    for r in &off.per_replica {
        assert_eq!(r.prefix, PrefixStats::default());
    }
}

/// Caching on over the multi-tenant mix: every request still resolves
/// exactly once, the registry reports a real hit rate, and the skipped
/// prefill shows up as a strictly better interactive TTFT tail.
#[test]
fn multi_tenant_caching_saves_prefill_and_completes_everything() {
    let arrivals = ArrivalMix::multi_tenant_mix().generate(7.0, 160, 53);
    let prompt_tokens: u64 = arrivals.iter().map(|r| r.prompt_len).sum();
    let off = engine(GpuCluster::single(Gpu::Rtx4090), false).serve_online(arrivals.clone());
    let on = engine(GpuCluster::single(Gpu::Rtx4090), true).serve_online(arrivals.clone());

    for r in [&off, &on] {
        assert_eq!(r.completions.len() + r.rejections.len(), arrivals.len());
    }
    assert_eq!(off.prefix, PrefixStats::default());

    let s = on.prefix;
    assert_eq!(s.lookups, s.hits + s.misses, "lookup accounting drifted");
    assert!(s.hits > 0, "multi-tenant mix produced no cache hits");
    assert!(
        s.tokens_saved > 0 && s.tokens_saved < prompt_tokens,
        "tokens_saved {} out of range (stream has {})",
        s.tokens_saved,
        prompt_tokens
    );
    assert!(s.hit_rate() > 0.5, "hit rate {} too low", s.hit_rate());
    assert!(s.pages_shared > 0, "hits forked no shared pages");

    let p99 = |r: &ScheduleReport| {
        let mut t: Vec<f64> = r
            .completions
            .iter()
            .filter(|c| c.priority == PriorityClass::Interactive)
            .map(|c| c.ttft_s)
            .collect();
        t.sort_by(f64::total_cmp);
        t[(t.len() * 99) / 100]
    };
    assert!(
        p99(&on) < p99(&off),
        "caching did not improve interactive p99 TTFT ({} vs {})",
        p99(&on),
        p99(&off)
    );
}

/// Determinism of the cached path itself: same engine, same stream,
/// same report — registry state is rebuilt from scratch per run.
#[test]
fn cached_runs_are_deterministic() {
    let arrivals = ArrivalMix::multi_tenant_mix().generate(7.0, 120, 11);
    let e = engine(GpuCluster::single(Gpu::Rtx4090), true);
    let a = e.serve_online(arrivals.clone());
    let b = e.serve_online(arrivals);
    assert_eq!(digest(&a), digest(&b));
    assert_eq!(a.prefix, b.prefix);
}

fn class_strategy() -> impl Strategy<Value = PriorityClass> {
    (0usize..PriorityClass::ALL.len()).prop_map(|i| PriorityClass::ALL[i])
}

fn request_strategy() -> impl Strategy<Value = Request> {
    (
        (any::<u64>(), 0.0f64..1e7, 1u64..100_000, 1u64..100_000),
        (class_strategy(), any::<bool>(), 1e-3f64..1e4, 1e-6f64..1e2),
        (any::<bool>(), any::<u64>(), any::<u64>(), any::<u64>()),
    )
        .prop_map(
            |(
                (id, t, prompt, output),
                (class, has_slo, ttft, tpot),
                (has_tenant, tenant, hash, len),
            )| {
                let mut r = Request::new(id, t, prompt, output).with_priority(class);
                if has_slo {
                    r = r.with_slo(Slo::new(ttft, tpot));
                }
                if has_tenant {
                    r = r.with_tenant(tenant);
                }
                if hash != 0 {
                    r = r.with_shared_prefix(hash, len);
                }
                r
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// `Trace::record` → `Trace::replay` is lossless for any request
    /// stream: ids, times (f64 shortest-round-trip), QoS, tenancy, and
    /// shared-prefix declarations all survive the text format.
    #[test]
    fn trace_round_trips_any_request_stream(
        reqs in proptest::collection::vec(request_strategy(), 0..40)
    ) {
        let text = Trace::record(&reqs);
        let back = Trace::replay(&text).expect("recorded trace replays");
        prop_assert_eq!(back, reqs);
    }
}

//! Pipeline-schedule closed forms and scheduler bit-compatibility.
//!
//! Three layers of pins around the 1F1B / chunked-prefill work:
//!
//! 1. The analytic schedules match their closed forms across a (pp, m)
//!    grid: GPipe's bubble fraction is `(s - 1) / (s + m - 1)` and 1F1B's
//!    steady-state idle time is `(pp - 1) / m` slots, with 1F1B strictly
//!    better whenever both pipelining and multiple micro-batches exist.
//! 2. The legacy whole-prefill scheduler path (`chunked_prefill(false)`,
//!    and the pp = 1 default) is bit-identical to the pre-refactor
//!    scheduler, pinned by FNV-1a digests over full reports for every
//!    in-tree policy on two pipelined deployments.
//! 3. The acceptance criterion itself: on the paper's mixed traffic at
//!    pp ≥ 2, chunked prefill cuts interactive p99 TTFT while keeping
//!    total throughput within 5% of the legacy path.

use zipserv::prelude::*;
use zipserv::serve::policy::PreemptiveSjf;
use zipserv::serve::scheduler::{run_policy, ScheduleReport};

// ---------------------------------------------------------------------------
// 1. Closed forms.

/// GPipe's textbook bubble fraction `(s - 1) / (s + m - 1)` and 1F1B's
/// steady-state idle count `(pp - 1) / m` hold exactly across the grid,
/// and 1F1B's bubble fraction is strictly below GPipe's whenever there is
/// both a pipeline (pp >= 2) and enough micro-batches to interleave
/// (m >= 2).
#[test]
fn closed_forms_hold_across_the_grid() {
    for pp in 1u32..=8 {
        for m in 1u32..=16 {
            let gpipe = PipelineSchedule::new(pp, m);
            assert_eq!(gpipe.kind, PipelineKind::GPipe);
            let s = f64::from(pp);
            let mf = f64::from(m);
            let expect_gpipe = (s - 1.0) / (s + mf - 1.0);
            assert!(
                (gpipe.bubble_fraction() - expect_gpipe).abs() < 1e-12,
                "GPipe bubble at pp={pp} m={m}: {} != {expect_gpipe}",
                gpipe.bubble_fraction()
            );

            let one_f = PipelineSchedule::new(pp, m).with_kind(PipelineKind::OneFOneB);
            let expect_idle = (s - 1.0) / mf;
            assert!(
                (one_f.steady_idle_slots() - expect_idle).abs() < 1e-12,
                "1F1B idle slots at pp={pp} m={m}: {} != {expect_idle}",
                one_f.steady_idle_slots()
            );

            if pp >= 2 && m >= 2 {
                assert!(
                    one_f.bubble_fraction() < gpipe.bubble_fraction(),
                    "1F1B not strictly better at pp={pp} m={m}: {} vs {}",
                    one_f.bubble_fraction(),
                    gpipe.bubble_fraction()
                );
            } else {
                // Degenerate pipelines coincide: nothing to interleave.
                assert!(
                    (one_f.bubble_fraction() - gpipe.bubble_fraction()).abs() < 1e-12,
                    "schedules should coincide at pp={pp} m={m}"
                );
            }
        }
    }
}

/// The slot count (latency denominator of the prefill makespan) is the
/// same `s + m - 1` integer for both schedules — 1F1B reorders work, it
/// does not shrink the fill/drain of a single prompt.
#[test]
fn one_f_one_b_keeps_the_slot_count() {
    for pp in 2u32..=4 {
        for m in 2u32..=8 {
            let gpipe = PipelineSchedule::new(pp, m);
            let one_f = PipelineSchedule::new(pp, m).with_kind(PipelineKind::OneFOneB);
            assert_eq!(gpipe.slots(), one_f.slots());
            assert_eq!(gpipe.slots(), pp + m - 1);
        }
    }
}

// ---------------------------------------------------------------------------
// 2. Bit-compatibility of the legacy scheduler path.

fn fnv(h: &mut u64, bytes: &[u8]) {
    for &b in bytes {
        *h ^= b as u64;
        *h = h.wrapping_mul(0x100000001b3);
    }
}

fn digest(r: &ScheduleReport) -> u64 {
    let mut h = 0xcbf29ce484222325u64;
    fnv(&mut h, &r.duration_s.to_bits().to_le_bytes());
    fnv(&mut h, &r.throughput_tps.to_bits().to_le_bytes());
    fnv(&mut h, &r.comm_s.to_bits().to_le_bytes());
    fnv(&mut h, &(r.peak_batch as u64).to_le_bytes());
    fnv(&mut h, &r.preemptions.to_le_bytes());
    for c in &r.completions {
        fnv(&mut h, &c.id.to_le_bytes());
        fnv(&mut h, &c.queue_s.to_bits().to_le_bytes());
        fnv(&mut h, &c.latency_s.to_bits().to_le_bytes());
        fnv(&mut h, &c.ttft_s.to_bits().to_le_bytes());
        fnv(&mut h, &(c.preemptions as u64).to_le_bytes());
    }
    h
}

fn policies() -> Vec<(&'static str, Box<dyn SchedulePolicy>)> {
    vec![
        ("fcfs", Box::new(Fcfs)),
        ("priority", Box::new(Priority::default())),
        ("slo-edf", Box::new(SloEdf::default())),
        ("preemptive-sjf", Box::new(PreemptiveSjf::default())),
        (
            "preemptive-sjf-pageout",
            Box::new(PreemptiveSjf {
                mode: PreemptionMode::PageOut,
            }),
        ),
    ]
}

/// With chunked prefill disabled, every policy's full report on the
/// pipelined deployments hashes to the exact digests recorded from the
/// pre-refactor scheduler: the legacy arithmetic survived the streaming
/// refactor byte for byte.
#[test]
fn legacy_path_reports_are_bit_identical_to_pre_refactor() {
    let arrivals = ArrivalMix::paper_mix().generate(12.0, 80, 37);
    let pp2 = ServingEngine::builder()
        .kind(EngineKind::ZipServ)
        .model(LlmModel::Llama31_8b)
        .cluster(GpuCluster::pipeline_parallel(Gpu::L40s, 1, 2))
        .chunked_prefill(false)
        .build();
    let tp4pp2 = ServingEngine::builder()
        .kind(EngineKind::ZipServ)
        .model(LlmModel::Llama31_70b)
        .cluster(GpuCluster::pipeline_parallel(Gpu::L40s, 4, 2))
        .chunked_prefill(false)
        .build();
    type DeploymentPins<'a> = (&'a str, &'a ServingEngine, &'a [(&'a str, u64)]);
    let recorded: [DeploymentPins; 2] = [
        (
            "pp2",
            &pp2,
            &[
                ("fcfs", 0x710bd55d73f75b07),
                ("priority", 0xe04b053e7071706c),
                ("slo-edf", 0x27551bbdff8a7db9),
                ("preemptive-sjf", 0xe04b053e7071706c),
                ("preemptive-sjf-pageout", 0xe04b053e7071706c),
            ],
        ),
        (
            "tp4pp2",
            &tp4pp2,
            &[
                ("fcfs", 0x4ca5f25f220c25f5),
                ("priority", 0x2e8fa09b0b0942d2),
                ("slo-edf", 0x60d1b2d0ec9c2846),
                ("preemptive-sjf", 0x5cbee83eb1f9ba4e),
                ("preemptive-sjf-pageout", 0x5cbee83eb1f9ba4e),
            ],
        ),
    ];
    for (deploy, eng, pins) in recorded {
        for ((pname, policy), &(pin_name, pin)) in policies().iter().zip(pins.iter()) {
            assert_eq!(*pname, pin_name, "pin table out of order");
            let report = run_policy(eng, policy.as_ref(), 64, arrivals.clone());
            assert_eq!(
                report.completions.len(),
                80,
                "{deploy}/{pname}: lost requests"
            );
            assert_eq!(
                digest(&report),
                pin,
                "{deploy}/{pname}: legacy report drifted from the pre-refactor scheduler"
            );
        }
    }
}

/// At pp = 1 the chunked-prefill default resolves to *off*, so a default
/// build and an explicit `chunked_prefill(false)` build produce the same
/// report, field for field.
#[test]
fn single_stage_default_matches_disabled() {
    let arrivals = ArrivalMix::paper_mix().generate(12.0, 60, 11);
    let build = |chunked: Option<bool>| {
        let mut b = ServingEngine::builder()
            .kind(EngineKind::ZipServ)
            .model(LlmModel::Llama31_8b)
            .cluster(GpuCluster::tensor_parallel(Gpu::L40s, 2));
        if let Some(c) = chunked {
            b = b.chunked_prefill(c);
        }
        b.build()
    };
    let default = build(None);
    assert!(
        !default.chunked_prefill(),
        "pp=1 must default to legacy prefill"
    );
    for (_, policy) in policies() {
        let a = run_policy(&default, policy.as_ref(), 64, arrivals.clone());
        let b = run_policy(&build(Some(false)), policy.as_ref(), 64, arrivals.clone());
        assert_eq!(a, b, "pp=1 default drifted from the explicit legacy path");
    }
}

// ---------------------------------------------------------------------------
// 3. The chunked-prefill acceptance criterion.

fn interactive_p99_ttft(r: &ScheduleReport) -> f64 {
    let mut ttfts: Vec<f64> = r
        .completions
        .iter()
        .filter(|c| c.priority == PriorityClass::Interactive)
        .map(|c| c.ttft_s)
        .collect();
    assert!(!ttfts.is_empty(), "trace has no interactive completions");
    ttfts.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    let idx = ((ttfts.len() as f64) * 0.99).ceil() as usize - 1;
    ttfts[idx.min(ttfts.len() - 1)]
}

/// On the paper's mixed traffic at pp = 2, streaming prefill chunks
/// between decode steps lets interactive prompts overtake long batch
/// prefills: interactive p99 TTFT drops, and total throughput stays
/// within 5% of the legacy whole-prefill path.
#[test]
fn chunked_prefill_cuts_interactive_ttft_within_throughput_budget() {
    let arrivals = ArrivalMix::paper_mix().generate(12.0, 80, 37);
    let build = |chunked: bool| {
        ServingEngine::builder()
            .kind(EngineKind::ZipServ)
            .model(LlmModel::Llama31_8b)
            .cluster(GpuCluster::pipeline_parallel(Gpu::L40s, 1, 2))
            .chunked_prefill(chunked)
            .build()
    };
    let legacy = run_policy(&build(false), &Priority::default(), 64, arrivals.clone());
    let chunked = run_policy(&build(true), &Priority::default(), 64, arrivals);
    assert_eq!(legacy.completions.len(), 80);
    assert_eq!(chunked.completions.len(), 80);

    let (p99_legacy, p99_chunked) = (
        interactive_p99_ttft(&legacy),
        interactive_p99_ttft(&chunked),
    );
    assert!(
        p99_chunked < p99_legacy,
        "chunked prefill failed to cut interactive p99 TTFT: {p99_chunked:.4}s vs legacy {p99_legacy:.4}s"
    );
    let tput_ratio = chunked.throughput_tps / legacy.throughput_tps;
    assert!(
        tput_ratio > 0.95,
        "chunked prefill cost more than 5% throughput: {:.1} vs {:.1} tps ({:.1}%)",
        chunked.throughput_tps,
        legacy.throughput_tps,
        tput_ratio * 100.0
    );
}

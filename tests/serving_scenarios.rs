//! Serving-level integration scenarios across engines, models and clusters.

use zipserv::gpu::device::Gpu;
use zipserv::kernels::shapes::LlmModel;
use zipserv::serve::cluster::GpuCluster;
use zipserv::serve::engine::{EngineKind, ServingEngine};
use zipserv::serve::policy::{PriorityClass, SloEdf};
use zipserv::serve::scheduler::poisson_arrivals;
use zipserv::serve::workload::{ArrivalMix, Workload};

fn deployments() -> Vec<(LlmModel, GpuCluster)> {
    vec![
        (LlmModel::Llama31_8b, GpuCluster::single(Gpu::Rtx4090)),
        (
            LlmModel::Mistral24b,
            GpuCluster::tensor_parallel(Gpu::L40s, 2),
        ),
        (
            LlmModel::Llama31_70b,
            GpuCluster::tensor_parallel(Gpu::L40s, 4),
        ),
    ]
}

#[test]
fn compressed_engines_always_have_more_kv_headroom() {
    for (model, cluster) in deployments() {
        let zip = ServingEngine::new(EngineKind::ZipServ, model, cluster);
        let vllm = ServingEngine::new(EngineKind::Vllm, model, cluster);
        assert!(
            zip.kv_capacity_tokens() > vllm.kv_capacity_tokens(),
            "{model}"
        );
        assert!(zip.memory_plan().weight_bytes < vllm.memory_plan().weight_bytes);
    }
}

#[test]
fn throughput_ordering_is_stable_across_deployments() {
    let w = Workload::new(8, 512, 256);
    for (model, cluster) in deployments() {
        let tput: Vec<f64> = EngineKind::ALL
            .iter()
            .map(|&k| {
                ServingEngine::new(k, model, cluster)
                    .serve(w)
                    .throughput_tps
            })
            .collect();
        assert!(tput[0] > tput[1], "{model}: ZipServ vs vLLM");
        assert!(tput[1] > tput[2], "{model}: vLLM vs Transformers");
        assert!(tput[2] > tput[3], "{model}: Transformers vs DFloat11");
    }
}

#[test]
fn kv_pressure_reported_consistently() {
    let cluster = GpuCluster::single(Gpu::Rtx4090);
    let engine = ServingEngine::new(EngineKind::Vllm, LlmModel::Llama31_8b, cluster);
    let light = engine.serve(Workload::new(4, 256, 128));
    let heavy = engine.serve(Workload::new(32, 512, 2048));
    assert!(
        light.kv_pressure < 1.0,
        "light load fits: {}",
        light.kv_pressure
    );
    assert!(heavy.kv_pressure > light.kv_pressure);
}

#[test]
fn prefill_grows_with_prompt_length() {
    let cluster = GpuCluster::single(Gpu::Rtx4090);
    for kind in EngineKind::ALL {
        let engine = ServingEngine::new(kind, LlmModel::Llama31_8b, cluster);
        let short = engine.prefill_ms(8, 128);
        let long = engine.prefill_ms(8, 2048);
        assert!(long > 2.0 * short, "{kind}: {short} -> {long}");
    }
}

#[test]
fn decode_step_grows_with_context() {
    let cluster = GpuCluster::single(Gpu::Rtx4090);
    let engine = ServingEngine::new(EngineKind::ZipServ, LlmModel::Llama31_8b, cluster);
    let early = engine.decode_step(16, 256).total_ms();
    let late = engine.decode_step(16, 4096).total_ms();
    assert!(late > early, "attention must grow with the KV cache");
}

#[test]
fn online_and_offline_views_agree_on_the_winner() {
    // The continuous-batching simulation must reach the same conclusion as
    // the static-batch sweep: ZipServ over vLLM.
    let cluster = GpuCluster::single(Gpu::Rtx4090);
    let arrivals = poisson_arrivals(6.0, 40, 512, 128, 23);
    let build = |kind| {
        ServingEngine::builder()
            .kind(kind)
            .model(LlmModel::Llama31_8b)
            .cluster(cluster)
            .build()
    };
    let rz = build(EngineKind::ZipServ).serve_online(arrivals.clone());
    let rv = build(EngineKind::Vllm).serve_online(arrivals);
    assert_eq!(rz.completions.len(), 40);
    assert_eq!(rv.completions.len(), 40);
    assert!(rz.throughput_tps >= rv.throughput_tps * 0.98);
}

#[test]
fn mixed_priority_traffic_still_favors_the_compressed_engine() {
    // The scenario the policy redesign opens: the same mixed-priority,
    // SLO-carrying trace under the same EDF policy on compressed vs
    // uncompressed engines. ZipServ's freed weight memory turns into
    // admission headroom: more throughput and a lower tail TTFT.
    let arrivals = ArrivalMix::paper_mix().generate(12.0, 100, 37);
    let build = |kind| {
        ServingEngine::builder()
            .kind(kind)
            .model(LlmModel::Llama31_8b)
            .cluster(GpuCluster::single(Gpu::Rtx4090))
            .policy(SloEdf::default())
            .build()
    };
    let rz = build(EngineKind::ZipServ).serve_online(arrivals.clone());
    let rv = build(EngineKind::Vllm).serve_online(arrivals);
    assert_eq!(rz.completions.len(), 100);
    assert_eq!(rv.completions.len(), 100);
    assert!(
        rz.throughput_tps > rv.throughput_tps,
        "{} vs {}",
        rz.throughput_tps,
        rv.throughput_tps
    );
    let (tz, tv) = (
        rz.ttft_percentile(0.99).expect("completions"),
        rv.ttft_percentile(0.99).expect("completions"),
    );
    assert!(tz < tv, "p99 TTFT {tz} vs {tv}");
    // Per-class stats exist for every tier of the mix on both engines.
    for class in PriorityClass::ALL {
        assert!(rz.class_stats(class).is_some(), "{class} missing on zip");
        assert!(rv.class_stats(class).is_some(), "{class} missing on vllm");
    }
}

#[test]
fn bigger_batches_amortize_weight_reads() {
    let cluster = GpuCluster::single(Gpu::Rtx4090);
    let engine = ServingEngine::new(EngineKind::ZipServ, LlmModel::Llama31_8b, cluster);
    let s8 = engine.decode_step(8, 512).total_ms();
    let s32 = engine.decode_step(32, 512).total_ms();
    // 4x the tokens for well under 4x the time (weights read once).
    assert!(s32 < 2.0 * s8, "{s8} -> {s32}");
}

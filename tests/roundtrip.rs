//! Cross-crate lossless round-trip tests: every codec in the repository
//! must reproduce arbitrary BF16 weight streams bit-exactly.

use proptest::prelude::*;
use zipserv::bf16::{Bf16, Matrix};
use zipserv::entropy::huffman::{ChunkedHuffman, HuffmanBlob};
use zipserv::entropy::rans::RansBlob;
use zipserv::entropy::split::{recombine, split_planes};
use zipserv::kernels::decoupled::BaselineCodec;
use zipserv::tbe::{TbeCompressor, TbeError};

/// Arbitrary BF16 values over the full bit space (includes NaN payloads,
/// infinities, subnormals and both zeros).
fn any_bf16() -> impl Strategy<Value = Bf16> + Clone {
    any::<u16>().prop_map(Bf16::from_bits)
}

/// Gaussian-ish weights: the common case.
fn weight_bf16() -> impl Strategy<Value = Bf16> + Clone {
    (-1.0f32..1.0).prop_map(|x| Bf16::from_f32(x * 0.05))
}

fn tileable_matrix(
    values: impl Strategy<Value = Bf16> + Clone,
) -> impl Strategy<Value = Matrix<Bf16>> {
    (1usize..5, 1usize..5).prop_flat_map(move |(tr, tc)| {
        proptest::collection::vec(values.clone(), tr * 8 * tc * 8)
            .prop_map(move |v| Matrix::from_vec(tr * 8, tc * 8, v))
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn tca_tbe_roundtrips_gaussian_weights(m in tileable_matrix(weight_bf16())) {
        let tbe = TbeCompressor::new().compress(&m).expect("tileable");
        prop_assert_eq!(tbe.decompress(), m);
    }

    #[test]
    fn tca_tbe_roundtrips_arbitrary_bits(m in tileable_matrix(any_bf16())) {
        let tbe = TbeCompressor::new().compress(&m).expect("tileable");
        let out = tbe.decompress();
        for (a, b) in m.as_slice().iter().zip(out.as_slice()) {
            prop_assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn huffman_roundtrips(data in proptest::collection::vec(any::<u8>(), 1..4096)) {
        let blob = HuffmanBlob::compress(&data).expect("non-empty");
        prop_assert_eq!(blob.decompress().expect("valid"), data);
    }

    #[test]
    fn chunked_huffman_roundtrips(
        data in proptest::collection::vec(any::<u8>(), 1..4096),
        chunk in 1usize..512,
    ) {
        let blob = ChunkedHuffman::compress(&data, chunk).expect("non-empty");
        prop_assert_eq!(blob.decompress().expect("valid"), data);
    }

    #[test]
    fn rans_roundtrips(
        data in proptest::collection::vec(any::<u8>(), 1..4096),
        streams in 1usize..33,
    ) {
        let blob = RansBlob::compress(&data, streams).expect("non-empty");
        prop_assert_eq!(blob.decompress().expect("valid"), data);
    }

    #[test]
    fn plane_split_roundtrips(weights in proptest::collection::vec(any_bf16(), 0..2048)) {
        let planes = split_planes(&weights);
        prop_assert_eq!(recombine(&planes), weights);
    }

    #[test]
    fn non_tileable_dimensions_rejected_not_panicked(
        rows in 1usize..64,
        cols in 1usize..64,
    ) {
        // TCA-TBE tiles are 8x8: any dimension that is not a multiple of 8
        // must be rejected with a typed error, never a panic.
        prop_assume!(rows % 8 != 0 || cols % 8 != 0);
        let m = Matrix::from_fn(rows, cols, |r, c| {
            Bf16::from_f32(((r * 31 + c) as f32).sin() * 0.05)
        });
        let got = TbeCompressor::new().compress(&m);
        prop_assert_eq!(got, Err(TbeError::NotTileable { rows, cols }));
    }

    #[test]
    fn baseline_codecs_roundtrip_weights(weights in proptest::collection::vec(weight_bf16(), 1..4096)) {
        for codec in BaselineCodec::ALL {
            let (_, restored) = codec.roundtrip(&weights).expect("valid");
            prop_assert_eq!(&restored, &weights, "{}", codec);
        }
    }
}

#[test]
fn all_65536_bit_patterns_survive_tca_tbe() {
    // A matrix holding every possible BF16 bit pattern exactly once.
    let m = Matrix::from_fn(256, 256, |r, c| Bf16::from_bits((r * 256 + c) as u16));
    let tbe = TbeCompressor::new().compress(&m).expect("tileable");
    let out = tbe.decompress();
    for r in 0..256 {
        for c in 0..256 {
            assert_eq!(m[(r, c)].to_bits(), out[(r, c)].to_bits(), "({r},{c})");
        }
    }
}

//! The paper's headline claims, checked end to end across the whole
//! workspace (EXPERIMENTS.md records each against the paper's figures).

use zipserv::bf16::gen::{ModelFamily, WeightGen};
use zipserv::bf16::stats::{ExponentHistogram, ExponentSummary};
use zipserv::gpu::device::Gpu;
use zipserv::gpu::roofline::{figure5_series, GemmShape};
use zipserv::kernels::cublas_model::CublasTc;
use zipserv::kernels::decoupled::{BaselineCodec, DecoupledPipeline};
use zipserv::kernels::fused::{typical_stats, FusedZipGemm};
use zipserv::kernels::shapes::{LayerKind, LlmModel};
use zipserv::serve::cluster::GpuCluster;
use zipserv::serve::engine::{EngineKind, ServingEngine};
use zipserv::serve::workload::Workload;
use zipserv::tbe::TbeCompressor;

/// Abstract: "reduces the model size by up to 30%".
#[test]
fn claim_model_size_reduction_up_to_30_percent() {
    let w = WeightGen::for_family(ModelFamily::Mistral)
        .seed(1)
        .matrix(512, 512);
    let tbe = TbeCompressor::new().compress(&w).expect("tileable");
    let pct = tbe.stats().size_percent();
    assert!(
        pct < 73.0,
        "compressed to {pct}% of raw — saving must approach 30%"
    );
    assert!(pct > 65.0, "lossless format cannot beat the entropy floor");
}

/// §3.1: exponent entropy 2.57–2.74 bits, top-3 > 67%, top-7 > 95%.
#[test]
fn claim_exponent_statistics() {
    for family in ModelFamily::ALL {
        let weights = WeightGen::for_family(family).seed(3).vector(300_000);
        let s = ExponentSummary::from_histogram(&ExponentHistogram::from_values(weights));
        assert!(
            s.entropy_bits > 2.3 && s.entropy_bits < 2.9,
            "{}: {}",
            family.name(),
            s.entropy_bits
        );
        assert!(
            s.top3_coverage > 0.60,
            "{}: top3 {}",
            family.name(),
            s.top3_coverage
        );
        assert!(
            s.top7_coverage > 0.95,
            "{}: top7 {}",
            family.name(),
            s.top7_coverage
        );
        assert!(s.top7_contiguous, "{}: contiguity", family.name());
    }
}

/// §3.3 / Figure 5: decoupled pipelines lose ~62% CI; the fused pipeline
/// gains ~50% over even the uncompressed GEMM.
#[test]
fn claim_compute_intensity() {
    for p in figure5_series(&[8, 16, 32, 64], 1.51) {
        assert!(
            (p.decoupled_degradation() - 0.62).abs() < 0.015,
            "N={}",
            p.n
        );
        assert!((p.fused_improvement() - 0.50).abs() < 0.04, "N={}", p.n);
    }
}

/// Abstract / §6.1: up to 2.21× kernel speedup over cuBLAS; average above
/// 1.2× on consumer GPUs; decoupled baselines far below 1×.
#[test]
fn claim_kernel_speedups() {
    for gpu in [Gpu::Rtx4090, Gpu::L40s] {
        let spec = gpu.spec();
        let mut speedups = Vec::new();
        for model in LlmModel::ALL {
            for layer in LayerKind::BLOCK {
                let shape = layer.gemm_shape(model, 32);
                let dense = CublasTc::time(shape, &spec).total_us;
                let fused =
                    FusedZipGemm::time(&typical_stats(shape.m, shape.k), 32, &spec).total_us;
                speedups.push(dense / fused);
            }
        }
        let avg = speedups.iter().sum::<f64>() / speedups.len() as f64;
        let peak = speedups.iter().cloned().fold(0.0, f64::max);
        assert!(avg > 1.2 && avg < 1.6, "{gpu:?} avg {avg}");
        assert!(peak > 1.35 && peak < 2.3, "{gpu:?} peak {peak}");

        // Baselines slow inference down (paper: 0.17–0.34x).
        let shape = GemmShape::new(28672, 4096, 32);
        let dense = CublasTc::time(shape, &spec).total_us;
        for codec in BaselineCodec::ALL {
            let t = DecoupledPipeline::new(codec).time(shape, &spec).total_us();
            let s = dense / t;
            assert!(s < 0.45, "{gpu:?}/{codec}: {s}");
        }
    }
}

/// §6.2 / Figure 13: ZipServ-Decomp beats every baseline decompressor.
#[test]
fn claim_standalone_decompression_fastest() {
    let spec = Gpu::L40s.spec();
    let dims = LlmModel::Llama31_8b.dims();
    let mut zip = 0.0;
    let mut base = [0.0f64; 3];
    for layer in LayerKind::BLOCK {
        let (m, k) = layer.weight_dims(&dims);
        zip += FusedZipGemm::decomp_profile(&typical_stats(m, k))
            .execute(&spec)
            .total_us;
        for (i, codec) in BaselineCodec::ALL.iter().enumerate() {
            base[i] += codec.decomp_profile(m, k, 2.65).execute(&spec).total_us;
        }
    }
    // Paper: 2.14x (DietGPU), 1.83x (nvCOMP), 1.10x (DFloat11).
    assert!(base[0] / zip > 1.6, "DietGPU speedup {}", base[0] / zip);
    assert!(base[1] / zip > 1.4, "nvCOMP speedup {}", base[1] / zip);
    assert!(base[2] / zip > 1.02, "DFloat11 speedup {}", base[2] / zip);
}

/// Abstract / §6.5: average ~1.22× end-to-end throughput over vLLM, with
/// the gains growing for long outputs; big margins over Transformers and
/// DFloat11.
#[test]
fn claim_end_to_end_speedups() {
    let model = LlmModel::Llama31_8b;
    let cluster = GpuCluster::single(Gpu::Rtx4090);
    let mut vs = [Vec::new(), Vec::new(), Vec::new()];
    for w in Workload::paper_sweep() {
        let zip = ServingEngine::new(EngineKind::ZipServ, model, cluster)
            .serve(w)
            .throughput_tps;
        vs[0].push(
            zip / ServingEngine::new(EngineKind::Vllm, model, cluster)
                .serve(w)
                .throughput_tps,
        );
        vs[1].push(
            zip / ServingEngine::new(EngineKind::Transformers, model, cluster)
                .serve(w)
                .throughput_tps,
        );
        vs[2].push(
            zip / ServingEngine::new(EngineKind::DFloat11, model, cluster)
                .serve(w)
                .throughput_tps,
        );
    }
    let avg = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
    assert!(
        avg(&vs[0]) > 1.12 && avg(&vs[0]) < 1.45,
        "vs vLLM {}",
        avg(&vs[0])
    );
    assert!(avg(&vs[1]) > 2.2, "vs Transformers {}", avg(&vs[1]));
    assert!(avg(&vs[2]) > 4.5, "vs DFloat11 {}", avg(&vs[2]));
}

/// §6.5 / Figure 17: weight savings become KV-cache capacity.
#[test]
fn claim_memory_savings_become_kv_capacity() {
    let cluster = GpuCluster::single(Gpu::Rtx4090);
    let zip = ServingEngine::new(EngineKind::ZipServ, LlmModel::Llama31_8b, cluster);
    let vllm = ServingEngine::new(EngineKind::Vllm, LlmModel::Llama31_8b, cluster);
    let dw = vllm.memory_plan().weight_bytes as f64 - zip.memory_plan().weight_bytes as f64;
    let dk = zip.memory_plan().kv_bytes as f64 - vllm.memory_plan().kv_bytes as f64;
    assert!(dw > 2.5e9, "weight saving {dw}");
    assert!((dw - dk).abs() < 1e6, "every saved weight byte becomes KV");
}

/// §6.3: consumer GPUs with ZipGEMM approach datacenter-class dense GEMM.
#[test]
fn claim_consumer_datacenter_gap_narrows() {
    let shape = GemmShape::new(28672, 4096, 32);
    let stats = typical_stats(28672, 4096);
    // RTX4090 + ZipGEMM within ~20% of A100 + cuBLAS (paper: 9.3% faster).
    let fused4090 = FusedZipGemm::time(&stats, 32, &Gpu::Rtx4090.spec()).total_us;
    let a100 = CublasTc::time(shape, &Gpu::A100.spec()).total_us;
    assert!(fused4090 / a100 < 1.25, "ratio {}", fused4090 / a100);
    // RTX5090's deficit vs H800 shrinks by at least half with ZipGEMM.
    let h800 = CublasTc::time(shape, &Gpu::H800.spec()).total_us;
    let dense5090 = CublasTc::time(shape, &Gpu::Rtx5090.spec()).total_us;
    let fused5090 = FusedZipGemm::time(&stats, 32, &Gpu::Rtx5090.spec()).total_us;
    assert!((fused5090 / h800 - 1.0) < 0.5 * (dense5090 / h800 - 1.0));
}

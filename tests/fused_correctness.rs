//! The fused ZipGEMM must be *bitwise* identical to the dense reference
//! GEMM over the decompressed weights — the "bit-exact inference" claim.

use proptest::prelude::*;
use zipserv::bf16::{Bf16, Matrix};
use zipserv::kernels::gemm_ref;
use zipserv::tbe::{TbeCompressor, ZipGemm};

fn weight(scale: f32) -> impl Strategy<Value = Bf16> {
    (-1.0f32..1.0).prop_map(move |x| Bf16::from_f32(x * scale))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn fused_matches_dense_bitwise(
        tm in 1usize..4,
        tk in 1usize..4,
        n in 1usize..9,
        seed in any::<u64>(),
    ) {
        let (m, k) = (tm * 8, tk * 8);
        let mut rng_state = seed | 1;
        let mut next = move || {
            rng_state ^= rng_state << 13;
            rng_state ^= rng_state >> 7;
            rng_state ^= rng_state << 17;
            (rng_state >> 40) as f32 / 16777216.0 - 0.5
        };
        let w = Matrix::from_fn(m, k, |_, _| Bf16::from_f32(next() * 0.1));
        let x = Matrix::from_fn(k, n, |_, _| Bf16::from_f32(next() * 2.0));

        let tbe = TbeCompressor::new().compress(&w).expect("tileable");
        let fused = ZipGemm::new().multiply(&tbe, &x);
        let dense = gemm_ref::gemm(&w, &x);
        for (a, b) in fused.as_slice().iter().zip(dense.as_slice()) {
            prop_assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn blocked_parallel_and_reference_agree_bitwise(
        tm in 1usize..6,
        tk in 1usize..5,
        n in 0usize..34,
        threads in 1usize..9,
        outlier_mod in 5u64..40,
        seed in any::<u64>(),
    ) {
        // The serial blocked path, the parallel blocked path (including
        // thread counts that do not divide the tile rows) and the naive
        // reference must agree bit for bit across random shapes — n spans
        // zero columns through several NB micro-kernel blocks — and random
        // coverages (outlier_mod controls the fallback-path density).
        let (m, k) = (tm * 8, tk * 8);
        let mut rng_state = seed | 1;
        let mut next = move || {
            rng_state ^= rng_state << 13;
            rng_state ^= rng_state >> 7;
            rng_state ^= rng_state << 17;
            rng_state
        };
        let unit = |v: u64| (v >> 40) as f32 / 16777216.0 - 0.5;
        let w = Matrix::from_fn(m, k, |_, _| {
            let v = next();
            let scale = if v % outlier_mod == 0 { 300.0 } else { 0.1 };
            Bf16::from_f32(unit(v) * scale)
        });
        let x = Matrix::from_fn(k, n, |_, _| Bf16::from_f32(unit(next()) * 2.0));

        let tbe = TbeCompressor::new().compress(&w).expect("tileable");
        let kernel = ZipGemm::new();
        let blocked = kernel.multiply(&tbe, &x);
        let reference = kernel.multiply_reference(&tbe, &x);
        let parallel = kernel.multiply_parallel(&tbe, &x, threads);
        prop_assert_eq!((blocked.rows(), blocked.cols()), (m, n));
        for ((a, b), c) in blocked
            .as_slice()
            .iter()
            .zip(reference.as_slice())
            .zip(parallel.as_slice())
        {
            prop_assert_eq!(a.to_bits(), b.to_bits());
            prop_assert_eq!(a.to_bits(), c.to_bits());
        }
    }

    #[test]
    fn fused_handles_outlier_weights(weights in proptest::collection::vec(weight(100.0), 64..=64)) {
        // One 8x8 weight tile of large-magnitude values (mostly fallback
        // path), multiplied against an identity-ish activation.
        let w = Matrix::from_vec(8, 8, weights);
        let x = Matrix::from_fn(8, 8, |r, c| if r == c { Bf16::ONE } else { Bf16::ZERO });
        let tbe = TbeCompressor::new().compress(&w).expect("tileable");
        let y = ZipGemm::new().multiply(&tbe, &x);
        // W * I = W (each row sum is a single product with 1.0).
        for r in 0..8 {
            for c in 0..8 {
                prop_assert_eq!(y[(r, c)], w[(r, c)].to_f32());
            }
        }
    }
}

#[test]
fn bf16_output_path_matches() {
    let w = Matrix::from_fn(64, 64, |r, c| {
        Bf16::from_f32(((r * 64 + c) as f32).sin() * 0.02)
    });
    let x = Matrix::from_fn(64, 4, |r, c| Bf16::from_f32(((r + c) as f32).cos()));
    let tbe = TbeCompressor::new().compress(&w).expect("tileable");
    let fused = ZipGemm::new().multiply_bf16(&tbe, &x);
    let dense = gemm_ref::gemm_bf16(&w, &x);
    assert_eq!(fused, dense);
}

//! Structural invariants of the TCA-TBE format, property-tested.

use proptest::prelude::*;
use zipserv::bf16::{Bf16, Matrix};
use zipserv::tbe::format::fragment::{fallback_index, high_freq_index};
use zipserv::tbe::format::layout::{block_sequence, tile_sequence};
use zipserv::tbe::TbeCompressor;

fn gaussian_matrix() -> impl Strategy<Value = Matrix<Bf16>> {
    (1usize..6, 1usize..6, any::<u64>()).prop_map(|(tr, tc, seed)| {
        let mut s = seed | 1;
        Matrix::from_fn(tr * 8, tc * 8, |_, _| {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            let u = (s >> 40) as f32 / 16777216.0 - 0.5;
            Bf16::from_f32(u * 0.08)
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn element_counts_are_conserved(m in gaussian_matrix()) {
        let tbe = TbeCompressor::new().compress(&m).expect("tileable");
        let s = tbe.stats();
        prop_assert_eq!(s.high_freq_elems + s.fallback_elems, m.len());
        prop_assert_eq!(s.raw_bytes, 2 * m.len());
    }

    #[test]
    fn compressed_never_larger_than_2x_raw(m in gaussian_matrix()) {
        // Worst case: everything fallback = 16 + 3 bits + overhead < 2x.
        let tbe = TbeCompressor::new().compress(&m).expect("tileable");
        prop_assert!(tbe.stats().compressed_bytes() < 2 * tbe.stats().raw_bytes + 64);
    }

    #[test]
    fn tile_views_partition_the_buffers(m in gaussian_matrix()) {
        let tbe = TbeCompressor::new().compress(&m).expect("tileable");
        let mut hf_total = 0usize;
        let mut fb_total = 0usize;
        for seq in 0..tbe.tile_count() {
            let view = tbe.tile_view(seq);
            prop_assert_eq!(view.high_freq.len() + view.fallback.len(), 64);
            hf_total += view.high_freq.len();
            fb_total += view.fallback.len();
        }
        let s = tbe.stats();
        prop_assert_eq!(hf_total, s.high_freq_elems);
        prop_assert_eq!(fb_total, s.fallback_elems);
    }

    #[test]
    fn disk_format_roundtrip_preserves_everything(m in gaussian_matrix()) {
        let tbe = TbeCompressor::new().compress(&m).expect("tileable");
        let blob = zipserv::tbe::format::serialize::to_bytes(&tbe);
        let back = zipserv::tbe::format::serialize::from_bytes(&blob).expect("valid blob");
        prop_assert_eq!(back.decompress(), m);
    }

    #[test]
    fn disk_format_rejects_random_corruption(m in gaussian_matrix(), flip in any::<u32>()) {
        let tbe = TbeCompressor::new().compress(&m).expect("tileable");
        let mut blob = zipserv::tbe::format::serialize::to_bytes(&tbe).to_vec();
        let pos = flip as usize % blob.len();
        let bit = 1u8 << (flip % 8);
        blob[pos] ^= bit;
        // Any single-bit flip must be caught by the checksum (or, if it
        // lands in the checksum itself, by the mismatch).
        prop_assert!(zipserv::tbe::format::serialize::from_bytes(&blob).is_err());
    }

    #[test]
    fn popcount_addressing_is_consistent(indicator in any::<u64>()) {
        // For every position, idx_H + idx_L == p, and following the owning
        // path yields strictly increasing buffer indices.
        let mut prev_hf = 0usize;
        let mut prev_fb = 0usize;
        for p in 0..64usize {
            prop_assert_eq!(high_freq_index(indicator, p) + fallback_index(indicator, p), p);
            if (indicator >> p) & 1 == 1 {
                prop_assert_eq!(high_freq_index(indicator, p), prev_hf);
                prev_hf += 1;
            } else {
                prop_assert_eq!(fallback_index(indicator, p), prev_fb);
                prev_fb += 1;
            }
        }
        prop_assert_eq!(prev_hf, indicator.count_ones() as usize);
    }
}

#[test]
fn hierarchical_tile_order_is_a_permutation() {
    for (rows, cols) in [(64, 64), (128, 192), (72, 88)] {
        let seq = tile_sequence(rows, cols);
        let blocks = block_sequence(rows, cols);
        let flat: Vec<_> = blocks.into_iter().flatten().collect();
        assert_eq!(seq, flat, "{rows}x{cols}: sequence must equal block order");
        let mut sorted = seq.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), (rows / 8) * (cols / 8));
    }
}

// ---------------------------------------------------------------------------
// Decoder-path identity: the table-driven (LUT) and plane-sliced (SIMD)
// decoders must be bitwise interchangeable with the lanewise reference on
// *every* representable tile, not just compressor output.

use zipserv::tbe::decompress::{decode_tile_lanewise, decode_tile_lut, decode_tile_simd};
use zipserv::tbe::format::layout::TileView;

/// An arbitrary — possibly degenerate — raw FragTile: three bit planes,
/// exactly-sized value buffers, and a base exponent. Alongside fully random
/// planes, the strategy force-feeds the decoder corners: the all-fallback
/// tile (`indicator == 0`), the all-high-freq tile (every codeword set),
/// and single-element tiles whose one codeword (any of 1..=7) sits at
/// position 0 or 63.
fn raw_tile() -> impl Strategy<Value = ([u64; 3], Vec<u8>, Vec<u16>, u8)> {
    (
        (0u8..8, 1u64..=7, any::<u8>()),
        (any::<u64>(), any::<u64>(), any::<u64>()),
        proptest::collection::vec(any::<u8>(), 64),
        proptest::collection::vec(any::<u16>(), 64),
    )
        .prop_map(|((mode, c, base), (r0, r1, r2), hf, fb)| {
            // Half the cases are fully random planes; the rest force-feed
            // one of the four degenerate corners.
            let (b0, b1, b2) = match mode {
                0 => (0, 0, 0),
                1 => (u64::MAX, r1, r2),
                2 => (c & 1, (c >> 1) & 1, (c >> 2) & 1),
                3 => ((c & 1) << 63, ((c >> 1) & 1) << 63, ((c >> 2) & 1) << 63),
                _ => (r0, r1, r2),
            };
            let n = (b0 | b1 | b2).count_ones() as usize;
            ([b0, b1, b2], hf[..n].to_vec(), fb[..64 - n].to_vec(), base)
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn decode_paths_are_bitwise_identical_on_raw_tiles(tile in raw_tile()) {
        let (bitmaps, hf, fb, base) = tile;
        let view = TileView { bitmaps: &bitmaps, high_freq: &hf, fallback: &fb };
        let lanewise = decode_tile_lanewise(view, base);
        prop_assert_eq!(lanewise, decode_tile_lut(view, base), "lut vs lanewise");
        prop_assert_eq!(lanewise, decode_tile_simd(view, base), "simd vs lanewise");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn decode_paths_agree_on_every_compressed_tile(m in gaussian_matrix()) {
        let tbe = TbeCompressor::new().compress(&m).expect("tileable");
        for seq in 0..tbe.tile_count() {
            let view = tbe.tile_view(seq);
            let lanewise = decode_tile_lanewise(view, tbe.base_exp());
            prop_assert_eq!(lanewise, decode_tile_lut(view, tbe.base_exp()), "tile {}", seq);
            prop_assert_eq!(lanewise, decode_tile_simd(view, tbe.base_exp()), "tile {}", seq);
        }
        prop_assert_eq!(tbe.decompress(), m);
    }
}

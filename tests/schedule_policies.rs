//! Scheduling-policy suite: bit-compatibility of the trait-based loop with
//! the legacy FCFS batcher, and scenario-level wins for the QoS-aware
//! policies (priority bursts, SLO deadlines, preemption accounting).

use proptest::prelude::*;
use zipserv::prelude::*;
use zipserv::serve::scheduler::{poisson_arrivals as poisson, run_policy, ContinuousBatcher};

fn zip_engine() -> ServingEngine {
    ServingEngine::builder()
        .kind(EngineKind::ZipServ)
        .model(LlmModel::Llama31_8b)
        .cluster(GpuCluster::single(Gpu::Rtx4090))
        .build()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The tentpole compatibility guarantee: `Fcfs` under the generic
    /// `SchedulePolicy` loop reproduces the frozen pre-trait batcher
    /// *exactly* — same completions in the same order, same duration,
    /// throughput and peak batch — on random Poisson arrival streams.
    #[test]
    fn fcfs_is_bit_compatible_with_legacy_batcher(
        rate10 in 5u64..120,
        count in 5usize..48,
        prompt in 32u64..1024,
        output in 8u64..256,
        seed in 1u64..1_000_000,
    ) {
        let engine = zip_engine();
        let arrivals = poisson(rate10 as f64 / 10.0, count, prompt, output, seed);
        let batcher = ContinuousBatcher::new(&engine);
        let legacy = batcher.run_reference(arrivals.clone());
        let via_trait = batcher.run(arrivals.clone());
        let via_builder = engine.serve_online(arrivals);
        prop_assert_eq!(&via_trait, &legacy);
        prop_assert_eq!(&via_builder, &legacy);
    }
}

/// Background load at KV-pressure, then a burst of interactive requests
/// mid-run: the QoS-aware policies must cut the high class's p99 TTFT
/// versus FCFS without giving up more than 5% total throughput. The
/// background jobs are long-output (1024 tokens) so the run is KV-bound:
/// FCFS head-of-line blocks the short burst behind a standard request that
/// cannot fit, while Priority/SJF slot the burst into the free headroom.
#[test]
fn qos_policies_beat_fcfs_on_high_priority_burst() {
    let mut arrivals: Vec<Request> = poisson(8.0, 60, 1024, 1024, 11)
        .into_iter()
        .map(|r| r.with_priority(PriorityClass::Standard))
        .collect();
    // Eight interactive chat requests land together mid-run, once the KV
    // cache is saturated by the background wave.
    for i in 0..8u64 {
        arrivals.push(
            Request::new(1000 + i, 30.0 + 0.01 * i as f64, 128, 32)
                .with_priority(PriorityClass::Interactive)
                .with_slo(Slo::new(2.0, 0.1)),
        );
    }

    let engine = zip_engine();
    let fcfs = run_policy(&engine, &Fcfs, 64, arrivals.clone());
    let fcfs_p99 = fcfs
        .class_ttft_percentile(PriorityClass::Interactive, 0.99)
        .expect("burst completed");

    for policy in [
        Box::new(Priority::default()) as Box<dyn SchedulePolicy>,
        Box::new(PreemptiveSjf::default()),
    ] {
        let report = run_policy(&engine, policy.as_ref(), 64, arrivals.clone());
        assert_eq!(
            report.completions.len(),
            arrivals.len(),
            "{}: all requests complete",
            policy.name()
        );
        let p99 = report
            .class_ttft_percentile(PriorityClass::Interactive, 0.99)
            .expect("burst completed");
        assert!(
            p99 < fcfs_p99,
            "{}: interactive p99 TTFT {p99:.2}s vs FCFS {fcfs_p99:.2}s",
            policy.name()
        );
        assert!(
            report.throughput_tps >= 0.95 * fcfs.throughput_tps,
            "{}: throughput {:.1} vs FCFS {:.1}",
            policy.name(),
            report.throughput_tps,
            fcfs.throughput_tps
        );
    }
}

/// EDF admits by deadline: on the saturated (smaller-KV) vLLM deployment,
/// tightly-deadlined requests attain their SLO strictly more often than
/// under FCFS.
#[test]
fn slo_edf_improves_slo_attainment_under_load() {
    let arrivals = ArrivalMix::paper_mix().generate(12.0, 100, 37);
    let engine = ServingEngine::builder().kind(EngineKind::Vllm).build();
    let fcfs = run_policy(&engine, &Fcfs, 64, arrivals.clone());
    let edf = run_policy(&engine, &SloEdf::default(), 64, arrivals);
    let (af, ae) = (
        fcfs.slo_attainment().expect("SLO-carrying requests"),
        edf.slo_attainment().expect("SLO-carrying requests"),
    );
    assert!(ae > af, "EDF attainment {ae:.3} vs FCFS {af:.3}");
}

/// Preemption bookkeeping: when PreemptiveSjf evicts, the report counts it,
/// the victim completes anyway, and nobody exceeds the preemption cap. The
/// paper mix at 12 req/s saturates the vLLM deployment's KV cache, so
/// short interactive jobs must evict long batch jobs to get in.
#[test]
fn preemption_is_accounted_and_bounded() {
    let arrivals = ArrivalMix::paper_mix().generate(12.0, 100, 37);
    let engine = ServingEngine::builder().kind(EngineKind::Vllm).build();
    let report = run_policy(&engine, &PreemptiveSjf::default(), 64, arrivals.clone());
    assert_eq!(report.completions.len(), arrivals.len());
    assert!(report.preemptions > 0, "scenario must trigger preemption");
    let per_request: u64 = report
        .completions
        .iter()
        .map(|c| c.preemptions as u64)
        .sum();
    assert_eq!(per_request, report.preemptions, "per-request sums to total");
    assert!(report
        .completions
        .iter()
        .all(|c| c.preemptions <= zipserv::serve::scheduler::MAX_PREEMPTIONS));
    // Page-out recovery completes everything too, paying PCIe transfers
    // instead of recompute prefills.
    let paged = run_policy(
        &engine,
        &PreemptiveSjf {
            mode: PreemptionMode::PageOut,
        },
        64,
        arrivals.clone(),
    );
    assert_eq!(paged.completions.len(), arrivals.len());
    assert!(paged.preemptions > 0);
}

/// The empty run: no arrivals means `None` percentiles, not a panic — the
/// regression the Option migration exists for.
#[test]
fn empty_trace_reports_none_everywhere() {
    let engine = zip_engine();
    let report = engine.serve_online(Vec::new());
    assert!(report.completions.is_empty());
    assert_eq!(report.latency_percentile(0.5), None);
    assert_eq!(report.ttft_percentile(0.99), None);
    assert_eq!(report.mean_queue_s(), None);
    assert_eq!(report.slo_attainment(), None);
    assert!(report.per_class().is_empty());
    assert_eq!(report.throughput_tps, 0.0);
}

/// Per-class stats partition the run: counts sum to the total and the
/// interactive class is at least as fast as batch under Priority.
#[test]
fn class_stats_partition_the_run() {
    let arrivals = ArrivalMix::paper_mix().generate(10.0, 90, 51);
    let engine = ServingEngine::builder().policy(Priority::default()).build();
    let report = engine.serve_online(arrivals);
    let stats = report.per_class();
    let total: usize = stats.iter().map(|s| s.count).sum();
    assert_eq!(total, report.completions.len());
    let by = |c: PriorityClass| stats.iter().find(|s| s.class == c).expect("class present");
    assert!(
        by(PriorityClass::Interactive).p99_ttft_s <= by(PriorityClass::Batch).p99_ttft_s,
        "interactive {} vs batch {}",
        by(PriorityClass::Interactive).p99_ttft_s,
        by(PriorityClass::Batch).p99_ttft_s
    );
}

//! Tensor/pipeline-parallel serving: per-rank KV partitioning, pipeline
//! bubble accounting, scheduler-visible communication cost, and the
//! scheduler accounting regressions (split page-out charging, victim
//! resume priority) that ride along.

use zipserv::gpu::device::Gpu;
use zipserv::kernels::shapes::LlmModel;
use zipserv::prelude::*;
use zipserv::serve::scheduler::run_policy;

fn builder(kind: EngineKind) -> EngineBuilder {
    ServingEngine::builder()
        .kind(kind)
        .model(LlmModel::Llama31_8b)
        .cluster(GpuCluster::single(Gpu::Rtx4090))
}

fn all_policies() -> Vec<Box<dyn SchedulePolicy>> {
    vec![
        Box::new(Fcfs),
        Box::new(Priority::default()),
        Box::new(SloEdf::default()),
        Box::new(PreemptiveSjf::default()),
        Box::new(PreemptiveSjf {
            mode: PreemptionMode::PageOut,
        }),
    ]
}

/// The acceptance pin: setting the new `tp`/`pp` axes to 1 is a perfect
/// no-op — every shipped policy produces a bit-identical `ScheduleReport`
/// to an engine that never heard of the axes, on both an easy trace and a
/// preemption-heavy one.
#[test]
fn tp1_pp1_axes_are_bit_identical_for_every_policy() {
    let mix = ArrivalMix::paper_mix().generate(12.0, 100, 37);
    for kind in [EngineKind::ZipServ, EngineKind::Vllm] {
        let implicit = builder(kind).build();
        let explicit = builder(kind).tp(1).pp(1).micro_batches(1).build();
        assert_eq!(implicit.kv_capacity_tokens(), explicit.kv_capacity_tokens());
        for policy in all_policies() {
            let a = run_policy(&implicit, policy.as_ref(), 64, mix.clone());
            let b = run_policy(&explicit, policy.as_ref(), 64, mix.clone());
            assert_eq!(a, b, "{kind:?}/{}", policy.name());
            assert_eq!(a.comm_s, 0.0, "single GPU pays no communication");
        }
    }
}

/// The three §6.5 deployments serve online end to end, and on the
/// multi-GPU ones the all-reduce cost the engine computes actually lands
/// in the per-step time the scheduler charges (`ScheduleReport::comm_s`).
#[test]
fn paper_deployments_charge_allreduce_in_scheduler_steps() {
    let deployments = [
        (LlmModel::Llama31_8b, GpuCluster::single(Gpu::Rtx4090)),
        (
            LlmModel::Mistral24b,
            GpuCluster::tensor_parallel(Gpu::L40s, 2),
        ),
        (
            LlmModel::Llama31_70b,
            GpuCluster::tensor_parallel(Gpu::L40s, 4),
        ),
    ];
    for (model, cluster) in deployments {
        let engine = ServingEngine::builder()
            .kind(EngineKind::ZipServ)
            .model(model)
            .cluster(cluster)
            .build();
        let step = engine.decode_step(32, 1024);
        let report = engine.serve_online(poisson_arrivals(4.0, 30, 512, 64, 9));
        assert_eq!(report.completions.len(), 30, "{model}");
        if cluster.tp() > 1 {
            assert!(step.allreduce_ms > 0.0, "{model}: step shows all-reduce");
            assert!(report.comm_s > 0.0, "{model}: scheduler charged comm");
            assert!(
                report.comm_s < report.duration_s,
                "{model}: comm is a fraction of the run"
            );
        } else {
            assert_eq!(step.allreduce_ms, 0.0, "{model}");
            assert_eq!(report.comm_s, 0.0, "{model}");
        }
    }
}

/// Pipeline parallelism behaves like the real thing: prefill gets faster
/// (micro-batches hide the stage split), decode pays the bubble and the
/// activation hops, and both show up in the step breakdown.
#[test]
fn pipeline_stages_speed_prefill_and_charge_decode_bubble() {
    let pp1 = builder(EngineKind::ZipServ).build();
    let pp2 = builder(EngineKind::ZipServ).pp(2).build();
    assert_eq!(pp2.cluster().pp(), 2);
    assert_eq!(pp2.micro_batches(), 4, "default 2 × pp");

    // Prefill: pipelined micro-batches beat the serial single stage.
    let serial = pp1.prefill_ms(8, 1024);
    let pipelined = pp2.prefill_ms(8, 1024);
    assert!(
        pipelined < serial,
        "prefill {pipelined} ms should beat serial {serial} ms"
    );

    // Decode: per-step latency *worsens* (weight re-reads per micro-batch
    // plus fill/drain bubble plus hops) — PP buys capacity, not decode
    // latency.
    let s1 = pp1.decode_step(32, 1024);
    let s2 = pp2.decode_step(32, 1024);
    assert_eq!(s1.p2p_ms, 0.0);
    assert!(s2.p2p_ms > 0.0, "stage hops are visible");
    assert!(s2.total_ms() > s1.total_ms(), "decode pays the bubble");
    assert!(s2.comm_ms() >= s2.p2p_ms);

    // More micro-batches shrink the bubble — monotone for dense engines
    // (no fixed per-pass cost to re-pay)...
    let dense4 = builder(EngineKind::Vllm).pp(2).build();
    let dense16 = builder(EngineKind::Vllm).pp(2).micro_batches(16).build();
    assert!(dense16.prefill_ms(8, 1024) < dense4.prefill_ms(8, 1024));
    // ...but compressed engines re-expand each stage's weights once per
    // micro-batch (the scratch buffer is recycled between sweeps), so
    // micro-batching ZipServ prefill 4× deeper buys less than it does
    // for vLLM.
    let deep = builder(EngineKind::ZipServ).pp(2).micro_batches(16).build();
    let zip_gain = pipelined / deep.prefill_ms(8, 1024);
    let dense_gain = dense4.prefill_ms(8, 1024) / dense16.prefill_ms(8, 1024);
    assert!(
        zip_gain < dense_gain,
        "re-decompression must damp ZipServ's micro-batching gain \
         (zip {zip_gain:.3}x vs dense {dense_gain:.3}x)"
    );
}

/// Per-rank KV partitioning: the deployment exposes one allocator per rank
/// of the `tp × pp` grid, the usable capacity is the *minimum* across
/// ranks, and an uneven GQA head split makes the fat rank the bottleneck.
#[test]
fn kv_is_partitioned_per_rank_and_bottlenecked_by_the_fattest() {
    // 4×L40S TP: 4 symmetric ranks (8 KV heads / 4 = 2 each).
    let tp4 = ServingEngine::builder()
        .kind(EngineKind::ZipServ)
        .model(LlmModel::Llama31_70b)
        .cluster(GpuCluster::tensor_parallel(Gpu::L40s, 4))
        .build();
    let shards = tp4.kv_shards();
    assert_eq!(shards.ranks(), 4);
    for r in 1..4 {
        assert_eq!(
            shards.rank(r).total_pages(),
            shards.rank(0).total_pages(),
            "even head split: symmetric ranks"
        );
    }
    assert_eq!(shards.capacity_tokens(), tp4.kv_capacity_tokens());

    // TP=3 splits 8 KV heads as 3/3/2: the 3-head ranks hold more bytes
    // per token, so they run out of pages first and set the capacity.
    let tp3 = ServingEngine::builder()
        .kind(EngineKind::ZipServ)
        .model(LlmModel::Llama31_8b)
        .cluster(GpuCluster::tensor_parallel(Gpu::Rtx4090, 3))
        .build();
    let shards = tp3.kv_shards();
    assert_eq!(shards.ranks(), 3);
    assert!(
        shards.rank(0).capacity_tokens() < shards.rank(2).capacity_tokens(),
        "fat rank has fewer token slots"
    );
    assert_eq!(
        shards.capacity_tokens(),
        shards.rank(0).capacity_tokens(),
        "deployment capacity is the bottleneck rank's"
    );

    // A TP×PP grid partitions by stage too: 4×2 = 8 ranks, and the
    // per-stage layer slice halves each rank's per-token footprint.
    let grid = ServingEngine::builder()
        .kind(EngineKind::ZipServ)
        .model(LlmModel::Llama31_70b)
        .cluster(GpuCluster::pipeline_parallel(Gpu::L40s, 4, 2))
        .build();
    assert_eq!(grid.kv_shards().ranks(), 8);
    assert!(
        grid.kv_capacity_tokens() > tp4.kv_capacity_tokens(),
        "halving resident layers (and weights) per rank grows token capacity"
    );
}

/// Regression (split page-out accounting): the victim's PCIe page-out is
/// charged when it is evicted — delaying the preempting candidate's own
/// admission — and the page-in when it resumes, instead of a lumped
/// `2 × swap` at resume that let the candidate start for free.
#[test]
fn pageout_is_charged_at_both_ends() {
    let engine = ServingEngine::builder().kind(EngineKind::Vllm).build();
    let capacity = engine.kv_capacity_tokens();
    // One long request whose lifetime demand sits 8 tokens under capacity;
    // a 1-token job cannot fit beside it and must preempt.
    let long_prompt = capacity - 520;
    let arrivals = vec![
        Request::new(1, 0.0, long_prompt, 512),
        Request::new(2, 0.001, 64, 1),
    ];
    let policy = PreemptiveSjf {
        mode: PreemptionMode::PageOut,
    };
    let report = run_policy(&engine, &policy, 64, arrivals);
    assert_eq!(report.preemptions, 1, "scenario preempts exactly once");
    let victim = report
        .completions
        .iter()
        .find(|c| c.id == 1)
        .expect("victim");
    let short = report
        .completions
        .iter()
        .find(|c| c.id == 2)
        .expect("short");
    assert_eq!(victim.preemptions, 1);

    // The short job was admitted only after paying the victim's page-out:
    // its TTFT covers the victim's prefill, ONE swap of the victim's KV
    // footprint (the eviction-side half), and its own prefill + first step
    // — but not two swaps, which is what the lumped-at-resume form would
    // morph into if someone moved the whole round trip back to eviction.
    let swap_s = engine.kv_swap_s(long_prompt);
    let victim_prefill_s = engine.prefill_ms(1, long_prompt) / 1e3;
    let short_prefill_s = engine.prefill_ms(1, 64) / 1e3;
    let floor = victim_prefill_s + short_prefill_s + swap_s - 0.001;
    assert!(
        short.ttft_s > floor,
        "short TTFT {:.3}s must cover the {:.3}s eviction-side page-out (floor {:.3}s)",
        short.ttft_s,
        swap_s,
        floor
    );
    assert!(
        short.ttft_s < floor + swap_s,
        "short TTFT {:.3}s must charge page-out once, not the full round trip",
        short.ttft_s
    );
    // And the victim still pays the page-in on resume, after the short job.
    assert!(victim.latency_s > short.latency_s + swap_s);
}

/// Regression (victim resume priority): a preempted interactive request
/// re-enters the batch ahead of batch-tier work that arrived after it,
/// instead of starving behind an endless stream of fresh short jobs (the
/// old arrival-order requeue let every later short arrival beat the
/// victim under SJF).
#[test]
fn preempted_victim_resumes_before_fresh_arrivals() {
    let engine = ServingEngine::builder().kind(EngineKind::Vllm).build();
    // The victim: an interactive job that saturating batch traffic evicts
    // almost immediately (it is the only running request with more
    // remaining output than a fresh short job).
    let mut arrivals =
        vec![Request::new(0, 0.0, 1024, 70).with_priority(PriorityClass::Interactive)];
    // 600 short batch jobs land at once — enough to keep the KV cache
    // saturated for the whole run. Under arrival-order requeue, SJF
    // prefers every fresh 64-token job over the evicted victim (remaining
    // 69), so the victim would re-enter only after the entire stream
    // drains and complete dead last. With resume priority it re-enters at
    // the first capacity window, hits the preemption cap, pins, and
    // finishes in the first third of the run.
    for i in 0..600u64 {
        arrivals.push(Request::new(1 + i, 0.2, 1024, 64).with_priority(PriorityClass::Batch));
    }
    let report = run_policy(&engine, &PreemptiveSjf::default(), 200, arrivals);
    assert_eq!(report.completions.len(), 601);
    assert!(report.preemptions >= 1, "the stream must evict the victim");
    let victim = report
        .completions
        .iter()
        .find(|c| c.id == 0)
        .expect("victim");
    assert!(victim.preemptions >= 1, "id 0 must be the preempted one");
    assert!(
        victim.latency_s < report.duration_s / 2.0,
        "preempted interactive victim completed at {:.1}s of a {:.1}s run — \
         starving behind later batch arrivals",
        victim.latency_s,
        report.duration_s
    );
    // It concretely beats later batch arrivals: at least half the batch
    // completions land after the victim.
    let after = report
        .completions
        .iter()
        .filter(|c| c.latency_s + 0.2 > victim.latency_s && c.id != 0)
        .count();
    assert!(
        after > 300,
        "only {after} batch jobs completed after the victim"
    );
}

/// Regression (micro-batch step-cache key): under pipeline micro-batching
/// every distinct batch size used to be a fresh step-cache miss, even
/// though batches that quantize to the same `(ceil(batch/m), m)` shape
/// cost identical steps — the tp4_pp2 deployment re-priced the engine
/// model nearly every decode step and ran ~11× the tp4 simulator cost.
/// Keyed on `ServingEngine::step_cache_key`, the cache stays hot: misses
/// are bounded by distinct (shape, context-bucket) pairs, not steps.
#[test]
fn tp4_pp2_step_cache_stays_hot() {
    let engine = ServingEngine::builder()
        .kind(EngineKind::ZipServ)
        .model(LlmModel::Llama31_70b)
        .cluster(GpuCluster::pipeline_parallel(Gpu::L40s, 4, 2))
        .build();
    let arrivals = poisson_arrivals(3.0, 60, 512, 256, 41);
    let report = run_policy(&engine, &Fcfs, 64, arrivals);
    assert_eq!(report.completions.len(), 60);
    let sc = report.step_cache;
    let steps = sc.hits + sc.misses;
    assert!(
        steps > 200,
        "trace too short to exercise the cache: {steps}"
    );
    assert!(
        sc.hit_rate() > 0.9,
        "pipelined step cache defeated again: {} hits / {} misses",
        sc.hits,
        sc.misses
    );
}

/// Acceptance pin for the step-cache fix: simulating the tp4_pp2
/// deployment costs within ~3× of tp4 wall-clock (it ran ~11× before the
/// shape-keyed cache and the build-time KV capacity). Minimum over
/// repetitions to shrug off scheduler noise on shared runners.
#[test]
fn tp4_pp2_simulation_cost_within_3x_of_tp4() {
    let tp4 = ServingEngine::builder()
        .kind(EngineKind::ZipServ)
        .model(LlmModel::Llama31_70b)
        .cluster(GpuCluster::tensor_parallel(Gpu::L40s, 4))
        .build();
    let tp4_pp2 = ServingEngine::builder()
        .kind(EngineKind::ZipServ)
        .model(LlmModel::Llama31_70b)
        .cluster(GpuCluster::pipeline_parallel(Gpu::L40s, 4, 2))
        .build();
    let arrivals = poisson_arrivals(3.0, 40, 512, 64, 41);
    let time_min = |engine: &ServingEngine| {
        (0..5)
            .map(|_| {
                let t0 = std::time::Instant::now();
                let report = run_policy(engine, &Fcfs, 64, arrivals.clone());
                assert_eq!(report.completions.len(), 40);
                t0.elapsed()
            })
            .min()
            .expect("nonzero reps")
    };
    let base = time_min(&tp4);
    let pipelined = time_min(&tp4_pp2);
    let ratio = pipelined.as_secs_f64() / base.as_secs_f64().max(1e-9);
    assert!(
        ratio < 3.0,
        "tp4_pp2 simulation cost regressed: {:?} vs tp4 {:?} ({ratio:.1}×)",
        pipelined,
        base
    );
}

//! Cross-crate consistency of the performance model: the kernel executor,
//! the roofline equations and the pipeline abstractions must tell the same
//! story.

use zipserv::gpu::device::Gpu;
use zipserv::gpu::kernel::KernelProfile;
use zipserv::gpu::memory::DramTraffic;
use zipserv::gpu::occupancy::LaunchGrid;
use zipserv::gpu::roofline::{attainable_tflops, compute_intensity, GemmShape, PipelineKind};
use zipserv::kernels::cublas_model::CublasTc;
use zipserv::kernels::fused::{FusedZipGemm, WeightStats};

#[test]
fn memory_bound_kernel_time_matches_bandwidth_math() {
    let spec = Gpu::Rtx4090.spec();
    let bytes = 1u64 << 30;
    let mut p = KernelProfile::empty("copy");
    p.dram = DramTraffic::streaming(bytes, 0);
    p.grid = LaunchGrid {
        blocks: 4096,
        blocks_per_sm: 2,
    };
    let t = p.execute(&spec);
    let expected = bytes as f64 / spec.effective_dram_bytes_per_us();
    assert!((t.mem_us - expected).abs() / expected < 1e-9);
}

#[test]
fn executor_agrees_with_roofline_on_the_bound() {
    // For every pipeline kind, the executor's bottleneck matches what the
    // roofline predicts from the compute intensity.
    let spec = Gpu::Rtx4090.spec();
    for n in [8u64, 32, 128, 1024, 8192] {
        let shape = GemmShape::new(28672, 4096, n);
        let ci = compute_intensity(shape, PipelineKind::DenseGemm, 1.51);
        let predicted_mem_bound = ci < spec.ridge_flops_per_byte();
        let t = CublasTc::time(shape, &spec);
        match t.bottleneck() {
            "mem" => assert!(
                predicted_mem_bound,
                "N={n}: executor says mem, roofline says compute (CI {ci})"
            ),
            "tensor" => assert!(
                !predicted_mem_bound,
                "N={n}: executor says tensor, roofline says memory (CI {ci})"
            ),
            other => panic!("unexpected bottleneck {other}"),
        }
    }
}

#[test]
fn fused_speedup_tracks_compression_ratio_in_the_weight_dominated_limit() {
    // Roofline Eq. 3: with N small and M·K huge, speedup → CR.
    let spec = Gpu::Rtx4090.spec();
    let shape = GemmShape::new(65536, 8192, 8);
    let stats = WeightStats::synthetic(65536, 8192, 0.962);
    let dense = CublasTc::time(shape, &spec).total_us;
    let fused = FusedZipGemm::time(&stats, 8, &spec).total_us;
    let speedup = dense / fused;
    let cr = stats.ratio();
    assert!(
        speedup > 0.80 * cr && speedup < 1.15 * cr,
        "speedup {speedup} vs CR {cr}"
    );
}

#[test]
fn attainable_performance_monotone_in_ci() {
    let spec = Gpu::L40s.spec();
    let mut last = 0.0;
    for ci in [1.0, 5.0, 20.0, 80.0, 200.0, 1000.0] {
        let t = attainable_tflops(&spec, ci);
        assert!(t >= last);
        last = t;
    }
    assert_eq!(last, spec.tensor_tflops_bf16);
}

#[test]
fn higher_coverage_compresses_better_and_runs_faster() {
    let spec = Gpu::Rtx4090.spec();
    let mut last_bytes = u64::MAX;
    let mut last_time = f64::INFINITY;
    for coverage in [0.5, 0.8, 0.96, 1.0] {
        let stats = WeightStats::synthetic(28672, 4096, coverage);
        assert!(stats.compressed_bytes < last_bytes);
        let t = FusedZipGemm::time(&stats, 32, &spec).total_us;
        assert!(t <= last_time * 1.0001, "coverage {coverage}");
        last_bytes = stats.compressed_bytes;
        last_time = t;
    }
}

#[test]
fn every_gpu_orders_decode_kernels_identically() {
    // On every device: Marlin (8-bit) <= fused-or-dense; decoupled worst.
    use zipserv::kernels::decoupled::{BaselineCodec, DecoupledPipeline};
    use zipserv::kernels::marlin_model::MarlinW8A16;
    let shape = GemmShape::new(28672, 4096, 32);
    let stats = WeightStats::synthetic(28672, 4096, 0.962);
    for gpu in Gpu::ALL {
        let spec = gpu.spec();
        let marlin = MarlinW8A16::time(shape, &spec).total_us;
        let dense = CublasTc::time(shape, &spec).total_us;
        let fused = FusedZipGemm::time(&stats, 32, &spec).total_us;
        let best_lossless = fused.min(dense);
        let decoupled = DecoupledPipeline::new(BaselineCodec::DFloat11)
            .time(shape, &spec)
            .total_us();
        assert!(
            marlin < best_lossless * 1.05,
            "{gpu:?}: lossy reads fewer bytes"
        );
        assert!(
            decoupled > 2.0 * best_lossless,
            "{gpu:?}: decoupled is far slower"
        );
    }
}

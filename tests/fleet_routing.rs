//! Fleet-routing pins: determinism, single-replica bit-compatibility,
//! fault-aware traffic shifting, autoscaling, per-class prefill modes,
//! and the PR's acceptance criterion (power-of-two-choices beats
//! round-robin on interactive p99 TTFT at ≥ 95% of its throughput).

use zipserv::prelude::*;
use zipserv::serve::scheduler::{run_policy, ScheduleReport};

fn fnv(h: &mut u64, bytes: &[u8]) {
    for &b in bytes {
        *h ^= b as u64;
        *h = h.wrapping_mul(0x100000001b3);
    }
}

fn digest(r: &ScheduleReport) -> u64 {
    let mut h = 0xcbf29ce484222325u64;
    fnv(&mut h, &r.duration_s.to_bits().to_le_bytes());
    fnv(&mut h, &r.throughput_tps.to_bits().to_le_bytes());
    fnv(&mut h, &r.comm_s.to_bits().to_le_bytes());
    fnv(&mut h, &(r.peak_batch as u64).to_le_bytes());
    fnv(&mut h, &r.preemptions.to_le_bytes());
    for c in &r.completions {
        fnv(&mut h, &c.id.to_le_bytes());
        fnv(&mut h, &c.queue_s.to_bits().to_le_bytes());
        fnv(&mut h, &c.latency_s.to_bits().to_le_bytes());
        fnv(&mut h, &c.ttft_s.to_bits().to_le_bytes());
        fnv(&mut h, &(c.preemptions as u64).to_le_bytes());
    }
    h
}

fn replica_engine() -> ServingEngine {
    ServingEngine::builder()
        .kind(EngineKind::ZipServ)
        .model(LlmModel::Llama31_8b)
        .cluster(GpuCluster::single(Gpu::Rtx4090))
        .policy(Priority::default())
        .max_batch(16)
        .build()
}

/// The fleet layer is deterministic end to end: the same seed, replica
/// set, and (seeded) route policy produce the same `FleetReport`, field
/// for field — including the stochastic power-of-two sampler.
#[test]
fn same_seed_reproduces_the_same_fleet_report() {
    let engine = replica_engine();
    let run = || {
        FleetRouter::new(PowerOfTwoChoices::new(3))
            .with_replicas(&engine, 4)
            .run(ArrivalMix::paper_mix().generate(24.0, 120, 9))
    };
    let a = run();
    let b = run();
    assert_eq!(a, b, "fleet run is not deterministic");
    assert_eq!(a.completed(), 120);
}

/// A single-replica fleet with no admission control and no autoscaling
/// is bit-compatible with the bare `run_policy` scheduler: same FNV
/// digest over the full report, and full structural equality.
#[test]
fn single_replica_fleet_matches_run_policy_bit_for_bit() {
    let engine = ServingEngine::builder()
        .kind(EngineKind::ZipServ)
        .model(LlmModel::Llama31_8b)
        .cluster(GpuCluster::pipeline_parallel(Gpu::L40s, 1, 2))
        .policy(Priority::default())
        .build();
    let arrivals = ArrivalMix::paper_mix().generate(12.0, 80, 37);

    let fleet = FleetRouter::new(RoundRobin::default())
        .with_replica(engine.clone())
        .run(arrivals.clone());
    let bare = run_policy(&engine, engine.policy(), engine.max_batch(), arrivals);

    assert_eq!(fleet.per_replica.len(), 1);
    assert_eq!(
        digest(&fleet.per_replica[0]),
        digest(&bare),
        "single-replica fleet digest drifted from run_policy"
    );
    assert_eq!(fleet.per_replica[0], bare);
    assert!(fleet.rejections.is_empty());
    assert!(fleet.autoscale_events.is_empty());
}

/// When one replica's rank dies mid-trace, its live pressure reads 1.0
/// and `LeastKvPressure` shifts every later arrival to the survivors;
/// fleet availability dips below 1 while the survivors stay clean.
#[test]
fn rank_failure_shifts_traffic_to_survivors() {
    let healthy = replica_engine();
    let faulted = ServingEngine::builder()
        .kind(EngineKind::ZipServ)
        .model(LlmModel::Llama31_8b)
        .cluster(GpuCluster::single(Gpu::Rtx4090))
        .policy(Priority::default())
        .max_batch(16)
        .fault_plan(FaultPlan::new().rank_fail(3.0, 0))
        .build();
    let arrivals = ArrivalMix::paper_mix().generate(20.0, 120, 13);
    let arrival_time: std::collections::HashMap<u64, f64> =
        arrivals.iter().map(|r| (r.id, r.arrival_s)).collect();

    let report = FleetRouter::new(LeastKvPressure)
        .with_replica(faulted)
        .with_replicas(&healthy, 2)
        .run(arrivals);

    // Every request the dead replica saw — served or victimized by the
    // failure — arrived before the rank died: nothing was routed to a
    // replica whose live pressure read 1.0.
    let faulted_ids = report.per_replica[0]
        .completions
        .iter()
        .map(|c| c.id)
        .chain(report.per_replica[0].rejections.iter().map(|r| r.id));
    let mut saw_any = false;
    for id in faulted_ids {
        saw_any = true;
        let at = arrival_time[&id];
        assert!(
            at <= 3.0,
            "request {id} (arrived {at:.3}s) routed to the dead replica after its rank failed"
        );
    }
    assert!(
        saw_any,
        "faulted replica received nothing before the failure"
    );
    // The survivors absorbed the post-failure traffic.
    let shifted = report.per_replica[1..]
        .iter()
        .flat_map(|r| &r.completions)
        .filter(|c| arrival_time[&c.id] > 3.0)
        .count();
    assert!(shifted > 0, "no post-failure traffic reached the survivors");
    assert!(
        report.per_replica[0].availability() < 1.0,
        "faulted replica reports full availability"
    );
    for r in &report.per_replica[1..] {
        assert!((r.availability() - 1.0).abs() < 1e-12);
    }
}

/// A burst scales the fleet up from one replica; the quiet tail drains
/// it back down — a full up/down round trip with no lost requests.
#[test]
fn autoscale_round_trips_up_and_down() {
    let engine = replica_engine();
    let mut arrivals = ArrivalMix::paper_mix().generate(60.0, 150, 7);
    let burst_end = arrivals.last().map(|r| r.arrival_s).unwrap_or(0.0);
    // Sparse interactive tail, long after the burst backlog has drained
    // (the burst leaves tens of seconds of queued work behind it).
    for i in 0..12u64 {
        arrivals.push(
            Request::new(10_000 + i, burst_end + 40.0 + i as f64 * 2.0, 256, 64)
                .with_priority(PriorityClass::Interactive),
        );
    }
    let total = arrivals.len();

    let report = FleetRouter::new(LeastKvPressure)
        .with_replica(engine)
        .autoscale(Autoscale {
            min_replicas: 1,
            max_replicas: 4,
            scale_up_in_flight: 6.0,
            scale_down_in_flight: 1.0,
            cooldown_s: 0.5,
        })
        .run(arrivals);

    let ups: Vec<&AutoscaleEvent> = report
        .autoscale_events
        .iter()
        .filter(|e| e.direction == zipserv::serve::fleet::ScaleDirection::Up)
        .collect();
    let downs: Vec<&AutoscaleEvent> = report
        .autoscale_events
        .iter()
        .filter(|e| e.direction == zipserv::serve::fleet::ScaleDirection::Down)
        .collect();
    assert!(!ups.is_empty(), "burst never scaled the fleet up");
    assert!(!downs.is_empty(), "quiet tail never drained a replica");
    let first_up = ups[0].at_s;
    assert!(
        downs.iter().any(|d| d.at_s > first_up),
        "no scale-down after the scale-up: not a round trip"
    );
    assert!(report.per_replica.len() > 1, "no replica was ever spawned");
    assert!(report.per_replica.len() <= 4, "fleet exceeded max_replicas");
    assert_eq!(report.completed(), total, "autoscaling lost requests");
}

/// Per-class prefill admission: a fleet whose Batch class opts out of
/// chunked prefill still serves interactive traffic through the chunked
/// path — interactive p99 TTFT stays below the all-whole-prefill fleet,
/// while the opt-out visibly changes scheduling vs. fully-chunked.
#[test]
fn batch_whole_prefill_coexists_with_chunked_interactive() {
    let build = |mode: u8| {
        let mut b = ServingEngine::builder()
            .kind(EngineKind::ZipServ)
            .model(LlmModel::Llama31_8b)
            .cluster(GpuCluster::pipeline_parallel(Gpu::L40s, 1, 2))
            .policy(Priority::default());
        b = match mode {
            0 => b,                                         // fully chunked (pp ≥ 2 default)
            1 => b.whole_prefill_for(PriorityClass::Batch), // Batch opts out
            _ => b.chunked_prefill(false),                  // nothing chunked
        };
        b.build()
    };
    let arrivals = ArrivalMix::paper_mix().generate(12.0, 80, 37);
    let run = |mode: u8| {
        FleetRouter::new(RoundRobin::default())
            .with_replicas(&build(mode), 2)
            .run(arrivals.clone())
    };
    let chunked = run(0);
    let mixed = run(1);
    let legacy = run(2);
    assert_eq!(chunked.completed(), 80);
    assert_eq!(mixed.completed(), 80);
    assert_eq!(legacy.completed(), 80);

    assert_ne!(
        mixed, chunked,
        "Batch whole-prefill opt-out changed nothing vs. fully chunked"
    );
    let p99 = |r: &FleetReport| {
        r.class_ttft_percentile(PriorityClass::Interactive, 0.99)
            .expect("interactive completions")
    };
    assert!(
        p99(&mixed) < p99(&legacy),
        "interactive traffic lost its chunked-prefill benefit: {:.4}s vs legacy {:.4}s",
        p99(&mixed),
        p99(&legacy)
    );
}

/// The PR's acceptance criterion: on the paper mix at 4 replicas under
/// sustained near-saturation load, power-of-two-choices beats
/// round-robin on interactive p99 TTFT while keeping at least 95% of its
/// throughput. (At light load the policies converge — RR's blind
/// interleaving is already near-optimal when queues never form.)
#[test]
fn p2c_beats_round_robin_on_interactive_p99_ttft() {
    let engine = replica_engine();
    let arrivals = ArrivalMix::paper_mix().generate(7.0, 320, 53);
    let race = |router: FleetRouter| router.with_replicas(&engine, 4).run(arrivals.clone());
    let rr = race(FleetRouter::new(RoundRobin::default()));
    let p2c = race(FleetRouter::new(PowerOfTwoChoices::default()));
    assert_eq!(rr.completed(), 320);
    assert_eq!(p2c.completed(), 320);

    let p99 = |r: &FleetReport| {
        r.class_ttft_percentile(PriorityClass::Interactive, 0.99)
            .expect("interactive completions")
    };
    assert!(
        p99(&p2c) < p99(&rr),
        "p2c did not beat round-robin on interactive p99 TTFT: {:.4}s vs {:.4}s",
        p99(&p2c),
        p99(&rr)
    );
    let tput_ratio = p2c.throughput_tps() / rr.throughput_tps();
    assert!(
        tput_ratio >= 0.95,
        "p2c gave up more than 5% throughput: ratio {tput_ratio:.4}"
    );
}

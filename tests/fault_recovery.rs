//! Chaos suite for the fault-injection harness: empty-plan bit-compat,
//! exactly-once delivery under seeded rank failures, retry/backoff edge
//! cases (cap exhaustion, fault mid-prefill vs mid-decode, repair while
//! victims are still queued), SLO-aware brownout, and the time accounting
//! for link degradation, KV stalls and corrupted decode frames.

use std::collections::{BTreeSet, HashMap};

use zipserv::gpu::device::Gpu;
use zipserv::kernels::shapes::LlmModel;
use zipserv::prelude::*;
use zipserv::serve::scheduler::{run_policy, run_policy_faulted};

fn builder(kind: EngineKind) -> EngineBuilder {
    ServingEngine::builder()
        .kind(kind)
        .model(LlmModel::Llama31_8b)
        .cluster(GpuCluster::tensor_parallel(Gpu::L40s, 2))
}

fn all_policies() -> Vec<Box<dyn SchedulePolicy>> {
    vec![
        Box::new(Fcfs),
        Box::new(Priority::default()),
        Box::new(SloEdf::default()),
        Box::new(PreemptiveSjf::default()),
        Box::new(PreemptiveSjf {
            mode: PreemptionMode::PageOut,
        }),
    ]
}

/// Runs one request alone to find out how long it takes clean — the chaos
/// tests time their faults relative to this.
fn clean_solo(engine: &ServingEngine, req: Request) -> (f64, f64) {
    let report = run_policy(engine, &Fcfs, 64, vec![req]);
    let c = report.completions.first().expect("solo request completes");
    (c.ttft_s + req.arrival_s, report.duration_s)
}

/// The acceptance pin: an *empty* fault plan is bit-invisible. For every
/// policy, on both a single-GPU and a TP deployment, over the same mixed
/// traffic the three pinned suites use, `run_policy` (no plan),
/// `run_policy_faulted` with the default plan, and `serve_online` on an
/// engine that explicitly attached an empty plan produce bit-identical
/// reports with all-zero robustness books.
#[test]
fn empty_plan_is_bit_identical_for_every_policy() {
    let mix = ArrivalMix::paper_mix().generate(12.0, 100, 37);
    let clusters = [
        GpuCluster::single(Gpu::Rtx4090),
        GpuCluster::tensor_parallel(Gpu::L40s, 2),
    ];
    for cluster in clusters {
        for kind in [EngineKind::ZipServ, EngineKind::Vllm] {
            let engine = ServingEngine::builder()
                .kind(kind)
                .model(LlmModel::Llama31_8b)
                .cluster(cluster)
                .fault_plan(FaultPlan::default())
                .build();
            for policy in all_policies() {
                let bare = run_policy(&engine, policy.as_ref(), 64, mix.clone());
                let faulted = run_policy_faulted(
                    &engine,
                    policy.as_ref(),
                    64,
                    mix.clone(),
                    &FaultPlan::default(),
                    &RetryPolicy::default(),
                );
                assert_eq!(bare, faulted, "{kind:?}/{}", policy.name());
                assert_eq!(bare.robustness, RobustnessStats::default());
                assert!(bare.rejections.is_empty());
                assert_eq!(bare.availability(), 1.0);
                for c in &bare.completions {
                    assert_eq!(c.retries, 0, "clean completions never retried");
                }
            }
            // The builder-attached empty plan goes through the same path.
            let via_engine = engine.serve_online(mix.clone());
            let direct = run_policy(&engine, engine.policy(), engine.max_batch(), mix.clone());
            assert_eq!(via_engine, direct, "{kind:?}: attached empty plan");
        }
    }
}

/// Exactly-once delivery under chaos: across a sweep of seeded plans,
/// every request either completes exactly once or carries exactly one
/// typed rejection — never both, never neither, never twice.
#[test]
fn seeded_faults_resolve_every_request_exactly_once() {
    let engine = builder(EngineKind::ZipServ).build();
    let ranks = engine.cluster().total_ranks();
    for seed in 1..=20u64 {
        let arrivals = ArrivalMix::paper_mix().generate(10.0, 60, seed);
        let all_ids: BTreeSet<u64> = arrivals.iter().map(|r| r.id).collect();
        let plan = FaultPlan::seeded(seed, 8.0, ranks);
        let report =
            run_policy_faulted(&engine, &Fcfs, 64, arrivals, &plan, &RetryPolicy::default());
        let completed: Vec<u64> = report.completions.iter().map(|c| c.id).collect();
        let completed_set: BTreeSet<u64> = completed.iter().copied().collect();
        assert_eq!(
            completed.len(),
            completed_set.len(),
            "seed {seed}: a request completed twice"
        );
        let rejected_set: BTreeSet<u64> = report.rejected.iter().copied().collect();
        assert_eq!(
            report.rejected.len(),
            rejected_set.len(),
            "seed {seed}: a request rejected twice"
        );
        assert!(
            completed_set.is_disjoint(&rejected_set),
            "seed {seed}: completed AND rejected"
        );
        let resolved: BTreeSet<u64> = completed_set.union(&rejected_set).copied().collect();
        assert_eq!(resolved, all_ids, "seed {seed}: some request vanished");
        // The books match the plan.
        assert_eq!(report.robustness.faults_injected as usize, plan.len());
        assert_eq!(
            report.robustness.rank_failures, 1,
            "seeded plans fail one rank"
        );
        assert!(report.availability() > 0.0 && report.availability() <= 1.0);
        assert!(report.goodput_tps() <= report.throughput_tps + 1e-9);
    }
}

/// Determinism: the same plan over the same arrivals yields a
/// bit-identical report, run after run.
#[test]
fn faulted_runs_are_deterministic() {
    let engine = builder(EngineKind::ZipServ).build();
    let arrivals = ArrivalMix::paper_mix().generate(10.0, 80, 11);
    let plan = FaultPlan::seeded(7, 8.0, engine.cluster().total_ranks());
    let retry = RetryPolicy::default();
    let a = run_policy_faulted(
        &engine,
        &SloEdf::default(),
        64,
        arrivals.clone(),
        &plan,
        &retry,
    );
    let b = run_policy_faulted(&engine, &SloEdf::default(), 64, arrivals, &plan, &retry);
    assert_eq!(a, b);
}

/// Retry-cap exhaustion: a request victimized by more rank failures than
/// the `RetryPolicy` allows is rejected with `RetriesExhausted`, and the
/// books count exactly the retries that were granted.
#[test]
fn retry_cap_exhaustion_yields_typed_rejection() {
    let engine = builder(EngineKind::ZipServ).build();
    let req = Request::new(0, 0.0, 512, 2_000);
    let (_, clean_duration) = clean_solo(&engine, req);
    // Two failure waves while the request runs; one retry allowed.
    let plan = FaultPlan::new()
        .rank_fail(0.2 * clean_duration, 0)
        .rank_repair(0.3 * clean_duration, 0)
        .rank_fail(0.6 * clean_duration, 0)
        .rank_repair(0.7 * clean_duration, 0);
    let retry = RetryPolicy {
        max_retries: 1,
        ..RetryPolicy::default()
    };
    let report = run_policy_faulted(&engine, &Fcfs, 64, vec![req], &plan, &retry);
    assert!(
        report.completions.is_empty(),
        "second wave must exhaust the cap"
    );
    assert_eq!(report.rejected_for(RejectReason::RetriesExhausted), vec![0]);
    assert_eq!(
        report.robustness.retries, 1,
        "one retry granted before the cap"
    );
    assert_eq!(report.robustness.rank_failures, 2);
    // The retry recomputed the prompt (plus any generated tokens).
    assert!(report.robustness.recomputed_tokens >= 512);
    // With a generous cap the same chaos is survivable.
    let lenient = run_policy_faulted(
        &engine,
        &Fcfs,
        64,
        vec![req],
        &plan,
        &RetryPolicy::default(),
    );
    assert_eq!(
        lenient.completions.len(),
        1,
        "default cap survives two waves"
    );
    assert_eq!(lenient.completions[0].retries, 2);
    assert!(lenient.rejections.is_empty());
}

/// A fault that lands mid-prefill (before the first token) victimizes the
/// request with nothing generated: the recompute covers exactly the
/// prompt, and the request still completes with one recorded retry.
#[test]
fn fault_mid_prefill_recomputes_the_prompt() {
    let engine = builder(EngineKind::ZipServ).build();
    let req = Request::new(0, 0.0, 4096, 64);
    let (clean_ttft, _) = clean_solo(&engine, req);
    let prefill_s = engine.prefill_ms(1, 4096) / 1e3;
    assert!(prefill_s < clean_ttft, "prefill is part of TTFT");
    // Strike halfway through the prefill charge; repair soon after.
    let plan = FaultPlan::new()
        .rank_fail(0.5 * prefill_s, 1)
        .rank_repair(prefill_s + 0.01, 1);
    let report = run_policy_faulted(
        &engine,
        &Fcfs,
        64,
        vec![req],
        &plan,
        &RetryPolicy::default(),
    );
    assert_eq!(report.completions.len(), 1);
    let c = &report.completions[0];
    assert_eq!(c.retries, 1);
    // Faults apply at scheduler round boundaries, so a strike during the
    // prefill charge lands right after it — the victim has exactly one
    // decode step behind it, and the recompute is prompt + 1.
    assert_eq!(
        report.robustness.recomputed_tokens, 4097,
        "a prefill-time strike recomputes the prompt plus the single step \
         the round completed"
    );
    assert!(c.latency_s > clean_ttft, "the retry cost real time");
}

/// A fault that lands mid-decode recomputes prompt *plus* the tokens
/// already generated — strictly more work than the mid-prefill case — and
/// the victim's completion keeps its full output length.
#[test]
fn fault_mid_decode_recomputes_prompt_plus_generated() {
    let engine = builder(EngineKind::ZipServ).build();
    let req = Request::new(0, 0.0, 4096, 512);
    let (clean_ttft, clean_duration) = clean_solo(&engine, req);
    // Strike well into the decode phase.
    let fail_at = clean_ttft + 0.5 * (clean_duration - clean_ttft);
    let plan = FaultPlan::new()
        .rank_fail(fail_at, 0)
        .rank_repair(fail_at + 0.05, 0);
    let report = run_policy_faulted(
        &engine,
        &Fcfs,
        64,
        vec![req],
        &plan,
        &RetryPolicy::default(),
    );
    assert_eq!(report.completions.len(), 1);
    let c = &report.completions[0];
    assert_eq!(c.retries, 1);
    assert_eq!(c.output_len, 512, "completion keeps its full output");
    assert!(
        report.robustness.recomputed_tokens > 4096,
        "mid-decode recompute covers prompt + {} generated tokens, got {}",
        512,
        report.robustness.recomputed_tokens
    );
    assert!(
        report.duration_s > clean_duration,
        "the fault cost real time"
    );
}

/// Repair while victims are still queued: the recovery window opens at the
/// failure, the victims wait out their backoff, and the window closes when
/// the last one is re-admitted — recorded as one recovery with a positive
/// time-to-recover, plus downtime covering the dead interval.
#[test]
fn repair_while_victims_queued_closes_the_recovery_window() {
    let engine = builder(EngineKind::ZipServ).build();
    let req = Request::new(0, 0.0, 1024, 800);
    let (_, clean_duration) = clean_solo(&engine, req);
    let fail_at = 0.3 * clean_duration;
    let repair_at = 0.6 * clean_duration;
    let retry = RetryPolicy {
        max_retries: 3,
        base_backoff_s: repair_at - fail_at + 0.1, // backoff outlasts the outage
        multiplier: 2.0,
    };
    let plan = FaultPlan::new()
        .rank_fail(fail_at, 0)
        .rank_repair(repair_at, 0);
    let report = run_policy_faulted(&engine, &Fcfs, 64, vec![req], &plan, &retry);
    assert_eq!(report.completions.len(), 1);
    assert_eq!(report.robustness.recoveries, 1, "one recovery window");
    let ttr = report
        .robustness
        .mean_time_to_recover_s()
        .expect("recovered");
    assert!(
        ttr >= retry.base_backoff_s - 1e-9,
        "victim could not re-admit before its {:.2}s backoff, ttr {ttr:.2}s",
        retry.base_backoff_s
    );
    // Fault events apply at the next scheduler round boundary, so measured
    // downtime can trail the nominal outage by up to one decode step.
    assert!(
        (report.robustness.downtime_s - (repair_at - fail_at)).abs() < 0.5,
        "downtime {:.2}s must track the outage {:.2}s",
        report.robustness.downtime_s,
        repair_at - fail_at
    );
    assert!(report.availability() < 1.0);
    assert!(report.availability() > 0.0);
}

/// Longer backoff means later re-admission: the same outage with a 10×
/// backoff completes strictly later.
#[test]
fn backoff_delays_readmission() {
    let engine = builder(EngineKind::ZipServ).build();
    let req = Request::new(0, 0.0, 1024, 400);
    let (_, clean_duration) = clean_solo(&engine, req);
    let plan = FaultPlan::new()
        .rank_fail(0.4 * clean_duration, 0)
        .rank_repair(0.45 * clean_duration, 0);
    let quick = RetryPolicy {
        base_backoff_s: 0.01,
        ..RetryPolicy::default()
    };
    let slow = RetryPolicy {
        base_backoff_s: 1.5,
        ..RetryPolicy::default()
    };
    let rq = run_policy_faulted(&engine, &Fcfs, 64, vec![req], &plan, &quick);
    let rs = run_policy_faulted(&engine, &Fcfs, 64, vec![req], &plan, &slow);
    assert_eq!(rq.completions.len(), 1);
    assert_eq!(rs.completions.len(), 1);
    assert!(
        rs.completions[0].latency_s > rq.completions[0].latency_s + 1.0,
        "1.5s backoff vs 0.01s: {:.3}s vs {:.3}s",
        rs.completions[0].latency_s,
        rq.completions[0].latency_s
    );
}

/// SLO-aware brownout: while a rank is down, *fresh* best-effort (Batch)
/// arrivals are shed with a typed rejection; interactive and standard
/// traffic — and fault victims of any class — keep their service.
#[test]
fn brownout_sheds_only_fresh_batch_traffic() {
    let engine = builder(EngineKind::ZipServ).build();
    let arrivals = ArrivalMix::paper_mix().generate(20.0, 120, 5);
    let class_of: HashMap<u64, PriorityClass> =
        arrivals.iter().map(|r| (r.id, r.priority)).collect();
    // A long outage in the middle of the trace. FCFS admits in arrival
    // order regardless of class, so Batch candidates do get *selected*
    // while degraded — which is exactly when the brownout must shed them.
    // (A strict-priority policy never picks Batch while urgent work is
    // pending, so it sheds nothing; that is policy behavior, not a gap.)
    let plan = FaultPlan::new().rank_fail(1.0, 0).rank_repair(4.0, 0);
    let report = run_policy_faulted(&engine, &Fcfs, 64, arrivals, &plan, &RetryPolicy::default());
    let shed = report.rejected_for(RejectReason::BrownoutShed);
    assert!(
        !shed.is_empty(),
        "a 3s outage under 20 req/s must shed something"
    );
    for id in &shed {
        assert_eq!(
            class_of[id],
            PriorityClass::Batch,
            "id {id}: only best-effort traffic may be shed"
        );
    }
    assert_eq!(report.robustness.shed as usize, shed.len());
    // Every non-Batch request was served.
    for (id, class) in &class_of {
        if *class != PriorityClass::Batch {
            assert!(
                report.completions.iter().any(|c| c.id == *id),
                "non-batch id {id} must complete"
            );
        }
    }
}

/// Link degradation stretches the communication share of every decode step
/// in its window: the run slows down, `comm_s` grows, and the books count
/// the window — while completions are untouched (no KV was lost).
#[test]
fn link_degradation_slows_but_loses_nothing() {
    let engine = builder(EngineKind::ZipServ).build();
    let arrivals = poisson_arrivals(8.0, 40, 512, 128, 3);
    let clean = run_policy(&engine, &Fcfs, 64, arrivals.clone());
    assert!(clean.comm_s > 0.0, "TP deployment pays communication");
    let plan = FaultPlan::new().link_degrade(0.0, 4.0, clean.duration_s * 2.0);
    let report = run_policy_faulted(&engine, &Fcfs, 64, arrivals, &plan, &RetryPolicy::default());
    assert_eq!(report.completions.len(), clean.completions.len());
    assert!(report.rejections.is_empty());
    assert_eq!(report.robustness.link_degrades, 1);
    assert!(
        report.comm_s > clean.comm_s * 2.0,
        "4x link factor must show in comm: {:.4}s vs clean {:.4}s",
        report.comm_s,
        clean.comm_s
    );
    assert!(report.duration_s > clean.duration_s);
    assert_eq!(report.robustness.rank_failures, 0);
    assert_eq!(report.availability(), 1.0, "slow is not down");
}

/// KV stalls and corrupted decode frames charge wall-clock time into the
/// robustness books: the stall verbatim, the corruption as one PCIe
/// re-fetch of a compressed layer frame per corrupted frame.
#[test]
fn stalls_and_corrupt_frames_charge_time() {
    let engine = builder(EngineKind::ZipServ).build();
    let arrivals = poisson_arrivals(8.0, 30, 512, 64, 17);
    let clean = run_policy(&engine, &Fcfs, 64, arrivals.clone());

    // Stall after the last arrival: with the remaining work fixed, the
    // stall cannot be amortized away by larger batches forming behind it
    // and must extend the run by its full length.
    let last_arrival = arrivals.last().expect("non-empty").arrival_s;
    assert!(clean.duration_s > last_arrival);
    let stall = FaultPlan::new().kv_stall(last_arrival + 0.01, 0.75);
    let rs = run_policy_faulted(
        &engine,
        &Fcfs,
        64,
        arrivals.clone(),
        &stall,
        &RetryPolicy::default(),
    );
    assert_eq!(rs.completions.len(), clean.completions.len());
    assert_eq!(rs.robustness.stall_s, 0.75);
    assert!(
        rs.duration_s >= clean.duration_s + 0.75 - 1e-6,
        "the stall must lengthen the run: {:.3}s vs {:.3}s",
        rs.duration_s,
        clean.duration_s
    );

    let refetch = engine.frame_refetch_s();
    assert!(refetch > 0.0, "a compressed frame takes time to re-fetch");
    let corrupt = FaultPlan::new().corrupt_frame(0.1, 3);
    let rc = run_policy_faulted(
        &engine,
        &Fcfs,
        64,
        arrivals,
        &corrupt,
        &RetryPolicy::default(),
    );
    assert_eq!(rc.completions.len(), clean.completions.len());
    assert_eq!(rc.robustness.frame_corruptions, 3);
    assert!(
        (rc.robustness.refetch_s - 3.0 * refetch).abs() < 1e-12,
        "re-fetch time is frames x one frame's PCIe transfer"
    );
    assert!(rc.duration_s > clean.duration_s);
}

/// The engine builder carries the plan: `serve_online` on an engine with
/// an attached plan and retry policy equals the explicit
/// `run_policy_faulted` call with the same arguments.
#[test]
fn builder_attached_plan_reaches_serve_online() {
    let plan = FaultPlan::new().rank_fail(0.5, 0).rank_repair(1.5, 0);
    let retry = RetryPolicy {
        max_retries: 5,
        ..RetryPolicy::default()
    };
    let engine = builder(EngineKind::ZipServ)
        .policy(SloEdf::default())
        .max_batch(48)
        .fault_plan(plan.clone())
        .retry_policy(retry)
        .build();
    assert_eq!(engine.fault_plan(), &plan);
    assert_eq!(engine.retry_policy(), &retry);
    let arrivals = ArrivalMix::paper_mix().generate(10.0, 50, 29);
    let via_engine = engine.serve_online(arrivals.clone());
    let direct = run_policy_faulted(&engine, engine.policy(), 48, arrivals, &plan, &retry);
    assert_eq!(via_engine, direct);
}

/// Goodput under faults: rejected victims' tokens are excluded, so
/// goodput is at most throughput, and a faulted run's goodput trails the
/// clean run's on the same trace.
#[test]
fn goodput_under_faults_trails_clean_goodput() {
    let engine = builder(EngineKind::ZipServ).build();
    let arrivals = ArrivalMix::paper_mix().generate(12.0, 80, 41);
    let clean = run_policy(&engine, &Fcfs, 64, arrivals.clone());
    assert!(
        (clean.goodput_tps() - clean.throughput_tps).abs() < 1e-9,
        "clean runs complete everything, so goodput == throughput"
    );
    let plan = FaultPlan::new().rank_fail(1.0, 0).rank_repair(3.0, 0);
    let faulted = run_policy_faulted(&engine, &Fcfs, 64, arrivals, &plan, &RetryPolicy::default());
    assert!(faulted.goodput_tps() <= faulted.throughput_tps + 1e-9);
    assert!(
        faulted.goodput_tps() < clean.goodput_tps(),
        "faults must cost goodput: {:.1} vs clean {:.1}",
        faulted.goodput_tps(),
        clean.goodput_tps()
    );
}

/// A rank failure landing while residents are still streaming prefill
/// chunks (pp = 2, chunked prefill on by default): the dead rank's shard
/// is invalidated, the mid-chunk victim re-queues with nothing generated,
/// re-reserves pages on the surviving layout after the repair, and
/// re-streams its prompt to completion with one recorded retry.
#[test]
fn rank_failure_mid_chunk_recovers_under_chunked_prefill() {
    let engine = ServingEngine::builder()
        .kind(EngineKind::ZipServ)
        .model(LlmModel::Llama31_8b)
        .cluster(GpuCluster::pipeline_parallel(Gpu::L40s, 1, 2))
        .build();
    assert!(
        engine.chunked_prefill(),
        "pp >= 2 must default to chunked prefill"
    );
    let req = Request::new(0, 0.0, 4096, 64);
    let (clean_ttft, clean_duration) = clean_solo(&engine, req);
    let prefill_s = engine.prefill_ms(1, 4096) / 1e3;
    assert!(prefill_s < clean_ttft, "prefill is part of TTFT");
    // Strike halfway through the streamed prefill; repair soon after.
    let plan = FaultPlan::new()
        .rank_fail(0.5 * prefill_s, 1)
        .rank_repair(prefill_s + 0.01, 1);
    let report = run_policy_faulted(
        &engine,
        &Fcfs,
        64,
        vec![req],
        &plan,
        &RetryPolicy::default(),
    );
    assert_eq!(report.completions.len(), 1);
    let c = &report.completions[0];
    assert_eq!(c.retries, 1);
    assert_eq!(c.output_len, 64, "completion keeps its full output");
    assert!(
        report.robustness.recomputed_tokens >= 4096,
        "the recompute covers at least the prompt, got {}",
        report.robustness.recomputed_tokens
    );
    assert!(
        report.duration_s > clean_duration,
        "the retry cost real time"
    );
}

/// The exactly-once and determinism guarantees survive the streaming
/// scheduler: on a pipelined deployment with chunked prefill and live
/// shard-aware admission, seeded chaos plans still resolve every request
/// exactly once, and the same plan over the same trace is bit-identical
/// run after run.
#[test]
fn chunked_pipeline_chaos_resolves_every_request_exactly_once() {
    let engine = ServingEngine::builder()
        .kind(EngineKind::ZipServ)
        .model(LlmModel::Llama31_8b)
        .cluster(GpuCluster::pipeline_parallel(Gpu::L40s, 1, 2))
        .build();
    assert!(engine.chunked_prefill());
    let ranks = engine.cluster().total_ranks();
    for seed in 1..=8u64 {
        let arrivals = ArrivalMix::paper_mix().generate(10.0, 60, seed);
        let all_ids: BTreeSet<u64> = arrivals.iter().map(|r| r.id).collect();
        let plan = FaultPlan::seeded(seed, 8.0, ranks);
        let retry = RetryPolicy::default();
        let report = run_policy_faulted(&engine, &Fcfs, 64, arrivals.clone(), &plan, &retry);
        let completed_set: BTreeSet<u64> = report.completions.iter().map(|c| c.id).collect();
        assert_eq!(
            completed_set.len(),
            report.completions.len(),
            "seed {seed}: a request completed twice"
        );
        let rejected_set: BTreeSet<u64> = report.rejected.iter().copied().collect();
        assert!(
            completed_set.is_disjoint(&rejected_set),
            "seed {seed}: completed AND rejected"
        );
        let resolved: BTreeSet<u64> = completed_set.union(&rejected_set).copied().collect();
        assert_eq!(resolved, all_ids, "seed {seed}: some request vanished");
        let again = run_policy_faulted(&engine, &Fcfs, 64, arrivals, &plan, &retry);
        assert_eq!(
            report, again,
            "seed {seed}: chunked chaos run not deterministic"
        );
    }
}

/// Registry-level leak pin: children forked from a cached prefix across a
/// `RankFail`/`RankRepair` cycle never leak refcounted pages. The dead
/// rank's allocator resets, post-failure releases skip it without wedging
/// the survivors, the repaired rank rejoins cold, and once every child is
/// released the only pages left anywhere are the cached prefix itself.
#[test]
fn prefix_forks_survive_rank_fail_repair_without_leaking_pages() {
    use zipserv::serve::kvcache::PAGE_TOKENS;

    let engine = builder(EngineKind::ZipServ).prefix_caching(true).build();
    let mut reg = PrefixRegistry::new(engine.kv_shards(), PrefixVictim::ColdPrefix);
    let ranks = reg.shards().ranks();
    assert_eq!(ranks, 2, "chaos pin assumes the TP2 deployment");
    let total: Vec<u64> = (0..ranks)
        .map(|i| reg.shards().rank(i).total_pages())
        .collect();

    // Miss materializes the 256-token prefix; two follow-ups fork it CoW.
    let hash = 0xfeed_f00d;
    assert_eq!(reg.admit(1, hash, 256, 512), 0);
    assert_eq!(reg.admit(2, hash, 256, 512), 256);
    assert_eq!(reg.admit(3, hash, 256, 512), 256);
    assert_eq!(reg.stats().pages_shared, 2 * 256 / PAGE_TOKENS);

    // Rank 0 dies mid-flight with both forks live: its allocator resets.
    assert!(reg.invalidate_rank(0));
    assert_eq!(
        reg.shards().rank(0).free_pages(),
        total[0],
        "dead rank still holds pages after reset"
    );

    // The forks release *after* the failure — the mirrored release must
    // skip the dead rank without leaking the survivors' pages.
    reg.release(2);
    reg.release(3);
    reg.release(3); // idempotent: double release is a no-op

    assert!(reg.repair_rank(0));
    assert_eq!(
        reg.shards().rank(0).free_pages(),
        total[0],
        "repaired rank must rejoin cold"
    );

    // The cache survives on the living rank: a post-repair request still
    // hits, forks, and releases cleanly.
    assert_eq!(reg.admit(4, hash, 256, 512), 256);
    reg.release(4);

    // With every child gone, the only pages held anywhere are the cached
    // prefix itself on the rank that never died.
    let prefix_pages = 256u64.div_ceil(PAGE_TOKENS);
    assert_eq!(
        reg.shards().rank(1).free_pages(),
        total[1] - prefix_pages,
        "surviving rank leaked fork pages"
    );
    assert_eq!(reg.shards().rank(0).free_pages(), total[0]);
}

/// End-to-end chaos: prefix caching on, multi-tenant traffic, one rank
/// failure repaired mid-run. Every request resolves exactly once for
/// every policy, the registry's books balance, and the run is
/// deterministic — rerunning the same plan is bit-identical.
#[test]
fn multi_tenant_chaos_with_prefix_caching_resolves_every_request() {
    let engine = builder(EngineKind::ZipServ).prefix_caching(true).build();
    let arrivals = ArrivalMix::multi_tenant_mix().generate(8.0, 80, 7);
    let all_ids: BTreeSet<u64> = arrivals.iter().map(|r| r.id).collect();
    let clean = run_policy(&engine, &Fcfs, 64, arrivals.clone());
    let plan = FaultPlan::new()
        .rank_fail(0.3 * clean.duration_s, 0)
        .rank_repair(0.6 * clean.duration_s, 0);
    let retry = RetryPolicy::default();
    for policy in all_policies() {
        let report = run_policy_faulted(
            &engine,
            policy.as_ref(),
            64,
            arrivals.clone(),
            &plan,
            &retry,
        );
        let completed: BTreeSet<u64> = report.completions.iter().map(|c| c.id).collect();
        assert_eq!(
            completed.len(),
            report.completions.len(),
            "{}: a request completed twice",
            policy.name()
        );
        let rejected: BTreeSet<u64> = report.rejected.iter().copied().collect();
        assert!(
            completed.is_disjoint(&rejected),
            "{}: completed AND rejected",
            policy.name()
        );
        let resolved: BTreeSet<u64> = completed.union(&rejected).copied().collect();
        assert_eq!(
            resolved,
            all_ids,
            "{}: some request vanished",
            policy.name()
        );
        let s = report.prefix;
        assert_eq!(
            s.lookups,
            s.hits + s.misses,
            "{}: registry books drifted under faults",
            policy.name()
        );
        assert!(
            s.hits > 0,
            "{}: chaos run never hit the cache",
            policy.name()
        );
        let again = run_policy_faulted(
            &engine,
            policy.as_ref(),
            64,
            arrivals.clone(),
            &plan,
            &retry,
        );
        assert_eq!(
            report,
            again,
            "{}: faulted cached run not deterministic",
            policy.name()
        );
    }
}

//! BFloat16 numerics, synthetic LLM weight generation and exponent statistics.
//!
//! This crate is the numeric substrate of the ZipServ reproduction. It
//! provides:
//!
//! * [`Bf16`] — a from-scratch BFloat16 implementation (1 sign bit, 8 exponent
//!   bits, 7 mantissa bits) with IEEE-754 round-to-nearest-even conversion
//!   from `f32`, bit-field accessors and classification;
//! * [`Matrix`] — a dense row-major matrix of arbitrary element type, with the
//!   tile iteration used throughout the compression pipeline;
//! * [`gen`] — synthetic Gaussian weight generation reproducing the exponent
//!   statistics the paper reports for LLaMA-3 / Qwen2.5 / Gemma-3 / Mistral;
//! * [`stats`] — exponent histograms, entropy, top-k contiguous window
//!   selection and the contiguity survey of §3.1;
//! * [`theory`] — the Appendix-A analysis: the exact exponent distribution of
//!   Gaussian weights via the error function, unimodality and top-K
//!   contiguity.
//!
//! # Example
//!
//! ```
//! use zipserv_bf16::{Bf16, stats::ExponentHistogram};
//!
//! let weights: Vec<Bf16> = (0..1024)
//!     .map(|i| Bf16::from_f32((i as f32 - 512.0) * 1e-3))
//!     .collect();
//! let hist = ExponentHistogram::from_values(weights.iter().copied());
//! assert!(hist.entropy_bits() <= 8.0);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod bf16;
pub mod gen;
pub mod math;
mod matrix;
pub mod stats;
pub mod theory;

pub use bf16::Bf16;
pub use matrix::{Matrix, TileIter, TILE_DIM};

/// Bias of the BF16/FP32 exponent field (value = 2^(E - 127) * 1.mantissa).
pub const EXP_BIAS: i32 = 127;

/// Number of mantissa bits in a BF16 value.
pub const MANTISSA_BITS: u32 = 7;

/// Number of exponent bits in a BF16 value.
pub const EXPONENT_BITS: u32 = 8;

//! Synthetic LLM weight generation.
//!
//! The paper's compressibility analysis (§3.1, Appendix A) rests on LLM
//! weights being approximately zero-mean Gaussian per layer, which makes the
//! BF16 exponent distribution unimodal, highly skewed and top-K contiguous.
//! Since real checkpoints are not available in this environment, we generate
//! weights from exactly that model — `w ~ N(0, σ²)` with per-model σ chosen
//! to reproduce the reported statistics (top-3 > 67%, top-7 > 95%, exponent
//! entropy 2.57–2.74 bits).

use crate::math::Gaussian;
use crate::{Bf16, Matrix};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Named σ presets matching the model families surveyed in the paper.
///
/// The values approximate the per-layer weight standard deviations of the
/// public checkpoints (on the order of `sqrt(2 / hidden_dim)`); the exponent
/// statistics depend only weakly on the exact σ because rescaling a Gaussian
/// shifts the exponent histogram without changing its shape.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ModelFamily {
    /// LLaMA-3 / LLaMA-3.1 family (hidden 4096–16384).
    Llama3,
    /// Qwen2.5 family.
    Qwen25,
    /// Gemma-3 family.
    Gemma3,
    /// Mistral / Mistral-Small family.
    Mistral,
}

impl ModelFamily {
    /// All families, in the order surveyed by §3.1.
    pub const ALL: [ModelFamily; 4] = [
        ModelFamily::Llama3,
        ModelFamily::Qwen25,
        ModelFamily::Gemma3,
        ModelFamily::Mistral,
    ];

    /// The canonical per-layer weight standard deviation for the family.
    pub fn sigma(self) -> f64 {
        match self {
            ModelFamily::Llama3 => 0.0180,
            ModelFamily::Qwen25 => 0.0145,
            ModelFamily::Gemma3 => 0.0210,
            ModelFamily::Mistral => 0.0125,
        }
    }

    /// Display name used in tables and figures.
    pub fn name(self) -> &'static str {
        match self {
            ModelFamily::Llama3 => "LLaMA-3.1",
            ModelFamily::Qwen25 => "Qwen2.5",
            ModelFamily::Gemma3 => "Gemma-3",
            ModelFamily::Mistral => "Mistral",
        }
    }
}

/// Configuration for a synthetic weight generator.
///
/// # Example
///
/// ```
/// use zipserv_bf16::gen::WeightGen;
///
/// let m = WeightGen::new(0.02).seed(42).matrix(64, 64);
/// assert_eq!(m.rows(), 64);
/// ```
#[derive(Debug, Clone)]
pub struct WeightGen {
    sigma: f64,
    seed: u64,
    outlier_fraction: f64,
    outlier_scale: f64,
}

impl WeightGen {
    /// Creates a generator for `w ~ N(0, sigma²)`.
    ///
    /// # Panics
    ///
    /// Panics if `sigma` is not strictly positive and finite.
    pub fn new(sigma: f64) -> Self {
        assert!(sigma > 0.0 && sigma.is_finite(), "sigma must be positive");
        WeightGen {
            sigma,
            seed: 0xEB57_11A0,
            outlier_fraction: 0.0,
            outlier_scale: 16.0,
        }
    }

    /// Generator preset for a model family.
    pub fn for_family(family: ModelFamily) -> Self {
        WeightGen::new(family.sigma())
    }

    /// Sets the RNG seed (builder style).
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Mixes in a heavy-tail outlier component: with probability `fraction`
    /// a weight is drawn from `N(0, (scale·σ)²)` instead. Real checkpoints
    /// exhibit a small such tail; it exercises the TCA-TBE fallback path.
    ///
    /// # Panics
    ///
    /// Panics if `fraction` is outside `[0, 1]` or `scale < 1`.
    pub fn outliers(mut self, fraction: f64, scale: f64) -> Self {
        assert!((0.0..=1.0).contains(&fraction), "fraction in [0,1]");
        assert!(scale >= 1.0, "scale must be >= 1");
        self.outlier_fraction = fraction;
        self.outlier_scale = scale;
        self
    }

    /// The configured standard deviation.
    pub fn sigma_value(&self) -> f64 {
        self.sigma
    }

    /// Generates a `rows × cols` BF16 weight matrix.
    pub fn matrix(&self, rows: usize, cols: usize) -> Matrix<Bf16> {
        let mut rng = StdRng::seed_from_u64(self.seed ^ ((rows as u64) << 32) ^ cols as u64);
        let mut g = Gaussian::new();
        let data: Vec<Bf16> = (0..rows * cols)
            .map(|_| {
                let sigma =
                    if self.outlier_fraction > 0.0 && rng.gen::<f64>() < self.outlier_fraction {
                        self.sigma * self.outlier_scale
                    } else {
                        self.sigma
                    };
                Bf16::from_f32(g.sample_scaled(&mut rng, 0.0, sigma) as f32)
            })
            .collect();
        Matrix::from_vec(rows, cols, data)
    }

    /// Generates a flat vector of `n` BF16 weights.
    pub fn vector(&self, n: usize) -> Vec<Bf16> {
        self.matrix(1, n).into_vec()
    }
}

/// Generates the per-matrix histograms for a §3.1-style survey: `matrices`
/// random layer shapes per family, σ jittered ±25% per matrix as real layers
/// vary.
pub fn survey_histograms(
    families: &[ModelFamily],
    matrices_per_family: usize,
    elems_per_matrix: usize,
    seed: u64,
) -> Vec<crate::stats::ExponentHistogram> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut out = Vec::with_capacity(families.len() * matrices_per_family);
    for &family in families {
        for i in 0..matrices_per_family {
            let jitter = 0.75 + 0.5 * rng.gen::<f64>();
            let weights = WeightGen::new(family.sigma() * jitter)
                .seed(seed ^ (i as u64) << 8 ^ family.sigma().to_bits())
                .vector(elems_per_matrix);
            out.push(crate::stats::ExponentHistogram::from_values(weights));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::{contiguity_survey, ExponentHistogram, ExponentSummary};

    #[test]
    fn matrix_has_requested_shape() {
        let m = WeightGen::new(0.02).matrix(16, 32);
        assert_eq!((m.rows(), m.cols()), (16, 32));
    }

    #[test]
    fn deterministic_for_same_seed() {
        let a = WeightGen::new(0.02).seed(1).matrix(8, 8);
        let b = WeightGen::new(0.02).seed(1).matrix(8, 8);
        let c = WeightGen::new(0.02).seed(2).matrix(8, 8);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn sample_std_matches_sigma() {
        let v = WeightGen::new(0.02).seed(3).vector(100_000);
        let mean: f64 = v.iter().map(|x| x.to_f32() as f64).sum::<f64>() / v.len() as f64;
        let var: f64 = v
            .iter()
            .map(|x| (x.to_f32() as f64 - mean).powi(2))
            .sum::<f64>()
            / v.len() as f64;
        assert!(mean.abs() < 5e-4, "mean {mean}");
        assert!((var.sqrt() - 0.02).abs() < 5e-4, "std {}", var.sqrt());
    }

    #[test]
    fn reproduces_paper_exponent_statistics() {
        // §3.1: top-3 > 67%, top-7 > 95%, entropy 2.57–2.74 bits (we allow a
        // slightly wider entropy band for sampling noise).
        for family in ModelFamily::ALL {
            let v = WeightGen::for_family(family).seed(11).vector(200_000);
            let h = ExponentHistogram::from_values(v);
            let s = ExponentSummary::from_histogram(&h);
            assert!(
                s.top3_coverage > 0.60,
                "{}: top3 {}",
                family.name(),
                s.top3_coverage
            );
            assert!(
                s.top7_coverage > 0.95,
                "{}: top7 {}",
                family.name(),
                s.top7_coverage
            );
            assert!(
                s.entropy_bits > 2.3 && s.entropy_bits < 3.0,
                "{}: entropy {}",
                family.name(),
                s.entropy_bits
            );
            assert!(s.top7_contiguous, "{}: top-7 not contiguous", family.name());
        }
    }

    #[test]
    fn survey_matches_section_31() {
        let hists = survey_histograms(&ModelFamily::ALL, 12, 20_000, 99);
        let s = contiguity_survey(hists.iter());
        assert_eq!(s.matrices, 48);
        assert!(
            s.contiguous_fraction > 0.9,
            "contiguous {}",
            s.contiguous_fraction
        );
        assert!(
            s.mean_window_coverage > 0.93,
            "coverage {}",
            s.mean_window_coverage
        );
    }

    #[test]
    fn outliers_widen_the_tail() {
        let base = WeightGen::new(0.02).seed(5).vector(50_000);
        let tail = WeightGen::new(0.02)
            .seed(5)
            .outliers(0.03, 32.0)
            .vector(50_000);
        let max_base = base.iter().map(|x| x.to_f32().abs()).fold(0.0f32, f32::max);
        let max_tail = tail.iter().map(|x| x.to_f32().abs()).fold(0.0f32, f32::max);
        assert!(max_tail > max_base * 4.0, "{max_tail} vs {max_base}");
    }

    #[test]
    #[should_panic(expected = "sigma must be positive")]
    fn zero_sigma_panics() {
        let _ = WeightGen::new(0.0);
    }
}

//! Exponent-field statistics: histograms, entropy, top-k windows and the
//! contiguity survey of §3.1 of the paper.

use crate::{Bf16, Matrix};

/// A histogram over the 256 possible BF16 exponent field values.
///
/// This is the "global exponent analysis" of Algorithm 1, Phase I.
///
/// # Example
///
/// ```
/// use zipserv_bf16::{Bf16, stats::ExponentHistogram};
///
/// let hist = ExponentHistogram::from_values(
///     [1.0f32, 2.0, 2.5, 0.25].into_iter().map(Bf16::from_f32),
/// );
/// assert_eq!(hist.total(), 4);
/// assert_eq!(hist.count(128), 2); // 2.0 and 2.5 share exponent 128
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExponentHistogram {
    counts: [u64; 256],
    total: u64,
}

impl Default for ExponentHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl ExponentHistogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        ExponentHistogram {
            counts: [0; 256],
            total: 0,
        }
    }

    /// Builds a histogram from an iterator of BF16 values.
    pub fn from_values(values: impl IntoIterator<Item = Bf16>) -> Self {
        let mut h = Self::new();
        for v in values {
            h.push(v);
        }
        h
    }

    /// Builds a histogram from a whole matrix.
    pub fn from_matrix(m: &Matrix<Bf16>) -> Self {
        Self::from_values(m.as_slice().iter().copied())
    }

    /// Records one value.
    #[inline]
    pub fn push(&mut self, v: Bf16) {
        self.counts[v.exponent() as usize] += 1;
        self.total += 1;
    }

    /// Merges another histogram into this one.
    pub fn merge(&mut self, other: &ExponentHistogram) {
        for (a, b) in self.counts.iter_mut().zip(other.counts.iter()) {
            *a += b;
        }
        self.total += other.total;
    }

    /// Count for one raw exponent value.
    #[inline]
    pub fn count(&self, exponent: u8) -> u64 {
        self.counts[exponent as usize]
    }

    /// Total number of recorded values.
    #[inline]
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Fraction of values with this exponent (0 when the histogram is empty).
    pub fn frequency(&self, exponent: u8) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.counts[exponent as usize] as f64 / self.total as f64
        }
    }

    /// Shannon entropy of the exponent distribution, in bits.
    ///
    /// The paper reports 2.57–2.74 bits for contemporary LLMs against the
    /// 8-bit field allocation.
    pub fn entropy_bits(&self) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        let n = self.total as f64;
        let mut h = 0.0;
        for &c in &self.counts {
            if c > 0 {
                let p = c as f64 / n;
                h -= p * p.log2();
            }
        }
        h
    }

    /// The exponents sorted by descending frequency (ties by exponent value).
    pub fn by_frequency(&self) -> Vec<(u8, u64)> {
        let mut v: Vec<(u8, u64)> = (0u16..256)
            .map(|e| (e as u8, self.counts[e as usize]))
            .collect();
        v.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        v
    }

    /// Fraction of weights covered by the `k` most frequent exponents
    /// (not necessarily contiguous).
    pub fn top_k_coverage(&self, k: usize) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        let covered: u64 = self.by_frequency().iter().take(k).map(|&(_, c)| c).sum();
        covered as f64 / self.total as f64
    }

    /// Selects the contiguous window of `k` consecutive exponent values that
    /// maximizes coverage — `SelectTop7ConsecutiveExponents` in Algorithm 1
    /// (with `k = 7`).
    ///
    /// Returns the window and its coverage fraction. The window start is the
    /// smallest exponent in the range. An empty histogram yields a window at
    /// 0 with zero coverage.
    pub fn best_contiguous_window(&self, k: usize) -> ContiguousWindow {
        assert!((1..=256).contains(&k), "window size must be in 1..=256");
        let mut sum: u64 = self.counts[..k].iter().sum();
        let mut best_sum = sum;
        let mut best_start = 0usize;
        for start in 1..=(256 - k) {
            sum = sum - self.counts[start - 1] + self.counts[start + k - 1];
            if sum > best_sum {
                best_sum = sum;
                best_start = start;
            }
        }
        ContiguousWindow {
            start: best_start as u8,
            len: k as u8,
            coverage: if self.total == 0 {
                0.0
            } else {
                best_sum as f64 / self.total as f64
            },
        }
    }

    /// Whether the `k` most frequent exponents form a numerically contiguous
    /// run — the "exponent contiguity" property of §3.1 (true for 99.6% of
    /// the 3,875 surveyed matrices).
    pub fn top_k_is_contiguous(&self, k: usize) -> bool {
        let top: Vec<u8> = self
            .by_frequency()
            .iter()
            .take(k)
            .map(|&(e, _)| e)
            .collect();
        if top.len() < k {
            return false;
        }
        let min = *top.iter().min().expect("k >= 1");
        let max = *top.iter().max().expect("k >= 1");
        (max - min) as usize == k - 1
    }

    /// The most frequent exponent value, or `None` for an empty histogram.
    pub fn mode(&self) -> Option<u8> {
        if self.total == 0 {
            return None;
        }
        Some(self.by_frequency()[0].0)
    }
}

/// A contiguous exponent window `[start, start + len)` with its coverage.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ContiguousWindow {
    /// Smallest exponent in the window.
    pub start: u8,
    /// Number of consecutive exponent values in the window.
    pub len: u8,
    /// Fraction of all weights whose exponent falls inside the window.
    pub coverage: f64,
}

impl ContiguousWindow {
    /// The `BaseExp` recorded by the offline compressor:
    /// `min(window) - 1`, saturating at 0.
    pub fn base_exp(&self) -> u8 {
        self.start.saturating_sub(1)
    }

    /// Does `exponent` fall inside the window?
    #[inline]
    pub fn contains(&self, exponent: u8) -> bool {
        exponent >= self.start && (exponent as u16) < self.start as u16 + self.len as u16
    }
}

/// Summary statistics for one weight matrix, mirroring Figure 2 / §3.1.
#[derive(Debug, Clone, PartialEq)]
pub struct ExponentSummary {
    /// Shannon entropy of the exponent field, in bits.
    pub entropy_bits: f64,
    /// Coverage of the 3 most frequent exponents.
    pub top3_coverage: f64,
    /// Coverage of the 7 most frequent exponents.
    pub top7_coverage: f64,
    /// Coverage of the best contiguous 7-exponent window.
    pub window7_coverage: f64,
    /// Whether the top-7 exponents are numerically contiguous.
    pub top7_contiguous: bool,
    /// Theoretical lossless compression ratio `16 / (8 + entropy)`.
    pub theoretical_ratio: f64,
}

impl ExponentSummary {
    /// Computes the summary from a histogram.
    pub fn from_histogram(h: &ExponentHistogram) -> Self {
        let entropy = h.entropy_bits();
        ExponentSummary {
            entropy_bits: entropy,
            top3_coverage: h.top_k_coverage(3),
            top7_coverage: h.top_k_coverage(7),
            window7_coverage: h.best_contiguous_window(7).coverage,
            top7_contiguous: h.top_k_is_contiguous(7),
            theoretical_ratio: 16.0 / (8.0 + entropy),
        }
    }
}

/// Result of the §3.1 contiguity survey across many matrices.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ContiguitySurvey {
    /// Number of matrices surveyed.
    pub matrices: usize,
    /// Fraction whose top-7 exponents are numerically contiguous (paper: 99.6%).
    pub contiguous_fraction: f64,
    /// Mean coverage of the best contiguous 7-window (paper: 97.1%).
    pub mean_window_coverage: f64,
}

/// Surveys top-7 contiguity over a collection of per-matrix histograms.
pub fn contiguity_survey<'a>(
    histograms: impl IntoIterator<Item = &'a ExponentHistogram>,
) -> ContiguitySurvey {
    let mut matrices = 0usize;
    let mut contiguous = 0usize;
    let mut coverage_sum = 0.0;
    for h in histograms {
        matrices += 1;
        if h.top_k_is_contiguous(7) {
            contiguous += 1;
        }
        coverage_sum += h.best_contiguous_window(7).coverage;
    }
    ContiguitySurvey {
        matrices,
        contiguous_fraction: if matrices == 0 {
            0.0
        } else {
            contiguous as f64 / matrices as f64
        },
        mean_window_coverage: if matrices == 0 {
            0.0
        } else {
            coverage_sum / matrices as f64
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hist_from_exponents(exps: &[(u8, u64)]) -> ExponentHistogram {
        let mut h = ExponentHistogram::new();
        for &(e, n) in exps {
            for _ in 0..n {
                h.push(Bf16::from_parts(0, e as u16, 0));
            }
        }
        h
    }

    #[test]
    fn count_and_total() {
        let h = hist_from_exponents(&[(120, 5), (121, 3)]);
        assert_eq!(h.total(), 8);
        assert_eq!(h.count(120), 5);
        assert_eq!(h.count(121), 3);
        assert_eq!(h.count(122), 0);
        assert!((h.frequency(120) - 0.625).abs() < 1e-12);
    }

    #[test]
    fn entropy_uniform_two_symbols_is_one_bit() {
        let h = hist_from_exponents(&[(100, 10), (101, 10)]);
        assert!((h.entropy_bits() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn entropy_single_symbol_is_zero() {
        let h = hist_from_exponents(&[(100, 42)]);
        assert_eq!(h.entropy_bits(), 0.0);
    }

    #[test]
    fn empty_histogram_is_sane() {
        let h = ExponentHistogram::new();
        assert_eq!(h.entropy_bits(), 0.0);
        assert_eq!(h.top_k_coverage(7), 0.0);
        assert_eq!(h.mode(), None);
        let w = h.best_contiguous_window(7);
        assert_eq!(w.coverage, 0.0);
    }

    #[test]
    fn best_window_finds_peak() {
        // Peak at 118..125, with an outlier far away.
        let h = hist_from_exponents(&[
            (118, 10),
            (119, 30),
            (120, 80),
            (121, 100),
            (122, 70),
            (123, 25),
            (124, 8),
            (200, 5),
        ]);
        let w = h.best_contiguous_window(7);
        assert_eq!(w.start, 118);
        assert_eq!(w.len, 7);
        assert!((w.coverage - 323.0 / 328.0).abs() < 1e-12);
        assert_eq!(w.base_exp(), 117);
        assert!(w.contains(118));
        assert!(w.contains(124));
        assert!(!w.contains(125));
        assert!(!w.contains(117));
    }

    #[test]
    fn window_at_boundary() {
        let h = hist_from_exponents(&[(0, 10), (1, 10), (255, 1)]);
        let w = h.best_contiguous_window(2);
        assert_eq!(w.start, 0);
        assert_eq!(w.base_exp(), 0, "base exp saturates at zero");
    }

    #[test]
    fn contiguity_detection() {
        let contiguous = hist_from_exponents(&[
            (118, 5),
            (119, 6),
            (120, 9),
            (121, 10),
            (122, 8),
            (123, 7),
            (124, 4),
            (60, 1),
        ]);
        assert!(contiguous.top_k_is_contiguous(7));

        let gapped = hist_from_exponents(&[
            (118, 5),
            (119, 6),
            (120, 9),
            (121, 10),
            (122, 8),
            (123, 7),
            (150, 20), // intruder breaks contiguity
            (124, 4),
        ]);
        assert!(!gapped.top_k_is_contiguous(7));
    }

    #[test]
    fn mode_is_most_frequent() {
        let h = hist_from_exponents(&[(120, 5), (121, 9), (122, 2)]);
        assert_eq!(h.mode(), Some(121));
    }

    #[test]
    fn merge_adds_counts() {
        let mut a = hist_from_exponents(&[(100, 5)]);
        let b = hist_from_exponents(&[(100, 2), (101, 3)]);
        a.merge(&b);
        assert_eq!(a.count(100), 7);
        assert_eq!(a.count(101), 3);
        assert_eq!(a.total(), 10);
    }

    #[test]
    fn survey_aggregates() {
        let a = hist_from_exponents(&[
            (118, 10),
            (119, 10),
            (120, 10),
            (121, 10),
            (122, 10),
            (123, 10),
            (124, 10),
        ]);
        let b = hist_from_exponents(&[
            (100, 50),
            (150, 50),
            (101, 10),
            (102, 9),
            (103, 8),
            (104, 7),
            (105, 6),
        ]);
        let s = contiguity_survey([&a, &b]);
        assert_eq!(s.matrices, 2);
        assert!((s.contiguous_fraction - 0.5).abs() < 1e-12);
        assert!(s.mean_window_coverage > 0.0 && s.mean_window_coverage <= 1.0);
    }

    #[test]
    fn summary_fields_consistent() {
        let h = hist_from_exponents(&[
            (118, 100),
            (119, 300),
            (120, 800),
            (121, 1000),
            (122, 700),
            (123, 250),
            (124, 80),
            (90, 30),
        ]);
        let s = ExponentSummary::from_histogram(&h);
        assert!(s.top7_coverage >= s.top3_coverage);
        assert!(s.window7_coverage <= s.top7_coverage + 1e-12);
        assert!(s.theoretical_ratio > 1.0);
        assert!(s.top7_contiguous);
    }
}

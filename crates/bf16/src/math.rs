//! Scalar math helpers implemented from scratch: the error function and a
//! Box–Muller Gaussian sampler.
//!
//! The crate policy allows only the `rand` family of offline dependencies, so
//! `erf` (needed for the Appendix-A exponent-distribution theory) and normal
//! sampling (needed for synthetic Gaussian weights) are implemented here.

use rand::Rng;

/// The error function `erf(x) = 2/sqrt(pi) * ∫_0^x e^{-t²} dt`.
///
/// Uses the Abramowitz–Stegun 7.1.26 rational approximation, accurate to
/// about `1.5e-7` absolute error — far below anything that matters for the
/// exponent-histogram analysis.
///
/// # Example
///
/// ```
/// let e = zipserv_bf16::math::erf(1.0);
/// assert!((e - 0.8427007).abs() < 1e-6);
/// ```
pub fn erf(x: f64) -> f64 {
    if x == 0.0 {
        return 0.0;
    }
    // erf is odd: erf(-x) = -erf(x).
    let sign = if x < 0.0 { -1.0 } else { 1.0 };
    let x = x.abs();

    const A1: f64 = 0.254829592;
    const A2: f64 = -0.284496736;
    const A3: f64 = 1.421413741;
    const A4: f64 = -1.453152027;
    const A5: f64 = 1.061405429;
    const P: f64 = 0.3275911;

    let t = 1.0 / (1.0 + P * x);
    let poly = ((((A5 * t + A4) * t + A3) * t + A2) * t + A1) * t;
    let y = 1.0 - poly * (-x * x).exp();
    sign * y
}

/// The complementary error function `erfc(x) = 1 - erf(x)`.
pub fn erfc(x: f64) -> f64 {
    1.0 - erf(x)
}

/// The standard normal cumulative distribution function.
pub fn normal_cdf(x: f64) -> f64 {
    0.5 * (1.0 + erf(x / core::f64::consts::SQRT_2))
}

/// Probability that `|W| ∈ [lo, hi)` for `W ~ N(0, σ²)`.
///
/// This is the quantity integrated in Appendix A:
/// `P = erf(hi / (σ√2)) - erf(lo / (σ√2))`.
pub fn abs_gaussian_band(sigma: f64, lo: f64, hi: f64) -> f64 {
    debug_assert!(sigma > 0.0 && lo >= 0.0 && hi >= lo);
    let s = sigma * core::f64::consts::SQRT_2;
    erf(hi / s) - erf(lo / s)
}

/// A Box–Muller sampler for `N(mean, sigma²)`.
///
/// Generates pairs of independent normal deviates from pairs of uniforms and
/// caches the spare, so the amortized cost is one `ln` + one `sqrt` + one
/// `sin`/`cos` per sample.
#[derive(Debug, Clone, Default)]
pub struct Gaussian {
    spare: Option<f64>,
}

impl Gaussian {
    /// Creates a sampler with an empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Draws one standard-normal deviate using `rng` for uniforms.
    pub fn sample<R: Rng + ?Sized>(&mut self, rng: &mut R) -> f64 {
        if let Some(z) = self.spare.take() {
            return z;
        }
        // Draw u1 in (0, 1] to keep ln(u1) finite.
        let u1: f64 = 1.0 - rng.gen::<f64>();
        let u2: f64 = rng.gen();
        let r = (-2.0 * u1.ln()).sqrt();
        let theta = 2.0 * core::f64::consts::PI * u2;
        self.spare = Some(r * theta.sin());
        r * theta.cos()
    }

    /// Draws one deviate from `N(mean, sigma²)`.
    pub fn sample_scaled<R: Rng + ?Sized>(&mut self, rng: &mut R, mean: f64, sigma: f64) -> f64 {
        mean + sigma * self.sample(rng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn erf_reference_values() {
        // Reference values from standard tables.
        let cases = [
            (0.0, 0.0),
            (0.5, 0.5204999),
            (1.0, 0.8427008),
            (2.0, 0.9953223),
            (3.0, 0.9999779),
            (-1.0, -0.8427008),
        ];
        for (x, want) in cases {
            assert!(
                (erf(x) - want).abs() < 2e-6,
                "erf({x}) = {} want {want}",
                erf(x)
            );
        }
    }

    #[test]
    fn erf_is_odd_and_bounded() {
        for i in 0..100 {
            let x = i as f64 * 0.1;
            assert!((erf(x) + erf(-x)).abs() < 1e-12);
            assert!(erf(x) <= 1.0 && erf(x) >= -1.0);
        }
    }

    #[test]
    fn erfc_complements() {
        for x in [0.0, 0.3, 1.7, 4.0] {
            assert!((erf(x) + erfc(x) - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn normal_cdf_symmetry() {
        assert!((normal_cdf(0.0) - 0.5).abs() < 1e-12);
        assert!((normal_cdf(1.0) - 0.8413447).abs() < 1e-5);
        assert!((normal_cdf(-1.0) + normal_cdf(1.0) - 1.0).abs() < 1e-10);
    }

    #[test]
    fn abs_band_total_probability() {
        // Bands [2^x, 2^(x+1)) over all x plus the tails sum to 1.
        let sigma = 0.02;
        let mut total = 0.0;
        for x in -60..10 {
            total += abs_gaussian_band(sigma, 2f64.powi(x), 2f64.powi(x + 1));
        }
        assert!((total - 1.0).abs() < 1e-9, "total {total}");
    }

    #[test]
    fn gaussian_moments() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut g = Gaussian::new();
        let n = 200_000;
        let mut sum = 0.0;
        let mut sum2 = 0.0;
        for _ in 0..n {
            let z = g.sample(&mut rng);
            sum += z;
            sum2 += z * z;
        }
        let mean = sum / n as f64;
        let var = sum2 / n as f64 - mean * mean;
        assert!(mean.abs() < 0.01, "mean {mean}");
        assert!((var - 1.0).abs() < 0.02, "var {var}");
    }

    #[test]
    fn gaussian_scaled() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut g = Gaussian::new();
        let n = 100_000;
        let mut sum = 0.0;
        for _ in 0..n {
            sum += g.sample_scaled(&mut rng, 3.0, 0.5);
        }
        assert!((sum / n as f64 - 3.0).abs() < 0.02);
    }
}

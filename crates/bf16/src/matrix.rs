//! Dense row-major matrices and tile iteration.

use crate::Bf16;
use core::fmt;

/// Side length of the base FragTile used by the TCA-TBE format (8×8).
pub const TILE_DIM: usize = 8;

/// A dense row-major matrix.
///
/// The weight matrices of the paper are `W ∈ R^{M×K}` with `M` output rows
/// and `K` input columns; `Matrix` stores them row-major so that an 8×8 tile
/// at `(tr, tc)` covers rows `tr*8..tr*8+8` and columns `tc*8..tc*8+8`.
///
/// # Example
///
/// ```
/// use zipserv_bf16::{Bf16, Matrix};
///
/// let m = Matrix::from_fn(4, 4, |r, c| Bf16::from_f32((r * 4 + c) as f32));
/// assert_eq!(m[(2, 3)].to_f32(), 11.0);
/// assert_eq!(m.rows(), 4);
/// ```
#[derive(Clone, PartialEq)]
pub struct Matrix<T = Bf16> {
    rows: usize,
    cols: usize,
    data: Vec<T>,
}

impl<T: Copy + Default> Matrix<T> {
    /// Creates a matrix filled with the default element value.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![T::default(); rows * cols],
        }
    }
}

impl<T: Copy> Matrix<T> {
    /// Creates a matrix by evaluating `f(row, col)` for every element.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> T) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for r in 0..rows {
            for c in 0..cols {
                data.push(f(r, c));
            }
        }
        Matrix { rows, cols, data }
    }

    /// Creates a matrix from a row-major element vector.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<T>) -> Self {
        assert_eq!(
            data.len(),
            rows * cols,
            "matrix data length {} does not match {}x{}",
            data.len(),
            rows,
            cols
        );
        Matrix { rows, cols, data }
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Total number of elements.
    #[inline]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Is the matrix empty?
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// A view of the underlying row-major element slice.
    #[inline]
    pub fn as_slice(&self) -> &[T] {
        &self.data
    }

    /// A mutable view of the underlying row-major element slice.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [T] {
        &mut self.data
    }

    /// Consumes the matrix and returns the row-major element vector.
    #[inline]
    pub fn into_vec(self) -> Vec<T> {
        self.data
    }

    /// Borrow one row as a slice.
    #[inline]
    pub fn row(&self, r: usize) -> &[T] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Element accessor returning `None` when out of bounds.
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> Option<&T> {
        if r < self.rows && c < self.cols {
            Some(&self.data[r * self.cols + c])
        } else {
            None
        }
    }

    /// Number of 8×8 tiles along the row dimension (requires divisibility).
    pub fn tile_rows(&self) -> usize {
        self.rows / TILE_DIM
    }

    /// Number of 8×8 tiles along the column dimension (requires divisibility).
    pub fn tile_cols(&self) -> usize {
        self.cols / TILE_DIM
    }

    /// Returns true if both dimensions are multiples of the 8×8 tile size.
    pub fn is_tileable(&self) -> bool {
        self.rows.is_multiple_of(TILE_DIM) && self.cols.is_multiple_of(TILE_DIM)
    }

    /// Copies the 8×8 tile at tile coordinates `(tr, tc)` into a flat array
    /// in row-major order (64 elements).
    ///
    /// # Panics
    ///
    /// Panics if the tile is out of bounds.
    pub fn tile(&self, tr: usize, tc: usize) -> [T; 64]
    where
        T: Default,
    {
        assert!(
            tr < self.tile_rows() && tc < self.tile_cols(),
            "tile out of bounds"
        );
        let mut out = [T::default(); 64];
        for r in 0..TILE_DIM {
            let src = (tr * TILE_DIM + r) * self.cols + tc * TILE_DIM;
            out[r * TILE_DIM..(r + 1) * TILE_DIM].copy_from_slice(&self.data[src..src + TILE_DIM]);
        }
        out
    }

    /// Writes a flat 64-element row-major tile back at `(tr, tc)`.
    ///
    /// # Panics
    ///
    /// Panics if the tile is out of bounds.
    pub fn set_tile(&mut self, tr: usize, tc: usize, tile: &[T; 64]) {
        assert!(
            tr < self.tile_rows() && tc < self.tile_cols(),
            "tile out of bounds"
        );
        for r in 0..TILE_DIM {
            let dst = (tr * TILE_DIM + r) * self.cols + tc * TILE_DIM;
            self.data[dst..dst + TILE_DIM].copy_from_slice(&tile[r * TILE_DIM..(r + 1) * TILE_DIM]);
        }
    }

    /// Iterate over all 8×8 tiles in row-major tile order.
    pub fn tiles(&self) -> TileIter<'_, T> {
        TileIter {
            matrix: self,
            next: 0,
        }
    }
}

impl<T: Copy> core::ops::Index<(usize, usize)> for Matrix<T> {
    type Output = T;
    #[inline]
    fn index(&self, (r, c): (usize, usize)) -> &T {
        assert!(
            r < self.rows && c < self.cols,
            "index ({r},{c}) out of bounds"
        );
        &self.data[r * self.cols + c]
    }
}

impl<T: Copy> core::ops::IndexMut<(usize, usize)> for Matrix<T> {
    #[inline]
    fn index_mut(&mut self, (r, c): (usize, usize)) -> &mut T {
        assert!(
            r < self.rows && c < self.cols,
            "index ({r},{c}) out of bounds"
        );
        &mut self.data[r * self.cols + c]
    }
}

impl<T: fmt::Debug> fmt::Debug for Matrix<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Matrix({}x{})", self.rows, self.cols)
    }
}

/// Iterator over the 8×8 tiles of a matrix, produced by [`Matrix::tiles`].
///
/// Yields `(tile_row, tile_col, [T; 64])` in row-major tile order.
#[derive(Debug)]
pub struct TileIter<'a, T> {
    matrix: &'a Matrix<T>,
    next: usize,
}

impl<'a, T: Copy + Default> Iterator for TileIter<'a, T> {
    type Item = (usize, usize, [T; 64]);

    fn next(&mut self) -> Option<Self::Item> {
        let total = self.matrix.tile_rows() * self.matrix.tile_cols();
        if self.next >= total {
            return None;
        }
        let tc_count = self.matrix.tile_cols();
        let tr = self.next / tc_count;
        let tc = self.next % tc_count;
        self.next += 1;
        Some((tr, tc, self.matrix.tile(tr, tc)))
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let total = self.matrix.tile_rows() * self.matrix.tile_cols();
        let rem = total - self.next;
        (rem, Some(rem))
    }
}

impl<'a, T: Copy + Default> ExactSizeIterator for TileIter<'a, T> {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_fn_and_index() {
        let m = Matrix::from_fn(3, 5, |r, c| (r * 10 + c) as i32);
        assert_eq!(m[(0, 0)], 0);
        assert_eq!(m[(2, 4)], 24);
        assert_eq!(m.rows(), 3);
        assert_eq!(m.cols(), 5);
        assert_eq!(m.len(), 15);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn index_out_of_bounds_panics() {
        let m = Matrix::<i32>::zeros(2, 2);
        let _ = m[(2, 0)];
    }

    #[test]
    fn row_access() {
        let m = Matrix::from_fn(2, 3, |r, c| r * 3 + c);
        assert_eq!(m.row(1), &[3, 4, 5]);
    }

    #[test]
    fn get_returns_none_out_of_bounds() {
        let m = Matrix::<u8>::zeros(2, 2);
        assert!(m.get(1, 1).is_some());
        assert!(m.get(2, 0).is_none());
        assert!(m.get(0, 2).is_none());
    }

    #[test]
    fn tile_roundtrip() {
        let mut m = Matrix::from_fn(16, 24, |r, c| (r * 24 + c) as i32);
        let t = m.tile(1, 2);
        // tile (1,2) top-left element is row 8, col 16.
        assert_eq!(t[0], 8 * 24 + 16);
        assert_eq!(t[63], 15 * 24 + 23);
        let mut m2 = Matrix::zeros(16, 24);
        m2.set_tile(1, 2, &t);
        assert_eq!(m2[(8, 16)], 8 * 24 + 16);
        assert_eq!(m2[(15, 23)], 15 * 24 + 23);
        // Round-trip: rewrite all tiles reproduces the matrix.
        let tiles: Vec<_> = m.tiles().collect();
        assert_eq!(tiles.len(), 2 * 3);
        for (tr, tc, tile) in tiles {
            m.set_tile(tr, tc, &tile);
        }
        assert_eq!(m, Matrix::from_fn(16, 24, |r, c| (r * 24 + c) as i32));
    }

    #[test]
    fn tileable_check() {
        assert!(Matrix::<i32>::zeros(8, 16).is_tileable());
        assert!(!Matrix::<i32>::zeros(9, 16).is_tileable());
        assert!(!Matrix::<i32>::zeros(8, 12).is_tileable());
    }

    #[test]
    fn tile_iter_is_exact_size() {
        let m = Matrix::<i32>::zeros(32, 16);
        let it = m.tiles();
        assert_eq!(it.len(), 4 * 2);
        assert_eq!(it.count(), 8);
    }

    #[test]
    #[should_panic(expected = "does not match")]
    fn from_vec_length_mismatch_panics() {
        let _ = Matrix::from_vec(2, 2, vec![1, 2, 3]);
    }
}

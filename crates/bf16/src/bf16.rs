//! The BFloat16 scalar type.

use core::cmp::Ordering;
use core::fmt;

/// A 16-bit brain floating point number: 1 sign bit, 8 exponent bits,
/// 7 mantissa bits.
///
/// `Bf16` is a transparent wrapper over the raw bit pattern. All conversions
/// are implemented from scratch (no dependency on the `half` crate):
/// `from_f32` performs IEEE-754 round-to-nearest-even truncation of the
/// 32-bit significand, which is the conversion used when LLM checkpoints are
/// stored in BF16.
///
/// # Example
///
/// ```
/// use zipserv_bf16::Bf16;
///
/// let x = Bf16::from_f32(0.15625);
/// assert_eq!(x.to_f32(), 0.15625); // exactly representable
/// assert_eq!(x.exponent(), 124);   // 2^-3 => 127 - 3
/// assert_eq!(x.sign(), 0);
/// ```
#[derive(Clone, Copy, Default, PartialEq, Eq, Hash)]
#[repr(transparent)]
pub struct Bf16(u16);

impl Bf16 {
    /// Positive zero.
    pub const ZERO: Bf16 = Bf16(0);
    /// One.
    pub const ONE: Bf16 = Bf16(0x3F80);
    /// Positive infinity.
    pub const INFINITY: Bf16 = Bf16(0x7F80);
    /// Negative infinity.
    pub const NEG_INFINITY: Bf16 = Bf16(0xFF80);
    /// A quiet NaN.
    pub const NAN: Bf16 = Bf16(0x7FC0);
    /// Smallest positive normal value (2^-126).
    pub const MIN_POSITIVE: Bf16 = Bf16(0x0080);
    /// Largest finite value (~3.39e38).
    pub const MAX: Bf16 = Bf16(0x7F7F);

    /// Creates a `Bf16` from its raw bit pattern.
    #[inline]
    pub const fn from_bits(bits: u16) -> Self {
        Bf16(bits)
    }

    /// Returns the raw bit pattern.
    #[inline]
    pub const fn to_bits(self) -> u16 {
        self.0
    }

    /// Converts an `f32` to `Bf16` with round-to-nearest-even.
    ///
    /// NaN payloads are preserved in the upper bits, with the quiet bit
    /// forced so the result is never an unintended infinity.
    #[inline]
    pub fn from_f32(value: f32) -> Self {
        let bits = value.to_bits();
        if value.is_nan() {
            // Keep the top of the payload, force a quiet NaN.
            return Bf16(((bits >> 16) as u16) | 0x0040);
        }
        // Round to nearest even: add 0x7FFF + lsb of the kept part.
        let lsb = (bits >> 16) & 1;
        let rounded = bits.wrapping_add(0x7FFF + lsb);
        Bf16((rounded >> 16) as u16)
    }

    /// Converts this value to `f32` exactly (BF16 ⊂ FP32).
    #[inline]
    pub fn to_f32(self) -> f32 {
        f32::from_bits((self.0 as u32) << 16)
    }

    /// Builds a BF16 from its three bit fields.
    ///
    /// `sign` must be 0 or 1, `exponent` is the raw biased 8-bit field and
    /// `mantissa` the raw 7-bit field.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if a field is out of range.
    #[inline]
    pub fn from_parts(sign: u16, exponent: u16, mantissa: u16) -> Self {
        debug_assert!(sign <= 1, "sign must be 0 or 1");
        debug_assert!(exponent <= 0xFF, "exponent must fit in 8 bits");
        debug_assert!(mantissa <= 0x7F, "mantissa must fit in 7 bits");
        Bf16((sign << 15) | (exponent << 7) | mantissa)
    }

    /// The sign bit (0 for positive, 1 for negative).
    #[inline]
    pub const fn sign(self) -> u16 {
        self.0 >> 15
    }

    /// The raw (biased) 8-bit exponent field.
    #[inline]
    pub const fn exponent(self) -> u8 {
        ((self.0 >> 7) & 0xFF) as u8
    }

    /// The raw 7-bit mantissa field.
    #[inline]
    pub const fn mantissa(self) -> u8 {
        (self.0 & 0x7F) as u8
    }

    /// The sign and mantissa packed into a single byte, as stored in the
    /// TCA-TBE `PackedSignMantissa` buffer: bit 7 = sign, bits 0..7 = mantissa.
    #[inline]
    pub const fn packed_sign_mantissa(self) -> u8 {
        (((self.0 >> 15) as u8) << 7) | ((self.0 & 0x7F) as u8)
    }

    /// Reconstructs a BF16 from a packed sign/mantissa byte plus a raw
    /// exponent field. Inverse of [`Bf16::packed_sign_mantissa`].
    #[inline]
    pub const fn from_packed(packed: u8, exponent: u8) -> Self {
        let sign = ((packed >> 7) & 1) as u16;
        let mantissa = (packed & 0x7F) as u16;
        Bf16((sign << 15) | ((exponent as u16) << 7) | mantissa)
    }

    /// The unbiased exponent value `E - 127` for normal numbers.
    #[inline]
    pub const fn unbiased_exponent(self) -> i32 {
        self.exponent() as i32 - 127
    }

    /// Is this a NaN?
    #[inline]
    pub const fn is_nan(self) -> bool {
        self.exponent() == 0xFF && self.mantissa() != 0
    }

    /// Is this positive or negative infinity?
    #[inline]
    pub const fn is_infinite(self) -> bool {
        self.exponent() == 0xFF && self.mantissa() == 0
    }

    /// Is this a finite number (neither infinite nor NaN)?
    #[inline]
    pub const fn is_finite(self) -> bool {
        self.exponent() != 0xFF
    }

    /// Is this a subnormal number (exponent field 0, non-zero mantissa)?
    #[inline]
    pub const fn is_subnormal(self) -> bool {
        self.exponent() == 0 && self.mantissa() != 0
    }

    /// Is this positive or negative zero?
    #[inline]
    pub const fn is_zero(self) -> bool {
        self.0 & 0x7FFF == 0
    }

    /// The absolute value (clears the sign bit).
    #[inline]
    pub const fn abs(self) -> Self {
        Bf16(self.0 & 0x7FFF)
    }

    /// Negation (flips the sign bit, including on NaN).
    #[inline]
    pub const fn neg(self) -> Self {
        Bf16(self.0 ^ 0x8000)
    }
}

impl From<Bf16> for f32 {
    #[inline]
    fn from(x: Bf16) -> f32 {
        x.to_f32()
    }
}

impl From<f32> for Bf16 {
    #[inline]
    fn from(x: f32) -> Bf16 {
        Bf16::from_f32(x)
    }
}

impl PartialOrd for Bf16 {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        self.to_f32().partial_cmp(&other.to_f32())
    }
}

impl fmt::Debug for Bf16 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Bf16({} = {:#06x})", self.to_f32(), self.0)
    }
}

impl fmt::Display for Bf16 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(&self.to_f32(), f)
    }
}

impl fmt::LowerHex for Bf16 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::LowerHex::fmt(&self.0, f)
    }
}

impl fmt::UpperHex for Bf16 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::UpperHex::fmt(&self.0, f)
    }
}

impl fmt::Binary for Bf16 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Binary::fmt(&self.0, f)
    }
}

impl core::ops::Add for Bf16 {
    type Output = Bf16;
    #[inline]
    fn add(self, rhs: Self) -> Self::Output {
        Bf16::from_f32(self.to_f32() + rhs.to_f32())
    }
}

impl core::ops::Sub for Bf16 {
    type Output = Bf16;
    #[inline]
    fn sub(self, rhs: Self) -> Self::Output {
        Bf16::from_f32(self.to_f32() - rhs.to_f32())
    }
}

impl core::ops::Mul for Bf16 {
    type Output = Bf16;
    #[inline]
    fn mul(self, rhs: Self) -> Self::Output {
        Bf16::from_f32(self.to_f32() * rhs.to_f32())
    }
}

impl core::ops::Neg for Bf16 {
    type Output = Bf16;
    #[inline]
    fn neg(self) -> Self::Output {
        Bf16::neg(self)
    }
}

impl serde::Serialize for Bf16 {
    fn serialize<S: serde::Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_u16(self.0)
    }
}

impl<'de> serde::Deserialize<'de> for Bf16 {
    fn deserialize<D: serde::Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        u16::deserialize(deserializer).map(Bf16)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_and_one_roundtrip() {
        assert_eq!(Bf16::from_f32(0.0).to_bits(), 0);
        assert_eq!(Bf16::from_f32(1.0), Bf16::ONE);
        assert_eq!(Bf16::ONE.to_f32(), 1.0);
    }

    #[test]
    fn negative_zero_keeps_sign() {
        let nz = Bf16::from_f32(-0.0);
        assert_eq!(nz.sign(), 1);
        assert!(nz.is_zero());
        assert_eq!(nz.to_f32().to_bits(), (-0.0f32).to_bits());
    }

    #[test]
    fn round_to_nearest_even_up() {
        // 1.0 + 2^-8 is exactly between 1.0 and the next BF16 (1 + 2^-7):
        // ties to even mantissa => stays at 1.0.
        let tie = f32::from_bits(0x3F80_8000);
        assert_eq!(Bf16::from_f32(tie), Bf16::ONE);
        // Slightly above the tie rounds up.
        let above = f32::from_bits(0x3F80_8001);
        assert_eq!(Bf16::from_f32(above).to_bits(), 0x3F81);
    }

    #[test]
    fn round_to_nearest_even_odd_mantissa() {
        // (1 + 2^-7) + 2^-8: tie with odd mantissa rounds up to even.
        let tie = f32::from_bits(0x3F81_8000);
        assert_eq!(Bf16::from_f32(tie).to_bits(), 0x3F82);
    }

    #[test]
    fn field_extraction() {
        let x = Bf16::from_f32(-3.5); // sign 1, exp 128 (2^1), mantissa 1.75 -> 0x60
        assert_eq!(x.sign(), 1);
        assert_eq!(x.exponent(), 128);
        assert_eq!(x.mantissa(), 0x60);
        assert_eq!(x.unbiased_exponent(), 1);
    }

    #[test]
    fn from_parts_matches_extraction() {
        for bits in [0u16, 1, 0x3F80, 0x7F80, 0xFF80, 0x7FC0, 0xABCD, 0x1234] {
            let x = Bf16::from_bits(bits);
            let y = Bf16::from_parts(x.sign(), x.exponent() as u16, x.mantissa() as u16);
            assert_eq!(x, y);
        }
    }

    #[test]
    fn packed_sign_mantissa_roundtrip() {
        for bits in 0..=u16::MAX {
            let x = Bf16::from_bits(bits);
            let packed = x.packed_sign_mantissa();
            let back = Bf16::from_packed(packed, x.exponent());
            assert_eq!(x, back, "bits {bits:#06x}");
        }
    }

    #[test]
    fn classification() {
        assert!(Bf16::NAN.is_nan());
        assert!(!Bf16::NAN.is_finite());
        assert!(Bf16::INFINITY.is_infinite());
        assert!(Bf16::NEG_INFINITY.is_infinite());
        assert!(Bf16::from_bits(0x0001).is_subnormal());
        assert!(!Bf16::MIN_POSITIVE.is_subnormal());
        assert!(Bf16::ZERO.is_zero());
        assert!(Bf16::MAX.is_finite());
    }

    #[test]
    fn nan_conversion_stays_nan() {
        let x = Bf16::from_f32(f32::NAN);
        assert!(x.is_nan());
        assert!(x.to_f32().is_nan());
    }

    #[test]
    fn infinity_conversion() {
        assert_eq!(Bf16::from_f32(f32::INFINITY), Bf16::INFINITY);
        assert_eq!(Bf16::from_f32(f32::NEG_INFINITY), Bf16::NEG_INFINITY);
        // Overflow rounds to infinity.
        assert_eq!(Bf16::from_f32(3.4e38), Bf16::INFINITY);
    }

    #[test]
    fn exact_roundtrip_for_all_finite_bit_patterns() {
        // BF16 -> f32 -> BF16 must be the identity for every bit pattern
        // (including NaN payload bits that survive the quiet-bit OR).
        for bits in 0..=u16::MAX {
            let x = Bf16::from_bits(bits);
            if x.is_nan() {
                assert!(Bf16::from_f32(x.to_f32()).is_nan());
            } else {
                assert_eq!(Bf16::from_f32(x.to_f32()).to_bits(), bits, "{bits:#06x}");
            }
        }
    }

    #[test]
    fn arithmetic_goes_through_f32() {
        let a = Bf16::from_f32(1.5);
        let b = Bf16::from_f32(2.0);
        assert_eq!((a + b).to_f32(), 3.5);
        assert_eq!((a * b).to_f32(), 3.0);
        assert_eq!((a - b).to_f32(), -0.5);
        assert_eq!((-a).to_f32(), -1.5);
    }

    #[test]
    fn ordering_matches_f32() {
        let a = Bf16::from_f32(-1.0);
        let b = Bf16::from_f32(2.0);
        assert!(a < b);
        assert!(Bf16::NAN.partial_cmp(&a).is_none());
    }

    #[test]
    fn abs_and_neg() {
        let x = Bf16::from_f32(-2.5);
        assert_eq!(x.abs().to_f32(), 2.5);
        assert_eq!(x.neg().to_f32(), 2.5);
        assert_eq!(Bf16::ONE.neg().to_f32(), -1.0);
    }
}

//! Appendix A of the paper: the exact BF16 exponent distribution induced by
//! Gaussian weights, its unimodality, and top-K contiguity.
//!
//! For `w ~ N(0, σ²)` the probability that a weight uses raw exponent field
//! `E` (value `x = E - 127`) is the Gaussian mass of the magnitude band
//! `[2^x, 2^{x+1})`:
//!
//! ```text
//! P_σ(X = x) = erf(2^{x+1} / (σ√2)) − erf(2^x / (σ√2))
//! ```
//!
//! Theorem A.1 shows this is unimodal in `x` (unique maximum at
//! `u₀ = sqrt(ln 2 / 3)` in the substitution `u = 2^x/(σ√2)`), and Theorem
//! A.2 that the top-K set of any unimodal distribution is contiguous. This
//! module computes the distribution exactly and checks both properties
//! numerically, which is what justifies TCA-TBE's contiguous-window design.

use crate::math::{abs_gaussian_band, erf};

/// The exact exponent-field distribution for `w ~ N(0, σ²)`.
///
/// Index `e` of [`ExponentDistribution::probabilities`] holds
/// `P(raw exponent field = e)`. Magnitudes below the smallest normal
/// (`2^-126`) are folded into field 0 (zero/subnormal), and the overflow tail
/// above `2^128` into field 255 — both are vanishingly small for realistic σ.
#[derive(Debug, Clone, PartialEq)]
pub struct ExponentDistribution {
    sigma: f64,
    probabilities: [f64; 256],
}

impl ExponentDistribution {
    /// Computes the distribution for the given σ.
    ///
    /// # Panics
    ///
    /// Panics if `sigma` is not strictly positive and finite.
    pub fn new(sigma: f64) -> Self {
        assert!(sigma > 0.0 && sigma.is_finite(), "sigma must be positive");
        let mut p = [0.0f64; 256];
        let s = sigma * core::f64::consts::SQRT_2;
        // Zero + subnormal band: |w| < 2^-126.
        p[0] = erf(2f64.powi(-126) / s);
        for (e, slot) in p.iter_mut().enumerate().take(255).skip(1) {
            let x = e as i32 - 127;
            // Clamp: erf differences in the far tail can go slightly negative
            // due to the ~1e-7 approximation error.
            *slot = abs_gaussian_band(sigma, 2f64.powi(x), 2f64.powi(x + 1)).max(0.0);
        }
        // Overflow band folded into the top field.
        p[255] = (1.0 - erf(2f64.powi(128) / s)).max(0.0);
        ExponentDistribution {
            sigma,
            probabilities: p,
        }
    }

    /// The σ this distribution was computed for.
    pub fn sigma(&self) -> f64 {
        self.sigma
    }

    /// Per-exponent-field probabilities (sums to 1).
    pub fn probabilities(&self) -> &[f64; 256] {
        &self.probabilities
    }

    /// `P(raw exponent field = e)`.
    pub fn probability(&self, e: u8) -> f64 {
        self.probabilities[e as usize]
    }

    /// Shannon entropy of the exponent field in bits.
    pub fn entropy_bits(&self) -> f64 {
        self.probabilities
            .iter()
            .filter(|&&p| p > 0.0)
            .map(|&p| -p * p.log2())
            .sum()
    }

    /// The exponent field with maximum probability (the distribution mode).
    pub fn mode(&self) -> u8 {
        let (e, _) = self
            .probabilities
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).expect("probabilities are finite"))
            .expect("non-empty");
        e as u8
    }

    /// Checks Theorem A.1 numerically: the distribution rises to a single
    /// peak then falls (within `tol` to absorb floating-point noise).
    pub fn is_unimodal(&self, tol: f64) -> bool {
        let mode = self.mode() as usize;
        // Non-decreasing up to the mode.
        for e in 1..=mode {
            if self.probabilities[e] + tol < self.probabilities[e - 1] {
                return false;
            }
        }
        // Non-increasing after the mode.
        for e in mode + 1..256 {
            if self.probabilities[e] > self.probabilities[e - 1] + tol {
                return false;
            }
        }
        true
    }

    /// Total probability of the best contiguous window of `k` exponents.
    pub fn best_window_coverage(&self, k: usize) -> f64 {
        assert!((1..=256).contains(&k));
        let mut sum: f64 = self.probabilities[..k].iter().sum();
        let mut best = sum;
        for start in 1..=(256 - k) {
            sum = sum - self.probabilities[start - 1] + self.probabilities[start + k - 1];
            if sum > best {
                best = sum;
            }
        }
        best
    }

    /// Total probability of the `k` individually most likely exponents
    /// (contiguous or not). By Theorem A.2 this equals
    /// [`Self::best_window_coverage`] for a unimodal distribution.
    pub fn top_k_coverage(&self, k: usize) -> f64 {
        let mut p: Vec<f64> = self.probabilities.to_vec();
        p.sort_by(|a, b| b.partial_cmp(a).expect("finite"));
        p.iter().take(k).sum()
    }
}

/// Location of the continuous-domain peak from Theorem A.1:
/// the maximizing `u = 2^x / (σ√2)` is `u₀ = sqrt(ln 2 / 3)`.
pub fn peak_u0() -> f64 {
    (core::f64::consts::LN_2 / 3.0).sqrt()
}

/// The continuous extension `f(x) = erf(2u) − erf(u)` with
/// `u = 2^x / (σ√2)`, used in the proof of Theorem A.1.
pub fn continuous_band_probability(sigma: f64, x: f64) -> f64 {
    let u = 2f64.powf(x) / (sigma * core::f64::consts::SQRT_2);
    erf(2.0 * u) - erf(u)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn probabilities_sum_to_one() {
        for sigma in [0.005, 0.0125, 0.02, 0.05, 1.0] {
            let d = ExponentDistribution::new(sigma);
            let total: f64 = d.probabilities().iter().sum();
            assert!((total - 1.0).abs() < 1e-9, "sigma {sigma}: total {total}");
        }
    }

    #[test]
    fn unimodal_for_realistic_sigmas() {
        // Tolerance absorbs the ~1.5e-7 error of the erf approximation,
        // which shows up as noise in the far tails.
        for sigma in [0.005, 0.0125, 0.018, 0.021, 0.05] {
            let d = ExponentDistribution::new(sigma);
            assert!(d.is_unimodal(1e-6), "sigma {sigma} not unimodal");
        }
    }

    #[test]
    fn theorem_a2_top_k_equals_best_window() {
        // For a unimodal distribution the top-K set is contiguous, so picking
        // the K best individually equals the best K-window.
        let d = ExponentDistribution::new(0.018);
        for k in 1..=9 {
            let a = d.top_k_coverage(k);
            let b = d.best_window_coverage(k);
            assert!((a - b).abs() < 1e-12, "k={k}: {a} vs {b}");
        }
    }

    #[test]
    fn entropy_in_paper_range() {
        // Paper: 2.57–2.74 bits for surveyed LLMs.
        for sigma in [0.0125, 0.0145, 0.018, 0.021] {
            let h = ExponentDistribution::new(sigma).entropy_bits();
            assert!(h > 2.4 && h < 2.8, "sigma {sigma}: entropy {h}");
        }
    }

    #[test]
    fn top7_coverage_in_paper_range() {
        // Paper: top-7 covers over 95% (96.4% Llama-3, 97.4% Mistral-24B).
        for sigma in [0.0125, 0.018] {
            let c = ExponentDistribution::new(sigma).best_window_coverage(7);
            assert!(c > 0.95 && c < 0.995, "sigma {sigma}: top7 {c}");
        }
    }

    #[test]
    fn top3_coverage_in_paper_range() {
        // Paper: top-3 accounts for more than 67%.
        let c = ExponentDistribution::new(0.018).best_window_coverage(3);
        assert!(c > 0.67, "top3 {c}");
    }

    #[test]
    fn mode_tracks_sigma() {
        // Doubling sigma shifts the mode up by exactly one exponent.
        let m1 = ExponentDistribution::new(0.01).mode();
        let m2 = ExponentDistribution::new(0.02).mode();
        assert_eq!(m2, m1 + 1);
    }

    #[test]
    fn continuous_peak_matches_theorem() {
        // The continuous band probability is maximized where u = u0.
        let sigma = 0.02;
        let x_star = (peak_u0() * sigma * core::f64::consts::SQRT_2).log2();
        let at_peak = continuous_band_probability(sigma, x_star);
        for dx in [-0.5, -0.1, 0.1, 0.5] {
            assert!(
                continuous_band_probability(sigma, x_star + dx) < at_peak,
                "dx {dx}"
            );
        }
    }

    #[test]
    fn matches_sampled_histogram() {
        // The analytic distribution agrees with the empirical histogram of
        // the synthetic generator (total-variation distance small).
        use crate::gen::WeightGen;
        use crate::stats::ExponentHistogram;
        let sigma = 0.018;
        let d = ExponentDistribution::new(sigma);
        let v = WeightGen::new(sigma).seed(17).vector(400_000);
        let h = ExponentHistogram::from_values(v);
        let mut tv = 0.0;
        for e in 0..=255u8 {
            tv += (d.probability(e) - h.frequency(e)).abs();
        }
        tv /= 2.0;
        assert!(tv < 0.01, "total variation {tv}");
    }
}

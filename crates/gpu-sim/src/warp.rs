//! SIMT lockstep execution and divergence penalties.
//!
//! A warp of 32 threads executes in lockstep: when per-lane work differs
//! (variable-length symbol decoding, data-dependent loops), every lane pays
//! for the slowest. This module prices that effect both exactly — from a
//! per-lane work assignment — and statistically, from a work distribution,
//! which is how the kernel models consume the entropy crate's
//! [`DecodeTrace`](https://docs.rs/zipserv-entropy)-style length histograms.

use serde::{Deserialize, Serialize};

/// Lanes per warp on every modeled architecture.
pub const WARP_SIZE: usize = 32;

/// Executes one warp in lockstep: given each lane's work units, the warp
/// retires `max(work)` units while only `sum(work)` are useful.
///
/// Returns `(executed_units, useful_units)`.
///
/// # Example
///
/// ```
/// use zipserv_gpu_sim::warp::lockstep_cost;
///
/// // Uniform work: no waste.
/// let (exec, useful) = lockstep_cost(&[4; 32]);
/// assert_eq!(exec, 4 * 32);
/// assert_eq!(useful, 4 * 32);
///
/// // One slow lane stalls the other 31.
/// let mut lanes = [1u64; 32];
/// lanes[7] = 16;
/// let (exec, useful) = lockstep_cost(&lanes);
/// assert_eq!(exec, 16 * 32);
/// assert_eq!(useful, 31 + 16);
/// ```
pub fn lockstep_cost(lane_work: &[u64]) -> (u64, u64) {
    assert!(!lane_work.is_empty(), "warp needs at least one lane");
    let max = *lane_work.iter().max().expect("non-empty");
    let useful: u64 = lane_work.iter().sum();
    (max * lane_work.len() as u64, useful)
}

/// Divergence factor of a whole work assignment split into warps of 32:
/// executed / useful ≥ 1.
pub fn divergence_factor(work: &[u64]) -> f64 {
    if work.is_empty() {
        return 1.0;
    }
    let mut executed = 0u64;
    let mut useful = 0u64;
    for warp in work.chunks(WARP_SIZE) {
        let (e, u) = lockstep_cost(warp);
        executed += e;
        useful += u;
    }
    if useful == 0 {
        1.0
    } else {
        executed as f64 / useful as f64
    }
}

/// A discrete distribution of per-symbol work (e.g., Huffman code lengths),
/// used to compute the *expected* divergence of warps drawing 32 iid
/// symbols.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WorkDistribution {
    /// `(work_units, probability)` pairs; probabilities sum to 1.
    pub buckets: Vec<(u64, f64)>,
}

impl WorkDistribution {
    /// Builds a distribution from a histogram of work units.
    ///
    /// # Panics
    ///
    /// Panics if the histogram is all zeros.
    pub fn from_histogram(histogram: &[u64]) -> Self {
        let total: u64 = histogram.iter().sum();
        assert!(total > 0, "histogram must not be empty");
        let buckets = histogram
            .iter()
            .enumerate()
            .filter(|&(_, &n)| n > 0)
            .map(|(w, &n)| (w as u64, n as f64 / total as f64))
            .collect();
        WorkDistribution { buckets }
    }

    /// Mean work per symbol.
    pub fn mean(&self) -> f64 {
        self.buckets.iter().map(|&(w, p)| w as f64 * p).sum()
    }

    /// Expected maximum of `n` iid draws: `Σ_w P(max ≥ w)`.
    pub fn expected_max(&self, n: u32) -> f64 {
        let mut sorted = self.buckets.clone();
        sorted.sort_by_key(|&(w, _)| w);
        let mut expected = 0.0;
        let mut cdf_below = 0.0f64;
        let mut prev_w = 0u64;
        for &(w, p) in &sorted {
            // P(all draws < w) = cdf_below^n; contributes (w - prev_w) * P(max >= w)
            let p_max_ge = 1.0 - cdf_below.powi(n as i32);
            expected += (w - prev_w) as f64 * p_max_ge;
            cdf_below += p;
            prev_w = w;
        }
        expected
    }

    /// Expected lockstep divergence factor for warps of 32 iid draws:
    /// `E[max of 32] / mean`.
    pub fn warp_divergence(&self) -> f64 {
        let mean = self.mean();
        if mean == 0.0 {
            1.0
        } else {
            (self.expected_max(WARP_SIZE as u32) / mean).max(1.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_work_has_unit_divergence() {
        assert_eq!(divergence_factor(&[5; 64]), 1.0);
        let d = WorkDistribution::from_histogram(&[0, 0, 0, 100]);
        assert_eq!(d.warp_divergence(), 1.0);
        assert_eq!(d.mean(), 3.0);
    }

    #[test]
    fn skewed_work_diverges() {
        // 31 lanes with 1 unit, 1 lane with 32 units, repeated.
        let mut work = vec![1u64; 64];
        work[0] = 32;
        work[32] = 32;
        let f = divergence_factor(&work);
        assert!((f - (32.0 * 32.0) / (31.0 + 32.0)).abs() < 1e-12);
    }

    #[test]
    fn partial_warp_handled() {
        let f = divergence_factor(&[1, 2, 3]);
        assert!((f - 9.0 / 6.0).abs() < 1e-12);
    }

    #[test]
    fn empty_work_is_neutral() {
        assert_eq!(divergence_factor(&[]), 1.0);
    }

    #[test]
    fn expected_max_bounds() {
        let d = WorkDistribution::from_histogram(&[0, 50, 0, 0, 0, 0, 0, 0, 50]);
        // Mean = 4.5; max of 32 draws is almost surely 8.
        assert!((d.mean() - 4.5).abs() < 1e-12);
        let m = d.expected_max(32);
        assert!(m > 7.99 && m <= 8.0, "expected max {m}");
        assert!(d.warp_divergence() > 1.7);
    }

    #[test]
    fn expected_max_of_one_draw_is_mean() {
        let d = WorkDistribution::from_histogram(&[0, 10, 20, 30]);
        assert!((d.expected_max(1) - d.mean()).abs() < 1e-12);
    }

    #[test]
    fn divergence_grows_with_spread() {
        let narrow = WorkDistribution::from_histogram(&[0, 0, 0, 90, 10]);
        let wide = WorkDistribution::from_histogram(&[0, 45, 0, 0, 0, 45, 0, 0, 0, 0, 10]);
        assert!(wide.warp_divergence() > narrow.warp_divergence());
    }

    #[test]
    #[should_panic(expected = "histogram must not be empty")]
    fn empty_histogram_panics() {
        let _ = WorkDistribution::from_histogram(&[0, 0]);
    }
}

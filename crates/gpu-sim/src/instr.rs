//! Instruction mixes and ALU throughput.
//!
//! The ZipGEMM decompressor trades DRAM traffic for integer work: `LOP3`
//! (bitwise select), `IADD`, `POPC` (population count) and `SHFL` (warp
//! shuffle). Figure 12(a) of the paper quantifies this mix; this module
//! gives those instruction classes per-architecture throughputs so the
//! executor can price the decode workload.

use crate::device::DeviceSpec;
use serde::{Deserialize, Serialize};

/// Instruction classes priced by the model.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum InstrKind {
    /// Integer add / subtract.
    Iadd,
    /// Three-input logic op (LUT).
    Lop3,
    /// Population count.
    Popc,
    /// Funnel shift / ordinary shift.
    Shift,
    /// Warp shuffle.
    Shfl,
    /// Shared-memory load (LDS), per 128-bit transaction.
    Lds,
    /// Predicate / select.
    Sel,
}

impl InstrKind {
    /// All instruction kinds.
    pub const ALL: [InstrKind; 7] = [
        InstrKind::Iadd,
        InstrKind::Lop3,
        InstrKind::Popc,
        InstrKind::Shift,
        InstrKind::Shfl,
        InstrKind::Lds,
        InstrKind::Sel,
    ];

    /// Issue throughput in operations per SM per clock.
    ///
    /// Values follow the CUDA programming guide's arithmetic-throughput
    /// table for compute capability 8.x/9.x/12.x: full-rate integer ALU ops
    /// run on all INT32 lanes, POPC/SHFL run at quarter rate on the SFU-side
    /// pipes, shared-memory transactions are limited by the LSU.
    pub fn ops_per_sm_clock(self, spec: &DeviceSpec) -> f64 {
        let lanes = spec.int_lanes_per_sm as f64;
        match self {
            InstrKind::Iadd | InstrKind::Lop3 | InstrKind::Sel => lanes,
            InstrKind::Shift => lanes,
            InstrKind::Popc => lanes / 4.0,
            InstrKind::Shfl => lanes / 2.0,
            InstrKind::Lds => 32.0,
        }
    }
}

/// A counted mix of instructions.
///
/// # Example
///
/// ```
/// use zipserv_gpu_sim::instr::{InstrKind, InstrMix};
///
/// let mut mix = InstrMix::new();
/// mix.add(InstrKind::Popc, 64);
/// mix.add(InstrKind::Iadd, 128);
/// assert_eq!(mix.count(InstrKind::Popc), 64);
/// assert_eq!(mix.total(), 192);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct InstrMix {
    counts: [u64; 7],
}

impl InstrMix {
    /// An empty mix.
    pub fn new() -> Self {
        Self::default()
    }

    fn idx(kind: InstrKind) -> usize {
        InstrKind::ALL
            .iter()
            .position(|&k| k == kind)
            .expect("kind in ALL")
    }

    /// Adds `count` instructions of `kind`.
    pub fn add(&mut self, kind: InstrKind, count: u64) {
        self.counts[Self::idx(kind)] += count;
    }

    /// Count of one instruction kind.
    pub fn count(&self, kind: InstrKind) -> u64 {
        self.counts[Self::idx(kind)]
    }

    /// Total instruction count across kinds.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Merges another mix into this one.
    pub fn merge(&mut self, other: &InstrMix) {
        for (a, b) in self.counts.iter_mut().zip(other.counts.iter()) {
            *a += b;
        }
    }

    /// Scales every count by an integer factor.
    pub fn scaled(&self, factor: u64) -> InstrMix {
        let mut out = self.clone();
        for c in out.counts.iter_mut() {
            *c *= factor;
        }
        out
    }

    /// Time in microseconds to issue this mix on the whole device, assuming
    /// perfect occupancy (every SM busy). Each kind is priced at its own
    /// throughput; kinds issue on the same INT pipes, so times add.
    pub fn issue_time_us(&self, spec: &DeviceSpec) -> f64 {
        let sm_clock_per_us = spec.clock_ghz * 1e3; // clocks per us
        let mut us = 0.0;
        for (i, &kind) in InstrKind::ALL.iter().enumerate() {
            if self.counts[i] == 0 {
                continue;
            }
            let ops_per_us = kind.ops_per_sm_clock(spec) * spec.sm_count as f64 * sm_clock_per_us;
            us += self.counts[i] as f64 / ops_per_us;
        }
        us
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::Gpu;

    #[test]
    fn add_and_count() {
        let mut m = InstrMix::new();
        m.add(InstrKind::Lop3, 10);
        m.add(InstrKind::Lop3, 5);
        m.add(InstrKind::Popc, 3);
        assert_eq!(m.count(InstrKind::Lop3), 15);
        assert_eq!(m.count(InstrKind::Popc), 3);
        assert_eq!(m.count(InstrKind::Shfl), 0);
        assert_eq!(m.total(), 18);
    }

    #[test]
    fn merge_and_scale() {
        let mut a = InstrMix::new();
        a.add(InstrKind::Iadd, 4);
        let mut b = InstrMix::new();
        b.add(InstrKind::Iadd, 6);
        b.add(InstrKind::Shift, 2);
        a.merge(&b);
        assert_eq!(a.count(InstrKind::Iadd), 10);
        let c = a.scaled(3);
        assert_eq!(c.count(InstrKind::Iadd), 30);
        assert_eq!(c.count(InstrKind::Shift), 6);
    }

    #[test]
    fn popc_is_slower_than_iadd() {
        let spec = Gpu::Rtx4090.spec();
        let mut popc = InstrMix::new();
        popc.add(InstrKind::Popc, 1_000_000);
        let mut iadd = InstrMix::new();
        iadd.add(InstrKind::Iadd, 1_000_000);
        assert!(popc.issue_time_us(&spec) > 3.0 * iadd.issue_time_us(&spec));
    }

    #[test]
    fn issue_time_scales_linearly() {
        let spec = Gpu::L40s.spec();
        let mut m = InstrMix::new();
        m.add(InstrKind::Lop3, 1 << 20);
        let t1 = m.issue_time_us(&spec);
        let t4 = m.scaled(4).issue_time_us(&spec);
        assert!((t4 / t1 - 4.0).abs() < 1e-9);
    }

    #[test]
    fn lower_clock_is_slower() {
        // §7: A100's 1.41 GHz vs RTX4090's 2.52 GHz makes the same ALU
        // decode workload relatively more expensive.
        let mut m = InstrMix::new();
        m.add(InstrKind::Lop3, 1 << 24);
        m.add(InstrKind::Popc, 1 << 22);
        let t4090 = m.issue_time_us(&Gpu::Rtx4090.spec());
        let ta100 = m.issue_time_us(&Gpu::A100.spec());
        assert!(ta100 > 1.5 * t4090, "{ta100} vs {t4090}");
    }

    #[test]
    fn empty_mix_costs_nothing() {
        assert_eq!(InstrMix::new().issue_time_us(&Gpu::H800.spec()), 0.0);
    }
}

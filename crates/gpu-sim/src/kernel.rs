//! The kernel cost sheet and executor: turns a [`KernelProfile`] into time.
//!
//! A kernel's time is governed by three overlappable resources — DRAM
//! traffic, integer-ALU work and Tensor-Core work — plus shared-memory
//! serialization, SIMT divergence, wave quantization and launch overhead.
//! A well-pipelined kernel (ZipGEMM, cuBLAS) runs at
//! `max(resources) / overlap_efficiency`; a naive kernel serializes them.

use crate::device::DeviceSpec;
use crate::instr::InstrMix;
use crate::memory::{DramTraffic, SharedMemTraffic};
use crate::occupancy::LaunchGrid;
use serde::{Deserialize, Serialize};

/// How the kernel schedules its resource usage.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum ExecutionMode {
    /// Software-pipelined: memory, ALU and Tensor-Core work overlap; the
    /// slowest resource bounds throughput (derated by `overlap_efficiency`).
    Pipelined {
        /// Fraction of ideal overlap achieved (barriers, issue contention).
        overlap_efficiency: f64,
    },
    /// No overlap: resource times add up (a naive or divergent kernel).
    Serial,
}

/// The complete cost sheet of one kernel launch.
#[derive(Debug, Clone, PartialEq)]
pub struct KernelProfile {
    /// Kernel label for reports.
    pub name: &'static str,
    /// Global-memory traffic.
    pub dram: DramTraffic,
    /// Shared-memory traffic.
    pub smem: SharedMemTraffic,
    /// Integer/logic instruction workload.
    pub alu: InstrMix,
    /// SIMT divergence multiplier applied to the ALU workload (≥ 1).
    pub divergence: f64,
    /// Tensor-Core FLOPs.
    pub tensor_flops: f64,
    /// Launch grid (wave quantization).
    pub grid: LaunchGrid,
    /// Scheduling mode.
    pub mode: ExecutionMode,
}

impl KernelProfile {
    /// A profile with no work — useful as a builder seed.
    pub fn empty(name: &'static str) -> Self {
        KernelProfile {
            name,
            dram: DramTraffic::streaming(0, 0),
            smem: SharedMemTraffic::conflict_free(0),
            alu: InstrMix::new(),
            divergence: 1.0,
            tensor_flops: 0.0,
            grid: LaunchGrid {
                blocks: 1,
                blocks_per_sm: 1,
            },
            mode: ExecutionMode::Pipelined {
                overlap_efficiency: 1.0,
            },
        }
    }

    /// Executes the profile on a device, producing a time breakdown.
    pub fn execute(&self, spec: &DeviceSpec) -> KernelTime {
        let util = self.grid.sm_utilization(spec).max(1e-6);
        let wave_eff = self.grid.wave_efficiency(spec).max(1e-6);

        // DRAM: a device needs roughly half its SMs issuing loads to
        // saturate bandwidth; below that, achievable bandwidth scales down.
        let bw_fill = (util / 0.5).min(1.0);
        let mem_us = self.dram.time_us(spec) / bw_fill;

        // ALU: throughput scales with busy SMs; divergence inflates work.
        let alu_us = self.alu.issue_time_us(spec) * self.divergence / util;

        // Shared memory rides the same SM clock budget.
        let smem_us = self.smem.time_us(spec) / util;

        // Tensor cores: wave quantization wastes tail-slot throughput.
        let tensor_us = if self.tensor_flops > 0.0 {
            self.tensor_flops / (spec.tensor_flops_per_us() * wave_eff)
        } else {
            0.0
        };

        let compute_us = alu_us + smem_us;
        let total_us = match self.mode {
            ExecutionMode::Pipelined { overlap_efficiency } => {
                assert!(
                    overlap_efficiency > 0.0 && overlap_efficiency <= 1.0,
                    "overlap efficiency in (0,1]"
                );
                mem_us.max(compute_us).max(tensor_us) / overlap_efficiency + spec.launch_overhead_us
            }
            ExecutionMode::Serial => mem_us + compute_us + tensor_us + spec.launch_overhead_us,
        };

        KernelTime {
            name: self.name,
            mem_us,
            alu_us,
            smem_us,
            tensor_us,
            launch_us: spec.launch_overhead_us,
            total_us,
        }
    }
}

/// The resource-time breakdown of one kernel execution.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct KernelTime {
    /// Kernel label.
    pub name: &'static str,
    /// DRAM transfer time (µs).
    pub mem_us: f64,
    /// Integer-ALU time including divergence (µs).
    pub alu_us: f64,
    /// Shared-memory serialization time (µs).
    pub smem_us: f64,
    /// Tensor-Core time (µs).
    pub tensor_us: f64,
    /// Launch overhead (µs).
    pub launch_us: f64,
    /// End-to-end kernel time (µs).
    pub total_us: f64,
}

impl KernelTime {
    /// Which resource dominates ("mem", "alu", "tensor").
    pub fn bottleneck(&self) -> &'static str {
        let compute = self.alu_us + self.smem_us;
        if self.mem_us >= compute && self.mem_us >= self.tensor_us {
            "mem"
        } else if self.tensor_us >= compute {
            "tensor"
        } else {
            "alu"
        }
    }

    /// Fraction of total time the memory system is busy (overlap-adjusted
    /// utilization, ≤ 1).
    pub fn memory_busy_fraction(&self) -> f64 {
        if self.total_us == 0.0 {
            0.0
        } else {
            (self.mem_us / self.total_us).min(1.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::Gpu;
    use crate::instr::InstrKind;

    fn big_grid() -> LaunchGrid {
        LaunchGrid {
            blocks: 4096,
            blocks_per_sm: 2,
        }
    }

    #[test]
    fn pure_streaming_kernel_is_memory_bound() {
        let spec = Gpu::Rtx4090.spec();
        let mut p = KernelProfile::empty("copy");
        p.dram = DramTraffic::streaming(1 << 30, 0);
        p.grid = big_grid();
        let t = p.execute(&spec);
        assert_eq!(t.bottleneck(), "mem");
        assert!(t.total_us > 1000.0);
        assert!(t.memory_busy_fraction() > 0.95);
    }

    #[test]
    fn pipelined_takes_max_serial_takes_sum() {
        let spec = Gpu::L40s.spec();
        let mut p = KernelProfile::empty("mixed");
        p.dram = DramTraffic::streaming(100 << 20, 0);
        p.alu.add(InstrKind::Lop3, 2_000_000_000);
        p.grid = big_grid();
        let piped = p.execute(&spec);

        let mut s = p.clone();
        s.mode = ExecutionMode::Serial;
        let serial = s.execute(&spec);
        assert!(serial.total_us > piped.total_us);
        let sum = piped.mem_us + piped.alu_us + piped.smem_us + piped.tensor_us;
        assert!((serial.total_us - sum - spec.launch_overhead_us).abs() < 1e-6);
        assert!(
            (piped.total_us - piped.mem_us.max(piped.alu_us) - spec.launch_overhead_us).abs()
                < 1e-6
        );
    }

    #[test]
    fn divergence_inflates_alu_time() {
        let spec = Gpu::Rtx4090.spec();
        let mut p = KernelProfile::empty("decode");
        p.alu.add(InstrKind::Iadd, 1 << 30);
        p.grid = big_grid();
        let base = p.execute(&spec).alu_us;
        p.divergence = 2.5;
        let diverged = p.execute(&spec).alu_us;
        assert!((diverged / base - 2.5).abs() < 1e-9);
    }

    #[test]
    fn small_grid_throttles_bandwidth() {
        let spec = Gpu::Rtx4090.spec();
        let mut p = KernelProfile::empty("tiny");
        p.dram = DramTraffic::streaming(1 << 26, 0);
        p.grid = LaunchGrid {
            blocks: 16, // 12.5% of 128 SMs
            blocks_per_sm: 1,
        };
        let small = p.execute(&spec);
        p.grid = big_grid();
        let big = p.execute(&spec);
        assert!(
            small.mem_us > 3.0 * big.mem_us,
            "{} vs {}",
            small.mem_us,
            big.mem_us
        );
    }

    #[test]
    fn tensor_time_respects_wave_efficiency() {
        let spec = Gpu::Rtx4090.spec(); // 128 SMs
        let mut p = KernelProfile::empty("gemm");
        p.tensor_flops = 1e12;
        p.grid = LaunchGrid {
            blocks: 128,
            blocks_per_sm: 1,
        };
        let full = p.execute(&spec).tensor_us;
        p.grid = LaunchGrid {
            blocks: 129, // second wave nearly empty
            blocks_per_sm: 1,
        };
        let ragged = p.execute(&spec).tensor_us;
        assert!(ragged > 1.8 * full, "{ragged} vs {full}");
    }

    #[test]
    fn bank_conflicts_add_compute_time() {
        let spec = Gpu::Rtx4090.spec();
        let mut p = KernelProfile::empty("lut");
        p.smem = SharedMemTraffic::with_conflicts(50_000_000, 8.0);
        p.grid = big_grid();
        let t = p.execute(&spec);
        assert!(t.smem_us > 0.0);
        let mut q = p.clone();
        q.smem = SharedMemTraffic::conflict_free(50_000_000);
        assert!(t.smem_us > 7.9 * q.execute(&spec).smem_us);
    }

    #[test]
    fn launch_overhead_always_charged() {
        let spec = Gpu::H800.spec();
        let t = KernelProfile::empty("noop").execute(&spec);
        assert!((t.total_us - spec.launch_overhead_us).abs() < 1e-9);
    }
}

//! Discrete-event execution of kernel DAGs across CUDA-style streams.
//!
//! The single-kernel executor ([`crate::kernel::KernelProfile::execute`])
//! prices one launch in isolation. Serving pipelines launch *graphs*:
//! decompress layer `i+1` on one stream while the GEMM of layer `i` runs on
//! another. Whether that overlap helps depends on which resource each
//! kernel saturates — two DRAM-bound kernels gain nothing by overlapping,
//! a DRAM-bound decompressor under a compute-bound prefill GEMM hides
//! completely. This module simulates exactly that: kernels progress through
//! a DRAM pool and a compute pool, each shared equally among the kernels
//! that still need it.

use crate::device::DeviceSpec;
use crate::kernel::KernelProfile;

/// Identifies a submitted kernel.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct KernelId(usize);

/// One kernel's entry in the timeline produced by [`StreamSim::run`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TimelineEntry {
    /// Which kernel.
    pub id: KernelId,
    /// Start time (µs).
    pub start_us: f64,
    /// Completion time (µs).
    pub end_us: f64,
}

#[derive(Debug)]
struct Submitted {
    stream: usize,
    deps: Vec<KernelId>,
    /// Remaining exclusive DRAM work (µs of full-bandwidth time).
    dram_us: f64,
    /// Remaining compute work (µs of full-throughput time).
    compute_us: f64,
    launch_us: f64,
}

/// A multi-stream kernel-graph simulator.
#[derive(Debug)]
pub struct StreamSim {
    spec: DeviceSpec,
    kernels: Vec<Submitted>,
}

impl StreamSim {
    /// Creates a simulator for one device.
    pub fn new(spec: DeviceSpec) -> Self {
        StreamSim {
            spec,
            kernels: Vec::new(),
        }
    }

    /// Submits a kernel to `stream`, ordered after `deps` (and implicitly
    /// after the previous kernel on the same stream).
    pub fn submit(
        &mut self,
        stream: usize,
        profile: &KernelProfile,
        deps: &[KernelId],
    ) -> KernelId {
        let t = profile.execute(&self.spec);
        let id = KernelId(self.kernels.len());
        self.kernels.push(Submitted {
            stream,
            deps: deps.to_vec(),
            dram_us: t.mem_us,
            compute_us: (t.alu_us + t.smem_us).max(t.tensor_us),
            launch_us: t.launch_us,
        });
        id
    }

    /// Runs the graph to completion; returns the timeline sorted by start.
    pub fn run(&self) -> Vec<TimelineEntry> {
        let n = self.kernels.len();
        let mut dram_rem: Vec<f64> = self.kernels.iter().map(|k| k.dram_us).collect();
        let mut comp_rem: Vec<f64> = self.kernels.iter().map(|k| k.compute_us).collect();
        let mut launch_rem: Vec<f64> = self.kernels.iter().map(|k| k.launch_us).collect();
        let mut done = vec![false; n];
        let mut started: Vec<Option<f64>> = vec![None; n];
        let mut finished: Vec<f64> = vec![0.0; n];
        let mut now = 0.0f64;

        let stream_pred = |i: usize| -> Option<usize> {
            let s = self.kernels[i].stream;
            (0..i).rev().find(|&j| self.kernels[j].stream == s)
        };

        while done.iter().any(|&d| !d) {
            // Which kernels may run now?
            let runnable: Vec<usize> = (0..n)
                .filter(|&i| {
                    !done[i]
                        && self.kernels[i].deps.iter().all(|d| done[d.0])
                        && stream_pred(i).map(|p| done[p]).unwrap_or(true)
                })
                .collect();
            assert!(!runnable.is_empty(), "kernel graph deadlocked");
            for &i in &runnable {
                started[i].get_or_insert(now);
            }

            // Resource shares: pools split equally among demanders.
            let dram_users = runnable
                .iter()
                .filter(|&&i| dram_rem[i] > 0.0)
                .count()
                .max(1);
            let comp_users = runnable
                .iter()
                .filter(|&&i| comp_rem[i] > 0.0)
                .count()
                .max(1);

            // Time until the first runnable kernel finishes everything.
            let mut dt = f64::INFINITY;
            for &i in &runnable {
                let t_launch = launch_rem[i];
                let t_dram = dram_rem[i] * dram_users as f64;
                let t_comp = comp_rem[i] * comp_users as f64;
                // Launch serializes before the pipelined body; the body's
                // two resources overlap with each other.
                let finish = t_launch + t_dram.max(t_comp);
                dt = dt.min(finish.max(1e-9));
            }

            // Advance every runnable kernel by dt.
            for &i in &runnable {
                let mut budget = dt;
                let l = launch_rem[i].min(budget);
                launch_rem[i] -= l;
                budget -= l;
                if budget <= 0.0 {
                    continue;
                }
                dram_rem[i] = (dram_rem[i] - budget / dram_users as f64).max(0.0);
                comp_rem[i] = (comp_rem[i] - budget / comp_users as f64).max(0.0);
            }
            now += dt;
            for &i in &runnable {
                if launch_rem[i] <= 1e-12 && dram_rem[i] <= 1e-12 && comp_rem[i] <= 1e-12 {
                    done[i] = true;
                    finished[i] = now;
                }
            }
        }

        let mut timeline: Vec<TimelineEntry> = (0..n)
            .map(|i| TimelineEntry {
                id: KernelId(i),
                start_us: started[i].expect("all kernels ran"),
                end_us: finished[i],
            })
            .collect();
        timeline.sort_by(|a, b| a.start_us.partial_cmp(&b.start_us).expect("finite"));
        timeline
    }

    /// Total makespan of the graph in microseconds.
    pub fn makespan_us(&self) -> f64 {
        self.run().iter().map(|e| e.end_us).fold(0.0, f64::max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::Gpu;
    use crate::memory::DramTraffic;
    use crate::occupancy::LaunchGrid;

    fn mem_kernel(bytes: u64) -> KernelProfile {
        let mut p = KernelProfile::empty("mem");
        p.dram = DramTraffic::streaming(bytes, 0);
        p.grid = LaunchGrid {
            blocks: 1024,
            blocks_per_sm: 2,
        };
        p
    }

    fn compute_kernel(flops: f64) -> KernelProfile {
        let mut p = KernelProfile::empty("compute");
        p.tensor_flops = flops;
        p.grid = LaunchGrid {
            blocks: 1024,
            blocks_per_sm: 2,
        };
        p
    }

    #[test]
    fn single_kernel_matches_direct_execution() {
        let spec = Gpu::Rtx4090.spec();
        let p = mem_kernel(1 << 28);
        let mut sim = StreamSim::new(spec.clone());
        sim.submit(0, &p, &[]);
        let direct = p.execute(&spec).total_us;
        assert!((sim.makespan_us() - direct).abs() / direct < 0.01);
    }

    #[test]
    fn same_stream_serializes() {
        let spec = Gpu::Rtx4090.spec();
        let p = mem_kernel(1 << 28);
        let mut sim = StreamSim::new(spec.clone());
        sim.submit(0, &p, &[]);
        sim.submit(0, &p, &[]);
        let one = p.execute(&spec).total_us;
        assert!((sim.makespan_us() - 2.0 * one).abs() / one < 0.02);
        let tl = sim.run();
        assert!(tl[1].start_us >= tl[0].end_us - 1e-9);
    }

    #[test]
    fn two_memory_bound_streams_gain_nothing() {
        // Shared DRAM: overlapping two copies takes as long as running them
        // back to back.
        let spec = Gpu::L40s.spec();
        let p = mem_kernel(1 << 28);
        let mut sim = StreamSim::new(spec.clone());
        sim.submit(0, &p, &[]);
        sim.submit(1, &p, &[]);
        let one = p.execute(&spec).total_us;
        let makespan = sim.makespan_us();
        assert!(makespan > 1.85 * one, "{makespan} vs {one}");
    }

    #[test]
    fn memory_hides_under_compute() {
        // A DRAM-bound kernel fully overlaps a longer compute-bound one.
        let spec = Gpu::Rtx4090.spec();
        let mem = mem_kernel(1 << 26);
        let comp = compute_kernel(2e13); // ~240 us of tensor work
        let mut sim = StreamSim::new(spec.clone());
        sim.submit(0, &comp, &[]);
        sim.submit(1, &mem, &[]);
        let makespan = sim.makespan_us();
        let comp_alone = comp.execute(&spec).total_us;
        assert!(makespan < comp_alone * 1.05, "{makespan} vs {comp_alone}");
    }

    #[test]
    fn dependencies_are_honored() {
        let spec = Gpu::Rtx4090.spec();
        let p = mem_kernel(1 << 26);
        let mut sim = StreamSim::new(spec);
        let a = sim.submit(0, &p, &[]);
        let b = sim.submit(1, &p, &[a]); // cross-stream dependency
        let tl = sim.run();
        let find = |id: KernelId| tl.iter().find(|e| e.id == id).expect("present");
        assert!(find(b).start_us >= find(a).end_us - 1e-9);
    }

    #[test]
    fn random_dags_respect_lower_bounds() {
        // Property over pseudo-random graphs: the makespan is at least both
        // (a) each resource's total demand and (b) the critical path.
        let spec = Gpu::Rtx4090.spec();
        let mut state = 0x5EEDu64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for _case in 0..20 {
            let mut sim = StreamSim::new(spec.clone());
            let n = (next() % 8 + 2) as usize;
            let mut ids = Vec::new();
            let mut dram_total = 0.0;
            let mut times = Vec::new();
            for i in 0..n {
                let p = if next() % 2 == 0 {
                    mem_kernel((next() % 64 + 1) << 20)
                } else {
                    compute_kernel((next() % 100 + 1) as f64 * 1e9)
                };
                let deps: Vec<KernelId> = ids.iter().copied().filter(|_| next() % 3 == 0).collect();
                let t = p.execute(&spec);
                dram_total += t.mem_us;
                times.push(t.total_us);
                ids.push(sim.submit(i % 3, &p, &deps));
            }
            let makespan = sim.makespan_us();
            let longest = times.iter().cloned().fold(0.0, f64::max);
            assert!(makespan >= longest - 1e-6, "critical-path bound");
            assert!(makespan >= dram_total * 0.99 - 1e-6, "DRAM-capacity bound");
            let serial: f64 = times.iter().sum();
            assert!(makespan <= serial + 1e-6, "never slower than serial");
        }
    }

    #[test]
    fn layered_prefill_pipeline_overlaps_partially() {
        // Decompress(i+1) on stream 1 under GEMM(i) on stream 0: the
        // decompressor is DRAM-bound and the prefill GEMM compute-bound, so
        // the pipeline approaches the GEMM-only time.
        let spec = Gpu::Rtx4090.spec();
        // Comparable stage times: ~240 µs of tensor work vs ~235 µs of DRAM.
        let gemm = compute_kernel(2e10);
        let decomp = mem_kernel(200 << 20);
        let layers = 6;

        let mut sim = StreamSim::new(spec.clone());
        let mut prev_decomp = sim.submit(1, &decomp, &[]);
        for _ in 0..layers {
            let g = sim.submit(0, &gemm, &[prev_decomp]);
            prev_decomp = sim.submit(1, &decomp, &[]);
            let _ = g;
        }
        let pipelined = sim.makespan_us();

        let serial = (gemm.execute(&spec).total_us + decomp.execute(&spec).total_us)
            * layers as f64
            + decomp.execute(&spec).total_us;
        assert!(pipelined < 0.75 * serial, "{pipelined} vs serial {serial}");
        let gemm_only = gemm.execute(&spec).total_us * layers as f64;
        assert!(pipelined > gemm_only, "cannot beat the compute floor");
    }
}

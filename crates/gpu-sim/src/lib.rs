//! An analytic GPU execution model: the hardware substrate of the ZipServ
//! reproduction.
//!
//! The paper's entire evaluation is an argument about first-order GPU
//! mechanics — DRAM bandwidth, Tensor-Core throughput, integer-ALU
//! throughput, SIMT divergence, shared-memory bank conflicts, wave
//! quantization and software pipelining. This crate implements exactly those
//! mechanisms as a composable cost model:
//!
//! * [`device`] — published-spec presets for the five GPUs of the paper
//!   (RTX4090, L40S, RTX5090, A100, H800);
//! * [`instr`] — instruction mixes and per-architecture ALU throughput;
//! * [`memory`] — DRAM and shared-memory timing, including bank conflicts;
//! * [`warp`] — SIMT lockstep execution with divergence penalties;
//! * [`occupancy`] — block/wave quantization and tail effects;
//! * [`pipeline`] — multi-stage double-buffered software pipelines;
//! * [`kernel`] — the [`kernel::KernelProfile`] cost sheet and the
//!   executor that turns it into microseconds;
//! * [`roofline`] — compute-intensity / attainable-performance analysis
//!   (Figure 5, Equations 1–3).
//!
//! The model is deliberately *analytic* (closed-form, deterministic): the
//! goal is to preserve the paper's relative results — who wins, by what
//! factor, where crossovers fall — not to cycle-accurately simulate an SM.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod device;
pub mod instr;
pub mod kernel;
pub mod memory;
pub mod occupancy;
pub mod pipeline;
pub mod roofline;
pub mod stream;
pub mod warp;

pub use device::{DeviceSpec, Gpu};
pub use kernel::{ExecutionMode, KernelProfile, KernelTime};

//! Block scheduling, wave quantization and tail effects.
//!
//! A GEMM launches `ceil(M/tile_m) * ceil(N/tile_n) * split_k` blocks. The
//! device executes them in *waves* of `sm_count × blocks_per_sm`; the last
//! wave is usually partially full, wasting throughput. This tile/wave
//! quantization is why real GEMM efficiency varies with shape — the effect
//! behind Figure 11's per-layer spread (and the O_proj slowdown case).

use crate::device::{Arch, DeviceSpec};
use serde::{Deserialize, Serialize};

/// Per-block resource demands, for the CUDA-style occupancy calculation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct BlockResources {
    /// Threads per block.
    pub threads: u32,
    /// Registers per thread.
    pub registers_per_thread: u32,
    /// Static + dynamic shared memory per block, bytes.
    pub shared_bytes: u32,
}

impl BlockResources {
    /// Maximum resident threads per SM for an architecture.
    pub fn max_threads_per_sm(arch: Arch) -> u32 {
        match arch {
            Arch::Ada | Arch::Blackwell => 1536,
            Arch::Ampere | Arch::Hopper => 2048,
        }
    }

    /// Register file size per SM (32-bit registers).
    pub const REGISTERS_PER_SM: u32 = 65_536;

    /// Hardware cap on resident blocks per SM.
    pub fn max_blocks_per_sm(arch: Arch) -> u32 {
        match arch {
            Arch::Ada | Arch::Blackwell => 24,
            Arch::Ampere | Arch::Hopper => 32,
        }
    }

    /// Resident blocks per SM: the minimum across the thread, register,
    /// shared-memory and hardware-block limits (the CUDA occupancy
    /// calculator's headline number).
    ///
    /// # Panics
    ///
    /// Panics if `threads` is 0 or not a multiple of 32.
    pub fn residency(&self, spec: &DeviceSpec) -> u32 {
        assert!(
            self.threads > 0 && self.threads.is_multiple_of(32),
            "threads must be warps"
        );
        let by_threads = Self::max_threads_per_sm(spec.arch) / self.threads;
        let regs_per_block = self.registers_per_thread * self.threads;
        let by_registers = Self::REGISTERS_PER_SM
            .checked_div(regs_per_block)
            .unwrap_or(u32::MAX);
        let smem_per_sm = spec.shared_kib_per_sm * 1024;
        let by_shared = smem_per_sm
            .checked_div(self.shared_bytes)
            .unwrap_or(u32::MAX);
        by_threads
            .min(by_registers)
            .min(by_shared)
            .min(Self::max_blocks_per_sm(spec.arch))
    }

    /// Warp occupancy in (0, 1]: resident warps over the SM's warp slots.
    pub fn occupancy(&self, spec: &DeviceSpec) -> f64 {
        let resident_threads = self.residency(spec) * self.threads;
        resident_threads as f64 / Self::max_threads_per_sm(spec.arch) as f64
    }
}

/// A block-level launch configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct LaunchGrid {
    /// Total thread blocks launched.
    pub blocks: u64,
    /// Blocks resident per SM (from register/shared-memory occupancy).
    pub blocks_per_sm: u32,
}

impl LaunchGrid {
    /// Grid for a tiled GEMM over an `m × n` output with `tile_m × tile_n`
    /// block tiles and a split-K factor.
    ///
    /// # Panics
    ///
    /// Panics if any tile dimension or the split factor is zero.
    pub fn for_gemm(m: u64, n: u64, tile_m: u64, tile_n: u64, split_k: u64) -> Self {
        assert!(
            tile_m > 0 && tile_n > 0 && split_k > 0,
            "tiles must be nonzero"
        );
        let blocks = m.div_ceil(tile_m) * n.div_ceil(tile_n) * split_k;
        LaunchGrid {
            blocks,
            blocks_per_sm: 1,
        }
    }

    /// Sets the per-SM residency (builder style).
    ///
    /// # Panics
    ///
    /// Panics if `blocks_per_sm == 0`.
    pub fn with_residency(mut self, blocks_per_sm: u32) -> Self {
        assert!(blocks_per_sm > 0, "residency must be nonzero");
        self.blocks_per_sm = blocks_per_sm;
        self
    }

    /// Number of full waves plus one partial wave (total scheduling rounds).
    pub fn waves(&self, spec: &DeviceSpec) -> u64 {
        let per_wave = (spec.sm_count * self.blocks_per_sm) as u64;
        self.blocks.div_ceil(per_wave).max(1)
    }

    /// Wave efficiency in (0, 1]: useful blocks over scheduled slots.
    ///
    /// 1.0 when the grid fills every wave exactly; approaches
    /// `blocks / per_wave` for tiny grids that cannot fill one wave.
    pub fn wave_efficiency(&self, spec: &DeviceSpec) -> f64 {
        if self.blocks == 0 {
            return 1.0;
        }
        let per_wave = (spec.sm_count * self.blocks_per_sm) as u64;
        let slots = self.waves(spec) * per_wave;
        self.blocks as f64 / slots as f64
    }

    /// Fraction of SMs that have any work at all (for grids smaller than
    /// one wave) — the hard ceiling on achievable bandwidth/compute.
    pub fn sm_utilization(&self, spec: &DeviceSpec) -> f64 {
        let busy = (self
            .blocks
            .min(spec.sm_count as u64 * self.blocks_per_sm as u64)) as f64;
        (busy / (spec.sm_count as f64 * self.blocks_per_sm as f64)).min(1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::Gpu;

    #[test]
    fn gemm_grid_block_count() {
        // 4096x4096 output with 128x64 tiles: 32 * 64 blocks.
        let g = LaunchGrid::for_gemm(4096, 4096, 128, 64, 1);
        assert_eq!(g.blocks, 32 * 64);
        // Split-K multiplies the grid.
        let g4 = LaunchGrid::for_gemm(4096, 4096, 128, 64, 4);
        assert_eq!(g4.blocks, 32 * 64 * 4);
    }

    #[test]
    fn ceil_division_of_ragged_shapes() {
        let g = LaunchGrid::for_gemm(100, 50, 64, 64, 1);
        assert_eq!(g.blocks, 2);
    }

    #[test]
    fn full_wave_is_perfectly_efficient() {
        let spec = Gpu::Rtx4090.spec(); // 128 SMs
        let g = LaunchGrid {
            blocks: 256,
            blocks_per_sm: 1,
        };
        assert_eq!(g.waves(&spec), 2);
        assert_eq!(g.wave_efficiency(&spec), 1.0);
    }

    #[test]
    fn partial_tail_wave_wastes_slots() {
        let spec = Gpu::Rtx4090.spec();
        let g = LaunchGrid {
            blocks: 129,
            blocks_per_sm: 1,
        };
        assert_eq!(g.waves(&spec), 2);
        assert!((g.wave_efficiency(&spec) - 129.0 / 256.0).abs() < 1e-12);
    }

    #[test]
    fn tiny_grid_underutilizes_sms() {
        let spec = Gpu::Rtx4090.spec();
        let g = LaunchGrid {
            blocks: 32,
            blocks_per_sm: 1,
        };
        assert_eq!(g.sm_utilization(&spec), 32.0 / 128.0);
        // This is the paper's small-shape (O_proj) pathology: too few tiles
        // to fill the device.
        assert!(g.wave_efficiency(&spec) < 0.3);
    }

    #[test]
    fn residency_increases_wave_capacity() {
        let spec = Gpu::L40s.spec(); // 142 SMs
        let g = LaunchGrid {
            blocks: 284,
            blocks_per_sm: 1,
        };
        assert_eq!(g.waves(&spec), 2);
        let g2 = g.with_residency(2);
        assert_eq!(g2.waves(&spec), 1);
    }

    #[test]
    fn occupancy_limited_by_each_resource() {
        let spec = Gpu::Rtx4090.spec(); // Ada: 1536 threads/SM, 100 KiB smem
                                        // Thread-limited: 512-thread blocks, tiny footprint -> 3 blocks.
        let by_threads = BlockResources {
            threads: 512,
            registers_per_thread: 32,
            shared_bytes: 1024,
        };
        assert_eq!(by_threads.residency(&spec), 3);
        // Register-limited: 255 regs/thread at 256 threads = 65280/block.
        let by_regs = BlockResources {
            threads: 256,
            registers_per_thread: 255,
            shared_bytes: 0,
        };
        assert_eq!(by_regs.residency(&spec), 1);
        // Shared-memory-limited: 48 KiB blocks on a 100 KiB SM -> 2.
        let by_smem = BlockResources {
            threads: 128,
            registers_per_thread: 32,
            shared_bytes: 48 * 1024,
        };
        assert_eq!(by_smem.residency(&spec), 2);
    }

    #[test]
    fn zipgemm_like_config_achieves_target_residency() {
        // A 256-thread block with double-buffered ~34 KiB of shared memory
        // (two tiles of compressed weights + activations) and 128 regs:
        // the 2-blocks/SM residency the kernel models assume.
        let spec = Gpu::L40s.spec();
        let cfg = BlockResources {
            threads: 256,
            registers_per_thread: 128,
            shared_bytes: 34 * 1024,
        };
        assert_eq!(cfg.residency(&spec), 2);
        assert!(cfg.occupancy(&spec) > 0.3);
    }

    #[test]
    fn hopper_allows_more_threads() {
        let cfg = BlockResources {
            threads: 1024,
            registers_per_thread: 32,
            shared_bytes: 0,
        };
        assert_eq!(cfg.residency(&Gpu::Rtx4090.spec()), 1); // 1536/1024
        assert_eq!(cfg.residency(&Gpu::H800.spec()), 2); // 2048/1024
    }

    #[test]
    #[should_panic(expected = "threads must be warps")]
    fn non_warp_multiple_rejected() {
        let cfg = BlockResources {
            threads: 100,
            registers_per_thread: 32,
            shared_bytes: 0,
        };
        let _ = cfg.residency(&Gpu::Rtx4090.spec());
    }

    #[test]
    fn split_k_fills_small_grids() {
        // The ZipGEMM decode-stage trick: with N small, split-K recovers
        // device fill. 28672/128 = 224 blocks, already > 128; but for
        // M = 4096: 32 blocks -> 4-way split-K gives 128 = full 4090 wave.
        let spec = Gpu::Rtx4090.spec();
        let no_split = LaunchGrid::for_gemm(4096, 32, 128, 32, 1);
        let split = LaunchGrid::for_gemm(4096, 32, 128, 32, 4);
        assert!(split.wave_efficiency(&spec) > no_split.wave_efficiency(&spec));
        assert_eq!(split.sm_utilization(&spec), 1.0);
    }
}

//! Roofline analysis and the compute-intensity formulas of §3.3
//! (Equations 1–3).
//!
//! For `Y_{M×N} = W_{M×K} · X_{K×N}` in BF16 (2 bytes/element) with FP32
//! accumulation, the model compares three pipelines:
//!
//! * **Dense GEMM** (Eq. 1): reads `2MK + 2KN`, writes `2MN`;
//! * **Decoupled** (Eq. 2): additionally reads the compressed weights
//!   (`2MK/CR`), writes the decompressed weights (`2MK`), then re-reads them
//!   (`2MK`) — the global-memory staging penalty;
//! * **ZipServ fused** (Eq. 3): reads only `2MK/CR + 2KN`, writes `2MN`.

use crate::device::DeviceSpec;
use serde::{Deserialize, Serialize};

/// A GEMM problem shape (`Y = W·X`, `W: M×K`, `X: K×N`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct GemmShape {
    /// Output rows (weight matrix rows).
    pub m: u64,
    /// Reduction dimension (hidden size).
    pub k: u64,
    /// Tokens in flight (batch × sequence positions processed together).
    pub n: u64,
}

impl GemmShape {
    /// Creates a shape.
    ///
    /// # Panics
    ///
    /// Panics if any dimension is zero.
    pub fn new(m: u64, k: u64, n: u64) -> Self {
        assert!(m > 0 && k > 0 && n > 0, "GEMM dimensions must be nonzero");
        GemmShape { m, k, n }
    }

    /// Multiply-accumulate FLOPs: `2·M·N·K`.
    pub fn flops(&self) -> f64 {
        2.0 * self.m as f64 * self.n as f64 * self.k as f64
    }

    /// Weight bytes in BF16.
    pub fn weight_bytes(&self) -> u64 {
        2 * self.m * self.k
    }

    /// Activation bytes in BF16 (input `X`).
    pub fn activation_bytes(&self) -> u64 {
        2 * self.k * self.n
    }

    /// Output bytes in BF16.
    pub fn output_bytes(&self) -> u64 {
        2 * self.m * self.n
    }
}

/// Which pipeline the compute-intensity formula describes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PipelineKind {
    /// Plain dense GEMM on uncompressed weights (Eq. 1).
    DenseGemm,
    /// Decompress to global memory, then dense GEMM (Eq. 2).
    Decoupled,
    /// Fused load-compressed / compute-decompressed (Eq. 3).
    ZipServFused,
}

/// Compute intensity in FLOPs per DRAM byte for a pipeline at compression
/// ratio `cr` (e.g., 1.51 for the paper's average).
///
/// # Panics
///
/// Panics if `cr < 1`.
pub fn compute_intensity(shape: GemmShape, kind: PipelineKind, cr: f64) -> f64 {
    assert!(cr >= 1.0, "compression ratio must be >= 1");
    let (m, k, n) = (shape.m as f64, shape.k as f64, shape.n as f64);
    let flops = 2.0 * m * n * k;
    let bytes = match kind {
        // Eq. 1: MK + KN + MN elements * 2 bytes.
        PipelineKind::DenseGemm => 2.0 * (m * k + k * n + m * n),
        // Eq. 2: weights move 2/CR + 4 element-passes (read compressed,
        // write decompressed, read decompressed again + original formula's
        // accounting), activations + outputs once each.
        PipelineKind::Decoupled => m * k * (2.0 / cr + 4.0) + 2.0 * (k * n + m * n),
        // Eq. 3: weights move once, compressed.
        PipelineKind::ZipServFused => m * k * (2.0 / cr) + 2.0 * (k * n + m * n),
    };
    flops / bytes
}

/// A point on the roofline: attainable TFLOPS at a given compute intensity.
pub fn attainable_tflops(spec: &DeviceSpec, ci_flops_per_byte: f64) -> f64 {
    let mem_bound = ci_flops_per_byte * spec.dram_gbps * 1e-3; // TFLOPS
    mem_bound.min(spec.tensor_tflops_bf16)
}

/// Is a kernel with this CI memory-bound on this device?
pub fn is_memory_bound(spec: &DeviceSpec, ci_flops_per_byte: f64) -> bool {
    ci_flops_per_byte < spec.ridge_flops_per_byte()
}

/// One row of the Figure 5 dataset.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RooflinePoint {
    /// Tokens in flight.
    pub n: u64,
    /// CI of the dense GEMM (Eq. 1).
    pub ci_dense: f64,
    /// CI of the decoupled pipeline (Eq. 2).
    pub ci_decoupled: f64,
    /// CI of the fused ZipServ pipeline (Eq. 3).
    pub ci_fused: f64,
}

impl RooflinePoint {
    /// CI degradation of the decoupled pipeline vs dense (paper: ~62%).
    pub fn decoupled_degradation(&self) -> f64 {
        1.0 - self.ci_decoupled / self.ci_dense
    }

    /// CI improvement of the fused pipeline vs dense (paper: ~50%).
    pub fn fused_improvement(&self) -> f64 {
        self.ci_fused / self.ci_dense - 1.0
    }
}

/// Computes the Figure 5 series: `M = K = 4096`, sweeping batch size.
pub fn figure5_series(batch_sizes: &[u64], cr: f64) -> Vec<RooflinePoint> {
    batch_sizes
        .iter()
        .map(|&n| {
            let shape = GemmShape::new(4096, 4096, n);
            RooflinePoint {
                n,
                ci_dense: compute_intensity(shape, PipelineKind::DenseGemm, cr),
                ci_decoupled: compute_intensity(shape, PipelineKind::Decoupled, cr),
                ci_fused: compute_intensity(shape, PipelineKind::ZipServFused, cr),
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::Gpu;

    /// The paper's average compression ratio.
    const CR: f64 = 1.51;

    #[test]
    fn eq1_matches_closed_form() {
        let s = GemmShape::new(4096, 4096, 32);
        let ci = compute_intensity(s, PipelineKind::DenseGemm, CR);
        let (m, k, n) = (4096.0, 4096.0, 32.0);
        let want = m * n * k / (m * k + k * n + m * n);
        assert!((ci - want).abs() < 1e-9);
    }

    #[test]
    fn eq2_matches_paper_approximation() {
        // Paper approximates Eq. 2 as MNK / (2.66 MK + KN + MN) at CR=1.51.
        let s = GemmShape::new(4096, 4096, 32);
        let ci = compute_intensity(s, PipelineKind::Decoupled, CR);
        let (m, k, n) = (4096.0, 4096.0, 32.0);
        let approx = m * n * k / (2.66 * m * k + k * n + m * n);
        assert!((ci - approx).abs() / approx < 0.01, "{ci} vs {approx}");
    }

    #[test]
    fn eq3_matches_paper_approximation() {
        // Paper approximates Eq. 3 as MNK / (0.66 MK + KN + MN) at CR=1.51.
        let s = GemmShape::new(4096, 4096, 32);
        let ci = compute_intensity(s, PipelineKind::ZipServFused, CR);
        let (m, k, n) = (4096.0, 4096.0, 32.0);
        let approx = m * n * k / (0.66 * m * k + k * n + m * n);
        assert!((ci - approx).abs() / approx < 0.01, "{ci} vs {approx}");
    }

    #[test]
    fn figure5_degradation_matches_paper() {
        // Paper: CI degradation of 62.3/62.2/62.0/61.7% for batch 8/16/32/64.
        let pts = figure5_series(&[8, 16, 32, 64], CR);
        let expect = [0.623, 0.622, 0.620, 0.617];
        for (p, &want) in pts.iter().zip(expect.iter()) {
            let got = p.decoupled_degradation();
            assert!((got - want).abs() < 0.01, "N={}: {got} vs {want}", p.n);
        }
    }

    #[test]
    fn figure5_fused_improvement_about_50_percent() {
        let pts = figure5_series(&[8, 16, 32, 64], CR);
        for p in &pts {
            let gain = p.fused_improvement();
            assert!(gain > 0.40 && gain < 0.60, "N={}: gain {gain}", p.n);
        }
    }

    #[test]
    fn decode_shapes_are_memory_bound() {
        let spec = Gpu::Rtx4090.spec();
        let s = GemmShape::new(4096, 4096, 32);
        for kind in [
            PipelineKind::DenseGemm,
            PipelineKind::Decoupled,
            PipelineKind::ZipServFused,
        ] {
            let ci = compute_intensity(s, kind, CR);
            assert!(
                is_memory_bound(&spec, ci),
                "{kind:?} should be memory bound"
            );
        }
    }

    #[test]
    fn prefill_shapes_are_compute_bound() {
        let spec = Gpu::Rtx4090.spec();
        let s = GemmShape::new(4096, 4096, 8192);
        let ci = compute_intensity(s, PipelineKind::DenseGemm, CR);
        assert!(!is_memory_bound(&spec, ci), "prefill CI {ci}");
    }

    #[test]
    fn attainable_caps_at_peak() {
        let spec = Gpu::Rtx4090.spec();
        assert_eq!(attainable_tflops(&spec, 1e9), spec.tensor_tflops_bf16);
        // Memory-bound region scales linearly with CI.
        let t1 = attainable_tflops(&spec, 10.0);
        let t2 = attainable_tflops(&spec, 20.0);
        assert!((t2 / t1 - 2.0).abs() < 1e-9);
    }

    #[test]
    fn fused_speedup_tracks_compression_ratio_in_memory_bound_regime() {
        // In the weight-dominated memory-bound limit (N small), the fused
        // pipeline's CI gain approaches CR.
        let s = GemmShape::new(16384, 16384, 1);
        let dense = compute_intensity(s, PipelineKind::DenseGemm, CR);
        let fused = compute_intensity(s, PipelineKind::ZipServFused, CR);
        assert!((fused / dense - CR).abs() < 0.02, "{}", fused / dense);
    }

    #[test]
    fn shape_helpers() {
        let s = GemmShape::new(8, 4, 2);
        assert_eq!(s.flops(), 2.0 * 8.0 * 4.0 * 2.0);
        assert_eq!(s.weight_bytes(), 64);
        assert_eq!(s.activation_bytes(), 16);
        assert_eq!(s.output_bytes(), 32);
    }

    #[test]
    #[should_panic(expected = "dimensions must be nonzero")]
    fn zero_dims_rejected() {
        let _ = GemmShape::new(0, 1, 1);
    }
}

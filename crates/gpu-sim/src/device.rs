//! GPU device specifications.
//!
//! Presets use published spec-sheet numbers for the five GPUs evaluated in
//! the paper. Peak Tensor-Core throughput is the *dense* BF16 rate with FP32
//! accumulation (the mode LLM inference uses); DRAM bandwidth is the
//! spec-sheet peak, with achievable efficiency modeled separately in
//! [`crate::memory`].

use serde::{Deserialize, Serialize};

/// GPU micro-architecture generation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Arch {
    /// NVIDIA Ampere (A100).
    Ampere,
    /// NVIDIA Ada Lovelace (RTX4090, L40S).
    Ada,
    /// NVIDIA Hopper (H800).
    Hopper,
    /// NVIDIA Blackwell (RTX5090).
    Blackwell,
}

/// Market tier: the paper contrasts inference-optimized consumer parts with
/// training-oriented datacenter parts (§6.3, §7).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Tier {
    /// Consumer / inference-optimized (GDDR memory, high clocks).
    Consumer,
    /// Datacenter / training-oriented (HBM memory, lower clocks).
    Datacenter,
}

/// A complete device specification consumed by the cost model.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DeviceSpec {
    /// Marketing name.
    pub name: &'static str,
    /// Micro-architecture.
    pub arch: Arch,
    /// Market tier.
    pub tier: Tier,
    /// Number of streaming multiprocessors.
    pub sm_count: u32,
    /// Boost clock in GHz.
    pub clock_ghz: f64,
    /// Peak DRAM bandwidth in GB/s.
    pub dram_gbps: f64,
    /// DRAM capacity in GiB.
    pub dram_gib: f64,
    /// L2 cache size in MiB.
    pub l2_mib: f64,
    /// Shared memory per SM in KiB.
    pub shared_kib_per_sm: u32,
    /// Peak dense BF16 Tensor-Core throughput (FP32 accumulate), TFLOPS.
    pub tensor_tflops_bf16: f64,
    /// INT32 ALU lanes per SM (IADD/LOP3 throughput per clock).
    pub int_lanes_per_sm: u32,
    /// Kernel launch overhead in microseconds.
    pub launch_overhead_us: f64,
    /// Fraction of peak DRAM bandwidth achievable by a well-tuned streaming
    /// kernel (measured copy efficiency).
    pub dram_efficiency: f64,
}

impl DeviceSpec {
    /// Peak achievable DRAM bandwidth in bytes per microsecond.
    pub fn effective_dram_bytes_per_us(&self) -> f64 {
        self.dram_gbps * self.dram_efficiency * 1e3
    }

    /// Peak Tensor-Core FLOPs per microsecond.
    pub fn tensor_flops_per_us(&self) -> f64 {
        self.tensor_tflops_bf16 * 1e6
    }

    /// Aggregate INT32 ALU operations per microsecond.
    pub fn int_ops_per_us(&self) -> f64 {
        self.int_lanes_per_sm as f64 * self.sm_count as f64 * self.clock_ghz * 1e3
    }

    /// Machine balance in FLOPs per byte: the roofline ridge point.
    pub fn ridge_flops_per_byte(&self) -> f64 {
        self.tensor_flops_per_us() / (self.dram_gbps * 1e3)
    }

    /// Is this an inference-optimized (bandwidth-starved) part?
    pub fn is_consumer(&self) -> bool {
        self.tier == Tier::Consumer
    }
}

/// The GPUs evaluated in the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Gpu {
    /// NVIDIA GeForce RTX 4090 (Ada, 24 GB GDDR6X).
    Rtx4090,
    /// NVIDIA L40S (Ada, 48 GB GDDR6).
    L40s,
    /// NVIDIA GeForce RTX 5090 (Blackwell, 32 GB GDDR7).
    Rtx5090,
    /// NVIDIA A100 SXM 80 GB (Ampere, HBM2e).
    A100,
    /// NVIDIA H800 SXM (Hopper, HBM3).
    H800,
}

impl Gpu {
    /// All presets, consumer parts first.
    pub const ALL: [Gpu; 5] = [Gpu::Rtx4090, Gpu::L40s, Gpu::Rtx5090, Gpu::A100, Gpu::H800];

    /// The full specification for this GPU.
    pub fn spec(self) -> DeviceSpec {
        match self {
            Gpu::Rtx4090 => DeviceSpec {
                name: "RTX4090",
                arch: Arch::Ada,
                tier: Tier::Consumer,
                sm_count: 128,
                clock_ghz: 2.52,
                dram_gbps: 1008.0,
                dram_gib: 24.0,
                l2_mib: 72.0,
                shared_kib_per_sm: 100,
                tensor_tflops_bf16: 82.6,
                int_lanes_per_sm: 64,
                launch_overhead_us: 4.0,
                dram_efficiency: 0.88,
            },
            Gpu::L40s => DeviceSpec {
                name: "L40S",
                arch: Arch::Ada,
                tier: Tier::Consumer,
                sm_count: 142,
                clock_ghz: 2.52,
                dram_gbps: 864.0,
                dram_gib: 48.0,
                l2_mib: 96.0,
                shared_kib_per_sm: 100,
                tensor_tflops_bf16: 90.5,
                int_lanes_per_sm: 64,
                launch_overhead_us: 4.0,
                dram_efficiency: 0.88,
            },
            Gpu::Rtx5090 => DeviceSpec {
                name: "RTX5090",
                arch: Arch::Blackwell,
                tier: Tier::Consumer,
                sm_count: 170,
                clock_ghz: 2.41,
                dram_gbps: 1792.0,
                dram_gib: 32.0,
                l2_mib: 96.0,
                shared_kib_per_sm: 100,
                tensor_tflops_bf16: 104.8,
                int_lanes_per_sm: 64,
                launch_overhead_us: 4.0,
                dram_efficiency: 0.88,
            },
            Gpu::A100 => DeviceSpec {
                name: "A100",
                arch: Arch::Ampere,
                tier: Tier::Datacenter,
                sm_count: 108,
                clock_ghz: 1.41,
                dram_gbps: 2039.0,
                dram_gib: 80.0,
                l2_mib: 40.0,
                shared_kib_per_sm: 164,
                tensor_tflops_bf16: 312.0,
                int_lanes_per_sm: 64,
                launch_overhead_us: 4.0,
                dram_efficiency: 0.86,
            },
            Gpu::H800 => DeviceSpec {
                name: "H800",
                arch: Arch::Hopper,
                tier: Tier::Datacenter,
                sm_count: 132,
                clock_ghz: 1.98,
                dram_gbps: 3350.0,
                dram_gib: 80.0,
                l2_mib: 50.0,
                shared_kib_per_sm: 228,
                tensor_tflops_bf16: 989.0,
                int_lanes_per_sm: 64,
                launch_overhead_us: 4.0,
                dram_efficiency: 0.84,
            },
        }
    }

    /// Marketing name.
    pub fn name(self) -> &'static str {
        self.spec().name
    }
}

impl core::fmt::Display for Gpu {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_presets_are_sane() {
        for gpu in Gpu::ALL {
            let s = gpu.spec();
            assert!(s.sm_count > 0);
            assert!(s.clock_ghz > 0.5 && s.clock_ghz < 4.0);
            assert!(s.dram_gbps > 500.0);
            assert!(s.tensor_tflops_bf16 > 50.0);
            assert!(s.dram_efficiency > 0.5 && s.dram_efficiency <= 1.0);
        }
    }

    #[test]
    fn consumer_vs_datacenter_split() {
        assert!(Gpu::Rtx4090.spec().is_consumer());
        assert!(Gpu::L40s.spec().is_consumer());
        assert!(Gpu::Rtx5090.spec().is_consumer());
        assert!(!Gpu::A100.spec().is_consumer());
        assert!(!Gpu::H800.spec().is_consumer());
    }

    #[test]
    fn datacenter_parts_have_more_bandwidth_less_clock() {
        // The §7 argument: HBM parts relax the memory bottleneck and run at
        // lower clocks, making ALU-heavy decoding harder to hide.
        let c = Gpu::Rtx4090.spec();
        let d = Gpu::A100.spec();
        assert!(d.dram_gbps > 1.5 * c.dram_gbps);
        assert!(d.clock_ghz < 0.7 * c.clock_ghz);
    }

    #[test]
    fn ridge_point_ordering() {
        // Consumer parts are far more compute-rich per byte than datacenter
        // parts in relative terms: ridge point (flops/byte) is higher.
        let r4090 = Gpu::Rtx4090.spec().ridge_flops_per_byte();
        let ra100 = Gpu::A100.spec().ridge_flops_per_byte();
        assert!(r4090 < 100.0 && r4090 > 30.0, "4090 ridge {r4090}");
        assert!(ra100 > 100.0, "A100 ridge {ra100}");
    }

    #[test]
    fn unit_conversions() {
        let s = Gpu::Rtx4090.spec();
        // 1008 GB/s * 0.88 = 887 bytes/ns = 887_000 bytes/us
        assert!((s.effective_dram_bytes_per_us() - 887_040.0).abs() < 1.0);
        assert!((s.tensor_flops_per_us() - 82.6e6).abs() < 1.0);
        // 64 lanes * 128 SMs * 2.52 GHz = 20.6 Tops/s = 2.06e7 ops/us
        assert!((s.int_ops_per_us() - 64.0 * 128.0 * 2.52 * 1e3).abs() < 1.0);
    }

    #[test]
    fn display_names() {
        assert_eq!(Gpu::Rtx4090.to_string(), "RTX4090");
        assert_eq!(Gpu::H800.to_string(), "H800");
    }
}

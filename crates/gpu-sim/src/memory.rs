//! Memory-system timing: DRAM streams, L2 reuse and shared-memory bank
//! conflicts.

use crate::device::DeviceSpec;
use serde::{Deserialize, Serialize};

/// Timing model for global-memory (DRAM) traffic.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DramTraffic {
    /// Bytes read from DRAM.
    pub read_bytes: u64,
    /// Bytes written to DRAM.
    pub write_bytes: u64,
    /// Fraction of reads served by L2 (bypass DRAM).
    pub l2_hit_fraction: f64,
    /// Access-pattern efficiency multiplier in (0, 1]: 1.0 for perfectly
    /// coalesced streams, lower for strided / divergent access. The paper's
    /// measured decoder efficiencies (43.7% for DietGPU, 76.5% for DFloat11,
    /// §3.2) enter the model here.
    pub access_efficiency: f64,
}

impl DramTraffic {
    /// Perfectly-coalesced streaming traffic with no L2 reuse.
    pub fn streaming(read_bytes: u64, write_bytes: u64) -> Self {
        DramTraffic {
            read_bytes,
            write_bytes,
            l2_hit_fraction: 0.0,
            access_efficiency: 1.0,
        }
    }

    /// Sets the access-pattern efficiency (builder style).
    ///
    /// # Panics
    ///
    /// Panics if `eff` is not in `(0, 1]`.
    pub fn with_efficiency(mut self, eff: f64) -> Self {
        assert!(eff > 0.0 && eff <= 1.0, "efficiency must be in (0,1]");
        self.access_efficiency = eff;
        self
    }

    /// Sets the fraction of reads served from L2 (builder style).
    ///
    /// # Panics
    ///
    /// Panics if `frac` is not in `[0, 1]`.
    pub fn with_l2_hits(mut self, frac: f64) -> Self {
        assert!((0.0..=1.0).contains(&frac), "fraction must be in [0,1]");
        self.l2_hit_fraction = frac;
        self
    }

    /// Effective DRAM bytes after L2 filtering.
    pub fn dram_bytes(&self) -> f64 {
        self.read_bytes as f64 * (1.0 - self.l2_hit_fraction) + self.write_bytes as f64
    }

    /// Transfer time in microseconds on `spec`.
    pub fn time_us(&self, spec: &DeviceSpec) -> f64 {
        let bw = spec.effective_dram_bytes_per_us() * self.access_efficiency;
        self.dram_bytes() / bw
    }
}

/// Shared-memory timing with bank conflicts.
///
/// Shared memory has 32 banks of 4 bytes; a warp's access completes in one
/// transaction when lanes hit distinct banks and in `conflict_degree`
/// serialized transactions otherwise. DietGPU's table-driven decode incurs
/// millions of conflicts (Figure 12(c)); TCA-TBE's 64-bit bitmap loads are
/// conflict-free by construction.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SharedMemTraffic {
    /// Number of warp-level shared-memory transactions.
    pub transactions: u64,
    /// Average serialization factor per transaction (1.0 = conflict-free,
    /// up to 32.0 for fully serialized).
    pub conflict_degree: f64,
}

impl SharedMemTraffic {
    /// Conflict-free traffic.
    pub fn conflict_free(transactions: u64) -> Self {
        SharedMemTraffic {
            transactions,
            conflict_degree: 1.0,
        }
    }

    /// Traffic with a uniform conflict degree.
    ///
    /// # Panics
    ///
    /// Panics if `degree < 1` or `degree > 32`.
    pub fn with_conflicts(transactions: u64, degree: f64) -> Self {
        assert!((1.0..=32.0).contains(&degree), "degree in [1,32]");
        SharedMemTraffic {
            transactions,
            conflict_degree: degree,
        }
    }

    /// Total serialized transactions (the NCU "bank conflict" counter is
    /// `total_serialized - transactions`).
    pub fn serialized_transactions(&self) -> f64 {
        self.transactions as f64 * self.conflict_degree
    }

    /// Extra transactions caused purely by conflicts.
    pub fn conflict_count(&self) -> f64 {
        self.serialized_transactions() - self.transactions as f64
    }

    /// Service time in microseconds: each SM retires one shared-memory
    /// transaction per clock.
    pub fn time_us(&self, spec: &DeviceSpec) -> f64 {
        let per_us = spec.sm_count as f64 * spec.clock_ghz * 1e3;
        self.serialized_transactions() / per_us
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::Gpu;

    #[test]
    fn streaming_time_matches_bandwidth() {
        let spec = Gpu::Rtx4090.spec();
        // 887 GB/s effective => 1 GB in ~1127 us.
        let t = DramTraffic::streaming(1 << 30, 0).time_us(&spec);
        assert!((t - (1u64 << 30) as f64 / 887_040.0).abs() < 1e-6);
    }

    #[test]
    fn writes_count_fully() {
        let spec = Gpu::L40s.spec();
        let rd = DramTraffic::streaming(1000, 0).time_us(&spec);
        let wr = DramTraffic::streaming(0, 1000).time_us(&spec);
        assert!((rd - wr).abs() < 1e-12);
        let both = DramTraffic::streaming(1000, 1000).time_us(&spec);
        assert!((both - rd - wr).abs() < 1e-12);
    }

    #[test]
    fn l2_hits_reduce_dram_time() {
        let spec = Gpu::Rtx4090.spec();
        let cold = DramTraffic::streaming(1 << 20, 0);
        let warm = cold.with_l2_hits(0.5);
        assert!((warm.time_us(&spec) - cold.time_us(&spec) / 2.0).abs() < 1e-9);
    }

    #[test]
    fn poor_efficiency_slows_transfer() {
        let spec = Gpu::L40s.spec();
        let good = DramTraffic::streaming(1 << 20, 0);
        let bad = good.with_efficiency(0.437); // DietGPU's measured efficiency
        assert!((bad.time_us(&spec) / good.time_us(&spec) - 1.0 / 0.437).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "efficiency must be in (0,1]")]
    fn zero_efficiency_rejected() {
        let _ = DramTraffic::streaming(1, 0).with_efficiency(0.0);
    }

    #[test]
    fn conflict_free_smem() {
        let t = SharedMemTraffic::conflict_free(1000);
        assert_eq!(t.conflict_count(), 0.0);
        assert_eq!(t.serialized_transactions(), 1000.0);
    }

    #[test]
    fn conflicts_serialize() {
        let t = SharedMemTraffic::with_conflicts(1000, 4.0);
        assert_eq!(t.serialized_transactions(), 4000.0);
        assert_eq!(t.conflict_count(), 3000.0);
        let spec = Gpu::Rtx4090.spec();
        let free = SharedMemTraffic::conflict_free(1000);
        assert!((t.time_us(&spec) / free.time_us(&spec) - 4.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "degree in [1,32]")]
    fn conflict_degree_bounds() {
        let _ = SharedMemTraffic::with_conflicts(10, 0.5);
    }
}

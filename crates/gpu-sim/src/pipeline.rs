//! Multi-stage double-buffered software pipelines (§4.3.3, Figure 10).
//!
//! ZipGEMM hides decompression behind computation with a two-level pipeline:
//! tile-wise double buffering overlaps global→shared transfers with compute,
//! and slice-wise interleaving overlaps shared→register movement plus decode
//! with Tensor-Core `mma`. In steady state a perfectly balanced pipeline
//! runs at the speed of its slowest stage; this module models that plus the
//! fill/drain overhead and an overlap-efficiency knob for barrier costs.

/// One pipeline stage: a name and its per-iteration latency.
#[derive(Debug, Clone, PartialEq)]
pub struct Stage {
    /// Human-readable stage label ("load", "decode", "mma", …).
    pub name: &'static str,
    /// Time per iteration in microseconds.
    pub time_us: f64,
}

impl Stage {
    /// Creates a stage.
    ///
    /// # Panics
    ///
    /// Panics if `time_us` is negative or non-finite.
    pub fn new(name: &'static str, time_us: f64) -> Self {
        assert!(
            time_us >= 0.0 && time_us.is_finite(),
            "stage time must be >= 0"
        );
        Stage { name, time_us }
    }
}

/// A software pipeline over `iterations` loop bodies.
#[derive(Debug, Clone, PartialEq)]
pub struct Pipeline {
    stages: Vec<Stage>,
    iterations: u64,
    overlap_efficiency: f64,
}

impl Pipeline {
    /// Creates a pipeline with ideal overlap.
    ///
    /// # Panics
    ///
    /// Panics if `stages` is empty.
    pub fn new(stages: Vec<Stage>, iterations: u64) -> Self {
        assert!(!stages.is_empty(), "pipeline needs at least one stage");
        Pipeline {
            stages,
            iterations,
            overlap_efficiency: 1.0,
        }
    }

    /// Derates the overlap (barriers, issue contention): the steady-state
    /// iteration time becomes `bottleneck / efficiency`.
    ///
    /// # Panics
    ///
    /// Panics if `eff` is not in `(0, 1]`.
    pub fn with_overlap_efficiency(mut self, eff: f64) -> Self {
        assert!(eff > 0.0 && eff <= 1.0, "efficiency in (0,1]");
        self.overlap_efficiency = eff;
        self
    }

    /// The slowest stage's per-iteration time.
    pub fn bottleneck_us(&self) -> f64 {
        self.stages.iter().map(|s| s.time_us).fold(0.0, f64::max)
    }

    /// The bottleneck stage's name.
    pub fn bottleneck_stage(&self) -> &'static str {
        self.stages
            .iter()
            .max_by(|a, b| a.time_us.partial_cmp(&b.time_us).expect("finite"))
            .expect("non-empty")
            .name
    }

    /// Total pipelined execution time: fill (all stages once) + steady state
    /// (`iterations - 1` bottleneck periods), derated by overlap efficiency.
    pub fn total_us(&self) -> f64 {
        if self.iterations == 0 {
            return 0.0;
        }
        let fill: f64 = self.stages.iter().map(|s| s.time_us).sum();
        let steady = self.bottleneck_us() / self.overlap_efficiency;
        fill + steady * (self.iterations - 1) as f64
    }

    /// Time if the stages ran back-to-back with no overlap at all — the
    /// decoupled-pipeline upper bound.
    pub fn serial_us(&self) -> f64 {
        let per_iter: f64 = self.stages.iter().map(|s| s.time_us).sum();
        per_iter * self.iterations as f64
    }

    /// Fraction of the serial time hidden by pipelining.
    pub fn overlap_gain(&self) -> f64 {
        let serial = self.serial_us();
        if serial == 0.0 {
            return 0.0;
        }
        1.0 - self.total_us() / serial
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn three_stage(iter: u64) -> Pipeline {
        Pipeline::new(
            vec![
                Stage::new("load", 2.0),
                Stage::new("decode", 1.0),
                Stage::new("mma", 3.0),
            ],
            iter,
        )
    }

    #[test]
    fn bottleneck_identified() {
        let p = three_stage(10);
        assert_eq!(p.bottleneck_us(), 3.0);
        assert_eq!(p.bottleneck_stage(), "mma");
    }

    #[test]
    fn steady_state_at_bottleneck_rate() {
        let p = three_stage(100);
        // fill 6 + 99 * 3 = 303.
        assert!((p.total_us() - 303.0).abs() < 1e-12);
        // Serial would be 600.
        assert!((p.serial_us() - 600.0).abs() < 1e-12);
        assert!(p.overlap_gain() > 0.49);
    }

    #[test]
    fn single_iteration_has_no_overlap() {
        let p = three_stage(1);
        assert!((p.total_us() - 6.0).abs() < 1e-12);
        assert_eq!(p.overlap_gain(), 0.0);
    }

    #[test]
    fn zero_iterations_cost_nothing() {
        assert_eq!(three_stage(0).total_us(), 0.0);
    }

    #[test]
    fn overlap_derating() {
        let ideal = three_stage(100);
        let derated = three_stage(100).with_overlap_efficiency(0.75);
        // Steady-state periods inflate by 1/0.75.
        let expect = 6.0 + 99.0 * 3.0 / 0.75;
        assert!((derated.total_us() - expect).abs() < 1e-9);
        assert!(derated.total_us() > ideal.total_us());
    }

    #[test]
    fn pipeline_never_beats_bottleneck_bound() {
        let p = three_stage(1000);
        assert!(p.total_us() >= 1000.0 * 3.0);
    }

    #[test]
    fn decode_hidden_when_not_bottleneck() {
        // The ZipGEMM claim: decode (ALU) time is hidden as long as it is
        // shorter than the mma stage.
        let without_decode =
            Pipeline::new(vec![Stage::new("load", 2.0), Stage::new("mma", 3.0)], 100);
        let with_decode = three_stage(100);
        assert!((with_decode.total_us() - without_decode.total_us() - 1.0).abs() < 1e-9);
        // Only the fill differs (one extra stage), not the steady state.
    }

    #[test]
    #[should_panic(expected = "at least one stage")]
    fn empty_pipeline_panics() {
        let _ = Pipeline::new(vec![], 1);
    }
}

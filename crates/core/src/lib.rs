//! ZipServ's contribution: the **Tensor-Core-Aware Triple Bitmap Encoding**
//! (TCA-TBE) lossless weight format, its offline compressor, the
//! thread-local decompressor, and the fused **ZipGEMM** kernel.
//!
//! TCA-TBE is a *fixed-length* lossless format for BF16 weights. Offline
//! (Algorithm 1), the compressor finds the best window of 7 numerically
//! consecutive exponents, records `BaseExp = min(window) − 1`, and encodes
//! every 8×8 tile as:
//!
//! * three 64-bit **bit-plane bitmaps** holding a 3-bit codeword per element
//!   (`001`–`111` = exponent `BaseExp + code`; `000` = fallback);
//! * a **PackedSignMantissa** buffer (8 bits) for in-window elements;
//! * a **FullValue** buffer (16 bits) for fallback elements.
//!
//! Online (Algorithm 2), each simulated GPU lane reconstructs its two
//! Tensor-Core fragment elements with a handful of bitwise operations:
//! indicator mask = `B1 | B2 | B3`, popcount prefix addressing, and implicit
//! base-plus-code exponent lookup — no variable-length bitstream, no
//! divergence.
//!
//! # Quickstart
//!
//! ```
//! use zipserv_bf16::gen::WeightGen;
//! use zipserv_core::TbeCompressor;
//!
//! let weights = WeightGen::new(0.02).seed(1).matrix(64, 128);
//! let compressed = TbeCompressor::new().compress(&weights)?;
//! assert_eq!(compressed.decompress(), weights);       // bit-exact
//! assert!(compressed.stats().ratio() > 1.2);          // and smaller
//! # Ok::<(), zipserv_core::TbeError>(())
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod ablation;
pub mod codeword;
pub mod compress;
pub mod decomp_kernel;
pub mod decompress;
mod error;
pub mod format;
pub mod kv;
pub mod strategy;
pub mod zipgemm;

pub use compress::TbeCompressor;
pub use error::TbeError;
pub use format::layout::TbeMatrix;
pub use zipgemm::ZipGemm;

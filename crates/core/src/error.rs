//! Error type for the TCA-TBE pipeline.

use core::fmt;

/// Errors produced by TCA-TBE compression and decompression.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TbeError {
    /// The matrix dimensions are not multiples of the 8×8 FragTile.
    NotTileable {
        /// Offending row count.
        rows: usize,
        /// Offending column count.
        cols: usize,
    },
    /// The matrix contains no elements.
    Empty,
    /// A serialized representation was internally inconsistent.
    Corrupt(&'static str),
}

impl fmt::Display for TbeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TbeError::NotTileable { rows, cols } => write!(
                f,
                "matrix {rows}x{cols} is not a multiple of the 8x8 FragTile"
            ),
            TbeError::Empty => write!(f, "matrix contains no elements"),
            TbeError::Corrupt(what) => write!(f, "corrupt TCA-TBE data: {what}"),
        }
    }
}

impl std::error::Error for TbeError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        let e = TbeError::NotTileable { rows: 9, cols: 16 };
        assert!(e.to_string().contains("9x16"));
        assert!(TbeError::Empty.to_string().contains("no elements"));
        assert!(TbeError::Corrupt("bad offsets")
            .to_string()
            .contains("bad offsets"));
    }
}

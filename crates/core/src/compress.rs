//! The offline TCA-TBE compressor (Algorithm 1).
//!
//! Phase I profiles the global exponent histogram and selects the coverage-
//! maximizing window of 7 numerically consecutive exponents, recording
//! `BaseExp = min(window) − 1`. Phase II encodes every 8×8 tile into the
//! triple-bitmap representation. Tile encoding is embarrassingly parallel;
//! the compressor shards BlockTiles across worker threads (the paper
//! compresses LLaMA-3.1-8B in ~2.5 minutes on 16 cores).

use crate::error::TbeError;
use crate::format::layout::{block_sequence, TbeMatrix};
use crate::format::tile::EncodedTile;
use crate::format::WINDOW;
use zipserv_bf16::stats::ExponentHistogram;
use zipserv_bf16::{Bf16, Matrix};

/// The offline compressor.
///
/// # Example
///
/// ```
/// use zipserv_bf16::gen::WeightGen;
/// use zipserv_core::TbeCompressor;
///
/// let w = WeightGen::new(0.02).seed(3).matrix(64, 64);
/// let tbe = TbeCompressor::new().compress(&w)?;
/// assert_eq!(tbe.decompress(), w);
/// # Ok::<(), zipserv_core::TbeError>(())
/// ```
#[derive(Debug, Clone)]
pub struct TbeCompressor {
    threads: usize,
}

impl Default for TbeCompressor {
    fn default() -> Self {
        Self::new()
    }
}

impl TbeCompressor {
    /// A compressor using all available parallelism.
    pub fn new() -> Self {
        TbeCompressor {
            threads: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1),
        }
    }

    /// Restricts the worker-thread count (builder style).
    ///
    /// # Panics
    ///
    /// Panics if `threads == 0`.
    pub fn with_threads(mut self, threads: usize) -> Self {
        assert!(threads > 0, "need at least one thread");
        self.threads = threads;
        self
    }

    /// Selects the base exponent for a matrix: the best contiguous 7-window
    /// of the global histogram, clamped so that codeword 0 stays reserved
    /// (windows starting at exponent 0 are shifted up by one).
    pub fn select_base_exp(histogram: &ExponentHistogram) -> u8 {
        let w = histogram.best_contiguous_window(WINDOW);
        if w.start == 0 {
            // Exponent 0 (zero/subnormal) cannot be in the window because
            // `c = e - base` must be >= 1; shift the window to [1, 7].
            0
        } else {
            w.start - 1
        }
    }

    /// Compresses a BF16 matrix into the TCA-TBE format (Algorithm 1).
    ///
    /// # Errors
    ///
    /// Returns [`TbeError::Empty`] for an empty matrix and
    /// [`TbeError::NotTileable`] when the dimensions are not multiples of 8.
    pub fn compress(&self, matrix: &Matrix<Bf16>) -> Result<TbeMatrix, TbeError> {
        if matrix.is_empty() {
            return Err(TbeError::Empty);
        }
        if !matrix.is_tileable() {
            return Err(TbeError::NotTileable {
                rows: matrix.rows(),
                cols: matrix.cols(),
            });
        }

        // Phase I: global exponent analysis.
        let histogram = ExponentHistogram::from_matrix(matrix);
        let base_exp = Self::select_base_exp(&histogram);

        // Phase II: tile encoding, sharded over BlockTiles.
        let blocks = block_sequence(matrix.rows(), matrix.cols());
        let encoded = self.encode_blocks(matrix, base_exp, &blocks);

        Ok(TbeMatrix::assemble(
            matrix.rows(),
            matrix.cols(),
            base_exp,
            &encoded,
        ))
    }

    fn encode_blocks(
        &self,
        matrix: &Matrix<Bf16>,
        base_exp: u8,
        blocks: &[Vec<(usize, usize)>],
    ) -> Vec<Vec<EncodedTile>> {
        let encode_one = |tiles: &[(usize, usize)]| -> Vec<EncodedTile> {
            tiles
                .iter()
                .map(|&(tr, tc)| EncodedTile::encode(&matrix.tile(tr, tc), base_exp))
                .collect()
        };

        let workers = self.threads.min(blocks.len()).max(1);
        if workers == 1 {
            return blocks.iter().map(|b| encode_one(b)).collect();
        }

        // Shard blocks across scoped worker threads, preserving order.
        let chunk = blocks.len().div_ceil(workers);
        let mut out: Vec<Vec<Vec<EncodedTile>>> = Vec::new();
        crossbeam::scope(|scope| {
            let handles: Vec<_> = blocks
                .chunks(chunk)
                .map(|shard| {
                    scope.spawn(move |_| shard.iter().map(|b| encode_one(b)).collect::<Vec<_>>())
                })
                .collect();
            for h in handles {
                out.push(h.join().expect("compressor worker panicked"));
            }
        })
        .expect("compressor scope panicked");
        out.into_iter().flatten().collect()
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use zipserv_bf16::gen::WeightGen;

    #[test]
    fn roundtrip_gaussian() {
        let w = WeightGen::new(0.02).seed(1).matrix(128, 192);
        let tbe = TbeCompressor::new().compress(&w).unwrap();
        assert_eq!(tbe.decompress(), w);
    }

    #[test]
    fn roundtrip_single_threaded_equals_parallel() {
        let w = WeightGen::new(0.015).seed(2).matrix(256, 128);
        let seq = TbeCompressor::new().with_threads(1).compress(&w).unwrap();
        let par = TbeCompressor::new().with_threads(8).compress(&w).unwrap();
        assert_eq!(seq, par);
    }

    #[test]
    fn compression_ratio_in_paper_band() {
        // §6.5: compressed size 71–72.4% of raw for the evaluated models.
        let w = WeightGen::new(0.018).seed(3).matrix(512, 512);
        let tbe = TbeCompressor::new().compress(&w).unwrap();
        let pct = tbe.stats().size_percent();
        assert!(pct > 68.0 && pct < 75.0, "size {pct}%");
        // ~11.3 bits/element (§4.2's AverageBits analysis).
        let bits = tbe.stats().bits_per_element();
        assert!(bits > 10.8 && bits < 12.0, "bits {bits}");
    }

    #[test]
    fn coverage_in_paper_band() {
        let w = WeightGen::new(0.0125).seed(4).matrix(256, 256);
        let tbe = TbeCompressor::new().compress(&w).unwrap();
        let cov = tbe.stats().coverage();
        assert!(cov > 0.94, "coverage {cov}");
    }

    #[test]
    fn rejects_untileable() {
        let w = WeightGen::new(0.02).matrix(9, 16);
        assert!(matches!(
            TbeCompressor::new().compress(&w),
            Err(TbeError::NotTileable { rows: 9, cols: 16 })
        ));
    }

    #[test]
    fn rejects_empty() {
        let w = Matrix::<Bf16>::zeros(0, 0);
        assert_eq!(TbeCompressor::new().compress(&w), Err(TbeError::Empty));
    }

    #[test]
    fn all_zero_matrix_roundtrips() {
        // Exponent 0 everywhere: the window is forced off zero, so every
        // element takes the fallback path — lossless but incompressible.
        let w = Matrix::<Bf16>::zeros(64, 64);
        let tbe = TbeCompressor::new().compress(&w).unwrap();
        assert_eq!(tbe.decompress(), w);
        assert_eq!(tbe.stats().high_freq_elems, 0);
    }

    #[test]
    fn adversarial_bit_patterns_roundtrip() {
        // Cycle through every 16-bit pattern, including NaNs and infinities.
        let w = Matrix::from_fn(64, 128, |r, c| {
            Bf16::from_bits(((r * 128 + c) * 9 % 65536) as u16)
        });
        let tbe = TbeCompressor::new().compress(&w).unwrap();
        let out = tbe.decompress();
        for r in 0..64 {
            for c in 0..128 {
                assert_eq!(w[(r, c)].to_bits(), out[(r, c)].to_bits(), "({r},{c})");
            }
        }
    }

    #[test]
    fn base_exp_matches_window_minus_one() {
        let w = WeightGen::new(0.02).seed(7).matrix(64, 64);
        let hist = ExponentHistogram::from_matrix(&w);
        let window = hist.best_contiguous_window(7);
        let tbe = TbeCompressor::new().compress(&w).unwrap();
        assert_eq!(tbe.base_exp(), window.start - 1);
    }

    #[test]
    fn outlier_heavy_weights_still_roundtrip() {
        let w = WeightGen::new(0.02)
            .seed(9)
            .outliers(0.2, 64.0)
            .matrix(128, 128);
        let tbe = TbeCompressor::new().compress(&w).unwrap();
        assert_eq!(tbe.decompress(), w);
        // Heavy outliers push coverage down and the size up.
        assert!(tbe.stats().coverage() < 0.95);
    }
}

//! The thread-local decompressor (Algorithm 2) and its batched variants.
//!
//! Three decoders share one bit-exact contract:
//!
//! * [`decode_tile_lanewise`] reproduces the GPU decode semantics exactly:
//!   32 simulated lanes each reconstruct the two elements of their
//!   Tensor-Core fragment slot using (1) the spatial indicator `B1|B2|B3`,
//!   (2) popcount dynamic addressing, and (3) implicit base-plus-code
//!   exponent lookup. It is the bit-exactness reference.
//! * [`decode_tile_lut`] is the table-driven hot path: the precomputed
//!   [`SPREAD`] lookup table turns the per-element plane extraction into
//!   branch-free table reads over 8-bit indicator windows (the pLUTo
//!   LUT-for-logic transform applied on CPU), and an ascending bit-scan
//!   scatter replaces per-element popcount addressing.
//! * [`decode_tile_simd`] is a plane-sliced variant that decodes all 64
//!   elements in whole-array passes (code spread, prefix addressing,
//!   exponent add, gather/select) so the compiler can autovectorize each
//!   pass independently.
//!
//! **Exponent contract:** the reconstructed exponent is
//! `base_exp.saturating_add(c)`. Valid encodings can never exceed 255
//! (the codeword is defined as `c = e − base_exp`, so `base + c` is the
//! original exponent), which means saturation only triggers on corrupt or
//! hand-crafted bitmaps — and then it pins the exponent at 255 (an
//! Inf/NaN-range BF16) instead of silently wrapping into a tiny exponent
//! that decodes to a plausible-looking wrong value. All three paths apply
//! the identical rule.
//!
//! [`decompress`] applies the LUT path across the whole matrix. A per-tile
//! [`DecodeCost`] records the instruction mix the GPU model prices, one
//! mix per [`DecodePath`].

use crate::format::fragment::{fallback_index, high_freq_index, lane_positions, LANES};
use crate::format::layout::{block_sequence, TbeMatrix, TileView};
use crate::format::FRAG_ELEMS;
use zipserv_bf16::{Bf16, Matrix};

/// Windows per FragTile: the 64-bit indicator is consumed as 8 bytes.
const WINDOWS: usize = 8;

const fn build_spread() -> [u64; 256] {
    let mut table = [0u64; 256];
    let mut byte = 0usize;
    while byte < 256 {
        let mut spread = 0u64;
        let mut bit = 0;
        while bit < 8 {
            spread |= (((byte >> bit) & 1) as u64) << (8 * bit);
            bit += 1;
        }
        table[byte] = spread;
        byte += 1;
    }
    table
}

const fn build_prefix() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut byte = 0usize;
    while byte < 256 {
        let mut packed = 0u32;
        let mut bit = 0;
        while bit < 8 {
            let below = (byte & ((1usize << bit) - 1)).count_ones();
            packed |= below << (4 * bit);
            bit += 1;
        }
        table[byte] = packed;
        byte += 1;
    }
    table
}

/// Bit-spread table: bit `j` of the index byte lands in bit `8*j` (the low
/// bit of byte `j`) of the result. ORing three shifted spreads reconstructs
/// all eight 3-bit codewords of one indicator window in three table reads.
pub static SPREAD: [u64; 256] = build_spread();

/// Packed prefix-popcount table: nibble `j` of `PREFIX[b]` is the popcount
/// of the low `j` bits of `b` — the within-window half of popcount dynamic
/// addressing, as a single table read instead of eight masked popcounts.
pub static PREFIX: [u32; 256] = build_prefix();

/// Decodes one FragTile exactly as a warp would: lane by lane, register
/// pair by register pair.
///
/// Returns the 64 elements in row-major tile order. This is the
/// bit-exactness reference for [`decode_tile_lut`] and
/// [`decode_tile_simd`].
pub fn decode_tile_lanewise(view: TileView<'_>, base_exp: u8) -> [Bf16; FRAG_ELEMS] {
    // Step 1: spatial indicator construction (one warp-wide OR).
    let indicator = view.bitmaps[0] | view.bitmaps[1] | view.bitmaps[2];

    let mut out = [Bf16::ZERO; FRAG_ELEMS];
    for lane in 0..LANES {
        let (p0, p1) = lane_positions(lane);
        for p in [p0, p1] {
            // Step 2: parallel element decompression.
            if (indicator >> p) & 1 == 1 {
                // Case A: high-frequency path.
                let idx = high_freq_index(indicator, p);
                let packed = view.high_freq[idx];
                // Reconstruct the 3-bit code from the bit planes.
                let c = (((view.bitmaps[0] >> p) & 1)
                    | (((view.bitmaps[1] >> p) & 1) << 1)
                    | (((view.bitmaps[2] >> p) & 1) << 2)) as u8;
                // Implicit lookup: exponent = base + code (saturating; see
                // the module-level exponent contract).
                let e = base_exp.saturating_add(c);
                out[p] = Bf16::from_packed(packed, e);
            } else {
                // Case B: fallback path.
                let idx = fallback_index(indicator, p);
                out[p] = Bf16::from_bits(view.fallback[idx]);
            }
        }
    }
    out
}

/// All-fallback fast path (`indicator == 0`): the tile is a straight copy
/// of 64 full-precision values.
#[inline]
fn decode_all_fallback(view: TileView<'_>) -> [Bf16; FRAG_ELEMS] {
    let mut out = [Bf16::ZERO; FRAG_ELEMS];
    for (slot, &bits) in out.iter_mut().zip(view.fallback.iter()) {
        *slot = Bf16::from_bits(bits);
    }
    out
}

/// All-high-frequency fast path (`indicator == u64::MAX`): every element
/// sits at its own position in `high_freq`, so addressing is the identity.
#[inline]
fn decode_all_high_freq(view: TileView<'_>, base_exp: u8) -> [Bf16; FRAG_ELEMS] {
    let [b0, b1, b2] = *view.bitmaps;
    let mut out = [Bf16::ZERO; FRAG_ELEMS];
    for w in 0..WINDOWS {
        let codes = (SPREAD[(b0 >> (8 * w)) as u8 as usize]
            | (SPREAD[(b1 >> (8 * w)) as u8 as usize] << 1)
            | (SPREAD[(b2 >> (8 * w)) as u8 as usize] << 2))
            .to_le_bytes();
        for (j, &c) in codes.iter().enumerate() {
            let p = 8 * w + j;
            out[p] = Bf16::from_packed(view.high_freq[p], base_exp.saturating_add(c));
        }
    }
    out
}

/// Table-driven FragTile decode: the hot path selected by the blocked
/// ZipGEMM and [`decompress`].
///
/// Per 8-bit indicator window, three [`SPREAD`] reads reconstruct all eight
/// 3-bit codewords at once — the plane extraction becomes three table reads
/// instead of three shift/mask/merge chains per element. Addressing then
/// exploits that both value buffers are stored in ascending position
/// order: walking the set (resp. clear) indicator bits in ascending order
/// *is* the popcount-prefix order, so a bit-scan scatter consumes each
/// buffer sequentially with no per-element popcount, no index clamping and
/// no data-dependent branch (each loop's trip count is a buffer length).
/// Bitwise identical to [`decode_tile_lanewise`] for every valid tile view.
///
/// # Panics
///
/// Panics (like the lanewise path) if a value buffer is shorter than the
/// indicator's population count demands.
pub fn decode_tile_lut(view: TileView<'_>, base_exp: u8) -> [Bf16; FRAG_ELEMS] {
    let [b0, b1, b2] = *view.bitmaps;
    let indicator = b0 | b1 | b2;

    // Degenerate tiles skip dynamic addressing entirely.
    if indicator == 0 {
        return decode_all_fallback(view);
    }
    if indicator == u64::MAX {
        return decode_all_high_freq(view, base_exp);
    }

    // Pass 1: spread the three bit planes into one code byte per element
    // (three SPREAD reads per 8-element window).
    let mut codes = [0u8; FRAG_ELEMS];
    for w in 0..WINDOWS {
        let spread = SPREAD[(b0 >> (8 * w)) as u8 as usize]
            | (SPREAD[(b1 >> (8 * w)) as u8 as usize] << 1)
            | (SPREAD[(b2 >> (8 * w)) as u8 as usize] << 2);
        codes[8 * w..8 * w + 8].copy_from_slice(&spread.to_le_bytes());
    }

    // Pass 2+3: scatter both buffers along their bit masks. Slicing up
    // front hoists the bounds checks out of the loops (and still panics on
    // corrupt undersized buffers, matching the lanewise path).
    let n_hf = indicator.count_ones() as usize;
    let hf = &view.high_freq[..n_hf];
    let fb = &view.fallback[..FRAG_ELEMS - n_hf];
    let mut out = [Bf16::ZERO; FRAG_ELEMS];
    let mut zeros = !indicator;
    for &bits in fb {
        let p = zeros.trailing_zeros() as usize & 63;
        out[p] = Bf16::from_bits(bits);
        zeros &= zeros - 1;
    }
    let mut ones = indicator;
    for &packed in hf {
        let p = ones.trailing_zeros() as usize & 63;
        out[p] = Bf16::from_packed(packed, base_exp.saturating_add(codes[p]));
        ones &= ones - 1;
    }
    out
}

/// Plane-sliced FragTile decode: all 64 elements in SIMD-friendly passes.
///
/// Instead of finishing each element before starting the next, four
/// whole-tile passes each touch every element once — (1) bitmask spread of
/// the three planes into a byte-per-element code array, (2) popcount-prefix
/// addressing for all positions, (3) the saturating exponent add, and
/// (4) the dual gather + select. Each pass is a straight-line loop over
/// fixed 64-element arrays, the layout autovectorizers want. Bitwise
/// identical to [`decode_tile_lanewise`] for every valid tile view.
pub fn decode_tile_simd(view: TileView<'_>, base_exp: u8) -> [Bf16; FRAG_ELEMS] {
    let [b0, b1, b2] = *view.bitmaps;
    let indicator = b0 | b1 | b2;
    if indicator == 0 {
        return decode_all_fallback(view);
    }
    if indicator == u64::MAX {
        return decode_all_high_freq(view, base_exp);
    }

    // Pass 1: spread the three bit planes into one code byte per element.
    let mut codes = [0u8; FRAG_ELEMS];
    for w in 0..WINDOWS {
        let spread = SPREAD[(b0 >> (8 * w)) as u8 as usize]
            | (SPREAD[(b1 >> (8 * w)) as u8 as usize] << 1)
            | (SPREAD[(b2 >> (8 * w)) as u8 as usize] << 2);
        codes[8 * w..8 * w + 8].copy_from_slice(&spread.to_le_bytes());
    }

    // Pass 2: popcount-prefix addressing for every position.
    let mut hf_idx = [0u8; FRAG_ELEMS];
    let mut running = 0u32;
    for w in 0..WINDOWS {
        let ind8 = (indicator >> (8 * w)) as u8;
        let prefix = PREFIX[ind8 as usize];
        for j in 0..8 {
            hf_idx[8 * w + j] = (running + ((prefix >> (4 * j)) & 0xF)) as u8;
        }
        running += ind8.count_ones();
    }

    // Pass 3: implicit exponent lookup (saturating add, branch-free).
    let mut exps = [0u8; FRAG_ELEMS];
    for (e, &c) in exps.iter_mut().zip(codes.iter()) {
        *e = base_exp.saturating_add(c);
    }

    // Pass 4: dual gather + select (mixed tile: both buffers non-empty).
    let hf_last = view.high_freq.len() - 1;
    let fb_last = view.fallback.len() - 1;
    let mut out = [Bf16::ZERO; FRAG_ELEMS];
    for p in 0..FRAG_ELEMS {
        let hf = (hf_idx[p] as usize).min(hf_last);
        let fb = (p - hf_idx[p] as usize).min(fb_last);
        let hf_val = Bf16::from_packed(view.high_freq[hf], exps[p]);
        let fb_val = Bf16::from_bits(view.fallback[fb]);
        out[p] = if codes[p] != 0 { hf_val } else { fb_val };
    }
    out
}

/// Decompresses a whole [`TbeMatrix`] bit-exactly (LUT hot path).
pub fn decompress(tbe: &TbeMatrix) -> Matrix<Bf16> {
    let mut out = Matrix::zeros(tbe.rows(), tbe.cols());
    let blocks = block_sequence(tbe.rows(), tbe.cols());
    let mut seq = 0usize;
    for block in &blocks {
        for &(tr, tc) in block {
            let tile = decode_tile_lut(tbe.tile_view(seq), tbe.base_exp());
            out.set_tile(tr, tc, &tile);
            seq += 1;
        }
    }
    out
}

/// Which decoder implementation a GPU kernel profile prices.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum DecodePath {
    /// The branchy per-lane Algorithm-2 decode (bit-exactness reference).
    #[default]
    Lanewise,
    /// The table-driven window decode ([`SPREAD`]/[`PREFIX`] reads replace
    /// per-element popcount and plane-extract logic).
    Lut,
}

/// Per-element instruction cost of a decode path, used to build GPU kernel
/// profiles (Figure 12's LOP3/IADD/POPC workload).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DecodeCost {
    /// Three-input logic ops per element (plane extract + BF16 assembly).
    pub lop3: u64,
    /// Integer adds per element (mask build + implicit lookup + indexing).
    pub iadd: u64,
    /// Population counts per element (dynamic addressing).
    pub popc: u64,
    /// Shifts per element (bit extraction).
    pub shift: u64,
    /// Selects per element (path predicate).
    pub sel: u64,
    /// Shared-memory transactions per FragTile (bitmaps + value slices,
    /// plus lookup-table reads on the LUT path).
    pub lds_per_tile: u64,
}

impl DecodeCost {
    /// The calibrated per-element cost of the lanewise TCA-TBE decompressor.
    ///
    /// Counts follow Algorithm 2 directly: one popcount for addressing, two
    /// shifts + two LOP3 to gather the codeword bits, one LOP3 to merge
    /// sign/mantissa/exponent, two IADD for the mask and implicit lookup,
    /// one select for the A/B path.
    pub const TCA_TBE: DecodeCost = DecodeCost {
        lop3: 3,
        iadd: 2,
        popc: 1,
        shift: 2,
        sel: 1,
        lds_per_tile: 5,
    };

    /// The per-element cost of the table-driven decode path.
    ///
    /// The SPREAD/PREFIX tables absorb the popcount and the plane-extract
    /// LOP3/shift pairs: what remains per element is one LOP3 (BF16
    /// assembly), two IADD (index base + implicit lookup), one shift
    /// (nibble extract) and the path select — 5 scalar ops instead of 9.
    /// The tables are not free: 4 table reads per 8-element window add 32
    /// shared-memory transactions per tile on top of the baseline 5.
    pub const TCA_TBE_LUT: DecodeCost = DecodeCost {
        lop3: 1,
        iadd: 2,
        popc: 0,
        shift: 1,
        sel: 1,
        lds_per_tile: 37,
    };

    /// The calibrated cost for a [`DecodePath`].
    pub const fn for_path(path: DecodePath) -> DecodeCost {
        match path {
            DecodePath::Lanewise => DecodeCost::TCA_TBE,
            DecodePath::Lut => DecodeCost::TCA_TBE_LUT,
        }
    }

    /// Total priced scalar ops per element (excluding shared-memory).
    pub fn ops_per_element(&self) -> u64 {
        self.lop3 + self.iadd + self.popc + self.shift + self.sel
    }

    /// Tile decodes one pass over `tiles` FragTiles performs.
    ///
    /// With per-tile decode caching (`cached == true`, the blocked ZipGEMM)
    /// each FragTile is decoded exactly **once per pass**, no matter how
    /// many of the `n_blocks` output `N`-blocks consume it. Without caching
    /// every consuming block re-decodes the tile — the per-*use* accounting
    /// the cost model used to assume implicitly. The count is a property of
    /// the caching discipline, not of the [`DecodePath`]: both paths decode
    /// the same tiles the same number of times.
    pub fn tile_decodes(tiles: u64, n_blocks: u64, cached: bool) -> u64 {
        if cached {
            tiles
        } else {
            tiles * n_blocks.max(1)
        }
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use crate::compress::TbeCompressor;
    use crate::format::tile::EncodedTile;
    use zipserv_bf16::gen::WeightGen;

    fn encode_view(tile: &EncodedTile) -> TileView<'_> {
        TileView {
            bitmaps: &tile.bitmaps,
            high_freq: &tile.high_freq,
            fallback: &tile.fallback,
        }
    }

    fn all_paths(view: TileView<'_>, base: u8) -> [[Bf16; FRAG_ELEMS]; 3] {
        [
            decode_tile_lanewise(view, base),
            decode_tile_lut(view, base),
            decode_tile_simd(view, base),
        ]
    }

    #[test]
    fn lanewise_decode_matches_reference_decode() {
        let weights: [Bf16; 64] = core::array::from_fn(|i| {
            if i % 7 == 0 {
                Bf16::from_f32(1e30)
            } else {
                Bf16::from_f32(0.01 + i as f32 * 0.002)
            }
        });
        let base = Bf16::from_f32(0.02).exponent() - 4;
        let enc = EncodedTile::encode(&weights, base);
        let lanewise = decode_tile_lanewise(encode_view(&enc), base);
        let reference = enc.decode(base);
        assert_eq!(lanewise, reference);
        assert_eq!(lanewise, weights);
    }

    #[test]
    fn lut_and_simd_match_lanewise_on_mixed_tile() {
        let weights: [Bf16; 64] = core::array::from_fn(|i| {
            if i % 7 == 0 {
                Bf16::from_f32(1e30)
            } else {
                Bf16::from_f32(0.01 + i as f32 * 0.002)
            }
        });
        let base = Bf16::from_f32(0.02).exponent() - 4;
        let enc = EncodedTile::encode(&weights, base);
        let [lanewise, lut, simd] = all_paths(encode_view(&enc), base);
        assert_eq!(lanewise, lut);
        assert_eq!(lanewise, simd);
        assert_eq!(lut, weights);
    }

    #[test]
    fn spread_and_prefix_tables_are_consistent() {
        for b in [0usize, 1, 0x55, 0x80, 0xFF, 0xA3] {
            let spread = SPREAD[b];
            for j in 0..8 {
                assert_eq!((spread >> (8 * j)) & 0xFF, ((b >> j) & 1) as u64);
                let expect = (b & ((1usize << j) - 1)).count_ones();
                assert_eq!((PREFIX[b] >> (4 * j)) & 0xF, expect, "b={b:#x} j={j}");
            }
        }
    }

    #[test]
    fn paper_worked_example_thread_19() {
        // §4.3.2: thread 19's a0 is position 38. Build a tile where position
        // 38 carries codeword 101 (5) with base exponent 115 -> exponent 120.
        let mut weights = [Bf16::from_bits(0); 64];
        for (i, w) in weights.iter_mut().enumerate() {
            *w = if i == 38 {
                Bf16::from_parts(0, 120, 0x55)
            } else {
                Bf16::from_bits(0x0042) // exponent 0 -> fallback
            };
        }
        let enc = EncodedTile::encode(&weights, 115);
        assert_eq!(enc.codeword(38), 0b101);
        for dec in all_paths(encode_view(&enc), 115) {
            assert_eq!(dec[38].exponent(), 120);
            assert_eq!(dec, weights);
        }
    }

    #[test]
    fn exponent_saturates_instead_of_wrapping() {
        // Crafted bitmaps no valid encoder would emit: base_exp near the
        // top of the u8 range with codewords that push past 255. The
        // contract pins the exponent at 255 (Inf/NaN range) on every path
        // instead of wrapping into a tiny exponent.
        for base in 250u8..=255 {
            // All 64 elements carry codeword 0b101 (= 5).
            let bitmaps = [u64::MAX, 0, u64::MAX];
            let high_freq: Vec<u8> = (0..64).map(|i| i as u8).collect();
            let fallback: Vec<u16> = Vec::new();
            let view = TileView {
                bitmaps: &bitmaps,
                high_freq: &high_freq,
                fallback: &fallback,
            };
            let expect_exp = base.saturating_add(5);
            let [lanewise, lut, simd] = all_paths(view, base);
            assert_eq!(lanewise, lut, "base={base}");
            assert_eq!(lanewise, simd, "base={base}");
            for (i, v) in lanewise.iter().enumerate() {
                assert_eq!(v.exponent(), expect_exp, "base={base} elem={i}");
                assert_eq!(
                    *v,
                    Bf16::from_packed(i as u8, expect_exp),
                    "base={base} elem={i}"
                );
            }
            if base >= 251 {
                assert_eq!(expect_exp, 255, "saturated at the top");
            }
        }
    }

    #[test]
    fn reference_decode_shares_the_saturation_contract() {
        // EncodedTile::decode must agree with the lanewise path on crafted
        // overflow tiles, not just on encoder output.
        let enc = EncodedTile {
            bitmaps: [u64::MAX, u64::MAX, u64::MAX], // codeword 7 everywhere
            high_freq: (0..64).map(|i| i as u8).collect(),
            fallback: Vec::new(),
        };
        for base in 250u8..=255 {
            let reference = enc.decode(base);
            let lanewise = decode_tile_lanewise(encode_view(&enc), base);
            assert_eq!(reference, lanewise, "base={base}");
            assert_eq!(reference[0].exponent(), base.saturating_add(7));
        }
    }

    #[test]
    fn degenerate_tiles_hit_fast_paths() {
        // All-fallback (indicator == 0).
        let weights: [Bf16; 64] = core::array::from_fn(|i| Bf16::from_f32(1.0 + i as f32));
        let enc = EncodedTile::encode(&weights, 200);
        assert_eq!(enc.indicator(), 0);
        let [lanewise, lut, simd] = all_paths(encode_view(&enc), 200);
        assert_eq!(lanewise, lut);
        assert_eq!(lanewise, simd);
        assert_eq!(lut, weights);

        // All-high-freq (indicator == all ones).
        let weights: [Bf16; 64] = core::array::from_fn(|i| {
            Bf16::from_parts(
                (i % 2) as u16,
                124 + (i % 7) as u16,
                ((i * 2) & 0x7F) as u16,
            )
        });
        let enc = EncodedTile::encode(&weights, 123);
        assert_eq!(enc.indicator(), u64::MAX);
        let [lanewise, lut, simd] = all_paths(encode_view(&enc), 123);
        assert_eq!(lanewise, lut);
        assert_eq!(lanewise, simd);
        assert_eq!(lut, weights);
    }

    #[test]
    fn single_element_tiles_at_the_corners() {
        // Exactly one high-freq element, at position 0 and at position 63 —
        // the windows an LUT path most easily gets wrong.
        for pos in [0usize, 63] {
            let mut weights = [Bf16::from_f32(1e30); 64]; // fallback filler
            weights[pos] = Bf16::from_parts(0, 125, 0x11);
            let enc = EncodedTile::encode(&weights, 123);
            assert_eq!(enc.high_freq_count(), 1, "pos={pos}");
            let [lanewise, lut, simd] = all_paths(encode_view(&enc), 123);
            assert_eq!(lanewise, lut, "pos={pos}");
            assert_eq!(lanewise, simd, "pos={pos}");
            assert_eq!(lut, weights, "pos={pos}");
        }
    }

    #[test]
    fn full_matrix_decompress_is_bit_exact() {
        let w = WeightGen::new(0.018).seed(21).matrix(192, 320);
        let tbe = TbeCompressor::new().compress(&w).unwrap();
        let out = decompress(&tbe);
        assert_eq!(out, w);
    }

    #[test]
    fn ragged_block_shapes_roundtrip() {
        // Shapes that exercise partial BlockTiles and TensorCoreTiles.
        for (r, c) in [(8, 8), (8, 64), (64, 8), (72, 40), (136, 200)] {
            let w = WeightGen::new(0.02).seed(5).matrix(r, c);
            let tbe = TbeCompressor::new().compress(&w).unwrap();
            assert_eq!(decompress(&tbe), w, "{r}x{c}");
        }
    }

    #[test]
    fn matrix_tiles_agree_across_paths() {
        // Every tile of a real compressed matrix decodes identically on all
        // three paths (exercises padded block-boundary views).
        let w = WeightGen::new(0.018).seed(33).matrix(128, 128);
        let tbe = TbeCompressor::new().compress(&w).unwrap();
        for seq in 0..tbe.tile_count() {
            let view = tbe.tile_view(seq);
            let [lanewise, lut, simd] = all_paths(view, tbe.base_exp());
            assert_eq!(lanewise, lut, "seq={seq}");
            assert_eq!(lanewise, simd, "seq={seq}");
        }
    }

    #[test]
    fn decode_cost_constants() {
        let c = DecodeCost::TCA_TBE;
        assert_eq!(c.ops_per_element(), 9);
        assert!(c.popc == 1 && c.lds_per_tile == 5);
        let l = DecodeCost::TCA_TBE_LUT;
        assert_eq!(l.ops_per_element(), 5);
        assert!(l.popc == 0, "popcount is absorbed by the PREFIX table");
        assert_eq!(l.lds_per_tile, 37, "4 table reads x 8 windows + baseline 5");
        assert_eq!(DecodeCost::for_path(DecodePath::Lanewise), c);
        assert_eq!(DecodeCost::for_path(DecodePath::Lut), l);
        assert_eq!(DecodePath::default(), DecodePath::Lanewise);
    }

    #[test]
    fn cached_decodes_are_per_tile_per_pass() {
        // Cached: one decode per tile regardless of how many N-blocks use it.
        assert_eq!(DecodeCost::tile_decodes(100, 1, true), 100);
        assert_eq!(DecodeCost::tile_decodes(100, 8, true), 100);
        // Uncached: one decode per tile per consuming block.
        assert_eq!(DecodeCost::tile_decodes(100, 8, false), 800);
        // A pass with no consumers still decodes each tile once (pure
        // decompression).
        assert_eq!(DecodeCost::tile_decodes(100, 0, false), 100);
    }
}

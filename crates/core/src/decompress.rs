//! The thread-local decompressor (Algorithm 2).
//!
//! [`decode_tile_lanewise`] reproduces the GPU decode semantics exactly:
//! 32 simulated lanes each reconstruct the two elements of their Tensor-Core
//! fragment slot using (1) the spatial indicator `B1|B2|B3`, (2) popcount
//! dynamic addressing, and (3) implicit base-plus-code exponent lookup.
//! [`decompress`] applies it across the whole matrix. A per-tile
//! [`DecodeCost`] records the instruction mix the GPU model prices.

use crate::format::fragment::{fallback_index, high_freq_index, lane_positions, LANES};
use crate::format::layout::{block_sequence, TbeMatrix, TileView};
use crate::format::FRAG_ELEMS;
use zipserv_bf16::{Bf16, Matrix};

/// Decodes one FragTile exactly as a warp would: lane by lane, register
/// pair by register pair.
///
/// Returns the 64 elements in row-major tile order.
pub fn decode_tile_lanewise(view: TileView<'_>, base_exp: u8) -> [Bf16; FRAG_ELEMS] {
    // Step 1: spatial indicator construction (one warp-wide OR).
    let indicator = view.bitmaps[0] | view.bitmaps[1] | view.bitmaps[2];

    let mut out = [Bf16::ZERO; FRAG_ELEMS];
    for lane in 0..LANES {
        let (p0, p1) = lane_positions(lane);
        for p in [p0, p1] {
            // Step 2: parallel element decompression.
            if (indicator >> p) & 1 == 1 {
                // Case A: high-frequency path.
                let idx = high_freq_index(indicator, p);
                let packed = view.high_freq[idx];
                // Reconstruct the 3-bit code from the bit planes.
                let c = (((view.bitmaps[0] >> p) & 1)
                    | (((view.bitmaps[1] >> p) & 1) << 1)
                    | (((view.bitmaps[2] >> p) & 1) << 2)) as u8;
                // Implicit lookup: exponent = base + code.
                let e = base_exp.wrapping_add(c);
                out[p] = Bf16::from_packed(packed, e);
            } else {
                // Case B: fallback path.
                let idx = fallback_index(indicator, p);
                out[p] = Bf16::from_bits(view.fallback[idx]);
            }
        }
    }
    out
}

/// Decompresses a whole [`TbeMatrix`] bit-exactly.
pub fn decompress(tbe: &TbeMatrix) -> Matrix<Bf16> {
    let mut out = Matrix::zeros(tbe.rows(), tbe.cols());
    let blocks = block_sequence(tbe.rows(), tbe.cols());
    let mut seq = 0usize;
    for block in &blocks {
        for &(tr, tc) in block {
            let tile = decode_tile_lanewise(tbe.tile_view(seq), tbe.base_exp());
            out.set_tile(tr, tc, &tile);
            seq += 1;
        }
    }
    out
}

/// Per-element instruction cost of the Algorithm-2 decode path, used to
/// build GPU kernel profiles (Figure 12's LOP3/IADD/POPC workload).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DecodeCost {
    /// Three-input logic ops per element (plane extract + BF16 assembly).
    pub lop3: u64,
    /// Integer adds per element (mask build + implicit lookup + indexing).
    pub iadd: u64,
    /// Population counts per element (dynamic addressing).
    pub popc: u64,
    /// Shifts per element (bit extraction).
    pub shift: u64,
    /// Selects per element (path predicate).
    pub sel: u64,
    /// Shared-memory transactions per FragTile (bitmaps + value slices).
    pub lds_per_tile: u64,
}

impl DecodeCost {
    /// The calibrated per-element cost of the TCA-TBE decompressor.
    ///
    /// Counts follow Algorithm 2 directly: one popcount for addressing, two
    /// shifts + two LOP3 to gather the codeword bits, one LOP3 to merge
    /// sign/mantissa/exponent, two IADD for the mask and implicit lookup,
    /// one select for the A/B path.
    pub const TCA_TBE: DecodeCost = DecodeCost {
        lop3: 3,
        iadd: 2,
        popc: 1,
        shift: 2,
        sel: 1,
        lds_per_tile: 5,
    };

    /// Total priced scalar ops per element (excluding shared-memory).
    pub fn ops_per_element(&self) -> u64 {
        self.lop3 + self.iadd + self.popc + self.shift + self.sel
    }

    /// Tile decodes one pass over `tiles` FragTiles performs.
    ///
    /// With per-tile decode caching (`cached == true`, the blocked ZipGEMM)
    /// each FragTile is decoded exactly **once per pass**, no matter how
    /// many of the `n_blocks` output `N`-blocks consume it. Without caching
    /// every consuming block re-decodes the tile — the per-*use* accounting
    /// the cost model used to assume implicitly.
    pub fn tile_decodes(tiles: u64, n_blocks: u64, cached: bool) -> u64 {
        if cached {
            tiles
        } else {
            tiles * n_blocks.max(1)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compress::TbeCompressor;
    use crate::format::tile::EncodedTile;
    use zipserv_bf16::gen::WeightGen;

    fn encode_view(tile: &EncodedTile) -> TileView<'_> {
        TileView {
            bitmaps: &tile.bitmaps,
            high_freq: &tile.high_freq,
            fallback: &tile.fallback,
        }
    }

    #[test]
    fn lanewise_decode_matches_reference_decode() {
        let weights: [Bf16; 64] = core::array::from_fn(|i| {
            if i % 7 == 0 {
                Bf16::from_f32(1e30)
            } else {
                Bf16::from_f32(0.01 + i as f32 * 0.002)
            }
        });
        let base = Bf16::from_f32(0.02).exponent() - 4;
        let enc = EncodedTile::encode(&weights, base);
        let lanewise = decode_tile_lanewise(encode_view(&enc), base);
        let reference = enc.decode(base);
        assert_eq!(lanewise, reference);
        assert_eq!(lanewise, weights);
    }

    #[test]
    fn paper_worked_example_thread_19() {
        // §4.3.2: thread 19's a0 is position 38. Build a tile where position
        // 38 carries codeword 101 (5) with base exponent 115 -> exponent 120.
        let mut weights = [Bf16::from_bits(0); 64];
        for (i, w) in weights.iter_mut().enumerate() {
            *w = if i == 38 {
                Bf16::from_parts(0, 120, 0x55)
            } else {
                Bf16::from_bits(0x0042) // exponent 0 -> fallback
            };
        }
        let enc = EncodedTile::encode(&weights, 115);
        assert_eq!(enc.codeword(38), 0b101);
        let dec = decode_tile_lanewise(encode_view(&enc), 115);
        assert_eq!(dec[38].exponent(), 120);
        assert_eq!(dec, weights);
    }

    #[test]
    fn full_matrix_decompress_is_bit_exact() {
        let w = WeightGen::new(0.018).seed(21).matrix(192, 320);
        let tbe = TbeCompressor::new().compress(&w).unwrap();
        let out = decompress(&tbe);
        assert_eq!(out, w);
    }

    #[test]
    fn ragged_block_shapes_roundtrip() {
        // Shapes that exercise partial BlockTiles and TensorCoreTiles.
        for (r, c) in [(8, 8), (8, 64), (64, 8), (72, 40), (136, 200)] {
            let w = WeightGen::new(0.02).seed(5).matrix(r, c);
            let tbe = TbeCompressor::new().compress(&w).unwrap();
            assert_eq!(decompress(&tbe), w, "{r}x{c}");
        }
    }

    #[test]
    fn decode_cost_constants() {
        let c = DecodeCost::TCA_TBE;
        assert_eq!(c.ops_per_element(), 9);
        assert!(c.popc == 1 && c.lds_per_tile == 5);
    }

    #[test]
    fn cached_decodes_are_per_tile_per_pass() {
        // Cached: one decode per tile regardless of how many N-blocks use it.
        assert_eq!(DecodeCost::tile_decodes(100, 1, true), 100);
        assert_eq!(DecodeCost::tile_decodes(100, 8, true), 100);
        // Uncached: one decode per tile per consuming block.
        assert_eq!(DecodeCost::tile_decodes(100, 8, false), 800);
        // A pass with no consumers still decodes each tile once (pure
        // decompression).
        assert_eq!(DecodeCost::tile_decodes(100, 0, false), 100);
    }
}

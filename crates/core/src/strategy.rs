//! The stage-aware inference strategy (§4.4) and the compute-intensity
//! equations of §3.3.
//!
//! ZipServ serves both phases from the *same* TCA-TBE format:
//!
//! * **decode** (memory-bound, small `N`): the fused ZipGEMM kernel — on-the-
//!   fly register decode, no intermediate buffers;
//! * **prefill** (compute-bound, large `N`): a decoupled pipeline — the
//!   ZipServ-Decomp kernel expands weights once to global memory, then a
//!   dense Tensor-Core GEMM amortizes the cost (≈4%/2% overhead at
//!   `N = 8192/16384`, §6.4).

use zipserv_gpu_sim::device::DeviceSpec;
use zipserv_gpu_sim::roofline::{compute_intensity, GemmShape, PipelineKind};

/// Which execution path the engine takes for one linear layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ExecutionPath {
    /// Fused ZipGEMM ("load-compressed, compute-decompressed").
    Fused,
    /// Decoupled: ZipServ-Decomp to global memory, then dense GEMM.
    Decoupled,
}

/// The inference phase.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Phase {
    /// Prompt processing: all prompt tokens at once.
    Prefill,
    /// Autoregressive generation: one token per sequence per step.
    Decode,
}

/// The stage-aware policy: pick the path per layer invocation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StageAwarePolicy {
    /// Switch to the decoupled pipeline when tokens-in-flight `N` exceeds
    /// this threshold.
    pub fused_max_n: u64,
}

impl Default for StageAwarePolicy {
    fn default() -> Self {
        // Figure 15: fused wins through the decode regime (N ≤ 128) and the
        // crossover sits well below prefill's thousands of tokens.
        StageAwarePolicy { fused_max_n: 256 }
    }
}

impl StageAwarePolicy {
    /// Chooses the execution path for a layer processing `n` tokens.
    pub fn choose(&self, n: u64) -> ExecutionPath {
        if n <= self.fused_max_n {
            ExecutionPath::Fused
        } else {
            ExecutionPath::Decoupled
        }
    }

    /// Chooses by phase: decode is always fused, prefill always decoupled —
    /// the coarse policy the engine applies when `N` is not known per layer.
    pub fn choose_by_phase(&self, phase: Phase) -> ExecutionPath {
        match phase {
            Phase::Decode => ExecutionPath::Fused,
            Phase::Prefill => ExecutionPath::Decoupled,
        }
    }

    /// The analytically optimal crossover on a device: the smallest `N`
    /// where the dense-GEMM pipeline stops being memory-bound (beyond the
    /// roofline ridge, compression buys nothing and decode ALU only costs).
    pub fn analytic_crossover(spec: &DeviceSpec, m: u64, k: u64, cr: f64) -> u64 {
        let mut n = 1u64;
        while n < 1 << 20 {
            let ci = compute_intensity(GemmShape::new(m, k, n), PipelineKind::DenseGemm, cr);
            if ci >= spec.ridge_flops_per_byte() {
                return n;
            }
            n *= 2;
        }
        n
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use zipserv_gpu_sim::device::Gpu;

    #[test]
    fn decode_regime_is_fused() {
        let p = StageAwarePolicy::default();
        for n in [1, 8, 32, 128] {
            assert_eq!(p.choose(n), ExecutionPath::Fused, "n={n}");
        }
    }

    #[test]
    fn prefill_regime_is_decoupled() {
        let p = StageAwarePolicy::default();
        for n in [512, 8192, 16384] {
            assert_eq!(p.choose(n), ExecutionPath::Decoupled, "n={n}");
        }
    }

    #[test]
    fn phase_shortcut() {
        let p = StageAwarePolicy::default();
        assert_eq!(p.choose_by_phase(Phase::Decode), ExecutionPath::Fused);
        assert_eq!(p.choose_by_phase(Phase::Prefill), ExecutionPath::Decoupled);
    }

    #[test]
    fn analytic_crossover_in_plausible_band() {
        // On an RTX4090 the dense GEMM leaves the memory-bound regime
        // somewhere in the hundreds of tokens for a 4096-hidden layer.
        let n = StageAwarePolicy::analytic_crossover(&Gpu::Rtx4090.spec(), 4096, 4096, 1.51);
        assert!((64..=1024).contains(&n), "crossover {n}");
        // Datacenter parts with fat HBM stay memory-bound longer.
        let n_h800 = StageAwarePolicy::analytic_crossover(&Gpu::H800.spec(), 4096, 4096, 1.51);
        assert!(n_h800 > n, "H800 {n_h800} vs 4090 {n}");
    }
}

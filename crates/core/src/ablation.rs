//! Ablations of TCA-TBE's design choices (§4.2's arguments, made
//! executable):
//!
//! 1. **Decoupled triple bitmaps vs a packed 3-bit bitstream** — the paper
//!    argues packed non-byte-aligned codewords force word-boundary handling
//!    and extra logic. [`PackedTile`] implements that alternative for real;
//!    [`compare_layouts`] counts the instruction difference and prices both
//!    on a GPU.
//! 2. **Implicit base-plus-code lookup vs an explicit frequency-ranked
//!    codebook** — ranking codes by frequency instead of numeric order
//!    requires a 7-entry table lookup per element (shared-memory traffic)
//!    and buys nothing when the top-7 is contiguous (99.6% of matrices).
//!    [`FreqCodebook`] implements the alternative; [`compare_codebooks`]
//!    quantifies the trade.

use crate::decompress::DecodeCost;
use crate::format::tile::EncodedTile;
use crate::format::{FRAG_ELEMS, WINDOW};
use zipserv_bf16::stats::ExponentHistogram;
use zipserv_bf16::Bf16;
use zipserv_gpu_sim::device::DeviceSpec;
use zipserv_gpu_sim::instr::{InstrKind, InstrMix};

/// Ablation 1: one 8×8 tile with its 64 3-bit codewords packed into a dense
/// 24-byte bitstream (LSB-first), instead of three bit planes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PackedTile {
    /// 192 bits of packed codewords.
    pub codes: [u8; 24],
    /// Same high-frequency buffer as the bitmap layout.
    pub high_freq: Vec<u8>,
    /// Same fallback buffer as the bitmap layout.
    pub fallback: Vec<u16>,
}

impl PackedTile {
    /// Encodes a tile in the packed-bitstream layout.
    pub fn encode(tile: &[Bf16; FRAG_ELEMS], base_exp: u8) -> Self {
        // Reuse the reference encoder for classification, then repack.
        let bitmap = EncodedTile::encode(tile, base_exp);
        let mut codes = [0u8; 24];
        for p in 0..FRAG_ELEMS {
            let c = bitmap.codeword(p);
            let bit = 3 * p;
            let (byte, off) = (bit / 8, bit % 8);
            codes[byte] |= c << off;
            if off > 5 {
                // Codeword spans a byte boundary — exactly the misalignment
                // the paper's layout avoids.
                codes[byte + 1] |= c >> (8 - off);
            }
        }
        PackedTile {
            codes,
            high_freq: bitmap.high_freq,
            fallback: bitmap.fallback,
        }
    }

    /// The 3-bit codeword at position `p` (crossing byte boundaries).
    pub fn codeword(&self, p: usize) -> u8 {
        assert!(p < FRAG_ELEMS, "position out of range");
        let bit = 3 * p;
        let (byte, off) = (bit / 8, bit % 8);
        let lo = self.codes[byte] >> off;
        let hi = if off > 5 {
            self.codes[byte + 1] << (8 - off)
        } else {
            0
        };
        (lo | hi) & 0b111
    }

    /// Decodes the tile (bit-exact with the bitmap layout).
    pub fn decode(&self, base_exp: u8) -> [Bf16; FRAG_ELEMS] {
        let mut out = [Bf16::ZERO; FRAG_ELEMS];
        let mut hf = 0usize;
        let mut fb = 0usize;
        for (p, slot) in out.iter_mut().enumerate() {
            let c = self.codeword(p);
            if c != 0 {
                // Same saturating exponent contract as `crate::decompress`.
                *slot = Bf16::from_packed(self.high_freq[hf], base_exp.saturating_add(c));
                hf += 1;
            } else {
                *slot = Bf16::from_bits(self.fallback[fb]);
                fb += 1;
            }
        }
        out
    }

    /// Per-element decode cost of the packed layout: boundary-crossing
    /// extraction needs two loads + funnel shift + merge, and the *dynamic
    /// addressing* trick no longer works from one register (the indicator
    /// is spread across 192 bits, three popcounts per element).
    pub fn decode_cost() -> DecodeCost {
        DecodeCost {
            lop3: 5,
            iadd: 3,
            popc: 3,
            shift: 5,
            sel: 1,
            lds_per_tile: 8,
        }
    }
}

/// Result of one layout/codebook ablation comparison.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AblationResult {
    /// Scalar decode instructions per element, reference design.
    pub reference_ops: u64,
    /// Scalar decode instructions per element, ablated design.
    pub ablated_ops: u64,
    /// Modeled decode time per 1M elements on the device, reference (µs).
    pub reference_us: f64,
    /// Modeled decode time per 1M elements, ablated (µs).
    pub ablated_us: f64,
}

impl AblationResult {
    /// Ablated ÷ reference decode time (>1 means the reference wins).
    pub fn slowdown(&self) -> f64 {
        self.ablated_us / self.reference_us
    }
}

fn mix_from_cost(cost: DecodeCost, elements: u64) -> InstrMix {
    let mut mix = InstrMix::new();
    mix.add(InstrKind::Lop3, cost.lop3 * elements);
    mix.add(InstrKind::Iadd, cost.iadd * elements);
    mix.add(InstrKind::Popc, cost.popc * elements);
    mix.add(InstrKind::Shift, cost.shift * elements);
    mix.add(InstrKind::Sel, cost.sel * elements);
    mix
}

/// Ablation 1: triple bit-plane bitmaps vs packed 3-bit bitstream.
pub fn compare_layouts(spec: &DeviceSpec) -> AblationResult {
    const ELEMS: u64 = 1 << 20;
    let reference = mix_from_cost(DecodeCost::TCA_TBE, ELEMS);
    let ablated = mix_from_cost(PackedTile::decode_cost(), ELEMS);
    AblationResult {
        reference_ops: DecodeCost::TCA_TBE.ops_per_element(),
        ablated_ops: PackedTile::decode_cost().ops_per_element(),
        reference_us: reference.issue_time_us(spec),
        ablated_us: ablated.issue_time_us(spec),
    }
}

/// Ablation 2: a frequency-ranked explicit codebook. Codes are assigned by
/// descending frequency (not numeric order), so decoding requires a table
/// lookup instead of `base + code`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FreqCodebook {
    /// `table[c - 1]` = exponent for codeword `c ∈ 1..=7`.
    table: [u8; WINDOW],
    /// Reverse map exponent → codeword (0 = fallback).
    code_of: [u8; 256],
}

impl FreqCodebook {
    /// Builds the codebook from the 7 most frequent exponents (any order).
    pub fn from_histogram(hist: &ExponentHistogram) -> Self {
        let mut table = [0u8; WINDOW];
        let mut code_of = [0u8; 256];
        for (i, (e, _)) in hist.by_frequency().into_iter().take(WINDOW).enumerate() {
            table[i] = e;
            code_of[e as usize] = (i + 1) as u8;
        }
        FreqCodebook { table, code_of }
    }

    /// Codeword for an exponent (0 = not in the codebook).
    pub fn encode_exponent(&self, e: u8) -> u8 {
        self.code_of[e as usize]
    }

    /// Exponent for a non-zero codeword.
    ///
    /// # Panics
    ///
    /// Panics if `c` is 0 or greater than 7.
    pub fn decode_code(&self, c: u8) -> u8 {
        assert!((1..=WINDOW as u8).contains(&c), "codeword out of range");
        self.table[(c - 1) as usize]
    }

    /// Fraction of `hist`'s mass covered by the codebook — by Theorem A.2
    /// this equals the contiguous window's coverage whenever the top-7 is
    /// contiguous (99.6% of matrices), so the extra flexibility buys ~0.
    pub fn coverage(&self, hist: &ExponentHistogram) -> f64 {
        if hist.total() == 0 {
            return 0.0;
        }
        let covered: u64 = self.table.iter().map(|&e| hist.count(e)).sum();
        covered as f64 / hist.total() as f64
    }

    /// Decode cost with the explicit table: the arithmetic remap becomes a
    /// shared-memory LUT access per element.
    pub fn decode_cost() -> DecodeCost {
        DecodeCost {
            lop3: 3,
            iadd: 2,
            popc: 1,
            shift: 2,
            sel: 1,
            lds_per_tile: 5 + 64, // one LUT transaction per element
        }
    }
}

/// Coverage gain and decode-cost penalty of the explicit codebook vs the
/// implicit contiguous window, on a given histogram.
pub fn compare_codebooks(hist: &ExponentHistogram, spec: &DeviceSpec) -> (f64, AblationResult) {
    let window = hist.best_contiguous_window(WINDOW);
    let codebook = FreqCodebook::from_histogram(hist);
    let coverage_gain = codebook.coverage(hist) - window.coverage;

    const ELEMS: u64 = 1 << 20;
    let mut reference = mix_from_cost(DecodeCost::TCA_TBE, ELEMS);
    let mut ablated = mix_from_cost(FreqCodebook::decode_cost(), ELEMS);
    // LUT traffic: one shared-memory access per element, and a warp's 32
    // lanes hit at most 7 distinct banks (the table has 7 entries), so each
    // access serializes ~32/7 ≈ 4.6x — charge 5 LSU slots per element.
    ablated.add(InstrKind::Lds, 5 * ELEMS);
    reference.add(InstrKind::Lds, ELEMS / 64 * 5);
    (
        coverage_gain,
        AblationResult {
            reference_ops: DecodeCost::TCA_TBE.ops_per_element(),
            ablated_ops: FreqCodebook::decode_cost().ops_per_element(),
            reference_us: reference.issue_time_us(spec),
            ablated_us: ablated.issue_time_us(spec),
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use zipserv_bf16::gen::WeightGen;
    use zipserv_gpu_sim::device::Gpu;

    fn sample_tile(seed: u64) -> [Bf16; FRAG_ELEMS] {
        let v = WeightGen::new(0.02)
            .seed(seed)
            .outliers(0.05, 50.0)
            .vector(FRAG_ELEMS);
        core::array::from_fn(|i| v[i])
    }

    #[test]
    fn packed_tile_roundtrips() {
        for seed in 0..20 {
            let tile = sample_tile(seed);
            let base = Bf16::from_f32(0.02).exponent() - 4;
            let packed = PackedTile::encode(&tile, base);
            assert_eq!(packed.decode(base), tile, "seed {seed}");
        }
    }

    #[test]
    fn packed_and_bitmap_layouts_agree() {
        let tile = sample_tile(7);
        let base = Bf16::from_f32(0.02).exponent() - 4;
        let bitmap = EncodedTile::encode(&tile, base);
        let packed = PackedTile::encode(&tile, base);
        for p in 0..FRAG_ELEMS {
            assert_eq!(bitmap.codeword(p), packed.codeword(p), "position {p}");
        }
        assert_eq!(bitmap.high_freq, packed.high_freq);
        assert_eq!(bitmap.fallback, packed.fallback);
    }

    #[test]
    fn boundary_crossing_codewords_extract_correctly() {
        // Position 2 starts at bit 6 — the first byte-boundary crosser.
        let mut tile = [Bf16::from_bits(0x0001); FRAG_ELEMS]; // all fallback
        tile[2] = Bf16::from_parts(0, 125, 0); // code 5 with base 120
        let packed = PackedTile::encode(&tile, 120);
        assert_eq!(packed.codeword(2), 5);
        assert_eq!(packed.decode(120), tile);
    }

    #[test]
    fn bitmap_layout_decodes_faster() {
        // The §4.2 claim: packed bitstreams need more work per element.
        for gpu in [Gpu::Rtx4090, Gpu::A100] {
            let r = compare_layouts(&gpu.spec());
            assert!(r.ablated_ops > r.reference_ops);
            assert!(r.slowdown() > 1.3, "{gpu:?}: slowdown {}", r.slowdown());
        }
    }

    #[test]
    fn freq_codebook_roundtrips_exponents() {
        let weights = WeightGen::new(0.018).seed(5).vector(100_000);
        let hist = ExponentHistogram::from_values(weights);
        let cb = FreqCodebook::from_histogram(&hist);
        for e in 0..=255u8 {
            let c = cb.encode_exponent(e);
            if c != 0 {
                assert_eq!(cb.decode_code(c), e);
            }
        }
    }

    #[test]
    fn explicit_codebook_buys_nothing_on_contiguous_distributions() {
        let weights = WeightGen::new(0.018).seed(6).vector(200_000);
        let hist = ExponentHistogram::from_values(weights);
        let (gain, cost) = compare_codebooks(&hist, &Gpu::Rtx4090.spec());
        // Theorem A.2: contiguous top-7 means zero coverage gain...
        assert!(gain.abs() < 1e-9, "coverage gain {gain}");
        // ...while the LUT path decodes slower.
        assert!(cost.slowdown() > 1.05, "slowdown {}", cost.slowdown());
    }

    #[test]
    fn explicit_codebook_can_gain_on_pathological_distributions() {
        // A bimodal exponent distribution (not Gaussian-like): top-7 by
        // frequency is non-contiguous and beats any contiguous window.
        let mut hist = ExponentHistogram::new();
        for &(e, n) in &[
            (100u8, 50u64),
            (101, 45),
            (102, 40),
            (200, 50),
            (201, 45),
            (202, 40),
            (203, 35),
            (150, 1),
        ] {
            for _ in 0..n {
                hist.push(Bf16::from_parts(0, e as u16, 0));
            }
        }
        let (gain, _) = compare_codebooks(&hist, &Gpu::Rtx4090.spec());
        assert!(gain > 0.2, "gain {gain}");
    }
}

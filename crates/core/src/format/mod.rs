//! The TCA-TBE data format: tiles, bit-plane bitmaps, fragment mapping and
//! the matrix-level layout.

pub mod archive;
pub mod fragment;
pub mod layout;
pub mod serialize;
pub mod tile;

/// Side length of the base FragTile (matches the smallest Tensor-Core
/// operand fragment).
pub const FRAG_DIM: usize = 8;
/// Elements per FragTile.
pub const FRAG_ELEMS: usize = FRAG_DIM * FRAG_DIM;
/// Side length of a TensorCoreTile (the `m16n8k16` operand granularity).
pub const TC_DIM: usize = 16;
/// Side length of a BlockTile (processed by one thread block).
pub const BLOCK_DIM: usize = 64;
/// Number of bit planes (3-bit codewords).
pub const BIT_PLANES: usize = 3;
/// Codeword window size: codes 001–111 map to 7 consecutive exponents.
pub const WINDOW: usize = 7;

//! FragTile encoding: one 8×8 weight tile → three bit-plane bitmaps plus
//! two value buffers (Algorithm 1, Phase II).

use super::{FRAG_ELEMS, WINDOW};
use zipserv_bf16::Bf16;

/// The encoded form of one 8×8 FragTile.
///
/// Element `i` (row-major position within the tile) carries a 3-bit codeword
/// `c` scattered across the three bitmaps: bit `i` of `bitmaps[p]` is bit
/// `p` of `c`. Codewords `1..=7` mean "exponent = base + c, sign/mantissa in
/// [`EncodedTile::high_freq`]"; codeword `0` means "full BF16 value in
/// [`EncodedTile::fallback`]".
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EncodedTile {
    /// The three 64-bit bit planes.
    pub bitmaps: [u64; 3],
    /// Packed sign+mantissa bytes for in-window elements, in element order.
    pub high_freq: Vec<u8>,
    /// Full-precision BF16 bits for out-of-window elements, in element order.
    pub fallback: Vec<u16>,
}

impl EncodedTile {
    /// Encodes a row-major 64-element tile against a base exponent.
    ///
    /// An element with raw exponent `e` is *in window* when
    /// `1 <= e - base_exp <= 7` (so `base_exp` itself is NOT in the window:
    /// codeword 0 is reserved for the fallback indicator).
    pub fn encode(tile: &[Bf16; FRAG_ELEMS], base_exp: u8) -> Self {
        let mut bitmaps = [0u64; 3];
        let mut high_freq = Vec::new();
        let mut fallback = Vec::new();
        for (i, &w) in tile.iter().enumerate() {
            let e = w.exponent() as i32;
            let c = e - base_exp as i32;
            if (1..=WINDOW as i32).contains(&c) {
                let c = c as u64;
                bitmaps[0] |= (c & 1) << i;
                bitmaps[1] |= ((c >> 1) & 1) << i;
                bitmaps[2] |= ((c >> 2) & 1) << i;
                high_freq.push(w.packed_sign_mantissa());
            } else {
                fallback.push(w.to_bits());
            }
        }
        EncodedTile {
            bitmaps,
            high_freq,
            fallback,
        }
    }

    /// The spatial indicator mask `B1 | B2 | B3`: bit `i` set means element
    /// `i` is stored in compressed (high-frequency) form.
    #[inline]
    pub fn indicator(&self) -> u64 {
        self.bitmaps[0] | self.bitmaps[1] | self.bitmaps[2]
    }

    /// Number of high-frequency (in-window) elements.
    pub fn high_freq_count(&self) -> usize {
        self.indicator().count_ones() as usize
    }

    /// Number of fallback elements.
    pub fn fallback_count(&self) -> usize {
        FRAG_ELEMS - self.high_freq_count()
    }

    /// The 3-bit codeword of element `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p >= 64`.
    #[inline]
    pub fn codeword(&self, p: usize) -> u8 {
        assert!(p < FRAG_ELEMS, "element index out of range");
        (((self.bitmaps[0] >> p) & 1)
            | (((self.bitmaps[1] >> p) & 1) << 1)
            | (((self.bitmaps[2] >> p) & 1) << 2)) as u8
    }

    /// Decodes the whole tile back to 64 BF16 values (reference path; the
    /// lane-exact path lives in [`crate::decompress`]).
    pub fn decode(&self, base_exp: u8) -> [Bf16; FRAG_ELEMS] {
        let mut out = [Bf16::ZERO; FRAG_ELEMS];
        let indicator = self.indicator();
        let mut hf = 0usize;
        let mut fb = 0usize;
        for (p, slot) in out.iter_mut().enumerate() {
            if (indicator >> p) & 1 == 1 {
                let c = self.codeword(p);
                // Saturating per the decoder-wide exponent contract (see
                // `crate::decompress`): valid encodings never exceed 255,
                // corrupt ones pin at 255 instead of wrapping.
                let e = base_exp.saturating_add(c);
                *slot = Bf16::from_packed(self.high_freq[hf], e);
                hf += 1;
            } else {
                *slot = Bf16::from_bits(self.fallback[fb]);
                fb += 1;
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tile_of(values: impl Fn(usize) -> f32) -> [Bf16; FRAG_ELEMS] {
        core::array::from_fn(|i| Bf16::from_f32(values(i)))
    }

    #[test]
    fn all_in_window_roundtrip() {
        // Values around 1.0: exponents 126..128; base 120 keeps c in 6..=8?
        // Use base 124 so exponents 125..=131 are in window.
        let tile = tile_of(|i| 0.5 + i as f32 * 0.1);
        let enc = EncodedTile::encode(&tile, 124);
        assert_eq!(enc.fallback_count(), 0);
        assert_eq!(enc.high_freq.len(), 64);
        assert_eq!(enc.decode(124), tile);
    }

    #[test]
    fn all_fallback_roundtrip() {
        // Exponent 127 with base 200: nothing in window.
        let tile = tile_of(|i| 1.0 + i as f32 * 0.001);
        let enc = EncodedTile::encode(&tile, 200);
        assert_eq!(enc.high_freq_count(), 0);
        assert_eq!(enc.fallback.len(), 64);
        assert_eq!(enc.decode(200), tile);
    }

    #[test]
    fn mixed_tile_roundtrip() {
        // Mix tiny (fallback), normal (window) and huge (fallback) values.
        let tile = tile_of(|i| match i % 4 {
            0 => 1e-30,
            1 => 0.02,
            2 => -0.015,
            _ => 3.0e30,
        });
        let base = Bf16::from_f32(0.02).exponent() - 2;
        let enc = EncodedTile::encode(&tile, base);
        assert!(enc.high_freq_count() > 0);
        assert!(enc.fallback_count() > 0);
        assert_eq!(enc.high_freq_count() + enc.fallback_count(), 64);
        assert_eq!(enc.decode(base), tile);
    }

    #[test]
    fn base_exp_itself_is_fallback() {
        // An element whose exponent equals base_exp must use the fallback
        // path: codeword 0 is the indicator.
        let w = Bf16::from_parts(0, 120, 5);
        let tile = [w; FRAG_ELEMS];
        let enc = EncodedTile::encode(&tile, 120);
        assert_eq!(enc.high_freq_count(), 0);
        assert_eq!(enc.decode(120), tile);
    }

    #[test]
    fn window_boundaries() {
        // base + 1 is the lowest in-window exponent, base + 7 the highest.
        let lo = Bf16::from_parts(0, 121, 0);
        let hi = Bf16::from_parts(1, 127, 0x7F);
        let above = Bf16::from_parts(0, 128, 0);
        let mut tile = [lo; FRAG_ELEMS];
        tile[1] = hi;
        tile[2] = above;
        let enc = EncodedTile::encode(&tile, 120);
        assert_eq!(enc.codeword(0), 1);
        assert_eq!(enc.codeword(1), 7);
        assert_eq!(enc.codeword(2), 0, "above-window element is fallback");
        assert_eq!(enc.fallback_count(), 1);
        assert_eq!(enc.decode(120), tile);
    }

    #[test]
    fn codewords_scatter_across_planes() {
        // Codeword 5 = 0b101: bits in planes 0 and 2 only.
        let w = Bf16::from_parts(0, 125, 3);
        let tile = [w; FRAG_ELEMS];
        let enc = EncodedTile::encode(&tile, 120);
        assert_eq!(enc.bitmaps[0], u64::MAX);
        assert_eq!(enc.bitmaps[1], 0);
        assert_eq!(enc.bitmaps[2], u64::MAX);
        assert_eq!(enc.codeword(17), 5);
    }

    #[test]
    fn indicator_is_or_of_planes() {
        let tile = tile_of(|i| if i % 2 == 0 { 0.02 } else { 1e30 });
        let base = Bf16::from_f32(0.02).exponent() - 3;
        let enc = EncodedTile::encode(&tile, base);
        assert_eq!(
            enc.indicator(),
            enc.bitmaps[0] | enc.bitmaps[1] | enc.bitmaps[2]
        );
        // Even positions set, odd clear.
        assert_eq!(enc.indicator(), 0x5555_5555_5555_5555);
    }

    #[test]
    fn special_values_survive() {
        let mut tile = [Bf16::from_f32(0.02); FRAG_ELEMS];
        tile[0] = Bf16::NAN;
        tile[1] = Bf16::INFINITY;
        tile[2] = Bf16::NEG_INFINITY;
        tile[3] = Bf16::ZERO;
        tile[4] = Bf16::from_f32(-0.0);
        tile[5] = Bf16::from_bits(0x0001); // subnormal
        let base = Bf16::from_f32(0.02).exponent() - 3;
        let enc = EncodedTile::encode(&tile, base);
        let dec = enc.decode(base);
        for (a, b) in tile.iter().zip(dec.iter()) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn buffer_sizes_add_up() {
        let tile = tile_of(|i| if i < 10 { 1e30 } else { 0.02 });
        let base = Bf16::from_f32(0.02).exponent() - 3;
        let enc = EncodedTile::encode(&tile, base);
        assert_eq!(enc.high_freq.len(), 54);
        assert_eq!(enc.fallback.len(), 10);
    }
}

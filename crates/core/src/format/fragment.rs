//! Tensor-Core fragment ↔ lane mapping.
//!
//! In the `mma.sync.m16n8k16` operand layout, a warp of 32 lanes holds an
//! 8×8 FragTile with lane `i` owning the `.bf16x2` register pair at
//! positions `2i` and `2i+1` (row-major within the tile). The decompressor
//! (§4.3.2) is built around exactly this assignment: each lane
//! reconstructs only its own two elements.

use super::FRAG_ELEMS;

/// Lanes per warp.
pub const LANES: usize = 32;

/// The two row-major tile positions owned by `lane`.
///
/// # Panics
///
/// Panics if `lane >= 32`.
///
/// # Example
///
/// ```
/// use zipserv_core::format::fragment::lane_positions;
///
/// assert_eq!(lane_positions(0), (0, 1));
/// assert_eq!(lane_positions(19), (38, 39)); // the paper's Thread-19 example
/// ```
#[inline]
pub fn lane_positions(lane: usize) -> (usize, usize) {
    assert!(lane < LANES, "lane out of range");
    (2 * lane, 2 * lane + 1)
}

/// The lane that owns tile position `p`.
///
/// # Panics
///
/// Panics if `p >= 64`.
#[inline]
pub fn owner_lane(p: usize) -> usize {
    assert!(p < FRAG_ELEMS, "position out of range");
    p / 2
}

/// Popcount-prefix mask for position `p`: bits `[0, p)` set — the mask used
/// in Algorithm 2's dynamic addressing (`mask = (1 << p) - 1`).
#[inline]
pub fn prefix_mask(p: usize) -> u64 {
    debug_assert!(p <= 64);
    if p >= 64 {
        u64::MAX
    } else {
        (1u64 << p) - 1
    }
}

/// High-frequency buffer index for position `p` given the indicator mask:
/// the number of compressed elements before `p`.
#[inline]
pub fn high_freq_index(indicator: u64, p: usize) -> usize {
    (indicator & prefix_mask(p)).count_ones() as usize
}

/// Fallback buffer index for position `p` given the indicator mask: the
/// number of fallback elements before `p` (Algorithm 2 line 17:
/// `idx_L = p − idx_H`).
#[inline]
pub fn fallback_index(indicator: u64, p: usize) -> usize {
    p - high_freq_index(indicator, p)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lanes_cover_the_tile_exactly_once() {
        let mut seen = [false; FRAG_ELEMS];
        for lane in 0..LANES {
            let (a, b) = lane_positions(lane);
            assert!(!seen[a] && !seen[b]);
            seen[a] = true;
            seen[b] = true;
            assert_eq!(owner_lane(a), lane);
            assert_eq!(owner_lane(b), lane);
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn paper_thread_examples() {
        // §4.3.2: Thread 19 inspects bit 38 (2×19); Thread 6 inspects bit 12.
        assert_eq!(lane_positions(19).0, 38);
        assert_eq!(lane_positions(6).0, 12);
    }

    #[test]
    fn prefix_masks() {
        assert_eq!(prefix_mask(0), 0);
        assert_eq!(prefix_mask(1), 1);
        assert_eq!(prefix_mask(12), 0xFFF);
        assert_eq!(prefix_mask(64), u64::MAX);
    }

    #[test]
    fn addressing_splits_positions() {
        // Indicator with even positions compressed.
        let ind: u64 = 0x5555_5555_5555_5555;
        // Position 12 (even, compressed): 6 compressed positions before it.
        assert_eq!(high_freq_index(ind, 12), 6);
        // Position 13 (odd, fallback): 6 fallback positions before it (1,3,..,11).
        assert_eq!(fallback_index(ind, 13), 6);
        // Index pairs always satisfy idx_H + idx_L == p.
        for p in 0..64 {
            assert_eq!(high_freq_index(ind, p) + fallback_index(ind, p), p);
        }
    }

    #[test]
    fn all_compressed_indicator() {
        let ind = u64::MAX;
        for p in 0..64 {
            assert_eq!(high_freq_index(ind, p), p);
            assert_eq!(fallback_index(ind, p), 0);
        }
    }

    #[test]
    #[should_panic(expected = "lane out of range")]
    fn lane_bounds() {
        let _ = lane_positions(32);
    }
}

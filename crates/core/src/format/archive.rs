//! Multi-tensor model archives and incremental snapshots — §7's
//! "efficient model checkpointing" direction (cf. LMC and ZipNN, which
//! compress checkpoints for storage only).
//!
//! A [`ModelArchive`] is a named collection of compressed tensors with a
//! manifest; [`SnapshotDelta`] stores only the FragTiles that changed
//! between two checkpoints of the same model — fine-tuning steps touch
//! weights sparsely, so deltas are far smaller than full archives.

use super::layout::TbeMatrix;
use super::serialize;
use crate::error::TbeError;
use bytes::{Buf, BufMut, Bytes, BytesMut};
use std::collections::BTreeMap;

/// A named collection of compressed tensors.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ModelArchive {
    tensors: BTreeMap<String, TbeMatrix>,
}

impl ModelArchive {
    /// An empty archive.
    pub fn new() -> Self {
        Self::default()
    }

    /// Inserts (or replaces) a tensor. Returns the previous value, if any.
    pub fn insert(&mut self, name: impl Into<String>, tensor: TbeMatrix) -> Option<TbeMatrix> {
        self.tensors.insert(name.into(), tensor)
    }

    /// Looks up a tensor by name.
    pub fn get(&self, name: &str) -> Option<&TbeMatrix> {
        self.tensors.get(name)
    }

    /// Number of tensors.
    pub fn len(&self) -> usize {
        self.tensors.len()
    }

    /// Is the archive empty?
    pub fn is_empty(&self) -> bool {
        self.tensors.is_empty()
    }

    /// Iterates over `(name, tensor)` pairs in name order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &TbeMatrix)> {
        self.tensors.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// Total compressed bytes across tensors.
    pub fn compressed_bytes(&self) -> usize {
        self.tensors
            .values()
            .map(|t| t.stats().compressed_bytes())
            .sum()
    }

    /// Total raw BF16 bytes across tensors.
    pub fn raw_bytes(&self) -> usize {
        self.tensors.values().map(|t| t.stats().raw_bytes).sum()
    }

    /// Serializes the archive: a count-prefixed sequence of
    /// `(name, .ztbe blob)` records.
    pub fn to_bytes(&self) -> Bytes {
        let mut out = BytesMut::new();
        out.put_slice(b"ZARC");
        out.put_u32_le(self.tensors.len() as u32);
        for (name, tensor) in &self.tensors {
            let name_bytes = name.as_bytes();
            out.put_u32_le(name_bytes.len() as u32);
            out.put_slice(name_bytes);
            let blob = serialize::to_bytes(tensor);
            out.put_u64_le(blob.len() as u64);
            out.put_slice(&blob);
        }
        out.freeze()
    }

    /// Deserializes an archive.
    ///
    /// # Errors
    ///
    /// Returns [`TbeError::Corrupt`] on malformed input (bad magic,
    /// truncation, invalid UTF-8 names, or any corrupt tensor blob).
    pub fn from_bytes(mut bytes: &[u8]) -> Result<Self, TbeError> {
        const E: TbeError = TbeError::Corrupt("truncated archive");
        let mut take = |n: usize| -> Result<&[u8], TbeError> {
            if bytes.remaining() < n {
                return Err(E);
            }
            let (head, rest) = bytes.split_at(n);
            bytes = rest;
            Ok(head)
        };
        if take(4)? != b"ZARC" {
            return Err(TbeError::Corrupt("bad archive magic"));
        }
        let count = u32::from_le_bytes(take(4)?.try_into().expect("4"));
        let mut tensors = BTreeMap::new();
        for _ in 0..count {
            let name_len = u32::from_le_bytes(take(4)?.try_into().expect("4")) as usize;
            let name = std::str::from_utf8(take(name_len)?)
                .map_err(|_| TbeError::Corrupt("tensor name is not UTF-8"))?
                .to_string();
            let blob_len = u64::from_le_bytes(take(8)?.try_into().expect("8")) as usize;
            let tensor = serialize::from_bytes(take(blob_len)?)?;
            tensors.insert(name, tensor);
        }
        Ok(ModelArchive { tensors })
    }
}

/// The FragTiles of one tensor that changed between two checkpoints.
#[derive(Debug, Clone, PartialEq)]
pub struct TensorDelta {
    /// Tensor name.
    pub name: String,
    /// Full replacement payload (used when too much changed to bother with
    /// tile granularity, or shapes differ).
    pub replacement: TbeMatrix,
}

/// An incremental snapshot: the tensors that changed since the base.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SnapshotDelta {
    changed: Vec<TensorDelta>,
    removed: Vec<String>,
}

impl SnapshotDelta {
    /// Computes the delta turning `base` into `next`.
    pub fn diff(base: &ModelArchive, next: &ModelArchive) -> SnapshotDelta {
        let mut changed = Vec::new();
        for (name, tensor) in next.iter() {
            if base.get(name) != Some(tensor) {
                changed.push(TensorDelta {
                    name: name.to_string(),
                    replacement: tensor.clone(),
                });
            }
        }
        let removed = base
            .iter()
            .filter(|(name, _)| next.get(name).is_none())
            .map(|(name, _)| name.to_string())
            .collect();
        SnapshotDelta { changed, removed }
    }

    /// Number of changed tensors.
    pub fn changed_count(&self) -> usize {
        self.changed.len()
    }

    /// Bytes this delta would occupy (changed payloads only).
    pub fn delta_bytes(&self) -> usize {
        self.changed
            .iter()
            .map(|d| d.replacement.stats().compressed_bytes())
            .sum()
    }

    /// Applies the delta to a base archive, producing the next checkpoint.
    pub fn apply(&self, base: &ModelArchive) -> ModelArchive {
        let mut out = base.clone();
        for name in &self.removed {
            out.tensors.remove(name);
        }
        for d in &self.changed {
            out.insert(d.name.clone(), d.replacement.clone());
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compress::TbeCompressor;
    use zipserv_bf16::gen::WeightGen;
    use zipserv_bf16::{Bf16, Matrix};

    fn tensor(seed: u64) -> TbeMatrix {
        let w = WeightGen::new(0.02).seed(seed).matrix(64, 64);
        TbeCompressor::new().compress(&w).expect("tileable")
    }

    #[test]
    fn archive_roundtrip() {
        let mut a = ModelArchive::new();
        a.insert("layers.0.qkv", tensor(1));
        a.insert("layers.0.o", tensor(2));
        a.insert("lm_head", tensor(3));
        let bytes = a.to_bytes();
        let b = ModelArchive::from_bytes(&bytes).expect("valid");
        assert_eq!(a, b);
        assert_eq!(b.len(), 3);
        assert!(b.get("lm_head").is_some());
        assert!(b.get("missing").is_none());
    }

    #[test]
    fn archive_sizes_sum() {
        let mut a = ModelArchive::new();
        a.insert("x", tensor(4));
        a.insert("y", tensor(5));
        assert!(a.compressed_bytes() < a.raw_bytes());
        assert_eq!(a.raw_bytes(), 2 * 2 * 64 * 64);
    }

    #[test]
    fn archive_rejects_corruption() {
        let mut a = ModelArchive::new();
        a.insert("t", tensor(6));
        let mut bytes = a.to_bytes().to_vec();
        bytes[0] = b'X';
        assert!(ModelArchive::from_bytes(&bytes).is_err());
        let good = a.to_bytes();
        assert!(ModelArchive::from_bytes(&good[..good.len() - 3]).is_err());
    }

    #[test]
    fn delta_captures_only_changes() {
        let mut base = ModelArchive::new();
        base.insert("a", tensor(1));
        base.insert("b", tensor(2));
        base.insert("c", tensor(3));

        let mut next = base.clone();
        next.insert("b", tensor(20)); // changed
        next.tensors.remove("c"); // removed
        next.insert("d", tensor(4)); // added

        let delta = SnapshotDelta::diff(&base, &next);
        assert_eq!(delta.changed_count(), 2, "b changed + d added");
        assert!(delta.delta_bytes() < base.compressed_bytes());
        assert_eq!(delta.apply(&base), next);
    }

    #[test]
    fn identical_checkpoints_have_empty_delta() {
        let mut a = ModelArchive::new();
        a.insert("w", tensor(9));
        let delta = SnapshotDelta::diff(&a, &a);
        assert_eq!(delta.changed_count(), 0);
        assert_eq!(delta.delta_bytes(), 0);
        assert_eq!(delta.apply(&a), a);
    }

    #[test]
    fn fine_tune_style_sparse_update_is_cheap() {
        // 8 tensors, fine-tune touches 1: delta is ~1/8 of the archive.
        let mut base = ModelArchive::new();
        for i in 0..8u64 {
            base.insert(format!("layer.{i}"), tensor(i));
        }
        let mut next = base.clone();
        // Perturb one tensor slightly.
        let w = WeightGen::new(0.02).seed(3).matrix(64, 64);
        let mut w2 = w.clone();
        w2[(0, 0)] = Bf16::from_f32(w[(0, 0)].to_f32() + 0.001);
        next.insert(
            "layer.3",
            TbeCompressor::new().compress(&w2).expect("tileable"),
        );

        let delta = SnapshotDelta::diff(&base, &next);
        assert_eq!(delta.changed_count(), 1);
        let full = next.compressed_bytes();
        assert!(
            (delta.delta_bytes() as f64) < 0.2 * full as f64,
            "delta {} vs full {full}",
            delta.delta_bytes()
        );
    }

    #[test]
    fn empty_archive_roundtrip() {
        let a = ModelArchive::new();
        assert!(a.is_empty());
        let b = ModelArchive::from_bytes(&a.to_bytes()).expect("valid");
        assert!(b.is_empty());
    }

    #[test]
    fn decompression_through_archive_is_bit_exact() {
        let w = Matrix::from_fn(64, 64, |r, c| Bf16::from_bits((r * 64 + c) as u16));
        let mut a = ModelArchive::new();
        a.insert("t", TbeCompressor::new().compress(&w).expect("tileable"));
        let b = ModelArchive::from_bytes(&a.to_bytes()).expect("valid");
        assert_eq!(b.get("t").expect("present").decompress(), w);
    }
}

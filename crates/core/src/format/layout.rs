//! Matrix-level TCA-TBE layout: hierarchical tile ordering and the four
//! contiguous global arrays (§4.2, "Hierarchical Tiling Design").
//!
//! Tiles are stored BlockTile-major (64×64, one thread block), then
//! TensorCoreTile-major (16×16, one `mma` operand), and the four 8×8
//! FragTiles inside a TensorCoreTile in **column-major** order — mirroring
//! the Ra0–Ra3 operand register sequence so no runtime coordinate
//! transformation is needed.
//!
//! Value buffers are concatenated per BlockTile and padded to 128-bit
//! boundaries *at BlockTile granularity* (the offline padding of §4.3.1),
//! with one offset record per BlockTile. Per-FragTile offsets are recovered
//! at runtime from popcounts of the preceding indicator masks, so they cost
//! no storage.

use super::tile::EncodedTile;
use super::{BLOCK_DIM, FRAG_DIM, FRAG_ELEMS, TC_DIM};
use serde::{Deserialize, Serialize};
use zipserv_bf16::{Bf16, Matrix};

/// Number of bytes the value buffers are padded to per BlockTile (128-bit
/// vectorized `LDGSTS.128` alignment).
pub const PAD_BYTES: usize = 16;

/// The hierarchical sequence of FragTile coordinates for a `rows × cols`
/// matrix (both multiples of 8), grouped by BlockTile.
///
/// Each inner vector is one BlockTile's FragTiles in decode order.
pub fn block_sequence(rows: usize, cols: usize) -> Vec<Vec<(usize, usize)>> {
    assert!(
        rows.is_multiple_of(FRAG_DIM) && cols.is_multiple_of(FRAG_DIM),
        "not tileable"
    );
    let mut blocks = Vec::new();
    let frag_per_tc = TC_DIM / FRAG_DIM; // 2
    for br in (0..rows).step_by(BLOCK_DIM) {
        for bc in (0..cols).step_by(BLOCK_DIM) {
            let mut tiles = Vec::new();
            let block_rows = BLOCK_DIM.min(rows - br);
            let block_cols = BLOCK_DIM.min(cols - bc);
            for tr16 in (0..block_rows).step_by(TC_DIM) {
                for tc16 in (0..block_cols).step_by(TC_DIM) {
                    let tc_rows = TC_DIM.min(block_rows - tr16);
                    let tc_cols = TC_DIM.min(block_cols - tc16);
                    // Column-major FragTiles within the TensorCoreTile.
                    for fc in 0..(tc_cols / FRAG_DIM).max(1).min(frag_per_tc) {
                        for fr in 0..(tc_rows / FRAG_DIM).max(1).min(frag_per_tc) {
                            let r = br + tr16 + fr * FRAG_DIM;
                            let c = bc + tc16 + fc * FRAG_DIM;
                            if r < rows && c < cols {
                                tiles.push((r / FRAG_DIM, c / FRAG_DIM));
                            }
                        }
                    }
                }
            }
            blocks.push(tiles);
        }
    }
    blocks
}

/// The flattened FragTile sequence (all blocks concatenated).
pub fn tile_sequence(rows: usize, cols: usize) -> Vec<(usize, usize)> {
    block_sequence(rows, cols).into_iter().flatten().collect()
}

/// Storage-size breakdown of a compressed matrix.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TbeStats {
    /// Original BF16 bytes.
    pub raw_bytes: usize,
    /// Triple-bitmap bytes (24 per FragTile).
    pub bitmap_bytes: usize,
    /// PackedSignMantissa bytes including per-block padding.
    pub high_freq_bytes: usize,
    /// FullValue bytes including per-block padding.
    pub fallback_bytes: usize,
    /// Offset-array bytes (8 per BlockTile).
    pub offset_bytes: usize,
    /// Number of in-window elements.
    pub high_freq_elems: usize,
    /// Number of fallback elements.
    pub fallback_elems: usize,
}

impl TbeStats {
    /// Total compressed bytes (all four arrays plus a small fixed header).
    pub fn compressed_bytes(&self) -> usize {
        self.bitmap_bytes + self.high_freq_bytes + self.fallback_bytes + self.offset_bytes + 32
    }

    /// Compression ratio `raw / compressed`.
    pub fn ratio(&self) -> f64 {
        self.raw_bytes as f64 / self.compressed_bytes() as f64
    }

    /// Compressed size as a percentage of raw (the paper reports 70–72%).
    pub fn size_percent(&self) -> f64 {
        100.0 * self.compressed_bytes() as f64 / self.raw_bytes as f64
    }

    /// Average storage bits per weight element.
    pub fn bits_per_element(&self) -> f64 {
        8.0 * self.compressed_bytes() as f64 / (self.high_freq_elems + self.fallback_elems) as f64
    }

    /// Fraction of elements on the high-frequency path (paper: ~96%).
    pub fn coverage(&self) -> f64 {
        let total = self.high_freq_elems + self.fallback_elems;
        if total == 0 {
            0.0
        } else {
            self.high_freq_elems as f64 / total as f64
        }
    }
}

/// A view of one FragTile's slices inside a [`TbeMatrix`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TileView<'a> {
    /// The three bit planes.
    pub bitmaps: &'a [u64; 3],
    /// This tile's slice of the PackedSignMantissa array.
    pub high_freq: &'a [u8],
    /// This tile's slice of the FullValue array.
    pub fallback: &'a [u16],
}

/// Per-BlockTile offsets into the two value arrays.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct BlockOffset {
    /// Byte offset of the block's PackedSignMantissa data.
    pub high_freq: u32,
    /// Element offset of the block's FullValue data.
    pub fallback: u32,
}

/// A TCA-TBE compressed weight matrix.
///
/// Produced by [`crate::TbeCompressor::compress`]; decompression and the
/// fused GEMM consume it through [`TbeMatrix::tile_view`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TbeMatrix {
    rows: usize,
    cols: usize,
    base_exp: u8,
    /// Per-FragTile bit planes, in hierarchical sequence order.
    bitmaps: Vec<[u64; 3]>,
    /// PackedSignMantissa array (padded per block).
    high_freq: Vec<u8>,
    /// FullValue array (padded per block).
    fallback: Vec<u16>,
    /// Per-BlockTile offsets.
    block_offsets: Vec<BlockOffset>,
    /// FragTiles per block (tiles at the matrix edge make ragged blocks).
    tiles_per_block: Vec<u32>,
    /// Cached per-tile offsets (derived, not counted as storage).
    #[serde(skip)]
    tile_offsets: Vec<(u32, u32)>,
}

impl TbeMatrix {
    /// Assembles a matrix from per-tile encodings in hierarchical order.
    ///
    /// This is the compressor back-end; use [`crate::TbeCompressor`] for the
    /// public entry point.
    pub(crate) fn assemble(
        rows: usize,
        cols: usize,
        base_exp: u8,
        blocks: &[Vec<EncodedTile>],
    ) -> Self {
        let mut bitmaps = Vec::new();
        let mut high_freq = Vec::new();
        let mut fallback: Vec<u16> = Vec::new();
        let mut block_offsets = Vec::with_capacity(blocks.len());
        let mut tiles_per_block = Vec::with_capacity(blocks.len());
        let mut tile_offsets = Vec::new();

        for block in blocks {
            block_offsets.push(BlockOffset {
                high_freq: high_freq.len() as u32,
                fallback: fallback.len() as u32,
            });
            tiles_per_block.push(block.len() as u32);
            for tile in block {
                tile_offsets.push((high_freq.len() as u32, fallback.len() as u32));
                bitmaps.push(tile.bitmaps);
                high_freq.extend_from_slice(&tile.high_freq);
                fallback.extend_from_slice(&tile.fallback);
            }
            // 128-bit alignment padding at block granularity.
            while high_freq.len() % PAD_BYTES != 0 {
                high_freq.push(0);
            }
            while !(fallback.len() * 2).is_multiple_of(PAD_BYTES) {
                fallback.push(0);
            }
        }

        TbeMatrix {
            rows,
            cols,
            base_exp,
            bitmaps,
            high_freq,
            fallback,
            block_offsets,
            tiles_per_block,
            tile_offsets,
        }
    }

    /// Recomputes the derived per-tile offset cache (e.g., after
    /// deserialization, where it is skipped).
    pub fn rebuild_offsets(&mut self) {
        let mut tile_offsets = Vec::with_capacity(self.bitmaps.len());
        let mut seq = 0usize;
        for (b, &count) in self.tiles_per_block.iter().enumerate() {
            let mut hf = self.block_offsets[b].high_freq;
            let mut fb = self.block_offsets[b].fallback;
            for _ in 0..count {
                tile_offsets.push((hf, fb));
                let ind = self.bitmaps[seq][0] | self.bitmaps[seq][1] | self.bitmaps[seq][2];
                let n_hf = ind.count_ones();
                hf += n_hf;
                fb += FRAG_ELEMS as u32 - n_hf;
                seq += 1;
            }
        }
        self.tile_offsets = tile_offsets;
    }

    /// Number of rows of the original matrix.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns of the original matrix.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// The global base exponent (`min(window) − 1`).
    pub fn base_exp(&self) -> u8 {
        self.base_exp
    }

    /// Number of FragTiles.
    pub fn tile_count(&self) -> usize {
        self.bitmaps.len()
    }

    /// Number of BlockTiles.
    pub fn block_count(&self) -> usize {
        self.block_offsets.len()
    }

    /// A view of the FragTile at hierarchical sequence index `seq`.
    ///
    /// # Panics
    ///
    /// Panics if `seq` is out of range or the offset cache is missing
    /// (call [`TbeMatrix::rebuild_offsets`] after deserializing).
    pub fn tile_view(&self, seq: usize) -> TileView<'_> {
        let (hf, fb) = self.tile_offsets[seq];
        let ind = self.bitmaps[seq][0] | self.bitmaps[seq][1] | self.bitmaps[seq][2];
        let n_hf = ind.count_ones() as usize;
        let n_fb = FRAG_ELEMS - n_hf;
        TileView {
            bitmaps: &self.bitmaps[seq],
            high_freq: &self.high_freq[hf as usize..hf as usize + n_hf],
            fallback: &self.fallback[fb as usize..fb as usize + n_fb],
        }
    }

    /// Storage statistics.
    pub fn stats(&self) -> TbeStats {
        let high_freq_elems: usize = self
            .bitmaps
            .iter()
            .map(|b| (b[0] | b[1] | b[2]).count_ones() as usize)
            .sum();
        let total = self.tile_count() * FRAG_ELEMS;
        TbeStats {
            raw_bytes: 2 * self.rows * self.cols,
            bitmap_bytes: self.bitmaps.len() * 24,
            high_freq_bytes: self.high_freq.len(),
            fallback_bytes: self.fallback.len() * 2,
            offset_bytes: self.block_offsets.len() * 8,
            high_freq_elems,
            fallback_elems: total - high_freq_elems,
        }
    }

    /// Convenience: the compression ratio from [`TbeStats::ratio`].
    pub fn compression_ratio(&self) -> f64 {
        self.stats().ratio()
    }

    /// Decompresses the whole matrix bit-exactly (delegates to
    /// [`crate::decompress::decompress`]).
    pub fn decompress(&self) -> Matrix<Bf16> {
        crate::decompress::decompress(self)
    }

    /// Borrows the four storage arrays (for serialization).
    #[allow(clippy::type_complexity)]
    pub(crate) fn raw_parts(&self) -> (&[[u64; 3]], &[u8], &[u16], Vec<(BlockOffset, u32)>) {
        let blocks = self
            .block_offsets
            .iter()
            .zip(self.tiles_per_block.iter())
            .map(|(&o, &t)| (o, t))
            .collect();
        (&self.bitmaps, &self.high_freq, &self.fallback, blocks)
    }

    /// Reassembles a matrix from its storage arrays (deserialization),
    /// validating structural consistency and rebuilding the offset cache.
    pub(crate) fn from_raw_parts(
        rows: usize,
        cols: usize,
        base_exp: u8,
        bitmaps: Vec<[u64; 3]>,
        high_freq: Vec<u8>,
        fallback: Vec<u16>,
        blocks: Vec<(BlockOffset, u32)>,
    ) -> Result<Self, crate::error::TbeError> {
        const E: crate::error::TbeError =
            crate::error::TbeError::Corrupt("inconsistent TCA-TBE arrays");
        if !rows.is_multiple_of(FRAG_DIM) || !cols.is_multiple_of(FRAG_DIM) {
            return Err(crate::error::TbeError::NotTileable { rows, cols });
        }
        let expected_tiles = (rows / FRAG_DIM) * (cols / FRAG_DIM);
        if bitmaps.len() != expected_tiles {
            return Err(E);
        }
        let tile_total: u64 = blocks.iter().map(|&(_, t)| t as u64).sum();
        if tile_total as usize != expected_tiles {
            return Err(E);
        }
        for &(off, _) in &blocks {
            if off.high_freq as usize > high_freq.len() || off.fallback as usize > fallback.len() {
                return Err(E);
            }
        }
        let mut m = TbeMatrix {
            rows,
            cols,
            base_exp,
            bitmaps,
            high_freq,
            fallback,
            block_offsets: blocks.iter().map(|&(o, _)| o).collect(),
            tiles_per_block: blocks.iter().map(|&(_, t)| t).collect(),
            tile_offsets: Vec::new(),
        };
        m.rebuild_offsets();
        // Verify the last tile's slice stays in bounds.
        if let Some(&(hf, fb)) = m.tile_offsets.last() {
            let ind = m.bitmaps[expected_tiles - 1];
            let n_hf = (ind[0] | ind[1] | ind[2]).count_ones() as usize;
            if hf as usize + n_hf > m.high_freq.len()
                || fb as usize + (FRAG_ELEMS - n_hf) > m.fallback.len()
            {
                return Err(E);
            }
        }
        Ok(m)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sequence_covers_all_tiles_once() {
        for (rows, cols) in [(8, 8), (64, 64), (128, 64), (72, 88), (16, 160)] {
            let seq = tile_sequence(rows, cols);
            assert_eq!(seq.len(), (rows / 8) * (cols / 8), "{rows}x{cols}");
            let mut seen = std::collections::HashSet::new();
            for &(tr, tc) in &seq {
                assert!(tr < rows / 8 && tc < cols / 8);
                assert!(seen.insert((tr, tc)), "duplicate tile ({tr},{tc})");
            }
        }
    }

    #[test]
    fn fragtiles_column_major_within_tensor_core_tile() {
        // A 16×16 matrix is one TensorCoreTile: order must be
        // (0,0), (1,0), (0,1), (1,1) — column-major 2×2.
        let seq = tile_sequence(16, 16);
        assert_eq!(seq, vec![(0, 0), (1, 0), (0, 1), (1, 1)]);
    }

    #[test]
    fn block_grouping_sizes() {
        // 128×128 = 4 BlockTiles of 64 FragTiles each.
        let blocks = block_sequence(128, 128);
        assert_eq!(blocks.len(), 4);
        for b in &blocks {
            assert_eq!(b.len(), 64);
        }
        // Ragged 72×64: two blocks (64 rows + 8 rows).
        let blocks = block_sequence(72, 64);
        assert_eq!(blocks.len(), 2);
        assert_eq!(blocks[0].len(), 64);
        assert_eq!(blocks[1].len(), 8);
    }

    #[test]
    fn blocktile_iterates_tensor_core_tiles_row_major() {
        // In a 64×64 block the first TT covers FragTiles (0..2, 0..2); the
        // second TT starts at FragTile column 2.
        let seq = tile_sequence(64, 64);
        assert_eq!(&seq[..4], &[(0, 0), (1, 0), (0, 1), (1, 1)]);
        assert_eq!(&seq[4..8], &[(0, 2), (1, 2), (0, 3), (1, 3)]);
    }

    #[test]
    fn stats_math() {
        let s = TbeStats {
            raw_bytes: 1000,
            bitmap_bytes: 100,
            high_freq_bytes: 300,
            fallback_bytes: 50,
            offset_bytes: 8,
            high_freq_elems: 450,
            fallback_elems: 50,
        };
        assert_eq!(s.compressed_bytes(), 100 + 300 + 50 + 8 + 32);
        assert!((s.ratio() - 1000.0 / 490.0).abs() < 1e-12);
        assert!((s.coverage() - 0.9).abs() < 1e-12);
        assert!((s.bits_per_element() - 8.0 * 490.0 / 500.0).abs() < 1e-12);
    }
}

//! On-disk serialization of compressed models.
//!
//! The offline compressor writes `.ztbe` blobs that the inference engine
//! maps at load time (§4.1: "the resulting compressed model is then loaded
//! onto the GPU"). The format is a little-endian sectioned container:
//!
//! ```text
//! magic "ZTBE" | version u16 | base_exp u8 | codec u8
//! rows u64 | cols u64
//! n_tiles u64    | 3 x u64 bitmaps per tile
//! n_hf u64       | u8 payload (padded as stored)   [codec = Raw]
//! n_wire u64     | planar-rANS wire frame           [codec = PlanarRans]
//! n_fb u64       | u16 payload
//! n_blocks u64   | (u32 hf, u32 fb, u32 tiles) per block
//! checksum u64   (FNV-1a over everything before it)
//! ```
//!
//! Version 1 blobs fixed the codec byte at 0 (it was a pad); version 2
//! makes it a [`SectionCodec`] selector for the high-frequency mantissa
//! section — the one bulk-byte section whose skewed distribution the
//! paper's entropy stage targets. [`from_bytes`] accepts both versions;
//! [`to_bytes`] keeps writing version 1 so existing consumers and fixtures
//! are untouched, and [`to_bytes_with_codec`] opts into version 2.

use super::layout::{BlockOffset, TbeMatrix};
use crate::error::TbeError;
use bytes::{Buf, BufMut, Bytes, BytesMut};
use zipserv_entropy::rans::PlanarRansBlob;

const MAGIC: &[u8; 4] = b"ZTBE";
const VERSION: u16 = 1;
/// Container version that carries a [`SectionCodec`] byte.
const VERSION_CODEC: u16 = 2;

/// How the high-frequency mantissa section is stored inside a `.ztbe`
/// container.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SectionCodec {
    /// Bytes stored as-is (the version-1 layout).
    #[default]
    Raw,
    /// Planar multi-stream rANS ([`PlanarRansBlob`]): smaller on disk, and
    /// the blob's own frame checksum rides inside the container, so a
    /// payload flip is caught even if the outer checksum is recomputed by
    /// an attacker or a buggy rewriter.
    PlanarRans,
}

impl SectionCodec {
    fn to_byte(self) -> u8 {
        match self {
            SectionCodec::Raw => 0,
            SectionCodec::PlanarRans => 1,
        }
    }

    fn from_byte(b: u8) -> Result<Self, TbeError> {
        match b {
            0 => Ok(SectionCodec::Raw),
            1 => Ok(SectionCodec::PlanarRans),
            _ => Err(TbeError::Corrupt("unknown section codec")),
        }
    }
}

fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf29ce484222325u64;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

/// Serializes a compressed matrix to its on-disk representation
/// (version 1, raw sections — see [`to_bytes_with_codec`] for the
/// entropy-coded variant).
pub fn to_bytes(m: &TbeMatrix) -> Bytes {
    to_bytes_with_codec(m, SectionCodec::Raw)
}

/// Serializes a compressed matrix, storing the high-frequency mantissa
/// section under `codec`. [`SectionCodec::Raw`] writes the historical
/// version-1 container byte for byte; any other codec writes version 2.
pub fn to_bytes_with_codec(m: &TbeMatrix, codec: SectionCodec) -> Bytes {
    let mut out = BytesMut::new();
    out.put_slice(MAGIC);
    out.put_u16_le(match codec {
        SectionCodec::Raw => VERSION,
        SectionCodec::PlanarRans => VERSION_CODEC,
    });
    out.put_u8(m.base_exp());
    out.put_u8(codec.to_byte());
    out.put_u64_le(m.rows() as u64);
    out.put_u64_le(m.cols() as u64);

    let (bitmaps, high_freq, fallback, blocks) = m.raw_parts();
    out.put_u64_le(bitmaps.len() as u64);
    for planes in bitmaps {
        for &p in planes {
            out.put_u64_le(p);
        }
    }
    match codec {
        SectionCodec::Raw => {
            out.put_u64_le(high_freq.len() as u64);
            out.put_slice(high_freq);
        }
        SectionCodec::PlanarRans => {
            // An empty section has nothing to entropy-code (and the codec
            // rejects empty input); a zero length marks it.
            if high_freq.is_empty() {
                out.put_u64_le(0);
            } else {
                let wire = PlanarRansBlob::compress(high_freq, PlanarRansBlob::DEFAULT_STREAMS)
                    .expect("non-empty section always compresses")
                    .to_wire();
                out.put_u64_le(wire.len() as u64);
                out.put_slice(&wire);
            }
        }
    }
    out.put_u64_le(fallback.len() as u64);
    for &v in fallback {
        out.put_u16_le(v);
    }
    out.put_u64_le(blocks.len() as u64);
    for (off, tiles) in blocks {
        out.put_u32_le(off.high_freq);
        out.put_u32_le(off.fallback);
        out.put_u32_le(tiles);
    }
    let checksum = fnv1a(&out);
    out.put_u64_le(checksum);
    out.freeze()
}

/// Deserializes a `.ztbe` blob.
///
/// # Errors
///
/// Returns [`TbeError::Corrupt`] on a bad magic, version, truncated
/// payload or checksum mismatch.
pub fn from_bytes(bytes: &[u8]) -> Result<TbeMatrix, TbeError> {
    const E: TbeError = TbeError::Corrupt("truncated TCA-TBE blob");
    if bytes.len() < 8 + 16 + 8 {
        return Err(E);
    }
    let (body, tail) = bytes.split_at(bytes.len() - 8);
    let want = u64::from_le_bytes(tail.try_into().expect("8 bytes"));
    if fnv1a(body) != want {
        return Err(TbeError::Corrupt("checksum mismatch"));
    }
    let mut buf = body;
    let mut take = |n: usize| -> Result<&[u8], TbeError> {
        if buf.remaining() < n {
            return Err(E);
        }
        let (head, rest) = buf.split_at(n);
        buf = rest;
        Ok(head)
    };

    if take(4)? != MAGIC {
        return Err(TbeError::Corrupt("bad magic"));
    }
    let version = u16::from_le_bytes(take(2)?.try_into().expect("2"));
    if version != VERSION && version != VERSION_CODEC {
        return Err(TbeError::Corrupt("unsupported version"));
    }
    let base_exp = take(1)?[0];
    let codec_byte = take(1)?[0];
    // Version 1 wrote a zero pad where version 2 keeps the codec; a
    // nonzero byte there is corruption, not a codec.
    let codec = if version == VERSION_CODEC {
        SectionCodec::from_byte(codec_byte)?
    } else if codec_byte == 0 {
        SectionCodec::Raw
    } else {
        return Err(TbeError::Corrupt("nonzero pad in version-1 blob"));
    };
    let rows = u64::from_le_bytes(take(8)?.try_into().expect("8")) as usize;
    let cols = u64::from_le_bytes(take(8)?.try_into().expect("8")) as usize;

    let n_tiles = u64::from_le_bytes(take(8)?.try_into().expect("8")) as usize;
    let mut bitmaps = Vec::with_capacity(n_tiles);
    for _ in 0..n_tiles {
        let mut planes = [0u64; 3];
        for p in planes.iter_mut() {
            *p = u64::from_le_bytes(take(8)?.try_into().expect("8"));
        }
        bitmaps.push(planes);
    }
    let n_hf = u64::from_le_bytes(take(8)?.try_into().expect("8")) as usize;
    let high_freq = match codec {
        SectionCodec::Raw => take(n_hf)?.to_vec(),
        SectionCodec::PlanarRans if n_hf == 0 => Vec::new(),
        SectionCodec::PlanarRans => PlanarRansBlob::from_wire(take(n_hf)?)
            .map_err(|_| TbeError::Corrupt("malformed entropy-coded section"))?
            .decompress()
            .map_err(|_| TbeError::Corrupt("entropy-coded section failed its checksum"))?,
    };
    let n_fb = u64::from_le_bytes(take(8)?.try_into().expect("8")) as usize;
    let fb_raw = take(n_fb * 2)?;
    let fallback: Vec<u16> = fb_raw
        .chunks_exact(2)
        .map(|c| u16::from_le_bytes(c.try_into().expect("2")))
        .collect();
    let n_blocks = u64::from_le_bytes(take(8)?.try_into().expect("8")) as usize;
    let mut blocks = Vec::with_capacity(n_blocks);
    for _ in 0..n_blocks {
        let hf = u32::from_le_bytes(take(4)?.try_into().expect("4"));
        let fb = u32::from_le_bytes(take(4)?.try_into().expect("4"));
        let tiles = u32::from_le_bytes(take(4)?.try_into().expect("4"));
        blocks.push((
            BlockOffset {
                high_freq: hf,
                fallback: fb,
            },
            tiles,
        ));
    }
    TbeMatrix::from_raw_parts(rows, cols, base_exp, bitmaps, high_freq, fallback, blocks)
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use crate::compress::TbeCompressor;
    use zipserv_bf16::gen::WeightGen;

    #[test]
    fn roundtrip() {
        let w = WeightGen::new(0.018).seed(55).matrix(128, 192);
        let tbe = TbeCompressor::new().compress(&w).unwrap();
        let bytes = to_bytes(&tbe);
        let back = from_bytes(&bytes).unwrap();
        assert_eq!(back, tbe);
        assert_eq!(back.decompress(), w);
    }

    #[test]
    fn serialized_size_tracks_stats() {
        let w = WeightGen::new(0.018).seed(56).matrix(256, 256);
        let tbe = TbeCompressor::new().compress(&w).unwrap();
        let bytes = to_bytes(&tbe);
        let stats = tbe.stats().compressed_bytes();
        let rel = (bytes.len() as f64 - stats as f64).abs() / stats as f64;
        assert!(rel < 0.02, "file {} vs stats {stats}", bytes.len());
    }

    #[test]
    fn raw_codec_is_byte_identical_to_version_one() {
        let w = WeightGen::new(0.018).seed(58).matrix(128, 128);
        let tbe = TbeCompressor::new().compress(&w).unwrap();
        assert_eq!(
            to_bytes(&tbe),
            to_bytes_with_codec(&tbe, SectionCodec::Raw),
            "Raw must keep writing the historical version-1 container"
        );
    }

    #[test]
    fn planar_rans_codec_roundtrips_and_shrinks() {
        let w = WeightGen::new(0.018).seed(59).matrix(256, 256);
        let tbe = TbeCompressor::new().compress(&w).unwrap();
        let raw = to_bytes(&tbe);
        let coded = to_bytes_with_codec(&tbe, SectionCodec::PlanarRans);
        let back = from_bytes(&coded).unwrap();
        assert_eq!(back, tbe);
        assert_eq!(back.decompress(), w);
        // The section's mantissa bytes are near-uniform on Gaussian
        // weights, so the wire frame's fixed costs (frequency table,
        // per-stream states and lengths) are all the codec can lose here:
        // the container must stay within ~2% of raw. Skewed real-model
        // sections are where the codec pays off; selecting it is a
        // per-deployment call, not a format default.
        assert!(
            coded.len() as f64 <= raw.len() as f64 * 1.02,
            "entropy-coded container overhead exceeds its fixed costs: {} vs {}",
            coded.len(),
            raw.len()
        );
    }

    #[test]
    fn inner_checksum_catches_payload_flip_behind_a_valid_outer_checksum() {
        let w = WeightGen::new(0.018).seed(60).matrix(128, 128);
        let tbe = TbeCompressor::new().compress(&w).unwrap();
        let mut bytes = to_bytes_with_codec(&tbe, SectionCodec::PlanarRans).to_vec();
        // Flip a byte deep inside the entropy-coded payload, then re-fix
        // the outer FNV so the container-level integrity check passes —
        // the situation a buggy rewriter (or an attacker recomputing the
        // trailer) produces. Only the rANS frame checksum riding inside
        // the section can catch it.
        let hf_region = 4 + 2 + 2 + 16; // magic + version + exp/codec + dims
        let mid = hf_region + (bytes.len() - hf_region) / 3;
        bytes[mid] ^= 0x08;
        let body_len = bytes.len() - 8;
        let fixed = fnv1a(&bytes[..body_len]);
        bytes[body_len..].copy_from_slice(&fixed.to_le_bytes());
        let err = from_bytes(&bytes).expect_err("tampered blob must not parse");
        assert!(matches!(err, TbeError::Corrupt(_)));
    }

    #[test]
    fn corruption_detected() {
        let w = WeightGen::new(0.018).seed(57).matrix(64, 64);
        let tbe = TbeCompressor::new().compress(&w).unwrap();
        let mut bytes = to_bytes(&tbe).to_vec();
        // Flip a payload bit.
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x40;
        assert!(matches!(from_bytes(&bytes), Err(TbeError::Corrupt(_))));
        // Truncate.
        assert!(matches!(
            from_bytes(&to_bytes(&tbe)[..20]),
            Err(TbeError::Corrupt(_))
        ));
        // Bad magic.
        let mut bad = to_bytes(&tbe).to_vec();
        bad[0] = b'X';
        assert!(from_bytes(&bad).is_err());
    }
}

//! On-disk serialization of compressed models.
//!
//! The offline compressor writes `.ztbe` blobs that the inference engine
//! maps at load time (§4.1: "the resulting compressed model is then loaded
//! onto the GPU"). The format is a little-endian sectioned container:
//!
//! ```text
//! magic "ZTBE" | version u16 | base_exp u8 | pad u8
//! rows u64 | cols u64
//! n_tiles u64    | 3 x u64 bitmaps per tile
//! n_hf u64       | u8 payload (padded as stored)
//! n_fb u64       | u16 payload
//! n_blocks u64   | (u32 hf, u32 fb, u32 tiles) per block
//! checksum u64   (FNV-1a over everything before it)
//! ```

use super::layout::{BlockOffset, TbeMatrix};
use crate::error::TbeError;
use bytes::{Buf, BufMut, Bytes, BytesMut};

const MAGIC: &[u8; 4] = b"ZTBE";
const VERSION: u16 = 1;

fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf29ce484222325u64;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

/// Serializes a compressed matrix to its on-disk representation.
pub fn to_bytes(m: &TbeMatrix) -> Bytes {
    let mut out = BytesMut::new();
    out.put_slice(MAGIC);
    out.put_u16_le(VERSION);
    out.put_u8(m.base_exp());
    out.put_u8(0);
    out.put_u64_le(m.rows() as u64);
    out.put_u64_le(m.cols() as u64);

    let (bitmaps, high_freq, fallback, blocks) = m.raw_parts();
    out.put_u64_le(bitmaps.len() as u64);
    for planes in bitmaps {
        for &p in planes {
            out.put_u64_le(p);
        }
    }
    out.put_u64_le(high_freq.len() as u64);
    out.put_slice(high_freq);
    out.put_u64_le(fallback.len() as u64);
    for &v in fallback {
        out.put_u16_le(v);
    }
    out.put_u64_le(blocks.len() as u64);
    for (off, tiles) in blocks {
        out.put_u32_le(off.high_freq);
        out.put_u32_le(off.fallback);
        out.put_u32_le(tiles);
    }
    let checksum = fnv1a(&out);
    out.put_u64_le(checksum);
    out.freeze()
}

/// Deserializes a `.ztbe` blob.
///
/// # Errors
///
/// Returns [`TbeError::Corrupt`] on a bad magic, version, truncated
/// payload or checksum mismatch.
pub fn from_bytes(bytes: &[u8]) -> Result<TbeMatrix, TbeError> {
    const E: TbeError = TbeError::Corrupt("truncated TCA-TBE blob");
    if bytes.len() < 8 + 16 + 8 {
        return Err(E);
    }
    let (body, tail) = bytes.split_at(bytes.len() - 8);
    let want = u64::from_le_bytes(tail.try_into().expect("8 bytes"));
    if fnv1a(body) != want {
        return Err(TbeError::Corrupt("checksum mismatch"));
    }
    let mut buf = body;
    let mut take = |n: usize| -> Result<&[u8], TbeError> {
        if buf.remaining() < n {
            return Err(E);
        }
        let (head, rest) = buf.split_at(n);
        buf = rest;
        Ok(head)
    };

    if take(4)? != MAGIC {
        return Err(TbeError::Corrupt("bad magic"));
    }
    let version = u16::from_le_bytes(take(2)?.try_into().expect("2"));
    if version != VERSION {
        return Err(TbeError::Corrupt("unsupported version"));
    }
    let base_exp = take(1)?[0];
    take(1)?; // pad
    let rows = u64::from_le_bytes(take(8)?.try_into().expect("8")) as usize;
    let cols = u64::from_le_bytes(take(8)?.try_into().expect("8")) as usize;

    let n_tiles = u64::from_le_bytes(take(8)?.try_into().expect("8")) as usize;
    let mut bitmaps = Vec::with_capacity(n_tiles);
    for _ in 0..n_tiles {
        let mut planes = [0u64; 3];
        for p in planes.iter_mut() {
            *p = u64::from_le_bytes(take(8)?.try_into().expect("8"));
        }
        bitmaps.push(planes);
    }
    let n_hf = u64::from_le_bytes(take(8)?.try_into().expect("8")) as usize;
    let high_freq = take(n_hf)?.to_vec();
    let n_fb = u64::from_le_bytes(take(8)?.try_into().expect("8")) as usize;
    let fb_raw = take(n_fb * 2)?;
    let fallback: Vec<u16> = fb_raw
        .chunks_exact(2)
        .map(|c| u16::from_le_bytes(c.try_into().expect("2")))
        .collect();
    let n_blocks = u64::from_le_bytes(take(8)?.try_into().expect("8")) as usize;
    let mut blocks = Vec::with_capacity(n_blocks);
    for _ in 0..n_blocks {
        let hf = u32::from_le_bytes(take(4)?.try_into().expect("4"));
        let fb = u32::from_le_bytes(take(4)?.try_into().expect("4"));
        let tiles = u32::from_le_bytes(take(4)?.try_into().expect("4"));
        blocks.push((
            BlockOffset {
                high_freq: hf,
                fallback: fb,
            },
            tiles,
        ));
    }
    TbeMatrix::from_raw_parts(rows, cols, base_exp, bitmaps, high_freq, fallback, blocks)
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use crate::compress::TbeCompressor;
    use zipserv_bf16::gen::WeightGen;

    #[test]
    fn roundtrip() {
        let w = WeightGen::new(0.018).seed(55).matrix(128, 192);
        let tbe = TbeCompressor::new().compress(&w).unwrap();
        let bytes = to_bytes(&tbe);
        let back = from_bytes(&bytes).unwrap();
        assert_eq!(back, tbe);
        assert_eq!(back.decompress(), w);
    }

    #[test]
    fn serialized_size_tracks_stats() {
        let w = WeightGen::new(0.018).seed(56).matrix(256, 256);
        let tbe = TbeCompressor::new().compress(&w).unwrap();
        let bytes = to_bytes(&tbe);
        let stats = tbe.stats().compressed_bytes();
        let rel = (bytes.len() as f64 - stats as f64).abs() / stats as f64;
        assert!(rel < 0.02, "file {} vs stats {stats}", bytes.len());
    }

    #[test]
    fn corruption_detected() {
        let w = WeightGen::new(0.018).seed(57).matrix(64, 64);
        let tbe = TbeCompressor::new().compress(&w).unwrap();
        let mut bytes = to_bytes(&tbe).to_vec();
        // Flip a payload bit.
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x40;
        assert!(matches!(from_bytes(&bytes), Err(TbeError::Corrupt(_))));
        // Truncate.
        assert!(matches!(
            from_bytes(&to_bytes(&tbe)[..20]),
            Err(TbeError::Corrupt(_))
        ));
        // Bad magic.
        let mut bad = to_bytes(&tbe).to_vec();
        bad[0] = b'X';
        assert!(from_bytes(&bad).is_err());
    }
}

//! The fused decompression-GEMM kernel: **ZipGEMM** (§4.3).
//!
//! Two faces of the same kernel live here:
//!
//! * the *functional* kernels — [`ZipGemm::multiply`] (blocked, serial),
//!   [`ZipGemm::multiply_parallel`] (blocked, row strips across threads) and
//!   [`ZipGemm::multiply_reference`] (the naive triple loop) — compute
//!   `Y = W · X` directly from the compressed TCA-TBE weights, decoding each
//!   FragTile into "registers" on the fly (never materializing the full
//!   weight matrix) with FP32 accumulation in ascending-`k` order, so all
//!   three are bitwise identical to a dense GEMM over the decompressed
//!   weights;
//! * [`ZipGemm::kernel_profile`] — the *performance* kernel: the cost sheet
//!   (DRAM, ALU, Tensor-Core, grid, pipeline mode) handed to the GPU model.
//!
//! The blocked paths share the internal `microkernel` machinery: each
//! compressed tile is decoded **once per pass** into an `f32` scratch panel,
//! the activation matrix is pre-converted once, and a register-blocked
//! `FRAG_DIM × NB` micro-kernel sweeps `N`-blocks so no BF16 conversion or
//! bounds-checked indexing survives in the innermost loop.

mod microkernel;

use crate::decompress::{decode_tile_lanewise, DecodeCost, DecodePath};
use crate::format::layout::TbeMatrix;
use crate::format::{FRAG_DIM, FRAG_ELEMS};
use microkernel::{compute_strip, ActPanel, SeqMap};
use zipserv_bf16::{Bf16, Matrix};
use zipserv_gpu_sim::instr::{InstrKind, InstrMix};
use zipserv_gpu_sim::kernel::{ExecutionMode, KernelProfile};
use zipserv_gpu_sim::memory::{DramTraffic, SharedMemTraffic};
use zipserv_gpu_sim::occupancy::LaunchGrid;

/// BlockTile dimensions of the fixed ZipGEMM launch configuration.
pub const TILE_M: u64 = 64;
/// BlockTile width along `N`.
pub const TILE_N: u64 = 64;

/// The fused kernel.
#[derive(Debug, Clone)]
pub struct ZipGemm {
    split_k: u64,
}

impl Default for ZipGemm {
    fn default() -> Self {
        Self::new()
    }
}

impl ZipGemm {
    /// A kernel with the default split-K factor of 2.
    pub fn new() -> Self {
        ZipGemm { split_k: 2 }
    }

    /// Overrides the split-K factor (builder style).
    ///
    /// # Panics
    ///
    /// Panics if `split_k == 0`.
    pub fn with_split_k(mut self, split_k: u64) -> Self {
        assert!(split_k > 0, "split-K must be nonzero");
        self.split_k = split_k;
        self
    }

    /// Computes `Y = W · X` from compressed weights, bit-exactly.
    ///
    /// `W` is the `M×K` compressed weight matrix, `X` a dense `K×N`
    /// activation matrix; the result accumulates in FP32.
    ///
    /// This is the blocked hot path: per-tile decode caching plus the
    /// register-blocked micro-kernel. It produces the same bits as
    /// [`ZipGemm::multiply_reference`] (and as a dense GEMM over the
    /// decompressed weights), just faster.
    ///
    /// # Panics
    ///
    /// Panics if `x.rows() != w.cols()`.
    pub fn multiply(&self, w: &TbeMatrix, x: &Matrix<Bf16>) -> Matrix<f32> {
        assert_eq!(x.rows(), w.cols(), "activation rows must match weight cols");
        let (m, k, n) = (w.rows(), w.cols(), x.cols());
        let mut y = Matrix::<f32>::zeros(m, n);
        if m == 0 || n == 0 {
            return y;
        }
        let seq = SeqMap::new(m, k);
        let x = ActPanel::pack(x);
        compute_strip(w, &seq, &x, 0, m / FRAG_DIM, y.as_mut_slice());
        y
    }

    /// The naive reference kernel: the original triple loop, kept as the
    /// correctness and performance baseline the blocked paths are measured
    /// against.
    ///
    /// Decodes each tile on the fly and walks every output element with
    /// bounds-checked indexing; activations are still pre-widened once (the
    /// per-FMA `to_f32` re-conversion was pure waste on every path).
    ///
    /// # Panics
    ///
    /// Panics if `x.rows() != w.cols()`.
    pub fn multiply_reference(&self, w: &TbeMatrix, x: &Matrix<Bf16>) -> Matrix<f32> {
        assert_eq!(x.rows(), w.cols(), "activation rows must match weight cols");
        let (m, k, n) = (w.rows(), w.cols(), x.cols());
        let mut y = Matrix::<f32>::zeros(m, n);
        let seq = SeqMap::new(m, k);
        // Hoisted: one widening per activation element, not one per use.
        let xf = ActPanel::pack(x);

        for tr in 0..m / FRAG_DIM {
            for tk in 0..seq.tiles_k() {
                // "Load compressed, compute decompressed": the tile lives
                // only in this stack frame (the register file).
                let tile = decode_tile_lanewise(w.tile_view(seq.seq(tr, tk)), w.base_exp());
                for local_r in 0..FRAG_DIM {
                    let row = tr * FRAG_DIM + local_r;
                    for col in 0..n {
                        let mut acc = y[(row, col)];
                        for kk in 0..FRAG_DIM {
                            let wv = tile[local_r * FRAG_DIM + kk].to_f32();
                            acc += wv * xf.row(tk * FRAG_DIM + kk)[col];
                        }
                        y[(row, col)] = acc;
                    }
                }
            }
        }
        y
    }

    /// Convenience: the result rounded to BF16 (what the serving engine
    /// feeds to the next layer).
    pub fn multiply_bf16(&self, w: &TbeMatrix, x: &Matrix<Bf16>) -> Matrix<Bf16> {
        let y = self.multiply(w, x);
        Matrix::from_fn(y.rows(), y.cols(), |r, c| Bf16::from_f32(y[(r, c)]))
    }

    /// Multi-threaded fused multiply. Output rows are independent (each
    /// accumulates its own ascending-`k` chain), so sharding row strips
    /// across threads is bitwise identical to [`ZipGemm::multiply`]; every
    /// worker drives the same blocked micro-kernel as the serial path.
    ///
    /// Degenerate shapes are safe: zero-column activations return
    /// immediately, and workers whose strip starts at or past the last tile
    /// row do no work (with `tile_rows = 5` and 4 workers the ceiling chunk
    /// of 2 hands worker 3 the empty strip `6..5`).
    ///
    /// # Panics
    ///
    /// Panics if `threads == 0` or `x.rows() != w.cols()`.
    pub fn multiply_parallel(
        &self,
        w: &TbeMatrix,
        x: &Matrix<Bf16>,
        threads: usize,
    ) -> Matrix<f32> {
        assert!(threads > 0, "need at least one thread");
        assert_eq!(x.rows(), w.cols(), "activation rows must match weight cols");
        let (m, k, n) = (w.rows(), w.cols(), x.cols());
        let tile_rows = m / FRAG_DIM;
        let workers = threads.min(tile_rows).max(1);
        if workers == 1 || n == 0 {
            return self.multiply(w, x);
        }

        // Sequence lookup and activation panel, shared read-only.
        let seq = SeqMap::new(m, k);
        let panel = ActPanel::pack(x);
        let (seq, panel) = (&seq, &panel);

        let chunk = tile_rows.div_ceil(workers);
        let mut strips: Vec<(usize, Vec<f32>)> = Vec::new();
        crossbeam::scope(|scope| {
            let handles: Vec<_> = (0..workers)
                .map(|wi| {
                    // Clamp: the ceiling chunk can push trailing workers
                    // past the end; `start_tr > tile_rows` would underflow
                    // the row count below.
                    let start_tr = (wi * chunk).min(tile_rows);
                    let end_tr = ((wi + 1) * chunk).min(tile_rows);
                    scope.spawn(move |_| {
                        let rows = (end_tr - start_tr) * FRAG_DIM;
                        let mut local = vec![0f32; rows * n];
                        compute_strip(w, seq, panel, start_tr, end_tr, &mut local);
                        (start_tr, local)
                    })
                })
                .collect();
            for h in handles {
                strips.push(h.join().expect("zipgemm worker panicked"));
            }
        })
        .expect("zipgemm scope panicked");

        let mut y = Matrix::<f32>::zeros(m, n);
        for (start_tr, local) in strips {
            if local.is_empty() {
                continue;
            }
            let row0 = start_tr * FRAG_DIM;
            let rows = local.len() / n;
            for r in 0..rows {
                y.as_mut_slice()[(row0 + r) * n..(row0 + r + 1) * n]
                    .copy_from_slice(&local[r * n..(r + 1) * n]);
            }
        }
        y
    }

    /// The instruction mix of decoding `elements` weights (Figure 12(a)),
    /// priced for the lanewise reference path.
    pub fn decode_mix(elements: u64) -> InstrMix {
        Self::decode_mix_for(DecodePath::Lanewise, elements)
    }

    /// The instruction mix of decoding `elements` weights on a specific
    /// [`DecodePath`]. The LUT path trades popcount/plane-extract scalar
    /// ops for shared-memory table reads (priced via
    /// [`DecodeCost::lds_per_tile`] in the kernel profile, not here).
    pub fn decode_mix_for(path: DecodePath, elements: u64) -> InstrMix {
        let c = DecodeCost::for_path(path);
        let mut mix = InstrMix::new();
        mix.add(InstrKind::Lop3, c.lop3 * elements);
        mix.add(InstrKind::Iadd, c.iadd * elements);
        mix.add(InstrKind::Popc, c.popc * elements);
        mix.add(InstrKind::Shift, c.shift * elements);
        mix.add(InstrKind::Sel, c.sel * elements);
        mix
    }

    /// Overlap efficiency of the fixed-configuration pipeline as a function
    /// of the weight-matrix size.
    ///
    /// ZipGEMM ships one BlockTile configuration (64×64, fixed split-K); the
    /// paper notes that small layers "require fine-grained parameter tuning
    /// … beyond the scope of this work" and shows an 0.79× slowdown on
    /// LLaMA3.1-8B's O_proj. Small `M×K` means few K-iterations per block, so
    /// pipeline fill/drain and barrier costs stop being amortized. The curve
    /// is calibrated to reproduce that: ≈0.64 at 16M weights (4096×4096),
    /// ≈0.96 beyond 45M.
    pub fn overlap_efficiency(m: u64, k: u64) -> f64 {
        let elems = (m * k) as f64;
        let ramp = (elems / 4.5e7).min(1.0);
        0.42 + 0.54 * ramp.powf(0.9)
    }

    /// Builds the GPU cost sheet for `Y_{M×N} = W_{M×K} X_{K×N}` with
    /// compressed weights, priced for the lanewise reference path (the
    /// calibrated Figure-11/12 configuration).
    pub fn kernel_profile(&self, w: &TbeMatrix, n: u64) -> KernelProfile {
        self.kernel_profile_for(w, n, DecodePath::Lanewise)
    }

    /// Builds the GPU cost sheet priced for a specific [`DecodePath`].
    ///
    /// The decode *count* is path-independent (one decode per tile per
    /// pass, from [`DecodeCost::tile_decodes`]); only the per-element
    /// instruction mix and the per-tile shared-memory traffic change.
    pub fn kernel_profile_for(&self, w: &TbeMatrix, n: u64, path: DecodePath) -> KernelProfile {
        let m = w.rows() as u64;
        let k = w.cols() as u64;
        let stats = w.stats();
        let cost = DecodeCost::for_path(path);

        let weight_bytes = stats.compressed_bytes() as u64;
        let act_bytes = 2 * k * n;
        let out_bytes = 2 * m * n;

        let mut profile = KernelProfile::empty("zipgemm");
        profile.dram =
            DramTraffic::streaming(weight_bytes + act_bytes, out_bytes).with_efficiency(0.97);
        // Conflict-free by construction (§4.2); the residual ~4.7K conflicts
        // of Figure 12(c) are noise next to DietGPU's millions.
        let tiles = w.tile_count() as u64;
        // Per-tile decode caching: each tile is decoded once per pass, no
        // matter how many N-blocks consume it.
        let decodes = DecodeCost::tile_decodes(tiles, n.div_ceil(TILE_N), true);
        profile.smem = SharedMemTraffic::conflict_free(decodes * cost.lds_per_tile);
        profile.alu = Self::decode_mix_for(path, decodes * FRAG_ELEMS as u64);
        profile.divergence = 1.0; // fixed-length decode: no divergence
        profile.tensor_flops = 2.0 * m as f64 * n as f64 * k as f64;
        profile.grid = LaunchGrid::for_gemm(m, n, TILE_M, TILE_N, self.split_k).with_residency(2);
        profile.mode = ExecutionMode::Pipelined {
            overlap_efficiency: Self::overlap_efficiency(m, k),
        };
        profile
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use crate::compress::TbeCompressor;
    use zipserv_bf16::gen::WeightGen;
    use zipserv_gpu_sim::device::Gpu;

    /// Dense reference with the same FP32 accumulation order.
    fn reference_gemm(w: &Matrix<Bf16>, x: &Matrix<Bf16>) -> Matrix<f32> {
        let (m, k, n) = (w.rows(), w.cols(), x.cols());
        Matrix::from_fn(m, n, |r, c| {
            let mut acc = 0.0f32;
            for kk in 0..k {
                acc += w[(r, kk)].to_f32() * x[(kk, c)].to_f32();
            }
            acc
        })
    }

    #[test]
    fn fused_gemm_matches_dense_bitwise() {
        let w = WeightGen::new(0.02).seed(11).matrix(64, 128);
        let x = WeightGen::new(0.5).seed(12).matrix(128, 16);
        let tbe = TbeCompressor::new().compress(&w).unwrap();
        let fused = ZipGemm::new().multiply(&tbe, &x);
        let dense = reference_gemm(&w, &x);
        for r in 0..64 {
            for c in 0..16 {
                assert_eq!(
                    fused[(r, c)].to_bits(),
                    dense[(r, c)].to_bits(),
                    "({r},{c})"
                );
            }
        }
    }

    #[test]
    fn fused_gemm_with_outliers_matches() {
        let w = WeightGen::new(0.02)
            .seed(13)
            .outliers(0.05, 40.0)
            .matrix(128, 64);
        let x = WeightGen::new(1.0).seed(14).matrix(64, 8);
        let tbe = TbeCompressor::new().compress(&w).unwrap();
        assert_eq!(
            ZipGemm::new().multiply(&tbe, &x).as_slice(),
            reference_gemm(&w, &x).as_slice()
        );
    }

    #[test]
    fn blocked_matches_reference_across_n_block_boundaries() {
        // Column counts straddling the NB=16 micro-kernel width: ragged
        // trailing blocks, exact fits, and single columns.
        let w = WeightGen::new(0.02)
            .seed(41)
            .outliers(0.04, 25.0)
            .matrix(72, 80);
        let tbe = TbeCompressor::new().compress(&w).unwrap();
        for n in [1usize, 2, 7, 15, 16, 17, 31, 32, 33, 48] {
            let x = WeightGen::new(0.6).seed(42 + n as u64).matrix(80, n);
            let blocked = ZipGemm::new().multiply(&tbe, &x);
            let naive = ZipGemm::new().multiply_reference(&tbe, &x);
            assert_eq!(blocked.as_slice(), naive.as_slice(), "n={n}");
        }
    }

    #[test]
    fn bf16_output_rounds_the_f32_result() {
        let w = WeightGen::new(0.02).seed(15).matrix(64, 64);
        let x = WeightGen::new(0.3).seed(16).matrix(64, 8);
        let tbe = TbeCompressor::new().compress(&w).unwrap();
        let f = ZipGemm::new().multiply(&tbe, &x);
        let b = ZipGemm::new().multiply_bf16(&tbe, &x);
        for r in 0..64 {
            for c in 0..8 {
                assert_eq!(b[(r, c)], Bf16::from_f32(f[(r, c)]));
            }
        }
    }

    #[test]
    #[should_panic(expected = "activation rows must match")]
    fn shape_mismatch_panics() {
        let w = WeightGen::new(0.02).matrix(64, 64);
        let x = WeightGen::new(0.02).matrix(32, 8);
        let tbe = TbeCompressor::new().compress(&w).unwrap();
        let _ = ZipGemm::new().multiply(&tbe, &x);
    }

    #[test]
    fn profile_reads_less_dram_than_dense() {
        let w = WeightGen::new(0.018).seed(17).matrix(512, 512);
        let tbe = TbeCompressor::new().compress(&w).unwrap();
        let p = ZipGemm::new().kernel_profile(&tbe, 32);
        let dense_read = 2 * 512 * 512 + 2 * 512 * 32;
        assert!((p.dram.read_bytes as f64) < 0.78 * dense_read as f64);
        assert!(p.tensor_flops > 0.0);
        assert_eq!(p.divergence, 1.0);
    }

    #[test]
    fn profile_decode_work_is_independent_of_n() {
        // Cached decodes: the ALU decode mix prices each tile once per
        // pass, so widening the activation batch adds no decode work.
        let w = WeightGen::new(0.018).seed(19).matrix(256, 256);
        let tbe = TbeCompressor::new().compress(&w).unwrap();
        let narrow = ZipGemm::new().kernel_profile(&tbe, 8);
        let wide = ZipGemm::new().kernel_profile(&tbe, 512);
        assert_eq!(narrow.alu.total(), wide.alu.total());
        assert!(wide.tensor_flops > narrow.tensor_flops);
    }

    #[test]
    fn decode_stays_hidden_on_consumer_gpu() {
        // The Fig-12 claim: ALU decode work fits under the memory time on an
        // RTX4090-class part for a large decode-stage GEMM.
        let w = WeightGen::new(0.018).seed(18).matrix(1024, 1024);
        let tbe = TbeCompressor::new().compress(&w).unwrap();
        // Scale the profile up to a realistic layer by building from a
        // fabricated matrix footprint: use the real (small) one; the ratio
        // ALU/mem is size-independent because both scale with M*K.
        let p = ZipGemm::new().kernel_profile(&tbe, 32);
        let t = p.execute(&Gpu::Rtx4090.spec());
        assert!(t.alu_us < t.mem_us, "alu {} mem {}", t.alu_us, t.mem_us);
        assert_eq!(t.bottleneck(), "mem");
    }

    #[test]
    fn overlap_efficiency_curve() {
        // Small O_proj-like shapes are penalized; big GateUp shapes are not.
        let small = ZipGemm::overlap_efficiency(4096, 4096);
        let large = ZipGemm::overlap_efficiency(28672, 4096);
        assert!(small < 0.70, "small {small}");
        assert!(large > 0.88, "large {large}");
        assert!(ZipGemm::overlap_efficiency(57344, 8192) >= large);
    }

    #[test]
    fn parallel_multiply_is_bitwise_identical() {
        let w = WeightGen::new(0.02)
            .seed(31)
            .outliers(0.03, 30.0)
            .matrix(192, 128);
        let x = WeightGen::new(0.8).seed(32).matrix(128, 16);
        let tbe = TbeCompressor::new().compress(&w).unwrap();
        let serial = ZipGemm::new().multiply(&tbe, &x);
        for threads in [1, 2, 3, 8, 64] {
            let parallel = ZipGemm::new().multiply_parallel(&tbe, &x, threads);
            assert_eq!(serial.as_slice(), parallel.as_slice(), "threads {threads}");
        }
    }

    #[test]
    fn parallel_worker_past_last_tile_row_is_safe() {
        // Regression: tile_rows = 5 with 4 workers gives a ceiling chunk of
        // 2, so worker 3 gets the empty strip 6..5 — previously an unsigned
        // underflow when sizing its local buffer.
        let w = WeightGen::new(0.02).seed(33).matrix(40, 64);
        let x = WeightGen::new(0.7).seed(34).matrix(64, 8);
        let tbe = TbeCompressor::new().compress(&w).unwrap();
        let serial = ZipGemm::new().multiply(&tbe, &x);
        for threads in [4, 5] {
            let parallel = ZipGemm::new().multiply_parallel(&tbe, &x, threads);
            assert_eq!(serial.as_slice(), parallel.as_slice(), "threads {threads}");
        }
    }

    #[test]
    fn zero_column_activations_are_safe() {
        let w = WeightGen::new(0.02).seed(35).matrix(64, 64);
        let x = Matrix::<Bf16>::zeros(64, 0);
        let tbe = TbeCompressor::new().compress(&w).unwrap();
        for y in [
            ZipGemm::new().multiply(&tbe, &x),
            ZipGemm::new().multiply_reference(&tbe, &x),
            ZipGemm::new().multiply_parallel(&tbe, &x, 4),
        ] {
            assert_eq!((y.rows(), y.cols()), (64, 0));
            assert!(y.is_empty());
        }
    }

    #[test]
    fn single_tile_row_parallel_is_safe() {
        let w = WeightGen::new(0.02).seed(36).matrix(8, 64);
        let x = WeightGen::new(0.5).seed(37).matrix(64, 5);
        let tbe = TbeCompressor::new().compress(&w).unwrap();
        let serial = ZipGemm::new().multiply(&tbe, &x);
        let parallel = ZipGemm::new().multiply_parallel(&tbe, &x, 8);
        assert_eq!(serial.as_slice(), parallel.as_slice());
    }

    #[test]
    fn decode_mix_counts() {
        let mix = ZipGemm::decode_mix(1000);
        assert_eq!(mix.count(InstrKind::Popc), 1000);
        assert_eq!(mix.count(InstrKind::Lop3), 3000);
        assert_eq!(mix.total(), 9000);
    }

    #[test]
    fn lut_decode_mix_drops_popcount_for_table_reads() {
        let mix = ZipGemm::decode_mix_for(DecodePath::Lut, 1000);
        assert_eq!(mix.count(InstrKind::Popc), 0);
        assert_eq!(mix.count(InstrKind::Lop3), 1000);
        assert_eq!(mix.total(), 5000);
        // The default mix is the lanewise one.
        assert_eq!(
            ZipGemm::decode_mix(1000).total(),
            ZipGemm::decode_mix_for(DecodePath::Lanewise, 1000).total()
        );
    }

    #[test]
    fn profile_paths_agree_on_decode_counts() {
        // Path-awareness changes the per-element pricing, never the number
        // of decodes: same smem-transactions-per-lds ratio, same ALU
        // ops-per-element ratio, same DRAM/tensor work.
        let w = WeightGen::new(0.018).seed(23).matrix(256, 256);
        let tbe = TbeCompressor::new().compress(&w).unwrap();
        let lane = ZipGemm::new().kernel_profile_for(&tbe, 64, DecodePath::Lanewise);
        let lut = ZipGemm::new().kernel_profile_for(&tbe, 64, DecodePath::Lut);
        let decodes = DecodeCost::tile_decodes(tbe.tile_count() as u64, 1, true);
        assert_eq!(
            lane.smem.transactions,
            decodes * DecodeCost::TCA_TBE.lds_per_tile
        );
        assert_eq!(
            lut.smem.transactions,
            decodes * DecodeCost::TCA_TBE_LUT.lds_per_tile
        );
        assert_eq!(
            lane.alu.total(),
            decodes * 64 * DecodeCost::TCA_TBE.ops_per_element()
        );
        assert_eq!(
            lut.alu.total(),
            decodes * 64 * DecodeCost::TCA_TBE_LUT.ops_per_element()
        );
        assert_eq!(lane.dram.read_bytes, lut.dram.read_bytes);
        assert_eq!(lane.tensor_flops, lut.tensor_flops);
    }
}

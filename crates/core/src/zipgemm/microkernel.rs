//! Internal machinery shared by every functional ZipGEMM path.
//!
//! The serial blocked kernel ([`crate::ZipGemm::multiply`]), the
//! multi-threaded kernel ([`crate::ZipGemm::multiply_parallel`]) and the
//! naive reference ([`crate::ZipGemm::multiply_reference`]) all build on the
//! pieces here, so the accumulation contract lives in exactly one place:
//!
//! * [`SeqMap`] — the FragTile-grid → hierarchical-sequence lookup that used
//!   to be copy-pasted between the serial and parallel paths;
//! * [`ActPanel`] — the activation matrix pre-converted to `f32` once per
//!   pass (instead of once per output row that consumes it);
//! * [`decode_tile_f32`] — the per-tile decode cache: one table-driven
//!   (LUT) decode plus one BF16→f32 widening per FragTile per pass, reused
//!   across every `N`-block that consumes the tile;
//! * [`compute_strip`] — the register-blocked `FRAG_DIM × NB` panel kernel
//!   that the serial path runs over the whole matrix and each parallel
//!   worker runs over its strip of tile rows.
//!
//! The bitwise contract (pinned by `tests/fused_correctness.rs`): every
//! output element accumulates in FP32 in ascending-`k` order. Blocking over
//! `N` and register-tiling the `FRAG_DIM × NB` panel never reorders the
//! per-element chain of adds — each element still sees its `k` products in
//! ascending tile order, ascending lane order — so all three paths produce
//! identical bits.

use crate::decompress::decode_tile_lut;
use crate::format::layout::{block_sequence, TbeMatrix};
use crate::format::{FRAG_DIM, FRAG_ELEMS};
use zipserv_bf16::{Bf16, Matrix};

/// Column width of the register-blocked micro-kernel panel: 16 `f32`
/// accumulator lanes per tile row fill one 64-byte cache line and map onto
/// four 128-bit (or two 256-bit) vector registers.
pub(crate) const NB: usize = 16;

/// Lookup from FragTile grid coordinates `(tr, tk)` to the hierarchical
/// sequence index used by [`TbeMatrix::tile_view`].
///
/// Built once per pass and shared read-only by every worker; previously the
/// construction was duplicated in the serial and parallel paths and could
/// silently drift.
pub(crate) struct SeqMap {
    seq_of: Vec<usize>,
    tiles_k: usize,
}

impl SeqMap {
    /// Builds the lookup for an `m × k` weight matrix (multiples of
    /// [`FRAG_DIM`]).
    pub(crate) fn new(m: usize, k: usize) -> Self {
        let tiles_k = k / FRAG_DIM;
        let mut seq_of = vec![0usize; (m / FRAG_DIM) * tiles_k];
        let mut seq = 0usize;
        for block in &block_sequence(m, k) {
            for &(tr, tc) in block {
                seq_of[tr * tiles_k + tc] = seq;
                seq += 1;
            }
        }
        SeqMap { seq_of, tiles_k }
    }

    /// Sequence index of the FragTile at grid position `(tr, tk)`.
    #[inline]
    pub(crate) fn seq(&self, tr: usize, tk: usize) -> usize {
        self.seq_of[tr * self.tiles_k + tk]
    }

    /// FragTiles along the reduction dimension.
    #[inline]
    pub(crate) fn tiles_k(&self) -> usize {
        self.tiles_k
    }
}

/// The activation matrix packed into a contiguous row-major `f32` panel.
///
/// Widening BF16→f32 preserves every value exactly, so converting up front
/// changes no bits — it only stops each activation element from being
/// re-converted once per output row (`M` times) in the inner loop.
pub(crate) struct ActPanel {
    data: Vec<f32>,
    n: usize,
}

impl ActPanel {
    /// Converts `x` (`k × n`, row-major) once.
    pub(crate) fn pack(x: &Matrix<Bf16>) -> Self {
        ActPanel {
            data: x.as_slice().iter().map(|v| v.to_f32()).collect(),
            n: x.cols(),
        }
    }

    /// Columns of the packed panel.
    #[inline]
    pub(crate) fn cols(&self) -> usize {
        self.n
    }

    /// Row `k` of the panel as a contiguous slice.
    #[inline]
    pub(crate) fn row(&self, k: usize) -> &[f32] {
        &self.data[k * self.n..(k + 1) * self.n]
    }
}

/// Decodes one FragTile into an `f32` scratch panel — the per-tile decode
/// cache. The decode and the BF16→f32 widening happen exactly once per tile
/// per pass here; every `N`-block of the micro-kernel then reuses the
/// cached panel instead of re-converting per FMA.
///
/// Selects the table-driven [`decode_tile_lut`] hot path; the lanewise
/// decoder stays available as the bit-exactness reference (the two are
/// pinned identical, so this selection cannot change output bits).
#[inline]
pub(crate) fn decode_tile_f32(w: &TbeMatrix, seq: usize) -> [f32; FRAG_ELEMS] {
    let tile = decode_tile_lut(w.tile_view(seq), w.base_exp());
    let mut out = [0f32; FRAG_ELEMS];
    for (o, v) in out.iter_mut().zip(tile.iter()) {
        *o = v.to_f32();
    }
    out
}

/// The register-blocked `FRAG_DIM × nb` micro-kernel: for each of the tile's
/// `FRAG_DIM` rows, accumulates `nb` output columns starting at `col0`
/// against activation rows `k0..k0 + FRAG_DIM`.
///
/// Accumulators live in a stack array (the "register file"); the `out`
/// panel is read once before and written once after the `k`-loop, so the
/// innermost loop is pure FP32 FMA over contiguous slices — no
/// bounds-checked `Matrix` indexing, no BF16 conversion.
#[inline]
fn micro_kernel(
    wf: &[f32; FRAG_ELEMS],
    x: &ActPanel,
    k0: usize,
    out: &mut [f32],
    n: usize,
    row0: usize,
    cols: core::ops::Range<usize>,
) {
    let (col0, nb) = (cols.start, cols.len());
    debug_assert!(nb <= NB);
    if nb == NB {
        micro_kernel_full(wf, x, k0, out, n, row0, col0);
        return;
    }
    let mut acc = [[0f32; NB]; FRAG_DIM];
    for (r, acc_r) in acc.iter_mut().enumerate() {
        let o = (row0 + r) * n + col0;
        acc_r[..nb].copy_from_slice(&out[o..o + nb]);
    }
    for kk in 0..FRAG_DIM {
        let xr = &x.row(k0 + kk)[col0..col0 + nb];
        for (r, acc_r) in acc.iter_mut().enumerate() {
            let wv = wf[r * FRAG_DIM + kk];
            for (a, &xv) in acc_r[..nb].iter_mut().zip(xr) {
                *a += wv * xv;
            }
        }
    }
    for (r, acc_r) in acc.iter().enumerate() {
        let o = (row0 + r) * n + col0;
        out[o..o + nb].copy_from_slice(&acc_r[..nb]);
    }
}

/// The full-width specialization: with `nb` fixed at `NB`, every slice
/// becomes a `[f32; NB]` array reference and the FMA loops have constant
/// trip counts, so the compiler unrolls and vectorizes them.
#[inline]
fn micro_kernel_full(
    wf: &[f32; FRAG_ELEMS],
    x: &ActPanel,
    k0: usize,
    out: &mut [f32],
    n: usize,
    row0: usize,
    col0: usize,
) {
    let mut acc = [[0f32; NB]; FRAG_DIM];
    for (r, acc_r) in acc.iter_mut().enumerate() {
        let o = (row0 + r) * n + col0;
        *acc_r = out[o..o + NB].try_into().expect("NB-wide block");
    }
    for kk in 0..FRAG_DIM {
        let xr: &[f32; NB] = x.row(k0 + kk)[col0..col0 + NB]
            .try_into()
            .expect("NB-wide block");
        for (r, acc_r) in acc.iter_mut().enumerate() {
            let wv = wf[r * FRAG_DIM + kk];
            for (a, &xv) in acc_r.iter_mut().zip(xr) {
                *a += wv * xv;
            }
        }
    }
    for (r, acc_r) in acc.iter().enumerate() {
        let o = (row0 + r) * n + col0;
        out[o..o + NB].copy_from_slice(acc_r);
    }
}

/// Computes the output strip for tile rows `start_tr..end_tr` into `out`
/// (row-major `(end_tr - start_tr) * FRAG_DIM × n`, pre-zeroed or holding
/// partial sums), decoding each FragTile exactly once.
///
/// Degenerate inputs — zero-column activations or an empty strip (a worker
/// assigned past the end of the tile rows) — are no-ops.
pub(crate) fn compute_strip(
    w: &TbeMatrix,
    seq: &SeqMap,
    x: &ActPanel,
    start_tr: usize,
    end_tr: usize,
    out: &mut [f32],
) {
    let n = x.cols();
    if n == 0 || start_tr >= end_tr {
        return;
    }
    debug_assert_eq!(out.len(), (end_tr - start_tr) * FRAG_DIM * n);
    for tr in start_tr..end_tr {
        let row0 = (tr - start_tr) * FRAG_DIM;
        for tk in 0..seq.tiles_k() {
            let wf = decode_tile_f32(w, seq.seq(tr, tk));
            let k0 = tk * FRAG_DIM;
            let mut col0 = 0;
            while col0 < n {
                let nb = NB.min(n - col0);
                micro_kernel(&wf, x, k0, out, n, row0, col0..col0 + nb);
                col0 += nb;
            }
        }
    }
}

//! Codeword-length analysis (§4.2, "The Choice of Codeword Length").
//!
//! For an `n`-bit codeword, `2ⁿ − 1` exponent values fit the window (code 0
//! is the fallback indicator), so the expected storage per element is
//!
//! ```text
//! AverageBits(n) = rₙ · (n + 8) + (1 − rₙ) · (n + 16)
//! ```
//!
//! where `rₙ` is the fraction of weights covered by the best window of
//! `2ⁿ − 1` consecutive exponents. The paper reports 12.4 / 11.3 / 12.1 bits
//! for 2- / 3- / 4-bit codewords at LLM-typical coverage, making 3 bits the
//! sweet spot against the 10.6-bit information-theoretic floor.

use zipserv_bf16::stats::ExponentHistogram;
use zipserv_bf16::theory::ExponentDistribution;

/// Expected bits per element for an `n`-bit codeword at window coverage `r`.
///
/// # Panics
///
/// Panics if `n == 0` or `r` is outside `[0, 1]`.
pub fn average_bits(n: u32, r: f64) -> f64 {
    assert!(n >= 1, "codeword needs at least one bit");
    assert!((0.0..=1.0).contains(&r), "coverage in [0,1]");
    r * (n as f64 + 8.0) + (1.0 - r) * (n as f64 + 16.0)
}

/// One row of the codeword-length trade-off table.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CodewordChoice {
    /// Codeword length in bits.
    pub n: u32,
    /// Window size `2ⁿ − 1`.
    pub window: usize,
    /// Achieved coverage `rₙ`.
    pub coverage: f64,
    /// Expected storage bits per element.
    pub avg_bits: f64,
}

/// Evaluates codeword lengths `1..=max_n` against an empirical histogram.
pub fn analyze_histogram(hist: &ExponentHistogram, max_n: u32) -> Vec<CodewordChoice> {
    (1..=max_n)
        .map(|n| {
            let window = (1usize << n) - 1;
            let coverage = hist.best_contiguous_window(window).coverage;
            CodewordChoice {
                n,
                window,
                coverage,
                avg_bits: average_bits(n, coverage),
            }
        })
        .collect()
}

/// Evaluates codeword lengths against the analytic Gaussian distribution.
pub fn analyze_distribution(dist: &ExponentDistribution, max_n: u32) -> Vec<CodewordChoice> {
    (1..=max_n)
        .map(|n| {
            let window = (1usize << n) - 1;
            let coverage = dist.best_window_coverage(window);
            CodewordChoice {
                n,
                window,
                coverage,
                avg_bits: average_bits(n, coverage),
            }
        })
        .collect()
}

/// The codeword length minimizing expected bits.
pub fn best_choice(choices: &[CodewordChoice]) -> CodewordChoice {
    *choices
        .iter()
        .min_by(|a, b| a.avg_bits.partial_cmp(&b.avg_bits).expect("finite"))
        .expect("non-empty choices")
}

/// The information-theoretic floor: 8 bits of sign+mantissa plus the
/// exponent entropy (paper: `8 + 2.6 = 10.6` bits).
pub fn theoretical_floor(exponent_entropy_bits: f64) -> f64 {
    8.0 + exponent_entropy_bits
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn formula_matches_paper_examples() {
        // §4.2: r₃ ≈ 0.96 gives ≈ 11.3 bits.
        assert!((average_bits(3, 0.96) - 11.32).abs() < 0.01);
        // 2-bit at its (lower) coverage and 4-bit at its (slightly higher)
        // coverage are both worse.
        assert!(average_bits(2, 0.80) > 11.32);
        assert!(average_bits(4, 0.98) > 11.32);
    }

    #[test]
    fn three_bits_wins_on_gaussian_llm_weights() {
        let dist = ExponentDistribution::new(0.018);
        let choices = analyze_distribution(&dist, 5);
        let best = best_choice(&choices);
        assert_eq!(best.n, 3, "choices: {choices:?}");
        // Paper's table: ~12.4 (2-bit), ~11.3 (3-bit), ~12.1 (4-bit).
        let by_n = |n: u32| choices.iter().find(|c| c.n == n).expect("present").avg_bits;
        assert!((by_n(3) - 11.3).abs() < 0.4, "3-bit {}", by_n(3));
        assert!((by_n(2) - 12.4).abs() < 0.6, "2-bit {}", by_n(2));
        assert!((by_n(4) - 12.1).abs() < 0.4, "4-bit {}", by_n(4));
    }

    #[test]
    fn average_bits_above_theoretical_floor() {
        let dist = ExponentDistribution::new(0.018);
        let floor = theoretical_floor(dist.entropy_bits());
        for c in analyze_distribution(&dist, 6) {
            assert!(c.avg_bits >= floor - 1e-9, "n={} below floor", c.n);
        }
        assert!((floor - 10.6).abs() < 0.3, "floor {floor}");
    }

    #[test]
    fn histogram_and_distribution_agree() {
        use zipserv_bf16::gen::WeightGen;
        use zipserv_bf16::stats::ExponentHistogram;
        let v = WeightGen::new(0.018).seed(33).vector(300_000);
        let hist = ExponentHistogram::from_values(v);
        let emp = analyze_histogram(&hist, 4);
        let ana = analyze_distribution(&ExponentDistribution::new(0.018), 4);
        for (e, a) in emp.iter().zip(ana.iter()) {
            assert!((e.avg_bits - a.avg_bits).abs() < 0.15, "n={}", e.n);
        }
    }

    #[test]
    fn perfect_coverage_limits() {
        assert_eq!(average_bits(3, 1.0), 11.0);
        assert_eq!(average_bits(3, 0.0), 19.0);
    }

    #[test]
    #[should_panic(expected = "coverage in [0,1]")]
    fn coverage_bounds_checked() {
        let _ = average_bits(3, 1.5);
    }
}

//! Codeword-length analysis (§4.2, "The Choice of Codeword Length").
//!
//! For an `n`-bit codeword, `2ⁿ − 1` exponent values fit the window (code 0
//! is the fallback indicator), so the expected storage per element is
//!
//! ```text
//! AverageBits(n) = rₙ · (n + 8) + (1 − rₙ) · (n + 16)
//! ```
//!
//! where `rₙ` is the fraction of weights covered by the best window of
//! `2ⁿ − 1` consecutive exponents. The paper reports 12.4 / 11.3 / 12.1 bits
//! for 2- / 3- / 4-bit codewords at LLM-typical coverage, making 3 bits the
//! sweet spot against the 10.6-bit information-theoretic floor.

use zipserv_bf16::stats::ExponentHistogram;
use zipserv_bf16::theory::ExponentDistribution;

/// Expected bits per element for an `n`-bit codeword at window coverage `r`.
///
/// # Panics
///
/// Panics if `n == 0` or `r` is outside `[0, 1]`.
pub fn average_bits(n: u32, r: f64) -> f64 {
    assert!(n >= 1, "codeword needs at least one bit");
    assert!((0.0..=1.0).contains(&r), "coverage in [0,1]");
    r * (n as f64 + 8.0) + (1.0 - r) * (n as f64 + 16.0)
}

/// One row of the codeword-length trade-off table.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CodewordChoice {
    /// Codeword length in bits.
    pub n: u32,
    /// Window size `2ⁿ − 1`.
    pub window: usize,
    /// Achieved coverage `rₙ`.
    pub coverage: f64,
    /// Expected storage bits per element.
    pub avg_bits: f64,
}

/// Evaluates codeword lengths `1..=max_n` against an empirical histogram.
pub fn analyze_histogram(hist: &ExponentHistogram, max_n: u32) -> Vec<CodewordChoice> {
    (1..=max_n)
        .map(|n| {
            let window = (1usize << n) - 1;
            let coverage = hist.best_contiguous_window(window).coverage;
            CodewordChoice {
                n,
                window,
                coverage,
                avg_bits: average_bits(n, coverage),
            }
        })
        .collect()
}

/// Evaluates codeword lengths against the analytic Gaussian distribution.
pub fn analyze_distribution(dist: &ExponentDistribution, max_n: u32) -> Vec<CodewordChoice> {
    (1..=max_n)
        .map(|n| {
            let window = (1usize << n) - 1;
            let coverage = dist.best_window_coverage(window);
            CodewordChoice {
                n,
                window,
                coverage,
                avg_bits: average_bits(n, coverage),
            }
        })
        .collect()
}

/// The codeword length minimizing expected bits.
pub fn best_choice(choices: &[CodewordChoice]) -> CodewordChoice {
    *choices
        .iter()
        .min_by(|a, b| a.avg_bits.partial_cmp(&b.avg_bits).expect("finite"))
        .expect("non-empty choices")
}

/// The information-theoretic floor: 8 bits of sign+mantissa plus the
/// exponent entropy (paper: `8 + 2.6 = 10.6` bits).
pub fn theoretical_floor(exponent_entropy_bits: f64) -> f64 {
    8.0 + exponent_entropy_bits
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn formula_matches_paper_examples() {
        // §4.2: r₃ ≈ 0.96 gives ≈ 11.3 bits.
        assert!((average_bits(3, 0.96) - 11.32).abs() < 0.01);
        // 2-bit at its (lower) coverage and 4-bit at its (slightly higher)
        // coverage are both worse.
        assert!(average_bits(2, 0.80) > 11.32);
        assert!(average_bits(4, 0.98) > 11.32);
    }

    #[test]
    fn three_bits_wins_on_gaussian_llm_weights() {
        let dist = ExponentDistribution::new(0.018);
        let choices = analyze_distribution(&dist, 5);
        let best = best_choice(&choices);
        assert_eq!(best.n, 3, "choices: {choices:?}");
        // Paper's table: ~12.4 (2-bit), ~11.3 (3-bit), ~12.1 (4-bit).
        let by_n = |n: u32| choices.iter().find(|c| c.n == n).expect("present").avg_bits;
        assert!((by_n(3) - 11.3).abs() < 0.4, "3-bit {}", by_n(3));
        assert!((by_n(2) - 12.4).abs() < 0.6, "2-bit {}", by_n(2));
        assert!((by_n(4) - 12.1).abs() < 0.4, "4-bit {}", by_n(4));
    }

    #[test]
    fn average_bits_above_theoretical_floor() {
        let dist = ExponentDistribution::new(0.018);
        let floor = theoretical_floor(dist.entropy_bits());
        for c in analyze_distribution(&dist, 6) {
            assert!(c.avg_bits >= floor - 1e-9, "n={} below floor", c.n);
        }
        assert!((floor - 10.6).abs() < 0.3, "floor {floor}");
    }

    #[test]
    fn histogram_and_distribution_agree() {
        use zipserv_bf16::gen::WeightGen;
        use zipserv_bf16::stats::ExponentHistogram;
        let v = WeightGen::new(0.018).seed(33).vector(300_000);
        let hist = ExponentHistogram::from_values(v);
        let emp = analyze_histogram(&hist, 4);
        let ana = analyze_distribution(&ExponentDistribution::new(0.018), 4);
        for (e, a) in emp.iter().zip(ana.iter()) {
            assert!((e.avg_bits - a.avg_bits).abs() < 0.15, "n={}", e.n);
        }
    }

    #[test]
    fn perfect_coverage_limits() {
        assert_eq!(average_bits(3, 1.0), 11.0);
        assert_eq!(average_bits(3, 0.0), 19.0);
    }

    #[test]
    #[should_panic(expected = "coverage in [0,1]")]
    fn coverage_bounds_checked() {
        let _ = average_bits(3, 1.5);
    }

    /// Edge cases of the concrete 3-bit codeword encoding the analysis above
    /// justifies: codeword `000` as the fallback indicator, the window
    /// boundary codewords `001`/`111`, and BaseExp selection when the best
    /// window would start at exponent 0 (which must not underflow).
    mod three_bit_edges {
        use crate::compress::TbeCompressor;
        use crate::format::tile::EncodedTile;
        use crate::format::{FRAG_ELEMS, WINDOW};
        use zipserv_bf16::stats::ExponentHistogram;
        use zipserv_bf16::{Bf16, Matrix};

        /// BF16 bits with the given biased exponent and a recognizable
        /// sign/mantissa payload.
        fn with_exponent(e: u8) -> Bf16 {
            Bf16::from_bits(((e as u16) << 7) | 0x2a)
        }

        #[test]
        fn codeword_000_means_fallback() {
            let base = 120u8;
            let mut tile = [with_exponent(base + 3); FRAG_ELEMS];
            // Below the window (c = -2), at base itself (c = 0) and far above
            // (c = 9): all three must take the 000 fallback path.
            tile[5] = with_exponent(base - 2);
            tile[6] = with_exponent(base);
            tile[7] = with_exponent(base + WINDOW as u8 + 2);
            let enc = EncodedTile::encode(&tile, base);
            for p in [5, 6, 7] {
                assert_eq!(enc.codeword(p), 0b000, "element {p}");
            }
            assert_eq!(enc.fallback_count(), 3);
            // Fallback stores the full 16 bits, so decode is exact.
            assert_eq!(enc.decode(base), tile);
        }

        #[test]
        fn window_boundary_codewords_001_and_111() {
            let base = 120u8;
            let mut tile = [with_exponent(base + 4); FRAG_ELEMS];
            tile[0] = with_exponent(base + 1); // bottom of window
            tile[63] = with_exponent(base + WINDOW as u8); // top of window
            let enc = EncodedTile::encode(&tile, base);
            assert_eq!(enc.codeword(0), 0b001, "e = base+1 is in-window");
            assert_eq!(enc.codeword(63), 0b111, "e = base+7 is in-window");
            assert_eq!(enc.fallback_count(), 0);
            assert_eq!(enc.decode(base), tile);
        }

        #[test]
        fn base_exp_does_not_underflow_at_exponent_zero() {
            // All-subnormal/zero weights: every exponent is 0, so the best
            // 7-window starts at 0. BaseExp = start - 1 would underflow to
            // 255; the compressor must clamp to 0 instead.
            let zeros: Vec<Bf16> = (0..128).map(|i| Bf16::from_bits(i as u16 & 0x7f)).collect();
            let hist = ExponentHistogram::from_values(zeros);
            assert_eq!(TbeCompressor::select_base_exp(&hist), 0);
        }

        #[test]
        fn subnormal_matrix_roundtrips_via_fallback() {
            // With BaseExp = 0, exponent-0 elements have c = 0 and must all
            // take the fallback path — and still round-trip bit-exactly.
            let m = Matrix::from_fn(8, 8, |r, c| Bf16::from_bits((r * 8 + c) as u16 & 0x7f));
            let tbe = TbeCompressor::new().compress(&m).expect("tileable");
            assert_eq!(tbe.base_exp(), 0);
            let out = tbe.decompress();
            for (a, b) in m.as_slice().iter().zip(out.as_slice()) {
                assert_eq!(a.to_bits(), b.to_bits());
            }
        }

        #[test]
        fn exponent_one_is_encodable_with_clamped_base() {
            // BaseExp = 0 keeps exponent 1 (codeword 001) through exponent 7
            // (codeword 111) in-window.
            let base = 0u8;
            let mut tile = [with_exponent(4); FRAG_ELEMS];
            tile[0] = with_exponent(1);
            tile[1] = with_exponent(WINDOW as u8);
            tile[2] = Bf16::from_bits(0); // exponent 0 → fallback
            let enc = EncodedTile::encode(&tile, base);
            assert_eq!(enc.codeword(0), 0b001);
            assert_eq!(enc.codeword(1), 0b111);
            assert_eq!(enc.codeword(2), 0b000);
            assert_eq!(enc.fallback_count(), 1);
            assert_eq!(enc.decode(base), tile);
        }
    }
}

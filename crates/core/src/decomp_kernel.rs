//! The standalone decompression kernel, **ZipServ-Decomp** (§6.2), used by
//! the prefill stage's decoupled pipeline and benchmarked against
//! DietGPU / nvCOMP / DFloat11 in Figure 13.
//!
//! Functionally this is just [`crate::decompress::decompress`]; the value
//! here is the GPU cost sheet: fixed-length, warp-aligned decode with no
//! divergence, coalesced 64-bit bitmap loads and no shared-memory LUTs, so
//! it streams at near-copy bandwidth.

use crate::decompress::{DecodeCost, DecodePath};
use crate::format::layout::TbeMatrix;
use crate::zipgemm::ZipGemm;
use zipserv_gpu_sim::kernel::{ExecutionMode, KernelProfile};
use zipserv_gpu_sim::memory::{DramTraffic, SharedMemTraffic};
use zipserv_gpu_sim::occupancy::LaunchGrid;

/// Achievable fraction of copy bandwidth for the TCA-TBE decoder. The
/// paper's baselines measure 43.7% (DietGPU) and 76.5% (DFloat11); the
/// fixed-length format decodes at close to memcpy speed.
pub const DECOMP_EFFICIENCY: f64 = 0.90;

/// Builds the cost sheet for decompressing a whole [`TbeMatrix`] to global
/// memory (reads compressed arrays, writes the dense BF16 matrix), priced
/// for the lanewise reference path.
pub fn decomp_kernel_profile(w: &TbeMatrix) -> KernelProfile {
    decomp_kernel_profile_for(w, DecodePath::Lanewise)
}

/// Builds the decompression cost sheet priced for a specific
/// [`DecodePath`]. The decode count (one per tile) is path-independent;
/// only the instruction mix and shared-memory traffic change.
pub fn decomp_kernel_profile_for(w: &TbeMatrix, path: DecodePath) -> KernelProfile {
    let stats = w.stats();
    let compressed = stats.compressed_bytes() as u64;
    let raw = stats.raw_bytes as u64;
    let elems = (w.rows() * w.cols()) as u64;
    let tiles = w.tile_count() as u64;

    let mut p = KernelProfile::empty("zipserv-decomp");
    p.dram = DramTraffic::streaming(compressed, raw).with_efficiency(DECOMP_EFFICIENCY);
    // A decompression pass decodes each tile exactly once (one consumer).
    let decodes = DecodeCost::tile_decodes(tiles, 1, true);
    p.smem = SharedMemTraffic::conflict_free(decodes * DecodeCost::for_path(path).lds_per_tile);
    debug_assert_eq!(decodes * crate::format::FRAG_ELEMS as u64, elems);
    p.alu = ZipGemm::decode_mix_for(path, elems);
    p.divergence = 1.0;
    // One thread block per BlockTile.
    p.grid = LaunchGrid {
        blocks: w.block_count() as u64,
        blocks_per_sm: 2,
    };
    p.mode = ExecutionMode::Pipelined {
        overlap_efficiency: 0.95,
    };
    p
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use crate::compress::TbeCompressor;
    use zipserv_bf16::gen::WeightGen;
    use zipserv_gpu_sim::device::Gpu;

    fn compressed(m: usize, k: usize) -> TbeMatrix {
        let w = WeightGen::new(0.018).seed(4).matrix(m, k);
        TbeCompressor::new().compress(&w).unwrap()
    }

    #[test]
    fn profile_moves_compressed_plus_raw_bytes() {
        let tbe = compressed(512, 512);
        let p = decomp_kernel_profile(&tbe);
        assert_eq!(p.dram.write_bytes, 2 * 512 * 512);
        assert!(p.dram.read_bytes < 2 * 512 * 512);
        assert!(p.dram.read_bytes > 512 * 512); // > half: ~71% of raw
    }

    #[test]
    fn decomp_is_memory_bound_with_no_divergence() {
        let tbe = compressed(1024, 1024);
        let p = decomp_kernel_profile(&tbe);
        let t = p.execute(&Gpu::L40s.spec());
        assert_eq!(p.divergence, 1.0);
        assert_eq!(t.bottleneck(), "mem");
    }

    #[test]
    fn decomp_time_close_to_copy_lower_bound() {
        // Moving (compressed + raw) bytes at DECOMP_EFFICIENCY of copy
        // bandwidth bounds the kernel from below; the model should land
        // within ~20% of that bound for big matrices.
        let spec = Gpu::Rtx4090.spec();
        let tbe = compressed(2048, 2048);
        let t = decomp_kernel_profile(&tbe).execute(&spec);
        let bytes = tbe.stats().compressed_bytes() as f64 + tbe.stats().raw_bytes as f64;
        let bound = bytes / (spec.effective_dram_bytes_per_us() * DECOMP_EFFICIENCY);
        assert!(t.total_us >= bound * 0.99, "{} vs {}", t.total_us, bound);
        assert!(
            t.total_us <= bound * 1.25 + spec.launch_overhead_us,
            "{} vs {}",
            t.total_us,
            bound
        );
    }
}

//! Lossless KV-cache compression — the first of §7's extension directions
//! ("the TCA-TBE format can be adapted for lossless KV Cache compression").
//!
//! KV entries are BF16 activations whose exponents are skewed like weights,
//! but the distribution *drifts across layers and pages*, so a single global
//! base exponent is wrong. [`KvPageCodec`] therefore selects the window
//! per page (one paged-attention block of tokens) and stores the page's
//! base exponent alongside its payload — the same tile machinery, one byte
//! of extra metadata per page.

use crate::compress::TbeCompressor;
use crate::error::TbeError;
use crate::format::layout::TbeMatrix;
use zipserv_bf16::{Bf16, Matrix};

/// A compressed KV page.
#[derive(Debug, Clone, PartialEq)]
pub struct CompressedKvPage {
    /// The page payload (tokens × kv_dim), TCA-TBE encoded with a
    /// page-local base exponent.
    payload: TbeMatrix,
}

impl CompressedKvPage {
    /// Uncompressed size in bytes.
    pub fn raw_bytes(&self) -> usize {
        self.payload.stats().raw_bytes
    }

    /// Compressed size in bytes.
    pub fn compressed_bytes(&self) -> usize {
        self.payload.stats().compressed_bytes()
    }

    /// Compression ratio of this page.
    pub fn ratio(&self) -> f64 {
        self.payload.stats().ratio()
    }
}

/// Encoder/decoder for paged KV blocks.
#[derive(Debug, Clone, Default)]
pub struct KvPageCodec {
    compressor: TbeCompressor,
}

impl KvPageCodec {
    /// A codec with default parallelism.
    pub fn new() -> Self {
        KvPageCodec {
            compressor: TbeCompressor::new().with_threads(1),
        }
    }

    /// Compresses one KV page (`tokens × kv_dim`, both multiples of 8).
    ///
    /// # Errors
    ///
    /// Returns [`TbeError::NotTileable`] for non-8-aligned pages.
    pub fn compress(&self, page: &Matrix<Bf16>) -> Result<CompressedKvPage, TbeError> {
        Ok(CompressedKvPage {
            payload: self.compressor.compress(page)?,
        })
    }

    /// Decompresses a page bit-exactly.
    pub fn decompress(&self, page: &CompressedKvPage) -> Matrix<Bf16> {
        page.payload.decompress()
    }
}

/// Aggregate KV-compression statistics over many pages.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct KvCompressionStats {
    /// Total raw bytes.
    pub raw_bytes: u64,
    /// Total compressed bytes.
    pub compressed_bytes: u64,
    /// Pages measured.
    pub pages: u64,
}

impl KvCompressionStats {
    /// Records one page.
    pub fn push(&mut self, page: &CompressedKvPage) {
        self.raw_bytes += page.raw_bytes() as u64;
        self.compressed_bytes += page.compressed_bytes() as u64;
        self.pages += 1;
    }

    /// Aggregate compression ratio.
    pub fn ratio(&self) -> f64 {
        if self.compressed_bytes == 0 {
            1.0
        } else {
            self.raw_bytes as f64 / self.compressed_bytes as f64
        }
    }

    /// Effective KV-capacity multiplier when the cache stores compressed
    /// pages (decompressing through the same fused decode path).
    pub fn capacity_multiplier(&self) -> f64 {
        self.ratio()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use zipserv_bf16::gen::WeightGen;

    /// KV activations: larger σ than weights and per-page drift.
    fn kv_page(seed: u64, drift: f64) -> Matrix<Bf16> {
        WeightGen::new(0.6 * drift).seed(seed).matrix(16, 128)
    }

    #[test]
    fn page_roundtrip_is_bit_exact() {
        let codec = KvPageCodec::new();
        for seed in 0..8 {
            let page = kv_page(seed, 1.0 + seed as f64 * 0.5);
            let c = codec.compress(&page).expect("tileable");
            assert_eq!(codec.decompress(&c), page, "seed {seed}");
        }
    }

    #[test]
    fn per_page_base_tracks_distribution_drift() {
        // Pages with very different scales still compress well because each
        // picks its own window; a shared global base would push one of them
        // almost entirely onto the fallback path.
        let codec = KvPageCodec::new();
        let small = codec.compress(&kv_page(1, 0.01)).expect("tileable");
        let large = codec.compress(&kv_page(2, 100.0)).expect("tileable");
        assert!(
            small.ratio() > 1.3,
            "small-scale page ratio {}",
            small.ratio()
        );
        assert!(
            large.ratio() > 1.3,
            "large-scale page ratio {}",
            large.ratio()
        );
    }

    #[test]
    fn aggregate_stats_report_capacity_gain() {
        let codec = KvPageCodec::new();
        let mut stats = KvCompressionStats::default();
        for seed in 0..16 {
            let page = kv_page(seed, 1.0 + (seed % 4) as f64);
            stats.push(&codec.compress(&page).expect("tileable"));
        }
        assert_eq!(stats.pages, 16);
        // Gaussian-ish activations compress to ~71%, extending KV capacity
        // by ~1.4x on top of the weight savings.
        assert!(
            stats.ratio() > 1.3 && stats.ratio() < 1.6,
            "ratio {}",
            stats.ratio()
        );
        assert_eq!(stats.capacity_multiplier(), stats.ratio());
    }

    #[test]
    fn untileable_page_rejected() {
        let codec = KvPageCodec::new();
        let page = WeightGen::new(0.5).matrix(15, 128);
        assert!(matches!(
            codec.compress(&page),
            Err(TbeError::NotTileable { .. })
        ));
    }
}

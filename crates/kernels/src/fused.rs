//! The fused ZipGEMM kernel launcher: functional execution plus the
//! device-aware cost model used throughout Figures 11–15 and 18.
//!
//! `zipserv-core` owns the format and the bit-exact fused multiply; this
//! module adds (a) [`WeightStats`], a lightweight descriptor so paper-scale
//! shapes (hundreds of MB) can be costed without materializing them, and
//! (b) the device-aware overlap model: on low-clock datacenter parts the
//! decode ALU workload crowds the software pipeline (§7), which is where
//! ZipGEMM loses to cuBLAS on A100/H800.

use zipserv_bf16::{Bf16, Matrix};
use zipserv_core::decompress::{DecodeCost, DecodePath};
use zipserv_core::format::layout::TbeMatrix;
use zipserv_core::format::FRAG_ELEMS;
use zipserv_core::zipgemm::{ZipGemm, TILE_M, TILE_N};
use zipserv_gpu_sim::device::DeviceSpec;
use zipserv_gpu_sim::device::{Arch, Tier};
use zipserv_gpu_sim::kernel::{ExecutionMode, KernelProfile, KernelTime};
use zipserv_gpu_sim::memory::{DramTraffic, SharedMemTraffic};
use zipserv_gpu_sim::occupancy::LaunchGrid;

/// A size/coverage descriptor of a compressed weight matrix — everything the
/// cost model needs, without the payload.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WeightStats {
    /// Weight rows.
    pub m: u64,
    /// Weight columns (reduction dimension).
    pub k: u64,
    /// Fraction of elements on the high-frequency path.
    pub coverage: f64,
    /// Compressed bytes of the TCA-TBE representation.
    pub compressed_bytes: u64,
}

impl WeightStats {
    /// Extracts the descriptor from a real compressed matrix.
    pub fn from_tbe(tbe: &TbeMatrix) -> Self {
        let s = tbe.stats();
        WeightStats {
            m: tbe.rows() as u64,
            k: tbe.cols() as u64,
            coverage: s.coverage(),
            compressed_bytes: s.compressed_bytes() as u64,
        }
    }

    /// Synthesizes the descriptor for an `m × k` matrix at a given coverage,
    /// using the format's storage equation: 3 bitmap bits + 8 bits per
    /// covered element + 16 bits per fallback element + ~0.13 bits of
    /// offset/padding overhead.
    ///
    /// # Panics
    ///
    /// Panics if `coverage` is outside `[0, 1]`.
    pub fn synthetic(m: u64, k: u64, coverage: f64) -> Self {
        assert!((0.0..=1.0).contains(&coverage), "coverage in [0,1]");
        let bits_per_elem = 3.0 + coverage * 8.0 + (1.0 - coverage) * 16.0 + 0.13;
        WeightStats {
            m,
            k,
            coverage,
            compressed_bytes: ((m * k) as f64 * bits_per_elem / 8.0).ceil() as u64,
        }
    }

    /// Raw BF16 bytes of the uncompressed matrix.
    pub fn raw_bytes(&self) -> u64 {
        2 * self.m * self.k
    }

    /// Compression ratio `raw / compressed`.
    pub fn ratio(&self) -> f64 {
        self.raw_bytes() as f64 / self.compressed_bytes as f64
    }
}

/// The fused kernel launcher.
#[derive(Debug, Clone, Default)]
pub struct FusedZipGemm {
    inner: ZipGemm,
}

impl FusedZipGemm {
    /// A launcher with the default split-K configuration.
    pub fn new() -> Self {
        FusedZipGemm {
            inner: ZipGemm::new(),
        }
    }

    /// Bit-exact fused multiply on the blocked hot path (delegates to
    /// [`ZipGemm::multiply`]).
    pub fn multiply(&self, w: &TbeMatrix, x: &Matrix<Bf16>) -> Matrix<f32> {
        self.inner.multiply(w, x)
    }

    /// Bit-exact fused multiply sharded over `threads` row-strip workers
    /// (delegates to [`ZipGemm::multiply_parallel`]; same micro-kernel,
    /// same bits).
    ///
    /// # Panics
    ///
    /// Panics if `threads == 0` or `x.rows() != w.cols()`.
    pub fn multiply_parallel(
        &self,
        w: &TbeMatrix,
        x: &Matrix<Bf16>,
        threads: usize,
    ) -> Matrix<f32> {
        self.inner.multiply_parallel(w, x, threads)
    }

    /// The naive reference kernel (delegates to
    /// [`ZipGemm::multiply_reference`]) — the baseline the blocked paths are
    /// benchmarked against.
    pub fn multiply_reference(&self, w: &TbeMatrix, x: &Matrix<Bf16>) -> Matrix<f32> {
        self.inner.multiply_reference(w, x)
    }

    /// Achievable DRAM fraction for the fused kernel. ZipGEMM's memory path
    /// is hand-tuned for the GDDR consumer parts it targets; on HBM
    /// datacenter parts (§7's "hardware–software mismatch") the untuned
    /// access stream reaches a much smaller share of the far larger peak.
    pub fn fused_mem_efficiency(spec: &DeviceSpec) -> f64 {
        match spec.tier {
            Tier::Consumer => 0.95,
            Tier::Datacenter => match spec.arch {
                Arch::Ampere => 0.45,
                Arch::Hopper => 0.55,
                _ => 0.50,
            },
        }
    }

    /// Device-aware pipeline efficiency: the size-dependent tuning term from
    /// the core model times the ALU-crowding term of §7 — when the decode
    /// workload's issue time approaches the memory time (low-clock HBM
    /// parts), the two-level pipeline can no longer hide it.
    pub fn overlap_efficiency(stats: &WeightStats, n: u64, spec: &DeviceSpec) -> f64 {
        let size_eff = ZipGemm::overlap_efficiency(stats.m, stats.k);
        let mem_us = (stats.compressed_bytes + 2 * stats.k * n) as f64
            / (spec.effective_dram_bytes_per_us() * Self::fused_mem_efficiency(spec));
        let alu_us = DecodeCost::TCA_TBE.ops_per_element() as f64 * (stats.m * stats.k) as f64
            / spec.int_ops_per_us();
        let crowding = 1.0 - 0.5 * (alu_us / mem_us).min(1.0).powf(1.5);
        (size_eff * crowding).clamp(0.05, 1.0)
    }

    /// Builds the fused kernel's cost sheet for `n` tokens on `spec`,
    /// priced for the lanewise reference path (the calibrated paper
    /// configuration).
    pub fn kernel_profile(stats: &WeightStats, n: u64, spec: &DeviceSpec) -> KernelProfile {
        Self::kernel_profile_for(stats, n, spec, DecodePath::Lanewise)
    }

    /// Builds the fused kernel's cost sheet priced for a specific
    /// [`DecodePath`]. The decode count is path-independent (one decode per
    /// tile per pass); only the instruction mix and shared-memory traffic
    /// change.
    pub fn kernel_profile_for(
        stats: &WeightStats,
        n: u64,
        spec: &DeviceSpec,
        path: DecodePath,
    ) -> KernelProfile {
        let act_bytes = 2 * stats.k * n;
        let out_bytes = 2 * stats.m * n;
        let elems = stats.m * stats.k;
        let tiles = elems / FRAG_ELEMS as u64;

        let mut p = KernelProfile::empty("zipgemm");
        p.dram = DramTraffic::streaming(stats.compressed_bytes + act_bytes, out_bytes)
            .with_efficiency(Self::fused_mem_efficiency(spec));
        // Per-tile decode caching: one decode per tile per pass, not one per
        // consuming N-block.
        let decodes = DecodeCost::tile_decodes(tiles, n.div_ceil(TILE_N), true);
        p.smem = SharedMemTraffic::conflict_free(decodes * DecodeCost::for_path(path).lds_per_tile);
        p.alu = ZipGemm::decode_mix_for(path, decodes * FRAG_ELEMS as u64);
        p.divergence = 1.0;
        p.tensor_flops = 2.0 * stats.m as f64 * n as f64 * stats.k as f64;
        p.grid = LaunchGrid::for_gemm(stats.m, n, TILE_M, TILE_N, 2).with_residency(2);
        p.mode = ExecutionMode::Pipelined {
            overlap_efficiency: Self::overlap_efficiency(stats, n, spec),
        };
        p
    }

    /// Executes the fused kernel's cost model.
    pub fn time(stats: &WeightStats, n: u64, spec: &DeviceSpec) -> KernelTime {
        Self::kernel_profile(stats, n, spec).execute(spec)
    }

    /// The standalone ZipServ-Decomp kernel (Figure 13) at paper scale:
    /// reads the compressed arrays, writes the dense matrix. Priced for the
    /// lanewise reference path.
    pub fn decomp_profile(stats: &WeightStats) -> KernelProfile {
        Self::decomp_profile_for(stats, DecodePath::Lanewise)
    }

    /// The standalone decompression cost sheet priced for a specific
    /// [`DecodePath`].
    pub fn decomp_profile_for(stats: &WeightStats, path: DecodePath) -> KernelProfile {
        let elems = stats.m * stats.k;
        let mut p = KernelProfile::empty("zipserv-decomp");
        p.dram = DramTraffic::streaming(stats.compressed_bytes, stats.raw_bytes())
            .with_efficiency(zipserv_core::decomp_kernel::DECOMP_EFFICIENCY);
        let decodes = DecodeCost::tile_decodes(elems / FRAG_ELEMS as u64, 1, true);
        p.smem = SharedMemTraffic::conflict_free(decodes * DecodeCost::for_path(path).lds_per_tile);
        p.alu = ZipGemm::decode_mix_for(path, elems);
        p.grid = LaunchGrid {
            blocks: (elems / 4096).max(1),
            blocks_per_sm: 2,
        };
        p.mode = ExecutionMode::Pipelined {
            overlap_efficiency: 0.95,
        };
        p
    }
}

/// The paper's typical synthetic coverage (§3.1: ~96% of weights on the
/// high-frequency path).
pub const TYPICAL_COVERAGE: f64 = 0.962;

/// Convenience: synthetic stats at the typical LLM coverage.
pub fn typical_stats(m: u64, k: u64) -> WeightStats {
    WeightStats::synthetic(m, k, TYPICAL_COVERAGE)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cublas_model::CublasTc;
    use zipserv_bf16::gen::WeightGen;
    use zipserv_core::TbeCompressor;
    use zipserv_gpu_sim::device::Gpu;
    use zipserv_gpu_sim::roofline::GemmShape;

    #[test]
    fn synthetic_stats_match_real_compression() {
        let w = WeightGen::new(0.018).seed(8).matrix(512, 512);
        let tbe = TbeCompressor::new().compress(&w).unwrap();
        let real = WeightStats::from_tbe(&tbe);
        let synth = WeightStats::synthetic(512, 512, real.coverage);
        let rel = (real.compressed_bytes as f64 - synth.compressed_bytes as f64).abs()
            / real.compressed_bytes as f64;
        assert!(rel < 0.02, "relative error {rel}");
    }

    #[test]
    fn rtx4090_gateup_matches_paper_zipgemm_latency() {
        // §7: ZipGEMM ≈ 0.194 ms on 28672×4096 @ batch 32 on the RTX4090.
        let t = FusedZipGemm::time(&typical_stats(28672, 4096), 32, &Gpu::Rtx4090.spec());
        assert!(
            t.total_us > 165.0 && t.total_us < 235.0,
            "got {} us",
            t.total_us
        );
    }

    #[test]
    fn fused_beats_cublas_in_decode_regime_on_consumer_gpus() {
        // Figure 11: ZipGEMM wins on RTX4090 and L40S for decode batches.
        for gpu in [Gpu::Rtx4090, Gpu::L40s, Gpu::Rtx5090] {
            let spec = gpu.spec();
            for n in [8, 16, 32] {
                let fused = FusedZipGemm::time(&typical_stats(28672, 4096), n, &spec);
                let dense = CublasTc::time(GemmShape::new(28672, 4096, n), &spec);
                let speedup = dense.total_us / fused.total_us;
                assert!(
                    speedup > 1.15 && speedup < 2.5,
                    "{gpu:?} n={n}: speedup {speedup}"
                );
            }
        }
    }

    #[test]
    fn small_oproj_shape_can_lose() {
        // §6.1: ZipGEMM drops to ~0.79× on LLaMA3.1-8B's O_proj on L40S.
        let spec = Gpu::L40s.spec();
        let fused = FusedZipGemm::time(&typical_stats(4096, 4096), 32, &spec);
        let dense = CublasTc::time(GemmShape::new(4096, 4096, 32), &spec);
        let speedup = dense.total_us / fused.total_us;
        assert!(speedup < 1.0, "speedup {speedup} should dip below 1");
        assert!(speedup > 0.55, "speedup {speedup} not catastrophically low");
    }

    #[test]
    fn datacenter_gpus_blunt_the_fused_advantage() {
        // §7 / Figure 18: on A100/H800 ZipGEMM may trail cuBLAS.
        for gpu in [Gpu::A100, Gpu::H800] {
            let spec = gpu.spec();
            let fused = FusedZipGemm::time(&typical_stats(28672, 4096), 32, &spec);
            let dense = CublasTc::time(GemmShape::new(28672, 4096, 32), &spec);
            let speedup = dense.total_us / fused.total_us;
            assert!(speedup < 1.1, "{gpu:?}: speedup {speedup}");
        }
    }

    #[test]
    fn consumer_gpu_with_zipgemm_rivals_a100_cublas() {
        // §6.3: RTX4090 + ZipGEMM ≈ A100 + cuBLAS on LLaMA3.1-8B GateUp.
        let fused4090 = FusedZipGemm::time(&typical_stats(28672, 4096), 32, &Gpu::Rtx4090.spec());
        let densea100 = CublasTc::time(GemmShape::new(28672, 4096, 32), &Gpu::A100.spec());
        let ratio = fused4090.total_us / densea100.total_us;
        assert!(ratio < 1.2 && ratio > 0.7, "ratio {ratio}");
    }

    #[test]
    fn rtx5090_gap_to_h800_narrows() {
        // §6.3: ZipGEMM cuts the 5090's deficit vs the H800 from ~53% to ~14%.
        let shape = GemmShape::new(28672, 4096, 32);
        let h800 = CublasTc::time(shape, &Gpu::H800.spec()).total_us;
        let r5090_dense = CublasTc::time(shape, &Gpu::Rtx5090.spec()).total_us;
        let r5090_fused =
            FusedZipGemm::time(&typical_stats(28672, 4096), 32, &Gpu::Rtx5090.spec()).total_us;
        let gap_dense = r5090_dense / h800 - 1.0;
        let gap_fused = r5090_fused / h800 - 1.0;
        assert!(gap_fused < gap_dense * 0.6, "{gap_dense} -> {gap_fused}");
    }

    #[test]
    fn decomp_profile_scales_with_size() {
        let small = FusedZipGemm::decomp_profile(&typical_stats(4096, 4096));
        let large = FusedZipGemm::decomp_profile(&typical_stats(28672, 4096));
        let spec = Gpu::L40s.spec();
        let ts = small.execute(&spec).total_us;
        let tl = large.execute(&spec).total_us;
        assert!(tl > 5.0 * ts, "{tl} vs {ts}");
    }

    #[test]
    fn ratio_at_typical_coverage_matches_paper() {
        let s = typical_stats(28672, 4096);
        assert!((s.ratio() - 1.41).abs() < 0.06, "ratio {}", s.ratio());
    }

    #[test]
    fn profile_prices_one_decode_per_tile_per_pass() {
        // Cached decode accounting: the decode ALU work of the fused profile
        // does not grow with the activation batch, while uncached per-use
        // accounting would multiply it by the number of N-blocks.
        let spec = Gpu::Rtx4090.spec();
        let stats = typical_stats(4096, 4096);
        let narrow = FusedZipGemm::kernel_profile(&stats, 8, &spec);
        let wide = FusedZipGemm::kernel_profile(&stats, 512, &spec);
        assert_eq!(narrow.alu.total(), wide.alu.total());
        let tiles = stats.m * stats.k / 64;
        assert_eq!(
            DecodeCost::tile_decodes(tiles, 512u64.div_ceil(TILE_N), false),
            tiles * 8
        );
    }

    #[test]
    fn decode_accounting_agrees_across_profiles_for_both_paths() {
        // Satellite pin: cached one-decode-per-tile-per-pass counting must
        // agree between ZipGemm::kernel_profile_for, FusedZipGemm profiles
        // and the decomp profiles, on both decode paths. The per-element op
        // count differs by path, the decode *count* never does.
        use zipserv_core::decomp_kernel::decomp_kernel_profile_for;

        let w = WeightGen::new(0.018).seed(9).matrix(512, 512);
        let tbe = TbeCompressor::new().compress(&w).unwrap();
        let stats = WeightStats::from_tbe(&tbe);
        let spec = Gpu::Rtx4090.spec();
        let tiles = tbe.tile_count() as u64;
        let elems = tiles * FRAG_ELEMS as u64;

        for path in [DecodePath::Lanewise, DecodePath::Lut] {
            let ops = DecodeCost::for_path(path).ops_per_element();
            let lds = DecodeCost::for_path(path).lds_per_tile;
            // One GEMM pass at n <= TILE_N: one N-block, so cached decode
            // count == tile count in every profile.
            let core_gemm = ZipGemm::new().kernel_profile_for(&tbe, 32, path);
            let fused_gemm = FusedZipGemm::kernel_profile_for(&stats, 32, &spec, path);
            let core_decomp = decomp_kernel_profile_for(&tbe, path);
            let fused_decomp = FusedZipGemm::decomp_profile_for(&stats, path);
            for (name, p) in [
                ("core gemm", &core_gemm),
                ("fused gemm", &fused_gemm),
                ("core decomp", &core_decomp),
                ("fused decomp", &fused_decomp),
            ] {
                assert_eq!(p.alu.total(), elems * ops, "{name} {path:?}");
                assert_eq!(p.smem.transactions, tiles * lds, "{name} {path:?}");
            }
        }
        // And the defaults are the lanewise pricing.
        assert_eq!(
            ZipGemm::new().kernel_profile(&tbe, 32).alu.total(),
            ZipGemm::new()
                .kernel_profile_for(&tbe, 32, DecodePath::Lanewise)
                .alu
                .total()
        );
    }

    #[test]
    fn launcher_paths_share_one_micro_kernel_bitwise() {
        // All three functional delegations agree bit for bit.
        let w = WeightGen::new(0.02)
            .seed(71)
            .outliers(0.03, 20.0)
            .matrix(96, 64);
        let x = WeightGen::new(0.5).seed(72).matrix(64, 19);
        let tbe = TbeCompressor::new().compress(&w).unwrap();
        let launcher = FusedZipGemm::new();
        let blocked = launcher.multiply(&tbe, &x);
        assert_eq!(
            blocked.as_slice(),
            launcher.multiply_reference(&tbe, &x).as_slice()
        );
        assert_eq!(
            blocked.as_slice(),
            launcher.multiply_parallel(&tbe, &x, 3).as_slice()
        );
    }
}

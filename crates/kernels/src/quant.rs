//! Lossy quantization substrate, and ZipServ's §7 claim that lossless
//! compression is *orthogonal* to it: "ZipServ … can be applied atop
//! quantized weights to exploit residual redundancy".
//!
//! * [`QuantizedMatrix`] — symmetric per-row absmax INT8 quantization with
//!   a real quantize/dequantize path and a W8A16 reference GEMM (the
//!   numerics behind the Marlin comparator);
//! * [`residual_compression`] — entropy-codes the INT8 values with the real
//!   Huffman codec: quantized Gaussian weights carry ~6.2 bits of entropy
//!   in their 8-bit codes, so another ~1.25× falls out losslessly;
//! * [`CompressedW8Kernel`] — the combined kernel model: Marlin-style
//!   mixed-precision GEMM reading the *entropy-coded* INT8 stream.

use crate::cublas_model::gemm_mem_efficiency;
use zipserv_bf16::{Bf16, Matrix};
use zipserv_entropy::huffman::HuffmanBlob;
use zipserv_entropy::CompressionStats;
use zipserv_gpu_sim::device::DeviceSpec;
use zipserv_gpu_sim::instr::{InstrKind, InstrMix};
use zipserv_gpu_sim::kernel::{ExecutionMode, KernelProfile, KernelTime};
use zipserv_gpu_sim::memory::DramTraffic;
use zipserv_gpu_sim::occupancy::LaunchGrid;
use zipserv_gpu_sim::roofline::GemmShape;

/// A symmetric per-row INT8 quantized matrix.
#[derive(Debug, Clone, PartialEq)]
pub struct QuantizedMatrix {
    rows: usize,
    cols: usize,
    /// Per-row dequantization scale (`w ≈ scale · q`).
    scales: Vec<f32>,
    /// Row-major INT8 codes.
    values: Vec<i8>,
}

impl QuantizedMatrix {
    /// Quantizes a BF16 matrix with per-row absmax scaling.
    pub fn quantize(m: &Matrix<Bf16>) -> Self {
        let (rows, cols) = (m.rows(), m.cols());
        let mut scales = Vec::with_capacity(rows);
        let mut values = Vec::with_capacity(rows * cols);
        for r in 0..rows {
            let absmax = m
                .row(r)
                .iter()
                .map(|v| v.to_f32().abs())
                .fold(0.0f32, f32::max);
            let scale = if absmax == 0.0 { 1.0 } else { absmax / 127.0 };
            scales.push(scale);
            for v in m.row(r) {
                let q = (v.to_f32() / scale).round().clamp(-127.0, 127.0);
                values.push(q as i8);
            }
        }
        QuantizedMatrix {
            rows,
            cols,
            scales,
            values,
        }
    }

    /// Rows of the original matrix.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Columns of the original matrix.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// The INT8 code at `(r, c)`.
    pub fn code(&self, r: usize, c: usize) -> i8 {
        self.values[r * self.cols + c]
    }

    /// Dequantizes back to BF16 (lossy: this is the approximation the
    /// paper's bit-exact pipeline avoids).
    pub fn dequantize(&self) -> Matrix<Bf16> {
        Matrix::from_fn(self.rows, self.cols, |r, c| {
            Bf16::from_f32(self.scales[r] * self.code(r, c) as f32)
        })
    }

    /// Mean relative reconstruction error vs the original.
    pub fn relative_error(&self, original: &Matrix<Bf16>) -> f64 {
        let deq = self.dequantize();
        let mut num = 0.0f64;
        let mut den = 0.0f64;
        for (a, b) in original.as_slice().iter().zip(deq.as_slice()) {
            let (x, y) = (a.to_f32() as f64, b.to_f32() as f64);
            num += (x - y).powi(2);
            den += x.powi(2);
        }
        if den == 0.0 {
            0.0
        } else {
            (num / den).sqrt()
        }
    }

    /// W8A16 GEMM: dequantize-on-the-fly with FP32 accumulation, ascending
    /// `k` — the functional Marlin path.
    ///
    /// # Panics
    ///
    /// Panics if `x.rows() != self.cols()`.
    pub fn gemm_w8(&self, x: &Matrix<Bf16>) -> Matrix<f32> {
        assert_eq!(x.rows(), self.cols, "inner dimensions must agree");
        Matrix::from_fn(self.rows, x.cols(), |r, c| {
            let mut acc = 0.0f32;
            for k in 0..self.cols {
                let w = self.scales[r] * self.code(r, k) as f32;
                acc += w * x[(k, c)].to_f32();
            }
            acc
        })
    }

    /// The raw INT8 payload bytes.
    pub fn payload_bytes(&self) -> usize {
        self.values.len() + 4 * self.scales.len()
    }
}

/// Entropy-codes the INT8 values with the real Huffman codec and returns
/// the achieved stats — the "residual redundancy" of §7.
///
/// # Panics
///
/// Panics if the matrix is empty.
pub fn residual_compression(q: &QuantizedMatrix) -> CompressionStats {
    let bytes: Vec<u8> = q.values.iter().map(|&v| v as u8).collect();
    let blob = HuffmanBlob::compress(&bytes).expect("non-empty quantized payload");
    blob.stats()
}

/// The combined lossy+lossless kernel model: Marlin-style W8A16 reading an
/// entropy-coded INT8 stream decoded on the fly (a DECA-style design).
#[derive(Debug, Clone, Copy)]
pub struct CompressedW8Kernel {
    /// Compressed INT8 size as a fraction of the plain INT8 bytes.
    pub int8_fraction: f64,
}

impl CompressedW8Kernel {
    /// A kernel at the measured residual-compression fraction.
    pub fn new(int8_fraction: f64) -> Self {
        assert!(
            int8_fraction > 0.0 && int8_fraction <= 1.0,
            "fraction in (0,1]"
        );
        CompressedW8Kernel { int8_fraction }
    }

    /// Cost sheet: weight bytes shrink below 1 byte/element; the decode ALU
    /// grows (dequant + entropy decode).
    pub fn kernel_profile(&self, shape: GemmShape, spec: &DeviceSpec) -> KernelProfile {
        let weight_bytes = ((shape.m * shape.k) as f64 * self.int8_fraction) as u64;
        let mut p = KernelProfile::empty("compressed-w8");
        p.dram = DramTraffic::streaming(
            weight_bytes + shape.activation_bytes(),
            shape.output_bytes(),
        )
        .with_efficiency(gemm_mem_efficiency(spec, shape.n));
        let mut alu = InstrMix::new();
        // Dequant (2 ops) + fixed-length entropy decode (~6 ops/element).
        alu.add(InstrKind::Iadd, 3 * shape.m * shape.k);
        alu.add(InstrKind::Lop3, 3 * shape.m * shape.k);
        alu.add(InstrKind::Shift, 2 * shape.m * shape.k);
        p.alu = alu;
        p.tensor_flops = shape.flops();
        p.grid = LaunchGrid::for_gemm(shape.m, shape.n, 128, 64, 2).with_residency(2);
        p.mode = ExecutionMode::Pipelined {
            overlap_efficiency: 0.90,
        };
        p
    }

    /// Executes the model.
    pub fn time(&self, shape: GemmShape, spec: &DeviceSpec) -> KernelTime {
        self.kernel_profile(shape, spec).execute(spec)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gemm_ref;
    use crate::marlin_model::MarlinW8A16;
    use zipserv_bf16::gen::WeightGen;
    use zipserv_gpu_sim::device::Gpu;

    fn weights() -> Matrix<Bf16> {
        WeightGen::new(0.02).seed(88).matrix(64, 128)
    }

    #[test]
    fn quantization_error_is_small_but_nonzero() {
        let w = weights();
        let q = QuantizedMatrix::quantize(&w);
        let err = q.relative_error(&w);
        // INT8 absmax: sub-percent relative error, but NOT lossless —
        // the contrast with TCA-TBE's exact round-trip.
        assert!(err > 1e-5, "quantization must lose something: {err}");
        assert!(err < 0.02, "error too large: {err}");
        assert_ne!(q.dequantize(), w, "int8 is lossy");
    }

    #[test]
    fn zero_row_handled() {
        let mut w = weights();
        for c in 0..w.cols() {
            w[(0, c)] = Bf16::ZERO;
        }
        let q = QuantizedMatrix::quantize(&w);
        for c in 0..w.cols() {
            assert_eq!(q.dequantize()[(0, c)], Bf16::ZERO);
        }
    }

    #[test]
    fn w8_gemm_close_to_dense() {
        let w = weights();
        let x = WeightGen::new(0.5).seed(89).matrix(128, 4);
        let q = QuantizedMatrix::quantize(&w);
        let approx = q.gemm_w8(&x);
        let exact = gemm_ref::gemm(&w, &x);
        // Aggregate relative RMSE: individual outputs near zero can deviate
        // by several percent, but the overall signal must be preserved.
        let mut num = 0.0f64;
        let mut den = 0.0f64;
        for (a, b) in approx.as_slice().iter().zip(exact.as_slice()) {
            num += (*a as f64 - *b as f64).powi(2);
            den += (*b as f64).powi(2);
        }
        let rmse = (num / den).sqrt();
        assert!(rmse < 0.02, "relative RMSE {rmse}");
        assert!(rmse > 0.0, "quantized GEMM cannot be exact");
    }

    #[test]
    fn residual_redundancy_exists() {
        // §7: quantized Gaussian weights still carry exploitable entropy.
        let q = QuantizedMatrix::quantize(&WeightGen::new(0.02).seed(90).matrix(256, 256));
        let stats = residual_compression(&q);
        // Per-row absmax leaves the INT8 codes at ~7.4 bits of entropy:
        // a modest but real ~1.07x of residual lossless headroom.
        assert!(
            stats.ratio() > 1.04 && stats.ratio() < 1.5,
            "residual ratio {}",
            stats.ratio()
        );
    }

    #[test]
    fn combined_kernel_beats_plain_marlin_in_decode_regime() {
        let spec = Gpu::Rtx4090.spec();
        let shape = GemmShape::new(28672, 4096, 32);
        let q = QuantizedMatrix::quantize(&WeightGen::new(0.018).seed(91).matrix(512, 512));
        let fraction = residual_compression(&q).fraction();
        let combined = CompressedW8Kernel::new(fraction).time(shape, &spec);
        let marlin = MarlinW8A16::time(shape, &spec).total_us;
        assert!(
            combined.total_us < marlin,
            "combined {} vs marlin {marlin}",
            combined.total_us
        );
        assert_eq!(combined.bottleneck(), "mem");
    }

    #[test]
    fn payload_accounting() {
        let q = QuantizedMatrix::quantize(&weights());
        assert_eq!(q.payload_bytes(), 64 * 128 + 4 * 64);
        assert_eq!((q.rows(), q.cols()), (64, 128));
    }
}

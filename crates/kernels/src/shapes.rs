//! The layer-shape catalog: weight-matrix dimensions of the LLM families
//! benchmarked in §6.1, plus the model-level metadata the serving substrate
//! needs.

use serde::{Deserialize, Serialize};
use zipserv_bf16::gen::ModelFamily;
use zipserv_gpu_sim::roofline::GemmShape;

/// The LLMs whose layer shapes the paper benchmarks.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum LlmModel {
    /// LLaMA-3.1-8B.
    Llama31_8b,
    /// LLaMA-3.1-70B.
    Llama31_70b,
    /// LLaMA-3.1-405B.
    Llama31_405b,
    /// Qwen2.5-7B.
    Qwen25_7b,
    /// Qwen2.5-14B.
    Qwen25_14b,
    /// Qwen2.5-32B.
    Qwen25_32b,
    /// Qwen2.5-72B.
    Qwen25_72b,
    /// Gemma-3-12B.
    Gemma3_12b,
    /// Gemma-3-27B.
    Gemma3_27b,
    /// Mistral-Small-24B.
    Mistral24b,
    /// Mistral-Large-123B.
    Mistral123b,
}

/// Architecture hyper-parameters of one model.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct ModelDims {
    /// Hidden size.
    pub hidden: u64,
    /// FFN intermediate size.
    pub intermediate: u64,
    /// Attention heads.
    pub heads: u64,
    /// KV heads (GQA).
    pub kv_heads: u64,
    /// Head dimension.
    pub head_dim: u64,
    /// Transformer layers.
    pub layers: u64,
    /// Vocabulary size.
    pub vocab: u64,
}

impl ModelDims {
    /// Total weight elements of one transformer block's linear layers.
    pub fn block_linear_elements(&self) -> u64 {
        LayerKind::BLOCK
            .iter()
            .map(|l| {
                let (m, k) = l.weight_dims(self);
                m * k
            })
            .sum()
    }

    /// Approximate total parameter count (blocks + embeddings + LM head).
    pub fn total_params(&self) -> u64 {
        self.layers * self.block_linear_elements() + 2 * self.vocab * self.hidden
    }

    /// BF16 weight bytes of the whole model.
    pub fn weight_bytes_bf16(&self) -> u64 {
        2 * self.total_params()
    }

    /// KV-cache bytes per token (2 tensors × kv_heads × head_dim × BF16).
    pub fn kv_bytes_per_token(&self) -> u64 {
        2 * 2 * self.kv_heads * self.head_dim * self.layers
    }
}

impl LlmModel {
    /// All models of the kernel benchmark.
    pub const ALL: [LlmModel; 11] = [
        LlmModel::Llama31_8b,
        LlmModel::Llama31_70b,
        LlmModel::Llama31_405b,
        LlmModel::Qwen25_7b,
        LlmModel::Qwen25_14b,
        LlmModel::Qwen25_32b,
        LlmModel::Qwen25_72b,
        LlmModel::Gemma3_12b,
        LlmModel::Gemma3_27b,
        LlmModel::Mistral24b,
        LlmModel::Mistral123b,
    ];

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            LlmModel::Llama31_8b => "LLaMA3.1-8B",
            LlmModel::Llama31_70b => "LLaMA3.1-70B",
            LlmModel::Llama31_405b => "LLaMA3.1-405B",
            LlmModel::Qwen25_7b => "Qwen2.5-7B",
            LlmModel::Qwen25_14b => "Qwen2.5-14B",
            LlmModel::Qwen25_32b => "Qwen2.5-32B",
            LlmModel::Qwen25_72b => "Qwen2.5-72B",
            LlmModel::Gemma3_12b => "Gemma3-12B",
            LlmModel::Gemma3_27b => "Gemma3-27B",
            LlmModel::Mistral24b => "Mistral-24B",
            LlmModel::Mistral123b => "Mistral-123B",
        }
    }

    /// The statistical weight family (sets the synthetic-weight σ).
    pub fn family(self) -> ModelFamily {
        match self {
            LlmModel::Llama31_8b | LlmModel::Llama31_70b | LlmModel::Llama31_405b => {
                ModelFamily::Llama3
            }
            LlmModel::Qwen25_7b
            | LlmModel::Qwen25_14b
            | LlmModel::Qwen25_32b
            | LlmModel::Qwen25_72b => ModelFamily::Qwen25,
            LlmModel::Gemma3_12b | LlmModel::Gemma3_27b => ModelFamily::Gemma3,
            LlmModel::Mistral24b | LlmModel::Mistral123b => ModelFamily::Mistral,
        }
    }

    /// Architecture hyper-parameters (public model-card values).
    pub fn dims(self) -> ModelDims {
        match self {
            LlmModel::Llama31_8b => ModelDims {
                hidden: 4096,
                intermediate: 14336,
                heads: 32,
                kv_heads: 8,
                head_dim: 128,
                layers: 32,
                vocab: 128_256,
            },
            LlmModel::Llama31_70b => ModelDims {
                hidden: 8192,
                intermediate: 28672,
                heads: 64,
                kv_heads: 8,
                head_dim: 128,
                layers: 80,
                vocab: 128_256,
            },
            LlmModel::Llama31_405b => ModelDims {
                hidden: 16384,
                intermediate: 53248,
                heads: 128,
                kv_heads: 8,
                head_dim: 128,
                layers: 126,
                vocab: 128_256,
            },
            LlmModel::Qwen25_7b => ModelDims {
                hidden: 3584,
                intermediate: 18944,
                heads: 28,
                kv_heads: 4,
                head_dim: 128,
                layers: 28,
                vocab: 152_064,
            },
            LlmModel::Qwen25_14b => ModelDims {
                hidden: 5120,
                intermediate: 13824,
                heads: 40,
                kv_heads: 8,
                head_dim: 128,
                layers: 48,
                vocab: 152_064,
            },
            LlmModel::Qwen25_32b => ModelDims {
                hidden: 5120,
                intermediate: 27648,
                heads: 40,
                kv_heads: 8,
                head_dim: 128,
                layers: 64,
                vocab: 152_064,
            },
            LlmModel::Qwen25_72b => ModelDims {
                hidden: 8192,
                intermediate: 29568,
                heads: 64,
                kv_heads: 8,
                head_dim: 128,
                layers: 80,
                vocab: 152_064,
            },
            LlmModel::Gemma3_12b => ModelDims {
                hidden: 3840,
                intermediate: 15360,
                heads: 16,
                kv_heads: 8,
                head_dim: 256,
                layers: 48,
                vocab: 262_144,
            },
            LlmModel::Gemma3_27b => ModelDims {
                hidden: 5376,
                intermediate: 21504,
                heads: 32,
                kv_heads: 16,
                head_dim: 128,
                layers: 62,
                vocab: 262_144,
            },
            LlmModel::Mistral24b => ModelDims {
                hidden: 5120,
                intermediate: 32768,
                heads: 32,
                kv_heads: 8,
                head_dim: 128,
                layers: 40,
                vocab: 131_072,
            },
            LlmModel::Mistral123b => ModelDims {
                hidden: 12288,
                intermediate: 28672,
                heads: 96,
                kv_heads: 8,
                head_dim: 128,
                layers: 88,
                vocab: 32_768,
            },
        }
    }
}

impl core::fmt::Display for LlmModel {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.write_str(self.name())
    }
}

/// The linear layers profiled within a transformer block (§6.1 workloads).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum LayerKind {
    /// Merged query/key/value projection.
    QkvProj,
    /// Attention output projection.
    OProj,
    /// Merged FFN gate + up projection.
    GateUpProj,
    /// FFN down projection.
    DownProj,
    /// The model's LM head.
    LmHead,
}

impl LayerKind {
    /// The four per-block linear layers.
    pub const BLOCK: [LayerKind; 4] = [
        LayerKind::QkvProj,
        LayerKind::OProj,
        LayerKind::GateUpProj,
        LayerKind::DownProj,
    ];

    /// All profiled layers including the LM head.
    pub const ALL: [LayerKind; 5] = [
        LayerKind::QkvProj,
        LayerKind::OProj,
        LayerKind::GateUpProj,
        LayerKind::DownProj,
        LayerKind::LmHead,
    ];

    /// Display name matching the paper's figures.
    pub fn name(self) -> &'static str {
        match self {
            LayerKind::QkvProj => "QKV_proj",
            LayerKind::OProj => "O_proj",
            LayerKind::GateUpProj => "GateUp_proj",
            LayerKind::DownProj => "Down_proj",
            LayerKind::LmHead => "LM_head",
        }
    }

    /// The weight matrix dimensions `(M, K)` for this layer in a model.
    pub fn weight_dims(self, dims: &ModelDims) -> (u64, u64) {
        match self {
            LayerKind::QkvProj => (
                (dims.heads + 2 * dims.kv_heads) * dims.head_dim,
                dims.hidden,
            ),
            LayerKind::OProj => (dims.hidden, dims.heads * dims.head_dim),
            LayerKind::GateUpProj => (2 * dims.intermediate, dims.hidden),
            LayerKind::DownProj => (dims.hidden, dims.intermediate),
            LayerKind::LmHead => (dims.vocab, dims.hidden),
        }
    }

    /// The GEMM problem for this layer with `n` tokens in flight.
    pub fn gemm_shape(self, model: LlmModel, n: u64) -> GemmShape {
        let (m, k) = self.weight_dims(&model.dims());
        GemmShape::new(m, k, n)
    }
}

impl core::fmt::Display for LayerKind {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn llama8b_gateup_is_the_paper_shape() {
        // §6.1 micro-analysis uses M=28672, K=4096 (the merged GateUp of
        // LLaMA3.1-8B).
        let s = LayerKind::GateUpProj.gemm_shape(LlmModel::Llama31_8b, 32);
        assert_eq!((s.m, s.k, s.n), (28672, 4096, 32));
    }

    #[test]
    fn llama8b_qkv_gqa_shape() {
        // 32 Q heads + 2×8 KV heads at dim 128 = 6144 output rows.
        let s = LayerKind::QkvProj.gemm_shape(LlmModel::Llama31_8b, 8);
        assert_eq!((s.m, s.k), (6144, 4096));
    }

    #[test]
    fn oproj_is_the_small_shape() {
        let s = LayerKind::OProj.gemm_shape(LlmModel::Llama31_8b, 32);
        assert_eq!((s.m, s.k), (4096, 4096));
    }

    #[test]
    fn every_model_layer_is_tileable() {
        for model in LlmModel::ALL {
            for layer in LayerKind::ALL {
                let (m, k) = layer.weight_dims(&model.dims());
                assert_eq!(m % 8, 0, "{model} {layer} M={m}");
                assert_eq!(k % 8, 0, "{model} {layer} K={k}");
            }
        }
    }

    #[test]
    fn parameter_counts_in_expected_band() {
        // Within ±20% of the marketing parameter counts.
        let cases = [
            (LlmModel::Llama31_8b, 8.0e9),
            (LlmModel::Llama31_70b, 70.0e9),
            (LlmModel::Llama31_405b, 405.0e9),
            (LlmModel::Qwen25_32b, 32.0e9),
            (LlmModel::Mistral24b, 24.0e9),
        ];
        for (model, want) in cases {
            let got = model.dims().total_params() as f64;
            let rel = (got - want).abs() / want;
            assert!(rel < 0.25, "{model}: {got:.2e} vs {want:.2e}");
        }
    }

    #[test]
    fn weight_footprints_match_section_65() {
        // §6.5: 14.96 GB (8B), 43.92 GB (24B), 131.56 GB (70B) weight bytes.
        let gb = |m: LlmModel| m.dims().weight_bytes_bf16() as f64 / 1e9;
        assert!(
            (gb(LlmModel::Llama31_8b) - 14.96).abs() < 2.0,
            "{}",
            gb(LlmModel::Llama31_8b)
        );
        assert!(
            (gb(LlmModel::Mistral24b) - 43.92).abs() < 4.5,
            "{}",
            gb(LlmModel::Mistral24b)
        );
        assert!(
            (gb(LlmModel::Llama31_70b) - 131.56).abs() < 12.0,
            "{}",
            gb(LlmModel::Llama31_70b)
        );
    }

    #[test]
    fn kv_bytes_per_token() {
        // LLaMA3.1-8B: 2 × 2 × 8 × 128 × 32 layers = 131072 bytes/token.
        assert_eq!(LlmModel::Llama31_8b.dims().kv_bytes_per_token(), 131_072);
    }

    #[test]
    fn family_mapping() {
        assert_eq!(LlmModel::Qwen25_72b.family(), ModelFamily::Qwen25);
        assert_eq!(LlmModel::Gemma3_12b.family(), ModelFamily::Gemma3);
    }
}

//! The lossy comparator of §7: a Marlin-style W8A16 kernel model.
//!
//! Marlin reads 8-bit quantized weights (half the BF16 bytes) and dequantizes
//! into Tensor-Core fragments — structurally the same "load less, compute
//! dense" trick as ZipGEMM, but lossy. The paper measures 0.143 ms vs
//! ZipGEMM's 0.194 ms on the 28672×4096 shape at batch 32 on an RTX4090 and
//! notes the 1.36× gap matches the effective bit-width ratio (~11 bits vs 8).

use zipserv_gpu_sim::device::DeviceSpec;
use zipserv_gpu_sim::instr::{InstrKind, InstrMix};
use zipserv_gpu_sim::kernel::{ExecutionMode, KernelProfile, KernelTime};
use zipserv_gpu_sim::memory::DramTraffic;
use zipserv_gpu_sim::occupancy::LaunchGrid;
use zipserv_gpu_sim::roofline::GemmShape;

use crate::cublas_model::gemm_mem_efficiency;

/// The W8A16 mixed-precision kernel model.
#[derive(Debug, Clone, Copy, Default)]
pub struct MarlinW8A16;

impl MarlinW8A16 {
    /// Cost sheet: 1 byte per weight + BF16 activations, light dequant ALU.
    pub fn kernel_profile(shape: GemmShape, spec: &DeviceSpec) -> KernelProfile {
        let weight_bytes = shape.m * shape.k; // int8
        let act_bytes = shape.activation_bytes();
        let mut p = KernelProfile::empty("marlin-w8a16");
        p.dram = DramTraffic::streaming(weight_bytes + act_bytes, shape.output_bytes())
            .with_efficiency(gemm_mem_efficiency(spec, shape.n));
        let mut alu = InstrMix::new();
        // Dequantization: one subtract + one scale fusion per weight.
        alu.add(InstrKind::Iadd, shape.m * shape.k);
        alu.add(InstrKind::Lop3, shape.m * shape.k);
        p.alu = alu;
        p.tensor_flops = shape.flops();
        p.grid = LaunchGrid::for_gemm(shape.m, shape.n, 128, 64, 2).with_residency(2);
        p.mode = ExecutionMode::Pipelined {
            overlap_efficiency: 0.93,
        };
        p
    }

    /// Executes the model.
    pub fn time(shape: GemmShape, spec: &DeviceSpec) -> KernelTime {
        Self::kernel_profile(shape, spec).execute(spec)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fused::{typical_stats, FusedZipGemm};
    use zipserv_gpu_sim::device::Gpu;

    #[test]
    fn marlin_latency_matches_paper() {
        // §7: 0.143 ms on 28672×4096 @ batch 32, RTX4090.
        let t = MarlinW8A16::time(GemmShape::new(28672, 4096, 32), &Gpu::Rtx4090.spec());
        assert!(
            t.total_us > 115.0 && t.total_us < 175.0,
            "got {} us",
            t.total_us
        );
    }

    #[test]
    fn gap_to_zipgemm_tracks_bitwidth_ratio() {
        // §7: ZipGEMM trails Marlin by ≈1.36×, close to ~11.3/8 bits.
        let spec = Gpu::Rtx4090.spec();
        let shape = GemmShape::new(28672, 4096, 32);
        let marlin = MarlinW8A16::time(shape, &spec).total_us;
        let fused = FusedZipGemm::time(&typical_stats(28672, 4096), 32, &spec).total_us;
        let gap = fused / marlin;
        assert!(gap > 1.15 && gap < 1.65, "gap {gap}");
    }

    #[test]
    fn marlin_is_memory_bound_at_decode() {
        let t = MarlinW8A16::time(GemmShape::new(28672, 4096, 32), &Gpu::L40s.spec());
        assert_eq!(t.bottleneck(), "mem");
    }
}

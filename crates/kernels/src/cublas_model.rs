//! The cuBLAS_TC-like dense GEMM baseline: an autotuned Tensor-Core GEMM
//! cost model.
//!
//! cuBLAS ships hundreds of pre-tuned tile configurations and picks per
//! shape; the model mirrors that by searching a candidate set of block-tile
//! and split-K configurations and keeping the fastest. Datacenter parts
//! (A100/H800) reach a markedly lower fraction of their HBM bandwidth on
//! skinny decode-stage shapes — the measured effect behind the paper's §6.3
//! cross-tier comparison — captured by [`gemm_mem_efficiency`].

use zipserv_gpu_sim::device::{Arch, DeviceSpec, Tier};
use zipserv_gpu_sim::kernel::{ExecutionMode, KernelProfile, KernelTime};
use zipserv_gpu_sim::memory::DramTraffic;
use zipserv_gpu_sim::occupancy::LaunchGrid;
use zipserv_gpu_sim::roofline::GemmShape;

/// Achievable fraction of copy bandwidth for a tuned dense GEMM at `n`
/// tokens in flight.
///
/// Consumer (inference-optimized) parts keep their GDDR pipes busy even on
/// skinny matrix-vector-like shapes; HBM parts need far more concurrency
/// and reach only ~54–65% of peak there (A100 measured ≈1.1 TB/s of
/// 2.04 TB/s on the paper's decode shapes). Efficiency recovers for
/// prefill-sized `n`.
pub fn gemm_mem_efficiency(spec: &DeviceSpec, n: u64) -> f64 {
    let skinny = match spec.tier {
        Tier::Consumer => 0.91,
        Tier::Datacenter => match spec.arch {
            Arch::Ampere => 0.63,
            Arch::Hopper => 0.77,
            _ => 0.80,
        },
    };
    let full = 0.95;
    if n <= 128 {
        skinny
    } else if n >= 2048 {
        full
    } else {
        // Log-linear interpolation between the regimes.
        let t = ((n as f64).ln() - (128f64).ln()) / ((2048f64).ln() - (128f64).ln());
        skinny + t * (full - skinny)
    }
}

/// Candidate block-tile configurations (M×N) of the autotuner.
const TILE_CONFIGS: [(u64, u64); 6] = [
    (256, 128),
    (128, 128),
    (128, 64),
    (64, 64),
    (128, 32),
    (64, 32),
];

/// The cuBLAS_TC-like kernel.
#[derive(Debug, Clone, Copy, Default)]
pub struct CublasTc;

impl CublasTc {
    /// Builds the cost sheet for one candidate configuration.
    fn profile_for(
        shape: GemmShape,
        spec: &DeviceSpec,
        tile: (u64, u64),
        split_k: u64,
    ) -> KernelProfile {
        let read = shape.weight_bytes() + shape.activation_bytes();
        // Split-K spills FP32 partials to global memory and re-reads them.
        let partial_bytes = if split_k > 1 {
            8 * shape.m * shape.n * (split_k - 1)
        } else {
            0
        };
        let mut p = KernelProfile::empty("cublas_tc");
        p.dram = DramTraffic::streaming(
            read + partial_bytes / 2,
            shape.output_bytes() + partial_bytes / 2,
        )
        .with_efficiency(gemm_mem_efficiency(spec, shape.n));
        p.tensor_flops = shape.flops();
        p.grid = LaunchGrid::for_gemm(shape.m, shape.n, tile.0, tile.1, split_k).with_residency(2);
        p.mode = ExecutionMode::Pipelined {
            overlap_efficiency: 0.93,
        };
        p
    }

    /// Autotunes and returns the best configuration's cost sheet.
    pub fn kernel_profile(shape: GemmShape, spec: &DeviceSpec) -> KernelProfile {
        let mut best: Option<(f64, KernelProfile)> = None;
        for &tile in &TILE_CONFIGS {
            for split_k in [1u64, 2, 4, 8] {
                if split_k > 1 && shape.k < 1024 * split_k {
                    continue; // not enough reduction depth to split
                }
                let p = Self::profile_for(shape, spec, tile, split_k);
                let t = p.execute(spec).total_us;
                if best.as_ref().map(|(bt, _)| t < *bt).unwrap_or(true) {
                    best = Some((t, p));
                }
            }
        }
        best.expect("candidate set is non-empty").1
    }

    /// Executes the autotuned kernel on a device.
    pub fn time(shape: GemmShape, spec: &DeviceSpec) -> KernelTime {
        Self::kernel_profile(shape, spec).execute(spec)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use zipserv_gpu_sim::device::Gpu;

    /// The paper's micro-analysis shape: LLaMA3.1-8B GateUp at batch 32.
    fn gateup() -> GemmShape {
        GemmShape::new(28672, 4096, 32)
    }

    #[test]
    fn rtx4090_gateup_latency_in_paper_band() {
        // §7 implies cuBLAS ≈ 0.26–0.30 ms for this shape on the RTX4090
        // (ZipGEMM at 0.194 ms with ~1.4× speedup).
        let t = CublasTc::time(gateup(), &Gpu::Rtx4090.spec());
        assert!(
            t.total_us > 240.0 && t.total_us < 330.0,
            "got {} us",
            t.total_us
        );
        assert_eq!(t.bottleneck(), "mem");
    }

    #[test]
    fn a100_matches_measured_skinny_inefficiency() {
        // §6.3: A100 cuBLAS ≈ 0.215 ms on this shape (≈54% of HBM peak).
        let t = CublasTc::time(gateup(), &Gpu::A100.spec());
        assert!(
            t.total_us > 190.0 && t.total_us < 260.0,
            "got {} us",
            t.total_us
        );
    }

    #[test]
    fn h800_beats_rtx5090_by_about_half() {
        // §6.3: a standard RTX5090 trails the H800 by 53.3% on LLaMA3.1-8B.
        let h800 = CublasTc::time(gateup(), &Gpu::H800.spec()).total_us;
        let r5090 = CublasTc::time(gateup(), &Gpu::Rtx5090.spec()).total_us;
        let gap = r5090 / h800 - 1.0;
        assert!(gap > 0.30 && gap < 0.75, "gap {gap}");
    }

    #[test]
    fn prefill_shapes_become_compute_bound() {
        let spec = Gpu::Rtx4090.spec();
        let t = CublasTc::time(GemmShape::new(28672, 4096, 8192), &spec);
        assert_eq!(t.bottleneck(), "tensor");
    }

    #[test]
    fn autotuner_beats_any_fixed_config() {
        let spec = Gpu::L40s.spec();
        for shape in [
            GemmShape::new(4096, 4096, 32),
            GemmShape::new(28672, 4096, 8),
            GemmShape::new(6144, 4096, 16),
        ] {
            let tuned = CublasTc::time(shape, &spec).total_us;
            let fixed = CublasTc::profile_for(shape, &spec, (128, 128), 1)
                .execute(&spec)
                .total_us;
            assert!(tuned <= fixed + 1e-9, "{shape:?}");
        }
    }

    #[test]
    fn efficiency_interpolates_monotonically() {
        let spec = Gpu::A100.spec();
        let mut last = 0.0;
        for n in [8, 128, 256, 512, 1024, 2048, 8192] {
            let e = gemm_mem_efficiency(&spec, n);
            assert!(e >= last, "n={n}");
            last = e;
        }
        assert!((gemm_mem_efficiency(&spec, 8) - 0.63).abs() < 1e-12);
        assert!((gemm_mem_efficiency(&spec, 4096) - 0.95).abs() < 1e-12);
    }

    #[test]
    fn consumer_parts_keep_skinny_efficiency() {
        assert!(gemm_mem_efficiency(&Gpu::Rtx4090.spec(), 32) > 0.9);
        assert!(gemm_mem_efficiency(&Gpu::L40s.spec(), 32) > 0.9);
    }

    #[test]
    fn larger_batch_needs_more_time_but_less_per_token() {
        let spec = Gpu::Rtx4090.spec();
        let t8 = CublasTc::time(GemmShape::new(28672, 4096, 8), &spec).total_us;
        let t64 = CublasTc::time(GemmShape::new(28672, 4096, 64), &spec).total_us;
        assert!(t64 > t8 * 0.95, "more tokens is never faster in total");
        assert!(t64 / 64.0 < t8 / 8.0, "amortization per token");
    }
}

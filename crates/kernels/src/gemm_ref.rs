//! The dense reference GEMM: the correctness oracle.
//!
//! `Y = W · X` with BF16 operands and FP32 accumulation in ascending-`k`
//! order — the exact accumulation contract the fused ZipGEMM honors, so the
//! two can be compared bitwise.

use zipserv_bf16::{Bf16, Matrix};

/// Computes `Y = W · X` with FP32 accumulation (ascending `k`).
///
/// # Panics
///
/// Panics if `x.rows() != w.cols()`.
///
/// # Example
///
/// ```
/// use zipserv_bf16::{Bf16, Matrix};
/// use zipserv_kernels::gemm_ref::gemm;
///
/// let w = Matrix::from_fn(2, 2, |r, c| Bf16::from_f32((r + c) as f32));
/// let x = Matrix::from_fn(2, 1, |_, _| Bf16::ONE);
/// let y = gemm(&w, &x);
/// assert_eq!(y[(0, 0)], 1.0);
/// assert_eq!(y[(1, 0)], 3.0);
/// ```
pub fn gemm(w: &Matrix<Bf16>, x: &Matrix<Bf16>) -> Matrix<f32> {
    assert_eq!(x.rows(), w.cols(), "inner dimensions must agree");
    let (m, k, n) = (w.rows(), w.cols(), x.cols());
    Matrix::from_fn(m, n, |r, c| {
        let mut acc = 0.0f32;
        for kk in 0..k {
            acc += w[(r, kk)].to_f32() * x[(kk, c)].to_f32();
        }
        acc
    })
}

/// The reference GEMM rounded to BF16 output.
pub fn gemm_bf16(w: &Matrix<Bf16>, x: &Matrix<Bf16>) -> Matrix<Bf16> {
    let y = gemm(w, x);
    Matrix::from_fn(y.rows(), y.cols(), |r, c| Bf16::from_f32(y[(r, c)]))
}

/// A cache-blocked variant producing identical results (ascending `k`
/// within and across tiles), demonstrating the accumulation-order contract.
pub fn gemm_tiled(w: &Matrix<Bf16>, x: &Matrix<Bf16>, tile_k: usize) -> Matrix<f32> {
    assert_eq!(x.rows(), w.cols(), "inner dimensions must agree");
    assert!(tile_k > 0, "tile must be nonzero");
    let (m, k, n) = (w.rows(), w.cols(), x.cols());
    let mut y = Matrix::<f32>::zeros(m, n);
    for k0 in (0..k).step_by(tile_k) {
        let k1 = (k0 + tile_k).min(k);
        for r in 0..m {
            for c in 0..n {
                let mut acc = y[(r, c)];
                for kk in k0..k1 {
                    acc += w[(r, kk)].to_f32() * x[(kk, c)].to_f32();
                }
                y[(r, c)] = acc;
            }
        }
    }
    y
}

#[cfg(test)]
mod tests {
    use super::*;
    use zipserv_bf16::gen::WeightGen;

    #[test]
    fn identity_multiplication() {
        let eye = Matrix::from_fn(4, 4, |r, c| if r == c { Bf16::ONE } else { Bf16::ZERO });
        let x = WeightGen::new(0.1).seed(1).matrix(4, 3);
        let y = gemm(&eye, &x);
        for r in 0..4 {
            for c in 0..3 {
                assert_eq!(y[(r, c)], x[(r, c)].to_f32());
            }
        }
    }

    #[test]
    fn tiled_matches_flat_bitwise() {
        let w = WeightGen::new(0.05).seed(2).matrix(32, 48);
        let x = WeightGen::new(0.5).seed(3).matrix(48, 8);
        let flat = gemm(&w, &x);
        for tile_k in [1, 7, 8, 16, 48, 100] {
            let tiled = gemm_tiled(&w, &x, tile_k);
            assert_eq!(flat.as_slice(), tiled.as_slice(), "tile_k {tile_k}");
        }
    }

    #[test]
    fn known_small_product() {
        let w = Matrix::from_vec(
            2,
            3,
            vec![1.0f32, 2.0, 3.0, 4.0, 5.0, 6.0]
                .into_iter()
                .map(Bf16::from_f32)
                .collect(),
        );
        let x = Matrix::from_vec(
            3,
            2,
            vec![7.0f32, 8.0, 9.0, 10.0, 11.0, 12.0]
                .into_iter()
                .map(Bf16::from_f32)
                .collect(),
        );
        let y = gemm(&w, &x);
        assert_eq!(y[(0, 0)], 58.0);
        assert_eq!(y[(0, 1)], 64.0);
        assert_eq!(y[(1, 0)], 139.0);
        assert_eq!(y[(1, 1)], 154.0);
    }

    #[test]
    fn bf16_output_is_rounded() {
        let w = WeightGen::new(0.05).seed(4).matrix(16, 16);
        let x = WeightGen::new(0.5).seed(5).matrix(16, 4);
        let f = gemm(&w, &x);
        let b = gemm_bf16(&w, &x);
        for r in 0..16 {
            for c in 0..4 {
                assert_eq!(b[(r, c)], Bf16::from_f32(f[(r, c)]));
            }
        }
    }

    #[test]
    #[should_panic(expected = "inner dimensions")]
    fn dimension_mismatch_panics() {
        let w = Matrix::<Bf16>::zeros(4, 4);
        let x = Matrix::<Bf16>::zeros(3, 2);
        let _ = gemm(&w, &x);
    }
}

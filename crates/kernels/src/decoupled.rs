//! Decoupled decompress-then-GEMM pipelines: the DietGPU, nvCOMP and
//! DFloat11 baselines of Figures 1, 11 and 13.
//!
//! Each baseline couples a *real* codec (for compression ratios and
//! bit-exact round-trips, via `zipserv-entropy`) with a GPU decompression
//! cost model pinned to the bandwidth efficiencies the paper measures on
//! entropy-coded decoders: 43.7% for DietGPU's rANS, 76.5% for DFloat11's
//! chunked Huffman (§3.2), with nvCOMP's generic rANS in between.

use crate::cublas_model::CublasTc;
use zipserv_bf16::Bf16;
use zipserv_entropy::huffman::ChunkedHuffman;
use zipserv_entropy::rans::RansBlob;
use zipserv_entropy::split::{recombine, split_planes, Planes};
use zipserv_entropy::CodecError;
use zipserv_gpu_sim::device::DeviceSpec;
use zipserv_gpu_sim::instr::{InstrKind, InstrMix};
use zipserv_gpu_sim::kernel::{ExecutionMode, KernelProfile, KernelTime};
use zipserv_gpu_sim::memory::{DramTraffic, SharedMemTraffic};
use zipserv_gpu_sim::occupancy::LaunchGrid;
use zipserv_gpu_sim::roofline::GemmShape;

/// The entropy-coded baseline codecs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BaselineCodec {
    /// DietGPU: warp-interleaved rANS.
    DietGpu,
    /// nvCOMP: general-purpose rANS.
    NvComp,
    /// DFloat11: chunked canonical Huffman.
    DFloat11,
}

impl BaselineCodec {
    /// All baselines in the paper's order.
    pub const ALL: [BaselineCodec; 3] = [
        BaselineCodec::DietGpu,
        BaselineCodec::NvComp,
        BaselineCodec::DFloat11,
    ];

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            BaselineCodec::DietGpu => "DietGPU",
            BaselineCodec::NvComp => "nvCOMP",
            BaselineCodec::DFloat11 => "DFloat11",
        }
    }

    /// Measured fraction of peak bandwidth the decoder achieves (§3.2).
    pub fn bandwidth_efficiency(self) -> f64 {
        match self {
            BaselineCodec::DietGpu => 0.437,
            BaselineCodec::NvComp => 0.50,
            BaselineCodec::DFloat11 => 0.765,
        }
    }

    /// Compressed size as a fraction of raw BF16, given the exponent-stream
    /// entropy: 8 raw sign/mantissa bits plus entropy-coded exponents with a
    /// per-codec framing overhead.
    pub fn compression_fraction(self, exponent_entropy_bits: f64) -> f64 {
        let overhead = match self {
            BaselineCodec::DietGpu => 1.03,  // interleaved stream states
            BaselineCodec::NvComp => 1.06,   // generic framing
            BaselineCodec::DFloat11 => 1.08, // Huffman integer code lengths + chunk offsets
        };
        (8.0 + exponent_entropy_bits * overhead) / 16.0
    }

    /// Bit-exact round-trip through the *real* codec: compress the weight
    /// stream's exponent plane, return compressed size and the decoded
    /// weights.
    ///
    /// # Errors
    ///
    /// Propagates codec errors (e.g. empty input).
    pub fn roundtrip(self, weights: &[Bf16]) -> Result<(usize, Vec<Bf16>), CodecError> {
        let planes = split_planes(weights);
        let (exp_compressed_bytes, exponents) = match self {
            BaselineCodec::DietGpu => {
                let blob = RansBlob::compress(&planes.exponents, 32)?;
                (blob.stats().compressed_bytes, blob.decompress()?)
            }
            BaselineCodec::NvComp => {
                let blob = RansBlob::compress(&planes.exponents, 8)?;
                (blob.stats().compressed_bytes, blob.decompress()?)
            }
            BaselineCodec::DFloat11 => {
                let blob = ChunkedHuffman::compress(
                    &planes.exponents,
                    ChunkedHuffman::DEFAULT_CHUNK_SYMBOLS,
                )?;
                (blob.stats().compressed_bytes, blob.decompress()?)
            }
        };
        let restored = recombine(&Planes {
            exponents,
            sign_mantissa: planes.sign_mantissa.clone(),
        });
        Ok((exp_compressed_bytes + planes.sign_mantissa.len(), restored))
    }

    /// The decompression kernel's cost sheet for an `m × k` BF16 matrix.
    ///
    /// Reads the compressed stream, writes the dense matrix; the achieved
    /// bandwidth is the measured efficiency. rANS decoders additionally
    /// hammer shared-memory lookup tables (DietGPU's millions of bank
    /// conflicts in Figure 12(c)); Huffman decoders pay bit-serial ALU work
    /// with warp divergence.
    pub fn decomp_profile(self, m: u64, k: u64, exponent_entropy_bits: f64) -> KernelProfile {
        let raw = 2 * m * k;
        let compressed = (raw as f64 * self.compression_fraction(exponent_entropy_bits)) as u64;
        let elems = m * k;

        let mut p = KernelProfile::empty(match self {
            BaselineCodec::DietGpu => "dietgpu-decomp",
            BaselineCodec::NvComp => "nvcomp-decomp",
            BaselineCodec::DFloat11 => "dfloat11-decomp",
        });
        p.dram =
            DramTraffic::streaming(compressed, raw).with_efficiency(self.bandwidth_efficiency());
        let mut alu = InstrMix::new();
        match self {
            BaselineCodec::DietGpu | BaselineCodec::NvComp => {
                // State update + slot lookup per symbol.
                alu.add(InstrKind::Iadd, 4 * elems);
                alu.add(InstrKind::Shift, 3 * elems);
                alu.add(InstrKind::Lop3, 2 * elems);
                // Table-driven decode: one LUT transaction per symbol with
                // heavy bank conflicts.
                p.smem = SharedMemTraffic::with_conflicts(elems / 8, 6.0);
                p.divergence = 1.3; // renormalization branch
            }
            BaselineCodec::DFloat11 => {
                // Bit-serial symbol extraction: ~3.3 iterations × 3 ops.
                alu.add(InstrKind::Iadd, 5 * elems);
                alu.add(InstrKind::Shift, 5 * elems);
                alu.add(InstrKind::Sel, 3 * elems);
                p.smem = SharedMemTraffic::with_conflicts(elems / 16, 2.0);
                p.divergence = 1.8; // variable-length symbols in lockstep
            }
        }
        p.alu = alu;
        p.grid = LaunchGrid {
            blocks: (elems / 65536).max(64),
            blocks_per_sm: 2,
        };
        p.mode = ExecutionMode::Serial; // staged decode: no compute to hide behind
        p
    }
}

impl core::fmt::Display for BaselineCodec {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.write_str(self.name())
    }
}

/// A decoupled pipeline: decompress the whole weight matrix to global
/// memory, then run the dense GEMM on it (Figure 4).
#[derive(Debug, Clone, Copy)]
pub struct DecoupledPipeline {
    /// Which codec performs the decompression stage.
    pub codec: BaselineCodec,
    /// Exponent-stream entropy assumed for sizing (bits).
    pub exponent_entropy_bits: f64,
}

/// The timing breakdown of one decoupled pipeline invocation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PipelineTime {
    /// Decompression stage (µs).
    pub decomp_us: f64,
    /// Dense GEMM stage (µs).
    pub gemm_us: f64,
}

impl PipelineTime {
    /// Total pipeline latency.
    pub fn total_us(&self) -> f64 {
        self.decomp_us + self.gemm_us
    }
}

impl DecoupledPipeline {
    /// A pipeline at the paper's typical exponent entropy (~2.65 bits).
    pub fn new(codec: BaselineCodec) -> Self {
        DecoupledPipeline {
            codec,
            exponent_entropy_bits: 2.65,
        }
    }

    /// Times the full decompress-then-GEMM sequence on a device.
    pub fn time(&self, shape: GemmShape, spec: &DeviceSpec) -> PipelineTime {
        let decomp = self
            .codec
            .decomp_profile(shape.m, shape.k, self.exponent_entropy_bits)
            .execute(spec);
        let gemm = CublasTc::time(shape, spec);
        PipelineTime {
            decomp_us: decomp.total_us,
            gemm_us: gemm.total_us,
        }
    }

    /// Times only the decompression stage (Figure 13).
    pub fn decomp_time(&self, m: u64, k: u64, spec: &DeviceSpec) -> KernelTime {
        self.codec
            .decomp_profile(m, k, self.exponent_entropy_bits)
            .execute(spec)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use zipserv_bf16::gen::WeightGen;
    use zipserv_gpu_sim::device::Gpu;

    #[test]
    fn real_codec_roundtrips_are_bit_exact() {
        let weights = WeightGen::new(0.018).seed(41).vector(20_000);
        for codec in BaselineCodec::ALL {
            let (bytes, restored) = codec.roundtrip(&weights).unwrap();
            assert_eq!(restored, weights, "{codec}");
            // Compressed below raw (40 KB) but above the 8-bit floor (20 KB).
            assert!(bytes < 36_000 && bytes > 20_000, "{codec}: {bytes}");
        }
    }

    #[test]
    fn compression_fractions_track_real_codecs() {
        let weights = WeightGen::new(0.018).seed(42).vector(100_000);
        let entropy = {
            let h = zipserv_bf16::stats::ExponentHistogram::from_values(weights.iter().copied());
            h.entropy_bits()
        };
        for codec in BaselineCodec::ALL {
            let (bytes, _) = codec.roundtrip(&weights).unwrap();
            let real_fraction = bytes as f64 / (2.0 * weights.len() as f64);
            let model_fraction = codec.compression_fraction(entropy);
            assert!(
                (real_fraction - model_fraction).abs() < 0.03,
                "{codec}: real {real_fraction} model {model_fraction}"
            );
        }
    }

    #[test]
    fn figure1_decompression_dominates_gemm() {
        // Figure 1: the decoupled decompression step alone takes 1.56–3.44×
        // the inference GEMM time on the L40S GateUp layers.
        let spec = Gpu::L40s.spec();
        let shape = GemmShape::new(28672, 4096, 32);
        for codec in BaselineCodec::ALL {
            let t = DecoupledPipeline::new(codec).time(shape, &spec);
            let ratio = t.decomp_us / t.gemm_us;
            assert!(ratio > 1.3 && ratio < 4.2, "{codec}: decomp/gemm = {ratio}");
        }
    }

    #[test]
    fn decoupled_pipelines_slow_down_inference() {
        // Figure 11: DietGPU/nvCOMP/DFloat11 land at 0.17–0.34× of cuBLAS.
        let spec = Gpu::Rtx4090.spec();
        let shape = GemmShape::new(28672, 4096, 32);
        let dense = CublasTc::time(shape, &spec).total_us;
        let expected = [
            (BaselineCodec::DietGpu, 0.13, 0.26),
            (BaselineCodec::NvComp, 0.15, 0.30),
            (BaselineCodec::DFloat11, 0.24, 0.42),
        ];
        for (codec, lo, hi) in expected {
            let t = DecoupledPipeline::new(codec).time(shape, &spec);
            let speedup = dense / t.total_us();
            assert!(
                speedup > lo && speedup < hi,
                "{codec}: speedup {speedup} outside [{lo},{hi}]"
            );
        }
    }

    #[test]
    fn dfloat11_is_the_fastest_baseline_decoder() {
        let spec = Gpu::L40s.spec();
        let times: Vec<f64> = BaselineCodec::ALL
            .iter()
            .map(|&c| {
                DecoupledPipeline::new(c)
                    .decomp_time(28672, 4096, &spec)
                    .total_us
            })
            .collect();
        // DietGPU slowest, DFloat11 fastest.
        assert!(times[2] < times[1] && times[1] < times[0], "{times:?}");
    }

    #[test]
    fn rans_baselines_have_bank_conflicts() {
        let p = BaselineCodec::DietGpu.decomp_profile(4096, 4096, 2.65);
        assert!(
            p.smem.conflict_count() > 1e6,
            "Figure 12(c): millions of conflicts"
        );
        let z = BaselineCodec::DFloat11.decomp_profile(4096, 4096, 2.65);
        assert!(z.smem.conflict_count() < p.smem.conflict_count());
    }

    #[test]
    fn huffman_divergence_exceeds_rans() {
        let h = BaselineCodec::DFloat11.decomp_profile(1024, 1024, 2.65);
        let r = BaselineCodec::DietGpu.decomp_profile(1024, 1024, 2.65);
        assert!(h.divergence > r.divergence);
    }
}

//! The kernel zoo of the ZipServ evaluation.
//!
//! Everything Figures 11–15 and 18 compare lives here:
//!
//! * [`shapes`] — the layer-shape catalog extracted from the eleven LLMs the
//!   paper benchmarks (LLaMA-3.1 8B/70B/405B, Qwen2.5 7–72B, Gemma-3
//!   12B/27B, Mistral 24B/123B);
//! * [`gemm_ref`] — the dense FP32-accumulate reference GEMM (the
//!   correctness oracle for the fused kernel);
//! * [`cublas_model`] — the cuBLAS_TC-like baseline: an autotuned dense
//!   Tensor-Core GEMM cost model;
//! * [`fused`] — the ZipGEMM launcher (functional + cost model, building on
//!   `zipserv-core`);
//! * [`decoupled`] — decompress-then-GEMM pipelines for DietGPU, nvCOMP,
//!   DFloat11 and ZipServ-Decomp;
//! * [`marlin_model`] — the lossy W8A16 comparator of §7.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod cublas_model;
pub mod decoupled;
pub mod fused;
pub mod gemm_ref;
pub mod marlin_model;
pub mod quant;
pub mod shapes;

pub use cublas_model::CublasTc;
pub use decoupled::{BaselineCodec, DecoupledPipeline};
pub use fused::FusedZipGemm;
pub use shapes::{LayerKind, LlmModel};

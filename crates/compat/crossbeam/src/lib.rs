//! Offline stand-in for the `crossbeam` crate.
//!
//! The container has no network access, so the workspace vendors the one
//! piece of crossbeam the codebase uses: `crossbeam::scope` with
//! `Scope::spawn`, implemented directly on top of `std::thread::scope`
//! (stable since Rust 1.63, which postdates crossbeam's scoped-thread API).
//! Semantics match the call sites' expectations: spawned closures receive a
//! `&Scope` they may use for nested spawns, joins return `thread::Result`,
//! and the outer `scope` call returns `Ok` unless the driving closure logic
//! panicked (std propagates child panics on join, as the callers expect).

use std::thread;

/// Mirror of `crossbeam::thread::Scope`, backed by the std scoped-thread API.
pub struct Scope<'scope, 'env: 'scope> {
    inner: &'scope thread::Scope<'scope, 'env>,
}

impl<'scope, 'env> Clone for Scope<'scope, 'env> {
    fn clone(&self) -> Self {
        *self
    }
}

impl<'scope, 'env> Copy for Scope<'scope, 'env> {}

impl<'scope, 'env> Scope<'scope, 'env> {
    /// Spawns a scoped thread. As in crossbeam, the closure receives a
    /// scope handle usable for nested spawns.
    pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
    where
        F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
        T: Send + 'scope,
    {
        let handle = *self;
        ScopedJoinHandle {
            inner: self.inner.spawn(move || f(&handle)),
        }
    }
}

/// Mirror of `crossbeam::thread::ScopedJoinHandle`.
pub struct ScopedJoinHandle<'scope, T> {
    inner: thread::ScopedJoinHandle<'scope, T>,
}

impl<'scope, T> ScopedJoinHandle<'scope, T> {
    pub fn join(self) -> thread::Result<T> {
        self.inner.join()
    }
}

/// Mirror of `crossbeam::scope`: all threads spawned inside are joined
/// before this returns.
pub fn scope<'env, F, R>(f: F) -> thread::Result<R>
where
    F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
{
    Ok(thread::scope(|s| f(&Scope { inner: s })))
}

/// `crossbeam::thread` module alias, matching the real crate's layout.
pub mod thread_mod {
    pub use super::{scope, Scope, ScopedJoinHandle};
}

#[cfg(test)]
mod tests {
    #[test]
    fn scoped_sum() {
        let data = [1u64, 2, 3, 4, 5, 6, 7, 8];
        let total: u64 = super::scope(|scope| {
            let handles: Vec<_> = data
                .chunks(3)
                .map(|c| scope.spawn(move |_| c.iter().sum::<u64>()))
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).sum()
        })
        .unwrap();
        assert_eq!(total, 36);
    }

    #[test]
    fn nested_spawn() {
        let v = super::scope(|scope| {
            scope
                .spawn(|inner| inner.spawn(|_| 21).join().unwrap() * 2)
                .join()
                .unwrap()
        })
        .unwrap();
        assert_eq!(v, 42);
    }
}

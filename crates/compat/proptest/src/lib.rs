//! Offline stand-in for the `proptest` crate.
//!
//! The container has no network access, so the workspace vendors the small
//! subset of the proptest API the test suites actually use: `Strategy`,
//! `prop_map`, `any::<T>()`, numeric range strategies, tuple composition,
//! `collection::vec`, the `proptest!` macro and the `prop_assert*` macros.
//!
//! Generation is a deterministic splitmix64 stream seeded per test from the
//! test name, so failures are reproducible run-to-run. There is no shrinking:
//! a failing case panics with the generated values visible in the assertion
//! message.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Deterministic random source handed to strategies. As with real proptest,
/// the generator comes from the `rand` crate (here the vendored stand-in's
/// splitmix64 `StdRng`).
#[derive(Clone, Debug)]
pub struct TestRng {
    inner: StdRng,
}

impl TestRng {
    pub fn new(seed: u64) -> Self {
        Self {
            inner: StdRng::seed_from_u64(seed),
        }
    }

    pub fn next_u64(&mut self) -> u64 {
        self.inner.next_u64()
    }

    /// Uniform in `[0, bound)`; `bound` must be non-zero.
    pub fn below(&mut self, bound: u64) -> u64 {
        self.next_u64() % bound
    }

    /// Uniform in `[0, 1)` with 24 bits of resolution.
    pub fn unit_f32(&mut self) -> f32 {
        self.inner.gen()
    }

    /// Uniform in `[0, 1)` with 53 bits of resolution.
    pub fn unit_f64(&mut self) -> f64 {
        self.inner.gen()
    }
}

pub mod test_runner {
    /// Subset of proptest's runner configuration: only `cases` is honoured.
    #[derive(Clone, Debug)]
    pub struct Config {
        pub cases: u32,
    }

    impl Config {
        pub fn with_cases(cases: u32) -> Self {
            Self { cases }
        }
    }

    impl Default for Config {
        fn default() -> Self {
            Self { cases: 256 }
        }
    }
}

pub mod strategy {
    use super::TestRng;
    use std::ops::{Range, RangeInclusive};

    /// Value-generation strategy. Unlike real proptest there is no value
    /// tree / shrinking; `generate` directly yields a concrete value.
    pub trait Strategy {
        type Value;

        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { source: self, f }
        }

        fn prop_flat_map<O, F>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
            O: Strategy,
            F: Fn(Self::Value) -> O,
        {
            FlatMap { source: self, f }
        }

        fn prop_filter<F>(self, whence: &'static str, f: F) -> Filter<Self, F>
        where
            Self: Sized,
            F: Fn(&Self::Value) -> bool,
        {
            Filter {
                source: self,
                whence,
                f,
            }
        }

        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy {
                inner: std::rc::Rc::new(self),
            }
        }
    }

    impl<S: Strategy + ?Sized> Strategy for &S {
        type Value = S::Value;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            (**self).generate(rng)
        }
    }

    #[derive(Clone, Debug)]
    pub struct Map<S, F> {
        pub(crate) source: S,
        pub(crate) f: F,
    }

    impl<S, F, O> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.source.generate(rng))
        }
    }

    #[derive(Clone, Debug)]
    pub struct FlatMap<S, F> {
        source: S,
        f: F,
    }

    impl<S, F, O> Strategy for FlatMap<S, F>
    where
        S: Strategy,
        O: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O::Value;
        fn generate(&self, rng: &mut TestRng) -> O::Value {
            (self.f)(self.source.generate(rng)).generate(rng)
        }
    }

    #[derive(Clone, Debug)]
    pub struct Filter<S, F> {
        source: S,
        whence: &'static str,
        f: F,
    }

    impl<S, F> Strategy for Filter<S, F>
    where
        S: Strategy,
        F: Fn(&S::Value) -> bool,
    {
        type Value = S::Value;
        fn generate(&self, rng: &mut TestRng) -> S::Value {
            for _ in 0..10_000 {
                let v = self.source.generate(rng);
                if (self.f)(&v) {
                    return v;
                }
            }
            panic!(
                "prop_filter {:?} rejected 10000 consecutive values",
                self.whence
            );
        }
    }

    pub struct BoxedStrategy<T> {
        inner: std::rc::Rc<dyn Strategy<Value = T>>,
    }

    impl<T> Clone for BoxedStrategy<T> {
        fn clone(&self) -> Self {
            Self {
                inner: self.inner.clone(),
            }
        }
    }

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            self.inner.generate(rng)
        }
    }

    /// Strategy that always yields a clone of the same value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u64;
                    (self.start as i128 + rng.below(span) as i128) as $t
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi as i128 - lo as i128 + 1) as u64;
                    (lo as i128 + rng.below(span) as i128) as $t
                }
            }
        )*};
    }

    int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Strategy for Range<f32> {
        type Value = f32;
        fn generate(&self, rng: &mut TestRng) -> f32 {
            self.start + rng.unit_f32() * (self.end - self.start)
        }
    }

    impl Strategy for Range<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut TestRng) -> f64 {
            self.start + rng.unit_f64() * (self.end - self.start)
        }
    }

    macro_rules! tuple_strategy {
        ($(($($s:ident . $idx:tt),+))*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        )*};
    }

    tuple_strategy! {
        (A.0)
        (A.0, B.1)
        (A.0, B.1, C.2)
        (A.0, B.1, C.2, D.3)
        (A.0, B.1, C.2, D.3, E.4)
        (A.0, B.1, C.2, D.3, E.4, F.5)
    }
}

pub mod arbitrary {
    use super::strategy::Strategy;
    use super::TestRng;
    use std::marker::PhantomData;

    /// Types with a canonical "any value" strategy.
    pub trait Arbitrary: Sized {
        fn arbitrary_value(rng: &mut TestRng) -> Self;
    }

    macro_rules! arbitrary_uint {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary_value(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    arbitrary_uint!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary_value(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    impl Arbitrary for f32 {
        fn arbitrary_value(rng: &mut TestRng) -> f32 {
            // Finite values only; keeps arithmetic-heavy properties meaningful.
            (rng.unit_f32() - 0.5) * 2.0e6
        }
    }

    impl Arbitrary for f64 {
        fn arbitrary_value(rng: &mut TestRng) -> f64 {
            (rng.unit_f64() - 0.5) * 2.0e12
        }
    }

    pub struct Any<T>(PhantomData<T>);

    impl<T> Clone for Any<T> {
        fn clone(&self) -> Self {
            *self
        }
    }
    impl<T> Copy for Any<T> {}

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary_value(rng)
        }
    }

    /// `any::<T>()` — the canonical strategy for `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }
}

pub mod collection {
    use super::strategy::Strategy;
    use super::TestRng;
    use std::ops::{Range, RangeInclusive};

    /// Inclusive-exclusive length bounds for collection strategies.
    #[derive(Clone, Copy, Debug)]
    pub struct SizeRange {
        lo: usize,
        hi: usize, // exclusive
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            Self { lo: n, hi: n + 1 }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            Self {
                lo: r.start,
                hi: r.end,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            Self {
                lo: *r.start(),
                hi: *r.end() + 1,
            }
        }
    }

    #[derive(Clone, Debug)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            assert!(self.size.lo < self.size.hi, "empty size range");
            let span = (self.size.hi - self.size.lo) as u64;
            let len = self.size.lo + rng.below(span) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// `vec(strategy, len)` — a vector whose length is drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }
}

pub mod prelude {
    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::collection;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

/// Seed derived from the test name so each test gets a stable, distinct
/// generation stream.
pub fn seed_from_name(name: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Skips the current generated case when the assumption does not hold.
/// Only meaningful inside a `proptest!` body (expands to `continue` in the
/// per-case loop). Unlike real proptest there is no rejection budget.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            continue;
        }
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($($t:tt)*) => { assert!($($t)*) };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($($t:tt)*) => { assert_eq!($($t)*) };
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($($t:tt)*) => { assert_ne!($($t)*) };
}

#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@with_config ($cfg) $($rest)*);
    };
    (@with_config ($cfg:expr) $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::Config = $cfg;
            let mut rng = $crate::TestRng::new($crate::seed_from_name(stringify!($name)));
            for _case in 0..config.cases {
                $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut rng);)+
                $body
            }
        }
    )*};
    ($($rest:tt)*) => {
        $crate::proptest!(@with_config ($crate::test_runner::Config::default()) $($rest)*);
    };
}

//! Offline stand-in for the `bytes` crate.
//!
//! The container has no network access, so the workspace vendors the subset
//! of the bytes API the serializers use: `BytesMut` as a growable write
//! buffer with little-endian `put_*` methods (via `BufMut`), `Bytes` as its
//! frozen read-only form, and `Buf::remaining` on byte slices. Everything is
//! a thin wrapper around `Vec<u8>` — no refcounted zero-copy slicing.

use std::ops::Deref;

/// Read-side cursor trait; only `remaining` is needed by the codebase.
pub trait Buf {
    fn remaining(&self) -> usize;
}

impl Buf for &[u8] {
    #[inline]
    fn remaining(&self) -> usize {
        self.len()
    }
}

impl Buf for Bytes {
    #[inline]
    fn remaining(&self) -> usize {
        self.inner.len()
    }
}

/// Write-side sink trait with the little-endian primitive puts used by the
/// `.ztbe` / `.zarc` serializers.
pub trait BufMut {
    fn put_slice(&mut self, src: &[u8]);

    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }
    fn put_u16_le(&mut self, v: u16) {
        self.put_slice(&v.to_le_bytes());
    }
    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }
    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }
}

/// Growable byte buffer; freeze into [`Bytes`] when writing is done.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct BytesMut {
    inner: Vec<u8>,
}

impl BytesMut {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn with_capacity(cap: usize) -> Self {
        Self {
            inner: Vec::with_capacity(cap),
        }
    }

    pub fn freeze(self) -> Bytes {
        Bytes { inner: self.inner }
    }
}

impl BufMut for BytesMut {
    #[inline]
    fn put_slice(&mut self, src: &[u8]) {
        self.inner.extend_from_slice(src);
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.inner
    }
}

/// Immutable byte blob. Unlike the real crate this owns its storage; clones
/// copy. Fine for the test-scale payloads in this workspace.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Bytes {
    inner: Vec<u8>,
}

impl Bytes {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn copy_from_slice(src: &[u8]) -> Self {
        Self {
            inner: src.to_vec(),
        }
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.inner
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.inner
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(inner: Vec<u8>) -> Self {
        Self { inner }
    }
}

impl From<Bytes> for Vec<u8> {
    fn from(b: Bytes) -> Self {
        b.inner
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn put_and_freeze() {
        let mut b = BytesMut::new();
        b.put_slice(b"AB");
        b.put_u8(0x01);
        b.put_u16_le(0x0302);
        b.put_u32_le(0x07060504);
        b.put_u64_le(0x0f0e0d0c0b0a0908);
        let frozen = b.freeze();
        assert_eq!(
            &frozen[..],
            &[b'A', b'B', 1, 2, 3, 4, 5, 6, 7, 8, 9, 0x0a, 0x0b, 0x0c, 0x0d, 0x0e, 0x0f]
        );
        assert_eq!((&frozen[..]).remaining(), 17);
    }
}

//! Offline stand-in for the `criterion` crate.
//!
//! The container has no network access, so the workspace vendors the subset
//! of the criterion API the 15 bench targets use: `Criterion`,
//! `benchmark_group`, `bench_function`, `Bencher::iter`, `Throughput`,
//! `black_box` and the `criterion_group!`/`criterion_main!` macros.
//!
//! Measurement is a simple wall-clock mean over `sample_size` timed runs
//! after one warm-up run, printed as `ns/iter` (plus derived element
//! throughput when set). Good enough to record a perf trajectory; not a
//! statistical harness.

use std::time::Instant;

pub use std::hint::black_box;

#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    Elements(u64),
    Bytes(u64),
}

/// Benchmark driver. Mirrors criterion's builder-style configuration.
#[derive(Clone, Debug)]
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Self { sample_size: 100 }
    }
}

impl Criterion {
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n >= 2, "sample size must be at least 2");
        self.sample_size = n;
        self
    }

    pub fn measurement_time(self, _d: std::time::Duration) -> Self {
        self
    }

    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(id, self.sample_size, None, &mut f);
        self
    }

    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.to_string(),
            sample_size: self.sample_size,
            throughput: None,
            _criterion: self,
        }
    }
}

pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n >= 2, "sample size must be at least 2");
        self.sample_size = n;
        self
    }

    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id);
        run_one(&full, self.sample_size, self.throughput, &mut f);
        self
    }

    pub fn finish(self) {}
}

/// Handed to each benchmark closure; `iter` times the measured routine.
pub struct Bencher {
    samples_ns: Vec<f64>,
    sample_size: usize,
}

impl Bencher {
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut f: F) {
        // Warm-up doubles as calibration: batch enough calls per timed
        // sample (~20µs) that Instant::now overhead (tens of ns) cannot
        // dominate nanosecond-scale routines.
        const TARGET_SAMPLE_NS: u64 = 20_000;
        let start = Instant::now();
        black_box(f());
        let once_ns = (start.elapsed().as_nanos() as u64).max(1);
        let batch = (TARGET_SAMPLE_NS / once_ns).clamp(1, 100_000);
        self.samples_ns.clear();
        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..batch {
                black_box(f());
            }
            self.samples_ns
                .push(start.elapsed().as_nanos() as f64 / batch as f64);
        }
    }
}

fn run_one<F: FnMut(&mut Bencher)>(
    id: &str,
    sample_size: usize,
    throughput: Option<Throughput>,
    f: &mut F,
) {
    let mut b = Bencher {
        samples_ns: Vec::with_capacity(sample_size),
        sample_size,
    };
    f(&mut b);
    if b.samples_ns.is_empty() {
        println!("{id:<40} (no measurement: bencher.iter never called)");
        return;
    }
    let mean = b.samples_ns.iter().sum::<f64>() / b.samples_ns.len() as f64;
    match throughput {
        Some(Throughput::Elements(n)) if mean > 0.0 => {
            let rate = n as f64 / (mean * 1e-9) / 1e6;
            println!("{id:<40} {mean:>14.1} ns/iter {rate:>10.1} Melem/s");
        }
        Some(Throughput::Bytes(n)) if mean > 0.0 => {
            let rate = n as f64 / (mean * 1e-9) / 1e6;
            println!("{id:<40} {mean:>14.1} ns/iter {rate:>10.1} MB/s");
        }
        _ => println!("{id:<40} {mean:>14.1} ns/iter"),
    }
}

#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $cfg:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $cfg;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

//! No-op derive macros backing the vendored `serde` stand-in.
//!
//! The workspace only uses `#[derive(Serialize, Deserialize)]` as metadata on
//! plain-old-data structs — nothing in the codebase ever invokes a serializer
//! on a derived type (the one hand-written impl lives in `zipserv-bf16`). The
//! derives therefore expand to nothing: the attribute compiles, no impl is
//! generated, and any future call site that actually needs a derived impl
//! fails loudly at compile time instead of silently mis-serializing.

use proc_macro::TokenStream;

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

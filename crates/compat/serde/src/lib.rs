//! Offline stand-in for the `serde` crate.
//!
//! The container has no network access, so the workspace vendors the sliver
//! of the serde API it actually touches: the `Serialize` / `Deserialize`
//! traits (with primitive impls), minimal `Serializer` / `Deserializer`
//! traits, and no-op derive macros. No data format ships with this crate;
//! the derives are metadata-only (see `serde_derive`).

pub use serde_derive::{Deserialize, Serialize};

/// Subset of `serde::Serializer`: only the primitive sinks the codebase uses.
pub trait Serializer: Sized {
    type Ok;
    type Error;

    fn serialize_u16(self, v: u16) -> Result<Self::Ok, Self::Error>;
    fn serialize_u32(self, v: u32) -> Result<Self::Ok, Self::Error>;
    fn serialize_u64(self, v: u64) -> Result<Self::Ok, Self::Error>;
    fn serialize_f64(self, v: f64) -> Result<Self::Ok, Self::Error>;
}

/// Subset of `serde::Serialize`.
pub trait Serialize {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error>;
}

/// Subset of `serde::Deserializer`: primitive sources only.
pub trait Deserializer<'de>: Sized {
    type Error;

    fn deserialize_u16(self) -> Result<u16, Self::Error>;
    fn deserialize_u32(self) -> Result<u32, Self::Error>;
    fn deserialize_u64(self) -> Result<u64, Self::Error>;
    fn deserialize_f64(self) -> Result<f64, Self::Error>;
}

/// Subset of `serde::Deserialize`.
pub trait Deserialize<'de>: Sized {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error>;
}

macro_rules! primitive_impls {
    ($($t:ty => $ser:ident / $de:ident),* $(,)?) => {$(
        impl Serialize for $t {
            fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
                serializer.$ser(*self)
            }
        }
        impl<'de> Deserialize<'de> for $t {
            fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
                deserializer.$de()
            }
        }
    )*};
}

primitive_impls! {
    u16 => serialize_u16 / deserialize_u16,
    u32 => serialize_u32 / deserialize_u32,
    u64 => serialize_u64 / deserialize_u64,
    f64 => serialize_f64 / deserialize_f64,
}

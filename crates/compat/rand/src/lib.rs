//! Offline stand-in for the `rand` crate.
//!
//! The container has no network access, so the workspace vendors the small
//! subset of the rand API the codebase actually uses: `Rng::gen`,
//! `Rng::gen_range`, `Rng::gen_bool`, `SeedableRng::seed_from_u64` and
//! `rngs::StdRng`. The generator is a splitmix64 stream — deterministic,
//! seedable, and statistically good enough for synthetic weight generation,
//! but NOT the ChaCha-based generator real `rand` ships.

use std::ops::Range;

/// Types that can be sampled uniformly from an RNG's raw 64-bit stream.
/// Stand-in for `Standard: Distribution<T>` in real rand.
pub trait Standard: Sized {
    fn from_u64(bits: u64) -> Self;
}

macro_rules! standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            #[inline]
            fn from_u64(bits: u64) -> $t {
                bits as $t
            }
        }
    )*};
}

standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    #[inline]
    fn from_u64(bits: u64) -> bool {
        bits & 1 == 1
    }
}

impl Standard for f32 {
    /// Uniform in `[0, 1)` with 24 bits of resolution.
    #[inline]
    fn from_u64(bits: u64) -> f32 {
        (bits >> 40) as f32 / (1u64 << 24) as f32
    }
}

impl Standard for f64 {
    /// Uniform in `[0, 1)` with 53 bits of resolution.
    #[inline]
    fn from_u64(bits: u64) -> f64 {
        (bits >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// Subset of `rand::Rng`: everything is derived from `next_u64`.
pub trait Rng {
    fn next_u64(&mut self) -> u64;

    #[inline]
    fn gen<T: Standard>(&mut self) -> T {
        T::from_u64(self.next_u64())
    }

    #[inline]
    fn gen_bool(&mut self, p: f64) -> bool {
        self.gen::<f64>() < p
    }

    #[inline]
    fn gen_range<T: SampleRange>(&mut self, range: Range<T>) -> T {
        T::sample(self.next_u64(), range)
    }
}

impl<R: Rng + ?Sized> Rng for &mut R {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Types samplable from a half-open range.
pub trait SampleRange: Sized {
    fn sample(bits: u64, range: Range<Self>) -> Self;
}

macro_rules! sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange for $t {
            #[inline]
            fn sample(bits: u64, range: Range<$t>) -> $t {
                assert!(range.start < range.end, "cannot sample empty range");
                let span = (range.end as i128 - range.start as i128) as u128;
                (range.start as i128 + (bits as u128 % span) as i128) as $t
            }
        }
    )*};
}

sample_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange for f64 {
    #[inline]
    fn sample(bits: u64, range: Range<f64>) -> f64 {
        range.start + f64::from_u64(bits) * (range.end - range.start)
    }
}

impl SampleRange for f32 {
    #[inline]
    fn sample(bits: u64, range: Range<f32>) -> f32 {
        range.start + f32::from_u64(bits) * (range.end - range.start)
    }
}

/// Subset of `rand::SeedableRng`: only `seed_from_u64` is provided.
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

pub mod rngs {
    use super::{Rng, SeedableRng};

    /// Deterministic splitmix64 generator standing in for `rand::rngs::StdRng`.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            Self {
                state: seed ^ 0x9e37_79b9_7f4a_7c15,
            }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..16 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn unit_interval() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn gen_range_bounds() {
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..10_000 {
            let v = rng.gen_range(3usize..17);
            assert!((3..17).contains(&v));
        }
    }
}

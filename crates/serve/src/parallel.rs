//! Tensor- and pipeline-parallel execution modeling.
//!
//! Megatron-style tensor sharding: column-parallel QKV/GateUp (shard `M`),
//! row-parallel O/Down (shard `K`), followed by one all-reduce of the
//! activation after attention and one after the FFN. Pipeline
//! parallelism: layers are split into stages, batches into micro-batches,
//! and [`PipelineSchedule`] accounts the schedule-dependent bubble
//! ([`PipelineKind`]: GPipe fill/drain vs. interleaved 1F1B steady state)
//! plus the per-hop activation transfers between stages.

use crate::cluster::GpuCluster;
use zipserv_gpu_sim::roofline::GemmShape;
use zipserv_kernels::shapes::LayerKind;

/// Shards a layer's GEMM across the cluster's tensor-parallel ranks.
///
/// Returns the per-GPU problem shape.
///
/// # Panics
///
/// Panics if the layer dimension is not divisible by the TP degree.
pub fn shard_layer(layer: LayerKind, shape: GemmShape, tp: u64) -> GemmShape {
    assert!(tp >= 1, "tp must be >= 1");
    match layer {
        // Column parallel: output rows split.
        LayerKind::QkvProj | LayerKind::GateUpProj | LayerKind::LmHead => {
            assert_eq!(shape.m % tp, 0, "M not divisible by tp");
            GemmShape::new(shape.m / tp, shape.k, shape.n)
        }
        // Row parallel: reduction dim split.
        LayerKind::OProj | LayerKind::DownProj => {
            assert_eq!(shape.k % tp, 0, "K not divisible by tp");
            GemmShape::new(shape.m, shape.k / tp, shape.n)
        }
    }
}

/// Ring all-reduce time in microseconds for `bytes` per rank.
///
/// `2·(tp−1)/tp` traversals of the payload per direction plus a fixed
/// per-hop latency.
pub fn allreduce_us(cluster: &GpuCluster, bytes: u64) -> f64 {
    let tp = cluster.tp() as f64;
    if tp <= 1.0 {
        return 0.0;
    }
    let volume = 2.0 * (tp - 1.0) / tp * bytes as f64;
    let bw_bytes_per_us = cluster.link_gbps * 1e3;
    volume / bw_bytes_per_us + 2.0 * (tp - 1.0) * 5.0
}

/// All-reduce traffic per transformer block per step: two reductions of the
/// `batch × hidden` BF16 activation.
pub fn block_allreduce_bytes(hidden: u64, tokens: u64) -> u64 {
    2 * 2 * hidden * tokens
}

/// Point-to-point transfer time in microseconds for one activation hop
/// between adjacent pipeline stages (`bytes` over the inter-stage fabric,
/// plus a fixed per-message latency). Zero when the deployment has a
/// single stage.
pub fn p2p_us(cluster: &GpuCluster, bytes: u64) -> f64 {
    if cluster.pp() <= 1 {
        return 0.0;
    }
    let bw_bytes_per_us = cluster.pp_link_gbps * 1e3;
    bytes as f64 / bw_bytes_per_us + 5.0
}

/// BF16 activation bytes handed from one pipeline stage to the next for
/// `tokens` tokens of hidden size `hidden`.
pub fn stage_activation_bytes(hidden: u64, tokens: u64) -> u64 {
    2 * hidden * tokens
}

/// [`allreduce_us`] under a degraded intra-stage link: transfer time is
/// linear in inverse bandwidth, so a link running at `1/link_factor` of
/// its healthy rate multiplies the collective by `link_factor` (clamped to
/// at least 1 — faults never speed links up). This is the communication
/// model behind [`FaultKind::LinkDegrade`](crate::fault::FaultKind).
pub fn allreduce_us_degraded(cluster: &GpuCluster, bytes: u64, link_factor: f64) -> f64 {
    allreduce_us(cluster, bytes) * link_factor.max(1.0)
}

/// [`p2p_us`] under a degraded inter-stage link (same scaling model as
/// [`allreduce_us_degraded`]).
pub fn p2p_us_degraded(cluster: &GpuCluster, bytes: u64, link_factor: f64) -> f64 {
    p2p_us(cluster, bytes) * link_factor.max(1.0)
}

/// Which pipeline execution schedule a deployment runs.
///
/// The schedule decides how much idle time (*bubble*) each step pays on
/// top of the `micro_batches` busy slots of real work:
///
/// * [`PipelineKind::GPipe`] — fill/drain: every step starts from an empty
///   pipeline and drains it completely, so each stage idles
///   `stages − 1` whole slots per step.
/// * [`PipelineKind::OneFOneB`] — interleaved 1F1B-style steady state:
///   consecutive steps overlap (stage `s` starts step `k+1`'s first
///   micro-batch while later stages finish step `k`), so the fill/drain
///   cost is amortized over the `micro_batches` in-flight positions and
///   each step pays only `(stages − 1) / micro_batches` idle slots.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum PipelineKind {
    /// GPipe fill/drain: the historical (PR 5) model, bubble
    /// `(stages − 1) / (stages + micro_batches − 1)` of the makespan.
    #[default]
    GPipe,
    /// Interleaved one-forward-one-backward steady state: bubble shrinks
    /// to `(stages − 1) / micro_batches` idle slots per step.
    OneFOneB,
}

impl PipelineKind {
    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            PipelineKind::GPipe => "gpipe",
            PipelineKind::OneFOneB => "1f1b",
        }
    }
}

impl core::fmt::Display for PipelineKind {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.write_str(self.name())
    }
}

/// A pipeline schedule: `stages` pipeline stages processing
/// `micro_batches` micro-batches under a [`PipelineKind`].
///
/// With per-micro-batch stage time `t` and per-hop transfer `h`, the
/// makespan is `slots_f() · (t + h)` where `slots_f()` counts the
/// `micro_batches` busy slots plus the schedule's idle slots
/// ([`PipelineSchedule::steady_idle_slots`]): `stages − 1` under GPipe
/// (fill + drain every step) and `(stages − 1) / micro_batches` under
/// 1F1B (fill/drain amortized across overlapping steps). The idle
/// fraction — the pipeline *bubble* — is `steady_idle_slots / slots_f`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PipelineSchedule {
    /// Pipeline stages (`pp`).
    pub stages: u32,
    /// Micro-batches per step.
    pub micro_batches: u32,
    /// Execution schedule (default [`PipelineKind::GPipe`]).
    pub kind: PipelineKind,
}

impl PipelineSchedule {
    /// Creates a GPipe schedule (the historical constructor).
    ///
    /// # Panics
    ///
    /// Panics if either degree is zero — use
    /// [`PipelineSchedule::try_new`] for a typed error instead.
    pub fn new(stages: u32, micro_batches: u32) -> Self {
        match Self::try_new(PipelineKind::GPipe, stages, micro_batches) {
            Ok(s) => s,
            Err(e) => panic!("{e}"),
        }
    }

    /// Fallible constructor with an explicit [`PipelineKind`]: returns a
    /// typed [`EngineError`](crate::engine::EngineError) instead of
    /// panicking on a zero degree, so deployment probes (and
    /// `EngineBuilder::try_build`) can reject bad configurations without
    /// unwinding.
    ///
    /// # Errors
    ///
    /// [`EngineError::InvalidParallelism`](crate::engine::EngineError) when
    /// `stages` or `micro_batches` is zero.
    pub fn try_new(
        kind: PipelineKind,
        stages: u32,
        micro_batches: u32,
    ) -> Result<Self, crate::engine::EngineError> {
        use crate::engine::EngineError;
        if stages == 0 {
            return Err(EngineError::InvalidParallelism("stages"));
        }
        if micro_batches == 0 {
            return Err(EngineError::InvalidParallelism("micro_batches"));
        }
        Ok(PipelineSchedule {
            stages,
            micro_batches,
            kind,
        })
    }

    /// Switches the schedule kind (builder style).
    pub fn with_kind(mut self, kind: PipelineKind) -> Self {
        self.kind = kind;
        self
    }

    /// Occupied time slots of one isolated fill/drain pass — a property of
    /// the `(stages, micro_batches)` grid, independent of the schedule
    /// kind. This is what a one-shot pass (cold prefill) costs; steady-state
    /// per-step accounting is [`PipelineSchedule::slots_f`].
    pub fn slots(&self) -> u32 {
        self.stages + self.micro_batches - 1
    }

    /// Idle slots each stage pays per step under this schedule: the
    /// closed-form bubble terms — `stages − 1` for GPipe fill/drain,
    /// `(stages − 1) / micro_batches` for the interleaved 1F1B steady
    /// state (the fill/drain amortizes over the in-flight micro-batch
    /// positions of consecutive overlapping steps).
    pub fn steady_idle_slots(&self) -> f64 {
        let fill = (self.stages - 1) as f64;
        match self.kind {
            PipelineKind::GPipe => fill,
            PipelineKind::OneFOneB => fill / self.micro_batches as f64,
        }
    }

    /// Effective slots charged per step: `micro_batches` busy slots plus
    /// the schedule's idle slots. Equals [`PipelineSchedule::slots`] under
    /// GPipe; strictly smaller under 1F1B whenever `stages > 1` and
    /// `micro_batches > 1`.
    pub fn slots_f(&self) -> f64 {
        self.micro_batches as f64 + self.steady_idle_slots()
    }

    /// Fraction of the makespan each stage sits idle waiting for the
    /// pipeline to fill or drain: `(stages − 1) / (stages +
    /// micro_batches − 1)` under GPipe, `(stages − 1) / (micro_batches² +
    /// stages − 1)` under 1F1B — strictly smaller for `micro_batches ≥ 2`,
    /// identical at a single micro-batch (nothing to interleave).
    pub fn bubble_fraction(&self) -> f64 {
        self.steady_idle_slots() / self.slots_f()
    }

    /// Makespan in the unit of `stage_time` for per-micro-batch stage time
    /// `stage_time` and per-hop transfer `hop_time`.
    pub fn makespan(&self, stage_time: f64, hop_time: f64) -> f64 {
        self.slots_f() * (stage_time + hop_time)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use zipserv_gpu_sim::device::Gpu;

    #[test]
    fn column_parallel_shards_m() {
        let s = shard_layer(LayerKind::GateUpProj, GemmShape::new(65536, 5120, 32), 2);
        assert_eq!((s.m, s.k, s.n), (32768, 5120, 32));
    }

    #[test]
    fn row_parallel_shards_k() {
        let s = shard_layer(LayerKind::DownProj, GemmShape::new(5120, 32768, 32), 4);
        assert_eq!((s.m, s.k, s.n), (5120, 8192, 32));
    }

    #[test]
    fn tp1_is_identity() {
        let shape = GemmShape::new(4096, 4096, 8);
        for layer in LayerKind::ALL {
            assert_eq!(shard_layer(layer, shape, 1), shape);
        }
    }

    #[test]
    fn allreduce_zero_on_single_gpu() {
        let c = GpuCluster::single(Gpu::Rtx4090);
        assert_eq!(allreduce_us(&c, 1 << 20), 0.0);
    }

    #[test]
    fn allreduce_scales_with_bytes_and_ranks() {
        let c2 = GpuCluster::tensor_parallel(Gpu::L40s, 2);
        let c4 = GpuCluster::tensor_parallel(Gpu::L40s, 4);
        let t2 = allreduce_us(&c2, 1 << 20);
        let t4 = allreduce_us(&c4, 1 << 20);
        assert!(t4 > t2, "more ranks move more relative volume");
        assert!(allreduce_us(&c2, 2 << 20) > t2);
    }

    #[test]
    fn block_traffic() {
        // batch 32 × hidden 5120 × 2 bytes × 2 reductions = 655 KB.
        assert_eq!(block_allreduce_bytes(5120, 32), 655_360);
    }

    #[test]
    fn p2p_zero_without_pipeline() {
        let c = GpuCluster::tensor_parallel(Gpu::L40s, 4);
        assert_eq!(p2p_us(&c, 1 << 20), 0.0);
    }

    #[test]
    fn p2p_scales_with_bytes() {
        let c = GpuCluster::pipeline_parallel(Gpu::L40s, 4, 2);
        let one = p2p_us(&c, 1 << 20);
        assert!(one > 0.0);
        assert!(p2p_us(&c, 4 << 20) > 2.0 * one);
        // batch 32 × hidden 4096 × 2 bytes.
        assert_eq!(stage_activation_bytes(4096, 32), 262_144);
    }

    #[test]
    fn degraded_links_scale_and_never_speed_up() {
        let c = GpuCluster::pipeline_parallel(Gpu::L40s, 4, 2);
        let ar = allreduce_us(&c, 1 << 20);
        let hop = p2p_us(&c, 1 << 20);
        assert_eq!(allreduce_us_degraded(&c, 1 << 20, 3.0), 3.0 * ar);
        assert_eq!(p2p_us_degraded(&c, 1 << 20, 3.0), 3.0 * hop);
        // Healthy factor (or a bogus sub-1 factor) is the identity.
        assert_eq!(allreduce_us_degraded(&c, 1 << 20, 1.0), ar);
        assert_eq!(p2p_us_degraded(&c, 1 << 20, 0.25), hop);
    }

    #[test]
    fn bubble_shrinks_with_more_micro_batches() {
        let two = PipelineSchedule::new(4, 2);
        let eight = PipelineSchedule::new(4, 8);
        assert!(eight.bubble_fraction() < two.bubble_fraction());
        assert_eq!(two.slots(), 5);
        // Degenerate single stage: no bubble, makespan = m × stage time.
        let flat = PipelineSchedule::new(1, 4);
        assert_eq!(flat.bubble_fraction(), 0.0);
        assert_eq!(flat.makespan(2.0, 0.0), 8.0);
    }

    #[test]
    fn makespan_matches_gpipe_closed_form() {
        // 4 stages, 8 micro-batches, 3 ms/stage + 1 ms/hop:
        // (4 + 8 − 1) × 4 = 44 ms.
        let s = PipelineSchedule::new(4, 8);
        assert_eq!(s.makespan(3.0, 1.0), 44.0);
    }

    #[test]
    fn one_f_one_b_amortizes_the_fill_drain() {
        // 4 stages, 8 micro-batches: GPipe idles 3 whole slots per step,
        // 1F1B amortizes that to 3/8 of a slot.
        let gpipe = PipelineSchedule::new(4, 8);
        let ifib = gpipe.with_kind(PipelineKind::OneFOneB);
        assert_eq!(gpipe.steady_idle_slots(), 3.0);
        assert_eq!(ifib.steady_idle_slots(), 3.0 / 8.0);
        // slots_f: GPipe keeps the integer slot count; 1F1B is strictly
        // shorter per step.
        assert_eq!(gpipe.slots_f(), gpipe.slots() as f64);
        assert!(ifib.slots_f() < gpipe.slots_f());
        assert!(ifib.bubble_fraction() < gpipe.bubble_fraction());
        assert!(ifib.makespan(3.0, 1.0) < gpipe.makespan(3.0, 1.0));
        // The grid-shape slot count is schedule independent.
        assert_eq!(ifib.slots(), gpipe.slots());
    }

    #[test]
    fn schedules_coincide_with_one_micro_batch_or_one_stage() {
        // m = 1: nothing to interleave, both pay the full fill/drain.
        let g = PipelineSchedule::new(4, 1);
        let i = g.with_kind(PipelineKind::OneFOneB);
        assert_eq!(i.bubble_fraction(), g.bubble_fraction());
        assert_eq!(i.makespan(2.0, 0.5), g.makespan(2.0, 0.5));
        // pp = 1: no pipeline, no bubble under either schedule.
        let flat = PipelineSchedule::new(1, 4).with_kind(PipelineKind::OneFOneB);
        assert_eq!(flat.bubble_fraction(), 0.0);
        assert_eq!(flat.makespan(2.0, 0.0), 8.0);
    }

    #[test]
    fn try_new_rejects_zero_degrees() {
        assert!(PipelineSchedule::try_new(PipelineKind::GPipe, 0, 4).is_err());
        assert!(PipelineSchedule::try_new(PipelineKind::OneFOneB, 4, 0).is_err());
        let ok =
            PipelineSchedule::try_new(PipelineKind::OneFOneB, 4, 8).expect("non-zero degrees plan");
        assert_eq!(ok.kind, PipelineKind::OneFOneB);
        assert_eq!(ok.kind.name(), "1f1b");
        assert_eq!(PipelineKind::default(), PipelineKind::GPipe);
    }
}

//! Tensor- and pipeline-parallel execution modeling.
//!
//! Megatron-style tensor sharding: column-parallel QKV/GateUp (shard `M`),
//! row-parallel O/Down (shard `K`), followed by one all-reduce of the
//! activation after attention and one after the FFN. GPipe-style pipeline
//! parallelism: layers are split into stages, batches into micro-batches,
//! and [`PipelineSchedule`] accounts the fill/drain bubble plus the
//! per-hop activation transfers between stages.

use crate::cluster::GpuCluster;
use zipserv_gpu_sim::roofline::GemmShape;
use zipserv_kernels::shapes::LayerKind;

/// Shards a layer's GEMM across the cluster's tensor-parallel ranks.
///
/// Returns the per-GPU problem shape.
///
/// # Panics
///
/// Panics if the layer dimension is not divisible by the TP degree.
pub fn shard_layer(layer: LayerKind, shape: GemmShape, tp: u64) -> GemmShape {
    assert!(tp >= 1, "tp must be >= 1");
    match layer {
        // Column parallel: output rows split.
        LayerKind::QkvProj | LayerKind::GateUpProj | LayerKind::LmHead => {
            assert_eq!(shape.m % tp, 0, "M not divisible by tp");
            GemmShape::new(shape.m / tp, shape.k, shape.n)
        }
        // Row parallel: reduction dim split.
        LayerKind::OProj | LayerKind::DownProj => {
            assert_eq!(shape.k % tp, 0, "K not divisible by tp");
            GemmShape::new(shape.m, shape.k / tp, shape.n)
        }
    }
}

/// Ring all-reduce time in microseconds for `bytes` per rank.
///
/// `2·(tp−1)/tp` traversals of the payload per direction plus a fixed
/// per-hop latency.
pub fn allreduce_us(cluster: &GpuCluster, bytes: u64) -> f64 {
    let tp = cluster.tp() as f64;
    if tp <= 1.0 {
        return 0.0;
    }
    let volume = 2.0 * (tp - 1.0) / tp * bytes as f64;
    let bw_bytes_per_us = cluster.link_gbps * 1e3;
    volume / bw_bytes_per_us + 2.0 * (tp - 1.0) * 5.0
}

/// All-reduce traffic per transformer block per step: two reductions of the
/// `batch × hidden` BF16 activation.
pub fn block_allreduce_bytes(hidden: u64, tokens: u64) -> u64 {
    2 * 2 * hidden * tokens
}

/// Point-to-point transfer time in microseconds for one activation hop
/// between adjacent pipeline stages (`bytes` over the inter-stage fabric,
/// plus a fixed per-message latency). Zero when the deployment has a
/// single stage.
pub fn p2p_us(cluster: &GpuCluster, bytes: u64) -> f64 {
    if cluster.pp() <= 1 {
        return 0.0;
    }
    let bw_bytes_per_us = cluster.pp_link_gbps * 1e3;
    bytes as f64 / bw_bytes_per_us + 5.0
}

/// BF16 activation bytes handed from one pipeline stage to the next for
/// `tokens` tokens of hidden size `hidden`.
pub fn stage_activation_bytes(hidden: u64, tokens: u64) -> u64 {
    2 * hidden * tokens
}

/// [`allreduce_us`] under a degraded intra-stage link: transfer time is
/// linear in inverse bandwidth, so a link running at `1/link_factor` of
/// its healthy rate multiplies the collective by `link_factor` (clamped to
/// at least 1 — faults never speed links up). This is the communication
/// model behind [`FaultKind::LinkDegrade`](crate::fault::FaultKind).
pub fn allreduce_us_degraded(cluster: &GpuCluster, bytes: u64, link_factor: f64) -> f64 {
    allreduce_us(cluster, bytes) * link_factor.max(1.0)
}

/// [`p2p_us`] under a degraded inter-stage link (same scaling model as
/// [`allreduce_us_degraded`]).
pub fn p2p_us_degraded(cluster: &GpuCluster, bytes: u64, link_factor: f64) -> f64 {
    p2p_us(cluster, bytes) * link_factor.max(1.0)
}

/// A GPipe-style fill/drain pipeline schedule: `stages` pipeline stages
/// processing `micro_batches` micro-batches.
///
/// With per-micro-batch stage time `t` and per-hop transfer `h`, the
/// makespan is `(stages + micro_batches − 1) · (t + h)`: the first
/// micro-batch fills the pipeline over `stages` slots and the remaining
/// `micro_batches − 1` drain one slot apart. The idle fraction — the
/// pipeline *bubble* — is `(stages − 1) / (stages + micro_batches − 1)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PipelineSchedule {
    /// Pipeline stages (`pp`).
    pub stages: u32,
    /// Micro-batches per step.
    pub micro_batches: u32,
}

impl PipelineSchedule {
    /// Creates a schedule.
    ///
    /// # Panics
    ///
    /// Panics if either degree is zero.
    pub fn new(stages: u32, micro_batches: u32) -> Self {
        assert!(stages >= 1, "pipeline needs at least one stage");
        assert!(micro_batches >= 1, "pipeline needs at least one micro-batch");
        PipelineSchedule {
            stages,
            micro_batches,
        }
    }

    /// Occupied time slots from first fill to last drain.
    pub fn slots(&self) -> u32 {
        self.stages + self.micro_batches - 1
    }

    /// Fraction of the makespan each stage sits idle waiting for the
    /// pipeline to fill or drain.
    pub fn bubble_fraction(&self) -> f64 {
        (self.stages - 1) as f64 / self.slots() as f64
    }

    /// Makespan in the unit of `stage_time` for per-micro-batch stage time
    /// `stage_time` and per-hop transfer `hop_time`.
    pub fn makespan(&self, stage_time: f64, hop_time: f64) -> f64 {
        self.slots() as f64 * (stage_time + hop_time)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use zipserv_gpu_sim::device::Gpu;

    #[test]
    fn column_parallel_shards_m() {
        let s = shard_layer(LayerKind::GateUpProj, GemmShape::new(65536, 5120, 32), 2);
        assert_eq!((s.m, s.k, s.n), (32768, 5120, 32));
    }

    #[test]
    fn row_parallel_shards_k() {
        let s = shard_layer(LayerKind::DownProj, GemmShape::new(5120, 32768, 32), 4);
        assert_eq!((s.m, s.k, s.n), (5120, 8192, 32));
    }

    #[test]
    fn tp1_is_identity() {
        let shape = GemmShape::new(4096, 4096, 8);
        for layer in LayerKind::ALL {
            assert_eq!(shard_layer(layer, shape, 1), shape);
        }
    }

    #[test]
    fn allreduce_zero_on_single_gpu() {
        let c = GpuCluster::single(Gpu::Rtx4090);
        assert_eq!(allreduce_us(&c, 1 << 20), 0.0);
    }

    #[test]
    fn allreduce_scales_with_bytes_and_ranks() {
        let c2 = GpuCluster::tensor_parallel(Gpu::L40s, 2);
        let c4 = GpuCluster::tensor_parallel(Gpu::L40s, 4);
        let t2 = allreduce_us(&c2, 1 << 20);
        let t4 = allreduce_us(&c4, 1 << 20);
        assert!(t4 > t2, "more ranks move more relative volume");
        assert!(allreduce_us(&c2, 2 << 20) > t2);
    }

    #[test]
    fn block_traffic() {
        // batch 32 × hidden 5120 × 2 bytes × 2 reductions = 655 KB.
        assert_eq!(block_allreduce_bytes(5120, 32), 655_360);
    }

    #[test]
    fn p2p_zero_without_pipeline() {
        let c = GpuCluster::tensor_parallel(Gpu::L40s, 4);
        assert_eq!(p2p_us(&c, 1 << 20), 0.0);
    }

    #[test]
    fn p2p_scales_with_bytes() {
        let c = GpuCluster::pipeline_parallel(Gpu::L40s, 4, 2);
        let one = p2p_us(&c, 1 << 20);
        assert!(one > 0.0);
        assert!(p2p_us(&c, 4 << 20) > 2.0 * one);
        // batch 32 × hidden 4096 × 2 bytes.
        assert_eq!(stage_activation_bytes(4096, 32), 262_144);
    }

    #[test]
    fn degraded_links_scale_and_never_speed_up() {
        let c = GpuCluster::pipeline_parallel(Gpu::L40s, 4, 2);
        let ar = allreduce_us(&c, 1 << 20);
        let hop = p2p_us(&c, 1 << 20);
        assert_eq!(allreduce_us_degraded(&c, 1 << 20, 3.0), 3.0 * ar);
        assert_eq!(p2p_us_degraded(&c, 1 << 20, 3.0), 3.0 * hop);
        // Healthy factor (or a bogus sub-1 factor) is the identity.
        assert_eq!(allreduce_us_degraded(&c, 1 << 20, 1.0), ar);
        assert_eq!(p2p_us_degraded(&c, 1 << 20, 0.25), hop);
    }

    #[test]
    fn bubble_shrinks_with_more_micro_batches() {
        let two = PipelineSchedule::new(4, 2);
        let eight = PipelineSchedule::new(4, 8);
        assert!(eight.bubble_fraction() < two.bubble_fraction());
        assert_eq!(two.slots(), 5);
        // Degenerate single stage: no bubble, makespan = m × stage time.
        let flat = PipelineSchedule::new(1, 4);
        assert_eq!(flat.bubble_fraction(), 0.0);
        assert_eq!(flat.makespan(2.0, 0.0), 8.0);
    }

    #[test]
    fn makespan_matches_gpipe_closed_form() {
        // 4 stages, 8 micro-batches, 3 ms/stage + 1 ms/hop:
        // (4 + 8 − 1) × 4 = 44 ms.
        let s = PipelineSchedule::new(4, 8);
        assert_eq!(s.makespan(3.0, 1.0), 44.0);
    }
}

//! Tensor-parallel sharding and all-reduce cost.
//!
//! Megatron-style sharding: column-parallel QKV/GateUp (shard `M`),
//! row-parallel O/Down (shard `K`), followed by one all-reduce of the
//! activation after attention and one after the FFN.

use crate::cluster::GpuCluster;
use zipserv_gpu_sim::roofline::GemmShape;
use zipserv_kernels::shapes::LayerKind;

/// Shards a layer's GEMM across the cluster's tensor-parallel ranks.
///
/// Returns the per-GPU problem shape.
///
/// # Panics
///
/// Panics if the layer dimension is not divisible by the TP degree.
pub fn shard_layer(layer: LayerKind, shape: GemmShape, tp: u64) -> GemmShape {
    assert!(tp >= 1, "tp must be >= 1");
    match layer {
        // Column parallel: output rows split.
        LayerKind::QkvProj | LayerKind::GateUpProj | LayerKind::LmHead => {
            assert_eq!(shape.m % tp, 0, "M not divisible by tp");
            GemmShape::new(shape.m / tp, shape.k, shape.n)
        }
        // Row parallel: reduction dim split.
        LayerKind::OProj | LayerKind::DownProj => {
            assert_eq!(shape.k % tp, 0, "K not divisible by tp");
            GemmShape::new(shape.m, shape.k / tp, shape.n)
        }
    }
}

/// Ring all-reduce time in microseconds for `bytes` per rank.
///
/// `2·(tp−1)/tp` traversals of the payload per direction plus a fixed
/// per-hop latency.
pub fn allreduce_us(cluster: &GpuCluster, bytes: u64) -> f64 {
    let tp = cluster.tp() as f64;
    if tp <= 1.0 {
        return 0.0;
    }
    let volume = 2.0 * (tp - 1.0) / tp * bytes as f64;
    let bw_bytes_per_us = cluster.link_gbps * 1e3;
    volume / bw_bytes_per_us + 2.0 * (tp - 1.0) * 5.0
}

/// All-reduce traffic per transformer block per step: two reductions of the
/// `batch × hidden` BF16 activation.
pub fn block_allreduce_bytes(hidden: u64, tokens: u64) -> u64 {
    2 * 2 * hidden * tokens
}

#[cfg(test)]
mod tests {
    use super::*;
    use zipserv_gpu_sim::device::Gpu;

    #[test]
    fn column_parallel_shards_m() {
        let s = shard_layer(LayerKind::GateUpProj, GemmShape::new(65536, 5120, 32), 2);
        assert_eq!((s.m, s.k, s.n), (32768, 5120, 32));
    }

    #[test]
    fn row_parallel_shards_k() {
        let s = shard_layer(LayerKind::DownProj, GemmShape::new(5120, 32768, 32), 4);
        assert_eq!((s.m, s.k, s.n), (5120, 8192, 32));
    }

    #[test]
    fn tp1_is_identity() {
        let shape = GemmShape::new(4096, 4096, 8);
        for layer in LayerKind::ALL {
            assert_eq!(shard_layer(layer, shape, 1), shape);
        }
    }

    #[test]
    fn allreduce_zero_on_single_gpu() {
        let c = GpuCluster::single(Gpu::Rtx4090);
        assert_eq!(allreduce_us(&c, 1 << 20), 0.0);
    }

    #[test]
    fn allreduce_scales_with_bytes_and_ranks() {
        let c2 = GpuCluster::tensor_parallel(Gpu::L40s, 2);
        let c4 = GpuCluster::tensor_parallel(Gpu::L40s, 4);
        let t2 = allreduce_us(&c2, 1 << 20);
        let t4 = allreduce_us(&c4, 1 << 20);
        assert!(t4 > t2, "more ranks move more relative volume");
        assert!(allreduce_us(&c2, 2 << 20) > t2);
    }

    #[test]
    fn block_traffic() {
        // batch 32 × hidden 5120 × 2 bytes × 2 reductions = 655 KB.
        assert_eq!(block_allreduce_bytes(5120, 32), 655_360);
    }
}

//! A functional decoder-only transformer running on the workspace's own
//! numerics — the executable proof of the paper's *bit-exact inference*
//! claim at the model level.
//!
//! Every linear layer can hold its weights dense (BF16 matrices) or
//! TCA-TBE-compressed; the compressed path computes through the fused
//! [`ZipGemm`] kernel. Because the fused kernel is bitwise identical to the
//! dense reference GEMM and every nonlinear op (RMSNorm, RoPE-free causal
//! attention, SwiGLU) is computed identically in `f32`, the *logits of the
//! compressed model equal the dense model's bit for bit* — the property the
//! paper's "lossless" claim rests on, which no lossy quantizer can offer.

use zipserv_bf16::{Bf16, Matrix};
use zipserv_core::{TbeCompressor, TbeError, ZipGemm};
use zipserv_kernels::gemm_ref;

/// Hyper-parameters of the miniature model.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TinyConfig {
    /// Hidden size (must be a multiple of 8 for the compressed path).
    pub hidden: usize,
    /// Attention heads (hidden must divide evenly).
    pub heads: usize,
    /// Transformer layers.
    pub layers: usize,
    /// FFN intermediate size (multiple of 8).
    pub ffn: usize,
    /// Vocabulary size (multiple of 8).
    pub vocab: usize,
}

impl TinyConfig {
    /// A small but structurally faithful configuration.
    pub fn small() -> Self {
        TinyConfig {
            hidden: 64,
            heads: 4,
            layers: 2,
            ffn: 128,
            vocab: 256,
        }
    }

    /// Per-head dimension.
    pub fn head_dim(&self) -> usize {
        self.hidden / self.heads
    }
}

/// A linear layer storing weights dense or compressed.
#[derive(Debug, Clone)]
pub enum Linear {
    /// Dense BF16 weights.
    Dense(Matrix<Bf16>),
    /// TCA-TBE compressed weights, executed through the fused kernel.
    Compressed(zipserv_core::TbeMatrix),
}

impl Linear {
    /// `Y = W · X` (FP32 accumulation) — identical bits on both paths.
    pub fn forward(&self, x: &Matrix<Bf16>) -> Matrix<f32> {
        match self {
            Linear::Dense(w) => gemm_ref::gemm(w, x),
            Linear::Compressed(w) => ZipGemm::new().multiply(w, x),
        }
    }

    /// Output dimension.
    pub fn out_dim(&self) -> usize {
        match self {
            Linear::Dense(w) => w.rows(),
            Linear::Compressed(w) => w.rows(),
        }
    }

    /// Compresses a dense layer in place.
    ///
    /// # Errors
    ///
    /// Propagates [`TbeError`] if the weight shape is not tileable.
    pub fn compress(&mut self) -> Result<(), TbeError> {
        if let Linear::Dense(w) = self {
            *self = Linear::Compressed(TbeCompressor::new().compress(w)?);
        }
        Ok(())
    }
}

/// One transformer block's weights.
#[derive(Debug, Clone)]
pub struct Block {
    /// Merged Q/K/V projection (`3·hidden × hidden`).
    pub qkv: Linear,
    /// Output projection (`hidden × hidden`).
    pub o: Linear,
    /// Merged gate+up projection (`2·ffn × hidden`).
    pub gate_up: Linear,
    /// Down projection (`hidden × ffn`).
    pub down: Linear,
    /// Pre-attention RMSNorm scale.
    pub norm1: Vec<f32>,
    /// Pre-FFN RMSNorm scale.
    pub norm2: Vec<f32>,
}

/// The miniature decoder-only model.
#[derive(Debug, Clone)]
pub struct TinyLlm {
    config: TinyConfig,
    embed: Matrix<Bf16>,
    blocks: Vec<Block>,
    final_norm: Vec<f32>,
    lm_head: Linear,
}

impl TinyLlm {
    /// Builds a model with deterministic pseudo-random Gaussian weights.
    ///
    /// # Panics
    ///
    /// Panics if the config dimensions are not multiples of 8 or heads do
    /// not divide the hidden size.
    pub fn random(config: TinyConfig, seed: u64) -> Self {
        assert!(
            config.hidden.is_multiple_of(8)
                && config.ffn.is_multiple_of(8)
                && config.vocab.is_multiple_of(8)
        );
        assert_eq!(config.hidden % config.heads, 0, "heads must divide hidden");
        use zipserv_bf16::gen::WeightGen;
        let sigma = (2.0 / config.hidden as f64).sqrt();
        let gen = |rows: usize, cols: usize, salt: u64| {
            WeightGen::new(sigma).seed(seed ^ salt).matrix(rows, cols)
        };
        let blocks = (0..config.layers)
            .map(|l| {
                let salt = (l as u64 + 1) << 16;
                Block {
                    qkv: Linear::Dense(gen(3 * config.hidden, config.hidden, salt)),
                    o: Linear::Dense(gen(config.hidden, config.hidden, salt | 1)),
                    gate_up: Linear::Dense(gen(2 * config.ffn, config.hidden, salt | 2)),
                    down: Linear::Dense(gen(config.hidden, config.ffn, salt | 3)),
                    norm1: vec![1.0; config.hidden],
                    norm2: vec![1.0; config.hidden],
                }
            })
            .collect();
        TinyLlm {
            config,
            embed: gen(config.vocab, config.hidden, 0xE),
            blocks,
            final_norm: vec![1.0; config.hidden],
            lm_head: Linear::Dense(gen(config.vocab, config.hidden, 0xF)),
        }
    }

    /// The configuration.
    pub fn config(&self) -> TinyConfig {
        self.config
    }

    /// Compresses every linear layer to TCA-TBE.
    ///
    /// # Errors
    ///
    /// Propagates [`TbeError`] from any layer.
    pub fn compress_weights(&mut self) -> Result<(), TbeError> {
        for b in &mut self.blocks {
            b.qkv.compress()?;
            b.o.compress()?;
            b.gate_up.compress()?;
            b.down.compress()?;
        }
        self.lm_head.compress()
    }

    /// Forward pass over a token sequence; returns the `vocab × seq` logit
    /// matrix in FP32.
    ///
    /// # Panics
    ///
    /// Panics if `tokens` is empty or contains out-of-vocab ids.
    pub fn forward(&self, tokens: &[u32]) -> Matrix<f32> {
        assert!(!tokens.is_empty(), "need at least one token");
        let (h, seq) = (self.config.hidden, tokens.len());
        // Activations are column-per-token: hidden × seq.
        let mut x = Matrix::<Bf16>::zeros(h, seq);
        for (t, &tok) in tokens.iter().enumerate() {
            assert!(
                (tok as usize) < self.config.vocab,
                "token {tok} out of vocab"
            );
            for d in 0..h {
                x[(d, t)] = self.embed[(tok as usize, d)];
            }
        }

        for block in &self.blocks {
            // Attention sub-block with pre-norm and residual.
            let normed = rmsnorm(&x, &block.norm1);
            let qkv = to_bf16(&block.qkv.forward(&normed));
            let attn = self.attention(&qkv, seq);
            let attn_out = block.o.forward(&attn);
            let x1 = residual_add(&x, &attn_out);

            // FFN sub-block (SwiGLU).
            let normed = rmsnorm(&x1, &block.norm2);
            let gate_up = block.gate_up.forward(&normed);
            let activated = swiglu(&gate_up, self.config.ffn);
            let ffn_out = block.down.forward(&activated);
            x = residual_add(&x1, &ffn_out);
        }

        let normed = rmsnorm(&x, &self.final_norm);
        self.lm_head.forward(&normed)
    }

    /// Greedy decoding: appends `new_tokens` tokens to the prompt.
    pub fn generate(&self, prompt: &[u32], new_tokens: usize) -> Vec<u32> {
        let mut tokens = prompt.to_vec();
        for _ in 0..new_tokens {
            let logits = self.forward(&tokens);
            let last = tokens.len() - 1;
            let mut best = (0u32, f32::NEG_INFINITY);
            for v in 0..self.config.vocab {
                let l = logits[(v, last)];
                if l > best.1 {
                    best = (v as u32, l);
                }
            }
            tokens.push(best.0);
        }
        tokens
    }

    /// Causal multi-head attention over the merged QKV activations
    /// (`3·hidden × seq`). Softmax in `f64` for determinism headroom, then
    /// rounded through `f32`.
    fn attention(&self, qkv: &Matrix<Bf16>, seq: usize) -> Matrix<Bf16> {
        let (h, heads, hd) = (
            self.config.hidden,
            self.config.heads,
            self.config.head_dim(),
        );
        let scale = 1.0 / (hd as f64).sqrt();
        let mut out = Matrix::<Bf16>::zeros(h, seq);
        for head in 0..heads {
            let q0 = head * hd;
            let k0 = h + head * hd;
            let v0 = 2 * h + head * hd;
            for t in 0..seq {
                // Scores over positions 0..=t (causal).
                let mut scores = Vec::with_capacity(t + 1);
                let mut max = f64::NEG_INFINITY;
                for s in 0..=t {
                    let mut dot = 0.0f64;
                    for d in 0..hd {
                        dot += qkv[(q0 + d, t)].to_f32() as f64 * qkv[(k0 + d, s)].to_f32() as f64;
                    }
                    let score = dot * scale;
                    max = max.max(score);
                    scores.push(score);
                }
                let mut denom = 0.0f64;
                for s in scores.iter_mut() {
                    *s = (*s - max).exp();
                    denom += *s;
                }
                for d in 0..hd {
                    let mut acc = 0.0f64;
                    for (s, w) in scores.iter().enumerate() {
                        acc += w / denom * qkv[(v0 + d, s)].to_f32() as f64;
                    }
                    out[(q0 + d, t)] = Bf16::from_f32(acc as f32);
                }
            }
        }
        out
    }
}

/// RMSNorm over the hidden dimension, per token column.
fn rmsnorm(x: &Matrix<Bf16>, scale: &[f32]) -> Matrix<Bf16> {
    let (h, seq) = (x.rows(), x.cols());
    assert_eq!(scale.len(), h, "scale length mismatch");
    let mut out = Matrix::<Bf16>::zeros(h, seq);
    for t in 0..seq {
        let mut ss = 0.0f64;
        for d in 0..h {
            let v = x[(d, t)].to_f32() as f64;
            ss += v * v;
        }
        let inv = 1.0 / (ss / h as f64 + 1e-6).sqrt();
        for d in 0..h {
            out[(d, t)] = Bf16::from_f32((x[(d, t)].to_f32() as f64 * inv) as f32 * scale[d]);
        }
    }
    out
}

/// Residual add through BF16 (matching serving numerics).
fn residual_add(x: &Matrix<Bf16>, delta: &Matrix<f32>) -> Matrix<Bf16> {
    assert_eq!((x.rows(), x.cols()), (delta.rows(), delta.cols()));
    Matrix::from_fn(x.rows(), x.cols(), |r, c| {
        Bf16::from_f32(x[(r, c)].to_f32() + delta[(r, c)])
    })
}

/// SwiGLU: rows `[0, ffn)` are the gate, `[ffn, 2ffn)` the up projection;
/// output is `silu(gate) * up`, rounded to BF16.
fn swiglu(gate_up: &Matrix<f32>, ffn: usize) -> Matrix<Bf16> {
    assert_eq!(gate_up.rows(), 2 * ffn, "gate+up rows");
    Matrix::from_fn(ffn, gate_up.cols(), |r, c| {
        let g = gate_up[(r, c)];
        let u = gate_up[(ffn + r, c)];
        let silu = g / (1.0 + (-g).exp());
        Bf16::from_f32(silu * u)
    })
}

/// Rounds an FP32 activation matrix to BF16 (inter-layer precision).
fn to_bf16(x: &Matrix<f32>) -> Matrix<Bf16> {
    Matrix::from_fn(x.rows(), x.cols(), |r, c| Bf16::from_f32(x[(r, c)]))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn forward_shapes() {
        let model = TinyLlm::random(TinyConfig::small(), 1);
        let logits = model.forward(&[3, 1, 4, 1, 5]);
        assert_eq!((logits.rows(), logits.cols()), (256, 5));
    }

    #[test]
    fn compressed_model_is_bit_exact() {
        // The repository's central claim, end to end: compressing every
        // linear layer changes no output bit.
        let dense = TinyLlm::random(TinyConfig::small(), 7);
        let mut compressed = dense.clone();
        compressed.compress_weights().expect("tileable layers");
        let tokens = [10u32, 200, 33, 7];
        let a = dense.forward(&tokens);
        let b = compressed.forward(&tokens);
        for (x, y) in a.as_slice().iter().zip(b.as_slice()) {
            assert_eq!(x.to_bits(), y.to_bits());
        }
    }

    #[test]
    fn greedy_generation_identical_after_compression() {
        let dense = TinyLlm::random(TinyConfig::small(), 42);
        let mut compressed = dense.clone();
        compressed.compress_weights().expect("tileable layers");
        let a = dense.generate(&[1, 2, 3], 12);
        let b = compressed.generate(&[1, 2, 3], 12);
        assert_eq!(a, b, "token-for-token identical generation");
        assert_eq!(a.len(), 15);
    }

    #[test]
    fn generation_is_deterministic() {
        let model = TinyLlm::random(TinyConfig::small(), 5);
        assert_eq!(model.generate(&[9], 6), model.generate(&[9], 6));
    }

    #[test]
    fn causality_prefix_invariance() {
        // Logits for position t depend only on tokens 0..=t.
        let model = TinyLlm::random(TinyConfig::small(), 11);
        let full = model.forward(&[5, 6, 7, 8]);
        let prefix = model.forward(&[5, 6]);
        for v in 0..model.config().vocab {
            assert_eq!(full[(v, 0)].to_bits(), prefix[(v, 0)].to_bits());
            assert_eq!(full[(v, 1)].to_bits(), prefix[(v, 1)].to_bits());
        }
    }

    #[test]
    fn different_seeds_give_different_models() {
        let a = TinyLlm::random(TinyConfig::small(), 1).forward(&[1]);
        let b = TinyLlm::random(TinyConfig::small(), 2).forward(&[1]);
        assert_ne!(a.as_slice(), b.as_slice());
    }

    #[test]
    #[should_panic(expected = "out of vocab")]
    fn out_of_vocab_rejected() {
        let model = TinyLlm::random(TinyConfig::small(), 1);
        let _ = model.forward(&[9999]);
    }
}

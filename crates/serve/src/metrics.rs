//! Serving metrics: the latency/throughput reports of Figure 16, the
//! per-step breakdown of Figure 17, and the per-class scheduling summaries
//! behind [`crate::scheduler::ScheduleReport`].

use crate::policy::PriorityClass;
use crate::scheduler::Completion;
use serde::Serialize;

/// Percentile (`q` in `[0, 1]`) of a finite sample, nearest-rank (ceil
/// convention) on the sorted values: the smallest value with at least
/// `q · n` of the sample at or below it. Returns `None` for an empty sample
/// instead of panicking — the scheduler's report methods all route through
/// here.
///
/// The previous implementation `round()`ed the rank, which biased small
/// samples upward: the p50 of two elements picked the *upper* one, and p90
/// over a handful of requests collapsed onto the max one sample earlier
/// than nearest-rank prescribes. The ceil convention is the standard
/// nearest-rank definition (and what NumPy's `method="inverted_cdf"`
/// computes).
///
/// # Panics
///
/// Panics if `q` is out of range or a value is not finite.
pub fn percentile(values: impl IntoIterator<Item = f64>, q: f64) -> Option<f64> {
    assert!((0.0..=1.0).contains(&q), "percentile in [0,1]");
    let mut v: Vec<f64> = values.into_iter().collect();
    if v.is_empty() {
        return None;
    }
    v.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    // 1-based nearest rank, clamped to [1, n] so q = 0 reads the minimum.
    let rank = (q * v.len() as f64).ceil() as usize;
    Some(v[rank.clamp(1, v.len()) - 1])
}

/// Fraction of SLO-carrying completions that met their SLO, or `None` when
/// none carried one — the single definition behind both the aggregate
/// [`ScheduleReport::slo_attainment`](crate::scheduler::ScheduleReport::slo_attainment)
/// and the per-class [`ClassStats`] figure.
pub fn slo_attainment<'a>(completions: impl IntoIterator<Item = &'a Completion>) -> Option<f64> {
    let judged: Vec<bool> = completions.into_iter().filter_map(|c| c.slo_met).collect();
    if judged.is_empty() {
        return None;
    }
    Some(judged.iter().filter(|&&m| m).count() as f64 / judged.len() as f64)
}

/// Scheduling outcomes for one priority class within a run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct ClassStats {
    /// The priority class summarized.
    pub class: PriorityClass,
    /// Completions in this class.
    pub count: usize,
    /// Median end-to-end latency (s).
    pub p50_latency_s: f64,
    /// 99th-percentile end-to-end latency (s).
    pub p99_latency_s: f64,
    /// Median time-to-first-token (s).
    pub p50_ttft_s: f64,
    /// 99th-percentile time-to-first-token (s).
    pub p99_ttft_s: f64,
    /// Mean queueing delay before first admission (s).
    pub mean_queue_s: f64,
    /// Total preemptions suffered by this class.
    pub preemptions: u64,
    /// SLO attainment within the class (`None` if no request carried one).
    pub slo_attainment: Option<f64>,
}

impl ClassStats {
    /// Summarizes the completions of one class; `None` when empty.
    pub fn from_completions<'a>(
        class: PriorityClass,
        completions: impl IntoIterator<Item = &'a Completion>,
    ) -> Option<ClassStats> {
        let cs: Vec<&Completion> = completions.into_iter().collect();
        if cs.is_empty() {
            return None;
        }
        let lat = |q| percentile(cs.iter().map(|c| c.latency_s), q).expect("non-empty");
        let ttft = |q| percentile(cs.iter().map(|c| c.ttft_s), q).expect("non-empty");
        Some(ClassStats {
            class,
            count: cs.len(),
            p50_latency_s: lat(0.5),
            p99_latency_s: lat(0.99),
            p50_ttft_s: ttft(0.5),
            p99_ttft_s: ttft(0.99),
            mean_queue_s: cs.iter().map(|c| c.queue_s).sum::<f64>() / cs.len() as f64,
            preemptions: cs.iter().map(|c| c.preemptions as u64).sum(),
            slo_attainment: slo_attainment(cs.iter().copied()),
        })
    }
}

/// One decode step's time breakdown in milliseconds (Figure 17, left).
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize)]
pub struct StepBreakdown {
    /// Linear layers (fused ZipGEMM + residual dense GEMMs, or all dense).
    pub linear_ms: f64,
    /// Attention over the KV cache.
    pub attention_ms: f64,
    /// Per-step weight decompression (DFloat11-style engines only).
    pub decompression_ms: f64,
    /// Tensor-parallel all-reduces.
    pub allreduce_ms: f64,
    /// Inter-stage activation hops (pipeline-parallel deployments only).
    pub p2p_ms: f64,
    /// Everything else (sampling, scheduling, kernel glue).
    pub other_ms: f64,
    /// Diagnostic: pipeline idle time already folded into the scaled
    /// compute/communication components above — the fill/drain (GPipe) or
    /// amortized-interleave (1F1B) bubble. **Not** added by
    /// [`StepBreakdown::total_ms`]; it reports how much of the step is
    /// schedule overhead rather than work.
    pub bubble_ms: f64,
}

impl StepBreakdown {
    /// Total step latency.
    pub fn total_ms(&self) -> f64 {
        self.linear_ms
            + self.attention_ms
            + self.decompression_ms
            + self.allreduce_ms
            + self.p2p_ms
            + self.other_ms
    }

    /// Communication share of the step (all-reduce plus pipeline hops) —
    /// the time the scheduler charges that a single-GPU deployment would
    /// not pay.
    pub fn comm_ms(&self) -> f64 {
        self.allreduce_ms + self.p2p_ms
    }

    /// Fraction of the step spent in linear layers (paper: 83.6% for vLLM).
    pub fn linear_fraction(&self) -> f64 {
        if self.total_ms() == 0.0 {
            0.0
        } else {
            self.linear_ms / self.total_ms()
        }
    }
}

/// Robustness accounting for one scheduled run under fault injection
/// (all-zero — the `Default` — for clean runs, preserving bit-compatible
/// reports when the [`FaultPlan`](crate::fault::FaultPlan) is empty).
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize)]
pub struct RobustnessStats {
    /// Fault events applied during the run.
    pub faults_injected: u64,
    /// Rank failures applied (repeat failures of a dead rank excluded).
    pub rank_failures: u64,
    /// Link-degradation windows applied.
    pub link_degrades: u64,
    /// Fault-driven re-queues of in-flight requests (distinct from
    /// scheduler preemptions).
    pub retries: u64,
    /// Tokens recomputed by recompute-prefill on fault-victim re-admission.
    pub recomputed_tokens: u64,
    /// Best-effort requests shed by the SLO-aware brownout while degraded.
    pub shed: u64,
    /// Corrupted compressed frames detected by decode checksums.
    pub frame_corruptions: u64,
    /// Simulated seconds stalled on KV host-memory transfers.
    pub stall_s: f64,
    /// Simulated seconds spent re-fetching corrupted frames over PCIe.
    pub refetch_s: f64,
    /// Simulated seconds during which at least one rank was dead.
    pub downtime_s: f64,
    /// Times the victim queue fully drained after a failure (each closes
    /// one time-to-recover window).
    pub recoveries: u64,
    /// Total time from each failure to its victims' full resolution.
    pub time_to_recover_s: f64,
}

impl RobustnessStats {
    /// Mean time from a rank failure to every victim being re-served or
    /// rejected; `None` when no recovery window closed.
    pub fn mean_time_to_recover_s(&self) -> Option<f64> {
        if self.recoveries == 0 {
            None
        } else {
            Some(self.time_to_recover_s / self.recoveries as f64)
        }
    }
}

/// The end-to-end result of serving one workload (one Figure 16 point).
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct RunReport {
    /// Prefill latency in seconds.
    pub prefill_s: f64,
    /// Total decode time in seconds.
    pub decode_s: f64,
    /// End-to-end request latency in seconds.
    pub latency_s: f64,
    /// Output tokens per second across the batch.
    pub throughput_tps: f64,
    /// The steady-state decode step at the final context length.
    pub final_step: StepBreakdown,
    /// KV demand / KV capacity at peak (>1 means thrashing).
    pub kv_pressure: f64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn breakdown_totals() {
        let b = StepBreakdown {
            linear_ms: 24.99,
            attention_ms: 3.02,
            decompression_ms: 0.0,
            allreduce_ms: 0.0,
            p2p_ms: 0.0,
            other_ms: 1.88,
            bubble_ms: 0.0,
        };
        assert!((b.total_ms() - 29.89).abs() < 1e-9);
        // The paper's 83.6% GEMM share.
        assert!((b.linear_fraction() - 0.836).abs() < 0.01);
    }

    #[test]
    fn comm_share_sums_collectives_and_hops() {
        let b = StepBreakdown {
            linear_ms: 10.0,
            attention_ms: 2.0,
            decompression_ms: 0.0,
            allreduce_ms: 1.5,
            p2p_ms: 0.5,
            other_ms: 1.0,
            // Diagnostic only: must not inflate total_ms().
            bubble_ms: 4.0,
        };
        assert!((b.comm_ms() - 2.0).abs() < 1e-12);
        assert!((b.total_ms() - 15.0).abs() < 1e-12);
    }

    #[test]
    fn empty_breakdown_is_zero() {
        let b = StepBreakdown::default();
        assert_eq!(b.total_ms(), 0.0);
        assert_eq!(b.linear_fraction(), 0.0);
        assert_eq!(b.comm_ms(), 0.0);
    }

    #[test]
    fn robustness_defaults_are_zero_and_ttr_guards_empty() {
        let z = RobustnessStats::default();
        assert_eq!(
            z,
            RobustnessStats {
                faults_injected: 0,
                ..z
            }
        );
        assert_eq!(z.mean_time_to_recover_s(), None);
        let r = RobustnessStats {
            recoveries: 2,
            time_to_recover_s: 3.0,
            ..RobustnessStats::default()
        };
        assert_eq!(r.mean_time_to_recover_s(), Some(1.5));
    }

    #[test]
    fn percentile_uses_nearest_rank_ceil() {
        // Small-N pins for the rank convention (the `.round()` regression):
        // p50 of two elements is the LOWER one, not the upper.
        assert_eq!(percentile([1.0, 2.0], 0.5), Some(1.0));
        // Odd N: the true median.
        assert_eq!(percentile([3.0, 1.0, 2.0], 0.5), Some(2.0));
        // Four elements: p50 = 2nd, p90 = 4th (ceil(3.6) = 4).
        assert_eq!(percentile([1.0, 2.0, 3.0, 4.0], 0.5), Some(2.0));
        assert_eq!(percentile([1.0, 2.0, 3.0, 4.0], 0.9), Some(4.0));
        // Ten elements: p90 = 9th (ceil(9.0) = 9), p99 = max.
        let ten: Vec<f64> = (1..=10).map(|i| i as f64).collect();
        assert_eq!(percentile(ten.iter().copied(), 0.9), Some(9.0));
        assert_eq!(percentile(ten.iter().copied(), 0.99), Some(10.0));
        // 200 elements: p99 = 198th, no longer the max.
        let big: Vec<f64> = (1..=200).map(|i| i as f64).collect();
        assert_eq!(percentile(big.iter().copied(), 0.99), Some(198.0));
        // Edges: q = 0 is the min, q = 1 the max; singleton is itself.
        assert_eq!(percentile([5.0, 7.0], 0.0), Some(5.0));
        assert_eq!(percentile([5.0, 7.0], 1.0), Some(7.0));
        assert_eq!(percentile([42.0], 0.99), Some(42.0));
        assert_eq!(percentile(std::iter::empty(), 0.5), None);
    }
}

//! Serving metrics: the latency/throughput reports of Figure 16 and the
//! per-step breakdown of Figure 17.

use serde::Serialize;

/// One decode step's time breakdown in milliseconds (Figure 17, left).
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize)]
pub struct StepBreakdown {
    /// Linear layers (fused ZipGEMM + residual dense GEMMs, or all dense).
    pub linear_ms: f64,
    /// Attention over the KV cache.
    pub attention_ms: f64,
    /// Per-step weight decompression (DFloat11-style engines only).
    pub decompression_ms: f64,
    /// Tensor-parallel all-reduces.
    pub allreduce_ms: f64,
    /// Everything else (sampling, scheduling, kernel glue).
    pub other_ms: f64,
}

impl StepBreakdown {
    /// Total step latency.
    pub fn total_ms(&self) -> f64 {
        self.linear_ms + self.attention_ms + self.decompression_ms + self.allreduce_ms + self.other_ms
    }

    /// Fraction of the step spent in linear layers (paper: 83.6% for vLLM).
    pub fn linear_fraction(&self) -> f64 {
        if self.total_ms() == 0.0 {
            0.0
        } else {
            self.linear_ms / self.total_ms()
        }
    }
}

/// The end-to-end result of serving one workload (one Figure 16 point).
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct RunReport {
    /// Prefill latency in seconds.
    pub prefill_s: f64,
    /// Total decode time in seconds.
    pub decode_s: f64,
    /// End-to-end request latency in seconds.
    pub latency_s: f64,
    /// Output tokens per second across the batch.
    pub throughput_tps: f64,
    /// The steady-state decode step at the final context length.
    pub final_step: StepBreakdown,
    /// KV demand / KV capacity at peak (>1 means thrashing).
    pub kv_pressure: f64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn breakdown_totals() {
        let b = StepBreakdown {
            linear_ms: 24.99,
            attention_ms: 3.02,
            decompression_ms: 0.0,
            allreduce_ms: 0.0,
            other_ms: 1.88,
        };
        assert!((b.total_ms() - 29.89).abs() < 1e-9);
        // The paper's 83.6% GEMM share.
        assert!((b.linear_fraction() - 0.836).abs() < 0.01);
    }

    #[test]
    fn empty_breakdown_is_zero() {
        let b = StepBreakdown::default();
        assert_eq!(b.total_ms(), 0.0);
        assert_eq!(b.linear_fraction(), 0.0);
    }
}

//! Serving workloads: static batches of generation requests (§6.5 setup).

use serde::{Deserialize, Serialize};

/// One batch workload: `batch` requests with a shared prompt and output
/// length — the benchmarking setup of §6.5 (batch 8/32, outputs 128–2048).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Workload {
    /// Concurrent requests.
    pub batch: u64,
    /// Prompt tokens per request.
    pub prompt_len: u64,
    /// Output tokens to generate per request.
    pub output_len: u64,
}

impl Workload {
    /// Creates a workload.
    ///
    /// # Panics
    ///
    /// Panics if any field is zero.
    pub fn new(batch: u64, prompt_len: u64, output_len: u64) -> Self {
        assert!(
            batch > 0 && prompt_len > 0 && output_len > 0,
            "workload dimensions must be nonzero"
        );
        Workload {
            batch,
            prompt_len,
            output_len,
        }
    }

    /// The §6.5 sweep: batch {8, 32} × output {128, 256, 512, 1024, 2048}
    /// with a 512-token prompt.
    pub fn paper_sweep() -> Vec<Workload> {
        let mut out = Vec::new();
        for batch in [8u64, 32] {
            for output in [128u64, 256, 512, 1024, 2048] {
                out.push(Workload::new(batch, 512, output));
            }
        }
        out
    }

    /// Total output tokens produced by the whole batch.
    pub fn total_output_tokens(&self) -> u64 {
        self.batch * self.output_len
    }

    /// Maximum context length reached (prompt + full output).
    pub fn max_context(&self) -> u64 {
        self.prompt_len + self.output_len
    }

    /// Peak KV tokens held by the batch.
    pub fn peak_kv_tokens(&self) -> u64 {
        self.batch * self.max_context()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn derived_quantities() {
        let w = Workload::new(32, 512, 2048);
        assert_eq!(w.total_output_tokens(), 65_536);
        assert_eq!(w.max_context(), 2560);
        assert_eq!(w.peak_kv_tokens(), 81_920);
    }

    #[test]
    fn paper_sweep_covers_ten_points() {
        let sweep = Workload::paper_sweep();
        assert_eq!(sweep.len(), 10);
        assert!(sweep.iter().all(|w| w.prompt_len == 512));
        assert!(sweep.iter().any(|w| w.batch == 8 && w.output_len == 2048));
    }

    #[test]
    #[should_panic(expected = "nonzero")]
    fn zero_batch_rejected() {
        let _ = Workload::new(0, 1, 1);
    }
}

//! Serving workloads: static batches of generation requests (§6.5 setup)
//! and mixed-priority online arrival generators for the scheduling-policy
//! experiments.

use crate::policy::{PriorityClass, Slo};
use crate::scheduler::Request;
use serde::{Deserialize, Serialize};

/// One batch workload: `batch` requests with a shared prompt and output
/// length — the benchmarking setup of §6.5 (batch 8/32, outputs 128–2048).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Workload {
    /// Concurrent requests.
    pub batch: u64,
    /// Prompt tokens per request.
    pub prompt_len: u64,
    /// Output tokens to generate per request.
    pub output_len: u64,
}

impl Workload {
    /// Creates a workload.
    ///
    /// # Panics
    ///
    /// Panics if any field is zero.
    pub fn new(batch: u64, prompt_len: u64, output_len: u64) -> Self {
        assert!(
            batch > 0 && prompt_len > 0 && output_len > 0,
            "workload dimensions must be nonzero"
        );
        Workload {
            batch,
            prompt_len,
            output_len,
        }
    }

    /// The §6.5 sweep: batch {8, 32} × output {128, 256, 512, 1024, 2048}
    /// with a 512-token prompt.
    pub fn paper_sweep() -> Vec<Workload> {
        let mut out = Vec::new();
        for batch in [8u64, 32] {
            for output in [128u64, 256, 512, 1024, 2048] {
                out.push(Workload::new(batch, 512, output));
            }
        }
        out
    }

    /// Total output tokens produced by the whole batch.
    pub fn total_output_tokens(&self) -> u64 {
        self.batch * self.output_len
    }

    /// Maximum context length reached (prompt + full output).
    pub fn max_context(&self) -> u64 {
        self.prompt_len + self.output_len
    }

    /// Peak KV tokens held by the batch.
    pub fn peak_kv_tokens(&self) -> u64 {
        self.batch * self.max_context()
    }
}

/// One class of traffic within an [`ArrivalMix`]: a sampling weight plus
/// the request shape and QoS every request of the class carries.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TrafficClass {
    /// Relative sampling weight (normalized over the mix).
    pub share: f64,
    /// Prompt tokens per request.
    pub prompt_len: u64,
    /// Output tokens per request.
    pub output_len: u64,
    /// Priority tier.
    pub priority: PriorityClass,
    /// Latency SLO, if the class has one.
    pub slo: Option<Slo>,
}

/// A mixed-priority online workload: Poisson arrivals whose class (shape,
/// priority, SLO) is sampled per request — the traffic model the
/// scheduling-policy comparisons (`fig_sched` bench, burst scenarios) run
/// on, where [`crate::policy`]'s non-FCFS policies differentiate.
#[derive(Debug, Clone, PartialEq)]
pub struct ArrivalMix {
    /// The classes requests are drawn from.
    pub classes: Vec<TrafficClass>,
}

impl ArrivalMix {
    /// Creates a mix.
    ///
    /// # Panics
    ///
    /// Panics if `classes` is empty or any share is not strictly positive.
    pub fn new(classes: Vec<TrafficClass>) -> Self {
        assert!(!classes.is_empty(), "mix needs at least one class");
        assert!(
            classes.iter().all(|c| c.share > 0.0),
            "class shares must be positive"
        );
        ArrivalMix { classes }
    }

    /// The paper-style serving mix used by the policy experiments:
    /// 50% interactive chat (512/128, tight TTFT), 30% standard API
    /// traffic (1024/256, relaxed SLO), 20% batch summarization
    /// (2048/512, no SLO).
    pub fn paper_mix() -> Self {
        ArrivalMix::new(vec![
            TrafficClass {
                share: 0.5,
                prompt_len: 512,
                output_len: 128,
                priority: PriorityClass::Interactive,
                slo: Some(Slo::new(2.0, 0.1)),
            },
            TrafficClass {
                share: 0.3,
                prompt_len: 1024,
                output_len: 256,
                priority: PriorityClass::Standard,
                slo: Some(Slo::new(5.0, 0.25)),
            },
            TrafficClass {
                share: 0.2,
                prompt_len: 2048,
                output_len: 512,
                priority: PriorityClass::Batch,
                slo: None,
            },
        ])
    }

    /// Generates `count` Poisson arrivals at `rate_per_s`, sampling each
    /// request's class by share. Deterministic in `seed` (same xorshift
    /// generator as [`crate::scheduler::poisson_arrivals`]).
    ///
    /// # Panics
    ///
    /// Panics if `rate_per_s` is not strictly positive.
    pub fn generate(&self, rate_per_s: f64, count: usize, seed: u64) -> Vec<Request> {
        assert!(rate_per_s > 0.0, "rate must be positive");
        let total_share: f64 = self.classes.iter().map(|c| c.share).sum();
        let mut uniform = crate::scheduler::UniformStream::new(seed);
        let mut t = 0.0;
        (0..count)
            .map(|id| {
                t += -uniform.next().ln() / rate_per_s;
                let mut pick = uniform.next() * total_share;
                let mut class = self.classes[self.classes.len() - 1];
                for c in &self.classes {
                    if pick < c.share {
                        class = *c;
                        break;
                    }
                    pick -= c.share;
                }
                let mut req = Request::new(id as u64, t, class.prompt_len, class.output_len)
                    .with_priority(class.priority);
                if let Some(slo) = class.slo {
                    req = req.with_slo(slo);
                }
                req
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn derived_quantities() {
        let w = Workload::new(32, 512, 2048);
        assert_eq!(w.total_output_tokens(), 65_536);
        assert_eq!(w.max_context(), 2560);
        assert_eq!(w.peak_kv_tokens(), 81_920);
    }

    #[test]
    fn paper_sweep_covers_ten_points() {
        let sweep = Workload::paper_sweep();
        assert_eq!(sweep.len(), 10);
        assert!(sweep.iter().all(|w| w.prompt_len == 512));
        assert!(sweep.iter().any(|w| w.batch == 8 && w.output_len == 2048));
    }

    #[test]
    #[should_panic(expected = "nonzero")]
    fn zero_batch_rejected() {
        let _ = Workload::new(0, 1, 1);
    }

    #[test]
    fn paper_mix_samples_all_classes_by_share() {
        let mix = ArrivalMix::paper_mix();
        let reqs = mix.generate(8.0, 600, 19);
        assert_eq!(reqs.len(), 600);
        for w in reqs.windows(2) {
            assert!(w[1].arrival_s > w[0].arrival_s, "arrivals sorted");
        }
        let count = |p: PriorityClass| reqs.iter().filter(|r| r.priority == p).count();
        let interactive = count(PriorityClass::Interactive);
        let standard = count(PriorityClass::Standard);
        let batch = count(PriorityClass::Batch);
        assert_eq!(interactive + standard + batch, 600);
        // Shares within a loose band of 0.5 / 0.3 / 0.2.
        assert!(
            (interactive as f64 / 600.0 - 0.5).abs() < 0.1,
            "{interactive}"
        );
        assert!((standard as f64 / 600.0 - 0.3).abs() < 0.1, "{standard}");
        assert!((batch as f64 / 600.0 - 0.2).abs() < 0.1, "{batch}");
        // QoS rides along with the class.
        assert!(reqs
            .iter()
            .filter(|r| r.priority == PriorityClass::Interactive)
            .all(|r| r.slo == Some(Slo::new(2.0, 0.1)) && r.prompt_len == 512));
        assert!(reqs
            .iter()
            .filter(|r| r.priority == PriorityClass::Batch)
            .all(|r| r.slo.is_none() && r.output_len == 512));
    }

    #[test]
    fn mix_generation_is_deterministic() {
        let mix = ArrivalMix::paper_mix();
        assert_eq!(mix.generate(4.0, 50, 7), mix.generate(4.0, 50, 7));
        assert_ne!(mix.generate(4.0, 50, 7), mix.generate(4.0, 50, 8));
    }

    #[test]
    #[should_panic(expected = "at least one class")]
    fn empty_mix_rejected() {
        let _ = ArrivalMix::new(Vec::new());
    }
}

//! Serving workloads: static batches of generation requests (§6.5 setup)
//! and mixed-priority online arrival generators for the scheduling-policy
//! experiments.

use crate::policy::{PriorityClass, Slo};
use crate::scheduler::Request;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::fmt::Write as _;

/// One batch workload: `batch` requests with a shared prompt and output
/// length — the benchmarking setup of §6.5 (batch 8/32, outputs 128–2048).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Workload {
    /// Concurrent requests.
    pub batch: u64,
    /// Prompt tokens per request.
    pub prompt_len: u64,
    /// Output tokens to generate per request.
    pub output_len: u64,
}

impl Workload {
    /// Creates a workload.
    ///
    /// # Panics
    ///
    /// Panics if any field is zero.
    pub fn new(batch: u64, prompt_len: u64, output_len: u64) -> Self {
        assert!(
            batch > 0 && prompt_len > 0 && output_len > 0,
            "workload dimensions must be nonzero"
        );
        Workload {
            batch,
            prompt_len,
            output_len,
        }
    }

    /// The §6.5 sweep: batch {8, 32} × output {128, 256, 512, 1024, 2048}
    /// with a 512-token prompt.
    pub fn paper_sweep() -> Vec<Workload> {
        let mut out = Vec::new();
        for batch in [8u64, 32] {
            for output in [128u64, 256, 512, 1024, 2048] {
                out.push(Workload::new(batch, 512, output));
            }
        }
        out
    }

    /// Total output tokens produced by the whole batch.
    pub fn total_output_tokens(&self) -> u64 {
        self.batch * self.output_len
    }

    /// Maximum context length reached (prompt + full output).
    pub fn max_context(&self) -> u64 {
        self.prompt_len + self.output_len
    }

    /// Peak KV tokens held by the batch.
    pub fn peak_kv_tokens(&self) -> u64 {
        self.batch * self.max_context()
    }
}

/// One class of traffic within an [`ArrivalMix`]: a sampling weight plus
/// the request shape and QoS every request of the class carries.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TrafficClass {
    /// Relative sampling weight (normalized over the mix).
    pub share: f64,
    /// Prompt tokens per request.
    pub prompt_len: u64,
    /// Output tokens per request.
    pub output_len: u64,
    /// Priority tier.
    pub priority: PriorityClass,
    /// Latency SLO, if the class has one.
    pub slo: Option<Slo>,
    /// Distinct tenants this class's traffic is spread across. `0` is
    /// legacy tenant-less traffic: no tenant id, no session structure,
    /// and exactly the historical two RNG draws per request — the
    /// bit-compat path [`ArrivalMix::paper_mix`] stays on.
    pub tenants: u64,
    /// Tokens of the tenant's shared system prompt at the head of every
    /// fresh prompt (clamped so at least one prompt token stays unique).
    /// Requests of one tenant share one prefix hash, so a prefix cache
    /// forks the pool copy instead of re-prefilling it.
    pub shared_prefix_len: u64,
    /// Probability that a tenant's next request continues its live
    /// conversation — prompt = accumulated context + a fresh turn, with
    /// the context declared as the shared prefix — instead of opening a
    /// new one. `0.0` disables sessions (and the extra RNG draw).
    pub followup_share: f64,
    /// Parallel-sampling fan-out: each arrival of the class emits this
    /// many requests at the same instant sharing one full-prompt prefix
    /// (one prefill, N − 1 decode-only forks). `1` means no fan-out.
    pub parallel_samples: u32,
}

impl Default for TrafficClass {
    /// A neutral standard-tier class (legacy tenant-less shape) — the
    /// base for functional-update literals in mix constructors.
    fn default() -> Self {
        TrafficClass {
            share: 1.0,
            prompt_len: 512,
            output_len: 128,
            priority: PriorityClass::Standard,
            slo: None,
            tenants: 0,
            shared_prefix_len: 0,
            followup_share: 0.0,
            parallel_samples: 1,
        }
    }
}

/// A mixed-priority online workload: Poisson arrivals whose class (shape,
/// priority, SLO) is sampled per request — the traffic model the
/// scheduling-policy comparisons (`fig_sched` bench, burst scenarios) run
/// on, where [`crate::policy`]'s non-FCFS policies differentiate.
#[derive(Debug, Clone, PartialEq)]
pub struct ArrivalMix {
    /// The classes requests are drawn from.
    pub classes: Vec<TrafficClass>,
}

impl ArrivalMix {
    /// Creates a mix.
    ///
    /// # Panics
    ///
    /// Panics if `classes` is empty or any share is not strictly positive.
    pub fn new(classes: Vec<TrafficClass>) -> Self {
        assert!(!classes.is_empty(), "mix needs at least one class");
        assert!(
            classes.iter().all(|c| c.share > 0.0),
            "class shares must be positive"
        );
        ArrivalMix { classes }
    }

    /// The paper-style serving mix used by the policy experiments:
    /// 50% interactive chat (512/128, tight TTFT), 30% standard API
    /// traffic (1024/256, relaxed SLO), 20% batch summarization
    /// (2048/512, no SLO).
    pub fn paper_mix() -> Self {
        ArrivalMix::new(vec![
            TrafficClass {
                share: 0.5,
                prompt_len: 512,
                output_len: 128,
                priority: PriorityClass::Interactive,
                slo: Some(Slo::new(2.0, 0.1)),
                ..TrafficClass::default()
            },
            TrafficClass {
                share: 0.3,
                prompt_len: 1024,
                output_len: 256,
                priority: PriorityClass::Standard,
                slo: Some(Slo::new(5.0, 0.25)),
                ..TrafficClass::default()
            },
            TrafficClass {
                share: 0.2,
                prompt_len: 2048,
                output_len: 512,
                priority: PriorityClass::Batch,
                slo: None,
                ..TrafficClass::default()
            },
        ])
    }

    /// The multi-tenant companion to [`ArrivalMix::paper_mix`]: the same
    /// three-tier shape, but every class carries tenant identity and
    /// session structure so shared-prefix caching has something to hit —
    /// tenant chat with a shared system prompt and conversational
    /// follow-ups, API traffic stamped from big per-tenant templates, and
    /// batch parallel sampling fanning four candidates off one prefill.
    pub fn multi_tenant_mix() -> Self {
        ArrivalMix::new(vec![
            TrafficClass {
                share: 0.45,
                prompt_len: 512,
                output_len: 128,
                priority: PriorityClass::Interactive,
                slo: Some(Slo::new(2.0, 0.1)),
                tenants: 8,
                shared_prefix_len: 384,
                followup_share: 0.5,
                ..TrafficClass::default()
            },
            TrafficClass {
                share: 0.35,
                prompt_len: 1024,
                output_len: 256,
                priority: PriorityClass::Standard,
                slo: Some(Slo::new(5.0, 0.25)),
                tenants: 4,
                shared_prefix_len: 768,
                ..TrafficClass::default()
            },
            TrafficClass {
                share: 0.2,
                prompt_len: 2048,
                output_len: 512,
                priority: PriorityClass::Batch,
                slo: None,
                tenants: 2,
                parallel_samples: 4,
                ..TrafficClass::default()
            },
        ])
    }

    /// Generates `count` Poisson arrivals at `rate_per_s`, sampling each
    /// request's class by share. Deterministic in `seed` (same xorshift
    /// generator as [`crate::scheduler::poisson_arrivals`]).
    ///
    /// Tenant-less classes (`tenants == 0`) consume exactly the two
    /// historical draws per request — inter-arrival gap, then class pick —
    /// so mixes like [`ArrivalMix::paper_mix`] reproduce their pre-tenant
    /// streams bit-for-bit. Tenant classes draw extras strictly *after*
    /// the class pick (tenant choice, then the follow-up decision when
    /// `followup_share > 0`), leaving the legacy prefix of the stream
    /// untouched. A parallel-sampling class emits its whole fan-out group
    /// at one arrival instant, all sharing one full-prompt prefix hash.
    ///
    /// # Panics
    ///
    /// Panics if `rate_per_s` is not strictly positive.
    pub fn generate(&self, rate_per_s: f64, count: usize, seed: u64) -> Vec<Request> {
        assert!(rate_per_s > 0.0, "rate must be positive");
        let total_share: f64 = self.classes.iter().map(|c| c.share).sum();
        let mut uniform = crate::scheduler::UniformStream::new(seed);
        let mut t = 0.0;
        let mut sessions: HashMap<(usize, u64), Session> = HashMap::new();
        let mut out: Vec<Request> = Vec::with_capacity(count);
        while out.len() < count {
            t += -uniform.next().ln() / rate_per_s;
            let mut pick = uniform.next() * total_share;
            let mut class_idx = self.classes.len() - 1;
            for (i, c) in self.classes.iter().enumerate() {
                if pick < c.share {
                    class_idx = i;
                    break;
                }
                pick -= c.share;
            }
            let class = self.classes[class_idx];
            let build = |id: u64, t: f64, prompt: u64| {
                let mut req =
                    Request::new(id, t, prompt, class.output_len).with_priority(class.priority);
                if let Some(slo) = class.slo {
                    req = req.with_slo(slo);
                }
                req
            };
            if class.tenants == 0 {
                // Legacy tenant-less emit: exactly the historical stream.
                out.push(build(out.len() as u64, t, class.prompt_len));
                continue;
            }
            let tenant = ((uniform.next() * class.tenants as f64) as u64).min(class.tenants - 1);
            let tenant_id = ((class_idx as u64) << 32) | tenant;
            let followup = class.followup_share > 0.0 && uniform.next() < class.followup_share;
            let key = (class_idx, tenant);
            if followup {
                if let Some(s) = sessions.get_mut(&key) {
                    // Continue the live conversation: the accumulated
                    // context is the shared prefix, one fresh turn follows.
                    let prompt = s.ctx + class.prompt_len;
                    let req = build(out.len() as u64, t, prompt)
                        .with_tenant(tenant_id)
                        .with_shared_prefix(s.hash, s.ctx);
                    s.ctx = prompt + class.output_len;
                    out.push(req);
                    continue;
                }
            }
            if class.parallel_samples > 1 {
                // One prefill, N sampled continuations: the whole group
                // lands at the same instant under one full-prompt hash.
                let group_hash =
                    nonzero_hash(mix64(mix64(tenant_id ^ GROUP_SALT) ^ out.len() as u64));
                for _ in 0..class.parallel_samples {
                    if out.len() >= count {
                        break;
                    }
                    let req = build(out.len() as u64, t, class.prompt_len)
                        .with_tenant(tenant_id)
                        .with_shared_prefix(group_hash, class.prompt_len);
                    out.push(req);
                }
                continue;
            }
            let id = out.len() as u64;
            let mut req = build(id, t, class.prompt_len).with_tenant(tenant_id);
            if class.shared_prefix_len > 0 {
                // Fresh prompt stamped from the tenant's system-prompt
                // pool; at least one trailing token stays unique.
                let len = class
                    .shared_prefix_len
                    .min(class.prompt_len.saturating_sub(1));
                req = req.with_shared_prefix(nonzero_hash(mix64(tenant_id ^ POOL_SALT)), len);
            }
            if class.followup_share > 0.0 {
                // A fresh request opens a new conversation instance that
                // later follow-up draws extend.
                sessions.insert(
                    key,
                    Session {
                        hash: nonzero_hash(mix64(mix64(tenant_id ^ SESSION_SALT) ^ id)),
                        ctx: class.prompt_len + class.output_len,
                    },
                );
            }
            out.push(req);
        }
        out
    }
}

/// One tenant's live conversation: the prefix hash its follow-ups declare
/// and the context (prompt + generated tokens) accumulated so far.
struct Session {
    hash: u64,
    ctx: u64,
}

const POOL_SALT: u64 = 0x706f_6f6c;
const SESSION_SALT: u64 = 0x7365_7373;
const GROUP_SALT: u64 = 0x6772_7570;

/// SplitMix64 finalizer — the same mixer the fleet router uses to spread
/// tenant keys across replicas.
fn mix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Prefix hash 0 means "no shared prefix" on [`Request`]; remap the one
/// colliding mixer output.
fn nonzero_hash(h: u64) -> u64 {
    h.max(1)
}

/// Deterministic trace replay: serializes a request stream to a minimal
/// line-based text format and reads it back bit-identically, so a
/// generated workload can be captured once and re-run (or shipped to
/// another machine) without carrying the generator or its seed.
///
/// The format is one `key=value` record per line after a version header:
///
/// ```text
/// # zipserv-trace v1
/// id=0 t=0.41524105 prompt=512 output=128 class=interactive slo=2,0.1 tenant=17 prefix=9e3779b9:384
/// ```
///
/// `id`, `t`, `prompt`, and `output` are required; `class` defaults to
/// `standard`; `slo`, `tenant`, and `prefix` (hash in hex, then the
/// shared length) are omitted when absent. Floats print in Rust's
/// shortest-round-trip form, so [`Trace::replay`] reparses them to the
/// exact bits [`Trace::record`] saw — round-tripping is pinned by a
/// property test.
#[derive(Debug)]
pub struct Trace;

/// A malformed trace line: 1-based line number plus what went wrong.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceError {
    /// 1-based line number of the offending line.
    pub line: usize,
    /// What was wrong with it.
    pub msg: String,
}

impl core::fmt::Display for TraceError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "trace line {}: {}", self.line, self.msg)
    }
}

impl std::error::Error for TraceError {}

impl Trace {
    /// The version header every trace starts with.
    pub const HEADER: &'static str = "# zipserv-trace v1";

    /// Serializes a request stream to the trace text format.
    pub fn record(reqs: &[Request]) -> String {
        let mut out = String::with_capacity(reqs.len() * 64 + 32);
        out.push_str(Self::HEADER);
        out.push('\n');
        for r in reqs {
            let _ = write!(
                out,
                "id={} t={} prompt={} output={} class={}",
                r.id,
                r.arrival_s,
                r.prompt_len,
                r.output_len,
                r.priority.name()
            );
            if let Some(slo) = r.slo {
                let _ = write!(out, " slo={},{}", slo.ttft_s, slo.tpot_s);
            }
            if let Some(tenant) = r.tenant {
                let _ = write!(out, " tenant={tenant}");
            }
            if r.prefix_hash != 0 {
                let _ = write!(out, " prefix={:x}:{}", r.prefix_hash, r.prefix_len);
            }
            out.push('\n');
        }
        out
    }

    /// Parses a trace back into the request stream [`Trace::record`]
    /// serialized, bit-identically. Blank lines and `#` comments after
    /// the header are skipped.
    pub fn replay(text: &str) -> Result<Vec<Request>, TraceError> {
        let err = |line: usize, msg: String| TraceError { line, msg };
        let mut lines = text.lines().enumerate();
        let header = lines.next().ok_or_else(|| err(1, "empty trace".into()))?;
        if header.1.trim() != Self::HEADER {
            return Err(err(1, format!("expected header {:?}", Self::HEADER)));
        }
        let mut out = Vec::new();
        for (idx, raw) in lines {
            let line_no = idx + 1;
            let line = raw.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let mut id = None;
            let mut t = None;
            let mut prompt = None;
            let mut output = None;
            let mut class = PriorityClass::Standard;
            let mut slo = None;
            let mut tenant = None;
            let mut prefix = None;
            for field in line.split_whitespace() {
                let (key, value) = field
                    .split_once('=')
                    .ok_or_else(|| err(line_no, format!("field {field:?} is not key=value")))?;
                let bad = |what: &str| err(line_no, format!("bad {what} {value:?}"));
                match key {
                    "id" => id = Some(value.parse::<u64>().map_err(|_| bad("id"))?),
                    "t" => t = Some(value.parse::<f64>().map_err(|_| bad("t"))?),
                    "prompt" => prompt = Some(value.parse::<u64>().map_err(|_| bad("prompt"))?),
                    "output" => output = Some(value.parse::<u64>().map_err(|_| bad("output"))?),
                    "class" => {
                        class = PriorityClass::ALL
                            .into_iter()
                            .find(|c| c.name() == value)
                            .ok_or_else(|| bad("class"))?;
                    }
                    "slo" => {
                        let (ttft, tpot) = value.split_once(',').ok_or_else(|| bad("slo"))?;
                        let ttft = ttft.parse::<f64>().map_err(|_| bad("slo"))?;
                        let tpot = tpot.parse::<f64>().map_err(|_| bad("slo"))?;
                        if !(ttft > 0.0 && tpot > 0.0) {
                            return Err(bad("slo"));
                        }
                        slo = Some(Slo::new(ttft, tpot));
                    }
                    "tenant" => tenant = Some(value.parse::<u64>().map_err(|_| bad("tenant"))?),
                    "prefix" => {
                        let (hash, len) = value.split_once(':').ok_or_else(|| bad("prefix"))?;
                        let hash = u64::from_str_radix(hash, 16).map_err(|_| bad("prefix"))?;
                        let len = len.parse::<u64>().map_err(|_| bad("prefix"))?;
                        prefix = Some((hash, len));
                    }
                    _ => return Err(err(line_no, format!("unknown key {key:?}"))),
                }
            }
            let miss = |what: &str| err(line_no, format!("missing {what}"));
            let mut req = Request::new(
                id.ok_or_else(|| miss("id"))?,
                t.ok_or_else(|| miss("t"))?,
                prompt.ok_or_else(|| miss("prompt"))?,
                output.ok_or_else(|| miss("output"))?,
            )
            .with_priority(class);
            if let Some(slo) = slo {
                req = req.with_slo(slo);
            }
            if let Some(tenant) = tenant {
                req = req.with_tenant(tenant);
            }
            if let Some((hash, len)) = prefix {
                req = req.with_shared_prefix(hash, len);
            }
            out.push(req);
        }
        Ok(out)
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;

    #[test]
    fn derived_quantities() {
        let w = Workload::new(32, 512, 2048);
        assert_eq!(w.total_output_tokens(), 65_536);
        assert_eq!(w.max_context(), 2560);
        assert_eq!(w.peak_kv_tokens(), 81_920);
    }

    #[test]
    fn paper_sweep_covers_ten_points() {
        let sweep = Workload::paper_sweep();
        assert_eq!(sweep.len(), 10);
        assert!(sweep.iter().all(|w| w.prompt_len == 512));
        assert!(sweep.iter().any(|w| w.batch == 8 && w.output_len == 2048));
    }

    #[test]
    #[should_panic(expected = "nonzero")]
    fn zero_batch_rejected() {
        let _ = Workload::new(0, 1, 1);
    }

    #[test]
    fn paper_mix_samples_all_classes_by_share() {
        let mix = ArrivalMix::paper_mix();
        let reqs = mix.generate(8.0, 600, 19);
        assert_eq!(reqs.len(), 600);
        for w in reqs.windows(2) {
            assert!(w[1].arrival_s > w[0].arrival_s, "arrivals sorted");
        }
        let count = |p: PriorityClass| reqs.iter().filter(|r| r.priority == p).count();
        let interactive = count(PriorityClass::Interactive);
        let standard = count(PriorityClass::Standard);
        let batch = count(PriorityClass::Batch);
        assert_eq!(interactive + standard + batch, 600);
        // Shares within a loose band of 0.5 / 0.3 / 0.2.
        assert!(
            (interactive as f64 / 600.0 - 0.5).abs() < 0.1,
            "{interactive}"
        );
        assert!((standard as f64 / 600.0 - 0.3).abs() < 0.1, "{standard}");
        assert!((batch as f64 / 600.0 - 0.2).abs() < 0.1, "{batch}");
        // QoS rides along with the class.
        assert!(reqs
            .iter()
            .filter(|r| r.priority == PriorityClass::Interactive)
            .all(|r| r.slo == Some(Slo::new(2.0, 0.1)) && r.prompt_len == 512));
        assert!(reqs
            .iter()
            .filter(|r| r.priority == PriorityClass::Batch)
            .all(|r| r.slo.is_none() && r.output_len == 512));
    }

    #[test]
    fn mix_generation_is_deterministic() {
        let mix = ArrivalMix::paper_mix();
        assert_eq!(mix.generate(4.0, 50, 7), mix.generate(4.0, 50, 7));
        assert_ne!(mix.generate(4.0, 50, 7), mix.generate(4.0, 50, 8));
    }

    #[test]
    #[should_panic(expected = "at least one class")]
    fn empty_mix_rejected() {
        let _ = ArrivalMix::new(Vec::new());
    }

    #[test]
    fn paper_mix_stays_tenant_less() {
        // The legacy mix takes the legacy path: no tenant ids, no prefix
        // declarations — the stream the bit-compat digests pin.
        for r in ArrivalMix::paper_mix().generate(8.0, 200, 11) {
            assert_eq!(r.tenant, None);
            assert_eq!(r.prefix_hash, 0);
            assert_eq!(r.prefix_len, 0);
        }
    }

    #[test]
    fn multi_tenant_mix_declares_prefixes_and_tenants() {
        let reqs = ArrivalMix::multi_tenant_mix().generate(8.0, 400, 23);
        assert_eq!(reqs.len(), 400);
        for w in reqs.windows(2) {
            assert!(w[1].arrival_s >= w[0].arrival_s, "arrivals sorted");
        }
        assert!(reqs.iter().all(|r| r.tenant.is_some()));
        assert!(
            reqs.iter().any(|r| r.prefix_hash != 0 && r.prefix_len > 0),
            "nobody declared a shared prefix"
        );
        // Same tenant's fresh interactive prompts share one pool hash.
        let chat: Vec<&Request> = reqs
            .iter()
            .filter(|r| {
                r.priority == PriorityClass::Interactive && r.prompt_len == 512 && r.prefix_len > 0
            })
            .collect();
        assert!(
            chat.len() > 10,
            "too few fresh chat requests: {}",
            chat.len()
        );
        let mut by_tenant: HashMap<u64, u64> = HashMap::new();
        for r in &chat {
            let hash = by_tenant.entry(r.tenant.unwrap()).or_insert(r.prefix_hash);
            assert_eq!(*hash, r.prefix_hash, "pool hash not stable per tenant");
            assert_eq!(r.prefix_len, 384);
        }
        assert!(by_tenant.len() > 1, "only one chat tenant ever sampled");
    }

    #[test]
    fn followups_grow_the_conversation_context() {
        let reqs = ArrivalMix::multi_tenant_mix().generate(8.0, 600, 29);
        // Follow-ups are interactive requests whose prompt grew past the
        // fresh 512 shape: context + one new turn, context as the prefix.
        let followups: Vec<&Request> = reqs
            .iter()
            .filter(|r| r.priority == PriorityClass::Interactive && r.prompt_len > 512)
            .collect();
        assert!(!followups.is_empty(), "no follow-up ever sampled");
        for f in &followups {
            assert_eq!(f.prompt_len, f.prefix_len + 512, "prompt = context + turn");
            assert!(
                f.prefix_len >= 512 + 128,
                "context includes a full first round"
            );
        }
        // At least one conversation reached a second follow-up (a longer
        // context under the same session hash).
        let mut ctxs: HashMap<u64, Vec<u64>> = HashMap::new();
        for f in &followups {
            ctxs.entry(f.prefix_hash).or_default().push(f.prefix_len);
        }
        assert!(
            ctxs.values().any(|v| v.len() > 1),
            "no conversation survived two follow-ups"
        );
    }

    #[test]
    fn parallel_sampling_fans_out_one_arrival() {
        let reqs = ArrivalMix::multi_tenant_mix().generate(8.0, 600, 31);
        let mut groups: HashMap<u64, Vec<&Request>> = HashMap::new();
        for r in reqs.iter().filter(|r| r.priority == PriorityClass::Batch) {
            groups.entry(r.prefix_hash).or_default().push(r);
        }
        assert!(!groups.is_empty(), "no batch group sampled");
        let mut saw_full = false;
        for (hash, group) in &groups {
            assert_ne!(*hash, 0, "batch requests carry a group hash");
            assert!(group.len() <= 4, "group larger than the fan-out");
            saw_full |= group.len() == 4;
            for r in group {
                assert_eq!(r.arrival_s, group[0].arrival_s, "group arrives together");
                assert_eq!(r.prefix_len, r.prompt_len, "full-prompt prefix");
                assert_eq!(r.tenant, group[0].tenant);
            }
            // Fan-out ids are consecutive: the group was emitted as one unit.
            for pair in group.windows(2) {
                assert_eq!(pair[1].id, pair[0].id + 1);
            }
        }
        assert!(saw_full, "no group reached the full fan-out of 4");
    }

    #[test]
    fn trace_round_trips_the_multi_tenant_stream() {
        let reqs = ArrivalMix::multi_tenant_mix().generate(8.0, 300, 41);
        let text = Trace::record(&reqs);
        assert!(text.starts_with(Trace::HEADER));
        let back = Trace::replay(&text).expect("replay");
        assert_eq!(back, reqs, "trace round-trip drifted");
    }

    #[test]
    fn trace_rejects_malformed_input() {
        assert_eq!(Trace::replay("").unwrap_err().line, 1);
        assert_eq!(Trace::replay("nonsense").unwrap_err().line, 1);
        let bad_field = format!("{}\nid=0 t=oops prompt=1 output=1", Trace::HEADER);
        let e = Trace::replay(&bad_field).unwrap_err();
        assert_eq!(e.line, 2);
        assert!(e.msg.contains("bad t"), "{}", e.msg);
        let missing = format!("{}\nid=0 prompt=1 output=1", Trace::HEADER);
        assert!(Trace::replay(&missing)
            .unwrap_err()
            .msg
            .contains("missing t"));
        let unknown = format!("{}\nid=0 t=1 prompt=1 output=1 zap=3", Trace::HEADER);
        assert!(Trace::replay(&unknown)
            .unwrap_err()
            .msg
            .contains("unknown key"));
        // Comments and blank lines are fine.
        let commented = format!(
            "{}\n\n# note\nid=7 t=1.5 prompt=64 output=8\n",
            Trace::HEADER
        );
        let reqs = Trace::replay(&commented).expect("comments skipped");
        assert_eq!(reqs.len(), 1);
        assert_eq!(reqs[0].id, 7);
    }
}

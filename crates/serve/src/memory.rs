//! Device memory planning: weights vs KV cache vs runtime overhead.
//!
//! Figure 17's memory breakdown: on a 24 GB RTX4090 serving LLaMA3.1-8B,
//! vLLM holds 14.96 GB of weights and 5.07 GB of KV cache; ZipServ shrinks
//! weights to ~11.2 GB (compressed arrays plus one decompression scratch
//! buffer for the prefill path) and the allocator automatically grows the
//! KV cache to ~8.6 GB.

use crate::cluster::GpuCluster;
use crate::parallel::{stage_activation_bytes, PipelineKind};
use zipserv_kernels::shapes::{LayerKind, LlmModel};

/// Fixed runtime overhead per GPU (CUDA context, activations, workspace).
pub const RUNTIME_OVERHEAD_BYTES: u64 = 3_900_000_000;

/// Why a memory plan cannot be built: some stage's weight slice plus the
/// fixed runtime overhead exceeds device capacity. The typed face of the
/// panic in [`MemoryPlan::plan`], for callers that want to degrade
/// gracefully (see `EngineBuilder::try_build` in [`crate::engine`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PlanError {
    /// Weight bytes resident on the offending stage's ranks.
    pub weight_bytes: u64,
    /// Per-GPU capacity in bytes.
    pub capacity_bytes: u64,
    /// The pipeline stage that overflowed.
    pub stage: usize,
    /// Total pipeline stages in the deployment.
    pub stages: usize,
}

impl core::fmt::Display for PlanError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(
            f,
            "model does not fit: {} weights on {} capacity (stage {} of {})",
            self.weight_bytes, self.capacity_bytes, self.stage, self.stages
        )
    }
}

impl std::error::Error for PlanError {}

/// How the engine stores weights.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum WeightFormat {
    /// Dense BF16.
    Dense,
    /// TCA-TBE compressed at a given fraction of raw (plus prefill scratch).
    Compressed {
        /// Compressed bytes / raw bytes (≈0.71 for the paper's models).
        fraction: f64,
    },
}

/// The per-GPU memory plan.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MemoryPlan {
    /// Weight bytes resident per GPU.
    pub weight_bytes: u64,
    /// KV-cache bytes per GPU.
    pub kv_bytes: u64,
    /// Runtime overhead bytes per GPU.
    pub runtime_bytes: u64,
    /// Per-GPU capacity.
    pub capacity_bytes: u64,
}

impl MemoryPlan {
    /// Plans memory for `model` on `cluster` with the given weight format:
    /// the plan of the *bottleneck rank* — the pipeline stage whose weight
    /// slice leaves the least KV headroom. With `pp == 1` (every deployment
    /// before pipeline parallelism existed) this is exactly the historical
    /// single-plan computation, byte for byte.
    ///
    /// # Panics
    ///
    /// Panics if any rank's weights alone exceed device capacity.
    pub fn plan(model: LlmModel, cluster: &GpuCluster, format: WeightFormat) -> MemoryPlan {
        Self::plan_stages(model, cluster, format)
            .into_iter()
            .min_by_key(|p| p.kv_bytes)
            .expect("at least one stage")
    }

    /// Fallible [`MemoryPlan::plan`]: returns [`PlanError`] instead of
    /// panicking when some rank's weights alone exceed device capacity.
    pub fn try_plan(
        model: LlmModel,
        cluster: &GpuCluster,
        format: WeightFormat,
    ) -> Result<MemoryPlan, PlanError> {
        Ok(Self::try_plan_stages(model, cluster, format)?
            .into_iter()
            .min_by_key(|p| p.kv_bytes)
            .expect("at least one stage"))
    }

    /// Plans memory for every pipeline stage of the deployment, in stage
    /// order. Each stage's `tp` ranks are identical (weights shard evenly),
    /// so one plan per stage describes all of its ranks. Stage 0 holds the
    /// embedding table, the last stage the LM head; transformer blocks
    /// follow [`GpuCluster::stage_layers`].
    ///
    /// # Panics
    ///
    /// Panics if any stage's weights alone exceed device capacity.
    pub fn plan_stages(
        model: LlmModel,
        cluster: &GpuCluster,
        format: WeightFormat,
    ) -> Vec<MemoryPlan> {
        Self::try_plan_stages(model, cluster, format).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible [`MemoryPlan::plan_stages`]: returns [`PlanError`] for the
    /// first overflowing stage instead of panicking.
    pub fn try_plan_stages(
        model: LlmModel,
        cluster: &GpuCluster,
        format: WeightFormat,
    ) -> Result<Vec<MemoryPlan>, PlanError> {
        let dims = model.dims();
        let tp = cluster.tp() as u64;
        let stages = cluster.stage_layers(dims.layers);
        let last = stages.len() - 1;
        stages
            .iter()
            .enumerate()
            .map(|(s, &stage_layers)| {
                // Embedding on the first stage, LM head on the last (both on
                // the sole stage when pp == 1, reproducing the old plan).
                let mut raw = 2 * stage_layers * dims.block_linear_elements();
                if s == 0 {
                    raw += 2 * dims.vocab * dims.hidden;
                }
                if s == last {
                    raw += 2 * dims.vocab * dims.hidden;
                }
                let raw_per_rank = raw / tp;
                let weight_bytes = match format {
                    WeightFormat::Dense => raw_per_rank,
                    WeightFormat::Compressed { fraction } => {
                        // Compressed arrays plus one dense scratch buffer
                        // sized for the largest layer resident on this stage
                        // (the prefill decoupled path, §4.4).
                        let largest_layer = LayerKind::ALL
                            .iter()
                            .filter(|l| !matches!(l, LayerKind::LmHead) || s == last)
                            .map(|l| {
                                let (m, k) = l.weight_dims(&dims);
                                2 * m * k / tp
                            })
                            .max()
                            .expect("layers exist");
                        (raw_per_rank as f64 * fraction) as u64 + largest_layer
                    }
                };
                let capacity = cluster.dram_bytes_per_gpu();
                if weight_bytes + RUNTIME_OVERHEAD_BYTES >= capacity {
                    return Err(PlanError {
                        weight_bytes,
                        capacity_bytes: capacity,
                        stage: s,
                        stages: stages.len(),
                    });
                }
                Ok(MemoryPlan {
                    weight_bytes,
                    kv_bytes: capacity - weight_bytes - RUNTIME_OVERHEAD_BYTES,
                    runtime_bytes: RUNTIME_OVERHEAD_BYTES,
                    capacity_bytes: capacity,
                })
            })
            .collect()
    }

    /// KV capacity in tokens for `model` (per GPU shard of the cache).
    pub fn kv_capacity_tokens(&self, model: LlmModel, tp: u32) -> u64 {
        let per_token = model.dims().kv_bytes_per_token() / tp as u64;
        self.kv_bytes / per_token.max(1)
    }

    /// In-flight micro-batches of activations a stage must hold live under
    /// `kind`. GPipe's fill/drain retires each micro-batch's activations
    /// as the next stage consumes them, so one set is resident at a time;
    /// 1F1B's defining memory cost is that each stage keeps up to `pp`
    /// micro-batches interleaved (stage 0 has admitted `pp` forwards
    /// before its first backward-position slot frees one).
    pub fn in_flight_micro_batches(kind: PipelineKind, pp: u32) -> u32 {
        match kind {
            PipelineKind::GPipe => 1,
            PipelineKind::OneFOneB => pp.max(1),
        }
    }

    /// The activation-memory ceiling of one pipeline stage: in-flight
    /// micro-batches × the per-micro activation working set
    /// ([`stage_activation_bytes`]) at `tokens_per_micro` tokens. Under
    /// 1F1B this grows linearly with `pp`, which is what makes
    /// interleaving refusable on memory-starved replicas.
    pub fn activation_ceiling_bytes(
        model: LlmModel,
        kind: PipelineKind,
        pp: u32,
        tokens_per_micro: u64,
    ) -> u64 {
        u64::from(Self::in_flight_micro_batches(kind, pp))
            * stage_activation_bytes(model.dims().hidden, tokens_per_micro)
    }

    /// Whether this plan's flexible region (the KV headroom — weights and
    /// the fixed runtime overhead are immovable) survives the schedule's
    /// activation ceiling with KV capacity to spare. The fleet router
    /// consults this before placing [`PipelineKind::OneFOneB`] on a
    /// replica: a stage whose 1F1B ceiling eats the whole KV region
    /// cannot serve, so the router demotes it to GPipe instead.
    pub fn admits_pipeline_kind(
        &self,
        model: LlmModel,
        kind: PipelineKind,
        pp: u32,
        tokens_per_micro: u64,
    ) -> bool {
        Self::activation_ceiling_bytes(model, kind, pp, tokens_per_micro) < self.kv_bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use zipserv_gpu_sim::device::Gpu;

    #[test]
    fn figure17_weight_and_kv_breakdown() {
        let cluster = GpuCluster::single(Gpu::Rtx4090);
        let dense = MemoryPlan::plan(LlmModel::Llama31_8b, &cluster, WeightFormat::Dense);
        let zip = MemoryPlan::plan(
            LlmModel::Llama31_8b,
            &cluster,
            WeightFormat::Compressed { fraction: 0.715 },
        );
        // Paper: weights 14.96 -> 11.18 GB; KV 5.07 -> 8.60 GB (1.70x).
        let gb = 1e9;
        assert!((dense.weight_bytes as f64 / gb - 14.96).abs() < 1.5);
        assert!((zip.weight_bytes as f64 / gb - 11.18).abs() < 1.5);
        let kv_ratio = zip.kv_bytes as f64 / dense.kv_bytes as f64;
        assert!(kv_ratio > 1.4 && kv_ratio < 2.0, "KV growth {kv_ratio}");
    }

    #[test]
    fn compressed_weights_always_smaller() {
        for model in [LlmModel::Llama31_8b, LlmModel::Mistral24b] {
            let cluster = match model {
                LlmModel::Llama31_8b => GpuCluster::single(Gpu::Rtx4090),
                _ => GpuCluster::tensor_parallel(Gpu::L40s, 2),
            };
            let dense = MemoryPlan::plan(model, &cluster, WeightFormat::Dense);
            let zip = MemoryPlan::plan(
                model,
                &cluster,
                WeightFormat::Compressed { fraction: 0.715 },
            );
            assert!(zip.weight_bytes < dense.weight_bytes);
            assert!(zip.kv_bytes > dense.kv_bytes);
        }
    }

    #[test]
    #[should_panic(expected = "does not fit")]
    fn oversized_model_panics() {
        let cluster = GpuCluster::single(Gpu::Rtx4090);
        let _ = MemoryPlan::plan(LlmModel::Llama31_70b, &cluster, WeightFormat::Dense);
    }

    #[test]
    fn try_plan_surfaces_typed_error() {
        let cluster = GpuCluster::single(Gpu::Rtx4090);
        let err = MemoryPlan::try_plan(LlmModel::Llama31_70b, &cluster, WeightFormat::Dense)
            .expect_err("70B dense cannot fit a 4090");
        assert_eq!((err.stage, err.stages), (0, 1));
        assert!(err.weight_bytes + RUNTIME_OVERHEAD_BYTES >= err.capacity_bytes);
        assert!(err.to_string().contains("does not fit"));
    }

    #[test]
    fn tp_shards_weights() {
        let c2 = GpuCluster::tensor_parallel(Gpu::L40s, 2);
        let plan = MemoryPlan::plan(LlmModel::Mistral24b, &c2, WeightFormat::Dense);
        let full = LlmModel::Mistral24b.dims().weight_bytes_bf16();
        assert_eq!(plan.weight_bytes, full / 2);
    }

    #[test]
    fn single_stage_plan_matches_legacy_formula() {
        // pp=1 must reproduce the historical computation byte for byte:
        // raw weights / tp, compressed fraction plus one scratch layer.
        for tp in [1u32, 2] {
            let cluster = GpuCluster::tensor_parallel(Gpu::L40s, tp);
            for format in [
                WeightFormat::Dense,
                WeightFormat::Compressed { fraction: 0.715 },
            ] {
                let plan = MemoryPlan::plan(LlmModel::Mistral24b, &cluster, format);
                let raw = LlmModel::Mistral24b.dims().weight_bytes_bf16() / tp as u64;
                match format {
                    WeightFormat::Dense => assert_eq!(plan.weight_bytes, raw),
                    WeightFormat::Compressed { fraction } => {
                        assert!(plan.weight_bytes > (raw as f64 * fraction) as u64);
                        assert!(plan.weight_bytes < raw);
                    }
                }
            }
        }
    }

    #[test]
    fn pipeline_stages_split_weights_and_grow_kv() {
        // LLaMA3.1-70B on a 4×2 TP×PP grid: each stage holds half the
        // layers, so each rank carries less weight than pure TP=4 and the
        // freed bytes become KV headroom.
        let tp4 = GpuCluster::tensor_parallel(Gpu::L40s, 4);
        let grid = GpuCluster::pipeline_parallel(Gpu::L40s, 4, 2);
        let stages = MemoryPlan::plan_stages(LlmModel::Llama31_70b, &grid, WeightFormat::Dense);
        assert_eq!(stages.len(), 2);
        let tp_plan = MemoryPlan::plan(LlmModel::Llama31_70b, &tp4, WeightFormat::Dense);
        for s in &stages {
            assert!(
                s.weight_bytes < tp_plan.weight_bytes,
                "stage slice is smaller"
            );
            assert!(s.kv_bytes > tp_plan.kv_bytes, "freed weights become KV");
        }
        // The bottleneck plan is the min-KV stage.
        let plan = MemoryPlan::plan(LlmModel::Llama31_70b, &grid, WeightFormat::Dense);
        assert_eq!(
            plan.kv_bytes,
            stages.iter().map(|s| s.kv_bytes).min().expect("stages")
        );
    }

    #[test]
    fn uneven_layer_split_loads_early_stages() {
        // 32 layers over 3 stages: 11/11/10 — stage 0 (extra layer plus the
        // embedding table) is the weight bottleneck, and the middle stage
        // (no embedding, no LM head) is the lightest.
        let grid = GpuCluster::pipeline_parallel(Gpu::Rtx4090, 1, 3);
        let stages = MemoryPlan::plan_stages(LlmModel::Llama31_8b, &grid, WeightFormat::Dense);
        assert_eq!(stages.len(), 3);
        let max = stages.iter().map(|s| s.weight_bytes).max().expect("stages");
        let min = stages.iter().map(|s| s.weight_bytes).min().expect("stages");
        assert_eq!(stages[0].weight_bytes, max);
        assert_eq!(stages[1].weight_bytes, min);
    }

    #[test]
    fn one_f_one_b_activation_ceiling_scales_with_pp() {
        // GPipe holds one micro-batch of activations per stage; 1F1B holds
        // pp of them — the exact ratio, straight from the closed form.
        let model = LlmModel::Llama31_8b;
        for pp in [2u32, 4, 8] {
            let gpipe =
                MemoryPlan::activation_ceiling_bytes(model, PipelineKind::GPipe, pp, 65_536);
            let one_f =
                MemoryPlan::activation_ceiling_bytes(model, PipelineKind::OneFOneB, pp, 65_536);
            assert_eq!(one_f, u64::from(pp) * gpipe);
            assert_eq!(gpipe, 2 * model.dims().hidden * 65_536);
        }
    }

    #[test]
    fn memory_starved_stage_refuses_interleaving_but_not_gpipe() {
        // A replica whose stage has little KV headroom: GPipe's single
        // in-flight micro-batch fits, 1F1B's pp-deep ceiling does not —
        // the predicate the fleet router uses to demote OneFOneB.
        let model = LlmModel::Llama31_8b;
        let pp = 8u32;
        let tokens = 65_536; // batch 32 × 2048-token prompts per micro
        let gpipe_need =
            MemoryPlan::activation_ceiling_bytes(model, PipelineKind::GPipe, pp, tokens);
        let starved = MemoryPlan {
            weight_bytes: 10_000_000_000,
            kv_bytes: 2 * gpipe_need, // fits 2 micro-batches, not pp = 8
            runtime_bytes: RUNTIME_OVERHEAD_BYTES,
            capacity_bytes: 16_000_000_000,
        };
        assert!(starved.admits_pipeline_kind(model, PipelineKind::GPipe, pp, tokens));
        assert!(!starved.admits_pipeline_kind(model, PipelineKind::OneFOneB, pp, tokens));
        // A real single-stage plan has gigabytes of KV headroom: both
        // schedules clear the ceiling at decode-sized micro-batches.
        let cluster = GpuCluster::single(Gpu::Rtx4090);
        let plan = MemoryPlan::plan(model, &cluster, WeightFormat::Dense);
        for kind in [PipelineKind::GPipe, PipelineKind::OneFOneB] {
            assert!(plan.admits_pipeline_kind(model, kind, 2, 32 * 1024));
        }
    }

    #[test]
    fn kv_token_capacity() {
        let cluster = GpuCluster::single(Gpu::Rtx4090);
        let plan = MemoryPlan::plan(LlmModel::Llama31_8b, &cluster, WeightFormat::Dense);
        let tokens = plan.kv_capacity_tokens(LlmModel::Llama31_8b, 1);
        // ~5 GB / 131072 B/token ≈ 39K tokens.
        assert!(tokens > 25_000 && tokens < 60_000, "tokens {tokens}");
    }
}

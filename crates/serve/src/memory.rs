//! Device memory planning: weights vs KV cache vs runtime overhead.
//!
//! Figure 17's memory breakdown: on a 24 GB RTX4090 serving LLaMA3.1-8B,
//! vLLM holds 14.96 GB of weights and 5.07 GB of KV cache; ZipServ shrinks
//! weights to ~11.2 GB (compressed arrays plus one decompression scratch
//! buffer for the prefill path) and the allocator automatically grows the
//! KV cache to ~8.6 GB.

use crate::cluster::GpuCluster;
use zipserv_kernels::shapes::{LayerKind, LlmModel};

/// Fixed runtime overhead per GPU (CUDA context, activations, workspace).
pub const RUNTIME_OVERHEAD_BYTES: u64 = 3_900_000_000;

/// How the engine stores weights.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum WeightFormat {
    /// Dense BF16.
    Dense,
    /// TCA-TBE compressed at a given fraction of raw (plus prefill scratch).
    Compressed {
        /// Compressed bytes / raw bytes (≈0.71 for the paper's models).
        fraction: f64,
    },
}

/// The per-GPU memory plan.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MemoryPlan {
    /// Weight bytes resident per GPU.
    pub weight_bytes: u64,
    /// KV-cache bytes per GPU.
    pub kv_bytes: u64,
    /// Runtime overhead bytes per GPU.
    pub runtime_bytes: u64,
    /// Per-GPU capacity.
    pub capacity_bytes: u64,
}

impl MemoryPlan {
    /// Plans memory for `model` on `cluster` with the given weight format.
    /// KV gets everything left after weights and runtime overhead.
    ///
    /// # Panics
    ///
    /// Panics if the weights alone exceed device capacity.
    pub fn plan(model: LlmModel, cluster: &GpuCluster, format: WeightFormat) -> MemoryPlan {
        let dims = model.dims();
        let raw_per_gpu = dims.weight_bytes_bf16() / cluster.tp() as u64;
        let weight_bytes = match format {
            WeightFormat::Dense => raw_per_gpu,
            WeightFormat::Compressed { fraction } => {
                // Compressed arrays plus one dense scratch buffer sized for
                // the largest layer (the prefill decoupled path, §4.4).
                let largest_layer = LayerKind::ALL
                    .iter()
                    .map(|l| {
                        let (m, k) = l.weight_dims(&dims);
                        2 * m * k / cluster.tp() as u64
                    })
                    .max()
                    .expect("layers exist");
                (raw_per_gpu as f64 * fraction) as u64 + largest_layer
            }
        };
        let capacity = cluster.dram_bytes_per_gpu();
        assert!(
            weight_bytes + RUNTIME_OVERHEAD_BYTES < capacity,
            "model does not fit: {weight_bytes} weights on {capacity} capacity"
        );
        MemoryPlan {
            weight_bytes,
            kv_bytes: capacity - weight_bytes - RUNTIME_OVERHEAD_BYTES,
            runtime_bytes: RUNTIME_OVERHEAD_BYTES,
            capacity_bytes: capacity,
        }
    }

    /// KV capacity in tokens for `model` (per GPU shard of the cache).
    pub fn kv_capacity_tokens(&self, model: LlmModel, tp: u32) -> u64 {
        let per_token = model.dims().kv_bytes_per_token() / tp as u64;
        self.kv_bytes / per_token.max(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use zipserv_gpu_sim::device::Gpu;

    #[test]
    fn figure17_weight_and_kv_breakdown() {
        let cluster = GpuCluster::single(Gpu::Rtx4090);
        let dense = MemoryPlan::plan(LlmModel::Llama31_8b, &cluster, WeightFormat::Dense);
        let zip = MemoryPlan::plan(
            LlmModel::Llama31_8b,
            &cluster,
            WeightFormat::Compressed { fraction: 0.715 },
        );
        // Paper: weights 14.96 -> 11.18 GB; KV 5.07 -> 8.60 GB (1.70x).
        let gb = 1e9;
        assert!((dense.weight_bytes as f64 / gb - 14.96).abs() < 1.5);
        assert!((zip.weight_bytes as f64 / gb - 11.18).abs() < 1.5);
        let kv_ratio = zip.kv_bytes as f64 / dense.kv_bytes as f64;
        assert!(kv_ratio > 1.4 && kv_ratio < 2.0, "KV growth {kv_ratio}");
    }

    #[test]
    fn compressed_weights_always_smaller() {
        for model in [LlmModel::Llama31_8b, LlmModel::Mistral24b] {
            let cluster = match model {
                LlmModel::Llama31_8b => GpuCluster::single(Gpu::Rtx4090),
                _ => GpuCluster::tensor_parallel(Gpu::L40s, 2),
            };
            let dense = MemoryPlan::plan(model, &cluster, WeightFormat::Dense);
            let zip = MemoryPlan::plan(model, &cluster, WeightFormat::Compressed { fraction: 0.715 });
            assert!(zip.weight_bytes < dense.weight_bytes);
            assert!(zip.kv_bytes > dense.kv_bytes);
        }
    }

    #[test]
    #[should_panic(expected = "does not fit")]
    fn oversized_model_panics() {
        let cluster = GpuCluster::single(Gpu::Rtx4090);
        let _ = MemoryPlan::plan(LlmModel::Llama31_70b, &cluster, WeightFormat::Dense);
    }

    #[test]
    fn tp_shards_weights() {
        let c2 = GpuCluster::tensor_parallel(Gpu::L40s, 2);
        let plan = MemoryPlan::plan(LlmModel::Mistral24b, &c2, WeightFormat::Dense);
        let full = LlmModel::Mistral24b.dims().weight_bytes_bf16();
        assert_eq!(plan.weight_bytes, full / 2);
    }

    #[test]
    fn kv_token_capacity() {
        let cluster = GpuCluster::single(Gpu::Rtx4090);
        let plan = MemoryPlan::plan(LlmModel::Llama31_8b, &cluster, WeightFormat::Dense);
        let tokens = plan.kv_capacity_tokens(LlmModel::Llama31_8b, 1);
        // ~5 GB / 131072 B/token ≈ 39K tokens.
        assert!(tokens > 25_000 && tokens < 60_000, "tokens {tokens}");
    }
}

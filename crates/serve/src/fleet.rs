//! Fleet-scale serving: a router driving one arrival stream across N replicas.
//!
//! A [`FleetRouter`] owns N replicas — each its own [`ServingEngine`] (and
//! therefore its own `SchedulePolicy`, [`KvShards`], and optional
//! `FaultPlan`) — and partitions a shared arrival trace across them with a
//! pluggable [`RoutePolicy`]. Routing is online and per-arrival: the router
//! maintains a *live* per-replica [`KvShards`] mirror with whole-lifetime
//! token reservations (the same books streaming admission keeps inside the
//! engine), so policies like [`LeastKvPressure`] read exact per-rank page
//! occupancy rather than queue-length estimates. After the whole trace is
//! routed, each replica simulates its partition with
//! [`ServingEngine::serve_online`] and the per-replica
//! [`ScheduleReport`]s are merged into a [`FleetReport`].
//!
//! Three fleet-level behaviours are opt-in (all default off, which makes a
//! single-replica fleet bit-compatible with the bare `run_policy`
//! scheduler):
//!
//! * **admission control** ([`FleetRouter::shed_when_saturated`]) — when
//!   every active replica's peak rank pressure is at or above the
//!   threshold the arrival is shed as [`RejectReason::BrownoutShed`];
//!   requests too large for every replica's KV capacity are rejected as
//!   [`RejectReason::Oversized`] before they pollute any replica trace;
//! * **autoscaling** ([`FleetRouter::autoscale`]) — scale-up spawns a cold
//!   replica through the pristine-clone path (`ServingEngine::clone`
//!   shares the step memo and the pristine [`KvShards`] proto, so a new
//!   replica costs O(1)); scale-down marks the highest-index active
//!   replica as draining: it finishes its assigned work but receives no
//!   new traffic;
//! * **1F1B admission** ([`FleetRouter::try_with_replica`]) — replicas
//!   configured for `PipelineKind::OneFOneB` are refused with
//!   [`FleetError::ActivationCeiling`] when `pp` in-flight micro-batches
//!   would overflow the stage activation budget
//!   (`MemoryPlan::admits_pipeline_kind`).

use crate::engine::ServingEngine;
use crate::fault::{FaultKind, RejectReason, Rejection};
use crate::kvcache::{KvShards, PrefixStats};
use crate::metrics;
use crate::parallel::PipelineKind;
use crate::policy::PriorityClass;
use crate::scheduler::{Completion, Request, ScheduleReport, UniformStream};

/// Worst-case per-request prompt length (tokens) assumed by the router's
/// 1F1B activation-ceiling admission check — the paper mix's Batch class.
pub const FLEET_PROMPT_TOKENS: u64 = 2048;

/// Errors returned by [`FleetRouter::try_with_replica`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FleetError {
    /// The replica is configured for 1F1B interleaving but keeping `pp`
    /// micro-batches in flight per stage would overflow the stage
    /// activation budget (the plan's KV headroom).
    ActivationCeiling {
        /// Activation bytes 1F1B must hold resident per stage.
        ceiling_bytes: u64,
        /// Activation budget the stage can actually spare.
        budget_bytes: u64,
    },
}

impl core::fmt::Display for FleetError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            FleetError::ActivationCeiling {
                ceiling_bytes,
                budget_bytes,
            } => write!(
                f,
                "1F1B activation ceiling {ceiling_bytes} B exceeds stage budget {budget_bytes} B"
            ),
        }
    }
}

impl std::error::Error for FleetError {}

/// Point-in-time view of one replica, handed to [`RoutePolicy::route`].
#[derive(Debug, Clone, PartialEq)]
pub struct ReplicaSnapshot {
    /// Requests routed to this replica whose estimated service window is
    /// still open (admitted-or-queued from the router's point of view).
    pub in_flight: usize,
    /// Live per-rank KV occupancy in `[0, 1]` ([`KvShards::pressure`]);
    /// invalidated ranks read `1.0`.
    pub pressure: Vec<f64>,
    /// Draining replicas finish assigned work but accept no new traffic.
    pub draining: bool,
}

impl ReplicaSnapshot {
    /// Highest per-rank pressure — the rank that will stall first.
    pub fn peak_pressure(&self) -> f64 {
        self.pressure.iter().fold(0.0, |a, &b| a.max(b))
    }
}

/// A per-arrival replica-selection policy.
///
/// `route` returns an index into `replicas`; the router clamps an
/// out-of-range or draining pick to the least-loaded active replica, so
/// policies may ignore the draining flag if they wish (the in-tree ones
/// don't).
pub trait RoutePolicy: core::fmt::Debug {
    /// Stable policy name used in reports and figures.
    fn name(&self) -> &'static str;
    /// Pick a replica index for `req` given per-replica snapshots.
    fn route(&mut self, req: &Request, replicas: &[ReplicaSnapshot]) -> usize;
}

fn active_indices(replicas: &[ReplicaSnapshot]) -> Vec<usize> {
    let active: Vec<usize> = (0..replicas.len())
        .filter(|&i| !replicas[i].draining)
        .collect();
    if active.is_empty() {
        (0..replicas.len()).collect()
    } else {
        active
    }
}

/// Cycle through active replicas in index order, ignoring load entirely.
#[derive(Debug, Clone, Default)]
pub struct RoundRobin {
    next: usize,
}

impl RoutePolicy for RoundRobin {
    fn name(&self) -> &'static str {
        "round-robin"
    }

    fn route(&mut self, _req: &Request, replicas: &[ReplicaSnapshot]) -> usize {
        if replicas.is_empty() {
            return 0;
        }
        let n = replicas.len();
        for step in 0..n {
            let idx = (self.next + step) % n;
            if !replicas[idx].draining {
                self.next = idx + 1;
                return idx;
            }
        }
        self.next %= n;
        let idx = self.next;
        self.next += 1;
        idx
    }
}

/// Send each arrival to the replica whose most-loaded KV rank has the
/// lowest live pressure — exact, not estimated: the router's books carry
/// the same whole-lifetime per-rank reservations streaming admission
/// keeps, so ties in queue depth are broken by actual page occupancy.
#[derive(Debug, Clone, Copy, Default)]
pub struct LeastKvPressure;

impl RoutePolicy for LeastKvPressure {
    fn name(&self) -> &'static str {
        "least-kv-pressure"
    }

    fn route(&mut self, _req: &Request, replicas: &[ReplicaSnapshot]) -> usize {
        let mut best = 0usize;
        let mut best_p = f64::INFINITY;
        for idx in active_indices(replicas) {
            let p = replicas[idx].peak_pressure();
            if p < best_p {
                best_p = p;
                best = idx;
            }
        }
        best
    }
}

fn splitmix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Sticky per-tenant hashing: requests from the same tenant always land
/// on the same active replica, preserving session locality (KV reuse,
/// prefix caches) at the cost of balance. Requests carrying a real
/// [`Request::tenant`] id are keyed on it — the pairing that makes
/// prefix caching compound with routing, since a tenant's shared-prefix
/// pages stay hot on one replica — while tenant-less legacy traffic
/// falls back to folding the request id modulo `tenants`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SessionAffinity {
    /// Number of distinct tenants the id space of *tenant-less* requests
    /// is folded into (the fallback key).
    pub tenants: u64,
}

impl Default for SessionAffinity {
    fn default() -> Self {
        SessionAffinity { tenants: 16 }
    }
}

impl RoutePolicy for SessionAffinity {
    fn name(&self) -> &'static str {
        "session-affinity"
    }

    fn route(&mut self, req: &Request, replicas: &[ReplicaSnapshot]) -> usize {
        let active = active_indices(replicas);
        if active.is_empty() {
            return 0;
        }
        let tenant = req.tenant.unwrap_or(req.id % self.tenants.max(1));
        let slot = splitmix64(tenant) as usize % active.len();
        active[slot]
    }
}

/// Sample two distinct active replicas uniformly at random (deterministic
/// xorshift stream) and send the arrival to the shorter queue — the
/// classic "power of two choices" load balancer. Queue depth (live
/// in-flight requests, which is what the batch-slot cap admits by) is
/// compared first; KV pressure breaks ties.
pub struct PowerOfTwoChoices {
    rng: UniformStream,
}

impl PowerOfTwoChoices {
    /// A deterministic sampler; the same seed reproduces the same routing.
    pub fn new(seed: u64) -> Self {
        PowerOfTwoChoices {
            rng: UniformStream::new(seed),
        }
    }
}

impl Default for PowerOfTwoChoices {
    fn default() -> Self {
        PowerOfTwoChoices::new(17)
    }
}

impl core::fmt::Debug for PowerOfTwoChoices {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("PowerOfTwoChoices").finish_non_exhaustive()
    }
}

impl RoutePolicy for PowerOfTwoChoices {
    fn name(&self) -> &'static str {
        "power-of-two"
    }

    fn route(&mut self, _req: &Request, replicas: &[ReplicaSnapshot]) -> usize {
        let active = active_indices(replicas);
        match active.len() {
            0 => return 0,
            1 => return active[0],
            _ => {}
        }
        let n = active.len();
        let a = ((self.rng.next() * n as f64) as usize).min(n - 1);
        let mut b = ((self.rng.next() * n as f64) as usize).min(n - 1);
        if b == a {
            b = (a + 1) % n;
        }
        let (ia, ib) = (active[a], active[b]);
        let (qa, qb) = (replicas[ia].in_flight, replicas[ib].in_flight);
        if qa < qb {
            ia
        } else if qb < qa {
            ib
        } else if replicas[ia].peak_pressure() <= replicas[ib].peak_pressure() {
            ia
        } else {
            ib
        }
    }
}

/// Autoscaling thresholds, on the router's mean in-flight depth per
/// active replica.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Autoscale {
    /// Never drain below this many active replicas.
    pub min_replicas: usize,
    /// Never spawn above this many active replicas.
    pub max_replicas: usize,
    /// Mean in-flight per active replica above which one replica is added.
    pub scale_up_in_flight: f64,
    /// Mean in-flight per active replica below which one replica drains.
    pub scale_down_in_flight: f64,
    /// Minimum wall-clock seconds between scaling actions.
    pub cooldown_s: f64,
}

impl Default for Autoscale {
    fn default() -> Self {
        Autoscale {
            min_replicas: 1,
            max_replicas: 8,
            scale_up_in_flight: 12.0,
            scale_down_in_flight: 2.0,
            cooldown_s: 5.0,
        }
    }
}

/// Direction of one autoscaling action.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScaleDirection {
    /// A cold replica was spawned from the pristine-clone path.
    Up,
    /// One replica was marked draining.
    Down,
}

/// One autoscaling action taken while routing the trace.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AutoscaleEvent {
    /// Trace time (seconds) at which the action fired.
    pub at_s: f64,
    /// Whether a replica was added or drained.
    pub direction: ScaleDirection,
    /// Active (non-draining) replica count *after* the action.
    pub active_replicas: usize,
}

#[derive(Debug)]
struct Replica {
    engine: ServingEngine,
    assigned: Vec<Request>,
    shards: KvShards,
    /// (estimated completion time, request id, tokens reserved in `shards`)
    live: Vec<(f64, u64, bool)>,
    /// Seconds per decode step at the engine's batch cap — each resident
    /// request retires one output token per step, so a request's service
    /// window is roughly `prefill + output_len * step_s`.
    step_s: f64,
    /// Virtual free time of each of the engine's `max_batch` batch slots.
    /// A new request starts when the earliest slot frees, so estimated
    /// completions include queue wait — a backlogged replica keeps
    /// reading as loaded instead of draining on the wall clock.
    slots: Vec<f64>,
    draining: bool,
    /// Index of the next engine fault event to mirror into the live books.
    fault_cursor: usize,
}

impl Replica {
    fn new(engine: ServingEngine) -> Self {
        let shards = engine.kv_shards();
        let batch = engine.max_batch() as u64;
        let key = (engine.step_cache_key(batch), 1024);
        let (step_ms, _) = engine.step_cost_priced(key, batch, 1024);
        let slots = vec![0.0; engine.max_batch().max(1)];
        Replica {
            engine,
            assigned: Vec::new(),
            shards,
            live: Vec::new(),
            step_s: (step_ms / 1000.0).max(1e-9),
            slots,
            draining: false,
            fault_cursor: 0,
        }
    }

    /// Release reservations whose estimated service window has closed and
    /// mirror due fault events into the live books, so routing sees a
    /// dead rank (pressure `1.0`) the moment its replica's `FaultPlan`
    /// strikes.
    fn settle(&mut self, now: f64) {
        let events = self.engine.fault_plan().events();
        while self.fault_cursor < events.len() && events[self.fault_cursor].at_s <= now {
            match events[self.fault_cursor].kind {
                FaultKind::RankFail { rank } => {
                    self.shards.invalidate_rank(rank);
                }
                FaultKind::RankRepair { rank } => {
                    self.shards.repair_rank(rank);
                }
                _ => {}
            }
            self.fault_cursor += 1;
        }
        let mut i = 0;
        while i < self.live.len() {
            if self.live[i].0 <= now {
                let (_, id, reserved) = self.live.swap_remove(i);
                if reserved {
                    let _ = self.shards.release(id);
                }
            } else {
                i += 1;
            }
        }
    }

    fn peak_pressure(&self) -> f64 {
        self.shards.pressure().iter().fold(0.0, |a, &b| a.max(b))
    }

    fn snapshot(&self) -> ReplicaSnapshot {
        ReplicaSnapshot {
            in_flight: self.live.len(),
            pressure: self.shards.pressure(),
            draining: self.draining,
        }
    }

    fn assign(&mut self, req: Request, now: f64) {
        let tokens = req.prompt_len + req.output_len;
        self.shards.register(req.id);
        let reserved = self.shards.append(req.id, tokens).is_ok();
        if !reserved {
            // Keep the books consistent: drop the empty registration and
            // track the request by time alone.
            let _ = self.shards.release(req.id);
        }
        // Price the slot's clock with the *admission-path* prefill
        // estimate: a chunked-prefill replica (default at pp >= 2) only
        // serializes one chunk of the prompt at admission, so charging
        // the whole prefill here overestimated in-flight depth and
        // skewed load-aware routing against pipelined replicas.
        let service_s = self
            .engine
            .admission_prefill_ms(req.prompt_len.max(1), req.priority)
            / 1000.0
            + req.output_len as f64 * self.step_s;
        let mut slot = 0usize;
        for (i, &free_at) in self.slots.iter().enumerate() {
            if free_at < self.slots[slot] {
                slot = i;
            }
        }
        let est_done = self.slots[slot].max(now) + service_s;
        self.slots[slot] = est_done;
        self.live.push((est_done, req.id, reserved));
        self.assigned.push(req);
    }
}

/// Routes a shared arrival stream across N replica engines.
///
/// Build with [`FleetRouter::new`], add replicas with
/// [`FleetRouter::with_replica`] / [`FleetRouter::with_replicas`], opt
/// into shedding and autoscaling, then consume the router with
/// [`FleetRouter::run`].
#[derive(Debug)]
pub struct FleetRouter {
    replicas: Vec<Replica>,
    policy: Box<dyn RoutePolicy>,
    proto: Option<ServingEngine>,
    shed_at: Option<f64>,
    autoscale: Option<Autoscale>,
    next_scale_s: f64,
}

impl FleetRouter {
    /// A router with no replicas yet, using `policy` for placement.
    pub fn new(policy: impl RoutePolicy + 'static) -> Self {
        Self::new_boxed(Box::new(policy))
    }

    /// Boxed-policy variant of [`FleetRouter::new`].
    pub fn new_boxed(policy: Box<dyn RoutePolicy>) -> Self {
        FleetRouter {
            replicas: Vec::new(),
            policy,
            proto: None,
            shed_at: None,
            autoscale: None,
            next_scale_s: 0.0,
        }
    }

    /// Add a replica, refusing configurations the fleet cannot admit.
    ///
    /// A replica configured for `PipelineKind::OneFOneB` must fit `pp`
    /// in-flight micro-batches of activations per stage; the check assumes
    /// [`FLEET_PROMPT_TOKENS`]-token prompts at the engine's batch cap
    /// split across its micro-batches.
    pub fn try_with_replica(mut self, engine: ServingEngine) -> Result<Self, FleetError> {
        let pp = engine.cluster().pp();
        if engine.pipeline_kind() == PipelineKind::OneFOneB && pp > 1 {
            let micro = u64::from(engine.micro_batches().max(1));
            let tokens_per_micro =
                (engine.max_batch() as u64 * FLEET_PROMPT_TOKENS).div_ceil(micro);
            let plan = engine.memory_plan();
            if !plan.admits_pipeline_kind(
                engine.model(),
                PipelineKind::OneFOneB,
                pp,
                tokens_per_micro,
            ) {
                return Err(FleetError::ActivationCeiling {
                    ceiling_bytes: crate::memory::MemoryPlan::activation_ceiling_bytes(
                        engine.model(),
                        PipelineKind::OneFOneB,
                        pp,
                        tokens_per_micro,
                    ),
                    budget_bytes: plan.kv_bytes,
                });
            }
        }
        if self.proto.is_none() {
            self.proto = Some(engine.clone());
        }
        self.replicas.push(Replica::new(engine));
        Ok(self)
    }

    /// Add a replica; panics if the fleet refuses it (see
    /// [`FleetRouter::try_with_replica`]).
    pub fn with_replica(self, engine: ServingEngine) -> Self {
        match self.try_with_replica(engine) {
            Ok(router) => router,
            Err(e) => panic!("fleet refused replica: {e}"),
        }
    }

    /// Add `n` identical replicas cloned from `engine` (the pristine-clone
    /// path: clones share the step memo and KV proto).
    pub fn with_replicas(mut self, engine: &ServingEngine, n: usize) -> Self {
        for _ in 0..n {
            self = self.with_replica(engine.clone());
        }
        self
    }

    /// Enable fleet-level admission control: shed arrivals as
    /// [`RejectReason::BrownoutShed`] when every active replica's peak
    /// rank pressure is `>= threshold`, and pre-reject requests larger
    /// than every replica's KV capacity as [`RejectReason::Oversized`].
    pub fn shed_when_saturated(mut self, threshold: f64) -> Self {
        self.shed_at = Some(threshold);
        self
    }

    /// Enable queue-depth autoscaling between `cfg.min_replicas` and
    /// `cfg.max_replicas`.
    pub fn autoscale(mut self, cfg: Autoscale) -> Self {
        self.autoscale = Some(cfg);
        self
    }

    /// Replicas currently attached (active + draining).
    pub fn replica_count(&self) -> usize {
        self.replicas.len()
    }

    fn autoscale_tick(&mut self, now: f64, events: &mut Vec<AutoscaleEvent>) {
        let Some(cfg) = self.autoscale else { return };
        if now < self.next_scale_s {
            return;
        }
        let active: Vec<usize> = (0..self.replicas.len())
            .filter(|&i| !self.replicas[i].draining)
            .collect();
        if active.is_empty() {
            return;
        }
        let mean = active
            .iter()
            .map(|&i| self.replicas[i].live.len())
            .sum::<usize>() as f64
            / active.len() as f64;
        if mean > cfg.scale_up_in_flight && active.len() < cfg.max_replicas {
            if let Some(proto) = &self.proto {
                self.replicas.push(Replica::new(proto.clone()));
                events.push(AutoscaleEvent {
                    at_s: now,
                    direction: ScaleDirection::Up,
                    active_replicas: active.len() + 1,
                });
                self.next_scale_s = now + cfg.cooldown_s;
            }
        } else if mean < cfg.scale_down_in_flight && active.len() > cfg.min_replicas {
            if let Some(&last) = active.last() {
                self.replicas[last].draining = true;
                events.push(AutoscaleEvent {
                    at_s: now,
                    direction: ScaleDirection::Down,
                    active_replicas: active.len() - 1,
                });
                self.next_scale_s = now + cfg.cooldown_s;
            }
        }
    }

    fn fallback(&self) -> usize {
        let mut best = 0usize;
        let mut best_load = usize::MAX;
        let mut any_active = false;
        for (idx, r) in self.replicas.iter().enumerate() {
            if r.draining {
                continue;
            }
            any_active = true;
            if r.live.len() < best_load {
                best_load = r.live.len();
                best = idx;
            }
        }
        if any_active {
            return best;
        }
        // Everything is draining: least-loaded overall keeps the trace
        // flowing rather than dropping it on the floor.
        let mut best = 0usize;
        let mut best_load = usize::MAX;
        for (idx, r) in self.replicas.iter().enumerate() {
            if r.live.len() < best_load {
                best_load = r.live.len();
                best = idx;
            }
        }
        best
    }

    /// Route the trace, simulate every replica, and merge the reports.
    ///
    /// `arrivals` must be sorted by `arrival_s` (as produced by
    /// `ArrivalMix::generate` and `poisson_arrivals`); the router's clock
    /// never runs backwards regardless.
    pub fn run(mut self, arrivals: Vec<Request>) -> FleetReport {
        let route_policy = self.policy.name().to_string();
        let mut rejections = Vec::new();
        let mut autoscale_events = Vec::new();
        let mut now = 0.0f64;
        for req in arrivals {
            now = now.max(req.arrival_s);
            for r in &mut self.replicas {
                r.settle(now);
            }
            self.autoscale_tick(now, &mut autoscale_events);
            if self.replicas.is_empty() {
                rejections.push(Rejection {
                    id: req.id,
                    reason: RejectReason::CapacityLost,
                });
                continue;
            }
            if let Some(threshold) = self.shed_at {
                let mut any_fits = false;
                let mut any_unsaturated = false;
                for r in self.replicas.iter().filter(|r| !r.draining) {
                    if req.prompt_len + req.output_len <= r.engine.kv_capacity_tokens() {
                        any_fits = true;
                    }
                    if r.peak_pressure() < threshold {
                        any_unsaturated = true;
                    }
                }
                if !any_fits {
                    rejections.push(Rejection {
                        id: req.id,
                        reason: RejectReason::Oversized,
                    });
                    continue;
                }
                if !any_unsaturated {
                    rejections.push(Rejection {
                        id: req.id,
                        reason: RejectReason::BrownoutShed,
                    });
                    continue;
                }
            }
            let snapshots: Vec<ReplicaSnapshot> =
                self.replicas.iter().map(Replica::snapshot).collect();
            let mut idx = self.policy.route(&req, &snapshots);
            if idx >= self.replicas.len() || self.replicas[idx].draining {
                idx = self.fallback();
            }
            self.replicas[idx].assign(req, now);
        }
        let per_replica: Vec<ScheduleReport> = self
            .replicas
            .into_iter()
            .map(|r| r.engine.serve_online(r.assigned))
            .collect();
        FleetReport {
            per_replica,
            rejections,
            autoscale_events,
            route_policy,
        }
    }
}

/// Merged outcome of a fleet run: per-replica reports plus fleet-level
/// rejections and autoscaling history.
#[derive(Debug, Clone, PartialEq)]
pub struct FleetReport {
    /// One [`ScheduleReport`] per replica, in replica-index order
    /// (including replicas spawned by autoscaling).
    pub per_replica: Vec<ScheduleReport>,
    /// Arrivals the *router* rejected (shed / oversized / no capacity);
    /// per-replica rejections live in each [`ScheduleReport`].
    pub rejections: Vec<Rejection>,
    /// Scaling actions in trace order.
    pub autoscale_events: Vec<AutoscaleEvent>,
    /// Name of the [`RoutePolicy`] that produced this report.
    pub route_policy: String,
}

impl FleetReport {
    /// All completions across the fleet, replica-major.
    pub fn completions(&self) -> impl Iterator<Item = &Completion> + '_ {
        self.per_replica.iter().flat_map(|r| r.completions.iter())
    }

    /// Number of requests that completed somewhere in the fleet.
    pub fn completed(&self) -> usize {
        self.per_replica.iter().map(|r| r.completions.len()).sum()
    }

    /// Fleet-wide prefix-cache counters: every replica's
    /// [`ScheduleReport::prefix`] stats merged (all-zero when prefix
    /// caching is off everywhere).
    pub fn prefix(&self) -> PrefixStats {
        let mut total = PrefixStats::default();
        for r in &self.per_replica {
            total.merge(&r.prefix);
        }
        total
    }

    /// Total rejections: router-level plus every replica's own.
    pub fn rejected(&self) -> usize {
        self.rejections.len()
            + self
                .per_replica
                .iter()
                .map(|r| r.rejections.len())
                .sum::<usize>()
    }

    /// Wall-clock duration of the slowest replica.
    pub fn duration_s(&self) -> f64 {
        self.per_replica
            .iter()
            .fold(0.0, |a, r| a.max(r.duration_s))
    }

    /// Fleet output-token throughput: tokens generated anywhere divided by
    /// the slowest replica's duration.
    pub fn throughput_tps(&self) -> f64 {
        let dur = self.duration_s();
        if dur <= 0.0 {
            return 0.0;
        }
        let tokens: u64 = self.completions().map(|c| c.output_len).sum();
        tokens as f64 / dur
    }

    /// Global TTFT percentile over the merged completion samples.
    pub fn ttft_percentile(&self, q: f64) -> Option<f64> {
        metrics::percentile(self.completions().map(|c| c.ttft_s), q)
    }

    /// Global end-to-end latency percentile over the merged samples.
    pub fn latency_percentile(&self, q: f64) -> Option<f64> {
        metrics::percentile(self.completions().map(|c| c.latency_s), q)
    }

    /// Global TTFT percentile restricted to one traffic class.
    pub fn class_ttft_percentile(&self, class: PriorityClass, q: f64) -> Option<f64> {
        metrics::percentile(
            self.completions()
                .filter(|c| c.priority == class)
                .map(|c| c.ttft_s),
            q,
        )
    }

    /// Fleet-wide SLO attainment over every judged completion.
    pub fn slo_attainment(&self) -> Option<f64> {
        metrics::slo_attainment(self.completions())
    }

    /// Max-over-mean per-replica output-token load; `1.0` is perfectly
    /// balanced, larger means hot spots.
    pub fn imbalance_ratio(&self) -> f64 {
        let loads: Vec<f64> = self
            .per_replica
            .iter()
            .map(|r| r.completions.iter().map(|c| c.output_len).sum::<u64>() as f64)
            .collect();
        if loads.is_empty() {
            return 1.0;
        }
        let mean = loads.iter().sum::<f64>() / loads.len() as f64;
        if mean <= 0.0 {
            return 1.0;
        }
        loads.iter().fold(0.0, |a: f64, &b| a.max(b)) / mean
    }

    /// Duration-weighted mean of per-replica availability (fraction of
    /// each replica's run not spent in fault brownout).
    pub fn availability(&self) -> f64 {
        let total: f64 = self.per_replica.iter().map(|r| r.duration_s).sum();
        if total <= 0.0 {
            return 1.0;
        }
        self.per_replica
            .iter()
            .map(|r| r.availability() * r.duration_s)
            .sum::<f64>()
            / total
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use crate::cluster::GpuCluster;
    use crate::engine::{EngineKind, ServingEngine};
    use crate::policy::Priority;
    use crate::workload::ArrivalMix;
    use zipserv_gpu_sim::device::Gpu;
    use zipserv_kernels::shapes::LlmModel;

    fn snap(pressure: f64, in_flight: usize, draining: bool) -> ReplicaSnapshot {
        ReplicaSnapshot {
            in_flight,
            pressure: vec![pressure],
            draining,
        }
    }

    fn test_engine() -> ServingEngine {
        ServingEngine::builder()
            .kind(EngineKind::ZipServ)
            .model(LlmModel::Llama31_8b)
            .cluster(GpuCluster::single(Gpu::Rtx4090))
            .policy(Priority::default())
            .max_batch(16)
            .build()
    }

    #[test]
    fn round_robin_cycles_and_skips_draining() {
        let mut rr = RoundRobin::default();
        let req = Request::new(0, 0.0, 8, 8);
        let snaps = vec![snap(0.0, 0, false), snap(0.0, 0, true), snap(0.0, 0, false)];
        assert_eq!(rr.route(&req, &snaps), 0);
        assert_eq!(rr.route(&req, &snaps), 2); // skips draining replica 1
        assert_eq!(rr.route(&req, &snaps), 0);
    }

    #[test]
    fn least_kv_pressure_picks_emptiest_rank() {
        let mut lp = LeastKvPressure;
        let req = Request::new(0, 0.0, 8, 8);
        let snaps = vec![
            snap(0.7, 1, false),
            snap(0.2, 9, false),
            snap(0.4, 0, false),
        ];
        assert_eq!(lp.route(&req, &snaps), 1);
    }

    #[test]
    fn session_affinity_is_sticky_per_tenant() {
        let mut sa = SessionAffinity { tenants: 4 };
        let snaps = vec![snap(0.0, 0, false); 3];
        // Same tenant (id ≡ 1 mod 4) always lands on the same replica.
        let first = sa.route(&Request::new(1, 0.0, 8, 8), &snaps);
        for id in [5u64, 9, 13, 101] {
            assert_eq!(sa.route(&Request::new(id, 0.0, 8, 8), &snaps), first);
        }
    }

    #[test]
    fn session_affinity_keys_on_the_real_tenant_id() {
        let mut sa = SessionAffinity { tenants: 4 };
        let snaps = vec![snap(0.0, 0, false); 3];
        // Tagged requests stick by tenant regardless of their ids...
        let first = sa.route(&Request::new(0, 0.0, 8, 8).with_tenant(42), &snaps);
        for id in [3u64, 7, 20, 55] {
            assert_eq!(
                sa.route(&Request::new(id, 0.0, 8, 8).with_tenant(42), &snaps),
                first,
                "tenant 42 moved replicas at id {id}"
            );
        }
        // ...and the tag overrides the modulo fold: an id that folds to
        // the same bucket as a tagged sibling can still route elsewhere.
        let tenants: Vec<usize> = (0..16)
            .map(|t| sa.route(&Request::new(0, 0.0, 8, 8).with_tenant(t), &snaps))
            .collect();
        assert!(
            tenants.iter().any(|&r| r != tenants[0]),
            "all 16 tenants landed on one replica"
        );
    }

    #[test]
    fn power_of_two_prefers_lower_pressure() {
        let mut p2c = PowerOfTwoChoices::new(7);
        let req = Request::new(0, 0.0, 8, 8);
        // One hot replica among cold ones: p2c must never pick the hot one
        // when its sample includes a cold alternative (it always does with
        // two distinct candidates out of two cold + one hot... sample may
        // be two colds; either way the hot replica is only picked if both
        // candidates are hot, which cannot happen here).
        let snaps = vec![
            snap(0.9, 50, false),
            snap(0.1, 1, false),
            snap(0.1, 1, false),
        ];
        for _ in 0..64 {
            let idx = p2c.route(&req, &snaps);
            assert_ne!(idx, 0, "picked the saturated replica");
        }
    }

    #[test]
    fn activation_ceiling_refuses_one_f_one_b_replica() {
        let engine = ServingEngine::builder()
            .kind(EngineKind::ZipServ)
            .model(LlmModel::Llama31_8b)
            .cluster(GpuCluster::pipeline_parallel(Gpu::Rtx4090, 1, 8))
            .policy(Priority::default())
            .micro_batches(1)
            .pipeline_kind(PipelineKind::OneFOneB)
            .max_batch(256)
            .build();
        let err = FleetRouter::new(RoundRobin::default())
            .try_with_replica(engine)
            .map(|_| ())
            .unwrap_err();
        assert!(matches!(err, FleetError::ActivationCeiling { .. }));

        // The same deployment under GPipe holds one micro-batch in flight
        // and is admitted.
        let gpipe = ServingEngine::builder()
            .kind(EngineKind::ZipServ)
            .model(LlmModel::Llama31_8b)
            .cluster(GpuCluster::pipeline_parallel(Gpu::Rtx4090, 1, 8))
            .policy(Priority::default())
            .micro_batches(1)
            .max_batch(256)
            .build();
        let fleet = FleetRouter::new(RoundRobin::default()).with_replica(gpipe);
        assert_eq!(fleet.replica_count(), 1);
    }

    #[test]
    fn shed_rejects_only_when_enabled_and_saturated() {
        let engine = test_engine();
        let arrivals = ArrivalMix::paper_mix().generate(30.0, 60, 11);

        // Threshold 0.0: everything after the first settle window sheds.
        let shed = FleetRouter::new(RoundRobin::default())
            .with_replicas(&engine, 2)
            .shed_when_saturated(0.0)
            .run(arrivals.clone());
        assert!(
            shed.rejections
                .iter()
                .all(|r| r.reason == RejectReason::BrownoutShed),
            "all router rejections typed as brownout shed"
        );
        assert!(!shed.rejections.is_empty());

        // No admission control: the router itself never rejects.
        let open = FleetRouter::new(RoundRobin::default())
            .with_replicas(&engine, 2)
            .run(arrivals);
        assert!(open.rejections.is_empty());
    }

    #[test]
    fn oversized_requests_rejected_at_the_router() {
        let engine = test_engine();
        let cap = engine.kv_capacity_tokens();
        let arrivals = vec![Request::new(0, 0.0, cap + 1, 1)];
        let report = FleetRouter::new(RoundRobin::default())
            .with_replicas(&engine, 2)
            .shed_when_saturated(0.99)
            .run(arrivals);
        assert_eq!(report.rejections.len(), 1);
        assert_eq!(report.rejections[0].reason, RejectReason::Oversized);
        assert_eq!(report.completed(), 0);
    }

    #[test]
    fn fleet_report_merges_percentiles_and_balance() {
        let engine = test_engine();
        let arrivals = ArrivalMix::paper_mix().generate(24.0, 96, 5);
        let report = FleetRouter::new(LeastKvPressure)
            .with_replicas(&engine, 4)
            .run(arrivals);
        assert_eq!(report.completed(), 96);
        assert_eq!(report.per_replica.len(), 4);
        assert!(report.throughput_tps() > 0.0);
        let p50 = report.ttft_percentile(0.50).unwrap();
        let p99 = report.ttft_percentile(0.99).unwrap();
        assert!(p50 <= p99);
        assert!(report.latency_percentile(0.99).unwrap() >= p99);
        assert!(report.imbalance_ratio() >= 1.0);
        assert!((report.availability() - 1.0).abs() < 1e-12);
        assert_eq!(report.route_policy, "least-kv-pressure");
    }
}

//! The LLM serving substrate: everything §6.5's end-to-end comparison needs.
//!
//! * [`cluster`] — single- and multi-GPU deployment descriptions: `tp × pp`
//!   grids with per-link bandwidths and per-stage layer assignment;
//! * [`kvcache`] — a PagedAttention-style block allocator (real data
//!   structure: pages, block tables, alloc/free/fork), plus the per-rank
//!   [`kvcache::KvShards`] mirror where one exhausted rank stalls the
//!   deployment;
//! * [`attention`] — the decode/prefill attention cost model;
//! * [`parallel`] — tensor-parallel sharding, ring all-reduce, and
//!   GPipe-style pipeline micro-batching with bubble accounting;
//! * [`memory`] — the per-rank device memory plan (weights vs KV cache vs
//!   runtime), reproducing Figure 17's breakdown per pipeline stage;
//! * [`engine`] — the four serving engines of Figure 16: ZipServ, a
//!   vLLM-like baseline, a Transformers-like eager baseline, and a
//!   DFloat11-like decoupled-decompression engine;
//! * [`scheduler`] — online continuous batching over Poisson arrivals with
//!   KV-capacity admission control and latency percentiles;
//! * [`fleet`] — multi-replica serving: a [`fleet::FleetRouter`] drives a
//!   shared arrival stream across N replica engines with pluggable
//!   routing policies (round-robin, least-KV-pressure, session affinity,
//!   power-of-two-choices), fleet-level admission control, and
//!   queue-depth autoscaling;
//! * [`fault`] — deterministic fault injection ([`fault::FaultPlan`]) and
//!   bounded retry-with-backoff recovery: rank failure/repair, link
//!   degradation, KV stalls, and corrupted-frame events consumed mid-run;
//! * [`policy`] — pluggable [`SchedulePolicy`] admission/preemption
//!   policies: FCFS, priority tiers with aging, SLO-deadline EDF, and
//!   preemptive shortest-job-first;
//! * [`transformer`] — a functional miniature transformer that runs with
//!   dense or TCA-TBE-compressed weights and proves bit-exact generation;
//! * [`workload`] — request/batch generators;
//! * [`metrics`] — latency/throughput reports.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod attention;
pub mod cluster;
pub mod engine;
pub mod fault;
pub mod fleet;
pub mod kvcache;
pub mod memory;
pub mod metrics;
pub mod parallel;
pub mod policy;
pub mod scheduler;
pub mod transformer;
pub mod workload;

pub use cluster::GpuCluster;
pub use engine::{EngineBuilder, EngineKind, ServingEngine};
pub use fault::{FaultEvent, FaultKind, FaultPlan, RejectReason, Rejection, RetryPolicy};
pub use fleet::{
    Autoscale, AutoscaleEvent, FleetReport, FleetRouter, LeastKvPressure, PowerOfTwoChoices,
    RoundRobin, RoutePolicy, SessionAffinity,
};
pub use kvcache::{KvError, KvShards, PagedKvCache, PrefixRegistry, PrefixStats, PrefixVictim};
pub use metrics::RobustnessStats;
pub use parallel::{PipelineKind, PipelineSchedule};
pub use policy::{
    Fcfs, PreemptionMode, PreemptiveSjf, Priority, PriorityClass, SchedulePolicy, Slo, SloEdf,
};
pub use scheduler::{Request, ScheduleReport};
pub use workload::{ArrivalMix, Trace, TraceError, TrafficClass, Workload};

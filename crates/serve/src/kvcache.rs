//! A PagedAttention-style KV-cache block allocator.
//!
//! The KV cache is carved into fixed-size pages of `PAGE_TOKENS` token
//! slots; each sequence owns a block table of page indices. Freed weight
//! memory becomes extra pages — the mechanism by which ZipServ's 3.78 GB of
//! weight savings turns into a 1.70× larger KV cache (Figure 17) and the
//! throughput gains of §6.5.

use std::collections::HashMap;

/// Tokens per KV page (vLLM's default block size).
pub const PAGE_TOKENS: u64 = 16;

/// Errors from the allocator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KvError {
    /// No free pages remain.
    OutOfPages,
    /// The sequence id is not registered.
    UnknownSequence,
    /// The sequence id is already registered (fork targets must be fresh).
    SequenceExists,
}

impl core::fmt::Display for KvError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            KvError::OutOfPages => write!(f, "KV cache out of pages"),
            KvError::UnknownSequence => write!(f, "unknown sequence id"),
            KvError::SequenceExists => write!(f, "sequence id already registered"),
        }
    }
}

impl std::error::Error for KvError {}

/// The paged KV-cache allocator.
#[derive(Debug, Clone)]
pub struct PagedKvCache {
    total_pages: u64,
    /// Recycled pages, popped LIFO. Pages at or above `next_fresh` have
    /// never been touched and are not materialized here — a pristine
    /// allocator over millions of tokens is O(1) to build and clone, which
    /// is what lets the streaming schedulers take a fresh [`KvShards`] per
    /// run. Allocation order is identical to an eager free list: recycled
    /// pages first (LIFO), then fresh ids counting up from zero.
    free_list: Vec<u64>,
    /// Low-water mark of never-allocated pages: every id `< next_fresh`
    /// has been handed out at least once.
    next_fresh: u64,
    /// Per-page reference counts (copy-on-write forks share pages),
    /// materialized lazily alongside `next_fresh`.
    ref_counts: Vec<u32>,
    /// Sequence id → (block table, tokens stored).
    tables: HashMap<u64, SeqState>,
}

#[derive(Debug, Clone)]
struct SeqState {
    pages: Vec<u64>,
    tokens: u64,
}

impl PagedKvCache {
    /// An allocator over a KV region of `capacity_bytes` for a model whose
    /// cache costs `bytes_per_token`.
    pub fn new(capacity_bytes: u64, bytes_per_token: u64) -> Self {
        let total_tokens = capacity_bytes / bytes_per_token.max(1);
        let total_pages = total_tokens / PAGE_TOKENS;
        PagedKvCache {
            total_pages,
            free_list: Vec::new(),
            next_fresh: 0,
            ref_counts: Vec::new(),
            tables: HashMap::new(),
        }
    }

    /// Total page count.
    pub fn total_pages(&self) -> u64 {
        self.total_pages
    }

    /// Currently free pages (recycled plus never-touched).
    pub fn free_pages(&self) -> u64 {
        self.free_list.len() as u64 + (self.total_pages - self.next_fresh)
    }

    /// Total token capacity.
    pub fn capacity_tokens(&self) -> u64 {
        self.total_pages * PAGE_TOKENS
    }

    /// Registers a new sequence with no tokens.
    pub fn register(&mut self, seq: u64) {
        self.tables.entry(seq).or_insert(SeqState {
            pages: Vec::new(),
            tokens: 0,
        });
    }

    /// Appends `tokens` token slots to a sequence, allocating pages as
    /// needed.
    ///
    /// # Errors
    ///
    /// [`KvError::UnknownSequence`] if unregistered;
    /// [`KvError::OutOfPages`] if the cache is exhausted (nothing is
    /// allocated in that case).
    pub fn append(&mut self, seq: u64, tokens: u64) -> Result<(), KvError> {
        let need_pages = self.pages_needed(seq, tokens)?;
        if need_pages > self.free_pages() {
            return Err(KvError::OutOfPages);
        }
        let mut new_pages = Vec::with_capacity(need_pages as usize);
        for _ in 0..need_pages {
            let page = self.free_list.pop().unwrap_or_else(|| {
                let p = self.next_fresh;
                self.next_fresh += 1;
                self.ref_counts.push(0);
                p
            });
            self.ref_counts[page as usize] = 1;
            new_pages.push(page);
        }
        let state = self.tables.get_mut(&seq).expect("checked above");
        state.pages.extend(new_pages);
        state.tokens += tokens;
        Ok(())
    }

    /// Copy-on-write fork: the child shares all of the parent's pages
    /// (beam search / parallel sampling).
    ///
    /// # Errors
    ///
    /// [`KvError::UnknownSequence`] if the parent is unregistered;
    /// [`KvError::SequenceExists`] if the child id is already taken
    /// (silently overwriting it would leak the pages it holds).
    pub fn fork(&mut self, parent: u64, child: u64) -> Result<(), KvError> {
        if self.tables.contains_key(&child) {
            return Err(KvError::SequenceExists);
        }
        let state = self
            .tables
            .get(&parent)
            .ok_or(KvError::UnknownSequence)?
            .clone();
        for &p in &state.pages {
            self.ref_counts[p as usize] += 1;
        }
        self.tables.insert(child, state);
        Ok(())
    }

    /// Releases a sequence, returning its exclusively-owned pages to the
    /// free list.
    ///
    /// # Errors
    ///
    /// [`KvError::UnknownSequence`] if unregistered.
    pub fn release(&mut self, seq: u64) -> Result<(), KvError> {
        let state = self.tables.remove(&seq).ok_or(KvError::UnknownSequence)?;
        for page in state.pages {
            let rc = &mut self.ref_counts[page as usize];
            *rc -= 1;
            if *rc == 0 {
                self.free_list.push(page);
            }
        }
        Ok(())
    }

    /// Tokens currently stored for a sequence.
    pub fn tokens(&self, seq: u64) -> Option<u64> {
        self.tables.get(&seq).map(|s| s.tokens)
    }

    /// The block table (page indices) of a sequence.
    pub fn block_table(&self, seq: u64) -> Option<&[u64]> {
        self.tables.get(&seq).map(|s| s.pages.as_slice())
    }

    /// Largest batch of sequences of `seq_len` tokens that fits.
    pub fn max_batch(&self, seq_len: u64) -> u64 {
        let pages_per_seq = seq_len.div_ceil(PAGE_TOKENS).max(1);
        self.total_pages / pages_per_seq
    }

    /// Free pages needed to append `tokens` slots to `seq` without
    /// mutating anything (the check half of [`PagedKvCache::append`]).
    ///
    /// # Errors
    ///
    /// [`KvError::UnknownSequence`] if unregistered.
    pub fn pages_needed(&self, seq: u64, tokens: u64) -> Result<u64, KvError> {
        let state = self.tables.get(&seq).ok_or(KvError::UnknownSequence)?;
        let have_slots = state.pages.len() as u64 * PAGE_TOKENS - state.tokens;
        Ok(tokens.saturating_sub(have_slots).div_ceil(PAGE_TOKENS))
    }

    /// Drops every sequence and returns all pages to the free list — the
    /// state of a rank whose device memory was lost (power-cycle, ECC
    /// fault). Capacity is unchanged; contents are gone.
    pub fn reset(&mut self) {
        self.free_list.clear();
        self.next_fresh = 0;
        self.ref_counts.clear();
        self.tables.clear();
    }
}

/// The KV cache of a whole tensor/pipeline-parallel deployment: one
/// [`PagedKvCache`] per rank.
///
/// Every rank stores its slice of every sequence's KV (its share of the
/// heads within a stage, its stage's layers across stages), so every
/// allocator operation is mirrored to all ranks — and an
/// [`OutOfPages`](KvError::OutOfPages) on *any* rank fails the whole
/// operation, exactly as one exhausted GPU stalls admission on real
/// hardware. Mirrored appends are atomic: either every rank allocates or
/// none does.
///
/// Ranks need not be symmetric: when `kv_heads % tp != 0` or
/// `layers % pp != 0`, some ranks carry more bytes per token and run out
/// of pages first; [`KvShards::capacity_tokens`] is therefore the *minimum*
/// over ranks.
#[derive(Debug, Clone)]
pub struct KvShards {
    shards: Vec<PagedKvCache>,
    /// `true` for ranks whose device memory is lost (failed GPU). Mirrored
    /// operations skip invalidated ranks so an in-flight release/fork
    /// cannot leak pages on the survivors.
    invalidated: Vec<bool>,
}

impl KvShards {
    /// Wraps explicit per-rank allocators.
    ///
    /// # Panics
    ///
    /// Panics if `shards` is empty.
    pub fn new(shards: Vec<PagedKvCache>) -> Self {
        assert!(!shards.is_empty(), "deployment needs at least one rank");
        let invalidated = vec![false; shards.len()];
        KvShards {
            shards,
            invalidated,
        }
    }

    /// Number of ranks.
    pub fn ranks(&self) -> usize {
        self.shards.len()
    }

    /// Number of ranks still holding valid KV (not invalidated).
    pub fn alive_ranks(&self) -> usize {
        self.invalidated.iter().filter(|&&x| !x).count()
    }

    /// Whether rank `idx` has been invalidated by a fault.
    pub fn is_invalidated(&self, idx: usize) -> bool {
        self.invalidated.get(idx).copied().unwrap_or(false)
    }

    /// Read-only view of one rank's allocator.
    pub fn rank(&self, idx: usize) -> &PagedKvCache {
        &self.shards[idx]
    }

    /// Marks a rank's KV shard as lost ([`FaultKind::RankFail`]
    /// (crate::fault::FaultKind)): its allocator is reset (pages freed,
    /// sequences dropped) and every subsequent mirrored operation skips it
    /// until [`KvShards::repair_rank`]. Returns `false` if the rank index
    /// is out of range or already invalidated.
    pub fn invalidate_rank(&mut self, idx: usize) -> bool {
        if idx >= self.shards.len() || self.invalidated[idx] {
            return false;
        }
        self.shards[idx].reset();
        self.invalidated[idx] = true;
        true
    }

    /// Brings an invalidated rank back: its allocator rejoins *cold*
    /// (reset, then re-registered with zero tokens for every sequence live
    /// on the surviving ranks — their KV must be recomputed by prefill).
    /// Returns `false` if the rank is in range but not invalidated.
    pub fn repair_rank(&mut self, idx: usize) -> bool {
        if idx >= self.shards.len() || !self.invalidated[idx] {
            return false;
        }
        let live: Vec<u64> = match self.first_alive() {
            Some(r) => self.shards[r].tables.keys().copied().collect(),
            None => Vec::new(),
        };
        self.shards[idx].reset();
        for seq in live {
            self.shards[idx].register(seq);
        }
        self.invalidated[idx] = false;
        true
    }

    /// Index of the first non-invalidated rank, if any.
    fn first_alive(&self) -> Option<usize> {
        self.invalidated.iter().position(|&x| !x)
    }

    /// Deployment-wide token capacity: the minimum across *alive* ranks
    /// (the first rank to exhaust its pages stalls every other rank).
    /// Zero when every rank is invalidated — nothing can be admitted.
    pub fn capacity_tokens(&self) -> u64 {
        self.shards
            .iter()
            .zip(&self.invalidated)
            .filter(|(_, &dead)| !dead)
            .map(|(s, _)| s.capacity_tokens())
            .min()
            .unwrap_or(0)
    }

    /// Registers a sequence on every alive rank.
    pub fn register(&mut self, seq: u64) {
        for (s, &dead) in self.shards.iter_mut().zip(&self.invalidated) {
            if !dead {
                s.register(seq);
            }
        }
    }

    /// Appends `tokens` slots to `seq` on every alive rank, atomically: if
    /// any alive rank would run out of pages, *no* rank allocates.
    ///
    /// # Errors
    ///
    /// [`KvError::UnknownSequence`] if unregistered on any alive rank (or
    /// every rank is invalidated); [`KvError::OutOfPages`] if any alive
    /// rank lacks free pages.
    pub fn append(&mut self, seq: u64, tokens: u64) -> Result<(), KvError> {
        if self.first_alive().is_none() {
            return Err(KvError::UnknownSequence);
        }
        for (s, &dead) in self.shards.iter().zip(&self.invalidated) {
            if !dead && s.pages_needed(seq, tokens)? > s.free_pages() {
                return Err(KvError::OutOfPages);
            }
        }
        for (s, &dead) in self.shards.iter_mut().zip(&self.invalidated) {
            if !dead {
                s.append(seq, tokens)
                    .expect("checked every alive rank above");
            }
        }
        Ok(())
    }

    /// Copy-on-write fork on every alive rank, atomically: every alive
    /// rank must know the parent and have the child id free before any
    /// rank mutates. Invalidated ranks are skipped — a rank dying
    /// mid-flight must not wedge forks on the survivors.
    ///
    /// # Errors
    ///
    /// [`KvError::UnknownSequence`] if the parent is unregistered on any
    /// alive rank (or every rank is invalidated);
    /// [`KvError::SequenceExists`] if the child id is taken on any.
    pub fn fork(&mut self, parent: u64, child: u64) -> Result<(), KvError> {
        if self.first_alive().is_none() {
            return Err(KvError::UnknownSequence);
        }
        for (s, &dead) in self.shards.iter().zip(&self.invalidated) {
            if dead {
                continue;
            }
            if s.tables.contains_key(&child) {
                return Err(KvError::SequenceExists);
            }
            if !s.tables.contains_key(&parent) {
                return Err(KvError::UnknownSequence);
            }
        }
        for (s, &dead) in self.shards.iter_mut().zip(&self.invalidated) {
            if !dead {
                s.fork(parent, child)
                    .expect("checked every alive rank above");
            }
        }
        Ok(())
    }

    /// Releases a sequence on every alive rank, atomically: every alive
    /// rank must know the sequence before any rank frees it. Invalidated
    /// ranks are skipped — their allocators were reset when the rank died,
    /// so demanding the sequence there would fail every release issued
    /// after a mid-flight failure and leak the survivors' pages forever
    /// (the refcount-leak regression pinned by the chaos suite).
    ///
    /// # Errors
    ///
    /// [`KvError::UnknownSequence`] if unregistered on any alive rank (or
    /// every rank is invalidated).
    pub fn release(&mut self, seq: u64) -> Result<(), KvError> {
        if self.first_alive().is_none() {
            return Err(KvError::UnknownSequence);
        }
        if self
            .shards
            .iter()
            .zip(&self.invalidated)
            .any(|(s, &dead)| !dead && !s.tables.contains_key(&seq))
        {
            return Err(KvError::UnknownSequence);
        }
        for (s, &dead) in self.shards.iter_mut().zip(&self.invalidated) {
            if !dead {
                s.release(seq).expect("checked every alive rank above");
            }
        }
        Ok(())
    }

    /// Tokens stored for a sequence, read from the first alive rank
    /// (identical on every rank that has not rejoined cold after a
    /// repair). `None` when every rank is invalidated.
    pub fn tokens(&self, seq: u64) -> Option<u64> {
        self.shards[self.first_alive()?].tokens(seq)
    }

    /// Per-rank live occupancy in `[0, 1]`: `1 − free_pages / total_pages`
    /// for alive ranks, `1.0` for invalidated (or zero-capacity) ranks —
    /// a dead rank admits nothing, so a router reading pressure steers
    /// away from it. O(ranks): both page counters are O(1) reads off the
    /// lazy free-list, which is what makes exact least-KV-pressure
    /// routing affordable per arrival.
    pub fn pressure(&self) -> Vec<f64> {
        self.shards
            .iter()
            .zip(&self.invalidated)
            .map(|(s, &dead)| {
                if dead || s.total_pages() == 0 {
                    1.0
                } else {
                    1.0 - s.free_pages() as f64 / s.total_pages() as f64
                }
            })
            .collect()
    }
}

/// Which cached entry a [`PrefixRegistry`] evicts when the cache is full —
/// the eviction axis a [`SchedulePolicy`](crate::policy::SchedulePolicy)
/// answers through `prefix_victim`, the first scheduling decision that
/// reaches into page reclamation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PrefixVictim {
    /// Evict the least-recently-used *cold* prefix — one no live request
    /// currently forks from. If every cached prefix is pinned by a live
    /// fork, the miss gives up on caching rather than disturb active work.
    #[default]
    ColdPrefix,
    /// Evict the least-recently-used prefix even if live requests fork
    /// from it: copy-on-write refcounts keep the forked children's pages
    /// alive, only the shared cache copy is dropped, so future arrivals
    /// re-prefill while in-flight ones are untouched.
    ActiveSequence,
}

/// Prefix-cache counters carried on a
/// [`ScheduleReport`](crate::scheduler::ScheduleReport).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PrefixStats {
    /// Admissions that consulted the registry with a nonzero prefix.
    pub lookups: u64,
    /// Lookups that forked a cached prefix instead of re-prefilling it.
    pub hits: u64,
    /// Lookups that found nothing cached (the prefix is inserted so the
    /// *next* request hits).
    pub misses: u64,
    /// Cached prefixes evicted to make room for new ones.
    pub evictions: u64,
    /// Prompt tokens whose prefill was skipped by forking a cached prefix
    /// — directly proportional to prefill FLOPs saved.
    pub tokens_saved: u64,
    /// KV pages shared copy-on-write between cached prefixes and forked
    /// requests.
    pub pages_shared: u64,
}

impl PrefixStats {
    /// Fraction of lookups that hit; `0.0` when nothing was looked up.
    pub fn hit_rate(&self) -> f64 {
        if self.lookups == 0 {
            0.0
        } else {
            self.hits as f64 / self.lookups as f64
        }
    }

    /// Field-wise accumulate (fleet-level aggregation across replicas).
    pub fn merge(&mut self, other: &PrefixStats) {
        self.lookups += other.lookups;
        self.hits += other.hits;
        self.misses += other.misses;
        self.evictions += other.evictions;
        self.tokens_saved += other.tokens_saved;
        self.pages_shared += other.pages_shared;
    }
}

/// A cached prefix: the registry-owned sequence holding its KV, how many
/// tokens of it are materialized, how many live requests fork from it,
/// and when it was last touched (LRU clock).
#[derive(Debug, Clone)]
struct PrefixEntry {
    seq: u64,
    tokens: u64,
    refs: u32,
    last_use: u64,
}

/// A live request's fork of a cached prefix, so release can drop the
/// child sequence and un-pin the entry.
#[derive(Debug, Clone, Copy)]
struct ChildFork {
    hash: u64,
    seq: u64,
    saved: u64,
}

/// Interns prefix hashes → cached sequences on a private [`KvShards`]
/// overlay, forking on hit so repeated prompts skip their shared-prefix
/// prefill.
///
/// The registry owns its *own* shards clone (the engine's pristine
/// proto): cached prefixes and their copy-on-write forks live in this
/// overlay, modeling the KV the cache holds resident, while the
/// scheduler's request-side reservation books are untouched — which is
/// what keeps prefix-caching-off runs bit-identical to the legacy
/// scheduler. Sequence ids are namespaced away from request ids: cache
/// copies count up from `1 << 63`, forked children are `(1 << 62) | req`.
#[derive(Debug)]
pub struct PrefixRegistry {
    shards: KvShards,
    victim: PrefixVictim,
    entries: HashMap<u64, PrefixEntry>,
    children: HashMap<u64, ChildFork>,
    clock: u64,
    next_seq: u64,
    stats: PrefixStats,
}

impl PrefixRegistry {
    /// A registry over a pristine shards clone, evicting per `victim`.
    pub fn new(shards: KvShards, victim: PrefixVictim) -> Self {
        PrefixRegistry {
            shards,
            victim,
            entries: HashMap::new(),
            children: HashMap::new(),
            clock: 0,
            next_seq: 1 << 63,
            stats: PrefixStats::default(),
        }
    }

    /// Consult the cache for request `req` declaring `prefix_len` shared
    /// tokens under `hash` out of a `prompt_len`-token prompt. Returns the
    /// prompt tokens whose prefill is skipped (0 on miss or for
    /// prefix-less requests).
    ///
    /// On a hit the cached sequence is forked copy-on-write for the
    /// request (released again via [`PrefixRegistry::release`]); when the
    /// request's prefix extends past the cached tokens the entry grows
    /// best-effort so a conversation's context accumulates turn over
    /// turn. On a miss the prefix is materialized (evicting per the
    /// victim policy if needed) so future requests hit; the missing
    /// request itself prefills in full through the normal path.
    pub fn admit(&mut self, req: u64, hash: u64, prefix_len: u64, prompt_len: u64) -> u64 {
        if prefix_len == 0 {
            return 0;
        }
        let prefix_len = prefix_len.min(prompt_len);
        self.clock += 1;
        self.stats.lookups += 1;
        // Re-admission after preemption or retry: the fork already exists;
        // count the hit again (the tokens are still skipped) but do not
        // re-fork or re-count shared pages.
        if let Some(child) = self.children.get(&req).copied() {
            if child.hash == hash {
                if let Some(e) = self.entries.get_mut(&hash) {
                    e.last_use = self.clock;
                }
                self.stats.hits += 1;
                self.stats.tokens_saved += child.saved;
                return child.saved;
            }
            self.release(req);
            self.clock += 1;
        }
        if let Some(e) = self.entries.get_mut(&hash) {
            let saved = e.tokens.min(prefix_len);
            let child_seq = (1 << 62) | req;
            if self.shards.fork(e.seq, child_seq).is_ok() {
                e.refs += 1;
                e.last_use = self.clock;
                let cached = e.tokens;
                let cache_seq = e.seq;
                self.stats.hits += 1;
                self.stats.tokens_saved += saved;
                self.stats.pages_shared += saved.div_ceil(PAGE_TOKENS);
                self.children.insert(
                    req,
                    ChildFork {
                        hash,
                        seq: child_seq,
                        saved,
                    },
                );
                // A follow-up carrying more context than the cache holds
                // extends the entry so the *next* turn hits in full.
                if prefix_len > cached && self.shards.append(cache_seq, prefix_len - cached).is_ok()
                {
                    if let Some(e) = self.entries.get_mut(&hash) {
                        e.tokens = prefix_len;
                    }
                }
                return saved;
            }
            self.stats.misses += 1;
            return 0;
        }
        // Miss: materialize the prefix for future requests.
        self.stats.misses += 1;
        let seq = self.next_seq;
        self.next_seq += 1;
        self.shards.register(seq);
        while self.shards.append(seq, prefix_len).is_err() {
            if !self.evict_one(hash) {
                let _ = self.shards.release(seq);
                return 0;
            }
        }
        self.entries.insert(
            hash,
            PrefixEntry {
                seq,
                tokens: prefix_len,
                refs: 0,
                last_use: self.clock,
            },
        );
        0
    }

    /// Drop `req`'s fork (if any) and un-pin its cached entry. Idempotent:
    /// calling it for a request that never hit is a no-op, so the
    /// scheduler may release at every terminal event (completion,
    /// rejection, retries exhausted).
    pub fn release(&mut self, req: u64) {
        if let Some(child) = self.children.remove(&req) {
            let _ = self.shards.release(child.seq);
            if let Some(e) = self.entries.get_mut(&child.hash) {
                e.refs = e.refs.saturating_sub(1);
            }
        }
    }

    /// Evict one entry per the victim policy, skipping `protect`.
    /// Returns `false` when nothing is evictable.
    fn evict_one(&mut self, protect: u64) -> bool {
        let candidate = self
            .entries
            .iter()
            .filter(|(&h, e)| {
                h != protect && (self.victim == PrefixVictim::ActiveSequence || e.refs == 0)
            })
            .min_by_key(|(_, e)| e.last_use)
            .map(|(&h, _)| h);
        let Some(hash) = candidate else {
            return false;
        };
        if let Some(e) = self.entries.remove(&hash) {
            let _ = self.shards.release(e.seq);
            self.stats.evictions += 1;
        }
        true
    }

    /// Mirror a rank failure into the registry's overlay shards.
    pub fn invalidate_rank(&mut self, idx: usize) -> bool {
        self.shards.invalidate_rank(idx)
    }

    /// Mirror a rank repair into the registry's overlay shards.
    pub fn repair_rank(&mut self, idx: usize) -> bool {
        self.shards.repair_rank(idx)
    }

    /// Counters accumulated so far.
    pub fn stats(&self) -> PrefixStats {
        self.stats
    }

    /// Read-only view of the overlay shards (leak tests).
    pub fn shards(&self) -> &KvShards {
        &self.shards
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;

    fn cache_with_pages(pages: u64) -> PagedKvCache {
        PagedKvCache::new(pages * PAGE_TOKENS * 100, 100)
    }

    #[test]
    fn capacity_derived_from_bytes() {
        // 1 MiB at 128 bytes/token = 8192 tokens = 512 pages.
        let c = PagedKvCache::new(1 << 20, 128);
        assert_eq!(c.capacity_tokens(), 8192);
        assert_eq!(c.total_pages(), 512);
    }

    #[test]
    fn append_allocates_on_page_boundaries() {
        let mut c = cache_with_pages(10);
        c.register(1);
        c.append(1, 10).unwrap(); // 1 page
        assert_eq!(c.free_pages(), 9);
        c.append(1, 6).unwrap(); // fills page 1 exactly
        assert_eq!(c.free_pages(), 9);
        c.append(1, 1).unwrap(); // spills to page 2
        assert_eq!(c.free_pages(), 8);
        assert_eq!(c.tokens(1), Some(17));
        assert_eq!(c.block_table(1).unwrap().len(), 2);
    }

    #[test]
    fn out_of_pages_is_atomic() {
        let mut c = cache_with_pages(2);
        c.register(1);
        c.append(1, PAGE_TOKENS * 2).unwrap();
        c.register(2);
        assert_eq!(c.append(2, 1), Err(KvError::OutOfPages));
        assert_eq!(c.free_pages(), 0);
        assert_eq!(c.tokens(2), Some(0), "failed append must not change state");
    }

    #[test]
    fn release_returns_pages() {
        let mut c = cache_with_pages(4);
        c.register(7);
        c.append(7, 50).unwrap(); // 4 pages
        assert_eq!(c.free_pages(), 0);
        c.release(7).unwrap();
        assert_eq!(c.free_pages(), 4);
        assert_eq!(c.tokens(7), None);
    }

    #[test]
    fn fork_shares_pages_copy_on_write() {
        let mut c = cache_with_pages(8);
        c.register(1);
        c.append(1, 32).unwrap(); // 2 pages
        c.fork(1, 2).unwrap();
        assert_eq!(c.free_pages(), 6, "fork allocates nothing");
        assert_eq!(c.block_table(2), c.block_table(1));
        // Releasing the parent keeps shared pages alive.
        c.release(1).unwrap();
        assert_eq!(c.free_pages(), 6);
        c.release(2).unwrap();
        assert_eq!(c.free_pages(), 8);
    }

    #[test]
    fn unknown_sequence_errors() {
        let mut c = cache_with_pages(1);
        assert_eq!(c.append(9, 1), Err(KvError::UnknownSequence));
        assert_eq!(c.release(9), Err(KvError::UnknownSequence));
        assert_eq!(c.fork(9, 10), Err(KvError::UnknownSequence));
    }

    #[test]
    fn max_batch_math() {
        let c = cache_with_pages(100);
        // 100 pages, 160-token sequences need 10 pages each.
        assert_eq!(c.max_batch(160), 10);
        assert_eq!(c.max_batch(1), 100);
    }

    #[test]
    fn fork_refcounts_survive_any_release_order() {
        // Satellite coverage: CoW refcount decrement on free and
        // shared-page release ordering — child released before parent,
        // parent before child, and a grandchild chain.
        let mut c = cache_with_pages(8);
        c.register(1);
        c.append(1, 40).unwrap(); // 3 pages
        c.fork(1, 2).unwrap();
        c.fork(2, 3).unwrap(); // grandchild shares the same 3 pages
        assert_eq!(c.free_pages(), 5);
        // Child-first release: pages stay alive for parent + grandchild.
        c.release(2).unwrap();
        assert_eq!(c.free_pages(), 5, "shared pages must not be freed early");
        // Parent next: grandchild still holds every page.
        c.release(1).unwrap();
        assert_eq!(c.free_pages(), 5);
        assert_eq!(c.block_table(3).unwrap().len(), 3);
        // Last owner frees everything.
        c.release(3).unwrap();
        assert_eq!(c.free_pages(), 8);
    }

    #[test]
    fn forked_child_grows_privately() {
        // Appends after a fork allocate fresh pages for the child only;
        // the shared prefix stays shared.
        let mut c = cache_with_pages(4);
        c.register(1);
        c.append(1, PAGE_TOKENS).unwrap(); // 1 full page
        c.fork(1, 2).unwrap();
        c.append(2, 1).unwrap(); // spills to a private page
        assert_eq!(c.free_pages(), 2);
        assert_eq!(c.block_table(1).unwrap().len(), 1);
        assert_eq!(c.block_table(2).unwrap().len(), 2);
        assert_eq!(c.block_table(1).unwrap()[0], c.block_table(2).unwrap()[0]);
        // Releasing the parent keeps the shared page (child refs it) but
        // releasing the child frees both shared and private pages.
        c.release(1).unwrap();
        assert_eq!(c.free_pages(), 2);
        c.release(2).unwrap();
        assert_eq!(c.free_pages(), 4);
    }

    #[test]
    fn fork_error_paths_leave_state_untouched() {
        let mut c = cache_with_pages(4);
        c.register(1);
        c.append(1, 20).unwrap(); // 2 pages
        assert_eq!(c.fork(99, 100), Err(KvError::UnknownSequence));
        assert_eq!(
            c.tokens(100),
            None,
            "failed fork must not register the child"
        );
        assert_eq!(c.free_pages(), 2);
        // Forking onto a live id is refused — overwriting it would leak
        // its pages (they would keep a positive refcount forever).
        c.register(5);
        c.append(5, 20).unwrap();
        assert_eq!(c.fork(1, 5), Err(KvError::SequenceExists));
        c.release(5).unwrap();
        assert_eq!(c.free_pages(), 2, "refused fork must not leak pages");
        // A forked child hitting OutOfPages on append is atomic too.
        c.fork(1, 2).unwrap();
        c.append(2, PAGE_TOKENS * 10).unwrap_err();
        assert_eq!(
            c.tokens(2),
            Some(20),
            "failed append must not change tokens"
        );
        assert_eq!(c.free_pages(), 2);
        // Double release of the same id is UnknownSequence, not a panic.
        c.release(2).unwrap();
        assert_eq!(c.release(2), Err(KvError::UnknownSequence));
    }

    #[test]
    fn shards_mirror_operations_across_ranks() {
        // Two symmetric ranks: every op lands on both.
        let mut s = KvShards::new(vec![cache_with_pages(4), cache_with_pages(4)]);
        assert_eq!(s.ranks(), 2);
        assert_eq!(s.capacity_tokens(), 4 * PAGE_TOKENS);
        s.register(7);
        s.append(7, 20).unwrap();
        assert_eq!(s.tokens(7), Some(20));
        for r in 0..2 {
            assert_eq!(s.rank(r).free_pages(), 2);
        }
        s.fork(7, 8).unwrap();
        s.release(7).unwrap();
        assert_eq!(s.tokens(7), None);
        assert_eq!(s.tokens(8), Some(20));
        s.release(8).unwrap();
        for r in 0..2 {
            assert_eq!(s.rank(r).free_pages(), 4);
        }
    }

    #[test]
    fn one_exhausted_rank_stalls_the_whole_deployment() {
        // Asymmetric ranks (uneven head or layer split): the small rank
        // runs out first, and the failed append must not leak pages on the
        // big rank.
        let mut s = KvShards::new(vec![cache_with_pages(2), cache_with_pages(8)]);
        assert_eq!(s.capacity_tokens(), 2 * PAGE_TOKENS, "min across ranks");
        s.register(1);
        s.append(1, 2 * PAGE_TOKENS).unwrap();
        assert_eq!(s.append(1, 1), Err(KvError::OutOfPages));
        assert_eq!(s.rank(0).free_pages(), 0);
        assert_eq!(s.rank(1).free_pages(), 6, "atomic: big rank untouched");
        assert_eq!(s.tokens(1), Some(2 * PAGE_TOKENS));
        // Errors surface uniformly for unknown sequences too.
        assert_eq!(s.append(9, 1), Err(KvError::UnknownSequence));
        assert_eq!(s.release(9), Err(KvError::UnknownSequence));
        assert_eq!(s.fork(9, 10), Err(KvError::UnknownSequence));
        assert_eq!(s.fork(1, 1), Err(KvError::SequenceExists));
    }

    #[test]
    fn divergent_shard_sets_error_instead_of_panicking() {
        // KvShards::new accepts caller-built allocators, so a sequence
        // registered on only some ranks must surface as an error on every
        // mirrored operation — never a panic, and never a partial mutation.
        let mut lopsided = cache_with_pages(4);
        lopsided.register(1);
        lopsided.append(1, 16).unwrap();
        let mut s = KvShards::new(vec![lopsided, cache_with_pages(4)]);
        assert_eq!(s.release(1), Err(KvError::UnknownSequence));
        assert_eq!(s.append(1, 1), Err(KvError::UnknownSequence));
        assert_eq!(s.fork(1, 2), Err(KvError::UnknownSequence));
        assert_eq!(s.rank(0).free_pages(), 3, "no partial mutation");
        assert_eq!(s.rank(1).free_pages(), 4);
        // Registering on all ranks heals the divergence for new ops.
        s.register(1);
        assert_eq!(s.rank(1).tokens(1), Some(0));
        s.append(1, 1).unwrap();
        s.release(1).unwrap();
    }

    #[test]
    fn reset_returns_every_page_and_forgets_sequences() {
        let mut c = cache_with_pages(4);
        c.register(1);
        c.append(1, 40).unwrap();
        c.fork(1, 2).unwrap();
        c.reset();
        assert_eq!(c.free_pages(), 4);
        assert_eq!(c.tokens(1), None);
        assert_eq!(c.tokens(2), None);
        // The allocator is fully reusable after a reset.
        c.register(1);
        c.append(1, 64).unwrap();
        assert_eq!(c.free_pages(), 0);
    }

    #[test]
    fn invalidated_rank_cannot_leak_pages_on_release() {
        // The mid-flight invalidation regression: a sequence admitted on
        // every rank, then rank 1 dies. Its table was reset, so a release
        // that insisted on finding the sequence on *all* ranks would error
        // and strand the survivors' pages with positive refcounts forever.
        let mut s = KvShards::new(vec![cache_with_pages(4), cache_with_pages(4)]);
        s.register(7);
        s.append(7, 40).unwrap(); // 3 pages on each rank
        assert!(s.invalidate_rank(1));
        assert!(!s.invalidate_rank(1), "double invalidation is a no-op");
        assert!(!s.invalidate_rank(9), "out of range is a no-op");
        assert_eq!(s.alive_ranks(), 1);
        assert!(s.is_invalidated(1));
        assert_eq!(s.rank(1).free_pages(), 4, "dead rank's pages are freed");
        // Release succeeds on the survivor and frees its pages.
        s.release(7).unwrap();
        assert_eq!(s.rank(0).free_pages(), 4, "no leaked refcounts");
        assert_eq!(s.release(7), Err(KvError::UnknownSequence));
    }

    #[test]
    fn fork_and_append_skip_invalidated_ranks() {
        let mut s = KvShards::new(vec![cache_with_pages(8), cache_with_pages(8)]);
        s.register(1);
        s.append(1, 32).unwrap();
        assert!(s.invalidate_rank(0));
        // Mirror ops keep working on the survivor; the dead rank is inert.
        s.fork(1, 2).unwrap();
        s.append(2, 1).unwrap();
        assert_eq!(s.tokens(2), Some(33), "read from the first alive rank");
        assert_eq!(s.rank(0).free_pages(), 8, "dead rank untouched");
        // Capacity comes from alive ranks only.
        assert_eq!(s.capacity_tokens(), 8 * PAGE_TOKENS);
        s.release(1).unwrap();
        s.release(2).unwrap();
        assert_eq!(s.rank(1).free_pages(), 8);
    }

    #[test]
    fn repaired_rank_rejoins_cold_and_serves_again() {
        let mut s = KvShards::new(vec![cache_with_pages(8), cache_with_pages(8)]);
        s.register(1);
        s.append(1, 32).unwrap();
        assert!(s.invalidate_rank(1));
        assert!(!s.repair_rank(0), "repairing an alive rank is a no-op");
        assert!(s.repair_rank(1));
        assert_eq!(s.alive_ranks(), 2);
        // The repaired rank knows every live sequence but holds no KV for
        // it yet — recompute-prefill must refill it.
        assert_eq!(s.rank(1).tokens(1), Some(0));
        assert_eq!(s.rank(0).tokens(1), Some(32));
        // New work lands on both ranks again.
        s.append(1, PAGE_TOKENS).unwrap();
        assert_eq!(s.rank(1).tokens(1), Some(PAGE_TOKENS));
        s.release(1).unwrap();
        assert_eq!(s.rank(0).free_pages(), 8);
        assert_eq!(s.rank(1).free_pages(), 8);
    }

    #[test]
    fn all_ranks_invalidated_errors_instead_of_panicking() {
        let mut s = KvShards::new(vec![cache_with_pages(2)]);
        s.register(1);
        assert!(s.invalidate_rank(0));
        assert_eq!(s.alive_ranks(), 0);
        assert_eq!(s.capacity_tokens(), 0, "no capacity without ranks");
        assert_eq!(s.tokens(1), None);
        assert_eq!(s.append(1, 1), Err(KvError::UnknownSequence));
        assert_eq!(s.fork(1, 2), Err(KvError::UnknownSequence));
        assert_eq!(s.release(1), Err(KvError::UnknownSequence));
    }

    #[test]
    fn pressure_tracks_reservations_and_faults() {
        // Asymmetric ranks: the small rank's occupancy climbs faster, and
        // the vector is exactly what a least-KV-pressure router reads.
        let mut s = KvShards::new(vec![cache_with_pages(4), cache_with_pages(8)]);
        assert_eq!(s.pressure(), vec![0.0, 0.0]);
        s.register(1);
        s.append(1, 2 * PAGE_TOKENS).unwrap(); // 2 pages on each rank
        assert_eq!(s.pressure(), vec![0.5, 0.25]);
        // Release drops pressure back to idle.
        s.release(1).unwrap();
        assert_eq!(s.pressure(), vec![0.0, 0.0]);
        // A dead rank reads as fully pressured until repaired.
        s.register(2);
        s.append(2, PAGE_TOKENS).unwrap();
        assert!(s.invalidate_rank(0));
        let p = s.pressure();
        assert_eq!(p[0], 1.0, "invalidated rank must repel routing");
        assert!((p[1] - 0.125).abs() < 1e-12);
        assert!(s.repair_rank(0));
        assert_eq!(s.pressure()[0], 0.0, "repaired rank rejoins cold");
    }

    fn registry(pages: u64, victim: PrefixVictim) -> PrefixRegistry {
        PrefixRegistry::new(KvShards::new(vec![cache_with_pages(pages)]), victim)
    }

    #[test]
    fn registry_miss_then_hit_forks_and_counts() {
        let mut r = registry(8, PrefixVictim::ColdPrefix);
        // First sight of a prefix: a miss that materializes it.
        assert_eq!(r.admit(1, 0xAA, 32, 64), 0);
        let s = r.stats();
        assert_eq!((s.lookups, s.hits, s.misses), (1, 0, 1));
        // Second request with the same hash forks and skips 32 tokens.
        assert_eq!(r.admit(2, 0xAA, 32, 64), 32);
        let s = r.stats();
        assert_eq!((s.lookups, s.hits, s.tokens_saved), (2, 1, 32));
        assert_eq!(s.pages_shared, 2);
        assert!(s.hit_rate() > 0.49 && s.hit_rate() < 0.51);
        // The fork is copy-on-write: no extra pages were allocated.
        assert_eq!(r.shards().rank(0).free_pages(), 6);
        // Release un-pins the entry and frees nothing (pages stay cached).
        r.release(2);
        assert_eq!(r.shards().rank(0).free_pages(), 6);
        // A prefix-less request never touches the registry.
        assert_eq!(r.admit(3, 0, 0, 64), 0);
        assert_eq!(r.stats().lookups, 2);
    }

    #[test]
    fn registry_readmission_does_not_refork() {
        let mut r = registry(8, PrefixVictim::ColdPrefix);
        r.admit(1, 0xAA, 32, 64);
        assert_eq!(r.admit(2, 0xAA, 32, 64), 32);
        let pages = r.shards().rank(0).free_pages();
        // The same request re-admitted (preemption-recompute path) keeps
        // its existing fork: saved tokens count again, pages do not.
        assert_eq!(r.admit(2, 0xAA, 32, 64), 32);
        assert_eq!(r.shards().rank(0).free_pages(), pages);
        let s = r.stats();
        assert_eq!(s.hits, 2);
        assert_eq!(s.pages_shared, 2, "re-admission must not re-count pages");
        r.release(2);
        r.release(2); // idempotent
    }

    #[test]
    fn registry_grows_entry_for_longer_followups() {
        let mut r = registry(8, PrefixVictim::ColdPrefix);
        r.admit(1, 0xAA, 16, 64);
        // A follow-up carrying 48 tokens of the same session hits on the
        // cached 16 and extends the entry to 48.
        assert_eq!(r.admit(2, 0xAA, 48, 64), 16);
        r.release(2);
        // The next turn hits on the grown entry.
        assert_eq!(r.admit(3, 0xAA, 48, 64), 48);
    }

    #[test]
    fn cold_prefix_eviction_spares_pinned_entries() {
        // 4 pages: two 2-page prefixes fill the cache.
        let mut r = registry(4, PrefixVictim::ColdPrefix);
        r.admit(1, 0xA, 32, 64);
        r.admit(2, 0xB, 32, 64);
        // Pin 0xA with a live fork; 0xB stays cold.
        assert_eq!(r.admit(3, 0xA, 32, 64), 32);
        // A new prefix evicts the cold LRU entry (0xB), not the pinned one.
        r.admit(4, 0xC, 32, 64);
        assert_eq!(r.stats().evictions, 1);
        assert_eq!(r.admit(5, 0xA, 32, 64), 32, "pinned entry survived");
        r.release(3);
        r.release(5);
    }

    #[test]
    fn cold_prefix_gives_up_when_everything_is_pinned() {
        let mut r = registry(4, PrefixVictim::ColdPrefix);
        r.admit(1, 0xA, 32, 64);
        r.admit(2, 0xB, 32, 64);
        r.admit(3, 0xA, 32, 64);
        r.admit(4, 0xB, 32, 64);
        // Both entries pinned: the new prefix cannot be cached, the
        // request just prefills in full (0 saved), nothing is evicted.
        assert_eq!(r.admit(5, 0xC, 32, 64), 0);
        assert_eq!(r.stats().evictions, 0);
        assert_eq!(r.admit(6, 0xA, 32, 64), 32, "pinned entries intact");
    }

    #[test]
    fn active_sequence_eviction_keeps_forked_children_alive() {
        let mut r = registry(4, PrefixVictim::ActiveSequence);
        r.admit(1, 0xA, 32, 64);
        r.admit(2, 0xB, 32, 64);
        // Pin 0xA with a live fork. ActiveSequence evicts the LRU entry
        // even when it is pinned — 0xA was just touched by the hit, so LRU
        // is 0xB here; force the interesting case by touching 0xB last so
        // pinned 0xA becomes the LRU victim.
        assert_eq!(r.admit(3, 0xA, 32, 64), 32);
        assert_eq!(r.admit(4, 0xB, 32, 64), 32);
        r.release(4);
        // Evicting pinned 0xA frees nothing (its pages are CoW-shared with
        // the live fork), so cold 0xB goes too before the append fits.
        r.admit(5, 0xC, 32, 64);
        assert_eq!(r.stats().evictions, 2, "pinned LRU entry was evicted");
        // The live fork of 0xA still holds its pages copy-on-write.
        assert_eq!(r.shards().tokens((1 << 62) | 3), Some(32));
        // 0xA itself is gone: the next request misses and re-caches.
        assert_eq!(r.admit(6, 0xA, 32, 64), 0);
        r.release(3);
    }

    #[test]
    fn registry_survives_rank_failure_without_leaks() {
        // Chaos unit: cached prefix + live forks across an
        // invalidate/repair cycle must not leak pages on any rank.
        let mut r = PrefixRegistry::new(
            KvShards::new(vec![cache_with_pages(8), cache_with_pages(8)]),
            PrefixVictim::ColdPrefix,
        );
        r.admit(1, 0xA, 32, 64);
        assert_eq!(r.admit(2, 0xA, 32, 64), 32);
        assert!(r.invalidate_rank(1));
        // Release of a fork admitted before the failure must not error or
        // leak on the survivor.
        r.release(2);
        // Hits keep working on the survivor while rank 1 is dark.
        assert_eq!(r.admit(3, 0xA, 32, 64), 32);
        assert!(r.repair_rank(1));
        // The repaired rank rejoined cold: the cached sequence exists with
        // zero tokens there, and releases stay balanced.
        r.release(3);
        assert_eq!(r.shards().rank(1).free_pages(), 8, "no pages leaked");
        // Post-repair forks allocate nothing on the cold rank either.
        assert_eq!(r.admit(4, 0xA, 32, 64), 32);
        r.release(4);
        assert_eq!(r.shards().rank(0).free_pages(), 6, "only the cache copy");
        assert_eq!(r.shards().rank(1).free_pages(), 8);
    }

    #[test]
    fn more_kv_memory_means_bigger_batches() {
        // The Figure 17 mechanism: ZipServ's freed weight memory (5.07 GB ->
        // 8.60 GB of KV) supports ~1.7x the batch at fixed context.
        let bytes_per_token = 131_072; // LLaMA3.1-8B
        let vllm = PagedKvCache::new(5_070_000_000, bytes_per_token);
        let zip = PagedKvCache::new(8_600_000_000, bytes_per_token);
        let ratio = zip.max_batch(2048) as f64 / vllm.max_batch(2048) as f64;
        assert!(ratio > 1.55 && ratio < 1.85, "ratio {ratio}");
    }
}

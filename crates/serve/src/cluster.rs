//! Deployment descriptions: which GPUs, how many, and how they talk.

use zipserv_gpu_sim::device::{DeviceSpec, Gpu, Tier};

/// A homogeneous GPU deployment running one model with tensor parallelism.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GpuCluster {
    /// Device type.
    pub gpu: Gpu,
    /// Number of devices (= tensor-parallel degree).
    pub count: u32,
    /// Effective inter-GPU bandwidth per direction, GB/s.
    pub link_gbps: f64,
}

impl GpuCluster {
    /// A single GPU.
    pub fn single(gpu: Gpu) -> Self {
        GpuCluster {
            gpu,
            count: 1,
            link_gbps: 0.0,
        }
    }

    /// A tensor-parallel deployment with a tier-appropriate interconnect:
    /// PCIe Gen4 (~22 GB/s effective) on consumer parts, NVLink-class
    /// (~200 GB/s effective) on datacenter parts.
    ///
    /// # Panics
    ///
    /// Panics if `count == 0`.
    pub fn tensor_parallel(gpu: Gpu, count: u32) -> Self {
        assert!(count >= 1, "cluster needs at least one GPU");
        let link = match gpu.spec().tier {
            Tier::Consumer => 22.0,
            Tier::Datacenter => 200.0,
        };
        GpuCluster {
            gpu,
            count,
            link_gbps: if count > 1 { link } else { 0.0 },
        }
    }

    /// The device specification.
    pub fn spec(&self) -> DeviceSpec {
        self.gpu.spec()
    }

    /// Aggregate DRAM capacity in bytes.
    pub fn total_dram_bytes(&self) -> u64 {
        (self.spec().dram_gib * self.count as f64 * 1024.0 * 1024.0 * 1024.0) as u64
    }

    /// Per-GPU DRAM capacity in bytes.
    pub fn dram_bytes_per_gpu(&self) -> u64 {
        (self.spec().dram_gib * 1024.0 * 1024.0 * 1024.0) as u64
    }

    /// Tensor-parallel degree.
    pub fn tp(&self) -> u32 {
        self.count
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_deployments() {
        // §6.5: LLaMA3.1-8B on 1×RTX4090, Mistral-24B on 2×L40S,
        // LLaMA3.1-70B on 4×L40S.
        let a = GpuCluster::single(Gpu::Rtx4090);
        assert_eq!(a.tp(), 1);
        assert_eq!(a.link_gbps, 0.0);
        let b = GpuCluster::tensor_parallel(Gpu::L40s, 2);
        assert_eq!(b.tp(), 2);
        assert!(b.link_gbps > 0.0);
        let c = GpuCluster::tensor_parallel(Gpu::L40s, 4);
        assert_eq!(c.total_dram_bytes(), 4 * c.dram_bytes_per_gpu());
    }

    #[test]
    fn datacenter_links_are_faster() {
        let consumer = GpuCluster::tensor_parallel(Gpu::L40s, 2);
        let dc = GpuCluster::tensor_parallel(Gpu::A100, 2);
        assert!(dc.link_gbps > 5.0 * consumer.link_gbps);
    }

    #[test]
    fn capacity_math() {
        let c = GpuCluster::single(Gpu::Rtx4090);
        assert_eq!(c.dram_bytes_per_gpu(), 24 * 1024 * 1024 * 1024);
    }
}

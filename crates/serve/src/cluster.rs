//! Deployment descriptions: which GPUs, how many, and how they talk.
//!
//! A deployment is a grid of `tp × pp` identical devices: `count` (= the
//! tensor-parallel degree) GPUs per pipeline stage, `pp` pipeline stages.
//! TP ranks within a stage talk over the intra-node interconnect
//! (`link_gbps`, NVLink- or PCIe-class); adjacent pipeline stages exchange
//! activations over the inter-stage link (`pp_link_gbps`, typically a
//! slower cross-node fabric).

use zipserv_gpu_sim::device::{DeviceSpec, Gpu, Tier};

/// Effective inter-node bandwidth for pipeline-stage hops (GB/s per
/// direction): IB/Ethernet-class fabric between hosts.
pub const INTER_NODE_GBPS: f64 = 25.0;

/// A homogeneous GPU deployment running one model with tensor and/or
/// pipeline parallelism.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GpuCluster {
    /// Device type.
    pub gpu: Gpu,
    /// Devices per pipeline stage (= tensor-parallel degree).
    pub count: u32,
    /// Effective intra-stage (TP) bandwidth per direction, GB/s.
    pub link_gbps: f64,
    /// Pipeline-parallel degree (stages).
    pub pp: u32,
    /// Effective inter-stage (PP) bandwidth per direction, GB/s.
    pub pp_link_gbps: f64,
}

impl GpuCluster {
    /// A single GPU.
    pub fn single(gpu: Gpu) -> Self {
        GpuCluster {
            gpu,
            count: 1,
            link_gbps: 0.0,
            pp: 1,
            pp_link_gbps: 0.0,
        }
    }

    /// A tensor-parallel deployment with a tier-appropriate interconnect:
    /// PCIe Gen4 (~22 GB/s effective) on consumer parts, NVLink-class
    /// (~200 GB/s effective) on datacenter parts.
    ///
    /// # Panics
    ///
    /// Panics if `count == 0`.
    pub fn tensor_parallel(gpu: Gpu, count: u32) -> Self {
        assert!(count >= 1, "cluster needs at least one GPU");
        let link = match gpu.spec().tier {
            Tier::Consumer => 22.0,
            Tier::Datacenter => 200.0,
        };
        GpuCluster {
            gpu,
            count,
            link_gbps: if count > 1 { link } else { 0.0 },
            pp: 1,
            pp_link_gbps: 0.0,
        }
    }

    /// A `tp × pp` grid: `pp` pipeline stages of `tp` tensor-parallel GPUs
    /// each. Intra-stage links follow [`GpuCluster::tensor_parallel`];
    /// stages talk over an [`INTER_NODE_GBPS`] fabric (each stage is
    /// typically its own host).
    ///
    /// # Panics
    ///
    /// Panics if `tp == 0` or `pp == 0`.
    pub fn pipeline_parallel(gpu: Gpu, tp: u32, pp: u32) -> Self {
        assert!(pp >= 1, "cluster needs at least one pipeline stage");
        let mut c = GpuCluster::tensor_parallel(gpu, tp);
        c.pp = pp;
        c.pp_link_gbps = if pp > 1 { INTER_NODE_GBPS } else { 0.0 };
        c
    }

    /// The same deployment with a different tensor-parallel degree
    /// (re-deriving the tier-appropriate intra-stage link).
    ///
    /// # Panics
    ///
    /// Panics if `tp == 0`.
    pub fn with_tp(self, tp: u32) -> Self {
        GpuCluster::pipeline_parallel(self.gpu, tp, self.pp)
    }

    /// The same deployment with a different pipeline-parallel degree
    /// (re-deriving the inter-stage link).
    ///
    /// # Panics
    ///
    /// Panics if `pp == 0`.
    pub fn with_pp(self, pp: u32) -> Self {
        GpuCluster::pipeline_parallel(self.gpu, self.count, pp)
    }

    /// The device specification.
    pub fn spec(&self) -> DeviceSpec {
        self.gpu.spec()
    }

    /// Aggregate DRAM capacity in bytes across every rank.
    pub fn total_dram_bytes(&self) -> u64 {
        (self.spec().dram_gib * self.total_devices() as f64 * 1024.0 * 1024.0 * 1024.0) as u64
    }

    /// Per-GPU DRAM capacity in bytes.
    pub fn dram_bytes_per_gpu(&self) -> u64 {
        (self.spec().dram_gib * 1024.0 * 1024.0 * 1024.0) as u64
    }

    /// Tensor-parallel degree (GPUs per pipeline stage).
    pub fn tp(&self) -> u32 {
        self.count
    }

    /// Pipeline-parallel degree (stages).
    pub fn pp(&self) -> u32 {
        self.pp
    }

    /// Total devices in the deployment (`tp × pp`).
    pub fn total_devices(&self) -> u32 {
        self.count * self.pp
    }

    /// Transformer layers held by each pipeline stage: a balanced
    /// partition, with the first `layers % pp` stages carrying one extra
    /// layer. With `pp == 1` this is just `[layers]`.
    pub fn stage_layers(&self, layers: u64) -> Vec<u64> {
        let pp = self.pp as u64;
        let base = layers / pp;
        let extra = layers % pp;
        (0..pp).map(|s| base + u64::from(s < extra)).collect()
    }

    /// Layers on the most-loaded (bottleneck) pipeline stage.
    pub fn bottleneck_stage_layers(&self, layers: u64) -> u64 {
        layers.div_ceil(self.pp as u64)
    }

    /// Total ranks as a `usize` — the fault layer's flat index space
    /// (`rank = stage * tp + lane`).
    pub fn total_ranks(&self) -> usize {
        self.total_devices() as usize
    }

    /// The pipeline stage a flat rank index belongs to.
    ///
    /// # Panics
    ///
    /// Panics if `rank` is out of range.
    pub fn rank_stage(&self, rank: usize) -> u32 {
        assert!(rank < self.total_ranks(), "rank out of range");
        rank as u32 / self.count
    }

    /// Fraction of compute capacity left with `dead` ranks down — the
    /// re-planning factor the degraded scheduler applies to capacity and
    /// step time (survivors absorb the dead ranks' shards).
    pub fn survivor_fraction(&self, dead: usize) -> f64 {
        let total = self.total_ranks();
        total.saturating_sub(dead) as f64 / total as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_deployments() {
        // §6.5: LLaMA3.1-8B on 1×RTX4090, Mistral-24B on 2×L40S,
        // LLaMA3.1-70B on 4×L40S.
        let a = GpuCluster::single(Gpu::Rtx4090);
        assert_eq!(a.tp(), 1);
        assert_eq!(a.pp(), 1);
        assert_eq!(a.link_gbps, 0.0);
        let b = GpuCluster::tensor_parallel(Gpu::L40s, 2);
        assert_eq!(b.tp(), 2);
        assert!(b.link_gbps > 0.0);
        assert_eq!(b.pp_link_gbps, 0.0);
        let c = GpuCluster::tensor_parallel(Gpu::L40s, 4);
        assert_eq!(c.total_dram_bytes(), 4 * c.dram_bytes_per_gpu());
    }

    #[test]
    fn datacenter_links_are_faster() {
        let consumer = GpuCluster::tensor_parallel(Gpu::L40s, 2);
        let dc = GpuCluster::tensor_parallel(Gpu::A100, 2);
        assert!(dc.link_gbps > 5.0 * consumer.link_gbps);
    }

    #[test]
    fn capacity_math() {
        let c = GpuCluster::single(Gpu::Rtx4090);
        assert_eq!(c.dram_bytes_per_gpu(), 24 * 1024 * 1024 * 1024);
    }

    #[test]
    fn pipeline_grid_counts_every_rank() {
        let c = GpuCluster::pipeline_parallel(Gpu::L40s, 4, 2);
        assert_eq!(c.tp(), 4);
        assert_eq!(c.pp(), 2);
        assert_eq!(c.total_devices(), 8);
        assert_eq!(c.total_dram_bytes(), 8 * c.dram_bytes_per_gpu());
        // Stage hops cross nodes over the fixed inter-node fabric — much
        // slower than an NVLink-class intra-stage link.
        assert_eq!(c.pp_link_gbps, INTER_NODE_GBPS);
        let dc = GpuCluster::pipeline_parallel(Gpu::A100, 2, 2);
        assert!(dc.pp_link_gbps < dc.link_gbps);
    }

    #[test]
    fn single_stage_has_no_pp_link() {
        let c = GpuCluster::pipeline_parallel(Gpu::L40s, 2, 1);
        assert_eq!(c, GpuCluster::tensor_parallel(Gpu::L40s, 2));
        assert_eq!(c.pp_link_gbps, 0.0);
    }

    #[test]
    fn stage_layer_partition_is_balanced_and_complete() {
        let c = GpuCluster::pipeline_parallel(Gpu::L40s, 1, 3);
        let stages = c.stage_layers(32);
        assert_eq!(stages, vec![11, 11, 10]);
        assert_eq!(stages.iter().sum::<u64>(), 32);
        assert_eq!(c.bottleneck_stage_layers(32), 11);
        // pp=1 degenerates to the whole model on one stage.
        assert_eq!(GpuCluster::single(Gpu::Rtx4090).stage_layers(32), vec![32]);
    }

    #[test]
    fn fault_domain_helpers() {
        let c = GpuCluster::pipeline_parallel(Gpu::L40s, 4, 2);
        assert_eq!(c.total_ranks(), 8);
        // Flat ranks 0..3 are stage 0, 4..7 stage 1.
        assert_eq!(c.rank_stage(0), 0);
        assert_eq!(c.rank_stage(3), 0);
        assert_eq!(c.rank_stage(4), 1);
        assert_eq!(c.rank_stage(7), 1);
        assert_eq!(c.survivor_fraction(0), 1.0);
        assert_eq!(c.survivor_fraction(2), 0.75);
        assert_eq!(c.survivor_fraction(8), 0.0);
        assert_eq!(c.survivor_fraction(9), 0.0, "saturates, never negative");
    }

    #[test]
    #[should_panic(expected = "rank out of range")]
    fn rank_stage_bounds_checked() {
        let _ = GpuCluster::single(Gpu::Rtx4090).rank_stage(1);
    }

    #[test]
    fn with_tp_and_with_pp_rederive_links() {
        let c = GpuCluster::single(Gpu::L40s).with_tp(4).with_pp(2);
        assert_eq!(c, GpuCluster::pipeline_parallel(Gpu::L40s, 4, 2));
        let back = c.with_pp(1).with_tp(1);
        assert_eq!(back, GpuCluster::single(Gpu::L40s));
    }
}

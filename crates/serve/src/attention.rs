//! Attention cost model.
//!
//! Decode attention is a gather over the KV cache: per step it reads every
//! cached token's K/V once (`batch × context × kv_bytes_per_token`), making
//! it memory-bound like the linear layers. Prefill attention is quadratic
//! in the prompt but compute-bound and fused (FlashAttention-style).

use zipserv_gpu_sim::device::DeviceSpec;
use zipserv_kernels::shapes::ModelDims;

/// Decode-step attention time in microseconds: one token per sequence
/// attends over `context` cached tokens.
pub fn decode_attention_us(
    dims: &ModelDims,
    batch: u64,
    context: u64,
    spec: &DeviceSpec,
    efficiency: f64,
) -> f64 {
    assert!(efficiency > 0.0 && efficiency <= 1.0, "efficiency in (0,1]");
    let kv_bytes = batch * context * dims.kv_bytes_per_token();
    let mem_us = kv_bytes as f64 / (spec.effective_dram_bytes_per_us() * efficiency);
    // One fused kernel launch per layer.
    mem_us + dims.layers as f64 * spec.launch_overhead_us * 0.25
}

/// Prefill attention time in microseconds for `batch` prompts of
/// `prompt_len` tokens (causal, FlashAttention-style: compute-bound).
pub fn prefill_attention_us(
    dims: &ModelDims,
    batch: u64,
    prompt_len: u64,
    spec: &DeviceSpec,
    efficiency: f64,
) -> f64 {
    assert!(efficiency > 0.0 && efficiency <= 1.0, "efficiency in (0,1]");
    // 2 matmuls (QK^T and PV) × 2 flops, causal halves the work.
    let flops = 2.0
        * 2.0
        * (batch * dims.layers * dims.heads * dims.head_dim) as f64
        * (prompt_len as f64).powi(2)
        / 2.0;
    flops / (spec.tensor_flops_per_us() * efficiency)
}

#[cfg(test)]
mod tests {
    use super::*;
    use zipserv_gpu_sim::device::Gpu;
    use zipserv_kernels::shapes::LlmModel;

    #[test]
    fn decode_attention_matches_figure17() {
        // Figure 17: ~3.02 ms attention per decode step for LLaMA3.1-8B at
        // batch 32, seq 1024 on the RTX4090.
        let dims = LlmModel::Llama31_8b.dims();
        let us = decode_attention_us(&dims, 32, 1024, &Gpu::Rtx4090.spec(), 0.8);
        assert!(us > 2000.0 && us < 7000.0, "got {us} us");
    }

    #[test]
    fn decode_attention_scales_linearly_with_context() {
        let dims = LlmModel::Llama31_8b.dims();
        let spec = Gpu::L40s.spec();
        let t1 = decode_attention_us(&dims, 8, 512, &spec, 0.8);
        let t2 = decode_attention_us(&dims, 8, 1024, &spec, 0.8);
        assert!(t2 > 1.8 * t1 && t2 < 2.2 * t1);
    }

    #[test]
    fn prefill_attention_is_quadratic() {
        let dims = LlmModel::Llama31_8b.dims();
        let spec = Gpu::Rtx4090.spec();
        let t1 = prefill_attention_us(&dims, 1, 512, &spec, 0.6);
        let t2 = prefill_attention_us(&dims, 1, 1024, &spec, 0.6);
        assert!((t2 / t1 - 4.0).abs() < 0.2, "ratio {}", t2 / t1);
    }

    #[test]
    fn gqa_reduces_decode_attention_cost() {
        // LLaMA3.1-8B has 8 KV heads vs 32 Q heads; a hypothetical MHA model
        // would read 4x the KV bytes.
        let mut mha = LlmModel::Llama31_8b.dims();
        mha.kv_heads = mha.heads;
        let dims = LlmModel::Llama31_8b.dims();
        let spec = Gpu::Rtx4090.spec();
        let gqa = decode_attention_us(&dims, 16, 2048, &spec, 0.8);
        let full = decode_attention_us(&mha, 16, 2048, &spec, 0.8);
        assert!(full > 3.0 * gqa);
    }
}

//! Online serving: a continuous-batching scheduler over the engine models.
//!
//! §6.5 benchmarks static batches; production serving (vLLM's actual mode)
//! admits requests as they arrive, joins them to the running decode batch,
//! and evicts them on completion. This module simulates that loop in
//! discrete decode-step time, with KV-capacity admission control — which is
//! exactly where ZipServ's freed weight memory turns into admission
//! headroom and lower queueing delay.
//!
//! Admission order and preemption are delegated to a pluggable
//! [`SchedulePolicy`](crate::policy::SchedulePolicy); see [`crate::policy`]
//! for the four in-tree policies and
//! [`ServingEngine::builder`](crate::engine::ServingEngine::builder) for the
//! fluent way to wire one up.

use crate::engine::ServingEngine;
use crate::fault::{
    FaultEvent, FaultKind, FaultPlan, FaultState, RejectReason, Rejection, RetryPolicy,
};
use crate::kvcache::{KvShards, PrefixRegistry, PrefixStats};
use crate::metrics::{percentile, ClassStats, RobustnessStats};
use crate::policy::{
    Fcfs, PreemptionMode, PriorityClass, QueuedRequest, RunningRequest, SchedulePolicy, Slo,
};
use std::collections::{HashMap, HashSet, VecDeque};

pub use crate::policy::MAX_PREEMPTIONS;

/// One serving request.
///
/// Construct with [`Request::new`] and layer on QoS with the builder-style
/// [`Request::with_priority`] / [`Request::with_slo`]; the defaults
/// ([`PriorityClass::Standard`], no SLO) reproduce pre-policy behavior.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Request {
    /// Request id.
    pub id: u64,
    /// Arrival time in seconds.
    pub arrival_s: f64,
    /// Prompt tokens.
    pub prompt_len: u64,
    /// Output tokens to generate.
    pub output_len: u64,
    /// Priority tier (default [`PriorityClass::Standard`]).
    pub priority: PriorityClass,
    /// Optional latency SLO this request is judged against.
    pub slo: Option<Slo>,
    /// Tenant identity (`None` for legacy tenant-less traffic). Fleet
    /// routers with session affinity key on this; the modulo-of-id fold
    /// remains only as their fallback.
    pub tenant: Option<u64>,
    /// Hash of the shared prompt prefix this request declares (0 = no
    /// shared prefix). Requests with equal hashes share their first
    /// `prefix_len` prompt tokens bit-for-bit.
    pub prefix_hash: u64,
    /// Length in tokens of the shared prefix (0 = no shared prefix;
    /// always `<= prompt_len`).
    pub prefix_len: u64,
}

impl Request {
    /// Creates a request with default QoS (standard priority, no SLO).
    pub fn new(id: u64, arrival_s: f64, prompt_len: u64, output_len: u64) -> Self {
        Request {
            id,
            arrival_s,
            prompt_len,
            output_len,
            priority: PriorityClass::Standard,
            slo: None,
            tenant: None,
            prefix_hash: 0,
            prefix_len: 0,
        }
    }

    /// Sets the priority tier (builder style).
    pub fn with_priority(mut self, priority: PriorityClass) -> Self {
        self.priority = priority;
        self
    }

    /// Attaches a latency SLO (builder style).
    pub fn with_slo(mut self, slo: Slo) -> Self {
        self.slo = Some(slo);
        self
    }

    /// Tags the request with a tenant identity (builder style).
    pub fn with_tenant(mut self, tenant: u64) -> Self {
        self.tenant = Some(tenant);
        self
    }

    /// Declares that the first `len` prompt tokens are shared under
    /// `hash` (builder style). `len` is clamped to the prompt length.
    pub fn with_shared_prefix(mut self, hash: u64, len: u64) -> Self {
        self.prefix_hash = hash;
        self.prefix_len = len.min(self.prompt_len);
        self
    }
}

/// Per-request completion record.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Completion {
    /// Request id.
    pub id: u64,
    /// Priority tier the request ran under.
    pub priority: PriorityClass,
    /// Time spent queued before first admission (s).
    pub queue_s: f64,
    /// End-to-end latency from arrival to last token (s).
    pub latency_s: f64,
    /// Time from arrival to the first generated token (s).
    pub ttft_s: f64,
    /// How many times the request was preempted.
    pub preemptions: u32,
    /// Whether the request's SLO was met (`None` if it carried no SLO).
    pub slo_met: Option<bool>,
    /// Output tokens the request generated (its `output_len`) — what
    /// [`ScheduleReport::goodput_tps`] counts.
    pub output_len: u64,
    /// Fault-driven re-queues the request survived (0 on clean runs).
    pub retries: u32,
}

/// Aggregate results of one simulated serving run.
#[derive(Debug, Clone, PartialEq)]
pub struct ScheduleReport {
    /// All completions.
    pub completions: Vec<Completion>,
    /// Simulated wall-clock duration (s).
    pub duration_s: f64,
    /// Output tokens per second over the run.
    pub throughput_tps: f64,
    /// Peak concurrent batch size observed.
    pub peak_batch: usize,
    /// Decode-side communication time charged across the run (s): the
    /// tensor-parallel all-reduce plus pipeline activation-hop share of
    /// every decode step the scheduler billed. Zero on single-GPU
    /// deployments; the legacy [`ContinuousBatcher::run_reference`] shim
    /// predates comm accounting and always reports zero.
    pub comm_s: f64,
    /// Total preemptions across the run.
    pub preemptions: u64,
    /// Ids of requests rejected instead of served, in rejection order
    /// (derived from [`ScheduleReport::rejections`]; kept for
    /// compatibility with pre-fault callers).
    pub rejected: Vec<u64>,
    /// Typed rejections with reasons: oversized requests, fault victims
    /// past the retry cap, brownout sheds, lost capacity, policy holds.
    pub rejections: Vec<Rejection>,
    /// Robustness accounting under fault injection. All-zero (the
    /// `Default`) on clean runs, preserving bit-compatible reports when
    /// the [`FaultPlan`] is empty.
    pub robustness: RobustnessStats,
    /// Step-cache observability: how often the scheduler re-priced a
    /// decode step versus reusing a cached one. Purely diagnostic — the
    /// cached values are exact, so hit rate never changes a report's
    /// timing fields.
    pub step_cache: StepCacheStats,
    /// Prefix-cache counters: hit rate, prefill tokens saved, CoW pages
    /// shared, evictions. All-zero (the `Default`) whenever the engine
    /// runs without prefix caching, preserving bit-compatible reports.
    pub prefix: PrefixStats,
    /// Name of the policy that produced this report.
    pub policy: String,
}

/// Hit/miss counters for the scheduler's per-`(shape, context-bucket)`
/// decode-step cache.
///
/// Misses are bounded by the number of *distinct step shapes* a run
/// visits, not the number of decode steps: on pipeline-parallel engines
/// the cache keys on [`ServingEngine::step_cache_key`]'s micro-batch
/// shape, so batch sizes that quantize to the same shape share an entry.
/// A low [`StepCacheStats::hit_rate`] on a long run means the engine
/// model is being re-run per step — the regression this accounting
/// exists to catch.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct StepCacheStats {
    /// Decode steps priced from a cached entry.
    pub hits: u64,
    /// Decode steps that ran the engine's step model.
    pub misses: u64,
}

impl StepCacheStats {
    /// Fraction of decode steps served from cache (1.0 for an empty run).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            return 1.0;
        }
        self.hits as f64 / total as f64
    }
}

impl ScheduleReport {
    /// End-to-end latency percentile (`q` in `[0, 1]`), or `None` when the
    /// run produced no completions.
    ///
    /// # Panics
    ///
    /// Panics if `q` is out of range.
    pub fn latency_percentile(&self, q: f64) -> Option<f64> {
        percentile(self.completions.iter().map(|c| c.latency_s), q)
    }

    /// Time-to-first-token percentile (`q` in `[0, 1]`), or `None` when the
    /// run produced no completions.
    ///
    /// # Panics
    ///
    /// Panics if `q` is out of range.
    pub fn ttft_percentile(&self, q: f64) -> Option<f64> {
        percentile(self.completions.iter().map(|c| c.ttft_s), q)
    }

    /// Latency percentile restricted to one priority class, or `None` when
    /// that class has no completions.
    ///
    /// # Panics
    ///
    /// Panics if `q` is out of range.
    pub fn class_latency_percentile(&self, class: PriorityClass, q: f64) -> Option<f64> {
        percentile(
            self.completions
                .iter()
                .filter(|c| c.priority == class)
                .map(|c| c.latency_s),
            q,
        )
    }

    /// TTFT percentile restricted to one priority class, or `None` when
    /// that class has no completions.
    ///
    /// # Panics
    ///
    /// Panics if `q` is out of range.
    pub fn class_ttft_percentile(&self, class: PriorityClass, q: f64) -> Option<f64> {
        percentile(
            self.completions
                .iter()
                .filter(|c| c.priority == class)
                .map(|c| c.ttft_s),
            q,
        )
    }

    /// Mean queueing delay before first admission, or `None` when the run
    /// produced no completions.
    pub fn mean_queue_s(&self) -> Option<f64> {
        if self.completions.is_empty() {
            return None;
        }
        Some(
            self.completions.iter().map(|c| c.queue_s).sum::<f64>() / self.completions.len() as f64,
        )
    }

    /// Fraction of SLO-carrying completions that met their SLO, or `None`
    /// when no completion carried an SLO.
    pub fn slo_attainment(&self) -> Option<f64> {
        crate::metrics::slo_attainment(&self.completions)
    }

    /// Per-class summary for one priority tier, or `None` when that class
    /// has no completions.
    pub fn class_stats(&self, class: PriorityClass) -> Option<ClassStats> {
        ClassStats::from_completions(
            class,
            self.completions.iter().filter(|c| c.priority == class),
        )
    }

    /// Summaries for every priority class that completed at least one
    /// request, least to most urgent.
    pub fn per_class(&self) -> Vec<ClassStats> {
        PriorityClass::ALL
            .iter()
            .filter_map(|&class| self.class_stats(class))
            .collect()
    }

    /// Fraction of the run during which every rank was alive: `1 −
    /// downtime / duration`. Exactly 1.0 on clean runs (and on an empty
    /// run, where no time passed to be unavailable in).
    pub fn availability(&self) -> f64 {
        if self.duration_s <= 0.0 {
            return 1.0;
        }
        (1.0 - self.robustness.downtime_s / self.duration_s).clamp(0.0, 1.0)
    }

    /// Output tokens per second counting only *completed* requests —
    /// under faults this excludes tokens generated by victims that were
    /// later rejected, so `goodput_tps <= throughput_tps` and the gap is
    /// the work faults wasted. Equal to `throughput_tps` on clean runs
    /// without rejections.
    pub fn goodput_tps(&self) -> f64 {
        if self.duration_s <= 0.0 {
            return 0.0;
        }
        self.completions.iter().map(|c| c.output_len).sum::<u64>() as f64 / self.duration_s
    }

    /// Ids rejected for one specific reason, in rejection order.
    pub fn rejected_for(&self, reason: RejectReason) -> Vec<u64> {
        self.rejections
            .iter()
            .filter(|r| r.reason == reason)
            .map(|r| r.id)
            .collect()
    }
}

/// Deterministic xorshift64 uniform stream on `(0, 1)`, shared by every
/// arrival generator so their documented equivalence cannot drift.
pub(crate) struct UniformStream(u64);

impl UniformStream {
    pub(crate) fn new(seed: u64) -> Self {
        UniformStream(seed | 1)
    }

    pub(crate) fn next(&mut self) -> f64 {
        self.0 ^= self.0 << 13;
        self.0 ^= self.0 >> 7;
        self.0 ^= self.0 << 17;
        ((self.0 >> 11) as f64 / (1u64 << 53) as f64).max(1e-12)
    }
}

/// Deterministic Poisson-process arrival generator (xorshift-based, no
/// external RNG needed). Every request gets default QoS; use
/// [`crate::workload::ArrivalMix`] for mixed-priority/SLO traffic.
pub fn poisson_arrivals(
    rate_per_s: f64,
    count: usize,
    prompt_len: u64,
    output_len: u64,
    seed: u64,
) -> Vec<Request> {
    assert!(rate_per_s > 0.0, "rate must be positive");
    let mut uniform = UniformStream::new(seed);
    let mut t = 0.0;
    (0..count)
        .map(|id| {
            t += -uniform.next().ln() / rate_per_s; // exponential inter-arrival
            Request::new(id as u64, t, prompt_len, output_len)
        })
        .collect()
}

/// Builds the final report shared by the generic and reference loops.
#[allow(clippy::too_many_arguments)]
fn finish_report(
    policy: &str,
    now: f64,
    output_tokens: u64,
    peak_batch: usize,
    comm_s: f64,
    preemptions: u64,
    rejections: Vec<Rejection>,
    robustness: RobustnessStats,
    step_cache: StepCacheStats,
    prefix: PrefixStats,
    completions: Vec<Completion>,
) -> ScheduleReport {
    ScheduleReport {
        duration_s: now,
        throughput_tps: if now > 0.0 {
            output_tokens as f64 / now
        } else {
            0.0
        },
        peak_batch,
        comm_s,
        preemptions,
        rejected: rejections.iter().map(|r| r.id).collect(),
        rejections,
        robustness,
        step_cache,
        prefix,
        policy: policy.to_string(),
        completions,
    }
}

/// Turns a finished in-flight record into a completion at time `now`.
fn complete(f: &RunningRequest, now: f64) -> Completion {
    // A finished request always produced at least one token; fall back to
    // the final step time rather than aborting the run if a custom policy
    // ever violates that invariant.
    let first_token = f.first_token_s.unwrap_or(now);
    let ttft_s = first_token - f.req.arrival_s;
    Completion {
        id: f.req.id,
        priority: f.req.priority,
        queue_s: f.first_admitted_s - f.req.arrival_s,
        latency_s: now - f.req.arrival_s,
        ttft_s,
        preemptions: f.preemptions,
        slo_met: f.req.slo.map(|slo| {
            let decode_budget = slo.tpot_s * f.req.output_len.saturating_sub(1) as f64;
            ttft_s <= slo.ttft_s && (now - first_token) <= decode_budget
        }),
        output_len: f.req.output_len,
        retries: f.retries,
    }
}

/// Runs an arrival trace to completion under an arbitrary policy.
///
/// This is the policy-generic continuous-batching loop:
///
/// 1. **Admission** — while capacity and the batch cap allow, the policy
///    picks the next arrived request; a pick that does not fit may evict
///    policy-chosen victims (each request at most [`MAX_PREEMPTIONS`]
///    times). Fresh admissions pay their prefill; re-admissions pay a
///    recompute prefill over `prompt + generated` tokens, or — under
///    [`PreemptionMode::PageOut`](crate::policy::PreemptionMode) — the
///    PCIe page-in half of the swap (the page-out half was charged when
///    the victim was evicted).
/// 2. **Decode** — one step for the whole batch, costed by the engine's
///    analytic model (cached per `(batch, context-bucket)`).
/// 3. **Retire** — finished requests leave the batch and record latency,
///    TTFT, queueing delay, preemption count and SLO verdict.
///
/// A request whose KV demand exceeds the deployment's capacity even as the
/// sole occupant is reported in [`ScheduleReport::rejected`] rather than
/// looping forever.
///
/// Under [`Fcfs`] this loop is bit-compatible with the legacy
/// [`ContinuousBatcher::run_reference`] on arrival-sorted traces (verified
/// by proptest in the `schedule_policies` suite).
pub fn run_policy(
    engine: &ServingEngine,
    policy: &dyn SchedulePolicy,
    max_batch: usize,
    arrivals: Vec<Request>,
) -> ScheduleReport {
    run_policy_faulted(
        engine,
        policy,
        max_batch,
        arrivals,
        &FaultPlan::default(),
        &RetryPolicy::default(),
    )
}

/// Everything streaming admission tracks while the scheduler loop runs
/// (chunked-prefill mode only — `None` on the legacy path): the live
/// per-rank KV shards that gate admission page-by-page, plus the
/// per-request prefill chunk cost.
struct StreamBooks {
    /// One paged allocator per rank of the `tp × pp` grid. Admission
    /// reserves a request's whole-lifetime KV (`prompt + output`) on every
    /// alive rank up front, so one exhausted fat rank stalls intake
    /// mid-run even when the aggregate capacity would fit.
    shards: KvShards,
    /// Per-resident cost of one prefill chunk, in seconds (whole prefill
    /// cost at admission time — including any degraded-compute slowdown —
    /// divided by `n_chunks`). Entries live exactly as long as the
    /// reservation.
    chunk_cost: HashMap<u64, f64>,
    /// Chunks a fresh prefill is split into: one per pipeline stage.
    n_chunks: u32,
}

impl StreamBooks {
    /// Tries to reserve `cand`'s whole-lifetime KV on every alive rank.
    /// The append is atomic across ranks; on refusal (some rank is out of
    /// pages) the registration is rolled back so nothing leaks.
    fn try_reserve(&mut self, cand: &QueuedRequest) -> bool {
        let id = cand.req.id;
        self.shards.register(id);
        match self
            .shards
            .append(id, cand.req.prompt_len + cand.req.output_len)
        {
            Ok(()) => true,
            Err(_) => {
                let _ = self.shards.release(id);
                false
            }
        }
    }

    /// Hands back a resident's reservation (completion, preemption,
    /// fault victimization) and drops its chunk bookkeeping.
    fn unreserve(&mut self, id: u64) {
        let _ = self.shards.release(id);
        self.chunk_cost.remove(&id);
    }
}

/// Everything the fault machinery mutates while the scheduler loop runs —
/// threaded as one bundle so the event applicator and the admission loop
/// see the same books.
struct FaultBooks {
    state: FaultState,
    rob: RobustnessStats,
    /// Ids victimized by a failure and not yet re-served or rejected.
    victims_outstanding: HashSet<u64>,
    /// When the oldest still-open recovery window opened.
    recover_started: Option<f64>,
}

impl FaultBooks {
    /// A victim id got re-served or rejected; when the last one resolves,
    /// the time-to-recover window closes.
    fn resolve_victim(&mut self, id: u64, now: f64) {
        if self.victims_outstanding.remove(&id) && self.victims_outstanding.is_empty() {
            if let Some(t0) = self.recover_started.take() {
                self.rob.time_to_recover_s += now - t0;
                self.rob.recoveries += 1;
            }
        }
    }
}

/// Applies every fault event due at or before `now` (plus link-window
/// expiry), mutating time, the pending/running queues and the robustness
/// books. Called at the top of each scheduler round and after every time
/// jump, so no event is skipped over.
#[allow(clippy::too_many_arguments)]
fn apply_due_faults(
    events: &[FaultEvent],
    next_event: &mut usize,
    books: &mut FaultBooks,
    stream: &mut Option<StreamBooks>,
    registry: &mut Option<PrefixRegistry>,
    retry: &RetryPolicy,
    engine: &ServingEngine,
    now: &mut f64,
    pending: &mut Vec<QueuedRequest>,
    running: &mut Vec<RunningRequest>,
    rejections: &mut Vec<Rejection>,
) {
    // Link windows expire by time, not by a plan event.
    if books.state.link_factor != 1.0 && *now >= books.state.link_until {
        books.state.link_factor = 1.0;
    }
    while *next_event < events.len() && events[*next_event].at_s <= *now {
        let ev = events[*next_event];
        *next_event += 1;
        books.rob.faults_injected += 1;
        match ev.kind {
            FaultKind::RankFail { rank } => {
                let rank = rank % books.state.total_ranks;
                if !books.state.dead.insert(rank) {
                    continue; // already dead
                }
                if books.state.dead.len() == 1 {
                    books.state.degraded_since = *now;
                }
                books.rob.rank_failures += 1;
                if let Some(s) = stream.as_mut() {
                    s.shards.invalidate_rank(rank);
                }
                if let Some(reg) = registry.as_mut() {
                    reg.invalidate_rank(rank);
                }
                // KV shards mirror every sequence across all ranks, so one
                // dead rank invalidates the whole batch's KV: every running
                // request is victimized for recompute-prefill (bounded by
                // the retry cap), never silently continued on garbage.
                for victim in running.drain(..) {
                    if let Some(s) = stream.as_mut() {
                        s.unreserve(victim.req.id);
                    }
                    let retries = victim.retries + 1;
                    if retries > retry.max_retries {
                        rejections.push(Rejection {
                            id: victim.req.id,
                            reason: RejectReason::RetriesExhausted,
                        });
                        if let Some(reg) = registry.as_mut() {
                            reg.release(victim.req.id);
                        }
                        books.resolve_victim(victim.req.id, *now);
                        continue;
                    }
                    books.rob.retries += 1;
                    books.victims_outstanding.insert(victim.req.id);
                    let back = QueuedRequest {
                        req: victim.req,
                        resume_generated: victim.generated,
                        preemptions: victim.preemptions,
                        first_admitted_s: Some(victim.first_admitted_s),
                        first_token_s: victim.first_token_s,
                        retries,
                        not_before_s: *now + retry.delay_s(retries),
                    };
                    let pos = pending.partition_point(|p| p.req.arrival_s <= back.req.arrival_s);
                    pending.insert(pos, back);
                }
                if !books.victims_outstanding.is_empty() && books.recover_started.is_none() {
                    books.recover_started = Some(*now);
                }
            }
            FaultKind::RankRepair { rank } => {
                let rank = rank % books.state.total_ranks;
                if let Some(s) = stream.as_mut() {
                    s.shards.repair_rank(rank);
                }
                if let Some(reg) = registry.as_mut() {
                    reg.repair_rank(rank);
                }
                if books.state.dead.remove(&rank) && books.state.dead.is_empty() {
                    books.rob.downtime_s += *now - books.state.degraded_since;
                }
            }
            FaultKind::LinkDegrade { factor, duration_s } => {
                books.state.link_factor = factor.max(1.0);
                books.state.link_until = *now + duration_s;
                books.rob.link_degrades += 1;
            }
            FaultKind::KvStall { stall_s } => {
                *now += stall_s;
                books.rob.stall_s += stall_s;
            }
            FaultKind::CorruptFrame { frames } => {
                // The entropy codecs' checksums surface corruption as a
                // typed error before garbage reaches the ZipGEMM path; the
                // recovery cost is one PCIe re-fetch per frame.
                let penalty = frames as f64 * engine.frame_refetch_s();
                *now += penalty;
                books.rob.frame_corruptions += frames as u64;
                books.rob.refetch_s += penalty;
            }
        }
    }
}

/// [`run_policy`] with deterministic fault injection and recovery.
///
/// The clean-path guarantee: with an empty [`FaultPlan`] this function
/// executes *exactly* the arithmetic of the pre-fault loop — every fault
/// branch is behind a `plan.is_empty()` check, capacity scaling is
/// integer, and the robustness books stay at their all-zero default — so
/// reports are bit-identical (pinned by the `fault_recovery` suite across
/// every in-tree policy).
///
/// With a non-empty plan, events apply between scheduler rounds:
///
/// * **[`FaultKind::RankFail`]** — the dead rank's KV shard is lost, so
///   the whole running batch is victimized. Each victim re-queues for
///   recompute-prefill with an exponential backoff
///   ([`RetryPolicy::delay_s`]); past [`RetryPolicy::max_retries`] it is
///   rejected as [`RejectReason::RetriesExhausted`]. Capacity and step
///   time are re-planned around the survivors, and fresh best-effort
///   ([`PriorityClass::Batch`]) arrivals are shed
///   ([`RejectReason::BrownoutShed`]) until repair.
/// * **[`FaultKind::RankRepair`]** — capacity returns; victims still
///   queued simply resume through the normal admission path.
/// * **[`FaultKind::LinkDegrade`]** — the communication share of each
///   decode step is multiplied by the factor until the window expires.
/// * **[`FaultKind::KvStall`]** / **[`FaultKind::CorruptFrame`]** — the
///   engine stalls for the transfer / per-frame PCIe re-fetch time.
///
/// Every request resolves exactly once: it either completes or appears in
/// [`ScheduleReport::rejections`] with a typed reason.
pub fn run_policy_faulted(
    engine: &ServingEngine,
    policy: &dyn SchedulePolicy,
    max_batch: usize,
    mut arrivals: Vec<Request>,
    plan: &FaultPlan,
    retry: &RetryPolicy,
) -> ScheduleReport {
    arrivals.sort_by(|a, b| a.arrival_s.partial_cmp(&b.arrival_s).expect("finite"));
    let capacity = engine.kv_capacity_tokens();
    let clean = plan.is_empty();
    let events = plan.events();
    let mut next_event = 0usize;
    let mut books = FaultBooks {
        state: FaultState::new(engine.cluster().total_ranks()),
        rob: RobustnessStats::default(),
        victims_outstanding: HashSet::new(),
        recover_started: None,
    };
    // Chunked-prefill mode (default at pp ≥ 2, or forced via
    // `EngineBuilder::chunked_prefill`): fresh prefills stream through the
    // pipeline in per-stage chunks between decode steps, and admission is
    // gated by the *live* per-rank KV shards instead of the scalar
    // capacity alone. `None` pins the legacy whole-prefill arithmetic
    // bit-for-bit.
    let mut stream: Option<StreamBooks> = if engine.chunked_prefill() {
        Some(StreamBooks {
            shards: engine.kv_shards(),
            chunk_cost: HashMap::new(),
            n_chunks: engine.cluster().pp().max(1),
        })
    } else {
        None
    };
    // Prefix caching (opt-in via `EngineBuilder::prefix_caching`): the
    // registry interns shared-prefix hashes on its own overlay shards and
    // forks them copy-on-write on hit, so admission charges prefill for
    // the unshared suffix only. `None` — the default — touches no legacy
    // code path, keeping caching-off runs bit-identical.
    let mut registry: Option<PrefixRegistry> = if engine.prefix_caching() {
        Some(PrefixRegistry::new(
            engine.kv_shards(),
            policy.prefix_victim(),
        ))
    } else {
        None
    };
    let mut pending: Vec<QueuedRequest> = arrivals.into_iter().map(QueuedRequest::fresh).collect();
    let mut running: Vec<RunningRequest> = Vec::new();
    let mut completions = Vec::new();
    let mut rejections: Vec<Rejection> = Vec::new();
    let mut now = 0.0f64;
    let mut peak_batch = 0usize;
    let mut output_tokens = 0u64;
    let mut preemptions = 0u64;
    let mut comm_s = 0.0f64;
    // Step times cached per (step-shape key, context bucket): (total ms,
    // comm ms). The key is `engine.step_cache_key(batch)` — the raw batch
    // on single-stage engines, the micro-batch shape on pipelined ones,
    // where distinct batches collapse onto identical step costs (keying on
    // the raw batch defeated the cache there: every batch size was a fresh
    // miss pricing a shape already priced). The cached pair is
    // fault-independent — degradation scales it *after* the lookup — so
    // the key needs no fault epoch.
    let mut step_cache: HashMap<(u64, u64), (f64, f64)> = HashMap::new();
    let mut cache_stats = StepCacheStats::default();

    // Worst-case KV demand if `cand` joins the current batch (same
    // whole-lifetime accounting as the legacy loop).
    fn kv_demand(running: &[RunningRequest], cand: &QueuedRequest) -> u64 {
        running
            .iter()
            .map(|f| f.req.prompt_len + f.req.output_len)
            .sum::<u64>()
            + cand.req.prompt_len
            + cand.req.output_len
    }

    macro_rules! faults_due {
        () => {
            if !clean {
                apply_due_faults(
                    events,
                    &mut next_event,
                    &mut books,
                    &mut stream,
                    &mut registry,
                    retry,
                    engine,
                    &mut now,
                    &mut pending,
                    &mut running,
                    &mut rejections,
                );
            }
        };
    }

    while !pending.is_empty() || !running.is_empty() {
        faults_due!();
        // Admission phase.
        'admit: while !pending.is_empty() {
            if pending[0].req.arrival_s > now && running.is_empty() {
                // Idle: jump to the next arrival.
                now = pending[0].req.arrival_s;
                faults_due!();
            }
            let arrived = pending.partition_point(|p| p.req.arrival_s <= now);
            if arrived == 0 || running.len() >= max_batch {
                break;
            }
            // Streaming admission is paced: at most one prefilling resident
            // per chunk slot. Without the cap the loop admits the whole
            // queue the moment it arrives (admission itself costs no time
            // under chunked prefill), and the eagerly-reserved KV of
            // low-priority residents blocks late interactive arrivals —
            // the exact tail chunked prefill is meant to cut. Held
            // admissions stay in `pending`, where the policy keeps
            // reordering them as chunks drain.
            if stream.is_some()
                && running.iter().filter(|f| f.is_prefilling()).count()
                    >= engine.micro_batches().max(1) as usize
            {
                break;
            }
            // Backoff gating: fault victims waiting out their backoff are
            // invisible to the policy until `not_before_s`. On the clean
            // path every `not_before_s` is 0, so the view is the plain
            // arrived slice and no gating work happens.
            let picked = if clean {
                policy.select(&pending[..arrived], &running, now)
            } else {
                let eligible: Vec<usize> = (0..arrived)
                    .filter(|&i| pending[i].not_before_s <= now)
                    .collect();
                let view: Vec<QueuedRequest> = eligible.iter().map(|&i| pending[i]).collect();
                policy.select(&view, &running, now).map(|vi| {
                    assert!(vi < view.len(), "policy selected an unarrived request");
                    eligible[vi]
                })
            };
            let Some(pick) = picked else {
                if running.is_empty() {
                    // The engine is idle and the policy holds admission (or
                    // every eligible request is waiting out a backoff):
                    // jump to whatever ends the hold first — the next
                    // arrival, the earliest backoff expiry, or the next
                    // fault event (a repair can end a brownout).
                    let mut wake = pending
                        .iter()
                        .find(|p| p.req.arrival_s > now)
                        .map(|p| p.req.arrival_s);
                    if !clean {
                        let backoff = pending[..arrived]
                            .iter()
                            .map(|p| p.not_before_s)
                            .filter(|&t| t > now)
                            .fold(f64::INFINITY, f64::min);
                        if backoff.is_finite() {
                            wake = Some(wake.map_or(backoff, |w| w.min(backoff)));
                        }
                        if next_event < events.len() {
                            let ev = events[next_event].at_s;
                            wake = Some(wake.map_or(ev, |w| w.min(ev)));
                        }
                    }
                    if let Some(t) = wake {
                        now = now.max(t);
                        faults_due!();
                        continue 'admit;
                    }
                    // Nothing will ever wake the engine again: the policy
                    // held admission with no future arrival, backoff or
                    // fault left. Shed the queue with a typed rejection
                    // instead of panicking or spinning forever.
                    for q in pending.drain(..) {
                        rejections.push(Rejection {
                            id: q.req.id,
                            reason: RejectReason::PolicyHold,
                        });
                        if let Some(reg) = registry.as_mut() {
                            reg.release(q.req.id);
                        }
                        if !clean {
                            books.resolve_victim(q.req.id, now);
                        }
                    }
                    break 'admit;
                }
                break;
            };
            assert!(pick < arrived, "policy selected an unarrived request");
            let cand = pending[pick];

            // A request whose lifetime KV demand exceeds capacity can never
            // run: reject it up front, before it evicts innocent victims.
            // Judged against *full* capacity — a degraded deployment may
            // recover, so the verdict must not depend on the fault state.
            if cand.req.prompt_len + cand.req.output_len > capacity {
                rejections.push(Rejection {
                    id: cand.req.id,
                    reason: RejectReason::Oversized,
                });
                pending.remove(pick);
                if !clean {
                    books.resolve_victim(cand.req.id, now);
                }
                continue 'admit;
            }

            // SLO-aware brownout: while a rank is down, fresh best-effort
            // (Batch-class) arrivals are shed so the degraded capacity
            // serves SLO-carrying traffic; fault victims keep their retry
            // path regardless of class.
            if !clean
                && !books.state.dead.is_empty()
                && cand.retries == 0
                && cand.req.priority == PriorityClass::Batch
            {
                rejections.push(Rejection {
                    id: cand.req.id,
                    reason: RejectReason::BrownoutShed,
                });
                books.rob.shed += 1;
                pending.remove(pick);
                continue 'admit;
            }

            // Capacity re-planned around dead ranks (integer scaling; full
            // capacity — the same u64 — while every rank is alive).
            let cap_now = if clean || books.state.dead.is_empty() {
                capacity
            } else {
                books.state.scaled_capacity(capacity)
            };

            // Preempt victims until the candidate fits or the policy (or
            // the per-request cap, as a backstop for custom policies that
            // name a pinned victim) refuses. Each eviction re-inserts the
            // victim into `pending` by arrival, so the candidate's index is
            // tracked through the insertions rather than re-located.
            //
            // Streaming mode adds a second gate behind the scalar one: the
            // candidate's whole-lifetime KV must also reserve real pages on
            // every alive rank. The reservation is sticky — once taken it
            // is kept across further fit checks, and released only if the
            // candidate ultimately fails to admit.
            let mut cand_idx = pick;
            let mut evictions_left = running.len();
            let mut reserved = false;
            macro_rules! cand_fits {
                () => {{
                    if kv_demand(&running, &cand) > cap_now {
                        false
                    } else if let Some(s) = stream.as_mut() {
                        if !reserved {
                            reserved = s.try_reserve(&cand);
                        }
                        reserved
                    } else {
                        true
                    }
                }};
            }
            while !cand_fits!() && evictions_left > 0 {
                let Some(vi) = policy.victim(&cand, &running, now) else {
                    break;
                };
                if running[vi].preemptions >= MAX_PREEMPTIONS {
                    break;
                }
                let victim = running.remove(vi);
                if let Some(s) = stream.as_mut() {
                    s.unreserve(victim.req.id);
                }
                preemptions += 1;
                // Page-out preemption pays the host-bound PCIe transfer at
                // eviction time — the victim's pages must land in host
                // memory before the candidate can take them, delaying the
                // whole engine *now*. The matching page-in is charged when
                // the victim resumes. (The pre-split accounting lumped both
                // transfers at resume, understating the eviction-side
                // stall; pinned by `pageout_is_charged_at_both_ends`.)
                if policy.preemption_mode() == PreemptionMode::PageOut {
                    now += engine.kv_swap_s(victim.kv_tokens());
                }
                let back = QueuedRequest {
                    req: victim.req,
                    resume_generated: victim.generated,
                    preemptions: victim.preemptions + 1,
                    first_admitted_s: Some(victim.first_admitted_s),
                    first_token_s: victim.first_token_s,
                    retries: victim.retries,
                    not_before_s: 0.0,
                };
                let pos = pending.partition_point(|p| p.req.arrival_s <= back.req.arrival_s);
                pending.insert(pos, back);
                if pos <= cand_idx {
                    cand_idx += 1;
                }
                evictions_left -= 1;
            }

            if !cand_fits!() {
                // A stranded reservation (scalar gate failed after the
                // shards accepted) must be handed back before the hold.
                if reserved {
                    if let Some(s) = stream.as_mut() {
                        s.unreserve(cand.req.id);
                    }
                }
                if stream.is_some() && clean && running.is_empty() {
                    // A lone non-oversized candidate always fits empty
                    // shards on a clean deployment (the scalar capacity is
                    // the min over per-rank shard capacities), so this is
                    // unreachable — but a silent `break 'admit` here would
                    // spin forever, so shed with a typed rejection instead.
                    debug_assert!(false, "lone candidate refused by empty shards");
                    rejections.push(Rejection {
                        id: cand.req.id,
                        reason: RejectReason::CapacityLost,
                    });
                    if let Some(reg) = registry.as_mut() {
                        reg.release(cand.req.id);
                    }
                    pending.remove(cand_idx);
                    continue 'admit;
                }
                if !clean && running.is_empty() {
                    // Degraded capacity cannot hold even a lone candidate
                    // that fits the healthy deployment. Wait for the next
                    // fault event (a repair restores capacity); with none
                    // left, the capacity is gone for good — typed
                    // rejection, not an infinite stall.
                    if next_event < events.len() {
                        now = now.max(events[next_event].at_s);
                        faults_due!();
                    } else {
                        rejections.push(Rejection {
                            id: cand.req.id,
                            reason: RejectReason::CapacityLost,
                        });
                        if let Some(reg) = registry.as_mut() {
                            reg.release(cand.req.id);
                        }
                        pending.remove(cand_idx);
                        books.resolve_victim(cand.req.id, now);
                    }
                    continue 'admit;
                }
                // The candidate fits an empty batch (oversized requests were
                // rejected above), so this hold always ends as completions
                // or further preemptions free KV.
                break 'admit;
            }

            // Admit: fresh requests pay prefill; resumed requests pay the
            // policy's preferred KV recovery. Fault victims *always*
            // recompute — the failed rank's shard is gone, so there is
            // nothing to page back in.
            debug_assert_eq!(pending[cand_idx], cand, "candidate index tracked");
            let q = pending.remove(cand_idx);
            if !clean {
                books.resolve_victim(q.req.id, now);
            }
            // Prefix-cache lookup: a fresh prefill that declares a shared
            // prefix may fork the cached copy and prefill only the suffix.
            // Fault-retry recomputes stay full-price — the dead rank's KV
            // (cached prefixes included) is gone.
            let mut prefix_saved = 0u64;
            if let Some(reg) = registry.as_mut() {
                if q.resume_generated == 0 && (clean || q.retries == 0) {
                    prefix_saved = reg.admit(
                        q.req.id,
                        q.req.prefix_hash,
                        q.req.prefix_len,
                        q.req.prompt_len,
                    );
                }
            }
            let mut cost = if !clean && q.retries > 0 {
                books.rob.recomputed_tokens += q.kv_tokens_on_admit();
                engine.prefill_ms(1, q.kv_tokens_on_admit()) / 1e3
            } else if q.resume_generated == 0 {
                engine.prefill_ms(1, q.req.prompt_len.saturating_sub(prefix_saved).max(1)) / 1e3
            } else {
                match policy.preemption_mode() {
                    PreemptionMode::Recompute => engine.prefill_ms(1, q.kv_tokens_on_admit()) / 1e3,
                    // Page-in only: the outbound transfer was charged when
                    // this request was evicted.
                    PreemptionMode::PageOut => engine.kv_swap_s(q.kv_tokens_on_admit()),
                }
            };
            if !clean && !books.state.dead.is_empty() {
                cost *= books.state.compute_slowdown();
            }
            // Streaming mode defers a *fresh* prefill: instead of charging
            // the whole cost serially at admission, the request enters the
            // batch still prefilling and pays `cost / n_chunks` per chunk
            // as chunks ride the pipeline's micro-batch slots between
            // decode steps. Resumes (page-in, recompute) stay serial — they
            // rebuild KV, they don't stream the prompt through the stages.
            // Classes opted out via `EngineBuilder::whole_prefill_for` also
            // stay serial: their prompts take the legacy admission charge
            // while the rest of the traffic keeps chunking.
            let mut chunks_left = 0u32;
            match stream.as_mut() {
                Some(s) if q.resume_generated == 0 && !engine.whole_prefill_for(q.req.priority) => {
                    chunks_left = s.n_chunks;
                    s.chunk_cost.insert(q.req.id, cost / f64::from(s.n_chunks));
                }
                _ => now += cost,
            }
            running.push(RunningRequest {
                req: q.req,
                admitted_s: now,
                generated: q.resume_generated,
                preemptions: q.preemptions,
                first_admitted_s: q.first_admitted_s.unwrap_or(now),
                first_token_s: q.first_token_s,
                retries: q.retries,
                prefill_chunks_left: chunks_left,
            });
        }
        peak_batch = peak_batch.max(running.len());
        if running.is_empty() {
            if pending.is_empty() {
                break;
            }
            continue;
        }

        // Chunked prefill: between decode steps, up to `micro_batches`
        // prefill chunks ride the pipeline's micro-batch slots, most
        // urgent resident first (priority class, then earliest arrival).
        // Chunk granularity is the TTFT win — an interactive prompt's
        // chunks overtake a long batch prompt mid-prefill instead of
        // queueing behind its whole prefill.
        if stream.is_some() {
            for _ in 0..engine.micro_batches().max(1) {
                let Some(next) = running
                    .iter_mut()
                    .filter(|f| f.is_prefilling())
                    .max_by(|a, b| {
                        a.req
                            .priority
                            .rank()
                            .cmp(&b.req.priority.rank())
                            .then_with(|| {
                                b.req
                                    .arrival_s
                                    .partial_cmp(&a.req.arrival_s)
                                    .expect("finite")
                            })
                            .then_with(|| b.req.id.cmp(&a.req.id))
                    })
                else {
                    break;
                };
                let id = next.req.id;
                next.prefill_chunks_left -= 1;
                let chunk = stream
                    .as_ref()
                    .and_then(|s| s.chunk_cost.get(&id))
                    .copied()
                    .expect("streaming resident has a chunk cost");
                now += chunk;
            }
        }

        // One decode step for the batch's decode-ready subset (residents
        // still mid-prefill occupy KV but don't decode yet; on the legacy
        // path every resident has zero chunks left, so the filter is the
        // identity and the arithmetic below is bit-for-bit the old loop).
        let batch = running.iter().filter(|f| !f.is_prefilling()).count() as u64;
        if batch == 0 {
            // Whole batch still prefilling: chunks advanced time above, so
            // the loop makes progress without a decode step.
            continue;
        }
        let mean_context: u64 = running
            .iter()
            .filter(|f| !f.is_prefilling())
            .map(|f| f.req.prompt_len + f.generated)
            .sum::<u64>()
            / batch;
        let bucket = (mean_context / 256).max(1) * 256;
        let key = (engine.step_cache_key(batch), bucket);
        if step_cache.contains_key(&key) {
            cache_stats.hits += 1;
        } else {
            cache_stats.misses += 1;
        }
        let (ms, step_comm_ms) = *step_cache
            .entry(key)
            .or_insert_with(|| engine.step_cost_priced(key, batch, bucket));
        if clean || books.state.is_clean() {
            now += ms / 1e3;
            comm_s += step_comm_ms / 1e3;
        } else {
            // Survivors absorb the dead ranks' compute; the communication
            // share stretches by the degraded-link factor (same model as
            // `parallel::allreduce_us_degraded`).
            let slow = if books.state.dead.is_empty() {
                1.0
            } else {
                books.state.compute_slowdown()
            };
            let eff_ms = (ms - step_comm_ms) * slow + step_comm_ms * books.state.link_factor;
            now += eff_ms / 1e3;
            comm_s += step_comm_ms * books.state.link_factor / 1e3;
        }
        output_tokens += batch;

        // Advance and retire (decode-ready residents only; identity filter
        // on the legacy path).
        for f in running.iter_mut().filter(|f| !f.is_prefilling()) {
            f.generated += 1;
            if f.first_token_s.is_none() {
                f.first_token_s = Some(now);
            }
        }
        running.retain(|f| {
            if !f.is_prefilling() && f.generated >= f.req.output_len {
                if let Some(s) = stream.as_mut() {
                    s.unreserve(f.req.id);
                }
                if let Some(reg) = registry.as_mut() {
                    reg.release(f.req.id);
                }
                completions.push(complete(f, now));
                false
            } else {
                true
            }
        });
    }

    if !clean {
        // Close the books: a run can end while degraded or with a recovery
        // window still open (every victim rejected late in the run).
        if !books.state.dead.is_empty() {
            books.rob.downtime_s += now - books.state.degraded_since;
        }
        if let Some(t0) = books.recover_started.take() {
            books.rob.time_to_recover_s += now - t0;
            books.rob.recoveries += 1;
        }
    }

    finish_report(
        policy.name(),
        now,
        output_tokens,
        peak_batch,
        comm_s,
        preemptions,
        rejections,
        books.rob,
        cache_stats,
        registry.map(|r| r.stats()).unwrap_or_default(),
        completions,
    )
}

/// A request in flight (legacy reference loop only).
#[derive(Debug, Clone, Copy)]
struct InFlight {
    req: Request,
    admitted_s: f64,
    generated: u64,
    first_token_s: Option<f64>,
}

/// The original FCFS continuous-batching simulator, kept as a thin shim.
///
/// Prefer the builder path: `ServingEngine::builder().policy(Fcfs).build()`
/// then [`ServingEngine::serve_online`](crate::engine::ServingEngine::serve_online)
/// — it accepts any [`SchedulePolicy`] and carries the batch cap with the
/// engine. [`ContinuousBatcher::run`] delegates there with [`Fcfs`], so
/// downstream code keeps compiling unchanged.
#[derive(Debug)]
pub struct ContinuousBatcher<'a> {
    engine: &'a ServingEngine,
    /// Hard cap on concurrent sequences (scheduler config).
    pub max_batch: usize,
}

impl<'a> ContinuousBatcher<'a> {
    /// Creates a batcher over an engine deployment.
    ///
    /// Superseded by [`ServingEngine::builder`](crate::engine::ServingEngine::builder),
    /// which folds the batcher's configuration into the engine itself.
    pub fn new(engine: &'a ServingEngine) -> Self {
        ContinuousBatcher {
            engine,
            max_batch: 64,
        }
    }

    /// Runs the arrival trace to completion under FCFS.
    ///
    /// Delegates to the policy-generic [`run_policy`] loop with [`Fcfs`];
    /// bit-compatibility with the pre-trait implementation is pinned by
    /// [`ContinuousBatcher::run_reference`] and the `schedule_policies`
    /// proptest suite.
    pub fn run(&self, arrivals: Vec<Request>) -> ScheduleReport {
        run_policy(self.engine, &Fcfs, self.max_batch, arrivals)
    }

    /// The frozen pre-trait FCFS loop, kept verbatim as the regression
    /// oracle for [`run_policy`]'s bit-compatibility proptest. Not for new
    /// code — use [`ContinuousBatcher::run`] or the builder path.
    pub fn run_reference(&self, mut arrivals: Vec<Request>) -> ScheduleReport {
        arrivals.sort_by(|a, b| a.arrival_s.partial_cmp(&b.arrival_s).expect("finite"));
        let capacity = self.engine.kv_capacity_tokens();
        let mut queue: VecDeque<Request> = arrivals.iter().copied().collect();
        let mut running: Vec<InFlight> = Vec::new();
        let mut completions = Vec::new();
        let mut now = 0.0f64;
        let mut peak_batch = 0usize;
        let mut output_tokens = 0u64;

        // Cache step times: keyed by (batch, context bucket). The raw-batch
        // key is part of the frozen arithmetic; on the single-stage engines
        // this oracle is compared on, it coincides with
        // `ServingEngine::step_cache_key`, so the hit/miss counters stay
        // bit-compatible with the generic loop's.
        let mut step_cache: HashMap<(u64, u64), f64> = HashMap::new();
        let mut cache_stats = StepCacheStats::default();

        while !queue.is_empty() || !running.is_empty() {
            // Admit while capacity and the batch cap allow.
            while let Some(next) = queue.front() {
                if next.arrival_s > now && running.is_empty() {
                    // Idle: jump to the next arrival.
                    now = next.arrival_s;
                }
                if next.arrival_s > now || running.len() >= self.max_batch {
                    break;
                }
                let demand: u64 = running
                    .iter()
                    .map(|f| f.req.prompt_len + f.req.output_len)
                    .sum::<u64>()
                    + next.prompt_len
                    + next.output_len;
                if demand > capacity {
                    break;
                }
                let req = queue.pop_front().expect("checked front");
                now += self.engine.prefill_ms(1, req.prompt_len) / 1e3;
                running.push(InFlight {
                    req,
                    admitted_s: now,
                    generated: 0,
                    first_token_s: None,
                });
            }
            peak_batch = peak_batch.max(running.len());
            if running.is_empty() {
                continue;
            }

            // One decode step for the whole batch.
            let batch = running.len() as u64;
            let mean_context: u64 = running
                .iter()
                .map(|f| f.req.prompt_len + f.generated)
                .sum::<u64>()
                / batch;
            let bucket = (mean_context / 256).max(1) * 256;
            if step_cache.contains_key(&(batch, bucket)) {
                cache_stats.hits += 1;
            } else {
                cache_stats.misses += 1;
            }
            let ms = *step_cache
                .entry((batch, bucket))
                .or_insert_with(|| self.engine.decode_step(batch, bucket).total_ms());
            now += ms / 1e3;
            output_tokens += batch;

            // Advance and retire.
            for f in running.iter_mut() {
                f.generated += 1;
                if f.first_token_s.is_none() {
                    f.first_token_s = Some(now);
                }
            }
            running.retain(|f| {
                if f.generated >= f.req.output_len {
                    let view = RunningRequest {
                        req: f.req,
                        admitted_s: f.admitted_s,
                        generated: f.generated,
                        preemptions: 0,
                        first_admitted_s: f.admitted_s,
                        first_token_s: f.first_token_s,
                        retries: 0,
                        prefill_chunks_left: 0,
                    };
                    completions.push(complete(&view, now));
                    false
                } else {
                    true
                }
            });
        }

        finish_report(
            Fcfs.name(),
            now,
            output_tokens,
            peak_batch,
            0.0,
            0,
            Vec::new(),
            RobustnessStats::default(),
            cache_stats,
            PrefixStats::default(),
            completions,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cluster::GpuCluster;
    use crate::engine::EngineKind;
    use crate::policy::{PreemptiveSjf, Priority, SloEdf};
    use zipserv_gpu_sim::device::Gpu;
    use zipserv_kernels::shapes::LlmModel;

    fn engine(kind: EngineKind) -> ServingEngine {
        ServingEngine::new(kind, LlmModel::Llama31_8b, GpuCluster::single(Gpu::Rtx4090))
    }

    #[test]
    fn arrivals_are_sorted_and_rate_scaled() {
        let a = poisson_arrivals(2.0, 200, 128, 64, 9);
        assert_eq!(a.len(), 200);
        for w in a.windows(2) {
            assert!(w[1].arrival_s >= w[0].arrival_s);
        }
        // Mean inter-arrival ~ 1/rate.
        let span = a.last().expect("non-empty").arrival_s;
        assert!((span / 200.0 - 0.5).abs() < 0.15, "span {span}");
    }

    #[test]
    fn all_requests_complete() {
        let zip = engine(EngineKind::ZipServ);
        let batcher = ContinuousBatcher::new(&zip);
        let report = batcher.run(poisson_arrivals(4.0, 40, 128, 32, 3));
        assert_eq!(report.completions.len(), 40);
        assert!(report.peak_batch >= 2, "batching should occur");
        assert!(report.throughput_tps > 0.0);
        assert_eq!(report.policy, "fcfs");
        assert_eq!(report.preemptions, 0);
        assert!(report.rejected.is_empty());
    }

    #[test]
    fn percentiles_are_ordered() {
        let zip = engine(EngineKind::ZipServ);
        let report = ContinuousBatcher::new(&zip).run(poisson_arrivals(6.0, 60, 128, 32, 5));
        let p50 = report.latency_percentile(0.5).expect("has completions");
        let p95 = report.latency_percentile(0.95).expect("has completions");
        assert!(p50 <= p95);
        assert!(p50 > 0.0);
        let t50 = report.ttft_percentile(0.5).expect("has completions");
        assert!(t50 <= p50, "first token no later than last");
    }

    #[test]
    fn empty_report_yields_none_not_panic() {
        let report = finish_report(
            "fcfs",
            0.0,
            0,
            0,
            0.0,
            0,
            Vec::new(),
            RobustnessStats::default(),
            StepCacheStats::default(),
            PrefixStats::default(),
            Vec::new(),
        );
        assert_eq!(report.latency_percentile(0.99), None);
        assert_eq!(report.ttft_percentile(0.5), None);
        assert_eq!(report.mean_queue_s(), None);
        assert_eq!(report.slo_attainment(), None);
        assert_eq!(
            report.class_latency_percentile(PriorityClass::Batch, 0.5),
            None
        );
        assert!(report.per_class().is_empty());
        // Degenerate-duration guards for the robustness views.
        assert_eq!(report.availability(), 1.0);
        assert_eq!(report.goodput_tps(), 0.0);
        assert!(report.rejected_for(RejectReason::Oversized).is_empty());
    }

    #[test]
    #[should_panic(expected = "percentile in [0,1]")]
    fn out_of_range_percentile_still_panics() {
        let zip = engine(EngineKind::ZipServ);
        let report = ContinuousBatcher::new(&zip).run(poisson_arrivals(4.0, 5, 64, 8, 3));
        let _ = report.latency_percentile(1.5);
    }

    #[test]
    fn zipserv_sustains_load_better_than_vllm() {
        // At a load that stresses KV capacity, the compressed engine admits
        // more concurrent sequences and queues less.
        let arrivals = poisson_arrivals(8.0, 60, 1024, 256, 11);
        let zip = engine(EngineKind::ZipServ);
        let vllm = engine(EngineKind::Vllm);
        let rz = ContinuousBatcher::new(&zip).run(arrivals.clone());
        let rv = ContinuousBatcher::new(&vllm).run(arrivals);
        assert!(
            rz.throughput_tps > rv.throughput_tps,
            "{} vs {}",
            rz.throughput_tps,
            rv.throughput_tps
        );
        assert!(
            rz.latency_percentile(0.95).expect("completions")
                < rv.latency_percentile(0.95).expect("completions")
        );
    }

    #[test]
    fn light_load_has_no_queueing() {
        let zip = engine(EngineKind::ZipServ);
        let report = ContinuousBatcher::new(&zip).run(poisson_arrivals(0.05, 5, 64, 16, 2));
        let q = report.mean_queue_s().expect("completions");
        assert!(q < 0.2, "queue {q}");
    }

    #[test]
    fn run_matches_reference_on_a_smoke_trace() {
        // The full randomized bit-compat check lives in the
        // `schedule_policies` integration suite; this is the fast smoke.
        let zip = engine(EngineKind::ZipServ);
        let batcher = ContinuousBatcher::new(&zip);
        let arrivals = poisson_arrivals(6.0, 30, 512, 64, 13);
        assert_eq!(
            batcher.run(arrivals.clone()),
            batcher.run_reference(arrivals)
        );
    }

    #[test]
    fn run_matches_reference_on_tied_arrivals() {
        // Equal arrival times with out-of-order ids: both loops must keep
        // the stable submission order (legacy sorts stably; Fcfs picks the
        // queue head), so reports match even on ties.
        let zip = engine(EngineKind::ZipServ);
        let batcher = ContinuousBatcher::new(&zip);
        let arrivals = vec![
            Request::new(5, 1.0, 256, 16),
            Request::new(2, 1.0, 128, 32),
            Request::new(9, 0.5, 64, 8),
            Request::new(1, 1.0, 512, 24),
        ];
        assert_eq!(
            batcher.run(arrivals.clone()),
            batcher.run_reference(arrivals)
        );
    }

    #[test]
    fn oversized_request_is_rejected_not_looped() {
        let zip = engine(EngineKind::ZipServ);
        let capacity = zip.kv_capacity_tokens();
        let mut arrivals = poisson_arrivals(4.0, 5, 64, 8, 3);
        arrivals.push(Request::new(99, 0.5, capacity + 1, 1));
        let report = run_policy(&zip, &Fcfs, 64, arrivals);
        assert_eq!(report.rejected, vec![99]);
        assert_eq!(report.completions.len(), 5);
    }

    #[test]
    fn oversized_request_never_evicts_victims() {
        // Under a preemptive policy, a request that can never fit must be
        // rejected up front instead of draining the running batch first.
        let zip = engine(EngineKind::ZipServ);
        let capacity = zip.kv_capacity_tokens();
        let mut arrivals = poisson_arrivals(4.0, 8, 512, 256, 7);
        // output_len 1 makes it the shortest job, so SJF selects it eagerly.
        arrivals.push(Request::new(99, 0.5, capacity + 1, 1));
        let report = run_policy(&zip, &PreemptiveSjf::default(), 64, arrivals);
        assert_eq!(report.rejected, vec![99]);
        assert_eq!(report.completions.len(), 8);
        assert_eq!(report.preemptions, 0, "no victims for a hopeless candidate");
    }

    #[test]
    fn all_policies_complete_every_request() {
        let zip = engine(EngineKind::ZipServ);
        let arrivals: Vec<Request> = poisson_arrivals(8.0, 40, 512, 64, 21)
            .into_iter()
            .enumerate()
            .map(|(i, r)| {
                let class = PriorityClass::ALL[i % 3];
                r.with_priority(class).with_slo(Slo::new(4.0, 0.25))
            })
            .collect();
        let policies: Vec<Box<dyn SchedulePolicy>> = vec![
            Box::new(Fcfs),
            Box::new(Priority::default()),
            Box::new(SloEdf::default()),
            Box::new(PreemptiveSjf::default()),
            Box::new(PreemptiveSjf {
                mode: PreemptionMode::PageOut,
            }),
        ];
        for p in &policies {
            let report = run_policy(&zip, p.as_ref(), 64, arrivals.clone());
            assert_eq!(report.completions.len(), 40, "{}", p.name());
            assert!(report.rejected.is_empty(), "{}", p.name());
            assert!(report.slo_attainment().is_some(), "{}", p.name());
            // Every completion accounts its preemptions within the cap + 1
            // final admission.
            for c in &report.completions {
                assert!(c.preemptions <= MAX_PREEMPTIONS, "{}", p.name());
                assert!(c.ttft_s > 0.0 && c.ttft_s <= c.latency_s, "{}", p.name());
            }
        }
    }
}

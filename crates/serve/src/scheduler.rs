//! Online serving: a continuous-batching scheduler over the engine models.
//!
//! §6.5 benchmarks static batches; production serving (vLLM's actual mode)
//! admits requests as they arrive, joins them to the running decode batch,
//! and evicts them on completion. This module simulates that loop in
//! discrete decode-step time, with KV-capacity admission control — which is
//! exactly where ZipServ's freed weight memory turns into admission
//! headroom and lower queueing delay.

use crate::engine::ServingEngine;
use std::collections::VecDeque;

/// One serving request.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Request {
    /// Request id.
    pub id: u64,
    /// Arrival time in seconds.
    pub arrival_s: f64,
    /// Prompt tokens.
    pub prompt_len: u64,
    /// Output tokens to generate.
    pub output_len: u64,
}

/// Per-request completion record.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Completion {
    /// Request id.
    pub id: u64,
    /// Time spent queued before admission (s).
    pub queue_s: f64,
    /// End-to-end latency from arrival to last token (s).
    pub latency_s: f64,
}

/// Aggregate results of one simulated serving run.
#[derive(Debug, Clone, PartialEq)]
pub struct ScheduleReport {
    /// All completions.
    pub completions: Vec<Completion>,
    /// Simulated wall-clock duration (s).
    pub duration_s: f64,
    /// Output tokens per second over the run.
    pub throughput_tps: f64,
    /// Peak concurrent batch size observed.
    pub peak_batch: usize,
}

impl ScheduleReport {
    /// Latency percentile (`q` in `[0, 1]`).
    ///
    /// # Panics
    ///
    /// Panics if there are no completions or `q` is out of range.
    pub fn latency_percentile(&self, q: f64) -> f64 {
        assert!((0.0..=1.0).contains(&q), "percentile in [0,1]");
        assert!(!self.completions.is_empty(), "no completions");
        let mut lat: Vec<f64> = self.completions.iter().map(|c| c.latency_s).collect();
        lat.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        let idx = ((lat.len() - 1) as f64 * q).round() as usize;
        lat[idx]
    }

    /// Mean queueing delay before admission.
    pub fn mean_queue_s(&self) -> f64 {
        if self.completions.is_empty() {
            return 0.0;
        }
        self.completions.iter().map(|c| c.queue_s).sum::<f64>() / self.completions.len() as f64
    }
}

/// Deterministic Poisson-process arrival generator (xorshift-based, no
/// external RNG needed).
pub fn poisson_arrivals(
    rate_per_s: f64,
    count: usize,
    prompt_len: u64,
    output_len: u64,
    seed: u64,
) -> Vec<Request> {
    assert!(rate_per_s > 0.0, "rate must be positive");
    let mut state = seed | 1;
    let mut uniform = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        ((state >> 11) as f64 / (1u64 << 53) as f64).max(1e-12)
    };
    let mut t = 0.0;
    (0..count)
        .map(|id| {
            t += -uniform().ln() / rate_per_s; // exponential inter-arrival
            Request {
                id: id as u64,
                arrival_s: t,
                prompt_len,
                output_len,
            }
        })
        .collect()
}

/// A request in flight.
#[derive(Debug, Clone, Copy)]
struct InFlight {
    req: Request,
    admitted_s: f64,
    generated: u64,
}

/// The continuous-batching simulator.
#[derive(Debug)]
pub struct ContinuousBatcher<'a> {
    engine: &'a ServingEngine,
    /// Hard cap on concurrent sequences (scheduler config).
    pub max_batch: usize,
}

impl<'a> ContinuousBatcher<'a> {
    /// Creates a batcher over an engine deployment.
    pub fn new(engine: &'a ServingEngine) -> Self {
        ContinuousBatcher {
            engine,
            max_batch: 64,
        }
    }

    /// Runs the arrival trace to completion.
    ///
    /// Admission control: a request joins only if the whole batch's peak KV
    /// demand stays within capacity. Each admitted request first pays its
    /// prefill, then generates one token per decode step.
    pub fn run(&self, mut arrivals: Vec<Request>) -> ScheduleReport {
        arrivals.sort_by(|a, b| a.arrival_s.partial_cmp(&b.arrival_s).expect("finite"));
        let capacity = self.engine.kv_capacity_tokens();
        let mut queue: VecDeque<Request> = arrivals.iter().copied().collect();
        let mut running: Vec<InFlight> = Vec::new();
        let mut completions = Vec::new();
        let mut now = 0.0f64;
        let mut peak_batch = 0usize;
        let mut output_tokens = 0u64;

        // Cache step times: keyed by (batch, context bucket).
        let mut step_cache: std::collections::HashMap<(u64, u64), f64> =
            std::collections::HashMap::new();

        while !queue.is_empty() || !running.is_empty() {
            // Admit while capacity and the batch cap allow.
            while let Some(next) = queue.front() {
                if next.arrival_s > now && running.is_empty() {
                    // Idle: jump to the next arrival.
                    now = next.arrival_s;
                }
                if next.arrival_s > now || running.len() >= self.max_batch {
                    break;
                }
                let demand: u64 = running
                    .iter()
                    .map(|f| f.req.prompt_len + f.req.output_len)
                    .sum::<u64>()
                    + next.prompt_len
                    + next.output_len;
                if demand > capacity {
                    break;
                }
                let req = queue.pop_front().expect("checked front");
                now += self.engine.prefill_ms(1, req.prompt_len) / 1e3;
                running.push(InFlight {
                    req,
                    admitted_s: now,
                    generated: 0,
                });
            }
            peak_batch = peak_batch.max(running.len());
            if running.is_empty() {
                continue;
            }

            // One decode step for the whole batch.
            let batch = running.len() as u64;
            let mean_context: u64 = running
                .iter()
                .map(|f| f.req.prompt_len + f.generated)
                .sum::<u64>()
                / batch;
            let bucket = (mean_context / 256).max(1) * 256;
            let ms = *step_cache
                .entry((batch, bucket))
                .or_insert_with(|| self.engine.decode_step(batch, bucket).total_ms());
            now += ms / 1e3;
            output_tokens += batch;

            // Advance and retire.
            for f in running.iter_mut() {
                f.generated += 1;
            }
            running.retain(|f| {
                if f.generated >= f.req.output_len {
                    completions.push(Completion {
                        id: f.req.id,
                        queue_s: f.admitted_s - f.req.arrival_s,
                        latency_s: now - f.req.arrival_s,
                    });
                    false
                } else {
                    true
                }
            });
        }

        ScheduleReport {
            duration_s: now,
            throughput_tps: if now > 0.0 {
                output_tokens as f64 / now
            } else {
                0.0
            },
            peak_batch,
            completions,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cluster::GpuCluster;
    use crate::engine::EngineKind;
    use zipserv_gpu_sim::device::Gpu;
    use zipserv_kernels::shapes::LlmModel;

    fn engine(kind: EngineKind) -> ServingEngine {
        ServingEngine::new(kind, LlmModel::Llama31_8b, GpuCluster::single(Gpu::Rtx4090))
    }

    #[test]
    fn arrivals_are_sorted_and_rate_scaled() {
        let a = poisson_arrivals(2.0, 200, 128, 64, 9);
        assert_eq!(a.len(), 200);
        for w in a.windows(2) {
            assert!(w[1].arrival_s >= w[0].arrival_s);
        }
        // Mean inter-arrival ~ 1/rate.
        let span = a.last().expect("non-empty").arrival_s;
        assert!((span / 200.0 - 0.5).abs() < 0.15, "span {span}");
    }

    #[test]
    fn all_requests_complete() {
        let zip = engine(EngineKind::ZipServ);
        let batcher = ContinuousBatcher::new(&zip);
        let report = batcher.run(poisson_arrivals(4.0, 40, 128, 32, 3));
        assert_eq!(report.completions.len(), 40);
        assert!(report.peak_batch >= 2, "batching should occur");
        assert!(report.throughput_tps > 0.0);
    }

    #[test]
    fn percentiles_are_ordered() {
        let zip = engine(EngineKind::ZipServ);
        let report = ContinuousBatcher::new(&zip).run(poisson_arrivals(6.0, 60, 128, 32, 5));
        let p50 = report.latency_percentile(0.5);
        let p95 = report.latency_percentile(0.95);
        assert!(p50 <= p95);
        assert!(p50 > 0.0);
    }

    #[test]
    fn zipserv_sustains_load_better_than_vllm() {
        // At a load that stresses KV capacity, the compressed engine admits
        // more concurrent sequences and queues less.
        let arrivals = poisson_arrivals(8.0, 60, 1024, 256, 11);
        let zip = engine(EngineKind::ZipServ);
        let vllm = engine(EngineKind::Vllm);
        let rz = ContinuousBatcher::new(&zip).run(arrivals.clone());
        let rv = ContinuousBatcher::new(&vllm).run(arrivals);
        assert!(
            rz.throughput_tps > rv.throughput_tps,
            "{} vs {}",
            rz.throughput_tps,
            rv.throughput_tps
        );
        assert!(rz.latency_percentile(0.95) < rv.latency_percentile(0.95));
    }

    #[test]
    fn light_load_has_no_queueing() {
        let zip = engine(EngineKind::ZipServ);
        let report = ContinuousBatcher::new(&zip).run(poisson_arrivals(0.05, 5, 64, 16, 2));
        assert!(report.mean_queue_s() < 0.2, "queue {}", report.mean_queue_s());
    }
}

//! Pluggable scheduling policies for the continuous-batching loop.
//!
//! The ROADMAP calls out "scheduler admits FCFS only; add priority/SLO-aware
//! policies and preemption". This module makes the policy a swappable axis of
//! the experiment instead of a constant baked into the simulator loop: the
//! [`SchedulePolicy`] trait decides admission order and preemption victims,
//! and the loop in [`crate::scheduler`] stays policy-agnostic.
//!
//! Four policies ship in-tree:
//!
//! * [`Fcfs`] — first-come-first-served, bit-compatible with the legacy
//!   [`crate::scheduler::ContinuousBatcher`];
//! * [`Priority`] — strict priority tiers with starvation aging;
//! * [`SloEdf`] — earliest-deadline-first against per-request TTFT SLOs;
//! * [`PreemptiveSjf`] — shortest-remaining-output-first with KV-cache-aware
//!   preemption (recompute or page out the victim's KV pages).

use crate::kvcache::PrefixVictim;
use crate::scheduler::Request;

/// A request may be preempted at most this many times; past the cap it is
/// pinned in the batch so victim churn cannot starve it indefinitely. The
/// in-tree preemptive policies never name a pinned victim; the scheduler
/// loop additionally refuses one as a backstop for custom policies.
pub const MAX_PREEMPTIONS: u32 = 4;

/// Request priority tier, ordered from least to most urgent.
///
/// Tiers are *strict* under the [`Priority`] policy: an `Interactive` request
/// is always admitted before a `Standard` one (modulo starvation aging).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub enum PriorityClass {
    /// Throughput-oriented background work (offline summarization, evals).
    Batch,
    /// The default tier for ordinary traffic.
    #[default]
    Standard,
    /// Latency-critical traffic (chat, agents): jumps every queue.
    Interactive,
}

impl PriorityClass {
    /// All tiers, least to most urgent.
    pub const ALL: [PriorityClass; 3] = [
        PriorityClass::Batch,
        PriorityClass::Standard,
        PriorityClass::Interactive,
    ];

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            PriorityClass::Batch => "batch",
            PriorityClass::Standard => "standard",
            PriorityClass::Interactive => "interactive",
        }
    }

    /// Numeric rank (0 = least urgent). Used by aging arithmetic.
    pub fn rank(self) -> u8 {
        match self {
            PriorityClass::Batch => 0,
            PriorityClass::Standard => 1,
            PriorityClass::Interactive => 2,
        }
    }
}

impl core::fmt::Display for PriorityClass {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.write_str(self.name())
    }
}

/// A per-request latency service-level objective.
///
/// A completion meets its SLO when time-to-first-token stays under `ttft_s`
/// *and* the decode phase averages at most `tpot_s` per subsequent token.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Slo {
    /// Time-to-first-token budget in seconds (queueing + prefill + first step).
    pub ttft_s: f64,
    /// Time-per-output-token budget in seconds for tokens after the first.
    pub tpot_s: f64,
}

impl Slo {
    /// Creates an SLO.
    ///
    /// # Panics
    ///
    /// Panics if either budget is not strictly positive.
    pub fn new(ttft_s: f64, tpot_s: f64) -> Self {
        assert!(ttft_s > 0.0 && tpot_s > 0.0, "SLO budgets must be positive");
        Slo { ttft_s, tpot_s }
    }

    /// The absolute first-token deadline for a request arriving at
    /// `arrival_s` — what [`SloEdf`] sorts by.
    pub fn deadline_s(&self, arrival_s: f64) -> f64 {
        arrival_s + self.ttft_s
    }
}

/// How a preempted request's KV pages are recovered on re-admission.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PreemptionMode {
    /// Drop the victim's KV pages and re-run prefill over
    /// `prompt + generated` tokens when it is re-admitted (vLLM's
    /// recompute preemption). Costs compute, no host traffic.
    #[default]
    Recompute,
    /// Page the victim's KV out to host memory and back over PCIe
    /// (swap preemption). Costs two transfers of the KV footprint.
    PageOut,
}

/// A request waiting for admission (or re-admission after preemption).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QueuedRequest {
    /// The request itself.
    pub req: Request,
    /// Tokens already generated before a preemption (0 for fresh requests).
    pub resume_generated: u64,
    /// How many times this request has been preempted so far.
    pub preemptions: u32,
    /// When the request was first admitted, if ever (survives preemption).
    pub first_admitted_s: Option<f64>,
    /// When the request produced its first token, if ever.
    pub first_token_s: Option<f64>,
    /// Fault-driven re-queues so far (0 for fresh requests and plain
    /// preemption victims). Bounded by
    /// [`RetryPolicy::max_retries`](crate::fault::RetryPolicy).
    pub retries: u32,
    /// Earliest time the request may be re-admitted (retry backoff;
    /// 0 for anything but a fault victim, so fresh requests are always
    /// immediately eligible).
    pub not_before_s: f64,
}

impl QueuedRequest {
    /// Wraps a fresh arrival.
    pub fn fresh(req: Request) -> Self {
        QueuedRequest {
            req,
            resume_generated: 0,
            preemptions: 0,
            first_admitted_s: None,
            first_token_s: None,
            retries: 0,
            not_before_s: 0.0,
        }
    }

    /// Output tokens still to generate.
    pub fn remaining_output(&self) -> u64 {
        self.req.output_len.saturating_sub(self.resume_generated)
    }

    /// KV tokens this request will hold immediately after (re-)admission.
    pub fn kv_tokens_on_admit(&self) -> u64 {
        self.req.prompt_len + self.resume_generated
    }
}

/// A request currently in the decode batch, as seen by policies.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RunningRequest {
    /// The request itself.
    pub req: Request,
    /// When this (re-)admission happened.
    pub admitted_s: f64,
    /// Output tokens generated so far (across preemptions).
    pub generated: u64,
    /// How many times this request has been preempted so far.
    pub preemptions: u32,
    /// When the request was first admitted.
    pub first_admitted_s: f64,
    /// When the request produced its first token, if it has.
    pub first_token_s: Option<f64>,
    /// Fault-driven re-queues this request has survived so far.
    pub retries: u32,
    /// Per-stage prefill chunks still to run before this request joins the
    /// decode batch. Always 0 under the legacy whole-prefill admission;
    /// under chunked prefill (`pp ≥ 2` streaming admission) a freshly
    /// admitted request enters at `pp` chunks and counts down as the
    /// scheduler advances chunks between decode steps — policies can
    /// distinguish mid-prefill residents ([`RunningRequest::is_prefilling`])
    /// from decode-ready ones when picking victims.
    pub prefill_chunks_left: u32,
}

impl RunningRequest {
    /// Output tokens still to generate.
    pub fn remaining_output(&self) -> u64 {
        self.req.output_len.saturating_sub(self.generated)
    }

    /// KV tokens currently held (prompt + generated context).
    pub fn kv_tokens(&self) -> u64 {
        self.req.prompt_len + self.generated
    }

    /// Whether this resident is still streaming prefill chunks (chunked
    /// prefill only; always `false` under legacy whole-prefill admission).
    pub fn is_prefilling(&self) -> bool {
        self.prefill_chunks_left > 0
    }
}

/// An admission/preemption policy for the continuous-batching loop.
///
/// The loop hands the policy the *arrived* queue (every entry's
/// `req.arrival_s <= now`) and the running batch; the policy answers two
/// questions: who is admitted next, and who (if anyone) is evicted to make
/// room. All methods take `&self` — policies are stateless between calls and
/// derive any aging/deadline state from the views and `now`, which keeps
/// them trivially shareable and replayable.
pub trait SchedulePolicy: core::fmt::Debug + Send + Sync {
    /// Short machine-readable name, used in reports and figures.
    fn name(&self) -> &'static str;

    /// Index into `queued` of the next request to admit, or `None` to hold
    /// admission this round. Every entry of `queued` has already arrived,
    /// and the slice is ordered by arrival time (stable: ties keep
    /// submission order, preempted requests re-enter by original arrival).
    fn select(
        &self,
        queued: &[QueuedRequest],
        running: &[RunningRequest],
        now: f64,
    ) -> Option<usize>;

    /// Index into `running` of a victim to preempt so `candidate` can fit,
    /// or `None` to refuse preemption (the default).
    fn victim(
        &self,
        candidate: &QueuedRequest,
        running: &[RunningRequest],
        now: f64,
    ) -> Option<usize> {
        let _ = (candidate, running, now);
        None
    }

    /// How this policy recovers a preempted request's KV pages.
    fn preemption_mode(&self) -> PreemptionMode {
        PreemptionMode::Recompute
    }

    /// Which cached prefix the [`PrefixRegistry`](crate::kvcache::
    /// PrefixRegistry) evicts under pressure — the scheduling policy's
    /// answer to "which victim" for page reclamation. The conservative
    /// default never disturbs prefixes pinned by live forks; work-
    /// conserving policies (SJF) may prefer reclaiming any LRU entry.
    fn prefix_victim(&self) -> PrefixVictim {
        PrefixVictim::ColdPrefix
    }

    /// Clones the policy behind a box (object-safe `Clone`).
    fn clone_box(&self) -> Box<dyn SchedulePolicy>;
}

impl Clone for Box<dyn SchedulePolicy> {
    fn clone(&self) -> Self {
        self.clone_box()
    }
}

/// First-come-first-served admission, no preemption.
///
/// Under this policy the generic loop reproduces the legacy
/// [`crate::scheduler::ContinuousBatcher`] *bit for bit* (verified by the
/// `schedule_policies` proptest suite): the head of the arrival-ordered
/// queue is the only admission candidate — including ties, which keep the
/// legacy stable-sort submission order — so a head request that does not
/// fit blocks everything behind it, exactly like the old hard-coded loop.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Fcfs;

impl SchedulePolicy for Fcfs {
    fn name(&self) -> &'static str {
        "fcfs"
    }

    fn select(
        &self,
        queued: &[QueuedRequest],
        _running: &[RunningRequest],
        _now: f64,
    ) -> Option<usize> {
        // `queued` is arrival-ordered, so the head IS the FCFS choice.
        if queued.is_empty() {
            None
        } else {
            Some(0)
        }
    }

    fn clone_box(&self) -> Box<dyn SchedulePolicy> {
        Box::new(*self)
    }
}

/// Strict priority tiers with starvation aging and optional preemption.
///
/// Admission picks the queued request with the highest *effective* tier —
/// the request's own [`PriorityClass`] promoted one rank per `aging_s`
/// seconds of waiting, so a starving `Batch` request eventually competes
/// with `Interactive` traffic. Within a tier, preempted victims get resume
/// priority over fresh arrivals (they hold sunk prefill work); remaining
/// ties fall back to FCFS. With `preemptive`
/// set, an `Interactive` candidate that cannot fit may evict the running
/// request with the lowest raw tier (ties: the one holding the most KV,
/// so one eviction frees the most pages).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Priority {
    /// Seconds of queueing that promote a request by one tier.
    pub aging_s: f64,
    /// Whether a strictly higher-tier candidate may evict a lower-tier
    /// running request when KV capacity blocks admission.
    pub preemptive: bool,
}

impl Default for Priority {
    fn default() -> Self {
        Priority {
            aging_s: 30.0,
            preemptive: true,
        }
    }
}

impl Priority {
    /// Effective rank after aging: raw rank + one per `aging_s` waited,
    /// saturating at the top tier.
    fn effective_rank(&self, q: &QueuedRequest, now: f64) -> u8 {
        let waited = (now - q.req.arrival_s).max(0.0);
        let bump = if self.aging_s > 0.0 {
            (waited / self.aging_s) as u8
        } else {
            0
        };
        q.req
            .priority
            .rank()
            .saturating_add(bump)
            .min(PriorityClass::Interactive.rank())
    }
}

impl SchedulePolicy for Priority {
    fn name(&self) -> &'static str {
        "priority"
    }

    fn select(
        &self,
        queued: &[QueuedRequest],
        _running: &[RunningRequest],
        now: f64,
    ) -> Option<usize> {
        queued
            .iter()
            .enumerate()
            .max_by(|(_, a), (_, b)| {
                self.effective_rank(a, now)
                    .cmp(&self.effective_rank(b, now))
                    // Resume priority: within a tier, a preempted victim
                    // (who already holds sunk prefill work) beats fresh
                    // arrivals.
                    .then((a.preemptions > 0).cmp(&(b.preemptions > 0)))
                    // Lower arrival wins a tie, so compare reversed.
                    .then(
                        b.req
                            .arrival_s
                            .partial_cmp(&a.req.arrival_s)
                            .expect("finite arrival"),
                    )
                    .then(b.req.id.cmp(&a.req.id))
            })
            .map(|(i, _)| i)
    }

    fn victim(
        &self,
        candidate: &QueuedRequest,
        running: &[RunningRequest],
        _now: f64,
    ) -> Option<usize> {
        if !self.preemptive {
            return None;
        }
        // Only a strictly higher raw tier may evict; aging promotes
        // admission order but never steals someone else's KV pages. Victims
        // already at the preemption cap are pinned and skipped, so one
        // pinned request cannot veto evicting the rest.
        let cand_rank = candidate.req.priority.rank();
        running
            .iter()
            .enumerate()
            .filter(|(_, r)| r.req.priority.rank() < cand_rank && r.preemptions < MAX_PREEMPTIONS)
            .min_by(|(_, a), (_, b)| {
                a.req
                    .priority
                    .rank()
                    .cmp(&b.req.priority.rank())
                    .then(b.kv_tokens().cmp(&a.kv_tokens()))
            })
            .map(|(i, _)| i)
    }

    fn clone_box(&self) -> Box<dyn SchedulePolicy> {
        Box::new(*self)
    }
}

/// Earliest-deadline-first admission against per-request TTFT SLOs.
///
/// Each queued request's deadline is `arrival + slo.ttft_s`; requests
/// without an SLO get `default_ttft_s` as their budget so they still sort
/// deterministically. No preemption: EDF only reorders admission, which is
/// the classic result for meeting deadlines when the system is feasible.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SloEdf {
    /// TTFT budget assumed for requests that carry no [`Slo`].
    pub default_ttft_s: f64,
}

impl Default for SloEdf {
    fn default() -> Self {
        SloEdf {
            default_ttft_s: 10.0,
        }
    }
}

impl SloEdf {
    fn deadline(&self, q: &QueuedRequest) -> f64 {
        match q.req.slo {
            Some(slo) => slo.deadline_s(q.req.arrival_s),
            None => q.req.arrival_s + self.default_ttft_s,
        }
    }
}

impl SchedulePolicy for SloEdf {
    fn name(&self) -> &'static str {
        "slo-edf"
    }

    fn select(
        &self,
        queued: &[QueuedRequest],
        _running: &[RunningRequest],
        _now: f64,
    ) -> Option<usize> {
        queued
            .iter()
            .enumerate()
            .min_by(|(_, a), (_, b)| {
                self.deadline(a)
                    .partial_cmp(&self.deadline(b))
                    .expect("finite deadline")
                    .then(
                        a.req
                            .arrival_s
                            .partial_cmp(&b.req.arrival_s)
                            .expect("finite arrival"),
                    )
                    .then(a.req.id.cmp(&b.req.id))
            })
            .map(|(i, _)| i)
    }

    fn clone_box(&self) -> Box<dyn SchedulePolicy> {
        Box::new(*self)
    }
}

/// Shortest-remaining-output-first with KV-cache-aware preemption.
///
/// Admission gives *resume priority* to preempted victims — a victim
/// re-enters the batch before any fresh arrival, so a long job evicted
/// once cannot starve behind an endless stream of short fresh jobs (the
/// classic SJF pathology; pinned by the `preempted_victim_resumes_before_
/// fresh_arrivals` regression). Among victims, and then among fresh
/// arrivals, the fewest output tokens still to generate wins
/// (resume-aware, so a preempted request near completion sorts ahead of a
/// fresh long job). When the candidate cannot fit, the running request
/// with the *most* remaining output is evicted — but only if it has
/// strictly more remaining work than the candidate, which bounds thrash:
/// every preemption strictly reduces the remaining work of the admitted
/// side. The victim's KV pages are recovered per [`PreemptionMode`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PreemptiveSjf {
    /// How victims' KV pages are recovered (recompute vs PCIe page-out).
    pub mode: PreemptionMode,
}

impl SchedulePolicy for PreemptiveSjf {
    fn name(&self) -> &'static str {
        match self.mode {
            PreemptionMode::Recompute => "preemptive-sjf",
            PreemptionMode::PageOut => "preemptive-sjf-pageout",
        }
    }

    fn select(
        &self,
        queued: &[QueuedRequest],
        _running: &[RunningRequest],
        _now: f64,
    ) -> Option<usize> {
        queued
            .iter()
            .enumerate()
            .min_by(|(_, a), (_, b)| {
                // Resume priority first: preempted victims re-enter before
                // any fresh arrival (false sorts before true).
                (a.preemptions == 0)
                    .cmp(&(b.preemptions == 0))
                    .then(a.remaining_output().cmp(&b.remaining_output()))
                    .then(
                        a.req
                            .arrival_s
                            .partial_cmp(&b.req.arrival_s)
                            .expect("finite arrival"),
                    )
                    .then(a.req.id.cmp(&b.req.id))
            })
            .map(|(i, _)| i)
    }

    fn victim(
        &self,
        candidate: &QueuedRequest,
        running: &[RunningRequest],
        _now: f64,
    ) -> Option<usize> {
        // Pinned victims (at the preemption cap) are skipped rather than
        // letting one pinned long job veto all preemption.
        let cand_remaining = candidate.remaining_output();
        running
            .iter()
            .enumerate()
            .filter(|(_, r)| {
                r.remaining_output() > cand_remaining && r.preemptions < MAX_PREEMPTIONS
            })
            .max_by(|(_, a), (_, b)| {
                a.remaining_output()
                    .cmp(&b.remaining_output())
                    .then(a.kv_tokens().cmp(&b.kv_tokens()))
            })
            .map(|(i, _)| i)
    }

    fn preemption_mode(&self) -> PreemptionMode {
        self.mode
    }

    fn prefix_victim(&self) -> PrefixVictim {
        // SJF already trades sunk work for throughput; its registry
        // reclaims whichever prefix is stalest, pinned or not.
        PrefixVictim::ActiveSequence
    }

    fn clone_box(&self) -> Box<dyn SchedulePolicy> {
        Box::new(*self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn q(id: u64, arrival: f64, out: u64, prio: PriorityClass) -> QueuedRequest {
        QueuedRequest::fresh(Request::new(id, arrival, 128, out).with_priority(prio))
    }

    #[test]
    fn fcfs_picks_the_queue_head() {
        // The loop hands `select` an arrival-ordered queue; FCFS is its head
        // regardless of priority, and holds only on an empty queue.
        let queued = [
            q(2, 1.0, 64, PriorityClass::Batch),
            q(1, 2.0, 64, PriorityClass::Interactive),
        ];
        assert_eq!(Fcfs.select(&queued, &[], 3.0), Some(0));
        assert_eq!(Fcfs.select(&[], &[], 3.0), None);
    }

    #[test]
    fn priority_prefers_higher_tier_then_ages() {
        let p = Priority {
            aging_s: 10.0,
            preemptive: false,
        };
        let queued = [
            q(1, 0.0, 64, PriorityClass::Batch),
            q(2, 5.0, 64, PriorityClass::Standard),
        ];
        // At t=6 the standard request outranks the un-aged batch one.
        assert_eq!(p.select(&queued, &[], 6.0), Some(1));
        // By t=25 the batch request has aged past standard (rank 0+2 > 1+2
        // is capped, but tie then falls to earlier arrival).
        assert_eq!(p.select(&queued, &[], 25.0), Some(0));
    }

    #[test]
    fn edf_sorts_by_deadline() {
        let edf = SloEdf::default();
        let mut a = q(1, 0.0, 64, PriorityClass::Standard);
        a.req = a.req.with_slo(Slo::new(8.0, 0.2));
        let mut b = q(2, 1.0, 64, PriorityClass::Standard);
        b.req = b.req.with_slo(Slo::new(2.0, 0.2));
        // b's deadline (3.0) beats a's (8.0) despite arriving later.
        assert_eq!(edf.select(&[a, b], &[], 1.5), Some(1));
    }

    #[test]
    fn resumed_victims_outrank_fresh_arrivals() {
        // SJF: a preempted victim with 100 tokens left beats a fresh job
        // with 8 — remaining-output order alone would starve the victim
        // behind an endless stream of short arrivals.
        let sjf = PreemptiveSjf::default();
        let mut victim = q(1, 0.0, 128, PriorityClass::Interactive);
        victim.resume_generated = 28; // remaining 100
        victim.preemptions = 1;
        let fresh = q(2, 5.0, 8, PriorityClass::Batch);
        assert_eq!(sjf.select(&[victim, fresh], &[], 6.0), Some(0));
        // Without the preemption marker the short job wins as before.
        let long = q(1, 0.0, 128, PriorityClass::Interactive);
        assert_eq!(sjf.select(&[long, fresh], &[], 6.0), Some(1));

        // Priority: resume priority breaks ties *within* a tier but never
        // inverts tiers.
        let p = Priority {
            aging_s: 1e9,
            preemptive: true,
        };
        let mut std_victim = q(3, 0.0, 64, PriorityClass::Standard);
        std_victim.preemptions = 1;
        let std_fresh = q(4, 0.0, 64, PriorityClass::Standard);
        let interactive = q(5, 9.0, 64, PriorityClass::Interactive);
        assert_eq!(
            p.select(&[std_victim, std_fresh], &[], 10.0),
            Some(0),
            "same tier: victim first"
        );
        assert_eq!(
            p.select(&[std_victim, interactive], &[], 10.0),
            Some(1),
            "higher tier still wins over a resumed lower tier"
        );
    }

    #[test]
    fn sjf_victim_must_have_strictly_more_remaining() {
        let sjf = PreemptiveSjf::default();
        let cand = q(9, 0.0, 32, PriorityClass::Standard);
        let running = [RunningRequest {
            req: Request::new(1, 0.0, 128, 32),
            admitted_s: 0.0,
            generated: 0,
            preemptions: 0,
            first_admitted_s: 0.0,
            first_token_s: None,
            retries: 0,
            prefill_chunks_left: 0,
        }];
        // Equal remaining output: no preemption.
        assert_eq!(sjf.victim(&cand, &running, 1.0), None);
        let long = [RunningRequest {
            req: Request::new(1, 0.0, 128, 512),
            ..running[0]
        }];
        assert_eq!(sjf.victim(&cand, &long, 1.0), Some(0));
    }
}

//! Deterministic fault injection for the serving stack.
//!
//! A [`FaultPlan`] is a time-sorted list of [`FaultEvent`]s that
//! [`run_policy_faulted`](crate::scheduler::run_policy_faulted) (and
//! therefore [`ServingEngine::serve_online`](crate::engine::ServingEngine::serve_online)
//! when a plan is attached via
//! [`EngineBuilder::fault_plan`](crate::engine::EngineBuilder::fault_plan))
//! consumes mid-run:
//!
//! * **Rank failure / repair** — a dead rank loses its
//!   [`KvShards`](crate::kvcache::KvShards) shard, so every in-flight
//!   request is re-queued for recompute-prefill under the bounded
//!   [`RetryPolicy`]; capacity is re-planned around the survivors and
//!   best-effort traffic is shed (SLO-aware brownout) until repair;
//! * **Link degradation** — tensor/pipeline communication slows by a
//!   factor for a window (see
//!   [`allreduce_us_degraded`](crate::parallel::allreduce_us_degraded));
//! * **KV page-out stall** — the engine blocks on a host-memory transfer;
//! * **Corrupted decode frame** — a compressed weight frame fails its
//!   checksum (see the `zipserv_entropy` codecs) and is re-fetched from
//!   the host copy.
//!
//! Plans are plain data and deterministic: the same plan over the same
//! arrivals yields bit-identical reports, and the *empty* plan is
//! guaranteed bit-identical to the pre-fault scheduler (pinned by the
//! `fault_recovery` suite).

use crate::scheduler::UniformStream;
use std::collections::BTreeSet;

/// One kind of injected fault.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FaultKind {
    /// A rank (GPU) dies: its KV shard is lost and its compute capacity is
    /// re-planned away until a matching [`FaultKind::RankRepair`].
    RankFail {
        /// Flat rank index into the `tp × pp` grid (`stage * tp + lane`).
        rank: usize,
    },
    /// A previously failed rank comes back with an empty KV shard.
    RankRepair {
        /// Flat rank index of the rank being repaired.
        rank: usize,
    },
    /// Inter-GPU communication (all-reduce and pipeline hops) slows down
    /// by `factor` for `duration_s` simulated seconds.
    LinkDegrade {
        /// Multiplier on communication time (clamped to at least 1.0).
        factor: f64,
        /// How long the degradation lasts, in simulated seconds.
        duration_s: f64,
    },
    /// The engine stalls on a KV host-memory transfer (e.g. page-out
    /// contention) for `stall_s` simulated seconds.
    KvStall {
        /// Stall length in simulated seconds.
        stall_s: f64,
    },
    /// `frames` compressed weight frames fail their decode checksum and
    /// must be re-fetched from the host copy (each costs
    /// [`ServingEngine::frame_refetch_s`](crate::engine::ServingEngine::frame_refetch_s)).
    CorruptFrame {
        /// Number of corrupted frames detected.
        frames: u32,
    },
}

/// A [`FaultKind`] scheduled at a point in simulated time.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultEvent {
    /// When the fault strikes, in simulated seconds.
    pub at_s: f64,
    /// What happens.
    pub kind: FaultKind,
}

/// A deterministic, time-sorted schedule of faults for one serving run.
///
/// The default (empty) plan injects nothing and is bit-compatible with the
/// fault-free scheduler. Build plans with the chainable helpers
/// ([`FaultPlan::rank_fail`] etc.) or generate a random-but-reproducible
/// one with [`FaultPlan::seeded`].
#[derive(Debug, Clone, PartialEq, Default)]
pub struct FaultPlan {
    events: Vec<FaultEvent>,
}

impl FaultPlan {
    /// An empty plan: no faults, bit-identical reports.
    pub fn new() -> Self {
        FaultPlan::default()
    }

    /// Whether the plan injects nothing.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Number of scheduled events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// The events, sorted by time (stable for ties).
    pub fn events(&self) -> &[FaultEvent] {
        &self.events
    }

    /// Inserts an event, keeping the schedule time-sorted (ties keep
    /// insertion order).
    ///
    /// # Panics
    ///
    /// Panics if `at_s` is negative or not finite, or if the kind carries
    /// an invalid parameter (non-finite or negative duration/stall, a
    /// degradation factor below 1.0, zero corrupted frames).
    pub fn push(&mut self, at_s: f64, kind: FaultKind) {
        assert!(
            at_s.is_finite() && at_s >= 0.0,
            "fault time must be finite and non-negative"
        );
        match kind {
            FaultKind::LinkDegrade { factor, duration_s } => {
                assert!(
                    factor.is_finite() && factor >= 1.0,
                    "link factor must be >= 1"
                );
                assert!(
                    duration_s.is_finite() && duration_s > 0.0,
                    "degrade window must be positive"
                );
            }
            FaultKind::KvStall { stall_s } => {
                assert!(
                    stall_s.is_finite() && stall_s >= 0.0,
                    "stall must be finite and non-negative"
                );
            }
            FaultKind::CorruptFrame { frames } => {
                assert!(frames > 0, "a corruption event needs at least one frame");
            }
            FaultKind::RankFail { .. } | FaultKind::RankRepair { .. } => {}
        }
        let pos = self.events.partition_point(|e| e.at_s <= at_s);
        self.events.insert(pos, FaultEvent { at_s, kind });
    }

    /// Chainable [`FaultKind::RankFail`] at `at_s`.
    pub fn rank_fail(mut self, at_s: f64, rank: usize) -> Self {
        self.push(at_s, FaultKind::RankFail { rank });
        self
    }

    /// Chainable [`FaultKind::RankRepair`] at `at_s`.
    pub fn rank_repair(mut self, at_s: f64, rank: usize) -> Self {
        self.push(at_s, FaultKind::RankRepair { rank });
        self
    }

    /// Chainable [`FaultKind::LinkDegrade`] at `at_s`.
    pub fn link_degrade(mut self, at_s: f64, factor: f64, duration_s: f64) -> Self {
        self.push(at_s, FaultKind::LinkDegrade { factor, duration_s });
        self
    }

    /// Chainable [`FaultKind::KvStall`] at `at_s`.
    pub fn kv_stall(mut self, at_s: f64, stall_s: f64) -> Self {
        self.push(at_s, FaultKind::KvStall { stall_s });
        self
    }

    /// Chainable [`FaultKind::CorruptFrame`] at `at_s`.
    pub fn corrupt_frame(mut self, at_s: f64, frames: u32) -> Self {
        self.push(at_s, FaultKind::CorruptFrame { frames });
        self
    }

    /// A reproducible random plan over a run of roughly `horizon_s`
    /// simulated seconds on a deployment of `ranks` ranks: one rank
    /// failure in the middle of the horizon with a repair later, plus —
    /// depending on the seed — a link-degradation window, a KV stall, and
    /// a burst of corrupted frames. The same seed always produces the
    /// same plan (xorshift64, the crate-wide generator).
    ///
    /// # Panics
    ///
    /// Panics if `horizon_s` is not strictly positive or `ranks` is zero.
    pub fn seeded(seed: u64, horizon_s: f64, ranks: usize) -> Self {
        assert!(horizon_s > 0.0, "horizon must be positive");
        assert!(ranks > 0, "deployment needs at least one rank");
        // Splitmix64 finalizer: the raw stream seeds with `seed | 1`, which
        // would collide adjacent even/odd seeds; mixing first keeps every
        // seed distinct without touching the shared generator.
        let mut z = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
        let mut u = UniformStream::new(z);
        let rank = (u.next() * ranks as f64) as usize % ranks;
        let fail_at = (0.2 + 0.4 * u.next()) * horizon_s;
        let repair_at = fail_at + (0.1 + 0.2 * u.next()) * horizon_s;
        let mut plan = FaultPlan::new()
            .rank_fail(fail_at, rank)
            .rank_repair(repair_at, rank);
        if u.next() < 0.5 {
            let at = (0.1 + 0.5 * u.next()) * horizon_s;
            plan = plan.link_degrade(at, 1.5 + 2.0 * u.next(), 0.1 * horizon_s);
        }
        if u.next() < 0.5 {
            plan = plan.kv_stall((0.1 + 0.8 * u.next()) * horizon_s, 0.02 * horizon_s);
        }
        if u.next() < 0.5 {
            let frames = 1 + (u.next() * 4.0) as u32;
            plan = plan.corrupt_frame((0.1 + 0.8 * u.next()) * horizon_s, frames);
        }
        plan
    }
}

/// Bounded retry-with-backoff applied to fault victims: a request killed
/// by a rank failure is re-queued at most `max_retries` times, each time
/// waiting out an exponentially growing backoff before it becomes
/// eligible for re-admission; past the cap it is rejected with
/// [`RejectReason::RetriesExhausted`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RetryPolicy {
    /// Times a request may be re-queued by faults before rejection.
    pub max_retries: u32,
    /// Backoff before the first re-admission attempt, in simulated seconds.
    pub base_backoff_s: f64,
    /// Multiplier applied to the backoff per additional retry.
    pub multiplier: f64,
}

impl Default for RetryPolicy {
    /// Three retries, 50 ms base backoff, doubling per retry.
    fn default() -> Self {
        RetryPolicy {
            max_retries: 3,
            base_backoff_s: 0.05,
            multiplier: 2.0,
        }
    }
}

impl RetryPolicy {
    /// Backoff before retry number `attempt` (1-based): `base ×
    /// multiplier^(attempt−1)`; zero for `attempt == 0` (a fresh request
    /// waits for nothing).
    pub fn delay_s(&self, attempt: u32) -> f64 {
        if attempt == 0 {
            return 0.0;
        }
        self.base_backoff_s * self.multiplier.powi(attempt as i32 - 1)
    }
}

/// Why a request was rejected instead of served.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RejectReason {
    /// Lifetime KV demand exceeds the deployment's capacity even alone.
    Oversized,
    /// A fault victim exhausted its [`RetryPolicy`] budget.
    RetriesExhausted,
    /// Best-effort (Batch-class) traffic shed while a rank is down.
    BrownoutShed,
    /// Degraded capacity can no longer hold the request and no repair is
    /// scheduled.
    CapacityLost,
    /// The policy held admission on an idle engine with nothing left to
    /// wake it (previously a panic; now a typed rejection).
    PolicyHold,
}

impl RejectReason {
    /// Short machine-readable name.
    pub fn name(self) -> &'static str {
        match self {
            RejectReason::Oversized => "oversized",
            RejectReason::RetriesExhausted => "retries-exhausted",
            RejectReason::BrownoutShed => "brownout-shed",
            RejectReason::CapacityLost => "capacity-lost",
            RejectReason::PolicyHold => "policy-hold",
        }
    }
}

impl core::fmt::Display for RejectReason {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.write_str(self.name())
    }
}

/// A rejected request with its reason — the typed face of
/// [`ScheduleReport::rejected`](crate::scheduler::ScheduleReport::rejected).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Rejection {
    /// Request id.
    pub id: u64,
    /// Why it was rejected.
    pub reason: RejectReason,
}

/// Mutable fault state threaded through the scheduler loop.
#[derive(Debug, Clone)]
pub(crate) struct FaultState {
    /// Ranks in the deployment.
    pub total_ranks: usize,
    /// Currently dead ranks.
    pub dead: BTreeSet<usize>,
    /// Current communication slowdown (1.0 when links are healthy).
    pub link_factor: f64,
    /// When the current link degradation expires.
    pub link_until: f64,
    /// When the deployment last transitioned from healthy to degraded.
    pub degraded_since: f64,
}

impl FaultState {
    pub(crate) fn new(total_ranks: usize) -> Self {
        FaultState {
            total_ranks: total_ranks.max(1),
            dead: BTreeSet::new(),
            link_factor: 1.0,
            link_until: 0.0,
            degraded_since: 0.0,
        }
    }

    /// Ranks currently alive.
    pub(crate) fn alive(&self) -> usize {
        self.total_ranks - self.dead.len()
    }

    /// No dead ranks and no degraded link.
    pub(crate) fn is_clean(&self) -> bool {
        self.dead.is_empty() && self.link_factor == 1.0
    }

    /// Compute slowdown when survivors absorb the dead ranks' work.
    ///
    /// Callers must not invoke this with every rank dead (nothing can be
    /// scheduled then, so the loop never does).
    pub(crate) fn compute_slowdown(&self) -> f64 {
        self.total_ranks as f64 / self.alive().max(1) as f64
    }

    /// KV capacity re-planned around the dead ranks (integer scaling, so
    /// the clean path stays exact).
    pub(crate) fn scaled_capacity(&self, capacity: u64) -> u64 {
        capacity * self.alive() as u64 / self.total_ranks as u64
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;

    #[test]
    fn plan_keeps_events_time_sorted() {
        let plan = FaultPlan::new()
            .kv_stall(5.0, 0.1)
            .rank_fail(1.0, 0)
            .rank_repair(3.0, 0)
            .corrupt_frame(1.0, 2);
        let times: Vec<f64> = plan.events().iter().map(|e| e.at_s).collect();
        assert_eq!(times, vec![1.0, 1.0, 3.0, 5.0]);
        // Ties keep insertion order: the fail precedes the corruption.
        assert!(matches!(plan.events()[0].kind, FaultKind::RankFail { .. }));
        assert!(matches!(
            plan.events()[1].kind,
            FaultKind::CorruptFrame { .. }
        ));
        assert_eq!(plan.len(), 4);
        assert!(!plan.is_empty());
        assert!(FaultPlan::new().is_empty());
    }

    #[test]
    fn seeded_plans_are_deterministic_and_bounded() {
        let a = FaultPlan::seeded(42, 10.0, 4);
        let b = FaultPlan::seeded(42, 10.0, 4);
        assert_eq!(a, b, "same seed, same plan");
        assert_ne!(a, FaultPlan::seeded(43, 10.0, 4), "different seed differs");
        // Always at least the fail/repair pair, always in range and order.
        let fails: Vec<&FaultEvent> = a
            .events()
            .iter()
            .filter(|e| matches!(e.kind, FaultKind::RankFail { .. }))
            .collect();
        assert_eq!(fails.len(), 1);
        let FaultKind::RankFail { rank } = fails[0].kind else {
            unreachable!()
        };
        assert!(rank < 4);
        let repair = a
            .events()
            .iter()
            .find(|e| matches!(e.kind, FaultKind::RankRepair { .. }))
            .unwrap();
        assert!(repair.at_s > fails[0].at_s, "repair strictly after failure");
        for e in a.events() {
            assert!(e.at_s >= 0.0 && e.at_s < 20.0);
        }
    }

    #[test]
    fn retry_backoff_grows_exponentially() {
        let r = RetryPolicy::default();
        assert_eq!(r.delay_s(0), 0.0);
        assert!((r.delay_s(1) - 0.05).abs() < 1e-12);
        assert!((r.delay_s(2) - 0.10).abs() < 1e-12);
        assert!((r.delay_s(3) - 0.20).abs() < 1e-12);
        let flat = RetryPolicy {
            max_retries: 2,
            base_backoff_s: 1.0,
            multiplier: 1.0,
        };
        assert_eq!(flat.delay_s(1), flat.delay_s(2));
    }

    #[test]
    fn fault_state_accounting() {
        let mut s = FaultState::new(4);
        assert!(s.is_clean());
        assert_eq!(s.scaled_capacity(1000), 1000);
        s.dead.insert(2);
        assert!(!s.is_clean());
        assert_eq!(s.alive(), 3);
        assert_eq!(s.scaled_capacity(1000), 750);
        assert!((s.compute_slowdown() - 4.0 / 3.0).abs() < 1e-12);
        s.dead.clear();
        s.link_factor = 2.0;
        assert!(!s.is_clean(), "a degraded link is not clean");
    }

    #[test]
    fn reject_reasons_name_themselves() {
        assert_eq!(RejectReason::Oversized.to_string(), "oversized");
        assert_eq!(RejectReason::RetriesExhausted.name(), "retries-exhausted");
        assert_eq!(RejectReason::BrownoutShed.name(), "brownout-shed");
        assert_eq!(RejectReason::CapacityLost.name(), "capacity-lost");
        assert_eq!(RejectReason::PolicyHold.name(), "policy-hold");
    }

    #[test]
    #[should_panic(expected = "link factor")]
    fn speedup_factor_rejected() {
        let _ = FaultPlan::new().link_degrade(1.0, 0.5, 1.0);
    }

    #[test]
    #[should_panic(expected = "finite and non-negative")]
    fn negative_time_rejected() {
        let _ = FaultPlan::new().rank_fail(-1.0, 0);
    }
}

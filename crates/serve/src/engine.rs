//! The four serving engines of Figure 16.
//!
//! All engines share the same substrate (kernel cost models, paged KV
//! allocator, attention and all-reduce models); they differ exactly where
//! the real systems differ:
//!
//! | engine | weights | decode linear | attention | scheduling overhead |
//! |---|---|---|---|---|
//! | **ZipServ** | TCA-TBE (≈71%) | fused ZipGEMM (falls back to dense when faster) | paged, fused | low |
//! | **vLLM** | dense BF16 | autotuned dense GEMM | paged, fused | low |
//! | **Transformers** | dense BF16 | eager dense GEMM (unfused epilogues) | eager | high |
//! | **DFloat11** | Huffman (≈70%) | eager dense GEMM after per-step block decompression | eager | high |

use std::collections::HashMap;
use std::sync::{Arc, Mutex};

use crate::attention::{decode_attention_us, prefill_attention_us};
use crate::cluster::GpuCluster;
use crate::fault::{FaultPlan, RetryPolicy};
use crate::kvcache::{KvShards, PagedKvCache};
use crate::memory::{MemoryPlan, PlanError, WeightFormat};
use crate::metrics::{RunReport, StepBreakdown};
use crate::parallel::{
    allreduce_us, block_allreduce_bytes, p2p_us, shard_layer, stage_activation_bytes, PipelineKind,
    PipelineSchedule,
};
use crate::policy::{Fcfs, PriorityClass, SchedulePolicy};
use crate::scheduler::{run_policy_faulted, Request, ScheduleReport};
use crate::workload::Workload;
use zipserv_gpu_sim::device::Gpu;
use zipserv_gpu_sim::roofline::GemmShape;
use zipserv_kernels::cublas_model::CublasTc;
use zipserv_kernels::decoupled::BaselineCodec;
use zipserv_kernels::fused::{FusedZipGemm, WeightStats, TYPICAL_COVERAGE};
use zipserv_kernels::shapes::{LayerKind, LlmModel};

/// Compressed-weight fraction ZipServ achieves on the evaluated models.
pub const ZIPSERV_WEIGHT_FRACTION: f64 = 0.715;
/// Compressed-weight fraction of the DFloat11 baseline.
pub const DFLOAT11_WEIGHT_FRACTION: f64 = 0.70;

/// The serving engines compared in §6.5.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EngineKind {
    /// This paper's system.
    ZipServ,
    /// The vLLM baseline.
    Vllm,
    /// The HuggingFace Transformers baseline.
    Transformers,
    /// The DFloat11 lossless-compression baseline.
    DFloat11,
}

impl EngineKind {
    /// All engines in the paper's order.
    pub const ALL: [EngineKind; 4] = [
        EngineKind::ZipServ,
        EngineKind::Vllm,
        EngineKind::Transformers,
        EngineKind::DFloat11,
    ];

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            EngineKind::ZipServ => "ZipServ",
            EngineKind::Vllm => "vLLM",
            EngineKind::Transformers => "Transformers",
            EngineKind::DFloat11 => "DFloat11",
        }
    }

    /// How the engine stores weights.
    pub fn weight_format(self) -> WeightFormat {
        match self {
            EngineKind::ZipServ => WeightFormat::Compressed {
                fraction: ZIPSERV_WEIGHT_FRACTION,
            },
            EngineKind::DFloat11 => WeightFormat::Compressed {
                fraction: DFLOAT11_WEIGHT_FRACTION,
            },
            _ => WeightFormat::Dense,
        }
    }

    /// Eager-mode inefficiency multiplier on linear kernels (unfused
    /// epilogues, per-op dispatch).
    fn linear_inefficiency(self) -> f64 {
        match self {
            EngineKind::ZipServ | EngineKind::Vllm => 1.0,
            EngineKind::Transformers | EngineKind::DFloat11 => 1.55,
        }
    }

    /// Attention bandwidth efficiency (paged + fused vs eager).
    fn attention_efficiency(self) -> f64 {
        match self {
            EngineKind::ZipServ | EngineKind::Vllm => 0.80,
            EngineKind::Transformers | EngineKind::DFloat11 => 0.25,
        }
    }

    /// Per-step non-kernel overhead in ms, normalized to a 32-layer model.
    fn other_ms(self, layers: u64) -> f64 {
        let per32 = match self {
            EngineKind::ZipServ | EngineKind::Vllm => 1.88,
            EngineKind::Transformers => 15.0,
            EngineKind::DFloat11 => 17.0,
        };
        per32 * layers as f64 / 32.0
    }

    /// Does the engine use a paged KV cache?
    fn paged_kv(self) -> bool {
        matches!(self, EngineKind::ZipServ | EngineKind::Vllm)
    }
}

impl core::fmt::Display for EngineKind {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.write_str(self.name())
    }
}

/// Fluent constructor for [`ServingEngine`]: deployment axes plus the
/// online-serving configuration (scheduling policy, batch cap) in one place.
///
/// ```
/// use zipserv_serve::engine::{EngineKind, ServingEngine};
/// use zipserv_serve::cluster::GpuCluster;
/// use zipserv_serve::policy::SloEdf;
/// use zipserv_gpu_sim::device::Gpu;
/// use zipserv_kernels::shapes::LlmModel;
///
/// let engine = ServingEngine::builder()
///     .kind(EngineKind::ZipServ)
///     .model(LlmModel::Llama31_8b)
///     .cluster(GpuCluster::single(Gpu::Rtx4090))
///     .policy(SloEdf::default())
///     .build();
/// assert_eq!(engine.kind(), EngineKind::ZipServ);
/// ```
#[derive(Debug, Clone)]
pub struct EngineBuilder {
    kind: EngineKind,
    model: LlmModel,
    cluster: GpuCluster,
    policy: Box<dyn SchedulePolicy>,
    max_batch: usize,
    tp: Option<u32>,
    pp: Option<u32>,
    micro_batches: Option<u32>,
    pipeline_kind: PipelineKind,
    chunked_prefill: Option<bool>,
    whole_prefill_classes: Vec<PriorityClass>,
    prefix_caching: bool,
    fault_plan: FaultPlan,
    retry: RetryPolicy,
}

/// Why [`EngineBuilder::try_build`] refused to build an engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EngineError {
    /// Some pipeline stage's weights plus runtime overhead exceed device
    /// capacity (the typed face of [`MemoryPlan::plan`]'s panic).
    DoesNotFit(PlanError),
    /// A parallelism override (`tp`/`pp`) was zero.
    InvalidParallelism(&'static str),
}

impl core::fmt::Display for EngineError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            EngineError::DoesNotFit(e) => e.fmt(f),
            EngineError::InvalidParallelism(axis) => {
                write!(f, "invalid parallelism: {axis} must be nonzero")
            }
        }
    }
}

impl std::error::Error for EngineError {}

impl Default for EngineBuilder {
    /// The paper's reference deployment: ZipServ serving LLaMA3.1-8B on a
    /// single RTX 4090 under FCFS with a 64-sequence batch cap.
    fn default() -> Self {
        EngineBuilder {
            kind: EngineKind::ZipServ,
            model: LlmModel::Llama31_8b,
            cluster: GpuCluster::single(Gpu::Rtx4090),
            policy: Box::new(Fcfs),
            max_batch: 64,
            tp: None,
            pp: None,
            micro_batches: None,
            pipeline_kind: PipelineKind::GPipe,
            chunked_prefill: None,
            whole_prefill_classes: Vec::new(),
            prefix_caching: false,
            fault_plan: FaultPlan::default(),
            retry: RetryPolicy::default(),
        }
    }
}

impl EngineBuilder {
    /// Sets the engine kind (default [`EngineKind::ZipServ`]).
    pub fn kind(mut self, kind: EngineKind) -> Self {
        self.kind = kind;
        self
    }

    /// Sets the model (default [`LlmModel::Llama31_8b`]).
    pub fn model(mut self, model: LlmModel) -> Self {
        self.model = model;
        self
    }

    /// Sets the cluster (default a single RTX 4090).
    pub fn cluster(mut self, cluster: GpuCluster) -> Self {
        self.cluster = cluster;
        self
    }

    /// Sets the tensor-parallel degree, overriding the cluster's GPU count
    /// per stage (the intra-stage link is re-derived from the GPU tier).
    /// `tp(1)`/`pp(1)` are exact no-ops relative to a single-device
    /// cluster, pinned by the `parallel_serving` suite.
    ///
    /// # Panics
    ///
    /// Panics (at [`EngineBuilder::build`]) if `tp == 0`.
    pub fn tp(mut self, tp: u32) -> Self {
        self.tp = Some(tp);
        self
    }

    /// Sets the pipeline-parallel degree (stages), overriding the
    /// cluster's. Stages talk over an inter-node fabric; see
    /// [`GpuCluster::pipeline_parallel`].
    ///
    /// # Panics
    ///
    /// Panics (at [`EngineBuilder::build`]) if `pp == 0`.
    pub fn pp(mut self, pp: u32) -> Self {
        self.pp = Some(pp);
        self
    }

    /// Sets the pipeline micro-batch count per step (default `2 × pp`,
    /// the usual GPipe fill ratio; ignored when `pp == 1`). Zero is
    /// rejected at [`EngineBuilder::try_build`] with a typed
    /// [`EngineError::InvalidParallelism`] (or the corresponding panic at
    /// [`EngineBuilder::build`]) rather than panicking here, so runtime
    /// deployment probes can round-trip bad configurations.
    pub fn micro_batches(mut self, micro_batches: u32) -> Self {
        self.micro_batches = Some(micro_batches);
        self
    }

    /// Sets the pipeline execution schedule (default
    /// [`PipelineKind::GPipe`], the historical fill/drain model; ignored
    /// when `pp == 1`). [`PipelineKind::OneFOneB`] interleaves consecutive
    /// steps 1F1B-style, cutting the steady-state decode bubble from
    /// `pp − 1` idle slots per step to `(pp − 1) / m`.
    pub fn pipeline_kind(mut self, kind: PipelineKind) -> Self {
        self.pipeline_kind = kind;
        self
    }

    /// Overrides chunked-prefill streaming admission (default: enabled
    /// exactly when the resolved deployment has `pp ≥ 2`).
    ///
    /// When enabled, the schedulers admit prefills as `pp` per-stage
    /// chunks advanced between decode steps (new arrivals reach their
    /// first token without waiting behind whole serialized prefills) and
    /// consult the per-rank [`KvShards`] live inside the scheduling loop.
    /// Disabling it pins the legacy whole-prefill chain-admission
    /// semantics — the bit-compat path the fixture suites diff against.
    pub fn chunked_prefill(mut self, enabled: bool) -> Self {
        self.chunked_prefill = Some(enabled);
        self
    }

    /// Opts one traffic class out of chunked prefill (chainable; default:
    /// no class opts out). When streaming admission is active, fresh
    /// prompts of an opted-out class serialize their whole prefill at
    /// admission — the legacy semantics — while other classes keep
    /// chunking. Batch-class traffic has no TTFT SLO to protect, so a
    /// fleet can run Batch whole-prefill (fewer scheduler rounds) next to
    /// chunked Interactive on the same replicas. A no-op when chunked
    /// prefill is off entirely, so the bit-compat paths are untouched.
    pub fn whole_prefill_for(mut self, class: PriorityClass) -> Self {
        if !self.whole_prefill_classes.contains(&class) {
            self.whole_prefill_classes.push(class);
        }
        self
    }

    /// Enables prefix caching (default off): admission consults a
    /// [`PrefixRegistry`](crate::kvcache::PrefixRegistry) that interns
    /// shared-prefix hashes, forks the cached pages CoW-style on a hit,
    /// and charges prefill for the suffix tokens only. The victim axis on
    /// eviction is chosen by the scheduling policy (see
    /// [`SchedulePolicy::prefix_victim`]). Off is the bit-compat path: no
    /// registry is built and the schedulers run exactly the legacy
    /// admission sequence, pinned by the prefix-caching suite.
    pub fn prefix_caching(mut self, enabled: bool) -> Self {
        self.prefix_caching = enabled;
        self
    }

    /// Sets the online scheduling policy (default [`Fcfs`]).
    pub fn policy(mut self, policy: impl SchedulePolicy + 'static) -> Self {
        self.policy = Box::new(policy);
        self
    }

    /// Sets an already-boxed scheduling policy (for policies chosen at
    /// runtime, e.g. when iterating over a policy zoo).
    pub fn policy_box(mut self, policy: Box<dyn SchedulePolicy>) -> Self {
        self.policy = policy;
        self
    }

    /// Sets the hard cap on concurrent sequences (default 64).
    ///
    /// # Panics
    ///
    /// Panics if `max_batch` is zero.
    pub fn max_batch(mut self, max_batch: usize) -> Self {
        assert!(max_batch > 0, "batch cap must be nonzero");
        self.max_batch = max_batch;
        self
    }

    /// Attaches a deterministic [`FaultPlan`] consumed by
    /// [`ServingEngine::serve_online`] (default empty — the empty plan is
    /// bit-compatible with the fault-free scheduler, pinned by the chaos
    /// suite).
    pub fn fault_plan(mut self, plan: FaultPlan) -> Self {
        self.fault_plan = plan;
        self
    }

    /// Sets the bounded retry-with-backoff policy applied to requests
    /// displaced by injected faults (default [`RetryPolicy::default`]).
    pub fn retry_policy(mut self, retry: RetryPolicy) -> Self {
        self.retry = retry;
        self
    }

    /// Builds the engine, resolving the parallelism axes and computing its
    /// (bottleneck-rank) memory plan.
    ///
    /// # Panics
    ///
    /// Panics if the model does not fit the cluster (see
    /// [`MemoryPlan::plan`]), or if a `tp`/`pp` override is zero.
    pub fn build(self) -> ServingEngine {
        self.try_build().unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible [`EngineBuilder::build`]: returns a typed [`EngineError`]
    /// instead of panicking when the model does not fit the cluster or a
    /// parallelism override is zero, so capacity re-planning after a fault
    /// can probe candidate deployments without unwinding.
    pub fn try_build(self) -> Result<ServingEngine, EngineError> {
        if self.tp == Some(0) {
            return Err(EngineError::InvalidParallelism("tp"));
        }
        if self.pp == Some(0) {
            return Err(EngineError::InvalidParallelism("pp"));
        }
        if self.micro_batches == Some(0) {
            return Err(EngineError::InvalidParallelism("micro_batches"));
        }
        let mut cluster = self.cluster;
        if let Some(tp) = self.tp {
            cluster = cluster.with_tp(tp);
        }
        if let Some(pp) = self.pp {
            cluster = cluster.with_pp(pp);
        }
        let micro_batches = self.micro_batches.unwrap_or(2 * cluster.pp()).max(1);
        let chunked_prefill = self.chunked_prefill.unwrap_or(cluster.pp() >= 2);
        let plan = MemoryPlan::try_plan(self.model, &cluster, self.kind.weight_format())
            .map_err(EngineError::DoesNotFit)?;
        let mut engine = ServingEngine {
            kind: self.kind,
            model: self.model,
            cluster,
            plan,
            policy: self.policy,
            max_batch: self.max_batch,
            micro_batches,
            pipeline_kind: self.pipeline_kind,
            chunked_prefill,
            whole_prefill_classes: self.whole_prefill_classes,
            prefix_caching: self.prefix_caching,
            fault_plan: self.fault_plan,
            retry: self.retry,
            kv_capacity: 0,
            // Placeholder, replaced right below once the engine's model and
            // cluster can size the real allocators.
            kv_shards_proto: Arc::new(KvShards::new(vec![PagedKvCache::new(0, 1)])),
            step_memo: Arc::new(Mutex::new(HashMap::new())),
        };
        // Capacity and the pristine allocators are pure functions of the
        // deployment, but deriving them means constructing every per-rank
        // page allocator — O(pages) work that once ran on each
        // `kv_capacity_tokens` call, dominating multi-rank scheduler runs.
        // Compute both once here.
        engine.kv_shards_proto = Arc::new(engine.build_kv_shards());
        engine.kv_capacity = engine.compute_kv_capacity_tokens();
        Ok(engine)
    }
}

/// A model deployed on a cluster under one engine.
#[derive(Debug)]
pub struct ServingEngine {
    kind: EngineKind,
    model: LlmModel,
    cluster: GpuCluster,
    plan: MemoryPlan,
    policy: Box<dyn SchedulePolicy>,
    max_batch: usize,
    micro_batches: u32,
    pipeline_kind: PipelineKind,
    /// Resolved streaming-admission mode (default `pp >= 2`): chunked
    /// prefill plus live per-rank KV admission in the schedulers.
    chunked_prefill: bool,
    /// Traffic classes that serialize their whole prefill at admission
    /// even while streaming admission is active (default none).
    whole_prefill_classes: Vec<PriorityClass>,
    /// Whether admission consults a shared-prefix registry (default off —
    /// the bit-compat legacy path).
    prefix_caching: bool,
    fault_plan: FaultPlan,
    retry: RetryPolicy,
    /// KV capacity in tokens, derived once at build time (see
    /// [`ServingEngine::kv_capacity_tokens`]).
    kv_capacity: u64,
    /// Pristine per-rank KV allocators, built once; [`ServingEngine::kv_shards`]
    /// clones them instead of re-running the O(pages)-per-rank construction.
    kv_shards_proto: Arc<KvShards>,
    /// Cross-run decode-step price memo, keyed like the schedulers' local
    /// step caches (`(step_cache_key, context bucket)` → `(total ms, comm
    /// ms)`). Step costs are pure functions of the frozen deployment, so
    /// pricing a shape once per engine — not once per scheduler run — is
    /// sound; clones share the memo. Chunked prefill made this matter: the
    /// decode-ready batch ramps through many micro-batch shapes per run,
    /// and re-pricing the ramp every run dominated multi-rank simulations.
    step_memo: StepMemo,
}

/// `(step_cache_key, context bucket)` → `(total ms, comm ms)`, shared
/// across engine clones.
type StepMemo = Arc<Mutex<HashMap<(u64, u64), (f64, f64)>>>;

impl Clone for ServingEngine {
    fn clone(&self) -> Self {
        ServingEngine {
            kind: self.kind,
            model: self.model,
            cluster: self.cluster,
            plan: self.plan,
            policy: self.policy.clone_box(),
            max_batch: self.max_batch,
            micro_batches: self.micro_batches,
            pipeline_kind: self.pipeline_kind,
            chunked_prefill: self.chunked_prefill,
            whole_prefill_classes: self.whole_prefill_classes.clone(),
            prefix_caching: self.prefix_caching,
            fault_plan: self.fault_plan.clone(),
            retry: self.retry,
            kv_capacity: self.kv_capacity,
            kv_shards_proto: Arc::clone(&self.kv_shards_proto),
            step_memo: Arc::clone(&self.step_memo),
        }
    }
}

impl ServingEngine {
    /// Starts a fluent [`EngineBuilder`] — the preferred constructor, and
    /// the only way to attach a non-FCFS [`SchedulePolicy`].
    pub fn builder() -> EngineBuilder {
        EngineBuilder::default()
    }

    /// Deploys `model` on `cluster` under `kind` with the default FCFS
    /// policy.
    ///
    /// Superseded by [`ServingEngine::builder`], which also configures the
    /// scheduling policy and batch cap; this positional form is kept as a
    /// thin shim for existing callers.
    ///
    /// # Panics
    ///
    /// Panics if the model does not fit the cluster (see
    /// [`MemoryPlan::plan`]).
    pub fn new(kind: EngineKind, model: LlmModel, cluster: GpuCluster) -> Self {
        ServingEngine::builder()
            .kind(kind)
            .model(model)
            .cluster(cluster)
            .build()
    }

    /// The engine kind.
    pub fn kind(&self) -> EngineKind {
        self.kind
    }

    /// The deployment this engine runs on.
    pub fn cluster(&self) -> &GpuCluster {
        &self.cluster
    }

    /// The model being served.
    pub fn model(&self) -> LlmModel {
        self.model
    }

    /// Pipeline micro-batches per step (1-effective when `pp == 1`).
    pub fn micro_batches(&self) -> u32 {
        self.micro_batches
    }

    /// The pipeline execution schedule this deployment runs
    /// (default [`PipelineKind::GPipe`]; irrelevant when `pp == 1`).
    pub fn pipeline_kind(&self) -> PipelineKind {
        self.pipeline_kind
    }

    /// Whether the schedulers run in streaming-admission mode: prefills
    /// admitted as per-stage chunks advanced between decode steps, with
    /// live per-rank [`KvShards`] admission. Resolved at build time
    /// (default `pp >= 2`, overridable via
    /// [`EngineBuilder::chunked_prefill`]).
    pub fn chunked_prefill(&self) -> bool {
        self.chunked_prefill
    }

    /// Whether fresh prompts of `class` serialize their whole prefill at
    /// admission even under streaming admission (see
    /// [`EngineBuilder::whole_prefill_for`]; always effectively true when
    /// [`ServingEngine::chunked_prefill`] is off).
    pub fn whole_prefill_for(&self, class: PriorityClass) -> bool {
        self.whole_prefill_classes.contains(&class)
    }

    /// Whether the schedulers consult a shared-prefix registry at
    /// admission (see [`EngineBuilder::prefix_caching`]; default off).
    pub fn prefix_caching(&self) -> bool {
        self.prefix_caching
    }

    /// The scheduling policy [`ServingEngine::serve_online`] runs under.
    pub fn policy(&self) -> &dyn SchedulePolicy {
        self.policy.as_ref()
    }

    /// The hard cap on concurrent sequences.
    pub fn max_batch(&self) -> usize {
        self.max_batch
    }

    /// The fault plan [`ServingEngine::serve_online`] injects (empty by
    /// default).
    pub fn fault_plan(&self) -> &FaultPlan {
        &self.fault_plan
    }

    /// The retry-with-backoff policy applied to fault victims.
    pub fn retry_policy(&self) -> &RetryPolicy {
        &self.retry
    }

    /// Runs an online arrival trace to completion under this engine's
    /// scheduling policy — the builder-era replacement for
    /// `ContinuousBatcher::new(&engine).run(arrivals)`. Consumes the
    /// engine's [`FaultPlan`] (a no-op when empty: bit-identical reports).
    pub fn serve_online(&self, arrivals: Vec<Request>) -> ScheduleReport {
        run_policy_faulted(
            self,
            self.policy.as_ref(),
            self.max_batch,
            arrivals,
            &self.fault_plan,
            &self.retry,
        )
    }

    /// KV bytes per token held by TP rank `rank` of a pipeline stage with
    /// `layers` resident layers: the rank's share of the GQA KV heads
    /// (ceil-split across `tp`; at least one head — replication — when
    /// `tp > kv_heads`) times its stage's layer slice. Rank 0 always
    /// carries the ceil share, so it is the fattest. The single source of
    /// truth for both [`ServingEngine::kv_shards`] and
    /// [`ServingEngine::kv_swap_s`].
    fn rank_kv_bytes_per_token(&self, rank: u64, layers: u64) -> u64 {
        let dims = self.model.dims();
        let tp = self.cluster.tp() as u64;
        let heads = (dims.kv_heads / tp + u64::from(rank < dims.kv_heads % tp)).max(1);
        2 * 2 * heads * dims.head_dim * layers
    }

    /// Time for one host-link transfer of `tokens` worth of the
    /// *bottleneck rank's* KV slice (PCIe 4.0 x16, ~32 GB/s sustained), in
    /// seconds. Ranks page in parallel, so the slowest (most-loaded) rank
    /// — rank 0 of the fattest stage — sets the transfer time. Page-out
    /// preemption pays this once at eviction and once at resume.
    pub fn kv_swap_s(&self, tokens: u64) -> f64 {
        const PCIE_BYTES_PER_S: f64 = 32.0e9;
        let layers = self
            .cluster
            .bottleneck_stage_layers(self.model.dims().layers);
        let bytes = tokens * self.rank_kv_bytes_per_token(0, layers);
        bytes as f64 / PCIE_BYTES_PER_S
    }

    /// The memory plan (Figure 17's right panel).
    pub fn memory_plan(&self) -> &MemoryPlan {
        &self.plan
    }

    /// Time to re-fetch one layer's compressed weight frame over the host
    /// link (PCIe 4.0 x16, ~32 GB/s sustained), in seconds — the recovery
    /// charge when a [`FaultKind::CorruptFrame`](crate::fault::FaultKind)
    /// event invalidates resident frames and they must be re-read from
    /// host memory.
    pub fn frame_refetch_s(&self) -> f64 {
        const PCIE_BYTES_PER_S: f64 = 32.0e9;
        let layers = self.model.dims().layers.max(1);
        (self.plan.weight_bytes / layers) as f64 / PCIE_BYTES_PER_S
    }

    /// Per-GPU sharded GEMM shape for one block layer at `n` tokens.
    fn sharded(&self, layer: LayerKind, n: u64) -> GemmShape {
        shard_layer(
            layer,
            layer.gemm_shape(self.model, n),
            self.cluster.tp() as u64,
        )
    }

    /// One decode step's linear-layer time in ms across all layers.
    fn decode_linear_ms(&self, batch: u64) -> f64 {
        let dims = self.model.dims();
        let spec = self.cluster.spec();
        let mut us = 0.0;
        for layer in LayerKind::BLOCK {
            let shape = self.sharded(layer, batch);
            let dense = CublasTc::time(shape, &spec).total_us;
            let t = match self.kind {
                EngineKind::ZipServ => {
                    // Dispatch like the real system: fused where it wins.
                    let stats = WeightStats::synthetic(shape.m, shape.k, TYPICAL_COVERAGE);
                    let fused = FusedZipGemm::time(&stats, batch, &spec).total_us;
                    fused.min(dense)
                }
                _ => dense * self.kind.linear_inefficiency(),
            };
            us += t * dims.layers as f64;
        }
        // LM head, column-sharded; ZipServ compresses it like any linear.
        let lm = self.sharded(LayerKind::LmHead, batch);
        let lm_dense = CublasTc::time(lm, &spec).total_us;
        us += match self.kind {
            EngineKind::ZipServ => {
                let stats = WeightStats::synthetic(lm.m, lm.k, TYPICAL_COVERAGE);
                FusedZipGemm::time(&stats, batch, &spec)
                    .total_us
                    .min(lm_dense)
            }
            _ => lm_dense * self.kind.linear_inefficiency(),
        };
        us / 1e3
    }

    /// Per-step DFloat11 block decompression time in ms (the whole model is
    /// re-expanded every step, §6.5's DFloat11 integration).
    fn decode_decompression_ms(&self, _batch: u64) -> f64 {
        if self.kind != EngineKind::DFloat11 {
            return 0.0;
        }
        let dims = self.model.dims();
        let spec = self.cluster.spec();
        let mut us = 0.0;
        for layer in LayerKind::BLOCK {
            let shape = self.sharded(layer, 1);
            let t = BaselineCodec::DFloat11
                .decomp_profile(shape.m, shape.k, 2.65)
                .execute(&spec)
                .total_us;
            us += t * dims.layers as f64;
        }
        // Chunked, block-at-a-time launches cannot overlap with compute,
        // and the host-side chunk bookkeeping roughly doubles the cost.
        us * 2.0 / 1e3
    }

    /// One decode step breakdown at a given context length.
    ///
    /// Single-stage (`pp == 1`) deployments are costed exactly as they
    /// always were: TP-sharded kernels plus two all-reduces per layer.
    /// Pipeline-parallel deployments split the batch into
    /// [`EngineBuilder::micro_batches`] micro-batches and run them across
    /// the stages under the deployment's [`PipelineKind`]: the step's
    /// makespan is `slots_f()` effective slots — `pp + m − 1` under GPipe
    /// fill/drain, `m + (pp − 1)/m` under the interleaved 1F1B steady
    /// state — of the bottleneck stage's per-micro time plus one
    /// inter-stage activation hop per slot. This charges both the
    /// schedule's bubble (reported diagnostically as
    /// [`StepBreakdown::bubble_ms`]) and the weight re-reads that make PP
    /// a capacity play, not a latency one, in decode.
    pub fn decode_step(&self, batch: u64, context: u64) -> StepBreakdown {
        if self.cluster.pp() == 1 {
            return self.decode_step_single(batch, context);
        }
        let dims = self.model.dims();
        let sched = self.pipeline_schedule(batch);
        let bm = batch.div_ceil(sched.micro_batches as u64);
        let micro = self.decode_step_single(bm, context);
        // Components are layer-proportional to first order: the bottleneck
        // stage holds `ceil(layers / pp)` of them and paces every slot.
        let frac = self.cluster.bottleneck_stage_layers(dims.layers) as f64 / dims.layers as f64;
        let scale = frac * sched.slots_f();
        let hop_ms = p2p_us(&self.cluster, stage_activation_bytes(dims.hidden, bm)) / 1e3;
        // Per-slot busy time on the bottleneck stage: the idle (bubble)
        // share of the makespan is `steady_idle_slots` of these slots.
        let slot_ms = frac
            * (micro.linear_ms + micro.attention_ms + micro.decompression_ms + micro.allreduce_ms)
            + hop_ms;
        StepBreakdown {
            linear_ms: micro.linear_ms * scale,
            attention_ms: micro.attention_ms * scale,
            decompression_ms: micro.decompression_ms * scale,
            allreduce_ms: micro.allreduce_ms * scale,
            p2p_ms: sched.slots_f() * hop_ms,
            other_ms: self.kind.other_ms(dims.layers),
            bubble_ms: sched.steady_idle_slots() * slot_ms,
        }
    }

    /// The key under which a [`ServingEngine::decode_step`] result may be
    /// cached and shared across batch sizes.
    ///
    /// A single-stage step depends on the exact batch, so the key *is* the
    /// batch. A pipelined step depends on the batch only through its
    /// micro-batch shape — the per-micro batch `ceil(batch / m)` and the
    /// clamped micro-batch count `m` — so distinct batches that quantize
    /// to the same shape cost identical steps and share one key. Keying a
    /// step cache on the raw batch instead silently defeats it under
    /// micro-batching: every batch size in a run is a fresh miss that
    /// re-prices a shape already priced (the tp4_pp2 deployments ran ~11×
    /// the tp4 simulator cost before the schedulers switched to this key).
    pub fn step_cache_key(&self, batch: u64) -> u64 {
        if self.cluster.pp() == 1 {
            return batch;
        }
        let sched = self.pipeline_schedule(batch);
        let m = u64::from(sched.micro_batches);
        let bm = batch.div_ceil(m);
        debug_assert!(bm < (1 << 31), "per-micro batch overflows the packed key");
        // The schedule kind changes the step cost at the same micro-batch
        // shape, so 1F1B keys must not collide with GPipe ones: tag them in
        // the (otherwise unreachable) top bit. GPipe keys are unchanged.
        let tag = match sched.kind {
            PipelineKind::GPipe => 0,
            PipelineKind::OneFOneB => 1u64 << 63,
        };
        tag | (bm << 32) | m
    }

    /// Prices a decode step under the cross-run memo: `key` must be
    /// `(self.step_cache_key(batch), bucket)` and the returned pair is
    /// `(total ms, comm ms)` for `decode_step(batch, bucket)`. The first
    /// caller anywhere on this engine (or any clone) pays the pricing;
    /// everyone after reads the memo. A poisoned lock falls back to
    /// pricing directly — never panic over a cache.
    pub fn step_cost_priced(&self, key: (u64, u64), batch: u64, bucket: u64) -> (f64, f64) {
        let price = || {
            let step = self.decode_step(batch, bucket);
            (step.total_ms(), step.comm_ms())
        };
        match self.step_memo.lock() {
            Ok(mut memo) => *memo.entry(key).or_insert_with(price),
            Err(_) => price(),
        }
    }

    /// The single-stage (TP-only) decode-step model — the historical cost
    /// path, reused per micro-batch by the pipelined wrapper.
    fn decode_step_single(&self, batch: u64, context: u64) -> StepBreakdown {
        let dims = self.model.dims();
        let spec = self.cluster.spec();
        let tp = self.cluster.tp() as u64;
        let attention_us = decode_attention_us(
            &dims,
            batch,
            context,
            &spec,
            self.kind.attention_efficiency(),
        ) / tp as f64;
        let allreduce = 2.0
            * dims.layers as f64
            * allreduce_us(&self.cluster, block_allreduce_bytes(dims.hidden, batch) / 2)
            / 1e3;
        StepBreakdown {
            linear_ms: self.decode_linear_ms(batch),
            attention_ms: attention_us / 1e3,
            decompression_ms: self.decode_decompression_ms(batch),
            allreduce_ms: allreduce,
            p2p_ms: 0.0,
            other_ms: self.kind.other_ms(dims.layers),
            bubble_ms: 0.0,
        }
    }

    /// The pipeline schedule for this deployment at a given batch:
    /// micro-batch count clamped so no micro-batch is empty, under the
    /// deployment's [`PipelineKind`].
    fn pipeline_schedule(&self, batch: u64) -> PipelineSchedule {
        let m = u64::from(self.micro_batches).min(batch.max(1)) as u32;
        PipelineSchedule::new(self.cluster.pp(), m).with_kind(self.pipeline_kind)
    }

    /// Prefill latency in ms for the whole batch.
    ///
    /// On pipeline-parallel deployments the prompt is chunked into
    /// micro-batches and pipelined across stages; prefill compute is
    /// compute-bound and ~linear in tokens, so the per-stage per-micro
    /// time is the serial core scaled by the stage's layer share, and the
    /// GPipe fill/drain bubble plus per-slot activation hops are charged
    /// on top (see [`PipelineSchedule`]).
    pub fn prefill_ms(&self, batch: u64, prompt_len: u64) -> f64 {
        let dims = self.model.dims();
        let spec = self.cluster.spec();
        let tokens = batch * prompt_len;
        let mut us = 0.0;
        // Per-pass weight decompression (ZipServ's decoupled §4.4 path,
        // DFloat11's block expansion) is *fixed* per layer visit, not
        // token-proportional — tracked separately so pipeline micro-batching
        // cannot amortize it away (each micro-batch re-visits the layer
        // after its scratch buffer was recycled). It still accumulates into
        // `us` exactly as it always did, keeping the `pp == 1` result
        // bit-identical to the historical computation.
        let mut decomp_us = 0.0;
        for layer in LayerKind::BLOCK {
            let shape = self.sharded(layer, tokens);
            let mut t = CublasTc::time(shape, &spec).total_us * self.kind.linear_inefficiency();
            let mut d = 0.0;
            if self.kind == EngineKind::ZipServ {
                // Decoupled path: expand this layer's weights once per pass
                // (§4.4; ~4% overhead at N=8192).
                let stats = WeightStats::synthetic(shape.m, shape.k, TYPICAL_COVERAGE);
                d = FusedZipGemm::decomp_profile(&stats).execute(&spec).total_us;
            }
            if self.kind == EngineKind::DFloat11 {
                d = BaselineCodec::DFloat11
                    .decomp_profile(shape.m, shape.k, 2.65)
                    .execute(&spec)
                    .total_us;
            }
            t += d;
            us += t * dims.layers as f64;
            decomp_us += d * dims.layers as f64;
        }
        us +=
            prefill_attention_us(&dims, batch, prompt_len, &spec, 0.55) / self.cluster.tp() as f64;
        let allreduce = 2.0
            * dims.layers as f64
            * allreduce_us(
                &self.cluster,
                block_allreduce_bytes(dims.hidden, tokens) / 2,
            );
        if self.cluster.pp() == 1 {
            return (us + allreduce) / 1e3 + self.kind.other_ms(dims.layers);
        }
        let decomp_ms = decomp_us / 1e3;
        self.pipelined_prefill_ms((us - decomp_us + allreduce) / 1e3, decomp_ms, tokens)
            + self.kind.other_ms(dims.layers)
    }

    /// The serial admission charge one fresh prompt of `class` adds to a
    /// replica's clock under this deployment's resolved admission mode:
    /// the whole [`ServingEngine::prefill_ms`] on the legacy path, but
    /// only one chunk's share (`1 / pp`) when streaming admission chunks
    /// the prefill — the remaining chunks ride micro-batch slots between
    /// decode steps instead of serializing ahead of later requests. The
    /// fleet's slot virtual clock prices in-flight depth with this
    /// estimate; using the whole-prefill figure for chunked replicas
    /// overestimated their depth and skewed load-aware routing.
    pub fn admission_prefill_ms(&self, prompt_len: u64, class: PriorityClass) -> f64 {
        let whole = self.prefill_ms(1, prompt_len);
        if self.chunked_prefill && !self.whole_prefill_for(class) {
            whole / f64::from(self.cluster.pp().max(1))
        } else {
            whole
        }
    }

    /// Applies the pipeline schedule to a serial prefill core: identity at
    /// `pp == 1`, GPipe makespan otherwise. `scalable_ms` (GEMMs,
    /// attention, all-reduce) divides across micro-batches; `fixed_ms`
    /// (per-pass weight decompression) is paid again by every micro-batch
    /// that sweeps a stage's layers, so more micro-batches shrink the
    /// bubble but grow the re-expansion bill.
    fn pipelined_prefill_ms(&self, scalable_ms: f64, fixed_ms: f64, tokens: u64) -> f64 {
        if self.cluster.pp() == 1 {
            return scalable_ms + fixed_ms;
        }
        let dims = self.model.dims();
        let sched = self.pipeline_schedule(tokens);
        let m = sched.micro_batches as u64;
        let frac = self.cluster.bottleneck_stage_layers(dims.layers) as f64 / dims.layers as f64;
        let stage_micro_ms = (scalable_ms / m as f64 + fixed_ms) * frac;
        let hop_ms = p2p_us(
            &self.cluster,
            stage_activation_bytes(dims.hidden, tokens.div_ceil(m)),
        ) / 1e3;
        sched.makespan(stage_micro_ms, hop_ms)
    }

    /// Prefill with software-pipelined decompression (ZipServ only): layer
    /// `i+1`'s ZipServ-Decomp kernel runs on a second stream under layer
    /// `i`'s GEMM, double-buffering the scratch region. The decompressor is
    /// DRAM-bound while the prefill GEMM is compute-bound, so the overlap
    /// hides most of the §6.4 overhead. Returns milliseconds.
    ///
    /// # Panics
    ///
    /// Panics if called on a non-ZipServ engine (other engines have no
    /// decompression stage to overlap).
    pub fn prefill_ms_overlapped(&self, batch: u64, prompt_len: u64) -> f64 {
        assert_eq!(
            self.kind,
            EngineKind::ZipServ,
            "overlapped prefill requires the ZipServ engine"
        );
        use zipserv_gpu_sim::stream::StreamSim;
        let dims = self.model.dims();
        let spec = self.cluster.spec();
        let tokens = batch * prompt_len;

        let mut sim = StreamSim::new(spec.clone());
        let mut last_gemm = None;
        for _layer in 0..dims.layers {
            for kind in LayerKind::BLOCK {
                let shape = self.sharded(kind, tokens);
                let stats = WeightStats::synthetic(shape.m, shape.k, TYPICAL_COVERAGE);
                // Double-buffered scratch: decomp k+1 must wait for GEMM k-1
                // (two buffers in flight); approximate by chaining decomp on
                // its own stream (FIFO) and making each GEMM depend on its
                // decomp.
                let d = sim.submit(1, &FusedZipGemm::decomp_profile(&stats), &[]);
                let deps = match last_gemm {
                    Some(g) => vec![d, g],
                    None => vec![d],
                };
                let g = sim.submit(0, &CublasTc::kernel_profile(shape, &spec), &deps);
                last_gemm = Some(g);
            }
        }
        let linear_us = sim.makespan_us();
        let attn_us =
            prefill_attention_us(&dims, batch, prompt_len, &spec, 0.55) / self.cluster.tp() as f64;
        let allreduce = 2.0
            * dims.layers as f64
            * allreduce_us(
                &self.cluster,
                block_allreduce_bytes(dims.hidden, tokens) / 2,
            );
        // The stream-overlapped makespan already hides decompression under
        // the GEMM stream, so the whole core scales with micro-batch size
        // (an approximation: at extreme micro-batch counts the DRAM-bound
        // decompressor would poke out from under the shrunken GEMMs).
        self.pipelined_prefill_ms((linear_us + attn_us + allreduce) / 1e3, 0.0, tokens)
            + self.kind.other_ms(dims.layers)
    }

    /// One paged KV allocator per rank of the `tp × pp` grid, sized from
    /// that rank's memory plan and KV slice: its share of the GQA KV heads
    /// within the stage (ceil-split when `kv_heads % tp != 0`) and its
    /// stage's layer slice across stages. The rank with the fattest slice
    /// runs out of pages first and throttles the whole deployment — see
    /// [`KvShards`].
    ///
    /// Returns a clone of the pristine allocators built once at engine
    /// construction: callers get independent state, and the per-call cost
    /// is a memcpy of the free lists rather than the O(pages)-per-rank
    /// rebuild (which dominated streaming-admission scheduler runs when it
    /// ran per run).
    pub fn kv_shards(&self) -> KvShards {
        (*self.kv_shards_proto).clone()
    }

    /// Builds the pristine per-rank allocators (the expensive half of
    /// [`ServingEngine::kv_shards`], run once at build time).
    fn build_kv_shards(&self) -> KvShards {
        let dims = self.model.dims();
        let tp = self.cluster.tp() as u64;
        let stage_plans =
            MemoryPlan::plan_stages(self.model, &self.cluster, self.kind.weight_format());
        let stage_layers = self.cluster.stage_layers(dims.layers);
        let mut shards = Vec::with_capacity(stage_plans.len() * tp as usize);
        for (plan, &layers) in stage_plans.iter().zip(&stage_layers) {
            for rank in 0..tp {
                shards.push(PagedKvCache::new(
                    plan.kv_bytes,
                    self.rank_kv_bytes_per_token(rank, layers),
                ));
            }
        }
        KvShards::new(shards)
    }

    /// KV capacity in tokens for this deployment: the *minimum* across the
    /// per-rank allocators of [`ServingEngine::kv_shards`] — one exhausted
    /// rank stalls admission exactly like real hardware. Non-paged engines
    /// lose ~40% of the region to fragmentation and static
    /// over-reservation.
    ///
    /// The value is derived once at build time; this accessor is O(1).
    /// (It used to rebuild every per-rank allocator on each call — O(pages)
    /// per rank — which made the accessor the dominant cost of multi-rank
    /// scheduler runs.)
    pub fn kv_capacity_tokens(&self) -> u64 {
        self.kv_capacity
    }

    /// The build-time computation behind [`ServingEngine::kv_capacity_tokens`]:
    /// sizes every per-rank allocator and takes the bottleneck.
    fn compute_kv_capacity_tokens(&self) -> u64 {
        let raw = self.kv_shards().capacity_tokens();
        if self.kind.paged_kv() {
            raw
        } else {
            (raw as f64 * 0.6) as u64
        }
    }

    /// Serves one workload end to end.
    pub fn serve(&self, w: Workload) -> RunReport {
        let capacity = self.kv_capacity_tokens().max(1);
        let demand = w.peak_kv_tokens();
        let pressure = demand as f64 / capacity as f64;
        // Thrashing penalty: paged engines preempt + recompute/swap
        // (sub-linear); static engines must run the batch in waves.
        let penalty = if pressure <= 1.0 {
            1.0
        } else if self.kind.paged_kv() {
            pressure.sqrt()
        } else {
            pressure.ceil()
        };

        let prefill_s = self.prefill_ms(w.batch, w.prompt_len) / 1e3;
        let mut decode_s = 0.0;
        let mut final_step = StepBreakdown::default();
        // Sample the context sweep at step granularity without recomputing
        // the kernel autotuner 2048 times: step times vary only through
        // attention (linear in context), so evaluate the breakdown at both
        // ends and integrate.
        let first = self.decode_step(w.batch, w.prompt_len);
        let last = self.decode_step(w.batch, w.max_context());
        for step in 0..w.output_len {
            let t = step as f64 / w.output_len.max(1) as f64;
            let ms = first.total_ms() + (last.total_ms() - first.total_ms()) * t;
            decode_s += ms / 1e3;
            if step + 1 == w.output_len {
                final_step = last;
            }
        }
        decode_s *= penalty;
        let latency_s = prefill_s + decode_s;
        RunReport {
            prefill_s,
            decode_s,
            latency_s,
            throughput_tps: w.total_output_tokens() as f64 / latency_s,
            final_step,
            kv_pressure: pressure,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use zipserv_gpu_sim::device::Gpu;

    fn llama8b(kind: EngineKind) -> ServingEngine {
        ServingEngine::new(kind, LlmModel::Llama31_8b, GpuCluster::single(Gpu::Rtx4090))
    }

    #[test]
    fn figure17_step_breakdown() {
        // vLLM at batch 32, seq 1024: GEMM ≈ 25 ms (~84% of the step);
        // ZipServ cuts linear to ≈ 15 ms (1.69×).
        let vllm = llama8b(EngineKind::Vllm).decode_step(32, 1024);
        assert!(
            vllm.linear_ms > 18.0 && vllm.linear_ms < 30.0,
            "vllm linear {} ms",
            vllm.linear_ms
        );
        assert!(
            vllm.linear_fraction() > 0.70,
            "linear fraction {}",
            vllm.linear_fraction()
        );
        let zip = llama8b(EngineKind::ZipServ).decode_step(32, 1024);
        let speedup = vllm.linear_ms / zip.linear_ms;
        assert!(speedup > 1.3 && speedup < 2.0, "linear speedup {speedup}");
    }

    #[test]
    fn figure16_engine_ordering() {
        // Throughput: ZipServ > vLLM > Transformers > DFloat11.
        let w = Workload::new(32, 512, 512);
        let tput: Vec<f64> = EngineKind::ALL
            .iter()
            .map(|&k| llama8b(k).serve(w).throughput_tps)
            .collect();
        assert!(tput[0] > tput[1], "ZipServ {} vs vLLM {}", tput[0], tput[1]);
        assert!(
            tput[1] > tput[2],
            "vLLM {} vs Transformers {}",
            tput[1],
            tput[2]
        );
        assert!(
            tput[2] > tput[3],
            "Transformers {} vs DFloat11 {}",
            tput[2],
            tput[3]
        );
    }

    #[test]
    fn figure16_speedup_magnitudes() {
        // Paper averages: 1.22× over vLLM, 3.18× over Transformers, 8.52×
        // over DFloat11 — check each within a generous band across the sweep.
        let mut vs_vllm = Vec::new();
        let mut vs_tf = Vec::new();
        let mut vs_df = Vec::new();
        for w in Workload::paper_sweep() {
            let zip = llama8b(EngineKind::ZipServ).serve(w).throughput_tps;
            vs_vllm.push(zip / llama8b(EngineKind::Vllm).serve(w).throughput_tps);
            vs_tf.push(zip / llama8b(EngineKind::Transformers).serve(w).throughput_tps);
            vs_df.push(zip / llama8b(EngineKind::DFloat11).serve(w).throughput_tps);
        }
        let avg = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
        assert!(
            avg(&vs_vllm) > 1.1 && avg(&vs_vllm) < 1.6,
            "vs vLLM {}",
            avg(&vs_vllm)
        );
        assert!(
            avg(&vs_tf) > 2.0 && avg(&vs_tf) < 5.0,
            "vs TF {}",
            avg(&vs_tf)
        );
        assert!(
            avg(&vs_df) > 4.0 && avg(&vs_df) < 12.0,
            "vs DF11 {}",
            avg(&vs_df)
        );
    }

    #[test]
    fn long_outputs_amplify_the_gain() {
        // §6.5: gains grow with output length (KV-capacity effect): at batch
        // 32 / output 2048 the speedup exceeds the sweep average.
        let short = Workload::new(32, 512, 128);
        let long = Workload::new(32, 512, 2048);
        let speedup = |w: Workload| {
            llama8b(EngineKind::ZipServ).serve(w).throughput_tps
                / llama8b(EngineKind::Vllm).serve(w).throughput_tps
        };
        let s_short = speedup(short);
        let s_long = speedup(long);
        assert!(s_long > s_short, "short {s_short} long {s_long}");
        assert!(s_long > 1.3, "long-output speedup {s_long}");
    }

    #[test]
    fn zipserv_expands_kv_capacity() {
        let zip = llama8b(EngineKind::ZipServ);
        let vllm = llama8b(EngineKind::Vllm);
        let ratio = zip.kv_capacity_tokens() as f64 / vllm.kv_capacity_tokens() as f64;
        assert!(ratio > 1.4 && ratio < 2.1, "KV capacity ratio {ratio}");
    }

    #[test]
    fn tensor_parallel_deployments_work() {
        // Mistral-24B on 2×L40S and LLaMA3.1-70B on 4×L40S (§6.5).
        let m24 = ServingEngine::new(
            EngineKind::ZipServ,
            LlmModel::Mistral24b,
            GpuCluster::tensor_parallel(Gpu::L40s, 2),
        );
        let l70 = ServingEngine::new(
            EngineKind::ZipServ,
            LlmModel::Llama31_70b,
            GpuCluster::tensor_parallel(Gpu::L40s, 4),
        );
        let w = Workload::new(8, 512, 256);
        let r24 = m24.serve(w);
        let r70 = l70.serve(w);
        assert!(
            r24.throughput_tps > r70.throughput_tps,
            "bigger model is slower"
        );
        assert!(r70.latency_s > 0.0 && r70.throughput_tps > 10.0);
    }

    #[test]
    fn zipserv_beats_vllm_on_multi_gpu_too() {
        let w = Workload::new(32, 512, 512);
        for (model, tp) in [(LlmModel::Mistral24b, 2u32), (LlmModel::Llama31_70b, 4)] {
            let cluster = GpuCluster::tensor_parallel(Gpu::L40s, tp);
            let zip = ServingEngine::new(EngineKind::ZipServ, model, cluster).serve(w);
            let vllm = ServingEngine::new(EngineKind::Vllm, model, cluster).serve(w);
            let s = zip.throughput_tps / vllm.throughput_tps;
            assert!(s > 1.05 && s < 1.9, "{model}: {s}");
        }
    }

    #[test]
    fn prefill_decomp_overhead_is_small() {
        // §6.4: the decoupled prefill path costs only a few percent.
        let zip = llama8b(EngineKind::ZipServ).prefill_ms(8, 1024);
        let vllm = llama8b(EngineKind::Vllm).prefill_ms(8, 1024);
        let overhead = zip / vllm - 1.0;
        assert!(overhead < 0.15, "prefill overhead {overhead}");
    }

    #[test]
    fn overlapped_prefill_beats_serial() {
        let zip = llama8b(EngineKind::ZipServ);
        let serial = zip.prefill_ms(8, 1024);
        let overlapped = zip.prefill_ms_overlapped(8, 1024);
        assert!(overlapped < serial, "{overlapped} vs {serial}");
        // And cannot beat the GEMM-only floor (vLLM's prefill).
        let vllm = llama8b(EngineKind::Vllm).prefill_ms(8, 1024);
        assert!(overlapped > 0.9 * vllm, "{overlapped} vs floor {vllm}");
    }

    #[test]
    #[should_panic(expected = "requires the ZipServ engine")]
    fn overlapped_prefill_rejects_other_engines() {
        let _ = llama8b(EngineKind::Vllm).prefill_ms_overlapped(8, 512);
    }

    #[test]
    fn builder_defaults_match_positional_constructor() {
        let built = ServingEngine::builder().build();
        let legacy = llama8b(EngineKind::ZipServ);
        assert_eq!(built.kind(), legacy.kind());
        assert_eq!(built.kv_capacity_tokens(), legacy.kv_capacity_tokens());
        assert_eq!(built.policy().name(), "fcfs");
        assert_eq!(built.max_batch(), 64);
    }

    #[test]
    fn builder_configures_policy_and_batch_cap() {
        use crate::policy::SloEdf;
        use crate::scheduler::poisson_arrivals;
        let engine = ServingEngine::builder()
            .kind(EngineKind::ZipServ)
            .model(LlmModel::Llama31_8b)
            .cluster(GpuCluster::single(Gpu::Rtx4090))
            .policy(SloEdf::default())
            .max_batch(8)
            .build();
        assert_eq!(engine.policy().name(), "slo-edf");
        let report = engine.serve_online(poisson_arrivals(6.0, 24, 256, 32, 5));
        assert_eq!(report.completions.len(), 24);
        assert_eq!(report.policy, "slo-edf");
        assert!(
            report.peak_batch <= 8,
            "cap respected: {}",
            report.peak_batch
        );
    }

    #[test]
    fn cloned_engine_keeps_its_policy() {
        use crate::policy::PreemptiveSjf;
        let engine = ServingEngine::builder()
            .policy(PreemptiveSjf::default())
            .build();
        let clone = engine.clone();
        assert_eq!(clone.policy().name(), engine.policy().name());
        assert_eq!(clone.kv_capacity_tokens(), engine.kv_capacity_tokens());
    }

    #[test]
    fn builder_tp_pp_axes_match_explicit_clusters() {
        let via_axes = ServingEngine::builder()
            .model(LlmModel::Llama31_70b)
            .cluster(GpuCluster::single(Gpu::L40s))
            .tp(4)
            .pp(2)
            .build();
        let via_cluster = ServingEngine::builder()
            .model(LlmModel::Llama31_70b)
            .cluster(GpuCluster::pipeline_parallel(Gpu::L40s, 4, 2))
            .build();
        assert_eq!(via_axes.cluster(), via_cluster.cluster());
        assert_eq!(
            via_axes.kv_capacity_tokens(),
            via_cluster.kv_capacity_tokens()
        );
        assert_eq!(
            via_axes.decode_step(32, 1024),
            via_cluster.decode_step(32, 1024)
        );
        assert_eq!(via_axes.micro_batches(), 4, "default 2 x pp");
        let deep = ServingEngine::builder()
            .model(LlmModel::Llama31_70b)
            .cluster(GpuCluster::pipeline_parallel(Gpu::L40s, 4, 2))
            .micro_batches(8)
            .build();
        assert_eq!(deep.micro_batches(), 8);
    }

    #[test]
    fn kv_shards_cover_the_grid_and_agree_with_capacity() {
        let engine = ServingEngine::builder()
            .model(LlmModel::Llama31_70b)
            .cluster(GpuCluster::pipeline_parallel(Gpu::L40s, 4, 2))
            .build();
        let shards = engine.kv_shards();
        assert_eq!(shards.ranks(), 8);
        assert_eq!(shards.capacity_tokens(), engine.kv_capacity_tokens());
        // Non-paged engines still apply the fragmentation haircut on top.
        let eager = ServingEngine::builder()
            .kind(EngineKind::Transformers)
            .build();
        assert!(eager.kv_capacity_tokens() < eager.kv_shards().capacity_tokens());
    }

    #[test]
    fn kv_swap_scales_with_tokens() {
        let eng = llama8b(EngineKind::ZipServ);
        let one = eng.kv_swap_s(1024);
        let four = eng.kv_swap_s(4096);
        assert!(one > 0.0);
        assert!((four / one - 4.0).abs() < 1e-9);
    }

    #[test]
    fn latency_monotone_in_output_length() {
        let eng = llama8b(EngineKind::ZipServ);
        let mut last = 0.0;
        for out in [128u64, 256, 512, 1024] {
            let r = eng.serve(Workload::new(8, 512, out));
            assert!(r.latency_s > last);
            last = r.latency_s;
        }
    }
}

//! Tensor/pipeline-parallel serving race: the §6.5 multi-GPU deployments
//! (plus a two-node pipeline projection) driving the policy-generic
//! continuous-batching simulator.
//!
//! The printed `figures::tp_parallel()` table records the modeled
//! outcomes — per-step linear/attention/all-reduce/p2p breakdowns, TP
//! scaling ratios (the `FIG_TP_SCALING` line the CI smoke check gates
//! on), and the communication seconds the scheduler charges — while the
//! timed section records simulator cost per deployment so scheduler-side
//! regressions show up in `BENCH_baseline.json`.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use zipserv_bench::figures;
use zipserv_gpu_sim::device::Gpu;
use zipserv_kernels::shapes::LlmModel;
use zipserv_serve::cluster::GpuCluster;
use zipserv_serve::engine::{EngineKind, ServingEngine};
use zipserv_serve::policy::Fcfs;
use zipserv_serve::scheduler::{poisson_arrivals, run_policy};

fn bench(c: &mut Criterion) {
    println!("{}", figures::tp_parallel());
    let deployments: Vec<(&str, LlmModel, GpuCluster)> = vec![
        (
            "tp1_rtx4090_8b",
            LlmModel::Llama31_8b,
            GpuCluster::single(Gpu::Rtx4090),
        ),
        (
            "tp2_l40s_24b",
            LlmModel::Mistral24b,
            GpuCluster::tensor_parallel(Gpu::L40s, 2),
        ),
        (
            "tp4_l40s_70b",
            LlmModel::Llama31_70b,
            GpuCluster::tensor_parallel(Gpu::L40s, 4),
        ),
        (
            "tp4_pp2_l40s_70b",
            LlmModel::Llama31_70b,
            GpuCluster::pipeline_parallel(Gpu::L40s, 4, 2),
        ),
    ];
    let arrivals = poisson_arrivals(3.0, 40, 512, 64, 41);
    let mut group = c.benchmark_group("fig_tp/online_40reqs");
    group.sample_size(10);
    for (label, model, cluster) in &deployments {
        let engine = ServingEngine::builder()
            .kind(EngineKind::ZipServ)
            .model(*model)
            .cluster(*cluster)
            .build();
        group.bench_function(label, |b| {
            b.iter(|| run_policy(black_box(&engine), &Fcfs, 64, arrivals.clone()));
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);

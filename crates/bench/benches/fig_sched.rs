//! Scheduling-policy race: the four `SchedulePolicy` implementations
//! driving the continuous-batching simulator over the paper's
//! mixed-priority arrival mix on the ZipServ engine.
//!
//! The printed `figures::sched()` table records the serving-level outcomes
//! (per-class p99 TTFT, SLO attainment, preemptions); the timed section
//! records simulator cost per policy so scheduler-side regressions show up
//! in `BENCH_baseline.json`.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use zipserv_bench::figures;
use zipserv_gpu_sim::device::Gpu;
use zipserv_kernels::shapes::LlmModel;
use zipserv_serve::cluster::GpuCluster;
use zipserv_serve::engine::{EngineKind, ServingEngine};
use zipserv_serve::policy::{Fcfs, PreemptiveSjf, Priority, SchedulePolicy, SloEdf};
use zipserv_serve::scheduler::run_policy;
use zipserv_serve::workload::ArrivalMix;

fn bench(c: &mut Criterion) {
    println!("{}", figures::sched());
    let engine = ServingEngine::builder()
        .kind(EngineKind::ZipServ)
        .model(LlmModel::Llama31_8b)
        .cluster(GpuCluster::single(Gpu::Rtx4090))
        .build();
    let arrivals = ArrivalMix::paper_mix().generate(10.0, 120, 29);
    let policies: Vec<Box<dyn SchedulePolicy>> = vec![
        Box::new(Fcfs),
        Box::new(Priority::default()),
        Box::new(SloEdf::default()),
        Box::new(PreemptiveSjf::default()),
    ];
    let mut group = c.benchmark_group("fig_sched/paper_mix_120reqs");
    group.sample_size(10);
    for policy in &policies {
        group.bench_function(policy.name(), |b| {
            b.iter(|| run_policy(black_box(&engine), policy.as_ref(), 64, arrivals.clone()));
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);

//! Prefix-caching race: one ZipServ replica serving the multi-tenant
//! mix with the shared-prefix registry off vs on.
//!
//! The printed `figures::prefix()` tables record the modeled outcomes —
//! hit rate, prefill-FLOPs saved, the interactive TTFT comparison, and
//! the session-affinity fleet compounding, plus the `FIG_PREFIX` line
//! the CI smoke check gates on — while the timed section records
//! scheduler + registry cost per caching mode so prefix-layer
//! regressions show up in `BENCH_baseline.json`.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use zipserv_bench::figures;
use zipserv_gpu_sim::device::Gpu;
use zipserv_kernels::shapes::LlmModel;
use zipserv_serve::cluster::GpuCluster;
use zipserv_serve::engine::{EngineKind, ServingEngine};
use zipserv_serve::policy::Priority;
use zipserv_serve::workload::ArrivalMix;

fn bench(c: &mut Criterion) {
    println!("{}", figures::prefix());
    let build = |caching: bool| {
        ServingEngine::builder()
            .kind(EngineKind::ZipServ)
            .model(LlmModel::Llama31_8b)
            .cluster(GpuCluster::single(Gpu::Rtx4090))
            .policy(Priority::default())
            .max_batch(16)
            .prefix_caching(caching)
            .build()
    };
    let uncached = build(false);
    let cached = build(true);
    let arrivals = ArrivalMix::multi_tenant_mix().generate(7.0, 320, 53);
    let mut group = c.benchmark_group("fig_prefix/1replica_320reqs");
    group.sample_size(10);
    group.bench_function("caching_off", |b| {
        b.iter(|| black_box(&uncached).serve_online(arrivals.clone()));
    });
    group.bench_function("caching_on", |b| {
        b.iter(|| black_box(&cached).serve_online(arrivals.clone()));
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);

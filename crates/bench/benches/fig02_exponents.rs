//! Figure 2: exponent statistics of LLM weights. Prints the table, then
//! benchmarks real histogram construction over one million BF16 weights.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use zipserv_bench::figures;
use zipserv_bf16::gen::WeightGen;
use zipserv_bf16::stats::{ExponentHistogram, ExponentSummary};

fn bench(c: &mut Criterion) {
    println!("{}", figures::fig02());
    println!("{}", figures::contiguity());
    let weights = WeightGen::new(0.018).seed(1).vector(1 << 20);
    c.bench_function("fig02/histogram_1M", |b| {
        b.iter(|| ExponentHistogram::from_values(black_box(&weights).iter().copied()));
    });
    let hist = ExponentHistogram::from_values(weights.iter().copied());
    c.bench_function("fig02/summary", |b| {
        b.iter(|| ExponentSummary::from_histogram(black_box(&hist)));
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench
}
criterion_main!(benches);

//! Figure 18 / §7: training-oriented GPUs and the lossy Marlin comparison.

use criterion::{criterion_group, criterion_main, Criterion};
use zipserv_bench::figures;

fn bench(c: &mut Criterion) {
    println!("{}", figures::fig18());
    c.bench_function("fig18/datacenter_sweep", |b| {
        b.iter(figures::fig18);
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench
}
criterion_main!(benches);

//! Figure 12: micro-level analysis — plus a benchmark of the real
//! lane-exact tile decoder that generates the instruction workload.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use zipserv_bench::figures;
use zipserv_bf16::gen::WeightGen;
use zipserv_core::decompress::{decode_tile_lanewise, decode_tile_lut, decode_tile_simd};
use zipserv_core::{TbeCompressor, ZipGemm};

fn bench(c: &mut Criterion) {
    println!("{}", figures::fig12());
    let w = WeightGen::new(0.018).seed(12).matrix(64, 64);
    let tbe = TbeCompressor::new().compress(&w).expect("tileable");
    c.bench_function("fig12/decode_tile_lanewise", |b| {
        b.iter(|| decode_tile_lanewise(black_box(tbe.tile_view(0)), tbe.base_exp()));
    });
    // The table-driven and plane-sliced decoders race the same tile; the
    // lanewise/LUT ratio is gated in CI as `decode_ns_per_tile`.
    c.bench_function("fig12/decode_tile_lut", |b| {
        b.iter(|| decode_tile_lut(black_box(tbe.tile_view(0)), tbe.base_exp()));
    });
    c.bench_function("fig12/decode_tile_simd", |b| {
        b.iter(|| decode_tile_simd(black_box(tbe.tile_view(0)), tbe.base_exp()));
    });

    // One BlockTile-sized fused pass, naive vs blocked: at the micro level
    // the win is exactly the per-tile decode caching + register blocking.
    let x = WeightGen::new(0.5).seed(13).matrix(64, 32);
    let kernel = ZipGemm::new();
    c.bench_function("fig12/zipgemm_naive_64x64xb32", |b| {
        b.iter(|| kernel.multiply_reference(black_box(&tbe), black_box(&x)));
    });
    c.bench_function("fig12/zipgemm_blocked_64x64xb32", |b| {
        b.iter(|| kernel.multiply(black_box(&tbe), black_box(&x)));
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(50);
    targets = bench
}
criterion_main!(benches);

//! Figure 12: micro-level analysis — plus a benchmark of the real
//! lane-exact tile decoder that generates the instruction workload.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use zipserv_bench::figures;
use zipserv_bf16::gen::WeightGen;
use zipserv_core::decompress::decode_tile_lanewise;
use zipserv_core::TbeCompressor;

fn bench(c: &mut Criterion) {
    println!("{}", figures::fig12());
    let w = WeightGen::new(0.018).seed(12).matrix(64, 64);
    let tbe = TbeCompressor::new().compress(&w).expect("tileable");
    c.bench_function("fig12/decode_tile_lanewise", |b| {
        b.iter(|| decode_tile_lanewise(black_box(tbe.tile_view(0)), tbe.base_exp()));
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(50);
    targets = bench
}
criterion_main!(benches);

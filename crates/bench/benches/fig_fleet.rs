//! Fleet-routing race: four ZipServ replicas serving the paper's mixed
//! trace under round-robin vs power-of-two-choices routing.
//!
//! The printed `figures::fleet()` tables record the modeled outcomes —
//! the per-policy TTFT/throughput/imbalance comparison and the
//! autoscaling race, plus the `FIG_FLEET` line the CI smoke check gates
//! on — while the timed section records router + simulator cost per
//! route policy so fleet-layer regressions show up in
//! `BENCH_baseline.json`.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use zipserv_bench::figures;
use zipserv_gpu_sim::device::Gpu;
use zipserv_kernels::shapes::LlmModel;
use zipserv_serve::cluster::GpuCluster;
use zipserv_serve::engine::{EngineKind, ServingEngine};
use zipserv_serve::fleet::{FleetRouter, PowerOfTwoChoices, RoundRobin};
use zipserv_serve::policy::Priority;
use zipserv_serve::workload::ArrivalMix;

fn bench(c: &mut Criterion) {
    println!("{}", figures::fleet());
    let engine = ServingEngine::builder()
        .kind(EngineKind::ZipServ)
        .model(LlmModel::Llama31_8b)
        .cluster(GpuCluster::single(Gpu::Rtx4090))
        .policy(Priority::default())
        .max_batch(16)
        .build();
    let arrivals = ArrivalMix::paper_mix().generate(7.0, 320, 53);
    let mut group = c.benchmark_group("fig_fleet/4replicas_320reqs");
    group.sample_size(10);
    group.bench_function("round_robin", |b| {
        b.iter(|| {
            FleetRouter::new(RoundRobin::default())
                .with_replicas(black_box(&engine), 4)
                .run(arrivals.clone())
        });
    });
    group.bench_function("power_of_two", |b| {
        b.iter(|| {
            FleetRouter::new(PowerOfTwoChoices::default())
                .with_replicas(black_box(&engine), 4)
                .run(arrivals.clone())
        });
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);

//! Figure 1: decoupled lossless pipelines vs the core GEMM on L40S GateUp
//! layers. Prints the paper table, then benchmarks the pipeline model.

use criterion::{criterion_group, criterion_main, Criterion};
use zipserv_bench::figures;

fn bench(c: &mut Criterion) {
    println!("{}", figures::fig01());
    c.bench_function("fig01/pipeline_sweep", |b| {
        b.iter(figures::fig01);
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);

//! Figure 13: standalone decompression. Prints the modeled GPU comparison,
//! then benchmarks the *real* Rust decoders against each other: the
//! fixed-length TCA-TBE decoder should beat the entropy-coded baselines in
//! wall-clock CPU throughput too, for the same structural reasons.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use zipserv_bench::figures;
use zipserv_bf16::gen::WeightGen;
use zipserv_core::{TbeCompressor, ZipGemm};
use zipserv_entropy::huffman::ChunkedHuffman;
use zipserv_entropy::rans::RansBlob;
use zipserv_entropy::split::split_planes;

fn bench(c: &mut Criterion) {
    println!("{}", figures::fig13());

    let w = WeightGen::new(0.018).seed(13).matrix(256, 1024);
    let weights = w.as_slice().to_vec();
    let planes = split_planes(&weights);

    let tbe = TbeCompressor::new().compress(&w).expect("tileable");
    let huff = ChunkedHuffman::compress(&planes.exponents, 8192).expect("non-empty");
    let rans = RansBlob::compress(&planes.exponents, 32).expect("non-empty");

    let mut group = c.benchmark_group("fig13/decode_262k_weights");
    group.bench_function("tca_tbe", |b| {
        b.iter(|| black_box(&tbe).decompress());
    });
    group.bench_function("huffman_dfloat11", |b| {
        b.iter(|| black_box(&huff).decompress().expect("valid"));
    });
    group.bench_function("rans_dietgpu", |b| {
        b.iter(|| black_box(&rans).decompress().expect("valid"));
    });
    // The fused alternative: instead of decompressing to a dense matrix,
    // run the blocked ZipGEMM straight off the compressed form (decode
    // batch of 8 columns) — decode work identical, GEMM folded in.
    let x = WeightGen::new(0.5).seed(14).matrix(1024, 8);
    let kernel = ZipGemm::new();
    group.bench_function("tca_tbe_fused_gemm_b8", |b| {
        b.iter(|| kernel.multiply(black_box(&tbe), black_box(&x)));
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench
}
criterion_main!(benches);

//! Fault-injection and recovery race: the TP2 deployment serving the
//! paper's mixed-priority trace clean, through a rank-failure/repair
//! cycle, and under a seeded chaos plan.
//!
//! The printed `figures::fault_recovery()` table records the modeled
//! outcomes — goodput, availability, retries, recompute work and the
//! `FIG_FAULT` line the CI smoke check gates on — while the timed section
//! records simulator cost per scenario so fault-path regressions show up
//! in `BENCH_baseline.json`.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use zipserv_bench::figures;
use zipserv_gpu_sim::device::Gpu;
use zipserv_kernels::shapes::LlmModel;
use zipserv_serve::cluster::GpuCluster;
use zipserv_serve::engine::{EngineKind, ServingEngine};
use zipserv_serve::fault::{FaultPlan, RetryPolicy};
use zipserv_serve::policy::Fcfs;
use zipserv_serve::scheduler::run_policy_faulted;
use zipserv_serve::workload::ArrivalMix;

fn bench(c: &mut Criterion) {
    println!("{}", figures::fault_recovery());
    let engine = ServingEngine::builder()
        .kind(EngineKind::ZipServ)
        .model(LlmModel::Llama31_8b)
        .cluster(GpuCluster::tensor_parallel(Gpu::L40s, 2))
        .build();
    let arrivals = ArrivalMix::paper_mix().generate(12.0, 100, 37);
    let retry = RetryPolicy::default();
    let clean = run_policy_faulted(
        &engine,
        &Fcfs,
        64,
        arrivals.clone(),
        &FaultPlan::default(),
        &retry,
    );
    let scenarios: Vec<(&str, FaultPlan)> = vec![
        ("clean", FaultPlan::default()),
        (
            "fail_repair",
            FaultPlan::new()
                .rank_fail(0.3 * clean.duration_s, 0)
                .rank_repair(0.6 * clean.duration_s, 0),
        ),
        ("seeded_chaos", FaultPlan::seeded(7, clean.duration_s, 2)),
    ];
    let mut group = c.benchmark_group("fig_fault/online_100reqs");
    group.sample_size(10);
    for (label, plan) in &scenarios {
        group.bench_function(label, |b| {
            b.iter(|| {
                run_policy_faulted(
                    black_box(&engine),
                    &Fcfs,
                    64,
                    arrivals.clone(),
                    plan,
                    &retry,
                )
            });
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);

//! Pipeline-schedule and chunked-prefill race: the PP2 deployment
//! serving the paper's mixed-priority trace through the legacy
//! whole-prefill admission path and the streaming chunked-prefill path.
//!
//! The printed `figures::pipeline()` tables record the modeled outcomes
//! — the GPipe-vs-1F1B bubble sweep and the interactive-TTFT payoff,
//! plus the `FIG_PIPELINE` line the CI smoke check gates on — while the
//! timed section records simulator cost per prefill mode so
//! chunked-admission regressions show up in `BENCH_baseline.json`.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use zipserv_bench::figures;
use zipserv_gpu_sim::device::Gpu;
use zipserv_kernels::shapes::LlmModel;
use zipserv_serve::cluster::GpuCluster;
use zipserv_serve::engine::{EngineKind, ServingEngine};
use zipserv_serve::policy::Priority;
use zipserv_serve::scheduler::run_policy;
use zipserv_serve::workload::ArrivalMix;

fn bench(c: &mut Criterion) {
    println!("{}", figures::pipeline());
    let arrivals = ArrivalMix::paper_mix().generate(12.0, 80, 37);
    let modes: Vec<(&str, bool)> = vec![("legacy_prefill", false), ("chunked_prefill", true)];
    let mut group = c.benchmark_group("fig_pipeline/online_80reqs");
    group.sample_size(10);
    for (label, chunked) in &modes {
        let engine = ServingEngine::builder()
            .kind(EngineKind::ZipServ)
            .model(LlmModel::Llama31_8b)
            .cluster(GpuCluster::pipeline_parallel(Gpu::L40s, 1, 2))
            .chunked_prefill(*chunked)
            .build();
        group.bench_function(label, |b| {
            b.iter(|| {
                run_policy(
                    black_box(&engine),
                    &Priority::default(),
                    64,
                    arrivals.clone(),
                )
            });
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);

//! Compression-side throughput of every codec in the repository: TCA-TBE
//! against the Huffman and rANS baselines (encode and decode).

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use zipserv_bf16::gen::WeightGen;
use zipserv_core::TbeCompressor;
use zipserv_entropy::huffman::ChunkedHuffman;
use zipserv_entropy::rans::{PlanarRansBlob, RansBlob};
use zipserv_entropy::split::split_planes;

fn bench(c: &mut Criterion) {
    let w = WeightGen::new(0.018).seed(77).matrix(512, 512);
    let weights = w.as_slice().to_vec();
    let planes = split_planes(&weights);
    let n = weights.len() as u64;

    let mut group = c.benchmark_group("codec_encode");
    group.throughput(Throughput::Elements(n));
    group.bench_function("tca_tbe", |b| {
        let comp = TbeCompressor::new().with_threads(1);
        b.iter(|| comp.compress(black_box(&w)).expect("tileable"));
    });
    group.bench_function("huffman", |b| {
        b.iter(|| ChunkedHuffman::compress(black_box(&planes.exponents), 8192).expect("ok"));
    });
    group.bench_function("rans32", |b| {
        b.iter(|| RansBlob::compress(black_box(&planes.exponents), 32).expect("ok"));
    });
    group.bench_function("rans32_planar", |b| {
        b.iter(|| PlanarRansBlob::compress(black_box(&planes.exponents), 32).expect("ok"));
    });
    group.finish();

    let tbe = TbeCompressor::new().compress(&w).expect("tileable");
    let huff = ChunkedHuffman::compress(&planes.exponents, 8192).expect("ok");
    let rans = RansBlob::compress(&planes.exponents, 32).expect("ok");
    let planar = PlanarRansBlob::compress(&planes.exponents, 32).expect("ok");
    let mut group = c.benchmark_group("codec_decode");
    group.throughput(Throughput::Elements(n));
    group.bench_function("tca_tbe", |b| b.iter(|| black_box(&tbe).decompress()));
    group.bench_function("huffman", |b| {
        b.iter(|| black_box(&huff).decompress().expect("ok"))
    });
    group.bench_function("rans32", |b| {
        b.iter(|| black_box(&rans).decompress().expect("ok"))
    });
    // Same table, same symbols, but per-stream payload partitions: the
    // decode loop carries no cross-stream byte-cursor dependence.
    group.bench_function("rans32_planar", |b| {
        b.iter(|| black_box(&planar).decompress().expect("ok"));
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);

//! Ablation benches: the real packed-bitstream decoder vs the triple-bitmap
//! decoder on identical tiles (the §4.2 layout argument, measured on CPU).

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use zipserv_bench::figures;
use zipserv_bf16::gen::WeightGen;
use zipserv_bf16::Bf16;
use zipserv_core::ablation::PackedTile;
use zipserv_core::format::tile::EncodedTile;

fn bench(c: &mut Criterion) {
    println!("{}", figures::ablation());
    println!("{}", figures::kv_compression());

    let weights = WeightGen::new(0.02).seed(9).outliers(0.04, 40.0).vector(64);
    let tile: [Bf16; 64] = core::array::from_fn(|i| weights[i]);
    let base = Bf16::from_f32(0.02).exponent().saturating_sub(4);
    let bitmap = EncodedTile::encode(&tile, base);
    let packed = PackedTile::encode(&tile, base);

    let mut group = c.benchmark_group("ablation/tile_decode");
    group.bench_function("triple_bitmap", |b| {
        b.iter(|| black_box(&bitmap).decode(base));
    });
    group.bench_function("packed_bitstream", |b| {
        b.iter(|| black_box(&packed).decode(base));
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(50);
    targets = bench
}
criterion_main!(benches);

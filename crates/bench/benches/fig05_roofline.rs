//! Figure 5: roofline / compute-intensity analysis (Equations 1–3).

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use zipserv_bench::figures;
use zipserv_gpu_sim::roofline::figure5_series;

fn bench(c: &mut Criterion) {
    println!("{}", figures::fig05());
    c.bench_function("fig05/series", |b| {
        b.iter(|| figure5_series(black_box(&[8, 16, 32, 64]), 1.51));
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(50);
    targets = bench
}
criterion_main!(benches);

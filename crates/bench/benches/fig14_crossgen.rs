//! Figure 14: cross-generation / cross-tier comparison.

use criterion::{criterion_group, criterion_main, Criterion};
use zipserv_bench::figures;

fn bench(c: &mut Criterion) {
    println!("{}", figures::fig14());
    c.bench_function("fig14/crossgen_sweep", |b| {
        b.iter(figures::fig14);
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench
}
criterion_main!(benches);

//! Figure 11: kernel speedups over cuBLAS_TC across eleven models, four
//! layers and three batch sizes on RTX4090 and L40S — plus the *real*
//! functional ZipGEMM kernels racing each other on the CPU: the naive
//! reference triple loop vs. the blocked kernel (per-tile decode caching +
//! register-blocked micro-kernel) vs. the parallel blocked kernel.

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use zipserv_bench::figures;
use zipserv_bf16::gen::WeightGen;
use zipserv_core::{TbeCompressor, ZipGemm};

fn bench(c: &mut Criterion) {
    println!("{}", figures::fig11());
    c.bench_function("fig11/full_sweep", |b| {
        b.iter(figures::fig11);
    });

    // Real CPU kernels on an M-slice of the fig11 decode-regime GEMM
    // (GateUp 28672×4096 @ batch 32): same K, same batch, 512 of the 28672
    // output rows so the naive baseline stays benchable. Work per output
    // row is identical, so the blocked/naive ratio carries over.
    let (m, k, n) = (512usize, 4096usize, 32usize);
    let w = WeightGen::new(0.018).seed(111).matrix(m, k);
    let x = WeightGen::new(0.5).seed(112).matrix(k, n);
    let tbe = TbeCompressor::new().compress(&w).expect("tileable");
    let kernel = ZipGemm::new();

    let mut group = c.benchmark_group("fig11/zipgemm_real_512x4096xb32");
    group.sample_size(10);
    group.throughput(Throughput::Elements((m * k * n) as u64));
    group.bench_function("naive_reference", |b| {
        b.iter(|| kernel.multiply_reference(black_box(&tbe), black_box(&x)));
    });
    group.bench_function("blocked", |b| {
        b.iter(|| kernel.multiply(black_box(&tbe), black_box(&x)));
    });
    group.bench_function("blocked_parallel4", |b| {
        b.iter(|| kernel.multiply_parallel(black_box(&tbe), black_box(&x), 4));
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);

//! Figure 11: kernel speedups over cuBLAS_TC across eleven models, four
//! layers and three batch sizes on RTX4090 and L40S.

use criterion::{criterion_group, criterion_main, Criterion};
use zipserv_bench::figures;

fn bench(c: &mut Criterion) {
    println!("{}", figures::fig11());
    c.bench_function("fig11/full_sweep", |b| {
        b.iter(figures::fig11);
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);

//! §6.4: offline compression cost — measures the real TCA-TBE compressor's
//! throughput (paper: LLaMA3.1-8B in ~2.5 min on 16 cores).

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use zipserv_bench::figures;
use zipserv_bf16::gen::WeightGen;
use zipserv_core::TbeCompressor;

fn bench(c: &mut Criterion) {
    println!("{}", figures::offline());
    let w = WeightGen::new(0.018).seed(64).matrix(1024, 1024);
    let mut group = c.benchmark_group("offline_compress");
    group.throughput(Throughput::Elements((w.rows() * w.cols()) as u64));
    group.bench_function("tca_tbe_1M_parallel", |b| {
        let comp = TbeCompressor::new();
        b.iter(|| comp.compress(black_box(&w)).expect("tileable"));
    });
    group.bench_function("tca_tbe_1M_single_thread", |b| {
        let comp = TbeCompressor::new().with_threads(1);
        b.iter(|| comp.compress(black_box(&w)).expect("tileable"));
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);

//! Figure 15: fused-vs-decoupled behaviour across N (decode → prefill).

use criterion::{criterion_group, criterion_main, Criterion};
use zipserv_bench::figures;

fn bench(c: &mut Criterion) {
    println!("{}", figures::fig15());
    c.bench_function("fig15/n_sweep", |b| {
        b.iter(figures::fig15);
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench
}
criterion_main!(benches);

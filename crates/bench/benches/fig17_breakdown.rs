//! Figure 17: decode-step latency and memory breakdown.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use zipserv_bench::figures;
use zipserv_gpu_sim::device::Gpu;
use zipserv_kernels::shapes::LlmModel;
use zipserv_serve::cluster::GpuCluster;
use zipserv_serve::engine::{EngineKind, ServingEngine};

fn bench(c: &mut Criterion) {
    println!("{}", figures::fig17());
    let engine = ServingEngine::new(
        EngineKind::ZipServ,
        LlmModel::Llama31_8b,
        GpuCluster::single(Gpu::Rtx4090),
    );
    c.bench_function("fig17/decode_step", |b| {
        b.iter(|| black_box(&engine).decode_step(32, 1024));
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench
}
criterion_main!(benches);

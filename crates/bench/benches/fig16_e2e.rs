//! Figure 16: end-to-end serving comparison across the four engines and
//! three deployments.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use zipserv_bench::figures;
use zipserv_gpu_sim::device::Gpu;
use zipserv_kernels::shapes::LlmModel;
use zipserv_serve::cluster::GpuCluster;
use zipserv_serve::engine::{EngineKind, ServingEngine};
use zipserv_serve::workload::Workload;

fn bench(c: &mut Criterion) {
    println!("{}", figures::fig16());
    let engine = ServingEngine::new(
        EngineKind::ZipServ,
        LlmModel::Llama31_8b,
        GpuCluster::single(Gpu::Rtx4090),
    );
    let w = Workload::new(32, 512, 2048);
    c.bench_function("fig16/serve_llama8b_bs32_out2048", |b| {
        b.iter(|| black_box(&engine).serve(w));
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);

//! Online continuous-batching bench: the scheduler simulation itself.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use zipserv_bench::figures;
use zipserv_gpu_sim::device::Gpu;
use zipserv_kernels::shapes::LlmModel;
use zipserv_serve::cluster::GpuCluster;
use zipserv_serve::engine::{EngineKind, ServingEngine};
use zipserv_serve::scheduler::{poisson_arrivals, ContinuousBatcher};

fn bench(c: &mut Criterion) {
    println!("{}", figures::online());
    let engine = ServingEngine::new(
        EngineKind::ZipServ,
        LlmModel::Llama31_8b,
        GpuCluster::single(Gpu::Rtx4090),
    );
    let arrivals = poisson_arrivals(6.0, 40, 512, 128, 3);
    c.bench_function("online/continuous_batching_40reqs", |b| {
        b.iter(|| ContinuousBatcher::new(black_box(&engine)).run(arrivals.clone()));
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);

//! Regenerates the paper's tables and figures.
//!
//! ```text
//! cargo run -p zipserv-bench --release --bin repro -- --all
//! cargo run -p zipserv-bench --release --bin repro -- --exp fig11 --exp fig16
//! cargo run -p zipserv-bench --release --bin repro -- --list
//! ```

use zipserv_bench::figures::all_experiments;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let experiments = all_experiments();

    if args.is_empty() || args.iter().any(|a| a == "--help" || a == "-h") {
        eprintln!("usage: repro [--all] [--list] [--exp <id>]...");
        eprintln!("experiments:");
        for (id, _) in &experiments {
            eprintln!("  {id}");
        }
        return;
    }

    if args.iter().any(|a| a == "--list") {
        for (id, _) in &experiments {
            println!("{id}");
        }
        return;
    }

    let selected: Vec<&str> = if args.iter().any(|a| a == "--all") {
        experiments.iter().map(|(id, _)| *id).collect()
    } else {
        args.iter()
            .filter(|a| !a.starts_with("--"))
            .map(|s| s.as_str())
            .collect()
    };

    let mut missing = Vec::new();
    for want in &selected {
        match experiments.iter().find(|(id, _)| id == want) {
            Some((id, gen)) => {
                println!("==================== {id} ====================");
                println!("{}", gen());
            }
            None => missing.push(*want),
        }
    }
    if !missing.is_empty() {
        eprintln!("unknown experiments: {missing:?} (use --list)");
        std::process::exit(1);
    }
}

//! CI bench-smoke gate: compares *ratios* from a bench-run log against
//! `BENCH_baseline.json`, failing on > 25% regression.
//!
//! Shared runners are far too noisy to gate on absolute ns, but ratios of
//! benches measured in the same run (blocked vs naive ZipGEMM, TCA-TBE vs
//! baseline codecs) cancel the machine out, and the modeled TP-scaling
//! ratios (`FIG_TP_SCALING`, printed by the `fig_tp` bench) are
//! deterministic. Measured speedup ratios are gated one-sided — only a
//! drop past the tolerance fails (a faster kernel is not a regression,
//! and even same-container re-records drift ~10% in either direction);
//! the deterministic TP-scaling ratios are gated symmetrically, since any
//! drift there means the cost model itself changed. Usage:
//!
//! ```text
//! cargo bench -p zipserv-bench --bench fig11_kernels ... | tee bench.log
//! cargo run -p zipserv-bench --bin smoke_check -- bench.log BENCH_baseline.json
//! ```

use std::collections::HashMap;
use std::process::ExitCode;

/// Relative drift allowed before a ratio counts as a regression.
const TOLERANCE: f64 = 0.25;

/// Parses `id    12345.6 ns/iter ...` bench lines into `id -> mean_ns`.
fn parse_bench_log(log: &str) -> HashMap<String, f64> {
    let mut out = HashMap::new();
    for line in log.lines() {
        let mut parts = line.split_whitespace();
        let (Some(id), Some(mean), Some(unit)) = (parts.next(), parts.next(), parts.next()) else {
            continue;
        };
        if unit != "ns/iter" {
            continue;
        }
        if let Ok(v) = mean.parse::<f64>() {
            out.insert(id.to_string(), v);
        }
    }
    out
}

/// Parses a machine-readable `<PREFIX> k1=<x> k2=<y>` line (the
/// `FIG_TP_SCALING` line from the fig_tp bench, the `FIG_FAULT` line from
/// fig_fault, the `FIG_PIPELINE` line from fig_pipeline, the `FIG_FLEET`
/// line from fig_fleet, the `FIG_PREFIX` line from fig_prefix) into its
/// key/value pairs.
fn parse_kv_line(log: &str, prefix: &str) -> HashMap<String, f64> {
    let mut out = HashMap::new();
    for line in log.lines() {
        let Some(rest) = line.strip_prefix(prefix) else {
            continue;
        };
        for kv in rest.split_whitespace() {
            if let Some((k, v)) = kv.split_once('=') {
                if let Ok(v) = v.parse::<f64>() {
                    out.insert(k.to_string(), v);
                }
            }
        }
    }
    out
}

/// Minimal extractor for the flat numeric fields this check needs from
/// `BENCH_baseline.json` (the vendored `serde` is a no-op stand-in, so the
/// baseline is parsed by key search; keys are unique in that file).
fn baseline_number(json: &str, key: &str) -> Option<f64> {
    let needle = format!("\"{key}\"");
    let at = json.find(&needle)? + needle.len();
    let rest = &json[at..];
    let num_start = rest.find(|c: char| c.is_ascii_digit() || c == '-')?;
    let tail = &rest[num_start..];
    let end = tail
        .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-'))
        .unwrap_or(tail.len());
    tail[..end].parse().ok()
}

/// `mean_ns` of one bench id in the baseline: the first number after the
/// id's key (the `mean_ns` field).
fn baseline_mean_ns(json: &str, id: &str) -> Option<f64> {
    baseline_number(json, id)
}

struct Check {
    name: &'static str,
    current: f64,
    baseline: f64,
    /// Measured speedups regress only downward (one-sided gate);
    /// deterministic model ratios must not move in either direction.
    symmetric: bool,
}

impl Check {
    fn drift(&self) -> f64 {
        let signed = self.current / self.baseline - 1.0;
        if self.symmetric {
            signed.abs()
        } else {
            (-signed).max(0.0)
        }
    }

    fn pass(&self) -> bool {
        self.baseline > 0.0 && self.drift() <= TOLERANCE
    }
}

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    let (Some(log_path), Some(baseline_path)) = (args.next(), args.next()) else {
        eprintln!("usage: smoke_check <bench.log> <BENCH_baseline.json>");
        return ExitCode::from(2);
    };
    let log = std::fs::read_to_string(&log_path).expect("bench log readable");
    let baseline = std::fs::read_to_string(&baseline_path).expect("baseline readable");
    let means = parse_bench_log(&log);
    let tp = parse_kv_line(&log, "FIG_TP_SCALING ");
    let fault = parse_kv_line(&log, "FIG_FAULT ");
    let pipeline = parse_kv_line(&log, "FIG_PIPELINE ");
    let fleet = parse_kv_line(&log, "FIG_FLEET ");
    let prefix = parse_kv_line(&log, "FIG_PREFIX ");

    let log_ratio =
        |num: &str, den: &str| -> Option<f64> { Some(means.get(num)? / means.get(den)?) };
    let base_ratio = |num: &str, den: &str| -> Option<f64> {
        Some(baseline_mean_ns(&baseline, num)? / baseline_mean_ns(&baseline, den)?)
    };

    // (name, current ratio, baseline ratio) — measured-in-the-same-run
    // kernel ratios first, then the deterministic TP-scaling model ratios.
    let ratio_pairs: [(&str, &str, &str); 5] = [
        (
            "blocked_vs_naive_fig11_slice",
            "fig11/zipgemm_real_512x4096xb32/naive_reference",
            "fig11/zipgemm_real_512x4096xb32/blocked",
        ),
        (
            "blocked_vs_naive_64x64",
            "fig12/zipgemm_naive_64x64xb32",
            "fig12/zipgemm_blocked_64x64xb32",
        ),
        (
            // The table-driven decoder's speedup over the lanewise
            // reference on one tile — the tentpole ratio that broke the
            // 232 ns decode floor. One-sided: only the LUT path getting
            // slower (relative to lanewise, same run) is a regression.
            "decode_ns_per_tile",
            "fig12/decode_tile_lanewise",
            "fig12/decode_tile_lut",
        ),
        (
            "tca_tbe_vs_huffman_decomp",
            "fig13/decode_262k_weights/huffman_dfloat11",
            "fig13/decode_262k_weights/tca_tbe",
        ),
        (
            "tca_tbe_vs_rans_decomp",
            "fig13/decode_262k_weights/rans_dietgpu",
            "fig13/decode_262k_weights/tca_tbe",
        ),
    ];

    let mut checks = Vec::new();
    let mut missing = Vec::new();
    for (name, num, den) in ratio_pairs {
        match (log_ratio(num, den), base_ratio(num, den)) {
            (Some(current), Some(baseline)) => checks.push(Check {
                name,
                current,
                baseline,
                symmetric: false,
            }),
            _ => missing.push(name),
        }
    }
    for (name, key, source) in [
        ("fig_tp_scaling_tp2", "tp2", &tp),
        ("fig_tp_scaling_tp4", "tp4", &tp),
        ("fig_fault_goodput_ratio", "goodput_ratio", &fault),
        ("fig_fault_availability", "availability", &fault),
        ("fig_pipeline_min_bubble_gain", "min_bubble_gain", &pipeline),
        (
            "fig_pipeline_bubble_gain_pp4_m8",
            "bubble_gain_pp4_m8",
            &pipeline,
        ),
        ("fig_pipeline_ttft_p99_gain", "ttft_p99_gain", &pipeline),
        ("fig_pipeline_tput_ratio", "tput_ratio", &pipeline),
        ("fig_fleet_p2c_ttft_gain", "p2c_ttft_gain", &fleet),
        ("fig_fleet_p2c_tput_ratio", "p2c_tput_ratio", &fleet),
        ("fig_fleet_imbalance_ratio", "imbalance_ratio", &fleet),
        (
            "fig_fleet_autoscale_tput_ratio",
            "autoscale_tput_ratio",
            &fleet,
        ),
        ("fig_prefix_flops_saved", "flops_saved", &prefix),
        ("fig_prefix_ttft_gain", "ttft_gain", &prefix),
    ] {
        match (source.get(key), baseline_number(&baseline, name)) {
            (Some(&current), Some(baseline)) => checks.push(Check {
                name,
                current,
                baseline,
                symmetric: true,
            }),
            _ => missing.push(name),
        }
    }

    if !missing.is_empty() {
        eprintln!(
            "smoke_check: missing data for {missing:?} (bench not run or baseline entry absent)"
        );
        return ExitCode::FAILURE;
    }

    let mut failed = false;
    println!(
        "{:<32} {:>9} {:>9} {:>7}  verdict",
        "ratio", "current", "baseline", "drift"
    );
    for c in &checks {
        let verdict = if c.pass() { "ok" } else { "REGRESSION" };
        failed |= !c.pass();
        println!(
            "{:<32} {:>9.3} {:>9.3} {:>6.1}%  {verdict}",
            c.name,
            c.current,
            c.baseline,
            100.0 * c.drift()
        );
    }
    if failed {
        eprintln!(
            "smoke_check: ratio drifted more than {:.0}% from baseline",
            100.0 * TOLERANCE
        );
        return ExitCode::FAILURE;
    }
    println!(
        "smoke_check: all {} ratios within {:.0}%",
        checks.len(),
        100.0 * TOLERANCE
    );
    ExitCode::SUCCESS
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_bench_lines_and_scaling() {
        let log = "a/b/c        123.4 ns/iter   55.0 Melem/s\nnot a bench line\n\
                   FIG_TP_SCALING tp2=1.5 tp4=2.0\nFIG_FAULT goodput_ratio=0.8123 availability=0.9511\n\
                   FIG_PIPELINE min_bubble_gain=1.67 ttft_p99_gain=5.28 tput_ratio=0.99\n\
                   FIG_FLEET p2c_ttft_gain=1.29 autoscale_tput_ratio=2.91\n\
                   FIG_PREFIX flops_saved=0.68 ttft_gain=32.26\n";
        let means = parse_bench_log(log);
        assert_eq!(means.get("a/b/c"), Some(&123.4));
        assert_eq!(means.len(), 1);
        let tp = parse_kv_line(log, "FIG_TP_SCALING ");
        assert_eq!(tp.get("tp2"), Some(&1.5));
        assert_eq!(tp.get("tp4"), Some(&2.0));
        let fault = parse_kv_line(log, "FIG_FAULT ");
        assert_eq!(fault.get("goodput_ratio"), Some(&0.8123));
        assert_eq!(fault.get("availability"), Some(&0.9511));
        let pipeline = parse_kv_line(log, "FIG_PIPELINE ");
        assert_eq!(pipeline.get("min_bubble_gain"), Some(&1.67));
        assert_eq!(pipeline.get("tput_ratio"), Some(&0.99));
        let fleet = parse_kv_line(log, "FIG_FLEET ");
        assert_eq!(fleet.get("p2c_ttft_gain"), Some(&1.29));
        assert_eq!(fleet.get("autoscale_tput_ratio"), Some(&2.91));
        let prefix = parse_kv_line(log, "FIG_PREFIX ");
        assert_eq!(prefix.get("flops_saved"), Some(&0.68));
        assert_eq!(prefix.get("ttft_gain"), Some(&32.26));
    }

    #[test]
    fn extracts_baseline_numbers() {
        let json = r#"{ "benches": { "x/y": { "mean_ns": 1500.5, "melem_per_s": 2.0 } },
                        "derived": { "some_ratio": 1.88 } }"#;
        assert_eq!(baseline_number(json, "x/y"), Some(1500.5));
        assert_eq!(baseline_number(json, "some_ratio"), Some(1.88));
        assert_eq!(baseline_number(json, "absent"), None);
    }

    #[test]
    fn tolerance_band() {
        // Symmetric (deterministic model ratios): both directions gate.
        let ok = Check {
            name: "r",
            current: 1.2,
            baseline: 1.0,
            symmetric: true,
        };
        assert!(ok.pass());
        let bad = Check {
            name: "r",
            current: 1.3,
            baseline: 1.0,
            symmetric: true,
        };
        assert!(!bad.pass());
        // One-sided (measured speedups): only a drop regresses.
        let faster = Check {
            name: "r",
            current: 2.0,
            baseline: 1.0,
            symmetric: false,
        };
        assert!(faster.pass());
        let slower = Check {
            name: "r",
            current: 0.7,
            baseline: 1.0,
            symmetric: false,
        };
        assert!(!slower.pass());
        let dip = Check {
            name: "r",
            current: 0.8,
            baseline: 1.0,
            symmetric: false,
        };
        assert!(dip.pass());
    }
}

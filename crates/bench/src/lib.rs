//! The benchmark harness: regenerates every table and figure of the
//! ZipServ paper.
//!
//! [`figures`] holds one data-generation function per experiment; the
//! `repro` binary prints them (`cargo run -p zipserv-bench --release --bin
//! repro -- --all`), and the Criterion benches under `benches/` measure the
//! real Rust implementations behind each one.

#![warn(missing_docs)]

pub mod figures;
pub mod table;

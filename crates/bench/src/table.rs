//! Minimal fixed-width table rendering for the repro harness.

/// Renders rows of cells as an aligned text table with a header rule.
///
/// # Example
///
/// ```
/// let t = zipserv_bench::table::render(
///     &["name", "value"],
///     &[vec!["a".into(), "1".into()], vec!["bb".into(), "22".into()]],
/// );
/// assert!(t.contains("name"));
/// assert!(t.lines().count() >= 4);
/// ```
pub fn render(header: &[&str], rows: &[Vec<String>]) -> String {
    let cols = header.len();
    let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
    for row in rows {
        assert_eq!(row.len(), cols, "row width mismatch");
        for (w, cell) in widths.iter_mut().zip(row.iter()) {
            *w = (*w).max(cell.len());
        }
    }
    let mut out = String::new();
    let fmt_row = |cells: &[String], widths: &[usize]| -> String {
        cells
            .iter()
            .zip(widths)
            .map(|(c, w)| format!("{c:>w$}", w = w))
            .collect::<Vec<_>>()
            .join("  ")
    };
    let head: Vec<String> = header.iter().map(|s| s.to_string()).collect();
    out.push_str(&fmt_row(&head, &widths));
    out.push('\n');
    out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (cols - 1)));
    out.push('\n');
    for row in rows {
        out.push_str(&fmt_row(row, &widths));
        out.push('\n');
    }
    out
}

/// Formats a float with 3 significant decimals.
pub fn f(x: f64) -> String {
    format!("{x:.3}")
}

/// Formats a float with 2 decimals.
pub fn f2(x: f64) -> String {
    format!("{x:.2}")
}

/// Formats a percentage with 1 decimal.
pub fn pct(x: f64) -> String {
    format!("{:.1}%", 100.0 * x)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn aligns_columns() {
        let t = render(&["a", "long_header"], &[vec!["xxxx".into(), "1".into()]]);
        let lines: Vec<&str> = t.lines().collect();
        assert_eq!(lines.len(), 3);
        assert_eq!(lines[0].len(), lines[2].len());
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn rejects_ragged_rows() {
        let _ = render(&["a", "b"], &[vec!["only-one".into()]]);
    }

    #[test]
    fn formatters() {
        assert_eq!(f(1.23456), "1.235");
        assert_eq!(f2(1.23456), "1.23");
        assert_eq!(pct(0.715), "71.5%");
    }
}
